// Package repro benchmarks regenerate every table and figure of
// Jardosh et al., "Understanding Congestion in IEEE 802.11b Wireless
// Networks" (IMC 2005), plus the ablations called out in DESIGN.md.
//
// Each BenchmarkTableN/BenchmarkFigureN target runs the workload that
// produces the corresponding result and reports the headline values as
// benchmark metrics, so `go test -bench=.` doubles as the experiment
// harness. EXPERIMENTS.md records paper-vs-measured for each.
package repro

import (
	"sync"
	"testing"

	"wlan80211/internal/analysis"
	"wlan80211/internal/capture"
	"wlan80211/internal/core"
	"wlan80211/internal/experiment"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
	"wlan80211/internal/workload"
)

// Shared traces: the scatter figures all analyze the same sweep
// ladder, and Figure 4/5 benches the same sessions, so the expensive
// simulations run once and the benches measure analysis + extraction.
var (
	sweepOnce  sync.Once
	sweepTrace []capture.Record

	dayOnce  sync.Once
	dayTrace []capture.Record

	plenaryOnce  sync.Once
	plenaryTrace []capture.Record
)

func sweep() []capture.Record {
	sweepOnce.Do(func() {
		sweepTrace = workload.MultiSweep(workload.DefaultLadder(0.6))
	})
	return sweepTrace
}

func day() []capture.Record {
	dayOnce.Do(func() {
		b, err := workload.DaySession().Scale(0.4).Build()
		if err != nil {
			panic(err)
		}
		dayTrace = b.Run()
	})
	return dayTrace
}

func plenary() []capture.Record {
	plenaryOnce.Do(func() {
		b, err := workload.PlenarySession().Scale(0.4).Build()
		if err != nil {
			panic(err)
		}
		plenaryTrace = b.Run()
	})
	return plenaryTrace
}

// BenchmarkTable1_Sessions regenerates Table 1's two data sets (the
// day and plenary scenarios end to end: simulate + capture).
func BenchmarkTable1_Sessions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		built, err := workload.DaySession().Scale(0.15).Build()
		if err != nil {
			b.Fatal(err)
		}
		recs := built.Run()
		if len(recs) == 0 {
			b.Fatal("empty day trace")
		}
		built, err = workload.PlenarySession().Scale(0.15).Build()
		if err != nil {
			b.Fatal(err)
		}
		recs = built.Run()
		if len(recs) == 0 {
			b.Fatal("empty plenary trace")
		}
	}
}

// BenchmarkTable2_DelayComponents verifies and times the Table 2 CBT
// primitives (the hot inner loop of the analyzer).
func BenchmarkTable2_DelayComponents(b *testing.B) {
	var sink phy.Micros
	for i := 0; i < b.N; i++ {
		sink += core.CBTData(1000+i%500, phy.Rates[i%4])
		sink += core.CBTRTS() + core.CBTCTS() + core.CBTACK() + core.CBTBeacon()
	}
	if sink == 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkFigure4a_PerAPTraffic ranks APs by traffic on the day trace
// and reports the share carried by the most active APs (paper: top 15
// of 152 carried 90.3% day / 95.4% plenary).
func BenchmarkFigure4a_PerAPTraffic(b *testing.B) {
	trace := day()
	b.ResetTimer()
	var share float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		share = r.APs.TopNShare(3)
	}
	b.ReportMetric(share*100, "top3_share_%")
}

// BenchmarkFigure4b_UserCounts extracts the associated-user curve
// (paper: peaks of 523 day / 325 plenary users).
func BenchmarkFigure4b_UserCounts(b *testing.B) {
	trace := day()
	b.ResetTimer()
	peak := 0
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		peak = 0
		for _, u := range r.Users {
			if u.Users > peak {
				peak = u.Users
			}
		}
	}
	b.ReportMetric(float64(peak), "peak_users")
}

// BenchmarkFigure4c_UnrecordedPct estimates unrecorded frames via DCF
// atomicity (paper: 3–15% day, 5–20% plenary per top AP).
func BenchmarkFigure4c_UnrecordedPct(b *testing.B) {
	dayT, plenT := day(), plenary()
	b.ResetTimer()
	var dayPct, plenPct float64
	for i := 0; i < b.N; i++ {
		dayPct = core.Analyze(dayT).Unrecorded.Percent()
		plenPct = core.Analyze(plenT).Unrecorded.Percent()
	}
	b.ReportMetric(dayPct, "day_unrecorded_%")
	b.ReportMetric(plenPct, "plenary_unrecorded_%")
}

// BenchmarkFigure5_UtilizationSeries builds the per-channel
// utilization time series for both sessions.
func BenchmarkFigure5_UtilizationSeries(b *testing.B) {
	dayT, plenT := day(), plenary()
	b.ResetTimer()
	var seconds int
	for i := 0; i < b.N; i++ {
		rd := core.Analyze(dayT)
		rp := core.Analyze(plenT)
		seconds = 0
		for _, ch := range phy.OrthogonalChannels {
			seconds += len(rd.PerChannel[ch]) + len(rp.PerChannel[ch])
		}
	}
	b.ReportMetric(float64(seconds), "channel_seconds")
}

// BenchmarkFigure5c_UtilizationHistogram reports the modal utilization
// of each session (paper: ≈55% day, ≈86% plenary).
func BenchmarkFigure5c_UtilizationHistogram(b *testing.B) {
	dayT, plenT := day(), plenary()
	b.ResetTimer()
	var dayMode, plenMode int
	for i := 0; i < b.N; i++ {
		dayMode, _ = core.Analyze(dayT).UtilHist.Mode()
		plenMode, _ = core.Analyze(plenT).UtilHist.Mode()
	}
	b.ReportMetric(float64(dayMode), "day_mode_%")
	b.ReportMetric(float64(plenMode), "plenary_mode_%")
}

// BenchmarkFigure6_ThroughputGoodput reports the throughput knee
// (paper: throughput peaks ≈4.9 Mbps at 84% utilization, collapsing to
// 2.8 by 98%; goodput 4.4→2.6).
func BenchmarkFigure6_ThroughputGoodput(b *testing.B) {
	trace := sweep()
	b.ResetTimer()
	var knee int
	var peak, tail float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		knee = r.FindKnee(30, 99, 5)
		peak = r.Throughput.MeanOver(knee-4, knee+4)
		tail = r.Throughput.MeanOver(90, 99)
	}
	b.ReportMetric(float64(knee), "knee_%")
	b.ReportMetric(peak, "peak_mbps")
	b.ReportMetric(tail, "tail_mbps")
}

// BenchmarkFigure7_RTSCTS reports RTS/CTS rates in the moderate band
// versus high congestion (paper: RTS rises ~5→8/s to 84%, collapses
// after; CTS trails RTS).
func BenchmarkFigure7_RTSCTS(b *testing.B) {
	trace := sweep()
	b.ResetTimer()
	var rtsMid, rtsHigh, ctsMid float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		rtsMid = r.RTSPerSec.MeanOver(60, 84)
		rtsHigh = r.RTSPerSec.MeanOver(85, 99)
		ctsMid = r.CTSPerSec.MeanOver(60, 84)
	}
	b.ReportMetric(rtsMid, "rts_mid_per_s")
	b.ReportMetric(rtsHigh, "rts_high_per_s")
	b.ReportMetric(ctsMid, "cts_mid_per_s")
}

// BenchmarkFigure8_BusyTimeShare reports the 1 Mbps busy-time share at
// moderate vs high congestion (paper: 0.43 s → 0.54 s).
func BenchmarkFigure8_BusyTimeShare(b *testing.B) {
	trace := sweep()
	b.ResetTimer()
	var bt1Mid, bt1High, bt11High float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		bt1Mid = r.BusyTimePerRate[0].MeanOver(50, 84)
		bt1High = r.BusyTimePerRate[0].MeanOver(85, 99)
		bt11High = r.BusyTimePerRate[3].MeanOver(85, 99)
	}
	b.ReportMetric(bt1Mid, "bt1_mid_s")
	b.ReportMetric(bt1High, "bt1_high_s")
	b.ReportMetric(bt11High, "bt11_high_s")
}

// BenchmarkFigure9_BytesPerRate reports the 11-vs-1 Mbps byte ratio at
// high congestion (paper: 11 Mbps moves ≈300% the bytes of 1 Mbps in
// about half the channel time).
func BenchmarkFigure9_BytesPerRate(b *testing.B) {
	trace := sweep()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		by1 := r.BytesPerRate[0].MeanOver(70, 99)
		by11 := r.BytesPerRate[3].MeanOver(70, 99)
		if by1 > 0 {
			ratio = by11 / by1
		}
	}
	b.ReportMetric(ratio*100, "bytes11_vs_1_%")
}

// BenchmarkFigure10_SmallFrames reports S-frame rate usage (paper:
// S-11 dominates; S-2/S-5.5 scarce at every congestion level).
func BenchmarkFigure10_SmallFrames(b *testing.B) {
	benchCategoryShare(b, core.SizeS)
}

// BenchmarkFigure11_XLFrames reports XL-frame rate usage (paper: XL-11
// dominates and grows under congestion).
func BenchmarkFigure11_XLFrames(b *testing.B) {
	benchCategoryShare(b, core.SizeXL)
}

// benchCategoryShare reports the middle-rate share of a size class's
// transmissions — the paper's "scarce use of 2 and 5.5 Mbps".
func benchCategoryShare(b *testing.B, size core.SizeClass) {
	trace := sweep()
	b.ResetTimer()
	var midShare, r11 float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		var per [4]float64
		for ri, rt := range phy.Rates {
			ci, _ := core.Category{Size: size, Rate: rt}.Index()
			per[ri] = r.TxPerCategory[ci].MeanOver(30, 99)
		}
		total := per[0] + per[1] + per[2] + per[3]
		if total > 0 {
			midShare = (per[1] + per[2]) / total
			r11 = per[3] / total
		}
	}
	b.ReportMetric(midShare*100, "mid_rates_%")
	b.ReportMetric(r11*100, "rate11_%")
}

// BenchmarkFigure12_OneMbpsBySize reports 1 Mbps tx/s growth from
// moderate to high congestion (paper: S-1 and XL-1 both rise).
func BenchmarkFigure12_OneMbpsBySize(b *testing.B) {
	benchRateGrowth(b, phy.Rate1Mbps)
}

// BenchmarkFigure13_ElevenMbpsBySize reports 11 Mbps tx/s from
// moderate to high congestion.
func BenchmarkFigure13_ElevenMbpsBySize(b *testing.B) {
	benchRateGrowth(b, phy.Rate11Mbps)
}

func benchRateGrowth(b *testing.B, rt phy.Rate) {
	trace := sweep()
	b.ResetTimer()
	var mid, high float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		mid, high = 0, 0
		for s := core.SizeS; s <= core.SizeXL; s++ {
			ci, _ := core.Category{Size: s, Rate: rt}.Index()
			mid += r.TxPerCategory[ci].MeanOver(50, 84)
			high += r.TxPerCategory[ci].MeanOver(85, 99)
		}
	}
	b.ReportMetric(mid, "tx_mid_per_s")
	b.ReportMetric(high, "tx_high_per_s")
}

// BenchmarkFigure14_FirstAttemptAcks reports first-attempt
// acknowledgment rates at 1 and 11 Mbps under high congestion.
func BenchmarkFigure14_FirstAttemptAcks(b *testing.B) {
	trace := sweep()
	b.ResetTimer()
	var a1, a11 float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		a1 = r.FirstAckPerRate[0].MeanOver(85, 99)
		a11 = r.FirstAckPerRate[3].MeanOver(85, 99)
	}
	b.ReportMetric(a1, "acked1_per_s")
	b.ReportMetric(a11, "acked11_per_s")
}

// BenchmarkFigure15_AcceptanceDelay reports acceptance delays for the
// paper's four categories at high congestion (paper: S-1 > XL-11;
// 11 Mbps beats 1 Mbps regardless of size).
func BenchmarkFigure15_AcceptanceDelay(b *testing.B) {
	trace := sweep()
	b.ResetTimer()
	var s1, x1, s11, x11 float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		at := func(size core.SizeClass, rt phy.Rate) float64 {
			ci, _ := core.Category{Size: size, Rate: rt}.Index()
			return r.AcceptDelay[ci].MeanOver(70, 99) * 1000
		}
		s1 = at(core.SizeS, phy.Rate1Mbps)
		x1 = at(core.SizeXL, phy.Rate1Mbps)
		s11 = at(core.SizeS, phy.Rate11Mbps)
		x11 = at(core.SizeXL, phy.Rate11Mbps)
	}
	b.ReportMetric(s1, "S1_ms")
	b.ReportMetric(x1, "XL1_ms")
	b.ReportMetric(s11, "S11_ms")
	b.ReportMetric(x11, "XL11_ms")
}

// --- Analysis pipeline: batch vs streaming ---------------------------

// BenchmarkAnalyzeBatch measures the compatibility entry point
// (core.Analyze over a materialized trace) on the three-channel sweep
// ladder.
func BenchmarkAnalyzeBatch(b *testing.B) {
	trace := sweep()
	b.ResetTimer()
	b.ReportAllocs()
	var frames int64
	for i := 0; i < b.N; i++ {
		frames = core.Analyze(trace).TotalFrames
	}
	b.ReportMetric(float64(frames), "frames")
}

// BenchmarkAnalyzeStream measures the streaming path: records fed one
// at a time through the metric pipeline, as a live capture would
// arrive.
func BenchmarkAnalyzeStream(b *testing.B) {
	trace := sweep()
	b.ResetTimer()
	b.ReportAllocs()
	var frames int64
	for i := 0; i < b.N; i++ {
		a, err := analysis.New(analysis.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for j := range trace {
			a.Feed(trace[j])
		}
		frames = a.Result().TotalFrames
	}
	b.ReportMetric(float64(frames), "frames")
}

// BenchmarkAnalyzeParallel measures the per-channel sharded path (one
// goroutine per channel, deterministic merge).
func BenchmarkAnalyzeParallel(b *testing.B) {
	trace := sweep()
	b.ResetTimer()
	b.ReportAllocs()
	var frames int64
	for i := 0; i < b.N; i++ {
		r, err := analysis.AnalyzeWith(analysis.Options{Parallel: true}, trace)
		if err != nil {
			b.Fatal(err)
		}
		frames = r.TotalFrames
	}
	b.ReportMetric(float64(frames), "frames")
}

// --- Experiment engine ------------------------------------------------

// BenchmarkExperimentMatrix measures the worker-pool engine on an
// 8-cell seeds×scales sweep matrix, every run streaming straight into
// its own analysis pipeline (simulate + analyze, no materialized
// traces).
func BenchmarkExperimentMatrix(b *testing.B) {
	m := experiment.Matrix{
		Scenarios: []string{"sweep"},
		Seeds:     []int64{1, 2, 3, 4},
		Scales:    []float64{0.1, 0.15},
	}
	var frames float64
	for i := 0; i < b.N; i++ {
		specs, err := m.Expand()
		if err != nil {
			b.Fatal(err)
		}
		results := (&experiment.Engine{}).Run(specs)
		frames = 0
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			frames += float64(r.Summary.Frames)
		}
	}
	b.ReportMetric(frames, "frames")
}

// BenchmarkTable1_FullScale runs the day and plenary sessions at full
// Scale(1.0) through the streaming engine and reports the absolute
// Table 1 counts — the paper-comparison numbers the opt-in CI job
// archives into BENCH_3.json. Streaming keeps peak memory at
// per-second state even for these multi-minute, hundred-user runs.
func BenchmarkTable1_FullScale(b *testing.B) {
	specs := []experiment.Spec{
		{Name: "day", Scale: 1.0, Scenario: experiment.NewSession(workload.DaySession())},
		{Name: "plenary", Scale: 1.0, Scenario: experiment.NewSession(workload.PlenarySession())},
	}
	var day, plenary experiment.Summary
	for i := 0; i < b.N; i++ {
		results := (&experiment.Engine{}).Run(specs)
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		day, plenary = results[0].Summary, results[1].Summary
	}
	b.ReportMetric(float64(day.Frames), "day_frames")
	b.ReportMetric(float64(day.DataFrames), "day_data_frames")
	b.ReportMetric(float64(day.PeakUsers), "day_peak_users")
	b.ReportMetric(float64(day.ModalUtilPct), "day_mode_%")
	b.ReportMetric(day.UnrecordedPct, "day_unrecorded_%")
	b.ReportMetric(float64(plenary.Frames), "plenary_frames")
	b.ReportMetric(float64(plenary.DataFrames), "plenary_data_frames")
	b.ReportMetric(float64(plenary.PeakUsers), "plenary_peak_users")
	b.ReportMetric(float64(plenary.ModalUtilPct), "plenary_mode_%")
	b.ReportMetric(plenary.UnrecordedPct, "plenary_unrecorded_%")
}

// --- Ablations (DESIGN.md A1–A4) -------------------------------------

// BenchmarkAblation_RateAdaptation compares goodput under ARF vs the
// SNR scheme the paper recommends (Sec 7).
func BenchmarkAblation_RateAdaptation(b *testing.B) {
	run := func(f rate.Factory, seed int64) float64 {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		net := sim.New(cfg)
		ap := net.AddAP("ap", sim.Position{X: 12, Y: 12}, phy.Channel1)
		sn := sniffer.New(sniffer.DefaultConfig("S", 1, sim.Position{X: 12, Y: 14}, phy.Channel1))
		net.AddTap(sn)
		for i := 0; i < 16; i++ {
			st := net.AddStation("u", sim.Position{X: 4 + float64(i), Y: 8}, ap, f)
			net.StartTraffic(st, sim.ProfileBulk, 6)
		}
		net.RunFor(10 * phy.MicrosPerSecond)
		return core.Analyze(sn.Records()).Goodput.MeanOver(0, 100)
	}
	var arf, snr float64
	for i := 0; i < b.N; i++ {
		arf = run(rate.NewARFFactory(), 31)
		snr = run(rate.NewSNRFactory(), 31)
	}
	b.ReportMetric(arf, "arf_goodput_mbps")
	b.ReportMetric(snr, "snr_goodput_mbps")
	if arf > 0 {
		b.ReportMetric(snr/arf, "snr_over_arf")
	}
}

// BenchmarkAblation_RTSCTSFairness measures the paper's Sec 6.1 claim:
// a minority of RTS/CTS users gets less than its fair share of acked
// frames under congestion.
func BenchmarkAblation_RTSCTSFairness(b *testing.B) {
	var rtsShare float64
	for i := 0; i < b.N; i++ {
		// Average over several seeds: per-run ratios are noisy with
		// only two RTS stations.
		var sum float64
		seeds := []int64{77, 78, 79, 80}
		for _, seed := range seeds {
			sum += rtsFairnessRun(seed)
		}
		rtsShare = sum / float64(len(seeds))
	}
	b.ReportMetric(rtsShare, "rts_vs_plain_goodput_ratio")
}

func rtsFairnessRun(seed int64) float64 {
	{
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		net := sim.New(cfg)
		ap := net.AddAP("ap", sim.Position{X: 12, Y: 12}, phy.Channel1)
		var rtsUsers, plain []*sim.Node
		for j := 0; j < 20; j++ {
			st := net.AddStation("u", sim.Position{X: 4 + float64(j), Y: 8}, ap, rate.NewMixedFactory())
			if j < 2 { // the minority the paper observed
				st.UseRTS = true
				rtsUsers = append(rtsUsers, st)
			} else {
				plain = append(plain, st)
			}
			net.StartTraffic(st, sim.ProfileBulk, 12)
		}
		net.RunFor(10 * phy.MicrosPerSecond)
		var rtsAcked, plainAcked int64
		for _, st := range rtsUsers {
			rtsAcked += st.Acked
		}
		for _, st := range plain {
			plainAcked += st.Acked
		}
		perRTS := float64(rtsAcked) / float64(len(rtsUsers))
		perPlain := float64(plainAcked) / float64(len(plain))
		if perPlain > 0 {
			return perRTS / perPlain
		}
	}
	return 0
}

// BenchmarkAblation_BackoffAssumption quantifies the DBO=0 assumption
// (Sec 5.1): recompute utilization charging each data frame an extra
// mean backoff (CWmin/2 slots) and report how far utilization shifts.
func BenchmarkAblation_BackoffAssumption(b *testing.B) {
	trace := sweep()
	meanBO := phy.Micros(phy.CWMin) / 2 * phy.SlotTime
	b.ResetTimer()
	var shift float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		// Per-second data frame counts approximate the extra charge.
		var base, adj, n float64
		for _, secs := range r.PerChannel {
			for _, s := range secs {
				if s.Utilization < 30 {
					continue
				}
				extra := float64(s.Data) * float64(meanBO) / 1e6 * 100
				base += float64(s.Utilization)
				adjU := float64(s.Utilization) + extra
				if adjU > 100 {
					adjU = 100
				}
				adj += adjU
				n++
			}
		}
		if n > 0 {
			shift = (adj - base) / n
		}
	}
	b.ReportMetric(shift, "mean_util_shift_pts")
}

// BenchmarkAblation_SnifferCount measures how the unrecorded
// percentage falls as sniffers are added (Sec 4.4's recommendation).
func BenchmarkAblation_SnifferCount(b *testing.B) {
	run := func(count int) float64 {
		cfg := sim.DefaultConfig()
		cfg.Seed = 5
		cfg.Env.PathLossExponent = 3.45
		cfg.Env.ShadowingSigmaDB = 6
		net := sim.New(cfg)
		ap1 := net.AddAP("ap1", sim.Position{X: 15, Y: 18}, phy.Channel1)
		ap2 := net.AddAP("ap2", sim.Position{X: 75, Y: 18}, phy.Channel1)
		f := rate.NewMixedFactory()
		for i := 0; i < 8; i++ {
			a := net.AddStation("a", sim.Position{X: 8 + float64(i)*1.5, Y: 12}, ap1, f)
			net.StartTraffic(a, sim.ProfileWeb, 3)
			c := net.AddStation("b", sim.Position{X: 38 + float64(i)*1.5, Y: 24}, ap2, f)
			net.StartTraffic(c, sim.ProfileWeb, 3)
		}
		positions := []sim.Position{{X: 45, Y: 30}, {X: 12, Y: 16}, {X: 78, Y: 20}}
		var sniffers []*sniffer.Sniffer
		for i := 0; i < count; i++ {
			sn := sniffer.New(sniffer.DefaultConfig("S", i+1, positions[i], phy.Channel1))
			net.AddTap(sn)
			sniffers = append(sniffers, sn)
		}
		net.RunFor(8 * phy.MicrosPerSecond)
		traces := make([][]capture.Record, len(sniffers))
		for i, sn := range sniffers {
			traces[i] = sn.Records()
		}
		return core.Analyze(capture.Merge(traces...)).Unrecorded.Percent()
	}
	var one, three float64
	for i := 0; i < b.N; i++ {
		one = run(1)
		three = run(3)
	}
	b.ReportMetric(one, "unrec_1sniffer_%")
	b.ReportMetric(three, "unrec_3sniffers_%")
}

// BenchmarkAblation_ContentionWindow compares the paper's observed
// CWMax of 255 ("MaxBO increases exponentially from 31 to 255 slot
// times", Sec 3) against the 802.11 standard's 1023 under saturation:
// the narrower window resolves contention faster but collides more.
func BenchmarkAblation_ContentionWindow(b *testing.B) {
	run := func(cwMax int) (float64, int64) {
		cfg := sim.DefaultConfig()
		cfg.Seed = 55
		cfg.CWMax = cwMax
		net := sim.New(cfg)
		ap := net.AddAP("ap", sim.Position{X: 12, Y: 12}, phy.Channel1)
		sn := sniffer.New(sniffer.DefaultConfig("S", 1, sim.Position{X: 12, Y: 14}, phy.Channel1))
		net.AddTap(sn)
		for i := 0; i < 20; i++ {
			st := net.AddStation("u", sim.Position{X: 4 + float64(i), Y: 8}, ap, rate.NewMixedFactory())
			net.StartTraffic(st, sim.ProfileBulk, 10)
		}
		net.RunFor(10 * phy.MicrosPerSecond)
		return core.Analyze(sn.Records()).Goodput.MeanOver(0, 100), net.Stats.Collisions
	}
	var gPaper, gStd float64
	var cPaper, cStd int64
	for i := 0; i < b.N; i++ {
		gPaper, cPaper = run(phy.CWMaxPaper)
		gStd, cStd = run(phy.CWMaxStandard)
	}
	b.ReportMetric(gPaper, "goodput_cw255_mbps")
	b.ReportMetric(gStd, "goodput_cw1023_mbps")
	b.ReportMetric(float64(cPaper), "collisions_cw255")
	b.ReportMetric(float64(cStd), "collisions_cw1023")
}

// BenchmarkAblation_TransmitPowerControl measures Sec 7's client TPC
// suggestion: setting station power for a target AP SNR versus the
// fixed 15 dBm default, in a two-cell co-channel deployment where the
// interference footprint matters.
func BenchmarkAblation_TransmitPowerControl(b *testing.B) {
	run := func(tpc bool) float64 {
		cfg := sim.DefaultConfig()
		cfg.Seed = 66
		net := sim.New(cfg)
		ap1 := net.AddAP("ap1", sim.Position{X: 15, Y: 15}, phy.Channel1)
		ap2 := net.AddAP("ap2", sim.Position{X: 55, Y: 15}, phy.Channel1) // co-channel neighbour
		sn := sniffer.New(sniffer.DefaultConfig("S", 1, sim.Position{X: 35, Y: 15}, phy.Channel1))
		net.AddTap(sn)
		for i := 0; i < 8; i++ {
			a := net.AddStation("a", sim.Position{X: 10 + float64(i), Y: 12}, ap1, rate.NewMixedFactory())
			net.StartTraffic(a, sim.ProfileBulk, 5)
			c := net.AddStation("b", sim.Position{X: 50 + float64(i), Y: 18}, ap2, rate.NewMixedFactory())
			net.StartTraffic(c, sim.ProfileBulk, 5)
		}
		if tpc {
			net.ApplyTPC(25)
		}
		net.RunFor(10 * phy.MicrosPerSecond)
		return float64(net.Stats.DataAcked)
	}
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = run(false)
		on = run(true)
	}
	b.ReportMetric(off, "acked_fixed_power")
	b.ReportMetric(on, "acked_tpc")
	if off > 0 {
		b.ReportMetric(on/off, "tpc_gain")
	}
}

// BenchmarkAblation_BeaconReliability evaluates the authors' earlier
// E-WIND metric against this paper's utilization metric: beacon
// reception reliability should fall as utilization rises (negative
// correlation), confirming why either works as a congestion signal.
func BenchmarkAblation_BeaconReliability(b *testing.B) {
	trace := sweep()
	b.ResetTimer()
	var corr, mean float64
	for i := 0; i < b.N; i++ {
		r := core.Analyze(trace)
		rel := core.MeasureBeaconReliability(trace, 10)
		corr = rel.CorrelateWithUtilization(r)
		mean = rel.MeanRatio()
	}
	b.ReportMetric(corr, "reliability_util_corr")
	b.ReportMetric(mean, "mean_reliability")
}
