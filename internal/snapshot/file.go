package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes data to path via a temp file in the same
// directory, fsync, and rename, so a crash at any instant leaves
// either the old file or the complete new one — never a torn write.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: atomic write %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("snapshot: atomic write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("snapshot: atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: atomic write %s: %w", path, err)
	}
	name := tmp.Name()
	tmp = nil // committed past cleanup
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("snapshot: atomic write %s: %w", path, err)
	}
	return nil
}

// ReadFile reads and fully validates a snapshot file.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
