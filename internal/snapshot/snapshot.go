// Package snapshot is the versioned container format for simulator
// checkpoints. A snapshot serializes the complete numeric state of a
// run — event queue slabs, per-node DCF state, RNG stream positions,
// in-flight transmissions, link-matrix tags, sniffer and analysis
// pipeline counters — as a witness that a deterministic replay is
// verified against byte for byte (closures cannot be serialized, so
// restore is replay-then-prove; see internal/sim/state.go).
//
// The container is self-describing and fails loud: a fixed magic and
// version header, a sequence of tagged length-prefixed sections, and
// an END trailer carrying a CRC64 of everything before it. Corrupt,
// truncated, version-bumped, or oversized inputs return errors — the
// decoder never panics and never allocates more than the input could
// justify, so it is safe to fuzz and to point at arbitrary files.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
)

// Version is the container format version. Decoders reject any other
// value: state layout changes must bump it.
//
// v2: NETW link-row tags carry stored-population counts and the
// payload ends with the spatial index witness (sparse link matrix).
const Version = 2

const (
	magic  = "WLSNAP"
	endTag = "END\x00"
)

// Section tags used by the simulator's snapshots. The container
// itself accepts any 4-byte tag; these are the well-known ones.
const (
	TagMeta     = "META" // campaign/run identity (written by experiment)
	TagQueue    = "EVTQ" // eventq.QueueState
	TagNetwork  = "NETW" // sim.NetworkState
	TagSniffers = "SNIF" // []sniffer.State
	TagPipeline = "PIPE" // Reorder/Dedup/analysis state (experiment)
)

var crcTable = crc64.MakeTable(crc64.ECMA)

var (
	// ErrTruncated reports input that ends before its structure does.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrChecksum reports a CRC64 mismatch — the bytes were altered.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
)

// Builder assembles a snapshot file.
type Builder struct {
	buf []byte
}

// NewBuilder starts a snapshot with the magic and version header.
func NewBuilder() *Builder {
	b := &Builder{buf: make([]byte, 0, 1<<12)}
	b.buf = append(b.buf, magic...)
	b.buf = binary.LittleEndian.AppendUint16(b.buf, Version)
	return b
}

// Section appends one tagged section. The tag must be exactly 4 bytes
// and not the END trailer tag; violating that is a programming error.
func (b *Builder) Section(tag string, payload []byte) {
	if len(tag) != 4 || tag == endTag {
		panic(fmt.Sprintf("snapshot: invalid section tag %q", tag))
	}
	b.buf = append(b.buf, tag...)
	b.buf = binary.AppendUvarint(b.buf, uint64(len(payload)))
	b.buf = append(b.buf, payload...)
}

// Finish appends the END trailer (CRC64 of all preceding bytes) and
// returns the complete file. The builder must not be reused after.
func (b *Builder) Finish() []byte {
	sum := crc64.Checksum(b.buf, crcTable)
	b.buf = append(b.buf, endTag...)
	b.buf = binary.AppendUvarint(b.buf, 8)
	b.buf = binary.LittleEndian.AppendUint64(b.buf, sum)
	return b.buf
}

// File is a parsed snapshot. Section payloads alias the input buffer.
type File struct {
	Version  uint16
	tags     []string
	payloads map[string][]byte
}

// Parse validates a snapshot file end to end: magic, version, section
// framing, the END trailer, the whole-file checksum, and absence of
// trailing bytes. Any defect returns an error; Parse never panics.
func Parse(data []byte) (*File, error) {
	if len(data) < len(magic)+2 {
		return nil, fmt.Errorf("snapshot: %d-byte input shorter than header: %w", len(data), ErrTruncated)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:len(magic)])
	}
	v := binary.LittleEndian.Uint16(data[len(magic):])
	if v != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads %d)", v, Version)
	}
	f := &File{Version: v, payloads: make(map[string][]byte)}
	off := len(magic) + 2
	for {
		if len(data)-off < 4 {
			return nil, fmt.Errorf("snapshot: section header at offset %d: %w", off, ErrTruncated)
		}
		tag := string(data[off : off+4])
		ln, n := binary.Uvarint(data[off+4:])
		if n <= 0 {
			return nil, fmt.Errorf("snapshot: section %q length at offset %d: %w", tag, off, ErrTruncated)
		}
		body := off + 4 + n
		if ln > uint64(len(data)-body) {
			return nil, fmt.Errorf("snapshot: section %q claims %d bytes, %d remain: %w", tag, ln, len(data)-body, ErrTruncated)
		}
		payload := data[body : body+int(ln)]
		if tag == endTag {
			if ln != 8 {
				return nil, fmt.Errorf("snapshot: END trailer is %d bytes, want 8", ln)
			}
			if crc64.Checksum(data[:off], crcTable) != binary.LittleEndian.Uint64(payload) {
				return nil, ErrChecksum
			}
			if body+8 != len(data) {
				return nil, fmt.Errorf("snapshot: %d trailing bytes after END", len(data)-body-8)
			}
			return f, nil
		}
		if _, dup := f.payloads[tag]; dup {
			return nil, fmt.Errorf("snapshot: duplicate section %q", tag)
		}
		f.payloads[tag] = payload
		f.tags = append(f.tags, tag)
		off = body + int(ln)
	}
}

// Section returns a section's payload and whether it is present.
func (f *File) Section(tag string) ([]byte, bool) {
	p, ok := f.payloads[tag]
	return p, ok
}

// MustSection returns a section's payload or an error naming the tag.
func (f *File) MustSection(tag string) ([]byte, error) {
	p, ok := f.payloads[tag]
	if !ok {
		return nil, fmt.Errorf("snapshot: missing section %q", tag)
	}
	return p, nil
}

// Tags lists the sections in file order.
func (f *File) Tags() []string { return f.tags }
