package snapshot

import (
	"testing"

	"wlan80211/internal/eventq"
	"wlan80211/internal/workload"
)

// FuzzParse drives the full decode path — container framing, checksum,
// and every typed section codec — with arbitrary bytes. The invariant:
// errors, never panics, and (via Dec.Count's remaining-bytes cap)
// never allocations beyond the input size. The seed corpus in
// testdata/fuzz/FuzzParse pins real snapshots, truncations, bit
// flips, and version bumps; `go test` replays it on every run, so the
// race job exercises it too.
func FuzzParse(f *testing.F) {
	// Real snapshot of a mid-run network plus hand-made degenerate
	// shapes as live seeds (the checked-in corpus extends these).
	b, err := workload.DaySession().Scale(0.02).Build()
	if err != nil {
		f.Fatal(err)
	}
	b.Net.RunUntil(500_000)
	bl := NewBuilder()
	bl.Section(TagNetwork, EncodeNetworkState(b.Net.CaptureState()))
	bl.Section(TagQueue, EncodeQueueState(b.Net.CaptureState().Queue))
	real := bl.Finish()
	f.Add(real)
	f.Add(real[:len(real)/2])
	mut := append([]byte(nil), real...)
	mut[len(mut)/3] ^= 0x10
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte("WLSNAP"))
	f.Add([]byte("WLSNAP\x01\x00META\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Add(NewBuilder().Finish())

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(data)
		if err != nil {
			return
		}
		// A structurally valid container: decode every known section;
		// failures must come back as errors only.
		if p, ok := file.Section(TagQueue); ok {
			if st, err := DecodeQueueState(p); err == nil {
				// Even a decodable state may be structurally invalid;
				// RestoreState must reject it without panicking.
				_, _ = eventq.RestoreState(st, func(int) func() { return func() {} })
			}
		}
		if p, ok := file.Section(TagNetwork); ok {
			_, _ = DecodeNetworkState(p)
		}
		if p, ok := file.Section(TagSniffers); ok {
			_, _ = DecodeSnifferStates(p)
		}
	})
}
