package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wlan80211/internal/eventq"
	"wlan80211/internal/phy"
	"wlan80211/internal/sniffer"
)

func TestContainerRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.Section(TagMeta, []byte("hello"))
	b.Section(TagQueue, nil)
	b.Section(TagNetwork, bytes.Repeat([]byte{0xAB}, 300))
	data := b.Finish()

	f, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Version != Version {
		t.Fatalf("version = %d, want %d", f.Version, Version)
	}
	if got := f.Tags(); !reflect.DeepEqual(got, []string{TagMeta, TagQueue, TagNetwork}) {
		t.Fatalf("tags = %v", got)
	}
	if p, ok := f.Section(TagMeta); !ok || string(p) != "hello" {
		t.Fatalf("META = %q, %v", p, ok)
	}
	if p, ok := f.Section(TagQueue); !ok || len(p) != 0 {
		t.Fatalf("EVTQ = %q, %v", p, ok)
	}
	if _, ok := f.Section(TagSniffers); ok {
		t.Fatal("absent section reported present")
	}
	if _, err := f.MustSection(TagSniffers); err == nil {
		t.Fatal("MustSection of absent section did not error")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	b := NewBuilder()
	b.Section(TagMeta, []byte("payload-bytes"))
	good := b.Finish()

	if _, err := Parse(good); err != nil {
		t.Fatalf("control parse failed: %v", err)
	}

	// Every truncation point must error, never panic.
	for n := 0; n < len(good); n++ {
		if _, err := Parse(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Every single-bit flip must error (all bytes are covered by
	// magic, version, framing, or the CRC).
	for i := 0; i < len(good); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), good...)
			mut[i] ^= 1 << bit
			if _, err := Parse(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
	// Version bump fails with a version error, not a checksum error.
	mut := append([]byte(nil), good...)
	mut[6] = 0x7F
	_, err := Parse(mut)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version bump error = %v", err)
	}
	// Trailing garbage after a valid END is rejected.
	if _, err := Parse(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Duplicate sections are rejected.
	b2 := NewBuilder()
	b2.Section(TagMeta, nil)
	b2.Section(TagMeta, nil)
	if _, err := Parse(b2.Finish()); err == nil {
		t.Fatal("duplicate section accepted")
	}
}

func TestParseHostileLengths(t *testing.T) {
	// A section header claiming more bytes than exist must be a clean
	// truncation error, not an allocation or a panic.
	hdr := append([]byte(magic), Version, 0) // current version
	huge := append(hdr, []byte("META\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x7F")...)
	if _, err := Parse(huge); !errors.Is(err, ErrTruncated) {
		t.Fatalf("hostile length error = %v", err)
	}
}

func TestDecCountCapsAllocation(t *testing.T) {
	var e Enc
	e.Count(1 << 40) // claims a trillion elements
	d := NewDec(e.Bytes())
	if n := d.Count(8); n != 0 || d.Err() == nil {
		t.Fatalf("hostile count: n=%d err=%v", n, d.Err())
	}
}

func TestDecFinishCatchesTrailingBytes(t *testing.T) {
	var e Enc
	e.U64(7)
	e.U8(0xEE)
	d := NewDec(e.Bytes())
	if d.U64() != 7 {
		t.Fatal("scalar mismatch")
	}
	if err := d.Finish(); err == nil {
		t.Fatal("trailing byte not caught")
	}
}

// TestQueueStateRoundTrip exercises the eventq witness through a
// queue with every interesting shape present: fired slots recycled
// through the free list, cancelled slots, deferred events with stale
// heap entries (deadline > heap key), and same-instant FIFO ranks.
// The property: encode → decode → RestoreState yields a queue whose
// SaveState re-encodes to identical bytes AND whose future fire
// sequence matches the original exactly.
func TestQueueStateRoundTrip(t *testing.T) {
	// build constructs the queue and returns each event's label in
	// creation order, so a restore can map slots back to behaviours
	// (later creations override earlier ones on recycled slots).
	build := func(log *[]string) (*eventq.Queue, []eventq.Event, []string) {
		q := &eventq.Queue{}
		var evs []eventq.Event
		var labels []string
		mk := func(label string) func() {
			return func() { *log = append(*log, label) }
		}
		for i := 0; i < 8; i++ {
			label := fmt.Sprintf("ev%d", i)
			evs = append(evs, q.At(phy.Micros(100+10*i), mk(label)))
			labels = append(labels, label)
		}
		// Same-instant pair to pin FIFO ranks.
		for i := 0; i < 2; i++ {
			label := fmt.Sprintf("tie%d", i)
			evs = append(evs, q.At(500, mk(label)))
			labels = append(labels, label)
		}
		q.RunUntil(115)   // fires ev0, ev1 → slots recycled
		evs[2].Cancel()   // cancelled slot
		evs[3].Defer(400) // stale heap entry at 130, deadline 400
		evs[4].Defer(400) // ties with ev3 at the deferred instant
		// Reuses a freed slot through the free list.
		evs = append(evs, q.At(120, mk("reused")))
		labels = append(labels, "reused")
		return q, evs, labels
	}

	var origLog []string
	orig, origEvs, _ := build(&origLog)

	st := orig.SaveState()
	enc := EncodeQueueState(st)
	dec, err := DecodeQueueState(enc)
	if err != nil {
		t.Fatalf("DecodeQueueState: %v", err)
	}
	if !reflect.DeepEqual(st, dec) {
		t.Fatalf("state mismatch after round trip:\n  %+v\nvs\n  %+v", st, dec)
	}
	if !bytes.Equal(enc, EncodeQueueState(dec)) {
		t.Fatal("re-encode not byte-identical")
	}

	// Restore with callbacks rebound by slot, replaying the original
	// construction on a scratch queue to learn which slot each event
	// landed in (creation order, so recycled slots take the newest
	// behaviour — exactly how a deterministic replay rebinds).
	var restLog []string
	var scratch []string
	_, tmplEvs, labels := build(&scratch)
	slotFns := map[int]func(){}
	for i, ev := range tmplEvs {
		if s := ev.Slot(); s >= 0 {
			label := labels[i]
			slotFns[int(s)] = func() { restLog = append(restLog, label) }
		}
	}
	restored, err := eventq.RestoreState(dec, func(slot int) func() {
		return slotFns[slot]
	})
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if !bytes.Equal(EncodeQueueState(restored.SaveState()), enc) {
		t.Fatal("restored queue state not byte-identical")
	}

	// Future behaviour must match: run both to completion.
	origLog = origLog[:0]
	restLog = restLog[:0]
	orig.Run()
	restored.Run()
	if !reflect.DeepEqual(origLog, restLog) {
		t.Fatalf("fire sequence diverged:\noriginal: %v\nrestored: %v", origLog, restLog)
	}
	// The deferred events must have survived with their stamps: ev3
	// then ev4 at t=400 (Defer-time FIFO ranks), after "reused" and
	// before the 500 ties.
	want := []string{"reused", "ev5", "ev6", "ev7", "ev3", "ev4", "tie0", "tie1"}
	if !reflect.DeepEqual(origLog, want) {
		t.Fatalf("fire sequence = %v, want %v", origLog, want)
	}

	// Handles reconstructed via Handle() keep working.
	if origEvs[0].Pending() {
		t.Fatal("fired event still pending")
	}
}

func TestRestoreStateRejectsStructuralDamage(t *testing.T) {
	q := &eventq.Queue{}
	q.At(100, func() {})
	q.At(200, func() {})
	good := q.SaveState()

	cases := []struct {
		name string
		mut  func(st *eventq.QueueState)
	}{
		{"unknown slot state", func(st *eventq.QueueState) { st.Slots[0].State = 99 }},
		{"pending without callback", func(st *eventq.QueueState) { st.Slots[0].HasFn = false }},
		{"heap idx out of range", func(st *eventq.QueueState) { st.Heap[0].Idx = 42 }},
		{"heap/slot pos disagreement", func(st *eventq.QueueState) { st.Slots[0].Pos = 7 }},
		{"pending count mismatch", func(st *eventq.QueueState) { st.Heap = st.Heap[:1] }},
		{"free entry out of range", func(st *eventq.QueueState) { st.Free = append(st.Free, 99) }},
		{"free entry pending", func(st *eventq.QueueState) { st.Free = append(st.Free, 0) }},
	}
	for _, tc := range cases {
		enc := EncodeQueueState(good)
		st, err := DecodeQueueState(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		tc.mut(&st)
		if _, err := eventq.RestoreState(st, func(int) func() { return func() {} }); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSnifferStatesRoundTrip(t *testing.T) {
	states := []sniffer.State{
		{ID: 0, Seed: 1000, RNGDraws: 12345, Seen: 10, Captured: 8, LostBitError: 2, CurSecond: 3, CurCount: 4},
		{ID: 2, Seed: 1002, RNGDraws: 1, LostHidden: 5, LostCollision: 6, LostOverload: 7},
	}
	enc := EncodeSnifferStates(states)
	dec, err := DecodeSnifferStates(enc)
	if err != nil {
		t.Fatalf("DecodeSnifferStates: %v", err)
	}
	if !reflect.DeepEqual(states, dec) {
		t.Fatalf("mismatch: %+v vs %+v", states, dec)
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.snap")
	if err := AtomicWriteFile(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "second" {
		t.Fatalf("read back %q, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestReadFileValidates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.snap")
	b := NewBuilder()
	b.Section(TagMeta, []byte("m"))
	data := b.Finish()
	if err := AtomicWriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("truncated file accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Fatal("missing file accepted")
	}
}
