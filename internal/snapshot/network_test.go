package snapshot

import (
	"bytes"
	"reflect"
	"testing"

	"wlan80211/internal/phy"
	"wlan80211/internal/workload"
)

// TestNetworkStateRoundTrip captures a real mid-run network — nodes
// mid-backoff, transmissions in the air, deferred countdowns, RNG
// streams advanced — and proves encode → decode is lossless and
// re-encode is byte-identical (the property the replay-verified
// restore depends on).
func TestNetworkStateRoundTrip(t *testing.T) {
	b, err := workload.DaySession().Scale(0.05).Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []phy.Micros{1_000_000, 3_141_593, 10_000_000} {
		b.Net.RunUntil(at)
		st := b.Net.CaptureState()
		if st.Now != at {
			t.Fatalf("Now = %d, want %d", st.Now, at)
		}
		enc := EncodeNetworkState(st)
		dec, err := DecodeNetworkState(enc)
		if err != nil {
			t.Fatalf("t=%d: DecodeNetworkState: %v", at, err)
		}
		if !reflect.DeepEqual(st, dec) {
			t.Fatalf("t=%d: state mismatch after round trip", at)
		}
		if !bytes.Equal(enc, EncodeNetworkState(dec)) {
			t.Fatalf("t=%d: re-encode not byte-identical", at)
		}
	}
}

// TestCaptureStateDeterministic: two identical runs capture identical
// bytes at the same instant — the foundation of the snapshot witness.
func TestCaptureStateDeterministic(t *testing.T) {
	capture := func() []byte {
		b, err := workload.DaySession().Scale(0.05).Build()
		if err != nil {
			t.Fatal(err)
		}
		b.Net.RunUntil(5_000_000)
		return EncodeNetworkState(b.Net.CaptureState())
	}
	if !bytes.Equal(capture(), capture()) {
		t.Fatal("identical runs captured different state bytes")
	}
}

// TestCaptureStateSlicedRunMatches: running to T in two slices
// captures the same bytes as running straight to T — checkpointing
// must not perturb the state it witnesses.
func TestCaptureStateSlicedRunMatches(t *testing.T) {
	straight, err := workload.DaySession().Scale(0.05).Build()
	if err != nil {
		t.Fatal(err)
	}
	straight.Net.RunUntil(6_000_000)

	sliced, err := workload.DaySession().Scale(0.05).Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []phy.Micros{2_000_000, 4_000_000, 6_000_000} {
		sliced.Net.RunUntil(at)
		_ = sliced.Net.CaptureState() // capture itself must not perturb
	}
	a := EncodeNetworkState(straight.Net.CaptureState())
	b2 := EncodeNetworkState(sliced.Net.CaptureState())
	if !bytes.Equal(a, b2) {
		t.Fatal("sliced run captured different state than straight run")
	}
}
