package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Enc builds a section payload from fixed-width little-endian scalars
// and uvarint-prefixed blobs. It only grows a buffer and cannot fail.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

func (e *Enc) U8(v uint8)    { e.buf = append(e.buf, v) }
func (e *Enc) U16(v uint16)  { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *Enc) U32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *Enc) U64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Enc) I32(v int32)   { e.U32(uint32(v)) }
func (e *Enc) I64(v int64)   { e.U64(uint64(v)) }
func (e *Enc) Int(v int)     { e.I64(int64(v)) }
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Count writes an element count as a uvarint.
func (e *Enc) Count(n int) { e.buf = binary.AppendUvarint(e.buf, uint64(n)) }

// Blob writes a uvarint length followed by the bytes.
func (e *Enc) Blob(b []byte) {
	e.Count(len(b))
	e.buf = append(e.buf, b...)
}

// Str writes a uvarint length followed by the string bytes.
func (e *Enc) Str(s string) {
	e.Count(len(s))
	e.buf = append(e.buf, s...)
}

// Dec reads an Enc payload back. It is error-sticky: the first defect
// latches Err and every later read returns zero values, so decoders
// can read a whole structure and check once. Counts are validated
// against the bytes actually remaining, so a hostile length can never
// drive an allocation larger than the input itself.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec wraps a payload for decoding.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err returns the first decoding defect, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns how many undecoded bytes are left.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Finish errors if any input remains undecoded (a length/layout
// mismatch that scalar reads alone would not catch).
func (d *Dec) Finish() error {
	if d.err == nil && d.off != len(d.buf) {
		d.failf("%d trailing bytes", len(d.buf)-d.off)
	}
	return d.err
}

func (d *Dec) failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: decode at offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf)-d.off < n {
		d.failf("need %d bytes, %d remain: %v", n, len(d.buf)-d.off, ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Dec) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *Dec) I32() int32   { return int32(d.U32()) }
func (d *Dec) I64() int64   { return int64(d.U64()) }
func (d *Dec) Int() int     { return int(d.I64()) }
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.failf("bool out of range")
		return false
	}
}

// Count reads an element count and validates it against the remaining
// input, assuming each element occupies at least elemMin bytes. This
// is the allocation cap: a decoder sizing a slice by Count can never
// be made to allocate beyond the input length.
func (d *Dec) Count(elemMin int) int {
	if d.err != nil {
		return 0
	}
	n, sz := binary.Uvarint(d.buf[d.off:])
	if sz <= 0 {
		d.failf("bad uvarint: %v", ErrTruncated)
		return 0
	}
	d.off += sz
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(d.Remaining()/elemMin) {
		d.failf("count %d exceeds %d remaining bytes (elements are >=%d bytes)", n, d.Remaining(), elemMin)
		return 0
	}
	return int(n)
}

// Blob reads a uvarint length and returns a copy of that many bytes.
func (d *Dec) Blob() []byte {
	n := d.Count(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Str reads a uvarint length and that many bytes as a string.
func (d *Dec) Str() string {
	n := d.Count(1)
	b := d.take(n)
	return string(b)
}
