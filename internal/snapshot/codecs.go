package snapshot

import (
	"wlan80211/internal/dot11"
	"wlan80211/internal/eventq"
	"wlan80211/internal/phy"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
)

// Typed codecs for the simulator's state structures. Each Encode
// produces one section payload; each Decode validates with the sticky
// Dec (bounds-checked counts, trailing-byte detection) and returns an
// error on any defect — never a panic.

// EncodeQueueState serializes an event-queue state (the EVTQ section).
func EncodeQueueState(st eventq.QueueState) []byte {
	var e Enc
	e.I64(st.Now)
	e.U64(st.Seq)
	e.U64(st.Runs)
	e.U64(st.Deferrals)
	e.U64(st.Scheds)
	e.U64(st.Cancels)
	e.Count(len(st.Slots))
	for _, s := range st.Slots {
		e.I64(s.At)
		e.I64(s.Deadline)
		e.U64(s.Seq)
		e.U64(s.DeferSeq)
		e.I32(s.Pos)
		e.U32(s.Gen)
		e.U8(s.State)
		e.Bool(s.HasFn)
	}
	e.Count(len(st.Heap))
	for _, h := range st.Heap {
		e.I64(h.At)
		e.U64(h.Seq)
		e.I32(h.Idx)
	}
	e.Count(len(st.Free))
	for _, f := range st.Free {
		e.I32(f)
	}
	return e.Bytes()
}

// DecodeQueueState parses an EVTQ payload.
func DecodeQueueState(b []byte) (eventq.QueueState, error) {
	d := NewDec(b)
	st := eventq.QueueState{
		Now: d.I64(), Seq: d.U64(), Runs: d.U64(),
		Deferrals: d.U64(), Scheds: d.U64(), Cancels: d.U64(),
	}
	nslots := d.Count(42) // 4×8 + 4 + 4 + 1 + 1 bytes per slot
	for i := 0; i < nslots; i++ {
		st.Slots = append(st.Slots, eventq.SlotState{
			At: d.I64(), Deadline: d.I64(), Seq: d.U64(), DeferSeq: d.U64(),
			Pos: d.I32(), Gen: d.U32(), State: d.U8(), HasFn: d.Bool(),
		})
	}
	nheap := d.Count(20)
	for i := 0; i < nheap; i++ {
		st.Heap = append(st.Heap, eventq.HeapEntryState{At: d.I64(), Seq: d.U64(), Idx: d.I32()})
	}
	nfree := d.Count(4)
	for i := 0; i < nfree; i++ {
		st.Free = append(st.Free, d.I32())
	}
	return st, d.Finish()
}

func encodeAddr(e *Enc, a dot11.Addr) {
	e.buf = append(e.buf, a[:]...)
}

func decodeAddr(d *Dec) (a dot11.Addr) {
	copy(a[:], d.take(len(a)))
	return a
}

func encodeFrame(e *Enc, f sim.FrameState) {
	e.U8(uint8(f.Kind))
	encodeAddr(e, f.To)
	e.Int(f.Size)
	e.Bool(f.UseRTS)
	e.I64(f.Enqueued)
	e.U16(f.Seq)
	e.Int(f.Retries)
	e.Int(f.MgmtWireLen)
	e.U64(f.MgmtHash)
}

func decodeFrame(d *Dec) sim.FrameState {
	return sim.FrameState{
		Kind: int8(d.U8()), To: decodeAddr(d), Size: d.Int(), UseRTS: d.Bool(),
		Enqueued: d.I64(), Seq: d.U16(), Retries: d.Int(),
		MgmtWireLen: d.Int(), MgmtHash: d.U64(),
	}
}

func encodeNode(e *Enc, n sim.NodeState) {
	e.Int(n.ID)
	e.F64(n.Pos.X)
	e.F64(n.Pos.Y)
	e.Int(int(n.Channel))
	e.F64(n.TxPower)
	e.Bool(n.IsAP)
	e.Bool(n.GCapable)
	e.Bool(n.UseRTS)
	e.Bool(n.Associated)
	e.Int(n.AssocCount)
	e.Count(len(n.Queue))
	for _, f := range n.Queue {
		encodeFrame(e, f)
	}
	e.U16(n.Seq)
	e.Int(n.CW)
	e.Int(n.Backoff)
	e.Int(n.Busy)
	e.I64(n.NavUntil)
	e.I64(n.IdleSince)
	e.Bool(n.Transmitting)
	e.Bool(n.Paused)
	e.I64(n.CountdownStart)
	e.I32(n.CountdownSlot)
	e.Bool(n.CountdownPending)
	e.I64(n.CountdownWhen)
	e.U8(uint8(n.Awaiting))
	e.I32(n.AwaitSlot)
	e.Bool(n.AwaitPending)
	e.I64(n.AwaitWhen)
	e.U8(uint8(n.PendingResp))
	encodeAddr(e, n.RespRA)
	e.U16(n.RespDur)
	e.I64(n.Sent)
	e.I64(n.Acked)
	e.I64(n.Dropped)
}

func decodeNode(d *Dec) sim.NodeState {
	n := sim.NodeState{
		ID:  d.Int(),
		Pos: sim.Position{X: d.F64(), Y: d.F64()},
	}
	n.Channel = phy.Channel(d.Int())
	n.TxPower = d.F64()
	n.IsAP, n.GCapable, n.UseRTS, n.Associated = d.Bool(), d.Bool(), d.Bool(), d.Bool()
	n.AssocCount = d.Int()
	nq := d.Count(50) // fixed frame encoding size
	for i := 0; i < nq; i++ {
		n.Queue = append(n.Queue, decodeFrame(d))
	}
	n.Seq = d.U16()
	n.CW, n.Backoff, n.Busy = d.Int(), d.Int(), d.Int()
	n.NavUntil, n.IdleSince = d.I64(), d.I64()
	n.Transmitting, n.Paused = d.Bool(), d.Bool()
	n.CountdownStart = d.I64()
	n.CountdownSlot, n.CountdownPending, n.CountdownWhen = d.I32(), d.Bool(), d.I64()
	n.Awaiting = int8(d.U8())
	n.AwaitSlot, n.AwaitPending, n.AwaitWhen = d.I32(), d.Bool(), d.I64()
	n.PendingResp = int8(d.U8())
	n.RespRA = decodeAddr(d)
	n.RespDur = d.U16()
	n.Sent, n.Acked, n.Dropped = d.I64(), d.I64(), d.I64()
	return n
}

func encodeTx(e *Enc, t sim.TxState) {
	e.U64(t.Seqno)
	e.Int(t.FromID)
	e.U16(uint16(t.Rate))
	e.Int(t.WireLen)
	e.I64(t.Start)
	e.I64(t.End)
	e.Int(t.ActiveIdx)
	e.Int(t.Refs)
	e.Bool(t.Done)
	e.Blob(t.Frame)
	e.Count(len(t.Overlapped))
	for _, o := range t.Overlapped {
		e.U64(o)
	}
}

func decodeTx(d *Dec) sim.TxState {
	t := sim.TxState{
		Seqno: d.U64(), FromID: d.Int(), Rate: phy.Rate(d.U16()), WireLen: d.Int(),
		Start: d.I64(), End: d.I64(), ActiveIdx: d.Int(), Refs: d.Int(),
		Done: d.Bool(), Frame: d.Blob(),
	}
	no := d.Count(8)
	for i := 0; i < no; i++ {
		t.Overlapped = append(t.Overlapped, d.U64())
	}
	return t
}

func encodeMedium(e *Enc, m sim.MediumState) {
	e.Int(int(m.Channel))
	e.Count(len(m.NodeIDs))
	for _, id := range m.NodeIDs {
		e.Int(id)
	}
	e.Count(len(m.Active))
	for _, t := range m.Active {
		encodeTx(e, t)
	}
	e.Count(len(m.Lingering))
	for _, t := range m.Lingering {
		encodeTx(e, t)
	}
}

func decodeMedium(d *Dec) sim.MediumState {
	m := sim.MediumState{Channel: phy.Channel(d.Int())}
	nn := d.Count(8)
	for i := 0; i < nn; i++ {
		m.NodeIDs = append(m.NodeIDs, d.Int())
	}
	na := d.Count(61) // fixed tx prefix + 2 empty counts
	for i := 0; i < na; i++ {
		m.Active = append(m.Active, decodeTx(d))
	}
	nl := d.Count(61)
	for i := 0; i < nl; i++ {
		m.Lingering = append(m.Lingering, decodeTx(d))
	}
	return m
}

// EncodeNetworkState serializes a network state (the NETW section).
func EncodeNetworkState(st *sim.NetworkState) []byte {
	var e Enc
	e.I64(st.Now)
	e.I64(st.Seed)
	e.U64(st.RNGDraws)
	e.U64(st.PosEpoch)
	e.U64(st.TxSeq)
	e.Int(st.TxPoolFree)
	e.I64(st.Stats.DataSent)
	e.I64(st.Stats.DataAcked)
	e.I64(st.Stats.DataDropped)
	e.I64(st.Stats.RTSSent)
	e.I64(st.Stats.CTSSent)
	e.I64(st.Stats.ACKSent)
	e.I64(st.Stats.BeaconsSent)
	e.I64(st.Stats.Collisions)
	e.I64(st.Stats.QueueDrops)
	e.I64(st.Stats.AssocEvents)
	e.I64(st.Stats.ChannelSwitch)
	e.Blob(EncodeQueueState(st.Queue))
	e.Count(len(st.Nodes))
	for _, n := range st.Nodes {
		encodeNode(&e, n)
	}
	e.Count(len(st.Media))
	for _, m := range st.Media {
		encodeMedium(&e, m)
	}
	e.Count(len(st.LinkRows))
	for _, r := range st.LinkRows {
		e.F64(r.Power)
		e.U64(r.Epoch)
		e.Int(r.Links)
		e.Int(r.Extras)
	}
	e.U64(st.Index.Epoch)
	e.Int(st.Index.Nodes)
	e.F64(st.Index.Power)
	e.F64(st.Index.Cell)
	e.Int(st.Index.Cols)
	e.Int(st.Index.Rows)
	e.U64(st.Index.Builds)
	return e.Bytes()
}

// DecodeNetworkState parses a NETW payload.
func DecodeNetworkState(b []byte) (*sim.NetworkState, error) {
	d := NewDec(b)
	st := &sim.NetworkState{
		Now: d.I64(), Seed: d.I64(), RNGDraws: d.U64(),
		PosEpoch: d.U64(), TxSeq: d.U64(), TxPoolFree: d.Int(),
	}
	st.Stats = sim.NetStats{
		DataSent: d.I64(), DataAcked: d.I64(), DataDropped: d.I64(),
		RTSSent: d.I64(), CTSSent: d.I64(), ACKSent: d.I64(),
		BeaconsSent: d.I64(), Collisions: d.I64(), QueueDrops: d.I64(),
		AssocEvents: d.I64(), ChannelSwitch: d.I64(),
	}
	qb := d.Blob()
	if d.Err() != nil {
		return nil, d.Err()
	}
	q, err := DecodeQueueState(qb)
	if err != nil {
		return nil, err
	}
	st.Queue = q
	nn := d.Count(32)
	for i := 0; i < nn; i++ {
		st.Nodes = append(st.Nodes, decodeNode(d))
	}
	nm := d.Count(11)
	for i := 0; i < nm; i++ {
		st.Media = append(st.Media, decodeMedium(d))
	}
	nr := d.Count(18)
	for i := 0; i < nr; i++ {
		st.LinkRows = append(st.LinkRows, sim.LinkRowTag{
			Power: d.F64(), Epoch: d.U64(), Links: d.Int(), Extras: d.Int(),
		})
	}
	st.Index = sim.SpatialIndexState{
		Epoch: d.U64(), Nodes: d.Int(), Power: d.F64(), Cell: d.F64(),
		Cols: d.Int(), Rows: d.Int(), Builds: d.U64(),
	}
	return st, d.Finish()
}

// EncodeSnifferStates serializes sniffer states (the SNIF section).
func EncodeSnifferStates(states []sniffer.State) []byte {
	var e Enc
	e.Count(len(states))
	for _, s := range states {
		e.Int(s.ID)
		e.I64(s.Seed)
		e.U64(s.RNGDraws)
		e.I64(s.Seen)
		e.I64(s.Captured)
		e.I64(s.LostHidden)
		e.I64(s.LostCollision)
		e.I64(s.LostBitError)
		e.I64(s.LostOverload)
		e.I64(s.CurSecond)
		e.Int(s.CurCount)
	}
	return e.Bytes()
}

// DecodeSnifferStates parses a SNIF payload.
func DecodeSnifferStates(b []byte) ([]sniffer.State, error) {
	d := NewDec(b)
	n := d.Count(88)
	var states []sniffer.State
	for i := 0; i < n; i++ {
		states = append(states, sniffer.State{
			ID: d.Int(), Seed: d.I64(), RNGDraws: d.U64(),
			Seen: d.I64(), Captured: d.I64(),
			LostHidden: d.I64(), LostCollision: d.I64(),
			LostBitError: d.I64(), LostOverload: d.I64(),
			CurSecond: d.I64(), CurCount: d.Int(),
		})
	}
	return states, d.Finish()
}
