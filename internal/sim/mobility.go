package sim

import (
	"wlan80211/internal/phy"
)

// This file adds node mobility: a deterministic waypoint walker that
// moves a node along straight segments at a fixed speed, updating its
// position on a fixed cadence. Each update goes through
// Network.MoveNode, which re-tags the link matrix so path loss,
// carrier sense, and hidden-terminal relations follow the node. The
// walker consumes no randomness, so a scenario's RNG stream — and
// therefore its trace — is a pure function of the seed, mobile or not.

// Mover walks one node through a cyclic list of waypoints.
type Mover struct {
	net      *Network
	node     *Node
	speed    float64 // meters per second
	interval phy.Micros
	points   []Position
	target   int
	stopped  bool
	tick     func()
}

// StartWaypoints attaches a waypoint mobility model to node: it walks
// at speed m/s along straight lines through points, cycling back to
// the first, with the position updated every interval. The first
// update fires one interval after the call.
func (n *Network) StartWaypoints(node *Node, speed float64, interval phy.Micros, points ...Position) *Mover {
	m := &Mover{net: n, node: node, speed: speed, interval: interval, points: points}
	if speed <= 0 || interval <= 0 || len(points) == 0 {
		m.stopped = true
		return m
	}
	m.tick = func() {
		if m.stopped {
			return
		}
		m.step()
		n.q.After(m.interval, m.tick)
	}
	n.q.After(interval, m.tick)
	return m
}

// Stop freezes the node at its current position.
func (m *Mover) Stop() { m.stopped = true }

// step advances one interval's worth of distance along the waypoint
// path, possibly passing through several waypoints (or whole laps of
// the cycle, for fast movers on short paths).
func (m *Mover) step() {
	remaining := m.speed * float64(m.interval) / float64(phy.MicrosPerSecond)
	pos := m.node.Pos
	// zeroHops terminates the walk when the path degenerates to a
	// single point: only zero-progress hops count toward the bound, so
	// legitimate multi-segment (and multi-lap) steps are never cut
	// short.
	zeroHops := 0
	for remaining > 0 && zeroHops <= len(m.points) {
		tgt := m.points[m.target]
		d := pos.Distance(tgt)
		if d <= remaining {
			if d == 0 {
				zeroHops++
			} else {
				zeroHops = 0
			}
			pos = tgt
			remaining -= d
			m.target = (m.target + 1) % len(m.points)
			continue
		}
		f := remaining / d
		pos = Position{X: pos.X + (tgt.X-pos.X)*f, Y: pos.Y + (tgt.Y-pos.Y)*f}
		remaining = 0
	}
	m.net.MoveNode(m.node, pos)
}
