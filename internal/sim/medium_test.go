package sim

import (
	"testing"

	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

// mediumTestNet builds a bare network (no APs, no beacons) with nodes
// placed directly, for driving the medium by hand.
func mediumTestNet(seed int64, positions ...Position) (*Network, *medium, []*Node) {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Env.ShadowingSigmaDB = 0 // deterministic radio
	net := New(cfg)
	nodes := make([]*Node, len(positions))
	for i, pos := range positions {
		nodes[i] = net.newNode("n", pos, phy.Channel1)
	}
	return net, net.mediumFor(phy.Channel1), nodes
}

func TestCaptureThresholdForScalesPerRate(t *testing.T) {
	const base = 10.0
	cases := []struct {
		rate phy.Rate
		want float64
	}{
		{phy.Rate1Mbps, 4.0},   // DBPSK: most robust, 40% of base
		{phy.Rate2Mbps, 6.0},   // DQPSK
		{phy.Rate5_5Mbps, 8.0}, // CCK-5.5
		{phy.Rate11Mbps, 10.0}, // CCK-11: full base threshold
	}
	for _, c := range cases {
		if got := CaptureThresholdFor(c.rate, base); got != c.want {
			t.Errorf("CaptureThresholdFor(%v, %v) = %v, want %v", c.rate, base, got, c.want)
		}
	}
	// Ordering is what makes slow-rate capture meaningful: thresholds
	// must be strictly increasing with rate.
	for i := 1; i < len(cases); i++ {
		a := CaptureThresholdFor(cases[i-1].rate, base)
		b := CaptureThresholdFor(cases[i].rate, base)
		if a >= b {
			t.Errorf("threshold not increasing: %v(%v) >= %v(%v)", a, cases[i-1].rate, b, cases[i].rate)
		}
	}
}

// TestHalfDuplexDeafness: a node transmitting during any part of a
// frame cannot receive it — and must not be counted as a collision
// victim, even when a third transmitter would have broken capture.
func TestHalfDuplexDeafness(t *testing.T) {
	run := func(receiverTransmits bool) (acks int64, collisions int64) {
		// a → b data; c is an equal-power interferer next to b, so the
		// SINR at b fails the capture check whenever c overlaps.
		net, m, nodes := mediumTestNet(1,
			Position{X: 0, Y: 0},  // a
			Position{X: 20, Y: 0}, // b
			Position{X: 40, Y: 0}, // c: symmetric to a around b
		)
		a, b, c := nodes[0], nodes[1], nodes[2]
		data := dot11.NewData(b.Addr, a.Addr, a.Addr, 1, make([]byte, 1000))
		net.Schedule(0, func() { m.transmit(a, data, phy.Rate1Mbps) }) // ~8 ms airtime
		interf := dot11.NewData(c.Addr, c.Addr, c.Addr, 2, make([]byte, 1000))
		net.Schedule(500, func() { m.transmit(c, interf, phy.Rate1Mbps) })
		if receiverTransmits {
			ack := dot11.NewACK(a.Addr)
			net.Schedule(1000, func() { m.transmit(b, ack, phy.ControlRate) })
		}
		net.RunUntil(phy.MicrosPerSecond)
		return net.Stats.ACKSent, net.Stats.Collisions
	}

	// Baseline: b silent, c's overlap breaks capture at b — a real
	// collision, no delivery (so no ACK response is scheduled).
	acks, collisions := run(false)
	if acks != 0 {
		t.Errorf("collided frame must not be delivered (ACKSent = %d)", acks)
	}
	if collisions == 0 {
		t.Error("interferer must register a collision at the silent receiver")
	}

	// Deaf receiver: b transmitted during a's frame. Still no
	// delivery, but the loss is half-duplex deafness, not a collision
	// — the collision counter must not be inflated by deaf nodes.
	acks, collisions = run(true)
	if acks != 0 {
		t.Errorf("deaf receiver must not decode (ACKSent = %d)", acks)
	}
	if collisions != 0 {
		t.Errorf("deaf receiver counted as collision victim %d times", collisions)
	}
}

// TestCarrierSenseDeltasAcrossOverlap walks a listener's busyCount
// through two overlapping transmissions: 0→1→2→1→0.
func TestCarrierSenseDeltasAcrossOverlap(t *testing.T) {
	net, m, nodes := mediumTestNet(2,
		Position{X: 0, Y: 0}, // tx1
		Position{X: 6, Y: 0}, // tx2
		Position{X: 3, Y: 3}, // listener senses both
	)
	tx1, tx2, l := nodes[0], nodes[1], nodes[2]

	f1 := dot11.NewData(l.Addr, tx1.Addr, tx1.Addr, 1, make([]byte, 800))
	f2 := dot11.NewData(l.Addr, tx2.Addr, tx2.Addr, 2, make([]byte, 400))

	var trace []int
	snap := func() { trace = append(trace, l.busyCount) }

	net.Schedule(0, func() { m.transmit(tx1, f1, phy.Rate1Mbps) }) // ends ≈6592µs
	net.Schedule(100, snap)
	net.Schedule(1000, func() { m.transmit(tx2, f2, phy.Rate1Mbps) }) // ends ≈4392µs
	net.Schedule(1100, snap)
	net.Schedule(5000, snap) // tx2 done, tx1 still on air
	net.Schedule(8000, snap) // both done
	net.RunUntil(phy.MicrosPerSecond)

	want := []int{1, 2, 1, 0}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("busyCount trace = %v, want %v", trace, want)
		}
	}
}

// TestCarrierSenseHiddenTerminal: a transmitter below the energy-detect
// threshold at the listener must not move its busy count.
func TestCarrierSenseHiddenTerminal(t *testing.T) {
	net, m, nodes := mediumTestNet(3,
		Position{X: 0, Y: 0},    // far transmitter
		Position{X: 1500, Y: 0}, // listener: well below -82 dBm from 1.5 km
	)
	far, l := nodes[0], nodes[1]
	f := dot11.NewData(l.Addr, far.Addr, far.Addr, 1, make([]byte, 800))
	net.Schedule(0, func() { m.transmit(far, f, phy.Rate1Mbps) })
	net.Schedule(100, func() {
		if l.busyCount != 0 {
			t.Errorf("hidden transmitter moved listener busyCount to %d", l.busyCount)
		}
		if m.busy(l) {
			t.Error("medium.busy must be false for a hidden transmitter")
		}
	})
	net.RunUntil(phy.MicrosPerSecond)
}

// TestTransmissionPoolRecycling: overlapping transmissions must each
// return to the pool exactly once, after everything that overlapped
// them has completed.
func TestTransmissionPoolRecycling(t *testing.T) {
	net, m, nodes := mediumTestNet(4,
		Position{X: 0, Y: 0},
		Position{X: 5, Y: 0},
		Position{X: 10, Y: 0},
	)
	for round := 0; round < 3; round++ {
		for i, n := range nodes {
			n := n
			f := dot11.NewData(nodes[(i+1)%3].Addr, n.Addr, n.Addr, uint16(i), make([]byte, 600))
			net.Schedule(net.Now()+phy.Micros(i*200), func() { m.transmit(n, f, phy.Rate1Mbps) })
		}
		net.RunFor(phy.MicrosPerSecond)
		if len(m.active) != 0 {
			t.Fatalf("round %d: %d transmissions stuck on the air", round, len(m.active))
		}
	}
	// All structs back in the pool, no duplicates (a double-put would
	// corrupt the free list).
	seen := map[*transmission]bool{}
	for _, tx := range net.txFree {
		if seen[tx] {
			t.Fatal("transmission returned to the pool twice")
		}
		seen[tx] = true
		if tx.refs != 0 || tx.done || tx.parsed != nil {
			t.Fatalf("pooled transmission not reset: refs=%d done=%v", tx.refs, tx.done)
		}
	}
	// Steady state: the pool never needed more structs than the peak
	// number concurrently on the air plus their overlap holds.
	if len(net.txFree) > 6 {
		t.Errorf("pool grew to %d structs for ≤3 concurrent transmissions", len(net.txFree))
	}
}

// TestActiveSwapDelete covers out-of-order completion: a later, shorter
// transmission completes first, exercising the swap-delete path.
func TestActiveSwapDelete(t *testing.T) {
	net, m, nodes := mediumTestNet(5,
		Position{X: 0, Y: 0},
		Position{X: 5, Y: 0},
	)
	long := dot11.NewData(nodes[1].Addr, nodes[0].Addr, nodes[0].Addr, 1, make([]byte, 1400))
	short := dot11.NewData(nodes[0].Addr, nodes[1].Addr, nodes[1].Addr, 2, make([]byte, 50))
	net.Schedule(0, func() { m.transmit(nodes[0], long, phy.Rate1Mbps) })     // ends late
	net.Schedule(100, func() { m.transmit(nodes[1], short, phy.Rate11Mbps) }) // ends early
	net.Schedule(2000, func() {
		if len(m.active) != 1 {
			t.Errorf("active = %d after short tx completed, want 1", len(m.active))
		}
		if len(m.active) == 1 && m.active[0].from != nodes[0] {
			t.Error("wrong transmission removed from active set")
		}
		if len(m.active) == 1 && m.active[0].activeIdx != 0 {
			t.Errorf("surviving activeIdx = %d, want 0", m.active[0].activeIdx)
		}
	})
	net.RunUntil(phy.MicrosPerSecond)
	if len(m.active) != 0 {
		t.Errorf("active set not drained: %d", len(m.active))
	}
}
