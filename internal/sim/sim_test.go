package sim

import (
	"testing"

	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
)

// testNet builds a one-AP network with n stations in a small room so
// everyone senses everyone (no hidden terminals).
func testNet(seed int64, n int, f rate.Factory) (*Network, *Node, []*Node) {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Env.ShadowingSigmaDB = 0 // deterministic radio for unit tests
	net := New(cfg)
	ap := net.AddAP("ap0", Position{X: 10, Y: 10}, phy.Channel1)
	var stas []*Node
	for i := 0; i < n; i++ {
		st := net.AddStation("sta", Position{X: 5 + float64(i%5)*2, Y: 5 + float64(i/5)*2}, ap, f)
		stas = append(stas, st)
	}
	return net, ap, stas
}

func TestPositionDistance(t *testing.T) {
	if d := (Position{0, 0}).Distance(Position{3, 4}); d != 5 {
		t.Errorf("distance = %v", d)
	}
}

func TestSingleFrameDelivery(t *testing.T) {
	net, ap, stas := testNet(1, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	st := stas[0]
	if !st.SendData(ap.Addr, 500) {
		t.Fatal("SendData refused")
	}
	net.RunFor(phy.MicrosPerSecond)
	if st.Acked != 1 {
		t.Errorf("Acked = %d, want 1", st.Acked)
	}
	if net.Stats.ACKSent != 1 {
		t.Errorf("ACKSent = %d, want 1", net.Stats.ACKSent)
	}
	if net.Stats.DataSent < 1 {
		t.Errorf("DataSent = %d", net.Stats.DataSent)
	}
}

func TestDownlinkDelivery(t *testing.T) {
	net, ap, stas := testNet(2, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	if !ap.SendData(stas[0].Addr, 800) {
		t.Fatal("AP SendData refused")
	}
	net.RunFor(phy.MicrosPerSecond)
	if ap.Acked != 1 {
		t.Errorf("AP Acked = %d, want 1", ap.Acked)
	}
}

func TestQueueLimit(t *testing.T) {
	net, ap, stas := testNet(3, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	st := stas[0]
	accepted := 0
	for i := 0; i < net.cfg.QueueLimit+10; i++ {
		if st.SendData(ap.Addr, 100) {
			accepted++
		}
	}
	if accepted != net.cfg.QueueLimit {
		t.Errorf("accepted %d, want %d", accepted, net.cfg.QueueLimit)
	}
	if net.Stats.QueueDrops != 10 {
		t.Errorf("QueueDrops = %d, want 10", net.Stats.QueueDrops)
	}
}

func TestNegativeSizeRefused(t *testing.T) {
	_, ap, stas := testNet(4, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	if stas[0].SendData(ap.Addr, -1) {
		t.Error("negative size must be refused")
	}
}

func TestDisassociatedStationRefusesTraffic(t *testing.T) {
	net, ap, stas := testNet(5, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	net.Disassociate(stas[0])
	if stas[0].SendData(ap.Addr, 100) {
		t.Error("disassociated station must refuse traffic")
	}
	if net.AssociatedTotal() != 0 {
		t.Errorf("AssociatedTotal = %d", net.AssociatedTotal())
	}
	// Double disassociate is a no-op.
	net.Disassociate(stas[0])
	if net.AssociatedCount(ap) != 0 {
		t.Errorf("AssociatedCount = %d", net.AssociatedCount(ap))
	}
}

func TestReassociate(t *testing.T) {
	net, _, stas := testNet(6, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	ap2 := net.AddAP("ap2", Position{X: 20, Y: 20}, phy.Channel6)
	net.Reassociate(stas[0], ap2)
	if stas[0].AP != ap2 || stas[0].Channel != phy.Channel6 {
		t.Error("reassociation did not move the station")
	}
	if net.AssociatedCount(ap2) != 1 {
		t.Error("ap2 count")
	}
	// Traffic still flows on the new channel.
	stas[0].SendData(ap2.Addr, 300)
	net.RunFor(phy.MicrosPerSecond)
	if stas[0].Acked != 1 {
		t.Errorf("Acked = %d after reassociation", stas[0].Acked)
	}
}

func TestBeaconsEmitted(t *testing.T) {
	net, _, _ := testNet(7, 0, rate.NewFixedFactory(phy.Rate11Mbps))
	net.RunFor(phy.MicrosPerSecond)
	// ~10 beacons in a second (102.4 ms interval).
	if net.Stats.BeaconsSent < 8 || net.Stats.BeaconsSent > 12 {
		t.Errorf("BeaconsSent = %d, want ≈10", net.Stats.BeaconsSent)
	}
}

func TestRetryFlagSetOnRetransmission(t *testing.T) {
	// Two stations far from each other but both near the AP: hidden
	// terminals. Their frames collide at the AP, forcing retries.
	cfg := DefaultConfig()
	cfg.Seed = 8
	cfg.Env.ShadowingSigmaDB = 0
	net := New(cfg)
	ap := net.AddAP("ap", Position{X: 50, Y: 50}, phy.Channel1)
	a := net.AddStation("a", Position{X: 5, Y: 50}, ap, rate.NewFixedFactory(phy.Rate11Mbps))
	b := net.AddStation("b", Position{X: 95, Y: 50}, ap, rate.NewFixedFactory(phy.Rate11Mbps))

	var sawRetry bool
	net.AddTap(tapFunc(func(obs TxObservation) {
		p, err := dot11.Parse(obs.Frame)
		if err == nil && p.FC.Retry {
			sawRetry = true
		}
	}))
	for i := 0; i < 200; i++ {
		a.SendData(ap.Addr, 1000)
		b.SendData(ap.Addr, 1000)
	}
	net.RunFor(3 * phy.MicrosPerSecond)
	if net.Stats.Collisions == 0 {
		t.Error("hidden terminals should collide")
	}
	if !sawRetry {
		t.Error("collisions should produce Retry-flagged retransmissions")
	}
}

// tapFunc adapts a func to the Tap interface.
type tapFunc func(TxObservation)

func (f tapFunc) ObserveTransmission(o TxObservation) { f(o) }

func TestRTSCTSExchange(t *testing.T) {
	net, ap, stas := testNet(9, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	st := stas[0]
	st.UseRTS = true
	st.SendData(ap.Addr, 1200)
	net.RunFor(phy.MicrosPerSecond)
	if net.Stats.RTSSent < 1 {
		t.Error("no RTS sent")
	}
	if net.Stats.CTSSent < 1 {
		t.Error("no CTS sent")
	}
	if st.Acked != 1 {
		t.Errorf("Acked = %d, want 1 (via RTS/CTS)", st.Acked)
	}
}

func TestFrameSequenceObservedOnAir(t *testing.T) {
	// A full RTS→CTS→DATA→ACK cycle must appear on the air in order.
	net, ap, stas := testNet(10, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	st := stas[0]
	st.UseRTS = true
	var kinds []string
	net.AddTap(tapFunc(func(obs TxObservation) {
		p, err := dot11.Parse(obs.Frame)
		if err != nil {
			return
		}
		switch p.Frame.(type) {
		case *dot11.RTS:
			kinds = append(kinds, "rts")
		case *dot11.CTS:
			kinds = append(kinds, "cts")
		case *dot11.Data:
			kinds = append(kinds, "data")
		case *dot11.ACK:
			kinds = append(kinds, "ack")
		}
	}))
	st.SendData(ap.Addr, 900)
	net.RunFor(phy.MicrosPerSecond / 2)
	// Filter out beacons; look for the exchange.
	want := []string{"rts", "cts", "data", "ack"}
	found := 0
	for _, k := range kinds {
		if found < len(want) && k == want[found] {
			found++
		}
	}
	if found != len(want) {
		t.Errorf("air sequence %v missing full RTS/CTS cycle", kinds)
	}
}

func TestManyStationsAllDeliver(t *testing.T) {
	net, ap, stas := testNet(11, 10, rate.NewARFFactory())
	for _, st := range stas {
		for i := 0; i < 5; i++ {
			st.SendData(ap.Addr, 600)
		}
	}
	net.RunFor(3 * phy.MicrosPerSecond)
	total := int64(0)
	for _, st := range stas {
		total += st.Acked
	}
	// With contention some frames may drop, but the vast majority of
	// 50 frames must get through in 3 seconds.
	if total < 45 {
		t.Errorf("delivered %d/50 frames", total)
	}
}

func TestCollisionsUnderContention(t *testing.T) {
	net, ap, stas := testNet(12, 20, rate.NewFixedFactory(phy.Rate11Mbps))
	for _, st := range stas {
		for i := 0; i < 20; i++ {
			st.SendData(ap.Addr, 800)
		}
	}
	net.RunFor(5 * phy.MicrosPerSecond)
	if net.Stats.Collisions == 0 {
		t.Error("20 saturated stations must produce collisions")
	}
	if net.Stats.DataSent <= net.Stats.DataAcked {
		t.Error("some transmissions must have failed (retries)")
	}
}

func TestDropAfterRetryLimit(t *testing.T) {
	// A station whose AP is unreachable (far beyond radio range) must
	// drop every frame after the retry limit.
	cfg := DefaultConfig()
	cfg.Seed = 13
	cfg.Env.ShadowingSigmaDB = 0
	net := New(cfg)
	ap := net.AddAP("ap", Position{X: 10000, Y: 10000}, phy.Channel1)
	st := net.AddStation("st", Position{0, 0}, ap, rate.NewFixedFactory(phy.Rate11Mbps))
	st.SendData(ap.Addr, 500)
	net.RunFor(2 * phy.MicrosPerSecond)
	if st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
	if st.Acked != 0 {
		t.Error("unreachable AP cannot ack")
	}
	// Attempts = 1 + ShortRetryLimit.
	if st.Sent != int64(1+cfg.ShortRetryLimit) {
		t.Errorf("Sent = %d, want %d", st.Sent, 1+cfg.ShortRetryLimit)
	}
}

func TestARFFallsUnderCollisions(t *testing.T) {
	// Saturated contention with ARF: collision-driven failures must
	// push some data transmissions below 11 Mbps at some point.
	net, ap, stas := testNet(14, 15, rate.NewARFFactory())
	var lowRate bool
	net.AddTap(tapFunc(func(o TxObservation) {
		p, err := dot11.Parse(o.Frame)
		if err != nil {
			return
		}
		if _, ok := p.Frame.(*dot11.Data); ok && o.Rate != phy.Rate11Mbps {
			lowRate = true
		}
	}))
	for _, st := range stas {
		net.StartTraffic(st, ProfileBulk, 8)
	}
	net.RunFor(10 * phy.MicrosPerSecond)
	_ = ap
	if net.Stats.Collisions == 0 {
		t.Error("saturated contention must produce collisions")
	}
	if !lowRate {
		t.Error("ARF never dropped any data frame below 11 Mbps under heavy contention")
	}
}

func TestChannelIsolation(t *testing.T) {
	// Stations on channel 1 must not collide with stations on 6.
	cfg := DefaultConfig()
	cfg.Seed = 15
	cfg.Env.ShadowingSigmaDB = 0
	net := New(cfg)
	ap1 := net.AddAP("ap1", Position{10, 10}, phy.Channel1)
	ap6 := net.AddAP("ap6", Position{12, 10}, phy.Channel6)
	s1 := net.AddStation("s1", Position{8, 10}, ap1, rate.NewFixedFactory(phy.Rate11Mbps))
	s6 := net.AddStation("s6", Position{14, 10}, ap6, rate.NewFixedFactory(phy.Rate11Mbps))
	for i := 0; i < 40; i++ {
		s1.SendData(ap1.Addr, 1400)
		s6.SendData(ap6.Addr, 1400)
	}
	net.RunFor(3 * phy.MicrosPerSecond)
	if s1.Acked != 40 || s6.Acked != 40 {
		t.Errorf("cross-channel interference? acked %d/%d", s1.Acked, s6.Acked)
	}
}

func TestTapObservations(t *testing.T) {
	net, ap, stas := testNet(16, 1, rate.NewFixedFactory(phy.Rate5_5Mbps))
	var obs []TxObservation
	net.AddTap(tapFunc(func(o TxObservation) {
		// Frame and Overlapped alias simulator-owned buffers; a Tap
		// that retains an observation must copy them.
		o.Frame = append([]byte(nil), o.Frame...)
		o.Overlapped = append([]TxRef(nil), o.Overlapped...)
		obs = append(obs, o)
	}))
	stas[0].SendData(ap.Addr, 500)
	net.RunFor(phy.MicrosPerSecond / 10)
	if len(obs) == 0 {
		t.Fatal("tap saw nothing")
	}
	var sawData bool
	for _, o := range obs {
		if o.End <= o.Time {
			t.Error("observation must have positive airtime")
		}
		if o.Channel != phy.Channel1 {
			t.Errorf("channel = %v", o.Channel)
		}
		p, err := dot11.Parse(o.Frame)
		if err != nil {
			t.Fatalf("tap frame must parse: %v", err)
		}
		if d, ok := p.Frame.(*dot11.Data); ok {
			sawData = true
			if o.Rate != phy.Rate5_5Mbps {
				t.Errorf("data rate = %v, want 5.5", o.Rate)
			}
			if o.WireLen != d.WireLen() {
				t.Errorf("WireLen %d != %d", o.WireLen, d.WireLen())
			}
		}
	}
	if !sawData {
		t.Error("no data frame observed")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		net, ap, stas := testNet(42, 8, rate.NewARFFactory())
		for _, st := range stas {
			net.StartTraffic(st, ProfileWeb, 2)
		}
		_ = ap
		net.RunFor(3 * phy.MicrosPerSecond)
		return net.Stats.DataSent, net.Stats.DataAcked, net.Stats.Collisions
	}
	s1, a1, c1 := run()
	s2, a2, c2 := run()
	if s1 != s2 || a1 != a2 || c1 != c2 {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", s1, a1, c1, s2, a2, c2)
	}
	if s1 == 0 {
		t.Error("no traffic generated")
	}
}

func TestTrafficGenerators(t *testing.T) {
	net, _, stas := testNet(17, 4, rate.NewARFFactory())
	gens := make([]*Generator, len(stas))
	for i, st := range stas {
		gens[i] = net.StartTraffic(st, ProfileVoice, 1)
	}
	net.RunFor(2 * phy.MicrosPerSecond)
	if net.Stats.DataSent == 0 {
		t.Fatal("generators produced no traffic")
	}
	sent := net.Stats.DataSent
	for _, g := range gens {
		g.Stop()
	}
	// One profile interval later, traffic must have ceased.
	net.RunFor(phy.MicrosPerSecond)
	idle := net.Stats.DataSent
	net.RunFor(phy.MicrosPerSecond)
	if net.Stats.DataSent > idle+5 {
		t.Errorf("traffic kept flowing after Stop: %d → %d", sent, net.Stats.DataSent)
	}
}

func TestPickProfile(t *testing.T) {
	net := New(DefaultConfig())
	mix := DefaultMix()
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		counts[net.PickProfile(mix).Name]++
	}
	for _, w := range mix {
		if counts[w.Profile.Name] == 0 {
			t.Errorf("profile %s never picked", w.Profile.Name)
		}
	}
}

func TestSizeClass(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{{100, "S"}, {400, "S"}, {401, "M"}, {800, "M"}, {801, "L"}, {1200, "L"}, {1201, "XL"}, {1500, "XL"}}
	for _, c := range cases {
		if got := SizeClass(c.n); got != c.want {
			t.Errorf("SizeClass(%d) = %s, want %s", c.n, got, c.want)
		}
	}
}

func TestControllerChannelSwitch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 18
	cfg.Env.ShadowingSigmaDB = 0
	net := New(cfg)
	// Two APs on channel 1 (one idle), none on 6/11: heavy imbalance.
	apBusy := net.AddAP("busy", Position{10, 10}, phy.Channel1)
	apIdle := net.AddAP("idle", Position{40, 40}, phy.Channel1)
	var stas []*Node
	for i := 0; i < 6; i++ {
		st := net.AddStation("s", Position{8 + float64(i), 10}, apBusy, rate.NewFixedFactory(phy.Rate11Mbps))
		net.StartTraffic(st, ProfileBulk, 4)
		stas = append(stas, st)
	}
	ctl := net.NewController([]*Node{apBusy, apIdle})
	ctl.Start()
	net.RunFor(20 * phy.MicrosPerSecond)
	if net.Stats.ChannelSwitch == 0 {
		t.Error("controller never rebalanced channels")
	}
	ctl.Stop()
}

func TestControllerClientBalance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 19
	net := New(cfg)
	ap1 := net.AddAP("ap1", Position{10, 10}, phy.Channel1)
	ap2 := net.AddAP("ap2", Position{12, 10}, phy.Channel6)
	for i := 0; i < 12; i++ {
		net.AddStation("s", Position{10, 11}, ap1, rate.NewFixedFactory(phy.Rate11Mbps))
	}
	ctl := net.NewController([]*Node{ap1, ap2})
	ctl.MaxPerAP = 8
	ctl.Start()
	net.RunFor(12 * phy.MicrosPerSecond)
	if net.AssociatedCount(ap1) > 8 {
		t.Errorf("ap1 still has %d clients", net.AssociatedCount(ap1))
	}
	if net.AssociatedCount(ap2) == 0 {
		t.Error("ap2 received no clients")
	}
}

func TestNetworkString(t *testing.T) {
	net, _, _ := testNet(20, 3, rate.NewARFFactory())
	if net.String() == "" {
		t.Error("String empty")
	}
}

func TestAssociatedTotal(t *testing.T) {
	net, _, stas := testNet(21, 5, rate.NewARFFactory())
	if net.AssociatedTotal() != 5 {
		t.Errorf("AssociatedTotal = %d", net.AssociatedTotal())
	}
	net.Disassociate(stas[0])
	net.Disassociate(stas[1])
	if net.AssociatedTotal() != 3 {
		t.Errorf("AssociatedTotal = %d after leave", net.AssociatedTotal())
	}
}

func TestNAVProtectsRTSExchange(t *testing.T) {
	// A third station overhearing RTS must defer (NAV), so the
	// protected exchange completes without collision from it.
	net, ap, stas := testNet(22, 3, rate.NewFixedFactory(phy.Rate11Mbps))
	rtsUser := stas[0]
	rtsUser.UseRTS = true
	rtsUser.SendData(ap.Addr, 1400)
	// Competing traffic enqueued at the same moment.
	stas[1].SendData(ap.Addr, 1400)
	stas[2].SendData(ap.Addr, 1400)
	net.RunFor(phy.MicrosPerSecond)
	if rtsUser.Acked != 1 {
		t.Errorf("RTS-protected frame not delivered (acked=%d)", rtsUser.Acked)
	}
}

func TestApplyTPC(t *testing.T) {
	net, ap, stas := testNet(30, 4, rate.NewSNRFactory())
	_ = ap
	before := make([]float64, len(stas))
	for i, st := range stas {
		before[i] = st.TxPower
	}
	adjusted := net.ApplyTPC(25)
	if adjusted == 0 {
		t.Fatal("TPC adjusted nothing")
	}
	for _, st := range stas {
		snr := net.SNRAtAP(st)
		// Within bounds, SNR should land near the target.
		if st.TxPower > TPCMinPowerDBm && st.TxPower < TPCMaxPowerDBm {
			if snr < 24.9 || snr > 25.1 {
				t.Errorf("station SNR = %v, want ≈25", snr)
			}
		}
		if st.TxPower < TPCMinPowerDBm || st.TxPower > TPCMaxPowerDBm {
			t.Errorf("power %v outside bounds", st.TxPower)
		}
	}
	// Power went down for close-in stations (default 15 dBm is far
	// more than needed at a few meters).
	lowered := false
	for i, st := range stas {
		if st.TxPower < before[i] {
			lowered = true
		}
	}
	if !lowered {
		t.Error("TPC should lower power for nearby stations")
	}
	// Traffic still flows after the adjustment.
	stas[0].SendData(ap.Addr, 400)
	net.RunFor(phy.MicrosPerSecond)
	if stas[0].Acked != 1 {
		t.Error("post-TPC delivery failed")
	}
}

func TestMeanTxPower(t *testing.T) {
	net, _, stas := testNet(31, 2, rate.NewARFFactory())
	stas[0].TxPower = 10
	stas[1].TxPower = 20
	if got := net.MeanTxPower(); got != 15 {
		t.Errorf("MeanTxPower = %v", got)
	}
	empty := New(DefaultConfig())
	if empty.MeanTxPower() != 0 {
		t.Error("empty network mean power must be 0")
	}
}

func TestSNRAtAPUnassociated(t *testing.T) {
	net, _, _ := testNet(32, 0, rate.NewARFFactory())
	orphan := net.AddAP("x", Position{0, 0}, phy.Channel1)
	if net.SNRAtAP(orphan) != 0 {
		t.Error("AP has no AP; SNR must be 0")
	}
}
