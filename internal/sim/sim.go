// Package sim is a discrete-event simulator of IEEE 802.11b
// infrastructure networks. It models the DCF MAC (CSMA/CA with binary
// exponential backoff, DIFS/SIFS timing, NAV, optional RTS/CTS,
// retransmission limits), a physical channel with path loss, capture,
// collisions and hidden terminals, per-station multirate adaptation,
// access points with beaconing and association, and application
// traffic generators.
//
// The simulator substitutes for the live IETF62 network the paper
// measured: it produces the same kind of over-the-air frame sequences
// (observable through the sniffer taps) that the paper's vicinity
// sniffing framework recorded. See DESIGN.md for the substitution
// argument.
//
// The hot paths are allocation-free at steady state: events live in a
// slab queue (package eventq), the pairwise radio link model is a
// dense precomputed matrix, and in-flight transmissions are pooled
// and recycled by reference count.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"wlan80211/internal/detrand"
	"wlan80211/internal/dot11"
	"wlan80211/internal/eventq"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
)

// Position is a 2-D location in meters.
type Position struct{ X, Y float64 }

// Distance returns the Euclidean distance between two positions.
func (p Position) Distance(o Position) float64 {
	return math.Hypot(p.X-o.X, p.Y-o.Y)
}

// Config holds the simulator parameters.
type Config struct {
	// Seed seeds all randomness; runs are deterministic per seed.
	Seed int64
	// Env is the radio environment.
	Env phy.Environment
	// CWMax bounds the contention window. The paper reports MaxBO
	// growing 31→255 (phy.CWMaxPaper, the default); phy.CWMaxStandard
	// gives the 802.11 value.
	CWMax int
	// ShortRetryLimit bounds attempts for frames below RTSThreshold
	// (and RTS frames); LongRetryLimit for frames sent with RTS/CTS.
	ShortRetryLimit int
	LongRetryLimit  int
	// CaptureThresholdDB is the SINR above which the strongest of
	// overlapping frames still decodes (physical-layer capture).
	CaptureThresholdDB float64
	// QueueLimit bounds each station's transmit queue.
	QueueLimit int
	// DefaultTxPowerDBm is assigned to nodes that don't override it.
	DefaultTxPowerDBm float64
	// ForceDenseLinks disables spatial culling even when the
	// environment is deterministic (ShadowingSigmaDB == 0), keeping the
	// dense O(N²) link matrix. Equivalence tests pin the sparse path
	// against this.
	ForceDenseLinks bool
	// FERQuantumDB selects the SNR bin width in dB of the shared
	// quantized FER table consulted on frame-error draws: 0 selects
	// phy.DefaultFERQuantumDB, negative disables the table entirely so
	// every draw evaluates the analytic phy.FER. The table's decisions
	// are bit-identical to the analytic path at any quantum (see
	// phy.FERLookup.Lost), so this is purely a performance knob, kept
	// configurable for dual-path pinning tests.
	FERQuantumDB float64
}

// DefaultConfig returns the configuration used by the reproduction
// experiments.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Env:                phy.DefaultEnvironment(),
		CWMax:              phy.CWMaxPaper,
		ShortRetryLimit:    7,
		LongRetryLimit:     4,
		CaptureThresholdDB: 10,
		QueueLimit:         50,
		DefaultTxPowerDBm:  phy.DefaultTxPowerDBm,
	}
}

// Tap observes every completed transmission on a channel, with the
// geometry needed to decide whether a passive observer would have
// captured it. The sniffer package implements Tap.
//
// The observation's Frame and Overlapped slices alias buffers the
// simulator recycles: they are valid only for the duration of the
// call. A Tap that retains them must copy.
type Tap interface {
	// ObserveTransmission is called once per completed transmission.
	ObserveTransmission(obs TxObservation)
}

// TxObservation is what a Tap sees: the over-the-air facts of one
// transmission, independent of any receiver.
type TxObservation struct {
	// Time is the transmission start time (first bit).
	Time phy.Micros
	// End is the transmission end time.
	End phy.Micros
	// Channel and Rate of the transmission.
	Channel phy.Channel
	Rate    phy.Rate
	// Frame is the encoded MAC frame without FCS. It aliases a reused
	// buffer: valid only during the ObserveTransmission call.
	Frame []byte
	// WireLen is the over-the-air length including FCS.
	WireLen int
	// FromID / FromPos / TxPowerDBm identify and locate the
	// transmitter. FromID is the dense node ID, stable for the node's
	// lifetime — observers can use it to memoize per-transmitter state.
	FromID     int
	FromPos    Position
	TxPowerDBm float64
	// Overlapped lists concurrent transmissions (potential colliders
	// at any given observer). The slice is reused between
	// observations: valid only during the call.
	Overlapped []TxRef
}

// TxRef locates an interfering transmitter.
type TxRef struct {
	FromID     int
	FromPos    Position
	TxPowerDBm float64
}

// link is one precomputed directed radio link: the deterministic
// (unshadowed) received power of transmitter→receiver in both dBm and
// milliwatts, the resulting SNR, and whether the receiver's carrier
// sense detects the transmitter. Shadowing draws stay per-delivery so
// the RNG stream is unchanged from computing path loss on the fly.
type link struct {
	dBm   float64
	mw    float64
	snr   float64
	sense bool
}

// linkRow is one transmitter's row of the link matrix, tagged with the
// transmit power it was computed at so power changes (TPC, tests
// poking Node.TxPower) invalidate it lazily, and with the network's
// position epoch so node movement (MoveNode) invalidates it the same
// way.
//
// Dense rows (the default, and the only mode under shadowing) fill
// `to` with one link per node. Sparse rows (spatial culling, see
// spatial.go) instead store parallel ids/ls slices holding only the
// in-range neighborhood, plus extraIDs/extraLs for nodes added after
// the row was built (mirroring the dense append in newNode), and the
// transmitter position the row was computed at so culled interference
// contributions can be recomputed on demand.
type linkRow struct {
	power float64
	epoch uint64
	to    []link

	sparse   bool
	ownerPos Position
	// gen counts buildSparseRow fills; caches keyed on a row carry the
	// generation they were computed at so a rebuild invalidates them
	// without a scan (and pinned rows, which are never rebuilt while
	// held, keep hitting their own generation's entries).
	gen      uint32
	ids      []int32
	ls       []link
	extraIDs []int32
	extraLs  []link

	// cands memoizes gatherCands for this row (sparse mode): the
	// attached in-range candidate set in delivery order, valid while
	// the row generation and the medium's attachment generation both
	// stand. Callers copy it into their scratch before iterating so a
	// nested rebuild cannot clobber a loop in progress.
	cands    []spCand
	candsMed *medium
	candsAtt uint64
	candsGen uint32
}

// Network is a simulated 802.11b network.
type Network struct {
	cfg    Config
	rng    *rand.Rand
	rngSrc *detrand.Source // counted source behind rng, for snapshots
	q      eventq.Queue
	media  map[phy.Channel]*medium
	nodes  []*Node
	byAddr map[dot11.Addr]*Node
	// links is the dense pairwise link matrix, indexed by transmitter
	// node ID then receiver node ID. Rows are pointers so in-flight
	// transmissions can hold them across mid-run node additions.
	links   []*linkRow
	noiseMW float64
	taps    []Tap
	// posEpoch counts node moves; rows tagged with an older epoch
	// rebuild lazily on next use (the same mechanism as the power tag).
	posEpoch uint64
	// sparse selects spatially-culled link rows + medium loops. Fixed
	// at New: only deterministic radios (no shadowing) can cull without
	// perturbing the per-delivery RNG stream. See spatial.go.
	sparse bool
	grid   *cellGrid
	// fer is the quantized FER table answering frame-error draws (nil
	// when Config.FERQuantumDB is negative: analytic path).
	fer *phy.FERTable

	// Transmission pool (see medium.go).
	txFree []*transmission
	txSeq  uint64

	// Counters for tests and reports.
	Stats NetStats
}

// NetStats aggregates ground-truth counters across the run (the
// analysis package never sees these; they validate its estimators).
type NetStats struct {
	DataSent      int64 // data transmission attempts
	DataAcked     int64 // acknowledged data frames
	DataDropped   int64 // frames dropped after retry limit
	RTSSent       int64
	CTSSent       int64
	ACKSent       int64
	BeaconsSent   int64
	Collisions    int64 // receiver-side overlap losses
	QueueDrops    int64 // enqueue refused, queue full
	AssocEvents   int64
	ChannelSwitch int64
}

// New creates an empty network.
func New(cfg Config) *Network {
	if cfg.CWMax == 0 {
		cfg = DefaultConfig()
	}
	src := detrand.New(cfg.Seed)
	n := &Network{
		cfg:     cfg,
		rng:     rand.New(src),
		rngSrc:  src,
		media:   make(map[phy.Channel]*medium),
		byAddr:  make(map[dot11.Addr]*Node),
		noiseMW: pow10(cfg.Env.NoiseFloorDBm / 10),
		sparse:  cfg.Env.ShadowingSigmaDB == 0 && !cfg.ForceDenseLinks,
	}
	if cfg.FERQuantumDB >= 0 {
		n.fer = phy.SharedFERTable(cfg.FERQuantumDB)
	}
	return n
}

// Now returns the current simulation time.
func (n *Network) Now() phy.Micros { return n.q.Now() }

// EventsProcessed returns the number of event-queue callbacks fired so
// far — the simulator's fundamental unit of work. Benches report it
// per captured frame to track scheduler efficiency across PRs.
func (n *Network) EventsProcessed() uint64 { return n.q.Processed() }

// EventDeferrals returns the number of in-place re-arms of deferred
// events (see eventq.Event.Defer) — the residual heap traffic of the
// lazy DCF countdown.
func (n *Network) EventDeferrals() uint64 { return n.q.Deferrals() }

// EventHeapOps returns the total event-queue heap mutations beyond
// the unavoidable fire pops: schedulings (inserts), eager
// cancellations (removes), and deferred re-arms (sifts). This is the
// traffic the lazy DCF countdown cuts from O(overheard busy/idle
// transitions) to O(transmissions).
func (n *Network) EventHeapOps() uint64 {
	return n.q.Scheduled() + n.q.Cancelled() + n.q.Deferrals()
}

// Rand exposes the deterministic RNG (used by traffic generators).
func (n *Network) Rand() *rand.Rand { return n.rng }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// AddTap registers a transmission observer (e.g. a sniffer).
func (n *Network) AddTap(t Tap) { n.taps = append(n.taps, t) }

// Nodes returns all nodes in creation order.
func (n *Network) Nodes() []*Node { return n.nodes }

// mediumFor returns (creating if needed) the medium for a channel.
func (n *Network) mediumFor(c phy.Channel) *medium {
	m, ok := n.media[c]
	if !ok {
		m = newMedium(n, c)
		n.media[c] = m
	}
	return m
}

// linkFromTo computes one directed link entry at the given transmit
// power.
func (n *Network) linkFromTo(power float64, from, to *Node) link {
	env := &n.cfg.Env
	dBm := env.RxPowerDBm(power, from.Pos.Distance(to.Pos), nil)
	return link{dBm: dBm, mw: pow10(dBm / 10), snr: env.SNRdB(dBm), sense: env.Senses(dBm)}
}

// rowFor returns node's link-matrix row, rebuilding it if the node's
// transmit power changed or any node moved since it was computed.
func (n *Network) rowFor(node *Node) *linkRow {
	row := n.links[node.ID]
	if row.power != node.TxPower || row.epoch != n.posEpoch {
		row.power = node.TxPower
		row.epoch = n.posEpoch
		if row.sparse {
			n.buildSparseRow(row, node)
		} else {
			for i, o := range n.nodes {
				row.to[i] = n.linkFromTo(row.power, node, o)
			}
		}
	}
	return row
}

// AddAP creates an access point on the given channel.
func (n *Network) AddAP(name string, pos Position, ch phy.Channel) *Node {
	ap := n.newNode(name, pos, ch)
	ap.IsAP = true
	// Enterprise APs (the Airespace hardware of Sec 4.1) adapt per
	// client from observed uplink SNR rather than blind loss-counting;
	// a per-destination SNR adapter models that.
	ap.adapterFactory = rate.NewSNRFactory()
	ap.adapters = make(map[dot11.Addr]rate.Adapter)
	n.scheduleBeacons(ap)
	return ap
}

// AddStation creates a client station associated with ap. The factory
// supplies its rate-adaptation scheme.
func (n *Network) AddStation(name string, pos Position, ap *Node, f rate.Factory) *Node {
	st := n.newNode(name, pos, ap.Channel)
	st.AP = ap
	st.adapter = f()
	st.associated = true
	ap.assocCount++
	n.Stats.AssocEvents++
	return st
}

func (n *Network) newNode(name string, pos Position, ch phy.Channel) *Node {
	id := len(n.nodes)
	node := &Node{
		net:     n,
		ID:      id,
		Name:    name,
		Addr:    dot11.AddrFromUint64(uint64(id) + 0x100),
		Pos:     pos,
		Channel: ch,
		TxPower: n.cfg.DefaultTxPowerDBm,
		cw:      phy.CWMin,
	}
	node.initCallbacks()
	n.nodes = append(n.nodes, node)
	n.byAddr[node.Addr] = node
	// Extend every existing transmitter's row toward the new node, at
	// the power that row was computed at (lazy rebuild handles drift).
	// Sparse rows mirror the dense append only when the link clears a
	// floor: a below-both-floors entry is one the dense loops store
	// only to skip (zero side effects), and an interference lookup
	// that misses recomputes the same value from the row's positions —
	// the exact inertness contract sparse misses already satisfy. So
	// rows pinned by in-flight transmissions see mid-run churn
	// identically in both modes, and adding N nodes costs O(N·k)
	// stored links, not O(N²).
	for i, row := range n.links {
		if row.sparse {
			if l := n.linkFromTo(row.power, n.nodes[i], node); l.sense || l.snr > 0 {
				row.extraIDs = append(row.extraIDs, int32(node.ID))
				row.extraLs = append(row.extraLs, l)
			}
		} else {
			row.to = append(row.to, n.linkFromTo(row.power, n.nodes[i], node))
		}
	}
	// Build the new node's own row.
	row := &linkRow{power: node.TxPower, epoch: n.posEpoch, sparse: n.sparse}
	if n.sparse {
		n.buildSparseRow(row, node)
	} else {
		row.to = make([]link, len(n.nodes))
		for i, o := range n.nodes {
			row.to[i] = n.linkFromTo(row.power, node, o)
		}
	}
	n.links = append(n.links, row)
	n.mediumFor(ch).attach(node)
	return node
}

// scheduleBeacons emits a beacon from ap every beacon interval with a
// small deterministic phase offset so co-channel APs don't align.
func (n *Network) scheduleBeacons(ap *Node) {
	interval := phy.Micros(dot11.BeaconIntervalTU) * 1024
	offset := phy.Micros(ap.ID%10) * 7 * 1000
	var emit func()
	emit = func() {
		if ap.associatedNet() {
			b := dot11.NewBeacon(ap.Addr, "ietf62", uint8(ap.Channel), uint64(n.Now()), ap.nextSeq())
			ap.enqueueFrame(queuedFrame{kind: frameBeacon, mgmt: &b.Management})
		}
		n.q.After(interval, emit)
	}
	n.q.After(offset, emit)
}

// Schedule runs fn at absolute simulation time t (clamped to now if in
// the past). Workload scripts use this for churn and load changes.
func (n *Network) Schedule(t phy.Micros, fn func()) { n.q.At(t, fn) }

// RunUntil advances simulation time to the deadline.
func (n *Network) RunUntil(t phy.Micros) { n.q.RunUntil(t) }

// RunFor advances simulation time by d.
func (n *Network) RunFor(d phy.Micros) { n.q.RunUntil(n.Now() + d) }

// MoveNode relocates a node. Every link-matrix row is invalidated
// lazily through the position epoch (the same mechanism the power tag
// uses), so the radio geometry follows on the next transmission;
// sniffers re-derive their per-transmitter state from the
// observation's FromPos, so passive observers follow automatically.
func (n *Network) MoveNode(node *Node, pos Position) {
	if node.Pos == pos {
		return
	}
	node.Pos = pos
	n.posEpoch++
}

// NearestAP returns the geometrically nearest AP to pos (ties broken
// by slice order) — the roaming target a client scanning all channels
// would pick, since the shared log-distance environment makes rx
// power monotone in distance. Returns nil for an empty slice.
//
// This is the compat wrapper for callers holding a bare AP slice; hot
// roam paths should use Network.NearestAP (spatial.go), which answers
// from the spatial index instead of scanning every AP.
func NearestAP(aps []*Node, pos Position) *Node {
	var best *Node
	bestD := math.Inf(1)
	for _, ap := range aps {
		if d := ap.Pos.Distance(pos); d < bestD {
			best, bestD = ap, d
		}
	}
	return best
}

// Disassociate removes a station from its AP and stops its traffic.
func (n *Network) Disassociate(st *Node) {
	if st.associated && st.AP != nil {
		st.associated = false
		st.AP.assocCount--
		n.Stats.AssocEvents++
	}
}

// Reassociate points st at a (possibly different) AP and channel.
func (n *Network) Reassociate(st *Node, ap *Node) {
	n.Disassociate(st)
	st.moveToChannel(ap.Channel)
	st.AP = ap
	st.associated = true
	ap.assocCount++
	n.Stats.AssocEvents++
}

// AssociatedCount returns the number of stations currently associated
// with ap.
func (n *Network) AssociatedCount(ap *Node) int { return ap.assocCount }

// AssociatedTotal returns the number of associated stations in the
// whole network (ground truth for Figure 4b).
func (n *Network) AssociatedTotal() int {
	total := 0
	for _, node := range n.nodes {
		if !node.IsAP && node.associated {
			total++
		}
	}
	return total
}

// String summarizes the network.
func (n *Network) String() string {
	aps, stas := 0, 0
	for _, node := range n.nodes {
		if node.IsAP {
			aps++
		} else {
			stas++
		}
	}
	return fmt.Sprintf("sim.Network{aps: %d, stations: %d, t: %dµs}", aps, stas, n.Now())
}
