package sim

import (
	"math"
	"testing"

	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
)

// TestMoveNodeInvalidatesLinks proves movement reaches the link
// matrix: a station moved out of range before transmitting must fail
// where the unmoved twin succeeds — a stale row would deliver anyway.
func TestMoveNodeInvalidatesLinks(t *testing.T) {
	near, _, stas := testNet(1, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	nearAP := near.Nodes()[0]
	stas[0].SendData(nearAP.Addr, 500)
	near.RunFor(phy.MicrosPerSecond)
	if stas[0].Acked != 1 {
		t.Fatalf("baseline delivery failed: Acked = %d", stas[0].Acked)
	}

	far, _, fstas := testNet(1, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	farAP := far.Nodes()[0]
	far.MoveNode(fstas[0], Position{X: 5000, Y: 5000})
	fstas[0].SendData(farAP.Addr, 500)
	far.RunFor(phy.MicrosPerSecond)
	if fstas[0].Acked != 0 {
		t.Fatalf("moved station still delivered through a stale link row: Acked = %d", fstas[0].Acked)
	}
}

// TestMoveNodeVisibleToTaps checks a tap (sniffer) sees the mover's
// new position on the very next observation.
func TestMoveNodeVisibleToTaps(t *testing.T) {
	net, ap, stas := testNet(1, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	var positions []Position
	net.AddTap(tapFunc(func(o TxObservation) {
		if o.FromID == stas[0].ID {
			positions = append(positions, o.FromPos)
		}
	}))
	stas[0].SendData(ap.Addr, 100)
	net.RunFor(phy.MicrosPerSecond)
	moved := Position{X: 40, Y: 40}
	net.MoveNode(stas[0], moved)
	stas[0].SendData(ap.Addr, 100)
	net.RunFor(phy.MicrosPerSecond)
	if len(positions) < 2 {
		t.Fatalf("observed %d transmissions, want ≥2", len(positions))
	}
	if positions[len(positions)-1] != moved {
		t.Errorf("tap saw stale position %+v after move to %+v", positions[len(positions)-1], moved)
	}
}

// TestWaypointMover checks the walker's deterministic geometry: speed ×
// time distance along the path, waypoint capture, and cycling.
func TestWaypointMover(t *testing.T) {
	net, _, stas := testNet(1, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	st := stas[0]
	start := st.Pos
	// 2 m/s toward a point 10 m away on the x axis, updated every 0.5 s.
	target := Position{X: start.X + 10, Y: start.Y}
	net.StartWaypoints(st, 2, phy.MicrosPerSecond/2, target, start)

	net.RunFor(2 * phy.MicrosPerSecond) // 4 m walked
	want := Position{X: start.X + 4, Y: start.Y}
	if math.Abs(st.Pos.X-want.X) > 1e-9 || st.Pos.Y != want.Y {
		t.Fatalf("after 2 s: pos = %+v, want %+v", st.Pos, want)
	}

	net.RunFor(3 * phy.MicrosPerSecond) // total 10 m: exactly at target
	if st.Pos != target {
		t.Fatalf("after 5 s: pos = %+v, want waypoint %+v", st.Pos, target)
	}

	net.RunFor(5 * phy.MicrosPerSecond) // walks back along the cycle
	if st.Pos != start {
		t.Fatalf("after 10 s: pos = %+v, want cycled back to %+v", st.Pos, start)
	}
}

// TestWaypointMoverFastLaps checks a mover whose per-interval distance
// spans several waypoint segments (multiple laps of a short cycle) is
// not cut short: 25 m at 50 m/s over a 20 m two-point cycle lands
// mid-segment, 5 m past the far point.
func TestWaypointMoverFastLaps(t *testing.T) {
	net, _, stas := testNet(1, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	st := stas[0]
	start := st.Pos
	far := Position{X: start.X + 10, Y: start.Y}
	net.StartWaypoints(st, 50, phy.MicrosPerSecond/2, far, start)

	net.RunFor(phy.MicrosPerSecond / 2) // one 25 m step: lap (20) + 5 toward far
	want := Position{X: start.X + 5, Y: start.Y}
	if math.Abs(st.Pos.X-want.X) > 1e-9 || st.Pos.Y != want.Y {
		t.Fatalf("fast step truncated: pos = %+v, want %+v", st.Pos, want)
	}
}

// TestWaypointMoverDegenerate pins that a path of coincident points
// terminates (the zero-hop bound) and leaves the node parked there.
func TestWaypointMoverDegenerate(t *testing.T) {
	net, _, stas := testNet(1, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	st := stas[0]
	p := st.Pos
	net.StartWaypoints(st, 50, phy.MicrosPerSecond/2, p, p, p)
	net.RunFor(2 * phy.MicrosPerSecond)
	if st.Pos != p {
		t.Fatalf("degenerate path moved the node: %+v", st.Pos)
	}
}

// TestMoverStop freezes the node.
func TestMoverStop(t *testing.T) {
	net, _, stas := testNet(1, 1, rate.NewFixedFactory(phy.Rate11Mbps))
	st := stas[0]
	m := net.StartWaypoints(st, 2, phy.MicrosPerSecond/2, Position{X: 100, Y: 100})
	net.RunFor(phy.MicrosPerSecond)
	m.Stop()
	frozen := st.Pos
	net.RunFor(5 * phy.MicrosPerSecond)
	if st.Pos != frozen {
		t.Fatalf("stopped mover kept walking: %+v vs %+v", st.Pos, frozen)
	}
}

// TestOFDMCapabilityGate drives a dual-mode pair at close range and a
// b-only receiver variant, checking (a) OFDM rates actually go on the
// air between g peers, (b) a transmitter never picks OFDM toward a
// b-only peer, and (c) b-only bystanders still sense (defer to) OFDM
// energy — carrier sense is rate-blind.
func TestOFDMCapabilityGate(t *testing.T) {
	gl := rate.NewSNRFactoryLadder(rate.LadderBG)

	// Dual-mode pair: OFDM expected.
	net, ap, stas := testNet(1, 1, gl)
	ap.GCapable = true
	ap.SetGAdapterFactory(gl)
	stas[0].GCapable = true
	ofdm := 0
	net.AddTap(tapFunc(func(o TxObservation) {
		if o.Rate.OFDM() {
			ofdm++
		}
	}))
	for i := 0; i < 20; i++ {
		stas[0].SendData(ap.Addr, 800)
	}
	net.RunFor(phy.MicrosPerSecond)
	if ofdm == 0 {
		t.Error("dual-mode pair never used an OFDM rate")
	}
	if stas[0].Acked == 0 {
		t.Error("dual-mode OFDM data never delivered")
	}

	// Same station population, b-only AP: the station's dual-mode
	// adapter must be clamped to CCK on the air.
	net2, ap2, stas2 := testNet(1, 1, gl)
	stas2[0].GCapable = true // AP stays b-only
	ofdm2 := 0
	net2.AddTap(tapFunc(func(o TxObservation) {
		if o.Rate.OFDM() {
			ofdm2++
		}
	}))
	for i := 0; i < 20; i++ {
		stas2[0].SendData(ap2.Addr, 800)
	}
	net2.RunFor(phy.MicrosPerSecond)
	if ofdm2 != 0 {
		t.Errorf("%d OFDM frames sent toward a b-only receiver", ofdm2)
	}
	if stas2[0].Acked == 0 {
		t.Error("clamped CCK data never delivered")
	}
}
