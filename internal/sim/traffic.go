package sim

import (
	"wlan80211/internal/phy"
)

// This file generates application traffic. The paper maps its four
// frame-size classes to application types (Sec 6): small frames to
// voice/audio and control traffic, medium/large/extra-large to file
// transfer, SSH, HTTP, and video. Each profile below produces frames
// in one class, and the Mix type composes them into a population.

// SizeClassBounds are the paper's frame-size class boundaries in
// bytes (frame sizes, i.e. MAC header + body + FCS).
const (
	SmallMax  = 400
	MediumMax = 800
	LargeMax  = 1200
	XLMax     = 1600 // generation cap; the class itself is unbounded
)

// Profile describes one application's frame generation.
type Profile struct {
	// Name for reports ("voice", "web", ...).
	Name string
	// MinFrame/MaxFrame bound the generated wire frame size in bytes
	// (header+body+FCS); bodies are sized to hit this range.
	MinFrame, MaxFrame int
	// MeanIntervalMicros is the mean inter-frame gap (exponential).
	MeanIntervalMicros phy.Micros
	// Downlink is the fraction of frames sent AP→station (the rest
	// are station→AP), mirroring asymmetric web/bulk traffic.
	Downlink float64
}

// The application profiles used by the IETF62 scenarios. Rates are
// per-station means chosen so a few hundred stations saturate a
// channel, as at the meeting.
var (
	// ProfileVoice generates small frames at a steady clip (VoIP-ish).
	ProfileVoice = Profile{Name: "voice", MinFrame: 90, MaxFrame: 240, MeanIntervalMicros: 60_000, Downlink: 0.5}
	// ProfileInteractive generates medium frames (SSH, chat, email).
	ProfileInteractive = Profile{Name: "interactive", MinFrame: 420, MaxFrame: 780, MeanIntervalMicros: 180_000, Downlink: 0.45}
	// ProfileWeb generates large frames (HTTP responses).
	ProfileWeb = Profile{Name: "web", MinFrame: 850, MaxFrame: 1180, MeanIntervalMicros: 220_000, Downlink: 0.75}
	// ProfileBulk generates extra-large frames (file transfer, video).
	ProfileBulk = Profile{Name: "bulk", MinFrame: 1260, MaxFrame: 1540, MeanIntervalMicros: 90_000, Downlink: 0.55}
)

// DefaultMix approximates conference traffic: mostly web/interactive,
// a bulk-transfer minority, some voice-like small-frame apps.
func DefaultMix() []WeightedProfile {
	return []WeightedProfile{
		{ProfileVoice, 0.20},
		{ProfileInteractive, 0.30},
		{ProfileWeb, 0.30},
		{ProfileBulk, 0.20},
	}
}

// WeightedProfile pairs a profile with its population share.
type WeightedProfile struct {
	Profile Profile
	Weight  float64
}

// Generator drives one station's application traffic.
type Generator struct {
	net     *Network
	station *Node
	profile Profile
	// LoadScale multiplies the frame arrival rate (1.0 = profile
	// rate); experiments sweep this to move the network through the
	// paper's utilization range.
	loadScale float64
	stopped   bool
	tick      func() // reusable arrival callback
}

// StartTraffic attaches a traffic generator with the given profile to
// a station. loadScale multiplies the arrival rate.
func (n *Network) StartTraffic(st *Node, p Profile, loadScale float64) *Generator {
	if loadScale <= 0 {
		loadScale = 1
	}
	g := &Generator{net: n, station: st, profile: p, loadScale: loadScale}
	g.tick = func() {
		g.emit()
		g.scheduleNext()
	}
	g.scheduleNext()
	return g
}

// PickProfile selects a profile from a weighted mix using the
// network's RNG.
func (n *Network) PickProfile(mix []WeightedProfile) Profile {
	total := 0.0
	for _, w := range mix {
		total += w.Weight
	}
	x := n.rng.Float64() * total
	for _, w := range mix {
		x -= w.Weight
		if x <= 0 {
			return w.Profile
		}
	}
	return mix[len(mix)-1].Profile
}

// Stop halts the generator after any already-scheduled arrival.
func (g *Generator) Stop() { g.stopped = true }

func (g *Generator) scheduleNext() {
	if g.stopped {
		return
	}
	mean := float64(g.profile.MeanIntervalMicros) / g.loadScale
	gap := phy.Micros(g.net.rng.ExpFloat64() * mean)
	if gap < 100 {
		gap = 100
	}
	g.net.q.After(gap, g.tick)
}

// emit queues one application frame in the chosen direction.
func (g *Generator) emit() {
	if g.stopped || !g.station.associated || g.station.AP == nil {
		return
	}
	wire := g.profile.MinFrame
	if g.profile.MaxFrame > g.profile.MinFrame {
		wire += g.net.rng.Intn(g.profile.MaxFrame - g.profile.MinFrame + 1)
	}
	body := wire - 28 // MAC header (24) + FCS (4)
	if body < 0 {
		body = 0
	}
	if g.net.rng.Float64() < g.profile.Downlink {
		g.station.AP.SendData(g.station.Addr, body)
	} else {
		g.station.SendData(g.station.AP.Addr, body)
	}
}

// SizeClass returns the paper's size-class letter for a wire frame
// length: S, M, L, or XL (Sec 6).
func SizeClass(wireLen int) string {
	switch {
	case wireLen <= SmallMax:
		return "S"
	case wireLen <= MediumMax:
		return "M"
	case wireLen <= LargeMax:
		return "L"
	default:
		return "XL"
	}
}
