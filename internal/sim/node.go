package sim

import (
	"math"

	"wlan80211/internal/dot11"
	"wlan80211/internal/eventq"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
)

func pow10(x float64) float64 { return math.Pow(10, x) }
func log10(x float64) float64 { return math.Log10(x) }

// zeroBody is the shared all-zeros payload for generated data frames
// (the simulator models sizes, not contents). Bodies beyond its length
// fall back to a per-frame allocation.
var zeroBody [4096]byte

// frameKind classifies queued transmissions.
type frameKind int

const (
	frameData frameKind = iota
	frameBeacon
	frameMgmt
)

// queuedFrame is one MSDU (or management frame) awaiting DCF access.
type queuedFrame struct {
	kind frameKind
	// data fields
	to       dot11.Addr
	size     int // MAC body bytes
	useRTS   bool
	enqueued phy.Micros
	seq      uint16
	retries  int
	// mgmt/beacon payload
	mgmt *dot11.Management
}

// wireLen returns the over-the-air frame length including FCS.
func (f *queuedFrame) wireLen() int {
	if f.mgmt != nil {
		return f.mgmt.WireLen()
	}
	return dot11.DataHeaderLen + f.size + 4
}

// respKind classifies the node's pending SIFS response. At most one
// response can be pending: two overlapping frames both addressed to
// this node cannot both clear the mutual-interference capture check,
// so two deliveries can never land within one SIFS.
type respKind int

const (
	respNone respKind = iota
	respACK
	respCTS
)

// Node is a station or access point.
type Node struct {
	net     *Network
	medium  *medium
	ID      int
	Name    string
	Addr    dot11.Addr
	Pos     Position
	Channel phy.Channel
	TxPower float64
	IsAP    bool
	// UseRTS makes the node protect unicast data with RTS/CTS — the
	// minority behaviour the paper observed (Sec 6.1).
	UseRTS bool
	// GCapable marks an 802.11b/g dual-mode radio. b-only nodes cannot
	// demodulate ERP-OFDM frames (they sense the energy but decode
	// nothing, so they miss NAV updates carried at OFDM rates — the
	// protection-off interference of mixed cells), and a transmitter
	// never sends OFDM toward a peer that cannot decode it. Set before
	// traffic starts.
	GCapable bool
	// AP is the node's access point (nil for APs themselves).
	AP *Node

	// adapter drives rate selection for stations (single peer: the
	// AP). APs adapt per destination via adapterFactory/adapters —
	// one client's collisions must not drag down another's downlink.
	// gAdapterFactory, when set on a dual-mode AP, supplies the
	// adapter toward dual-mode peers (b-only peers keep adapterFactory).
	adapter         rate.Adapter
	adapterFactory  rate.Factory
	gAdapterFactory rate.Factory
	adapters        map[dot11.Addr]rate.Adapter
	associated      bool
	assocCount      int // for APs: number of associated stations

	// DCF state. The transmit queue is a ring over queue[qhead:].
	queue        []queuedFrame
	qhead        int
	seq          uint16
	cw           int
	backoff      int // remaining backoff slots
	busyCount    int // number of sensed in-flight transmissions
	navUntil     phy.Micros
	idleSince    phy.Micros // when busyCount last reached 0
	transmitting bool

	countdown      eventq.Event
	countdownStart phy.Micros // when the current DIFS+backoff wait began

	awaiting     awaitKind
	awaitTimeout eventq.Event

	// Pending SIFS response (see respKind).
	pendingResp respKind
	respRA      dot11.Addr
	respDur     uint16

	// Preallocated event callbacks and frame scratch: the DCF loop
	// schedules thousands of events per simulated second, and closures
	// or frame structs allocated per event would dominate the profile.
	onCountdownFn func()
	onNAVFn       func()
	onAwaitFn     func()
	onCTSDataFn   func()
	onRespFn      func()
	scratchData   dot11.Data
	scratchRTS    dot11.RTS
	scratchCTS    dot11.CTS
	scratchACK    dot11.ACK

	// Per-node ground-truth counters.
	Sent    int64 // data attempts
	Acked   int64 // acknowledged data frames
	Dropped int64 // data frames dropped at retry limit
}

type awaitKind int

const (
	awaitNone awaitKind = iota
	awaitCTS
	awaitACK
)

// initCallbacks binds the node's reusable event callbacks.
func (n *Node) initCallbacks() {
	n.onCountdownFn = func() {
		n.countdown = eventq.Event{}
		n.backoff = 0
		n.transmitHead()
	}
	n.onNAVFn = func() {
		n.countdown = eventq.Event{}
		n.resumeCountdown()
	}
	n.onAwaitFn = func() {
		n.awaitTimeout = eventq.Event{}
		n.onExchangeFailure()
	}
	n.onCTSDataFn = func() {
		if n.queueLen() > 0 {
			n.transmitData(n.head())
		}
	}
	n.onRespFn = func() { n.fireResp() }
}

// nextSeq mints the next MAC sequence number.
func (n *Node) nextSeq() uint16 {
	n.seq = (n.seq + 1) & 0xfff
	return n.seq
}

// associatedNet reports whether the node should be active (APs always;
// stations only while associated).
func (n *Node) associatedNet() bool { return n.IsAP || n.associated }

// Adapter returns the node's rate adapter (stations). For APs it
// returns nil; use AdapterFor.
func (n *Node) Adapter() rate.Adapter { return n.adapter }

// SetGAdapterFactory supplies the rate-adaptation factory a dual-mode
// AP uses toward dual-mode peers; b-only peers keep the default
// factory. Call before the AP serves traffic.
func (n *Node) SetGAdapterFactory(f rate.Factory) { n.gAdapterFactory = f }

// AdapterFor returns the adapter used toward a destination: the
// per-destination adapter for APs, the single adapter otherwise. The
// adapter is created on first use; for dual-mode APs the peer's PHY
// capability (fixed for its lifetime) picks the factory.
func (n *Node) AdapterFor(to dot11.Addr) rate.Adapter {
	if n.adapterFactory == nil {
		return n.adapter
	}
	a, ok := n.adapters[to]
	if !ok {
		f := n.adapterFactory
		if n.gAdapterFactory != nil && n.GCapable {
			if peer := n.peerByAddr(to); peer != nil && peer.GCapable {
				f = n.gAdapterFactory
			}
		}
		a = f()
		n.adapters[to] = a
	}
	return a
}

// queueLen and head give ring-queue access to pending frames.
func (n *Node) queueLen() int      { return len(n.queue) - n.qhead }
func (n *Node) head() *queuedFrame { return &n.queue[n.qhead] }

// QueueLen returns the number of frames awaiting transmission.
func (n *Node) QueueLen() int { return n.queueLen() }

// SendData enqueues a data frame of size body bytes to the given
// destination. It reports whether the frame was accepted (the queue
// is bounded; overflowing traffic is dropped like a real NIC ring).
func (n *Node) SendData(to dot11.Addr, size int) bool {
	if size < 0 || !n.associatedNet() {
		return false
	}
	if n.queueLen() >= n.net.cfg.QueueLimit {
		n.net.Stats.QueueDrops++
		return false
	}
	f := queuedFrame{
		kind:     frameData,
		to:       to,
		size:     size,
		useRTS:   n.UseRTS && !to.IsGroup(),
		enqueued: n.net.q.Now(),
		seq:      n.nextSeq(),
	}
	n.enqueueFrame(f)
	return true
}

// enqueueFrame adds a frame and kicks the access procedure if idle.
func (n *Node) enqueueFrame(f queuedFrame) {
	wasEmpty := n.queueLen() == 0
	n.queue = append(n.queue, f)
	if wasEmpty && n.awaiting == awaitNone && !n.transmitting {
		// Fresh access: if the medium has been idle ≥ DIFS the frame
		// may go immediately (zero backoff), else draw a backoff.
		n.startAccess(true)
	}
}

// startAccess begins (or resumes) the DIFS + backoff countdown for
// the head-of-queue frame. fresh marks a first attempt, which may
// transmit without backoff on a long-idle medium.
func (n *Node) startAccess(fresh bool) {
	if n.queueLen() == 0 || n.countdown.Scheduled() || n.transmitting || n.awaiting != awaitNone {
		return
	}
	now := n.net.q.Now()
	if fresh {
		if n.busyCount == 0 && now >= n.navUntil && now-n.idleSince >= phy.DIFS {
			n.backoff = 0
		} else {
			n.backoff = n.net.rng.Intn(n.cw + 1)
		}
	}
	n.resumeCountdown()
}

// resumeCountdown schedules the transmit event if the medium is idle,
// or waits for the busy→idle notification otherwise.
func (n *Node) resumeCountdown() {
	if n.countdown.Scheduled() || n.queueLen() == 0 {
		return
	}
	now := n.net.q.Now()
	if n.busyCount > 0 {
		return // mediumBusyDelta(-1) will resume us
	}
	start := now
	if n.navUntil > start {
		// Virtual carrier sense: wait out the NAV first. The backoff
		// has not started, so countdownStart points at the NAV end;
		// a pause during this wait must consume no slots.
		n.countdownStart = n.navUntil
		n.countdown = n.net.q.At(n.navUntil, n.onNAVFn)
		return
	}
	n.countdownStart = start
	wait := phy.DIFS + phy.Micros(n.backoff)*phy.SlotTime
	n.countdown = n.net.q.After(wait, n.onCountdownFn)
}

// pauseCountdown freezes the backoff timer when the medium goes busy,
// banking fully-elapsed slots (802.11 freezes, not resets, backoff).
func (n *Node) pauseCountdown() {
	if !n.countdown.Scheduled() {
		return
	}
	elapsed := n.net.q.Now() - n.countdownStart - phy.DIFS
	if elapsed > 0 {
		consumed := int(elapsed / phy.SlotTime)
		if consumed > n.backoff {
			consumed = n.backoff
		}
		n.backoff -= consumed
	}
	n.countdown.Cancel()
	n.countdown = eventq.Event{}
}

// mediumBusyDelta is called by the medium when a sensed transmission
// starts (+1) or ends (-1).
func (n *Node) mediumBusyDelta(d int) {
	was := n.busyCount
	n.busyCount += d
	if n.busyCount < 0 {
		n.busyCount = 0
	}
	if was == 0 && n.busyCount > 0 {
		n.pauseCountdown()
	}
	if was > 0 && n.busyCount == 0 {
		n.idleSince = n.net.q.Now()
		n.resumeCountdown()
	}
}

// transmitHead puts the head-of-queue frame on the air (RTS first if
// the frame uses RTS/CTS protection).
func (n *Node) transmitHead() {
	if n.queueLen() == 0 || n.transmitting {
		return
	}
	f := n.head()
	switch f.kind {
	case frameBeacon, frameMgmt:
		n.transmitting = true
		if f.kind == frameBeacon {
			n.net.Stats.BeaconsSent++
		}
		n.medium.transmit(n, f.mgmt, phy.ControlRate)
		return
	}
	if f.useRTS {
		n.transmitRTS(f)
		return
	}
	n.transmitData(f)
}

// dataRate queries the adapter with the node's SNR estimate toward the
// frame's receiver. An OFDM pick is clamped to 11 Mbps unless both
// ends are dual-mode — a g station that roamed into a b cell (or
// addresses a b peer) falls back to CCK rather than transmit frames
// its receiver cannot demodulate.
func (n *Node) dataRate(f *queuedFrame) phy.Rate {
	r := n.AdapterFor(f.to).RateFor(f.wireLen(), n.snrTowards(f.to))
	if r.OFDM() {
		peer := n.peerByAddr(f.to)
		if !n.GCapable || peer == nil || !peer.GCapable {
			r = phy.Rate11Mbps
		}
	}
	return r
}

// snrTowards estimates the SNR at the receiver using the deterministic
// path loss (what an SNR-based scheme would learn from ACKs).
func (n *Node) snrTowards(to dot11.Addr) float64 {
	peer := n.peerByAddr(to)
	if peer == nil {
		return 25 // unknown receiver: assume a healthy link
	}
	return n.net.rowFor(n).to[peer.ID].snr
}

// peerByAddr resolves an address to a node (nil for broadcast or
// unknown).
func (n *Node) peerByAddr(a dot11.Addr) *Node {
	if a.IsGroup() {
		return nil
	}
	return n.net.byAddr[a]
}

func (n *Node) transmitRTS(f *queuedFrame) {
	n.transmitting = true
	n.net.Stats.RTSSent++
	r := n.dataRate(f)
	n.scratchRTS = dot11.RTS{
		FC:       dot11.FrameControl{Type: dot11.TypeCtrl, Subtype: dot11.SubtypeRTS},
		Duration: dot11.NAVForRTS(f.wireLen(), r),
		RA:       f.to,
		TA:       n.Addr,
	}
	end := n.medium.transmit(n, &n.scratchRTS, phy.ControlRate)
	// CTS timeout: SIFS + CTS airtime + 2 slots of grace.
	n.awaiting = awaitCTS
	n.awaitTimeout = n.net.q.At(end+phy.SIFS+phy.CtsDuration(phy.ControlRate)+2*phy.SlotTime, n.onAwaitFn)
}

func (n *Node) transmitData(f *queuedFrame) {
	n.transmitting = true
	n.Sent++
	n.net.Stats.DataSent++
	r := n.dataRate(f)
	bssid := n.Addr
	if n.AP != nil {
		bssid = n.AP.Addr
	}
	var body []byte
	if f.size <= len(zeroBody) {
		body = zeroBody[:f.size]
	} else {
		body = make([]byte, f.size)
	}
	d := &n.scratchData
	if n.IsAP {
		*d = dot11.Data{
			FC:    dot11.FrameControl{Type: dot11.TypeData, Subtype: dot11.SubtypeData, FromDS: true},
			Addr1: f.to, Addr2: n.Addr, Addr3: n.Addr,
			Seq:  dot11.SeqControl{Num: f.seq & 0xfff},
			Body: body,
		}
	} else {
		// ToDS: Addr1 = BSSID (the AP receives and relays), Addr2 =
		// station, Addr3 = final destination.
		*d = dot11.Data{
			FC:    dot11.FrameControl{Type: dot11.TypeData, Subtype: dot11.SubtypeData, ToDS: true},
			Addr1: bssid, Addr2: n.Addr, Addr3: f.to,
			Seq:  dot11.SeqControl{Num: f.seq & 0xfff},
			Body: body,
		}
	}
	d.FC.Retry = f.retries > 0
	d.Duration = dot11.NAVForData(d.Addr1, phy.ControlRate)
	end := n.medium.transmit(n, d, r)
	if d.Addr1.IsGroup() {
		// Broadcast: no ACK expected; completion pops the frame.
		n.awaiting = awaitNone
		return
	}
	n.awaiting = awaitACK
	n.awaitTimeout = n.net.q.At(end+phy.SIFS+phy.AckDuration(phy.ControlRate)+2*phy.SlotTime, n.onAwaitFn)
}

// transmissionDone is called by the medium when this node's
// transmission leaves the air.
func (n *Node) transmissionDone(tx *transmission) {
	n.transmitting = false
	switch tx.parsed.(type) {
	case *dot11.Management, *dot11.Beacon:
		// Beacons/mgmt are unacknowledged broadcasts: pop and go on.
		n.popHead()
		n.startAccess(true)
	case *dot11.Data:
		if d := tx.parsed.(*dot11.Data); d.Addr1.IsGroup() {
			n.popHead()
			n.startAccess(true)
		}
		// Unicast data: wait for ACK/timeout.
	case *dot11.ACK, *dot11.CTS:
		// SIFS responses carry no queue state.
	case *dot11.RTS:
		// Waiting for CTS.
	}
}

// popHead removes the head-of-queue frame and resets retry state. The
// ring compacts once the dead prefix outweighs the live tail, so the
// backing array stays bounded by the queue limit.
func (n *Node) popHead() {
	if n.queueLen() > 0 {
		n.queue[n.qhead] = queuedFrame{} // drop mgmt refs
		n.qhead++
		if n.qhead == len(n.queue) {
			n.queue = n.queue[:0]
			n.qhead = 0
		} else if n.qhead >= 32 && n.qhead*2 >= len(n.queue) {
			k := copy(n.queue, n.queue[n.qhead:])
			n.queue = n.queue[:k]
			n.qhead = 0
		}
	}
	n.cw = phy.CWMin
}

// onExchangeFailure handles a missing CTS or ACK: binary exponential
// backoff, retry, or drop at the retry limit.
func (n *Node) onExchangeFailure() {
	n.awaiting = awaitNone
	if n.queueLen() == 0 {
		return
	}
	f := n.head()
	f.retries++
	if f.kind == frameData {
		n.AdapterFor(f.to).OnFailure()
	}
	limit := n.net.cfg.ShortRetryLimit
	if f.useRTS {
		limit = n.net.cfg.LongRetryLimit
	}
	if f.retries > limit {
		n.Dropped++
		n.net.Stats.DataDropped++
		n.popHead()
		n.startAccess(true)
		return
	}
	// Double the contention window and redraw backoff.
	n.cw = n.cw*2 + 1
	if n.cw > n.net.cfg.CWMax {
		n.cw = n.net.cfg.CWMax
	}
	n.backoff = n.net.rng.Intn(n.cw + 1)
	n.resumeCountdown()
}

// scheduleResp queues the node's SIFS response (see respKind for why
// a single slot suffices).
func (n *Node) scheduleResp(kind respKind, ra dot11.Addr, dur uint16) {
	n.pendingResp = kind
	n.respRA = ra
	n.respDur = dur
	n.net.q.After(phy.SIFS, n.onRespFn)
}

// fireResp builds and transmits the pending SIFS response.
func (n *Node) fireResp() {
	kind := n.pendingResp
	n.pendingResp = respNone
	switch kind {
	case respCTS:
		n.scratchCTS = dot11.CTS{
			FC:       dot11.FrameControl{Type: dot11.TypeCtrl, Subtype: dot11.SubtypeCTS},
			Duration: n.respDur,
			RA:       n.respRA,
		}
		n.medium.transmit(n, &n.scratchCTS, phy.ControlRate)
	case respACK:
		n.scratchACK = dot11.ACK{
			FC: dot11.FrameControl{Type: dot11.TypeCtrl, Subtype: dot11.SubtypeACK},
			RA: n.respRA,
		}
		n.medium.transmit(n, &n.scratchACK, phy.ControlRate)
	}
}

// receive handles a successfully decoded frame at this node.
func (n *Node) receive(tx *transmission, snrDB float64) {
	now := n.net.q.Now()
	switch f := tx.parsed.(type) {
	case *dot11.RTS:
		if f.RA == n.Addr {
			if now < n.navUntil {
				return // NAV busy: stay silent, sender times out
			}
			n.net.Stats.CTSSent++
			n.scheduleResp(respCTS, f.TA, dot11.NAVForCTS(f.Duration))
		} else {
			n.updateNAV(now, f.Duration)
		}
	case *dot11.CTS:
		if f.RA == n.Addr && n.awaiting == awaitCTS {
			n.clearAwait()
			if n.queueLen() > 0 {
				n.net.q.After(phy.SIFS, n.onCTSDataFn)
			}
		} else if f.RA != n.Addr {
			n.updateNAV(now, f.Duration)
		}
	case *dot11.ACK:
		if f.RA == n.Addr && n.awaiting == awaitACK {
			n.clearAwait()
			n.Acked++
			n.net.Stats.DataAcked++
			if n.queueLen() > 0 {
				n.AdapterFor(n.head().to).OnAck()
			}
			n.popHead()
			n.startAccess(true)
		}
	case *dot11.Data:
		if f.Addr1 == n.Addr {
			n.net.Stats.ACKSent++
			n.scheduleResp(respACK, f.Addr2, 0)
		} else if !f.Addr1.IsGroup() {
			n.updateNAV(now, f.Duration)
		}
	case *dot11.Beacon, *dot11.Management:
		// Beacons keep stations' TSF in sync; nothing to do here.
	}
}

// clearAwait cancels the pending CTS/ACK timeout.
func (n *Node) clearAwait() {
	n.awaiting = awaitNone
	n.awaitTimeout.Cancel()
	n.awaitTimeout = eventq.Event{}
}

// updateNAV extends the virtual carrier sense from an overheard
// Duration field.
func (n *Node) updateNAV(now phy.Micros, duration uint16) {
	until := now + phy.Micros(duration)
	if until > n.navUntil {
		n.navUntil = until
		// If a countdown is pending it must respect the new NAV.
		if n.countdown.Scheduled() && n.busyCount == 0 {
			n.pauseCountdownForNAV()
		}
	}
}

// pauseCountdownForNAV reschedules a running countdown behind the NAV.
func (n *Node) pauseCountdownForNAV() {
	n.pauseCountdown()
	n.resumeCountdown()
}

// moveToChannel detaches the node from its medium and attaches it to
// the new channel (AP channel switching; stations follow their AP).
func (n *Node) moveToChannel(c phy.Channel) {
	if n.Channel == c && n.medium != nil {
		return
	}
	if n.medium != nil {
		n.medium.detach(n)
	}
	n.Channel = c
	n.busyCount = 0
	n.net.mediumFor(c).attach(n)
}
