package sim

import (
	"math"

	"wlan80211/internal/dot11"
	"wlan80211/internal/eventq"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
)

func pow10(x float64) float64 { return math.Pow(10, x) }
func log10(x float64) float64 { return math.Log10(x) }

// zeroBody is the shared all-zeros payload for generated data frames
// (the simulator models sizes, not contents). Bodies beyond its length
// fall back to a per-frame allocation.
var zeroBody [4096]byte

// frameKind classifies queued transmissions.
type frameKind int

const (
	frameData frameKind = iota
	frameBeacon
	frameMgmt
)

// queuedFrame is one MSDU (or management frame) awaiting DCF access.
type queuedFrame struct {
	kind frameKind
	// data fields
	to       dot11.Addr
	size     int // MAC body bytes
	useRTS   bool
	enqueued phy.Micros
	seq      uint16
	retries  int
	// mgmt/beacon payload
	mgmt *dot11.Management
}

// wireLen returns the over-the-air frame length including FCS.
func (f *queuedFrame) wireLen() int {
	if f.mgmt != nil {
		return f.mgmt.WireLen()
	}
	return dot11.DataHeaderLen + f.size + 4
}

// respKind classifies the node's pending SIFS response. At most one
// response can be pending: two overlapping frames both addressed to
// this node cannot both clear the mutual-interference capture check,
// so two deliveries can never land within one SIFS.
type respKind int

const (
	respNone respKind = iota
	respACK
	respCTS
)

// Node is a station or access point.
type Node struct {
	net    *Network
	medium *medium
	// mediumIdx is the node's position in its medium's attachment
	// order (the delivery order), maintained by attach/detach so
	// spatially-culled loops can sort candidates without scanning.
	mediumIdx int
	ID        int
	Name      string
	Addr      dot11.Addr
	Pos       Position
	Channel   phy.Channel
	TxPower   float64
	IsAP      bool
	// UseRTS makes the node protect unicast data with RTS/CTS — the
	// minority behaviour the paper observed (Sec 6.1).
	UseRTS bool
	// GCapable marks an 802.11b/g dual-mode radio. b-only nodes cannot
	// demodulate ERP-OFDM frames (they sense the energy but decode
	// nothing, so they miss NAV updates carried at OFDM rates — the
	// protection-off interference of mixed cells), and a transmitter
	// never sends OFDM toward a peer that cannot decode it. Set before
	// traffic starts.
	GCapable bool
	// AP is the node's access point (nil for APs themselves).
	AP *Node

	// adapter drives rate selection for stations (single peer: the
	// AP). APs adapt per destination via adapterFactory/adapters —
	// one client's collisions must not drag down another's downlink.
	// gAdapterFactory, when set on a dual-mode AP, supplies the
	// adapter toward dual-mode peers (b-only peers keep adapterFactory).
	adapter         rate.Adapter
	adapterFactory  rate.Factory
	gAdapterFactory rate.Factory
	adapters        map[dot11.Addr]rate.Adapter
	associated      bool
	assocCount      int // for APs: number of associated stations

	// DCF state. The transmit queue is a ring over queue[qhead:].
	queue        []queuedFrame
	qhead        int
	seq          uint16
	cw           int
	backoff      int // remaining backoff slots
	busyCount    int // number of sensed in-flight transmissions
	navUntil     phy.Micros
	idleSince    phy.Micros // when busyCount last reached 0
	transmitting bool
	// deafSeq is the half-duplex stamp of the batched delivery pass:
	// complete() marks every overlapped sender with a completion-unique
	// token so the per-receiver loop answers "was this node
	// transmitting during tx?" in O(1). Stale stamps are inert (tokens
	// are never reused) — pure scratch, not simulation state.
	deafSeq uint64

	// Lazy countdown state. The DIFS+backoff wait is bookkept with
	// O(1) stamps: a busy medium freezes it (paused; slots bank at the
	// freeze), NAV extensions restart it behind the NAV via an eventq
	// deferral, and the single scheduled event re-keys itself in place
	// when it surfaces — heap traffic scales with waits that mature,
	// not with busy/idle transitions overheard. The countdown is
	// logically armed iff the handle is pending and not paused; a
	// paused handle is a logically-cancelled entry that drains (or is
	// re-deferred) lazily.
	countdown      eventq.Event
	countdownStart phy.Micros // when the wait (re)began; the NAV end while NAV-blocked
	paused         bool       // busy medium froze the wait; entry may linger

	awaiting     awaitKind
	awaitTimeout eventq.Event

	// Pending SIFS response (see respKind).
	pendingResp respKind
	respRA      dot11.Addr
	respDur     uint16

	// Preallocated event callbacks and frame scratch: the DCF loop
	// schedules thousands of events per simulated second, and closures
	// or frame structs allocated per event would dominate the profile.
	onCountdownFn func()
	onAwaitFn     func()
	onCTSDataFn   func()
	onRespFn      func()
	scratchData   dot11.Data
	scratchRTS    dot11.RTS
	scratchCTS    dot11.CTS
	scratchACK    dot11.ACK

	// Per-node ground-truth counters.
	Sent    int64 // data attempts
	Acked   int64 // acknowledged data frames
	Dropped int64 // data frames dropped at retry limit
}

type awaitKind int

const (
	awaitNone awaitKind = iota
	awaitCTS
	awaitACK
)

// initCallbacks binds the node's reusable event callbacks.
func (n *Node) initCallbacks() {
	n.onCountdownFn = func() {
		// The countdown popped. Under the lazy scheme this is not
		// necessarily maturity: the wait may have been frozen (busy
		// medium) since the event was armed, or this may be the NAV
		// stage completing. Any other pop is a transmit — the eager
		// scheme's countdown pop carried no checks at all (notably, a
		// backoff redrawn mid-await does not postpone an event the
		// eager scheme would have left in place).
		n.countdown = eventq.Event{}
		if n.paused || n.busyCount > 0 {
			// Frozen: the eager scheme had cancelled this event; the
			// busy→idle transition re-arms.
			return
		}
		if n.net.q.Now() <= n.countdownStart {
			// NAV-stage pop: the NAV waited out, arm the DIFS+backoff
			// leg from here, minting its fire rank inside this pop
			// exactly as the eager NAV-wait event did.
			n.countdown = n.net.q.At(n.countdownDeadline(), n.onCountdownFn)
			return
		}
		n.backoff = 0
		n.transmitHead()
	}
	n.onAwaitFn = func() {
		n.awaitTimeout = eventq.Event{}
		n.onExchangeFailure()
	}
	n.onCTSDataFn = func() {
		if n.queueLen() > 0 {
			n.transmitData(n.head())
		}
	}
	n.onRespFn = func() { n.fireResp() }
}

// nextSeq mints the next MAC sequence number.
func (n *Node) nextSeq() uint16 {
	n.seq = (n.seq + 1) & 0xfff
	return n.seq
}

// associatedNet reports whether the node should be active (APs always;
// stations only while associated).
func (n *Node) associatedNet() bool { return n.IsAP || n.associated }

// Adapter returns the node's rate adapter (stations). For APs it
// returns nil; use AdapterFor.
func (n *Node) Adapter() rate.Adapter { return n.adapter }

// SetGAdapterFactory supplies the rate-adaptation factory a dual-mode
// AP uses toward dual-mode peers; b-only peers keep the default
// factory. Call before the AP serves traffic.
func (n *Node) SetGAdapterFactory(f rate.Factory) { n.gAdapterFactory = f }

// AdapterFor returns the adapter used toward a destination: the
// per-destination adapter for APs, the single adapter otherwise. The
// adapter is created on first use; for dual-mode APs the peer's PHY
// capability (fixed for its lifetime) picks the factory.
func (n *Node) AdapterFor(to dot11.Addr) rate.Adapter {
	if n.adapterFactory == nil {
		return n.adapter
	}
	a, ok := n.adapters[to]
	if !ok {
		f := n.adapterFactory
		if n.gAdapterFactory != nil && n.GCapable {
			if peer := n.peerByAddr(to); peer != nil && peer.GCapable {
				f = n.gAdapterFactory
			}
		}
		a = f()
		n.adapters[to] = a
	}
	return a
}

// queueLen and head give ring-queue access to pending frames.
func (n *Node) queueLen() int      { return len(n.queue) - n.qhead }
func (n *Node) head() *queuedFrame { return &n.queue[n.qhead] }

// QueueLen returns the number of frames awaiting transmission.
func (n *Node) QueueLen() int { return n.queueLen() }

// SendData enqueues a data frame of size body bytes to the given
// destination. It reports whether the frame was accepted (the queue
// is bounded; overflowing traffic is dropped like a real NIC ring).
func (n *Node) SendData(to dot11.Addr, size int) bool {
	if size < 0 || !n.associatedNet() {
		return false
	}
	if n.queueLen() >= n.net.cfg.QueueLimit {
		n.net.Stats.QueueDrops++
		return false
	}
	f := queuedFrame{
		kind:     frameData,
		to:       to,
		size:     size,
		useRTS:   n.UseRTS && !to.IsGroup(),
		enqueued: n.net.q.Now(),
		seq:      n.nextSeq(),
	}
	n.enqueueFrame(f)
	return true
}

// enqueueFrame adds a frame and kicks the access procedure if idle.
func (n *Node) enqueueFrame(f queuedFrame) {
	wasEmpty := n.queueLen() == 0
	n.queue = append(n.queue, f)
	if wasEmpty && n.awaiting == awaitNone && !n.transmitting {
		// Fresh access: if the medium has been idle ≥ DIFS the frame
		// may go immediately (zero backoff), else draw a backoff.
		n.startAccess(true)
	}
}

// countdownArmed reports whether a countdown is logically armed: the
// event is still queued and the wait is not frozen. It is the lazy
// equivalent of the eager scheme's countdown.Scheduled() — a paused
// wait's lingering heap entry does not count.
func (n *Node) countdownArmed() bool {
	return !n.paused && n.countdown.Pending()
}

// startAccess begins (or resumes) the DIFS + backoff countdown for
// the head-of-queue frame. fresh marks a first attempt, which may
// transmit without backoff on a long-idle medium.
func (n *Node) startAccess(fresh bool) {
	if n.queueLen() == 0 || n.countdownArmed() || n.transmitting || n.awaiting != awaitNone {
		return
	}
	now := n.net.q.Now()
	if fresh {
		if n.busyCount == 0 && now >= n.navUntil && now-n.idleSince >= phy.DIFS {
			n.backoff = 0
		} else {
			n.backoff = n.net.rng.Intn(n.cw + 1)
		}
	}
	n.resumeCountdown()
}

// resumeCountdown arms the countdown if the medium is idle, or leaves
// it for the busy→idle notification otherwise. A frozen wait resumes
// with its banked backoff; the DIFS restarts from now, behind any
// NAV.
func (n *Node) resumeCountdown() {
	if n.countdownArmed() || n.queueLen() == 0 {
		return
	}
	if n.busyCount > 0 {
		return // mediumBusyDelta(-1) will resume us
	}
	n.paused = false
	now := n.net.q.Now()
	n.countdownStart = now
	if n.navUntil > now {
		// Virtual carrier sense: wait out the NAV first. The backoff
		// has not started, so countdownStart points at the NAV end; a
		// pause during this wait must consume no slots.
		n.countdownStart = n.navUntil
	}
	n.armCountdown()
}

// countdownDeadline is when the wait matures if the medium stays
// idle: DIFS plus the remaining backoff, measured from the later of
// the last resume and the NAV end.
func (n *Node) countdownDeadline() phy.Micros {
	return n.countdownStart + phy.DIFS + phy.Micros(n.backoff)*phy.SlotTime
}

// armCountdown brings the scheduled event up to the live target: an
// O(1) deferral stamp while a (possibly frozen and stale) event is
// still queued and not past the target, one cancel+reschedule
// otherwise. Resumed waits always target later than the entry they
// chase (the elapsed busy time outweighs the banked slots), so the
// fallback only triggers when a fresh wait supersedes a lingering
// frozen one — e.g. a NAV landing mid-backoff, or a redrawn backoff
// shorter than the abandoned wait's remainder.
//
// A NAV-blocked wait arms in two stages, like the eager scheme did:
// first to the NAV end, then — inside that pop — to DIFS+backoff
// beyond it. The two-stage shape is what keeps fire order (and so the
// shared RNG stream) bit-identical to cancel-and-reschedule: the
// final countdown's FIFO rank must be minted at the NAV end, not when
// the NAV was overheard.
func (n *Node) armCountdown() {
	t := n.countdownDeadline()
	if wait := n.countdownStart; wait > n.net.q.Now() {
		t = wait // NAV stage: the backoff leg arms inside this pop
	}
	if at, ok := n.countdown.When(); ok {
		if at <= t {
			n.countdown.Defer(t)
			return
		}
		n.countdown.Cancel()
	}
	n.countdown = n.net.q.At(t, n.onCountdownFn)
}

// pauseCountdown freezes the backoff timer when the medium goes busy,
// banking fully-elapsed slots (802.11 freezes, not resets, backoff).
// The scheduled event is left in the heap — marking the wait paused
// logically cancels it with no heap traffic; it drains or is
// re-deferred lazily.
func (n *Node) pauseCountdown() {
	if !n.countdownArmed() {
		return
	}
	elapsed := n.net.q.Now() - n.countdownStart - phy.DIFS
	if elapsed > 0 {
		consumed := int(elapsed / phy.SlotTime)
		if consumed > n.backoff {
			consumed = n.backoff
		}
		n.backoff -= consumed
	}
	n.paused = true
}

// mediumBusyDelta is called by the medium when a sensed transmission
// starts (+1) or ends (-1).
func (n *Node) mediumBusyDelta(d int) {
	was := n.busyCount
	n.busyCount += d
	if n.busyCount < 0 {
		n.busyCount = 0
	}
	if was == 0 && n.busyCount > 0 {
		n.pauseCountdown()
	}
	if was > 0 && n.busyCount == 0 {
		n.idleSince = n.net.q.Now()
		n.resumeCountdown()
	}
}

// transmitHead puts the head-of-queue frame on the air (RTS first if
// the frame uses RTS/CTS protection).
func (n *Node) transmitHead() {
	if n.queueLen() == 0 || n.transmitting {
		return
	}
	f := n.head()
	switch f.kind {
	case frameBeacon, frameMgmt:
		n.transmitting = true
		if f.kind == frameBeacon {
			n.net.Stats.BeaconsSent++
		}
		n.medium.transmit(n, f.mgmt, phy.ControlRate)
		return
	}
	if f.useRTS {
		n.transmitRTS(f)
		return
	}
	n.transmitData(f)
}

// dataRate queries the adapter with the node's SNR estimate toward the
// frame's receiver. An OFDM pick is clamped to 11 Mbps unless both
// ends are dual-mode — a g station that roamed into a b cell (or
// addresses a b peer) falls back to CCK rather than transmit frames
// its receiver cannot demodulate.
func (n *Node) dataRate(f *queuedFrame) phy.Rate {
	r := n.AdapterFor(f.to).RateFor(f.wireLen(), n.snrTowards(f.to))
	if r.OFDM() {
		peer := n.peerByAddr(f.to)
		if !n.GCapable || peer == nil || !peer.GCapable {
			r = phy.Rate11Mbps
		}
	}
	return r
}

// snrTowards estimates the SNR at the receiver using the deterministic
// path loss (what an SNR-based scheme would learn from ACKs).
func (n *Node) snrTowards(to dot11.Addr) float64 {
	peer := n.peerByAddr(to)
	if peer == nil {
		return 25 // unknown receiver: assume a healthy link
	}
	return n.net.snrTo(n.net.rowFor(n), peer)
}

// peerByAddr resolves an address to a node (nil for broadcast or
// unknown).
func (n *Node) peerByAddr(a dot11.Addr) *Node {
	if a.IsGroup() {
		return nil
	}
	return n.net.byAddr[a]
}

func (n *Node) transmitRTS(f *queuedFrame) {
	n.transmitting = true
	n.net.Stats.RTSSent++
	r := n.dataRate(f)
	n.scratchRTS = dot11.RTS{
		FC:       dot11.FrameControl{Type: dot11.TypeCtrl, Subtype: dot11.SubtypeRTS},
		Duration: dot11.NAVForRTS(f.wireLen(), r),
		RA:       f.to,
		TA:       n.Addr,
	}
	end := n.medium.transmit(n, &n.scratchRTS, phy.ControlRate)
	// CTS timeout: SIFS + CTS airtime + 2 slots of grace.
	n.awaiting = awaitCTS
	n.awaitTimeout = n.net.q.At(end+phy.SIFS+phy.CtsDuration(phy.ControlRate)+2*phy.SlotTime, n.onAwaitFn)
}

func (n *Node) transmitData(f *queuedFrame) {
	n.transmitting = true
	n.Sent++
	n.net.Stats.DataSent++
	r := n.dataRate(f)
	bssid := n.Addr
	if n.AP != nil {
		bssid = n.AP.Addr
	}
	var body []byte
	if f.size <= len(zeroBody) {
		body = zeroBody[:f.size]
	} else {
		body = make([]byte, f.size)
	}
	d := &n.scratchData
	if n.IsAP {
		*d = dot11.Data{
			FC:    dot11.FrameControl{Type: dot11.TypeData, Subtype: dot11.SubtypeData, FromDS: true},
			Addr1: f.to, Addr2: n.Addr, Addr3: n.Addr,
			Seq:  dot11.SeqControl{Num: f.seq & 0xfff},
			Body: body,
		}
	} else {
		// ToDS: Addr1 = BSSID (the AP receives and relays), Addr2 =
		// station, Addr3 = final destination.
		*d = dot11.Data{
			FC:    dot11.FrameControl{Type: dot11.TypeData, Subtype: dot11.SubtypeData, ToDS: true},
			Addr1: bssid, Addr2: n.Addr, Addr3: f.to,
			Seq:  dot11.SeqControl{Num: f.seq & 0xfff},
			Body: body,
		}
	}
	d.FC.Retry = f.retries > 0
	d.Duration = dot11.NAVForData(d.Addr1, phy.ControlRate)
	end := n.medium.transmit(n, d, r)
	if d.Addr1.IsGroup() {
		// Broadcast: no ACK expected; completion pops the frame.
		n.awaiting = awaitNone
		return
	}
	n.awaiting = awaitACK
	n.awaitTimeout = n.net.q.At(end+phy.SIFS+phy.AckDuration(phy.ControlRate)+2*phy.SlotTime, n.onAwaitFn)
}

// transmissionDone is called by the medium when this node's
// transmission leaves the air.
func (n *Node) transmissionDone(tx *transmission) {
	n.transmitting = false
	switch tx.parsed.(type) {
	case *dot11.Management, *dot11.Beacon:
		// Beacons/mgmt are unacknowledged broadcasts: pop and go on.
		n.popHead()
		n.startAccess(true)
	case *dot11.Data:
		if d := tx.parsed.(*dot11.Data); d.Addr1.IsGroup() {
			n.popHead()
			n.startAccess(true)
		}
		// Unicast data: wait for ACK/timeout.
	case *dot11.ACK, *dot11.CTS:
		// SIFS responses carry no queue state.
	case *dot11.RTS:
		// Waiting for CTS.
	}
}

// popHead removes the head-of-queue frame and resets retry state. The
// ring compacts once the dead prefix outweighs the live tail, so the
// backing array stays bounded by the queue limit.
func (n *Node) popHead() {
	if n.queueLen() > 0 {
		n.queue[n.qhead] = queuedFrame{} // drop mgmt refs
		n.qhead++
		if n.qhead == len(n.queue) {
			n.queue = n.queue[:0]
			n.qhead = 0
		} else if n.qhead >= 32 && n.qhead*2 >= len(n.queue) {
			k := copy(n.queue, n.queue[n.qhead:])
			n.queue = n.queue[:k]
			n.qhead = 0
		}
	}
	n.cw = phy.CWMin
}

// onExchangeFailure handles a missing CTS or ACK: binary exponential
// backoff, retry, or drop at the retry limit.
func (n *Node) onExchangeFailure() {
	n.awaiting = awaitNone
	if n.queueLen() == 0 {
		return
	}
	f := n.head()
	f.retries++
	if f.kind == frameData {
		n.AdapterFor(f.to).OnFailure()
	}
	limit := n.net.cfg.ShortRetryLimit
	if f.useRTS {
		limit = n.net.cfg.LongRetryLimit
	}
	if f.retries > limit {
		n.Dropped++
		n.net.Stats.DataDropped++
		n.popHead()
		n.startAccess(true)
		return
	}
	// Double the contention window and redraw backoff.
	n.cw = n.cw*2 + 1
	if n.cw > n.net.cfg.CWMax {
		n.cw = n.net.cfg.CWMax
	}
	n.backoff = n.net.rng.Intn(n.cw + 1)
	n.resumeCountdown()
}

// scheduleResp queues the node's SIFS response (see respKind for why
// a single slot suffices).
func (n *Node) scheduleResp(kind respKind, ra dot11.Addr, dur uint16) {
	n.pendingResp = kind
	n.respRA = ra
	n.respDur = dur
	n.net.q.After(phy.SIFS, n.onRespFn)
}

// fireResp builds and transmits the pending SIFS response.
func (n *Node) fireResp() {
	kind := n.pendingResp
	n.pendingResp = respNone
	switch kind {
	case respCTS:
		n.scratchCTS = dot11.CTS{
			FC:       dot11.FrameControl{Type: dot11.TypeCtrl, Subtype: dot11.SubtypeCTS},
			Duration: n.respDur,
			RA:       n.respRA,
		}
		n.medium.transmit(n, &n.scratchCTS, phy.ControlRate)
	case respACK:
		n.scratchACK = dot11.ACK{
			FC: dot11.FrameControl{Type: dot11.TypeCtrl, Subtype: dot11.SubtypeACK},
			RA: n.respRA,
		}
		n.medium.transmit(n, &n.scratchACK, phy.ControlRate)
	}
}

// receive handles a successfully decoded frame at this node.
func (n *Node) receive(tx *transmission, snrDB float64) {
	now := n.net.q.Now()
	switch f := tx.parsed.(type) {
	case *dot11.RTS:
		if f.RA == n.Addr {
			if now < n.navUntil {
				return // NAV busy: stay silent, sender times out
			}
			n.net.Stats.CTSSent++
			n.scheduleResp(respCTS, f.TA, dot11.NAVForCTS(f.Duration))
		} else {
			n.updateNAV(now, f.Duration)
		}
	case *dot11.CTS:
		if f.RA == n.Addr && n.awaiting == awaitCTS {
			n.clearAwait()
			if n.queueLen() > 0 {
				n.net.q.After(phy.SIFS, n.onCTSDataFn)
			}
		} else if f.RA != n.Addr {
			n.updateNAV(now, f.Duration)
		}
	case *dot11.ACK:
		if f.RA == n.Addr && n.awaiting == awaitACK {
			n.clearAwait()
			n.Acked++
			n.net.Stats.DataAcked++
			if n.queueLen() > 0 {
				n.AdapterFor(n.head().to).OnAck()
			}
			n.popHead()
			n.startAccess(true)
		}
	case *dot11.Data:
		if f.Addr1 == n.Addr {
			n.net.Stats.ACKSent++
			n.scheduleResp(respACK, f.Addr2, 0)
		} else if !f.Addr1.IsGroup() {
			n.updateNAV(now, f.Duration)
		}
	case *dot11.Beacon, *dot11.Management:
		// Beacons keep stations' TSF in sync; nothing to do here.
	}
}

// clearAwait cancels the pending CTS/ACK timeout.
func (n *Node) clearAwait() {
	n.awaiting = awaitNone
	n.awaitTimeout.Cancel()
	n.awaitTimeout = eventq.Event{}
}

// updateNAV extends the virtual carrier sense from an overheard
// Duration field.
func (n *Node) updateNAV(now phy.Micros, duration uint16) {
	until := now + phy.Micros(duration)
	if until > n.navUntil {
		n.navUntil = until
		// A running countdown must respect the new NAV: freeze (banks
		// elapsed slots) and resume behind it. Both halves are O(1)
		// stamps; the scheduled event chases the new target by
		// deferral.
		if n.countdownArmed() && n.busyCount == 0 {
			n.pauseCountdown()
			n.resumeCountdown()
		}
	}
}

// moveToChannel detaches the node from its medium and attaches it to
// the new channel (AP channel switching; stations follow their AP).
func (n *Node) moveToChannel(c phy.Channel) {
	if n.Channel == c && n.medium != nil {
		return
	}
	if n.medium != nil {
		n.medium.detach(n)
	}
	n.Channel = c
	n.busyCount = 0
	n.net.mediumFor(c).attach(n)
}
