package sim

import (
	"math"

	"wlan80211/internal/dot11"
	"wlan80211/internal/eventq"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
)

func pow10(x float64) float64 { return math.Pow(10, x) }
func log10(x float64) float64 { return math.Log10(x) }

// frameKind classifies queued transmissions.
type frameKind int

const (
	frameData frameKind = iota
	frameBeacon
	frameMgmt
)

// queuedFrame is one MSDU (or management frame) awaiting DCF access.
type queuedFrame struct {
	kind frameKind
	// data fields
	to       dot11.Addr
	size     int // MAC body bytes
	useRTS   bool
	enqueued phy.Micros
	seq      uint16
	retries  int
	// mgmt/beacon payload
	mgmt *dot11.Management
}

// wireLen returns the over-the-air frame length including FCS.
func (f *queuedFrame) wireLen() int {
	if f.mgmt != nil {
		return f.mgmt.WireLen()
	}
	return dot11.DataHeaderLen + f.size + 4
}

// Node is a station or access point.
type Node struct {
	net     *Network
	medium  *medium
	ID      int
	Name    string
	Addr    dot11.Addr
	Pos     Position
	Channel phy.Channel
	TxPower float64
	IsAP    bool
	// UseRTS makes the node protect unicast data with RTS/CTS — the
	// minority behaviour the paper observed (Sec 6.1).
	UseRTS bool
	// AP is the node's access point (nil for APs themselves).
	AP *Node

	// adapter drives rate selection for stations (single peer: the
	// AP). APs adapt per destination via adapterFactory/adapters —
	// one client's collisions must not drag down another's downlink.
	adapter        rate.Adapter
	adapterFactory rate.Factory
	adapters       map[dot11.Addr]rate.Adapter
	associated     bool
	assocCount     int // for APs: number of associated stations

	// DCF state.
	queue        []queuedFrame
	seq          uint16
	cw           int
	backoff      int // remaining backoff slots
	busyCount    int // number of sensed in-flight transmissions
	navUntil     phy.Micros
	idleSince    phy.Micros // when busyCount last reached 0
	transmitting bool

	countdown      *eventq.Event
	countdownStart phy.Micros // when the current DIFS+backoff wait began

	awaiting     awaitKind
	awaitTimeout *eventq.Event

	// Per-node ground-truth counters.
	Sent    int64 // data attempts
	Acked   int64 // acknowledged data frames
	Dropped int64 // data frames dropped at retry limit
}

type awaitKind int

const (
	awaitNone awaitKind = iota
	awaitCTS
	awaitACK
)

// nextSeq mints the next MAC sequence number.
func (n *Node) nextSeq() uint16 {
	n.seq = (n.seq + 1) & 0xfff
	return n.seq
}

// associatedNet reports whether the node should be active (APs always;
// stations only while associated).
func (n *Node) associatedNet() bool { return n.IsAP || n.associated }

// Adapter returns the node's rate adapter (stations). For APs it
// returns nil; use AdapterFor.
func (n *Node) Adapter() rate.Adapter { return n.adapter }

// AdapterFor returns the adapter used toward a destination: the
// per-destination adapter for APs, the single adapter otherwise.
func (n *Node) AdapterFor(to dot11.Addr) rate.Adapter {
	if n.adapterFactory == nil {
		return n.adapter
	}
	a, ok := n.adapters[to]
	if !ok {
		a = n.adapterFactory()
		n.adapters[to] = a
	}
	return a
}

// QueueLen returns the number of frames awaiting transmission.
func (n *Node) QueueLen() int { return len(n.queue) }

// SendData enqueues a data frame of size body bytes to the given
// destination. It reports whether the frame was accepted (the queue
// is bounded; overflowing traffic is dropped like a real NIC ring).
func (n *Node) SendData(to dot11.Addr, size int) bool {
	if size < 0 || !n.associatedNet() {
		return false
	}
	if len(n.queue) >= n.net.cfg.QueueLimit {
		n.net.Stats.QueueDrops++
		return false
	}
	f := queuedFrame{
		kind:     frameData,
		to:       to,
		size:     size,
		useRTS:   n.UseRTS && !to.IsGroup(),
		enqueued: n.net.q.Now(),
		seq:      n.nextSeq(),
	}
	n.enqueueFrame(f)
	return true
}

// enqueueFrame adds a frame and kicks the access procedure if idle.
func (n *Node) enqueueFrame(f queuedFrame) {
	wasEmpty := len(n.queue) == 0
	n.queue = append(n.queue, f)
	if wasEmpty && n.awaiting == awaitNone && !n.transmitting {
		// Fresh access: if the medium has been idle ≥ DIFS the frame
		// may go immediately (zero backoff), else draw a backoff.
		n.startAccess(true)
	}
}

// startAccess begins (or resumes) the DIFS + backoff countdown for
// the head-of-queue frame. fresh marks a first attempt, which may
// transmit without backoff on a long-idle medium.
func (n *Node) startAccess(fresh bool) {
	if len(n.queue) == 0 || n.countdown != nil || n.transmitting || n.awaiting != awaitNone {
		return
	}
	now := n.net.q.Now()
	if fresh {
		if n.busyCount == 0 && now >= n.navUntil && now-n.idleSince >= phy.DIFS {
			n.backoff = 0
		} else {
			n.backoff = n.net.rng.Intn(n.cw + 1)
		}
	}
	n.resumeCountdown()
}

// resumeCountdown schedules the transmit event if the medium is idle,
// or waits for the busy→idle notification otherwise.
func (n *Node) resumeCountdown() {
	if n.countdown != nil || len(n.queue) == 0 {
		return
	}
	now := n.net.q.Now()
	if n.busyCount > 0 {
		return // mediumBusyDelta(-1) will resume us
	}
	start := now
	if n.navUntil > start {
		// Virtual carrier sense: wait out the NAV first. The backoff
		// has not started, so countdownStart points at the NAV end;
		// a pause during this wait must consume no slots.
		n.countdownStart = n.navUntil
		n.countdown = n.net.q.At(n.navUntil, func() {
			n.countdown = nil
			n.resumeCountdown()
		})
		return
	}
	n.countdownStart = start
	wait := phy.DIFS + phy.Micros(n.backoff)*phy.SlotTime
	n.countdown = n.net.q.After(wait, func() {
		n.countdown = nil
		n.backoff = 0
		n.transmitHead()
	})
}

// pauseCountdown freezes the backoff timer when the medium goes busy,
// banking fully-elapsed slots (802.11 freezes, not resets, backoff).
func (n *Node) pauseCountdown() {
	if n.countdown == nil {
		return
	}
	elapsed := n.net.q.Now() - n.countdownStart - phy.DIFS
	if elapsed > 0 {
		consumed := int(elapsed / phy.SlotTime)
		if consumed > n.backoff {
			consumed = n.backoff
		}
		n.backoff -= consumed
	}
	n.countdown.Cancel()
	n.countdown = nil
}

// mediumBusyDelta is called by the medium when a sensed transmission
// starts (+1) or ends (-1).
func (n *Node) mediumBusyDelta(d int) {
	was := n.busyCount
	n.busyCount += d
	if n.busyCount < 0 {
		n.busyCount = 0
	}
	if was == 0 && n.busyCount > 0 {
		n.pauseCountdown()
	}
	if was > 0 && n.busyCount == 0 {
		n.idleSince = n.net.q.Now()
		n.resumeCountdown()
	}
}

// transmitHead puts the head-of-queue frame on the air (RTS first if
// the frame uses RTS/CTS protection).
func (n *Node) transmitHead() {
	if len(n.queue) == 0 || n.transmitting {
		return
	}
	f := &n.queue[0]
	switch f.kind {
	case frameBeacon, frameMgmt:
		n.transmitting = true
		if f.kind == frameBeacon {
			n.net.Stats.BeaconsSent++
		}
		n.medium.transmit(n, f.mgmt, phy.ControlRate)
		return
	}
	if f.useRTS {
		n.transmitRTS(f)
		return
	}
	n.transmitData(f)
}

// dataRate queries the adapter with the node's SNR estimate toward the
// frame's receiver.
func (n *Node) dataRate(f *queuedFrame) phy.Rate {
	return n.AdapterFor(f.to).RateFor(f.wireLen(), n.snrTowards(f.to))
}

// snrTowards estimates the SNR at the receiver using the deterministic
// path loss (what an SNR-based scheme would learn from ACKs).
func (n *Node) snrTowards(to dot11.Addr) float64 {
	peer := n.peerByAddr(to)
	if peer == nil {
		return 25 // unknown receiver: assume a healthy link
	}
	env := n.net.cfg.Env
	return env.SNRdB(env.RxPowerDBm(n.TxPower, n.Pos.Distance(peer.Pos), nil))
}

// peerByAddr resolves an address to a node (nil for broadcast or
// unknown).
func (n *Node) peerByAddr(a dot11.Addr) *Node {
	if a.IsGroup() {
		return nil
	}
	return n.net.byAddr[a]
}

func (n *Node) transmitRTS(f *queuedFrame) {
	n.transmitting = true
	n.net.Stats.RTSSent++
	r := n.dataRate(f)
	rts := dot11.NewRTS(f.to, n.Addr, dot11.NAVForRTS(f.wireLen(), r))
	end := n.medium.transmit(n, rts, phy.ControlRate)
	// CTS timeout: SIFS + CTS airtime + 2 slots of grace.
	n.awaiting = awaitCTS
	n.awaitTimeout = n.net.q.At(end+phy.SIFS+phy.CtsDuration(phy.ControlRate)+2*phy.SlotTime, func() {
		n.awaitTimeout = nil
		n.onExchangeFailure()
	})
}

func (n *Node) transmitData(f *queuedFrame) {
	n.transmitting = true
	n.Sent++
	n.net.Stats.DataSent++
	r := n.dataRate(f)
	bssid := n.Addr
	if n.AP != nil {
		bssid = n.AP.Addr
	}
	var d *dot11.Data
	if n.IsAP {
		d = dot11.NewData(f.to, n.Addr, n.Addr, f.seq, make([]byte, f.size))
		d.FC.FromDS = true
	} else {
		// ToDS: Addr1 = BSSID (the AP receives and relays), Addr2 =
		// station, Addr3 = final destination.
		d = dot11.NewData(bssid, n.Addr, f.to, f.seq, make([]byte, f.size))
		d.FC.ToDS = true
	}
	d.FC.Retry = f.retries > 0
	d.Duration = dot11.NAVForData(d.Addr1, phy.ControlRate)
	end := n.medium.transmit(n, d, r)
	if d.Addr1.IsGroup() {
		// Broadcast: no ACK expected; completion pops the frame.
		n.awaiting = awaitNone
		return
	}
	n.awaiting = awaitACK
	n.awaitTimeout = n.net.q.At(end+phy.SIFS+phy.AckDuration(phy.ControlRate)+2*phy.SlotTime, func() {
		n.awaitTimeout = nil
		n.onExchangeFailure()
	})
}

// transmissionDone is called by the medium when this node's
// transmission leaves the air.
func (n *Node) transmissionDone(tx *transmission) {
	n.transmitting = false
	switch tx.parsed.(type) {
	case *dot11.Management, *dot11.Beacon:
		// Beacons/mgmt are unacknowledged broadcasts: pop and go on.
		n.popHead()
		n.startAccess(true)
	case *dot11.Data:
		if d := tx.parsed.(*dot11.Data); d.Addr1.IsGroup() {
			n.popHead()
			n.startAccess(true)
		}
		// Unicast data: wait for ACK/timeout.
	case *dot11.ACK, *dot11.CTS:
		// SIFS responses carry no queue state.
	case *dot11.RTS:
		// Waiting for CTS.
	}
}

// popHead removes the head-of-queue frame and resets retry state.
func (n *Node) popHead() {
	if len(n.queue) > 0 {
		n.queue = n.queue[1:]
	}
	n.cw = phy.CWMin
}

// onExchangeFailure handles a missing CTS or ACK: binary exponential
// backoff, retry, or drop at the retry limit.
func (n *Node) onExchangeFailure() {
	n.awaiting = awaitNone
	if len(n.queue) == 0 {
		return
	}
	f := &n.queue[0]
	f.retries++
	if f.kind == frameData {
		n.AdapterFor(f.to).OnFailure()
	}
	limit := n.net.cfg.ShortRetryLimit
	if f.useRTS {
		limit = n.net.cfg.LongRetryLimit
	}
	if f.retries > limit {
		n.Dropped++
		n.net.Stats.DataDropped++
		n.popHead()
		n.startAccess(true)
		return
	}
	// Double the contention window and redraw backoff.
	n.cw = n.cw*2 + 1
	if n.cw > n.net.cfg.CWMax {
		n.cw = n.net.cfg.CWMax
	}
	n.backoff = n.net.rng.Intn(n.cw + 1)
	n.resumeCountdown()
}

// receive handles a successfully decoded frame at this node.
func (n *Node) receive(tx *transmission, snrDB float64) {
	now := n.net.q.Now()
	switch f := tx.parsed.(type) {
	case *dot11.RTS:
		if f.RA == n.Addr {
			if now < n.navUntil {
				return // NAV busy: stay silent, sender times out
			}
			cts := dot11.NewCTS(f.TA, dot11.NAVForCTS(f.Duration))
			n.net.Stats.CTSSent++
			n.net.q.After(phy.SIFS, func() { n.medium.transmit(n, cts, phy.ControlRate) })
		} else {
			n.updateNAV(now, f.Duration)
		}
	case *dot11.CTS:
		if f.RA == n.Addr && n.awaiting == awaitCTS {
			n.clearAwait()
			if len(n.queue) > 0 {
				head := &n.queue[0]
				n.net.q.After(phy.SIFS, func() { n.transmitData(head) })
			}
		} else if f.RA != n.Addr {
			n.updateNAV(now, f.Duration)
		}
	case *dot11.ACK:
		if f.RA == n.Addr && n.awaiting == awaitACK {
			n.clearAwait()
			n.Acked++
			n.net.Stats.DataAcked++
			if len(n.queue) > 0 {
				n.AdapterFor(n.queue[0].to).OnAck()
			}
			n.popHead()
			n.startAccess(true)
		}
	case *dot11.Data:
		if f.Addr1 == n.Addr {
			ack := dot11.NewACK(f.Addr2)
			n.net.Stats.ACKSent++
			n.net.q.After(phy.SIFS, func() { n.medium.transmit(n, ack, phy.ControlRate) })
		} else if !f.Addr1.IsGroup() {
			n.updateNAV(now, f.Duration)
		}
	case *dot11.Beacon, *dot11.Management:
		// Beacons keep stations' TSF in sync; nothing to do here.
	}
}

// clearAwait cancels the pending CTS/ACK timeout.
func (n *Node) clearAwait() {
	n.awaiting = awaitNone
	if n.awaitTimeout != nil {
		n.awaitTimeout.Cancel()
		n.awaitTimeout = nil
	}
}

// updateNAV extends the virtual carrier sense from an overheard
// Duration field.
func (n *Node) updateNAV(now phy.Micros, duration uint16) {
	until := now + phy.Micros(duration)
	if until > n.navUntil {
		n.navUntil = until
		// If a countdown is pending it must respect the new NAV.
		if n.countdown != nil && n.busyCount == 0 {
			n.pauseCountdownForNAV()
		}
	}
}

// pauseCountdownForNAV reschedules a running countdown behind the NAV.
func (n *Node) pauseCountdownForNAV() {
	n.pauseCountdown()
	n.resumeCountdown()
}

// moveToChannel detaches the node from its medium and attaches it to
// the new channel (AP channel switching; stations follow their AP).
func (n *Node) moveToChannel(c phy.Channel) {
	if n.Channel == c && n.medium != nil {
		return
	}
	if n.medium != nil {
		n.medium.detach(n)
	}
	n.Channel = c
	n.busyCount = 0
	n.net.mediumFor(c).attach(n)
}
