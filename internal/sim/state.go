package sim

import (
	"sort"

	"wlan80211/internal/dot11"
	"wlan80211/internal/eventq"
	"wlan80211/internal/phy"
)

// This file captures the simulator's complete numeric state for the
// snapshot subsystem: the event queue (slabs, free list, FIFO ranks,
// deferred re-arm stamps), every node's DCF state (banked backoff
// slots, freeze flags, NAV legs, transmit queue), the RNG stream
// position, the pooled in-flight transmissions and active sets, and
// the link matrix's lazy-invalidation tags.
//
// Event callbacks are closures and cannot be serialized, so the state
// is a *witness*, not a constructor: a restore rebuilds the network
// by deterministic replay from the scenario seed, then proves the
// reconstruction by re-capturing this state and comparing it byte for
// byte against the snapshot. Every field here is a pure function of
// (scenario, seed, events fired), so a correct replay reproduces the
// capture exactly; any divergence — version skew, nondeterminism, a
// corrupted snapshot that passed its checksum — fails the comparison
// loudly instead of silently continuing from a wrong state.

// FrameState is one queued MSDU/management frame.
type FrameState struct {
	Kind     int8
	To       dot11.Addr
	Size     int
	UseRTS   bool
	Enqueued phy.Micros
	Seq      uint16
	Retries  int
	// MgmtWireLen/MgmtHash witness a queued management frame's encoded
	// bytes without storing them (beacons re-encode identically on
	// replay: their timestamp and sequence fields are simulation state).
	MgmtWireLen int
	MgmtHash    uint64
}

// NodeState is one node's complete DCF and identity state.
type NodeState struct {
	ID         int
	Pos        Position
	Channel    phy.Channel
	TxPower    float64
	IsAP       bool
	GCapable   bool
	UseRTS     bool
	Associated bool
	AssocCount int

	Queue     []FrameState
	Seq       uint16
	CW        int
	Backoff   int // banked slots while frozen
	Busy      int
	NavUntil  phy.Micros
	IdleSince phy.Micros

	Transmitting   bool
	Paused         bool // freeze flag of the lazy countdown
	CountdownStart phy.Micros
	// CountdownSlot/Pending/When tie the node's countdown handle to
	// its event-queue slot; a NAV-leg wait shows as When ==
	// CountdownStart (the two-stage arm).
	CountdownSlot    int32
	CountdownPending bool
	CountdownWhen    phy.Micros
	Awaiting         int8
	AwaitSlot        int32
	AwaitPending     bool
	AwaitWhen        phy.Micros
	PendingResp      int8
	RespRA           dot11.Addr
	RespDur          uint16

	Sent, Acked, Dropped int64
}

// TxState is one pooled in-flight (or lingering, still-referenced)
// transmission.
type TxState struct {
	Seqno      uint64
	FromID     int
	Rate       phy.Rate
	WireLen    int
	Start, End phy.Micros
	ActiveIdx  int
	Refs       int
	Done       bool
	Frame      []byte
	Overlapped []uint64 // seqnos, in overlap-list order
}

// MediumState is one channel's membership and air state.
type MediumState struct {
	Channel phy.Channel
	NodeIDs []int // attachment order — the delivery order
	Active  []TxState
	// Lingering are completed transmissions still referenced by the
	// overlap lists of active ones (their power matters to pending
	// delivery decisions), in seqno order.
	Lingering []TxState
}

// LinkRowTag is one link-matrix row's lazy-invalidation tag plus its
// stored population: dense rows store one link per node (Extras 0),
// sparse rows store the culled neighborhood (Links) and the mid-run
// node-add appends not yet folded in by a rebuild (Extras).
type LinkRowTag struct {
	Power  float64
	Epoch  uint64
	Links  int
	Extras int
}

// SpatialIndexState witnesses the spatial cell grid of sparse-mode
// networks (zero-valued if the index has never been built). Like the
// link-row tags it is a replay witness: the grid's geometry and
// lifetime rebuild count are pure functions of the event history.
type SpatialIndexState struct {
	Epoch  uint64
	Nodes  int
	Power  float64
	Cell   float64
	Cols   int
	Rows   int
	Builds uint64
}

// NetworkState is the simulator's full serializable state.
type NetworkState struct {
	Now      phy.Micros
	Seed     int64
	RNGDraws uint64
	PosEpoch uint64
	TxSeq    uint64
	// TxPoolFree is the recycle pool's depth — free-list reuse order
	// is LIFO, so the depth plus the replayed history pins it.
	TxPoolFree int
	Stats      NetStats
	Queue      eventq.QueueState
	Nodes      []NodeState
	Media      []MediumState
	LinkRows   []LinkRowTag
	Index      SpatialIndexState
}

// CaptureState snapshots the network's complete numeric state. Call
// between events (e.g. after RunUntil returns); capturing mid-callback
// would observe half-applied transitions.
func (n *Network) CaptureState() *NetworkState {
	st := &NetworkState{
		Now:        n.q.Now(),
		Seed:       n.cfg.Seed,
		RNGDraws:   n.rngSrc.Draws(),
		PosEpoch:   n.posEpoch,
		TxSeq:      n.txSeq,
		TxPoolFree: len(n.txFree),
		Stats:      n.Stats,
		Queue:      n.q.SaveState(),
		Nodes:      make([]NodeState, len(n.nodes)),
		LinkRows:   make([]LinkRowTag, len(n.links)),
	}
	for i, row := range n.links {
		tag := LinkRowTag{Power: row.power, Epoch: row.epoch}
		if row.sparse {
			tag.Links, tag.Extras = len(row.ids), len(row.extraIDs)
		} else {
			tag.Links = len(row.to)
		}
		st.LinkRows[i] = tag
	}
	if g := n.grid; g != nil {
		st.Index = SpatialIndexState{
			Epoch: g.epoch, Nodes: g.nnodes, Power: g.power, Cell: g.cell,
			Cols: g.cols, Rows: g.rows, Builds: g.builds,
		}
	}
	for i, node := range n.nodes {
		st.Nodes[i] = node.captureState()
	}
	channels := make([]phy.Channel, 0, len(n.media))
	for ch := range n.media {
		channels = append(channels, ch)
	}
	sort.Slice(channels, func(i, j int) bool { return channels[i] < channels[j] })
	for _, ch := range channels {
		st.Media = append(st.Media, n.media[ch].captureState())
	}
	return st
}

func (node *Node) captureState() NodeState {
	ns := NodeState{
		ID: node.ID, Pos: node.Pos, Channel: node.Channel, TxPower: node.TxPower,
		IsAP: node.IsAP, GCapable: node.GCapable, UseRTS: node.UseRTS,
		Associated: node.associated, AssocCount: node.assocCount,
		Seq: node.seq, CW: node.cw, Backoff: node.backoff, Busy: node.busyCount,
		NavUntil: node.navUntil, IdleSince: node.idleSince,
		Transmitting: node.transmitting, Paused: node.paused,
		CountdownStart: node.countdownStart,
		Awaiting:       int8(node.awaiting),
		PendingResp:    int8(node.pendingResp),
		RespRA:         node.respRA, RespDur: node.respDur,
		Sent: node.Sent, Acked: node.Acked, Dropped: node.Dropped,
	}
	ns.CountdownSlot = node.countdown.Slot()
	ns.CountdownWhen, ns.CountdownPending = node.countdown.When()
	ns.AwaitSlot = node.awaitTimeout.Slot()
	ns.AwaitWhen, ns.AwaitPending = node.awaitTimeout.When()
	for i := node.qhead; i < len(node.queue); i++ {
		f := &node.queue[i]
		fs := FrameState{
			Kind: int8(f.kind), To: f.to, Size: f.size, UseRTS: f.useRTS,
			Enqueued: f.enqueued, Seq: f.seq, Retries: f.retries,
		}
		if f.mgmt != nil {
			fs.MgmtWireLen = f.mgmt.WireLen()
			fs.MgmtHash = hashBytes(f.mgmt.AppendTo(nil))
		}
		ns.Queue = append(ns.Queue, fs)
	}
	return ns
}

func (m *medium) captureState() MediumState {
	ms := MediumState{Channel: m.channel}
	for _, node := range m.nodes {
		ms.NodeIDs = append(ms.NodeIDs, node.ID)
	}
	seen := make(map[uint64]bool, len(m.active))
	var lingering []*transmission
	for _, tx := range m.active {
		ms.Active = append(ms.Active, tx.captureState())
		seen[tx.seqno] = true
	}
	for _, tx := range m.active {
		for _, o := range tx.overlapped {
			if o.done && !seen[o.seqno] {
				seen[o.seqno] = true
				lingering = append(lingering, o)
			}
		}
	}
	sort.Slice(lingering, func(i, j int) bool { return lingering[i].seqno < lingering[j].seqno })
	for _, tx := range lingering {
		ms.Lingering = append(ms.Lingering, tx.captureState())
	}
	return ms
}

func (tx *transmission) captureState() TxState {
	ts := TxState{
		Seqno: tx.seqno, FromID: tx.from.ID, Rate: tx.rate, WireLen: tx.wireLen,
		Start: tx.start, End: tx.end, ActiveIdx: tx.activeIdx,
		Refs: tx.refs, Done: tx.done,
		Frame: append([]byte(nil), tx.frame...),
	}
	for _, o := range tx.overlapped {
		ts.Overlapped = append(ts.Overlapped, o.seqno)
	}
	return ts
}

// hashBytes is FNV-1a, enough to witness a frame's encoded bytes.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
