package sim

// Transmit power control. The Airespace APs regulated transmit power
// (Sec 4.1), and the paper's conclusion suggests clients "dynamically
// change the transmit power such that data frames are consistently
// transmitted at high data rates" (Sec 7). ApplyTPC implements the
// client-side version: each station's power is set so its
// deterministic SNR at its AP meets a target, within hardware bounds.
// Lower transmit power shrinks each cell's interference footprint —
// and enlarges the hidden-terminal population, the trade-off the
// TPC ablation bench quantifies.

// TPC power bounds (dBm), typical of 802.11b client hardware.
const (
	TPCMinPowerDBm = 0
	TPCMaxPowerDBm = 20
)

// ApplyTPC sets every associated station's transmit power to the
// minimum that achieves targetSNRdB at its AP under the deterministic
// path loss, clamped to [TPCMinPowerDBm, TPCMaxPowerDBm]. It returns
// the number of stations adjusted. APs keep their configured power
// (the controller owns AP power in real deployments).
func (n *Network) ApplyTPC(targetSNRdB float64) int {
	adjusted := 0
	for _, st := range n.nodes {
		if st.IsAP || !st.associated || st.AP == nil {
			continue
		}
		loss := n.cfg.Env.PathLossDB(st.Pos.Distance(st.AP.Pos))
		want := n.cfg.Env.NoiseFloorDBm + targetSNRdB + loss
		if want < TPCMinPowerDBm {
			want = TPCMinPowerDBm
		}
		if want > TPCMaxPowerDBm {
			want = TPCMaxPowerDBm
		}
		if want != st.TxPower {
			st.TxPower = want
			adjusted++
		}
	}
	// Rebuild changed rows eagerly and in place: in-flight
	// transmissions pin row pointers, and the pre-matrix simulator
	// computed delivery power at delivery time — so deliveries after a
	// mid-run TPC change must already see the new powers.
	for _, node := range n.nodes {
		n.rowFor(node)
	}
	return adjusted
}

// MeanTxPower returns the mean station transmit power in dBm (0 if
// there are no stations), for reports.
func (n *Network) MeanTxPower() float64 {
	var sum float64
	count := 0
	for _, st := range n.nodes {
		if st.IsAP {
			continue
		}
		sum += st.TxPower
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// SNRAtAP returns a station's deterministic SNR at its AP in dB (0 if
// unassociated), for tests and reports.
func (n *Network) SNRAtAP(st *Node) float64 {
	if st.AP == nil {
		return 0
	}
	env := n.cfg.Env
	return env.SNRdB(env.RxPowerDBm(st.TxPower, st.Pos.Distance(st.AP.Pos), nil))
}
