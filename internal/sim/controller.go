package sim

import (
	"wlan80211/internal/phy"
)

// Controller approximates the Airespace WLAN controller features the
// paper describes (Sec 4.1): dynamic channel assignment and client
// load balancing across the orthogonal channels 1, 6, 11. The real
// algorithms are proprietary; this threshold controller reproduces the
// observable behaviour the paper relied on — traffic spread fairly
// evenly over the three channels, with APs occasionally switching.
type Controller struct {
	net *Network
	aps []*Node
	// Interval between evaluations.
	Interval phy.Micros
	// ImbalanceRatio triggers a channel switch when the busiest
	// channel carries more than this multiple of the least busy.
	ImbalanceRatio float64
	// MaxPerAP triggers station rebalancing toward less-loaded
	// co-located APs.
	MaxPerAP int

	lastDataSent map[*Node]int64
	stopped      bool
}

// NewController creates (but does not start) a controller over the
// given APs.
func (n *Network) NewController(aps []*Node) *Controller {
	return &Controller{
		net:            n,
		aps:            aps,
		Interval:       5 * phy.MicrosPerSecond,
		ImbalanceRatio: 2.0,
		MaxPerAP:       80,
		lastDataSent:   make(map[*Node]int64),
	}
}

// Start schedules periodic evaluations.
func (c *Controller) Start() {
	var tick func()
	tick = func() {
		if c.stopped {
			return
		}
		c.evaluate()
		c.net.q.After(c.Interval, tick)
	}
	c.net.q.After(c.Interval, tick)
}

// Stop halts future evaluations.
func (c *Controller) Stop() { c.stopped = true }

// evaluate performs one round of channel balancing followed by client
// load balancing.
func (c *Controller) evaluate() {
	c.balanceChannels()
	c.balanceClients()
}

// channelLoad sums recent data transmissions per channel.
func (c *Controller) channelLoad() map[phy.Channel]int64 {
	load := make(map[phy.Channel]int64)
	for _, ap := range c.aps {
		delta := ap.Sent - c.lastDataSent[ap]
		c.lastDataSent[ap] = ap.Sent
		load[ap.Channel] += delta
		for _, st := range c.net.nodes {
			if st.AP == ap && st.associated {
				load[ap.Channel] += st.Sent // cumulative; coarse but monotone
			}
		}
	}
	return load
}

// balanceChannels moves the busiest channel's least-loaded AP to the
// least busy channel when imbalance exceeds the ratio.
func (c *Controller) balanceChannels() {
	load := c.channelLoad()
	var maxCh, minCh phy.Channel
	var maxLoad, minLoad int64 = -1, 1 << 62
	for _, ch := range phy.OrthogonalChannels {
		l := load[ch]
		if l > maxLoad {
			maxLoad, maxCh = l, ch
		}
		if l < minLoad {
			minLoad, minCh = l, ch
		}
	}
	if maxCh == minCh || maxLoad == 0 {
		return
	}
	if float64(maxLoad) < c.ImbalanceRatio*float64(minLoad+1) {
		return
	}
	// Find an AP on the busy channel with the fewest clients and move
	// it (and its clients) to the quiet channel.
	var victim *Node
	for _, ap := range c.aps {
		if ap.Channel != maxCh {
			continue
		}
		if victim == nil || ap.assocCount < victim.assocCount {
			victim = ap
		}
	}
	if victim == nil {
		return
	}
	c.switchAPChannel(victim, minCh)
}

// switchAPChannel retunes an AP and drags its associated stations
// along (real clients follow the AP's channel announcement).
func (c *Controller) switchAPChannel(ap *Node, ch phy.Channel) {
	if ap.Channel == ch {
		return
	}
	ap.moveToChannel(ch)
	for _, st := range c.net.nodes {
		if st.AP == ap && st.associated {
			st.moveToChannel(ch)
		}
	}
	c.net.Stats.ChannelSwitch++
}

// balanceClients moves stations from over-subscribed APs to the
// co-located AP with the fewest clients.
func (c *Controller) balanceClients() {
	var spare *Node
	for _, ap := range c.aps {
		if spare == nil || ap.assocCount < spare.assocCount {
			spare = ap
		}
	}
	if spare == nil {
		return
	}
	for _, ap := range c.aps {
		if ap == spare || ap.assocCount <= c.MaxPerAP {
			continue
		}
		// Move stations until under the limit.
		for _, st := range c.net.nodes {
			if ap.assocCount <= c.MaxPerAP {
				break
			}
			if st.AP == ap && st.associated {
				c.net.Reassociate(st, spare)
			}
		}
	}
}
