package sim

import (
	"fmt"
	"testing"

	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
)

// runFERScenario runs a mixed scenario — shadowed dense or
// deterministic sparse radio, contention, hidden terminals, mixed
// b/g capability — under the given FER quantum and returns the
// order-sensitive observation hash plus ground-truth counters.
func runFERScenario(quantum float64, sigma float64) (uint64, NetStats) {
	cfg := DefaultConfig()
	cfg.Seed = 23
	cfg.Env.ShadowingSigmaDB = sigma
	cfg.Env.PathLossExponent = 3.5
	cfg.FERQuantumDB = quantum
	net := New(cfg)
	ap := net.AddAP("ap", Position{X: 40, Y: 40}, phy.Channel1)
	ap.GCapable = true
	mix := DefaultMix()
	for i := 0; i < 14; i++ {
		// A wide ring: far stations ride the low-SNR waterfall where
		// FER draws actually decide outcomes, near ones capture.
		p := Position{X: float64(i%7) * 13, Y: float64(i/7) * 55}
		st := net.AddStation(fmt.Sprintf("st%d", i), p, ap, rate.NewARFFactory())
		st.GCapable = i%2 == 0 // mixed b/g: OFDM header model in play
		net.StartTraffic(st, net.PickProfile(mix), 2.0)
	}
	var h obsHash
	net.AddTap(&h)
	net.RunFor(4 * phy.MicrosPerSecond)
	return h.h, net.Stats
}

// TestFERTablePathMatchesAnalytic is the dual-path pin of the
// quantized-table tentpole: the default-quantum table, an absurdly
// coarse table, and the disabled-table analytic path must produce
// bit-identical observation streams and counters, under both the
// shadowed dense radio and the deterministic sparse one.
func TestFERTablePathMatchesAnalytic(t *testing.T) {
	for _, sigma := range []float64{4.0, 0.0} {
		exactH, exactStats := runFERScenario(-1, sigma) // analytic path
		if exactH == 0 {
			t.Fatalf("sigma=%v: no observations — scenario is vacuous", sigma)
		}
		if exactStats.Collisions == 0 {
			t.Fatalf("sigma=%v: no collisions — batched interference path unexercised", sigma)
		}
		for _, quantum := range []float64{0, 2.0} {
			h, stats := runFERScenario(quantum, sigma)
			if h != exactH {
				t.Fatalf("sigma=%v quantum=%v: table trace diverges from analytic: %#x vs %#x",
					sigma, quantum, h, exactH)
			}
			if stats != exactStats {
				t.Fatalf("sigma=%v quantum=%v: stats diverge:\ntable:    %+v\nanalytic: %+v",
					sigma, quantum, stats, exactStats)
			}
		}
	}
}

// BenchmarkMediumBatch measures the batched completion path under
// sustained contention with hidden terminals (real overlap lists, so
// the pre-summed interference and half-duplex stamps are on the hot
// path), dense/shadowed and sparse/deterministic.
func BenchmarkMediumBatch(b *testing.B) {
	for _, bc := range []struct {
		name  string
		sigma float64
	}{{"dense", 4.0}, {"sparse", 0.0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h, stats := runFERScenario(0, bc.sigma)
				if h == 0 || stats.DataSent == 0 {
					b.Fatal("vacuous benchmark scenario")
				}
			}
		})
	}
}
