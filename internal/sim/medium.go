package sim

import (
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

// medium models one radio channel: active transmissions, carrier-sense
// notification to attached nodes, and frame delivery with collision,
// capture, and frame-error effects. Propagation delay is neglected
// (sub-microsecond at conference-hall scale).
type medium struct {
	net     *Network
	channel phy.Channel
	nodes   []*Node
	active  []*transmission
}

// transmission is one in-flight frame on the medium.
type transmission struct {
	from    *Node
	frame   []byte // encoded MAC frame without FCS
	parsed  dot11.Frame
	rate    phy.Rate
	wireLen int
	start   phy.Micros
	end     phy.Micros
	// overlapped lists transmissions whose airtime intersected this
	// one; collision decisions are made per receiver at delivery.
	overlapped []*transmission
}

func newMedium(n *Network, c phy.Channel) *medium {
	return &medium{net: n, channel: c}
}

// attach registers a node with the medium.
func (m *medium) attach(n *Node) {
	m.nodes = append(m.nodes, n)
	n.medium = m
}

// detach removes a node (used when an AP switches channels).
func (m *medium) detach(n *Node) {
	for i, o := range m.nodes {
		if o == n {
			m.nodes = append(m.nodes[:i], m.nodes[i+1:]...)
			break
		}
	}
	if n.medium == m {
		n.medium = nil
	}
}

// busy reports whether any transmission (other than n's own) is
// currently sensed by node n.
func (m *medium) busy(n *Node) bool {
	for _, tx := range m.active {
		if tx.from == n {
			continue
		}
		if m.sensedBy(n, tx) {
			return true
		}
	}
	return false
}

// sensedBy reports whether node n's carrier sense detects tx. The
// deterministic (unshadowed) path loss decides sensing, so the
// hidden-terminal population is stable across a run; the relation is
// memoized per (transmitter, listener) pair.
func (m *medium) sensedBy(n *Node, tx *transmission) bool {
	key := uint64(tx.from.ID)<<32 | uint64(uint32(n.ID))
	if v, ok := m.net.senseCache[key]; ok {
		return v
	}
	rx := m.net.cfg.Env.RxPowerDBm(tx.from.TxPower, tx.from.Pos.Distance(n.Pos), nil)
	v := m.net.cfg.Env.Senses(rx)
	m.net.senseCache[key] = v
	return v
}

// transmit puts a frame on the air from node n. It returns the
// transmission end time. DCF rules (waiting for idle, backoff) are the
// caller's responsibility; SIFS responses call this directly.
func (m *medium) transmit(n *Node, f dot11.Frame, r phy.Rate) phy.Micros {
	now := m.net.q.Now()
	wire := f.AppendTo(nil)
	wireLen := f.WireLen()
	tx := &transmission{
		from:    n,
		frame:   wire,
		parsed:  f,
		rate:    r,
		wireLen: wireLen,
		start:   now,
		end:     now + phy.Airtime(wireLen, r),
	}
	// Mark mutual overlap with everything already on the air.
	for _, o := range m.active {
		o.overlapped = append(o.overlapped, tx)
		tx.overlapped = append(tx.overlapped, o)
	}
	m.active = append(m.active, tx)

	// Carrier-sense notification: nodes that sense this transmitter
	// see the medium go busy.
	for _, o := range m.nodes {
		if o == n {
			continue
		}
		if m.sensedBy(o, tx) {
			o.mediumBusyDelta(+1)
		}
	}
	m.net.q.At(tx.end, func() { m.complete(tx) })
	return tx.end
}

// complete removes tx from the air, notifies carrier sense, delivers
// the frame to potential receivers, and feeds the observation taps.
func (m *medium) complete(tx *transmission) {
	for i, o := range m.active {
		if o == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	for _, o := range m.nodes {
		if o == tx.from {
			continue
		}
		if m.sensedBy(o, tx) {
			o.mediumBusyDelta(-1)
		}
	}

	// Deliver to each node that could have heard the frame.
	for _, o := range m.nodes {
		if o == tx.from {
			continue
		}
		snr, ok := m.deliverable(o, tx)
		if !ok {
			continue
		}
		o.receive(tx, snr)
	}

	// Feed taps.
	if len(m.net.taps) > 0 {
		obs := TxObservation{
			Time:       tx.start,
			End:        tx.end,
			Channel:    m.channel,
			Rate:       tx.rate,
			Frame:      tx.frame,
			WireLen:    tx.wireLen,
			FromPos:    tx.from.Pos,
			TxPowerDBm: tx.from.TxPower,
		}
		for _, o := range tx.overlapped {
			obs.Overlapped = append(obs.Overlapped, TxRef{FromPos: o.from.Pos, TxPowerDBm: o.from.TxPower})
		}
		for _, t := range m.net.taps {
			t.ObserveTransmission(obs)
		}
	}
	tx.from.transmissionDone(tx)
}

// deliverable decides whether receiver o successfully decodes tx and
// returns the effective SNR. Three loss mechanisms apply, the same
// three the paper lists for unrecorded frames (Sec 4.4):
//
//  1. Low signal: the frame arrives below the noise floor margin.
//  2. Collision: an overlapping transmission's power at o brings the
//     SINR under the capture threshold.
//  3. Residual bit errors: a Bernoulli draw from the SNR/rate FER.
func (m *medium) deliverable(o *Node, tx *transmission) (snrDB float64, ok bool) {
	env := m.net.cfg.Env
	rxPower := env.RxPowerDBm(tx.from.TxPower, tx.from.Pos.Distance(o.Pos), m.net.rng)
	snr := env.SNRdB(rxPower)
	if snr <= 0 {
		return snr, false
	}
	// Sum interference from overlapping transmissions at o. A frame
	// survives overlap only if its SINR clears the rate-dependent
	// capture threshold: slower modulations tolerate more interference
	// (the resilience that makes rate fallback attractive, Sec 3).
	if len(tx.overlapped) > 0 {
		interfMW := 0.0
		for _, it := range tx.overlapped {
			if it.from == o {
				continue // a node's own transmission deafens it entirely:
				// handled below.
			}
			p := env.RxPowerDBm(it.from.TxPower, it.from.Pos.Distance(o.Pos), nil)
			interfMW += dbmToMW(p)
		}
		if interfMW > 0 {
			sinr := rxPower - mwToDBm(interfMW+dbmToMW(env.NoiseFloorDBm))
			if sinr < CaptureThresholdFor(tx.rate, m.net.cfg.CaptureThresholdDB) {
				m.net.Stats.Collisions++
				return snr, false
			}
		}
	}
	// Half-duplex: a node transmitting during any part of tx cannot
	// receive it.
	for _, it := range tx.overlapped {
		if it.from == o {
			return snr, false
		}
	}
	// Residual bit errors at the noise-only SNR (a captured frame is
	// decodable by construction; thermal noise still applies).
	fer := phy.FER(snr, tx.wireLen, tx.rate)
	if m.net.rng.Float64() < fer {
		return snr, false
	}
	return snr, true
}

// CaptureThresholdFor scales the base capture threshold by modulation
// robustness: 1 Mbps DBPSK captures at 40% of the base SINR
// requirement, 11 Mbps CCK needs the full base.
func CaptureThresholdFor(r phy.Rate, baseDB float64) float64 {
	switch r {
	case phy.Rate1Mbps:
		return baseDB * 0.4
	case phy.Rate2Mbps:
		return baseDB * 0.6
	case phy.Rate5_5Mbps:
		return baseDB * 0.8
	default:
		return baseDB
	}
}

func dbmToMW(dbm float64) float64 { return pow10(dbm / 10) }

func mwToDBm(mw float64) float64 { return 10 * log10(mw) }
