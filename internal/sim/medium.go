package sim

import (
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

// medium models one radio channel: active transmissions, carrier-sense
// notification to attached nodes, and frame delivery with collision,
// capture, and frame-error effects. Propagation delay is neglected
// (sub-microsecond at conference-hall scale).
type medium struct {
	net     *Network
	channel phy.Channel
	nodes   []*Node
	active  []*transmission
	// obsScratch is the reused Overlapped backing for tap
	// observations (Taps may not retain it).
	obsScratch []TxRef
	// senseScratch/candScratch are the reused candidate buffers of the
	// spatially-culled transmit and complete loops (separate so a
	// transmit nested under a completion can't clobber the delivery
	// set). They receive copies of the per-row cached candidate sets.
	senseScratch []spCand
	candScratch  []spCand
	// attachGen counts attach/detach mutations; per-row candidate-set
	// caches carry the generation they were gathered at, so membership
	// or delivery-order changes invalidate them without a scan.
	attachGen uint64
	// interfScratch holds the batched per-receiver interference sums of
	// one completion, indexed by node ID (stale outside the receivers
	// the current completion zeroed).
	interfScratch []float64
	// eligScratch holds the subset of candidates that pass the
	// deterministic delivery gates during one sparse completion's
	// interference accumulation; consumed before any callback runs.
	eligScratch []spCand
}

// transmission is one in-flight frame on the medium. Transmissions
// are pooled on the Network and recycled once the transmission and
// every transmission that overlapped it have completed (overlap lists
// are read at delivery time, which can be after the interferer left
// the air).
type transmission struct {
	from *Node
	med  *medium
	row  *linkRow // transmitter's link-matrix row, pinned at transmit
	// frame is the encoded MAC frame without FCS, in a buffer reused
	// across the pool.
	frame   []byte
	parsed  dot11.Frame
	rate    phy.Rate
	wireLen int
	start   phy.Micros
	end     phy.Micros
	// seqno is the creation order, the canonical ordering of overlap
	// lists (active-set iteration order is not stable under
	// swap-delete, but interference sums must stay bit-identical).
	seqno     uint64
	activeIdx int
	// overlapped lists transmissions whose airtime intersected this
	// one, in seqno order; collision decisions are made per receiver
	// at delivery.
	overlapped []*transmission
	// refs counts overlapping transmissions that have not completed
	// yet; the struct returns to the pool when done && refs == 0.
	refs int
	done bool
	// completeFn is the completion callback, allocated once per
	// pooled struct.
	completeFn func()
	// Frame storage: transmit copies the caller's frame here so
	// callers can build frames in per-node scratch space.
	dataStore dot11.Data
	rtsStore  dot11.RTS
	ctsStore  dot11.CTS
	ackStore  dot11.ACK
}

// getTx takes a transmission from the pool (or allocates one).
func (n *Network) getTx() *transmission {
	if k := len(n.txFree); k > 0 {
		tx := n.txFree[k-1]
		n.txFree = n.txFree[:k-1]
		return tx
	}
	tx := &transmission{}
	tx.completeFn = func() { tx.med.complete(tx) }
	return tx
}

// putTx returns a transmission to the pool, dropping references so
// frames and nodes become collectable.
func (n *Network) putTx(tx *transmission) {
	tx.from = nil
	tx.med = nil
	tx.row = nil
	tx.parsed = nil
	tx.overlapped = tx.overlapped[:0]
	tx.refs = 0
	tx.done = false
	tx.dataStore.Body = nil
	n.txFree = append(n.txFree, tx)
}

func newMedium(n *Network, c phy.Channel) *medium {
	return &medium{net: n, channel: c}
}

// attach registers a node with the medium. mediumIdx mirrors the
// node's position in the attachment order — the delivery order — so
// culled loops can reproduce it without scanning m.nodes.
func (m *medium) attach(n *Node) {
	n.mediumIdx = len(m.nodes)
	m.nodes = append(m.nodes, n)
	n.medium = m
	m.attachGen++
}

// detach removes a node (used when an AP switches channels). Removal
// preserves order: the node list's order fixes the delivery order.
func (m *medium) detach(n *Node) {
	for i, o := range m.nodes {
		if o == n {
			m.nodes = append(m.nodes[:i], m.nodes[i+1:]...)
			for j := i; j < len(m.nodes); j++ {
				m.nodes[j].mediumIdx = j
			}
			break
		}
	}
	if n.medium == m {
		n.medium = nil
	}
	m.attachGen++
}

// cachedCands returns row's gathered candidate set, rebuilding it only
// when the row or the medium membership changed since the last gather.
// The returned slice is the cache itself: callers that may trigger
// nested mediums work (delivery, sense notification) copy it into
// their scratch first.
func (m *medium) cachedCands(row *linkRow, owner *Node) []spCand {
	if row.candsMed != m || row.candsAtt != m.attachGen || row.candsGen != row.gen {
		row.cands = m.gatherCands(row.cands, row, owner)
		row.candsMed = m
		row.candsAtt = m.attachGen
		row.candsGen = row.gen
	}
	return row.cands
}

// interfFor returns the per-receiver interference scratch sized for n
// node IDs. Entries are not cleared here: the sparse path zeroes only
// its candidates' slots, the dense path zeroes the whole span.
func (m *medium) interfFor(n int) []float64 {
	if cap(m.interfScratch) < n {
		m.interfScratch = make([]float64, n)
	}
	return m.interfScratch[:n]
}

// busy reports whether any transmission (other than n's own) is
// currently sensed by node n. The deterministic (unshadowed) path
// loss decides sensing, so the hidden-terminal population is stable
// across a run; the relation comes precomputed from the link matrix.
func (m *medium) busy(n *Node) bool {
	for _, tx := range m.active {
		if tx.from == n {
			continue
		}
		if tx.row.sparse {
			if tx.row.senses(n) {
				return true
			}
		} else if tx.row.to[n.ID].sense {
			return true
		}
	}
	return false
}

// transmit puts a frame on the air from node n. The frame is copied
// into transmission-owned storage (for the MAC types of the DCF hot
// path), so the caller may reuse f immediately. It returns the
// transmission end time. DCF rules (waiting for idle, backoff) are
// the caller's responsibility; SIFS responses call this directly.
func (m *medium) transmit(n *Node, f dot11.Frame, r phy.Rate) phy.Micros {
	now := m.net.q.Now()
	tx := m.net.getTx()
	tx.from = n
	tx.med = m
	tx.row = m.net.rowFor(n)
	switch ff := f.(type) {
	case *dot11.Data:
		tx.dataStore = *ff
		tx.parsed = &tx.dataStore
	case *dot11.ACK:
		tx.ackStore = *ff
		tx.parsed = &tx.ackStore
	case *dot11.CTS:
		tx.ctsStore = *ff
		tx.parsed = &tx.ctsStore
	case *dot11.RTS:
		tx.rtsStore = *ff
		tx.parsed = &tx.rtsStore
	default:
		tx.parsed = f // mgmt/beacon: caller-owned, released at recycle
	}
	tx.frame = tx.parsed.AppendTo(tx.frame[:0])
	tx.rate = r
	tx.wireLen = f.WireLen()
	tx.start = now
	tx.end = now + phy.Airtime(tx.wireLen, r)
	tx.seqno = m.net.txSeq
	m.net.txSeq++

	// Mark mutual overlap with everything already on the air.
	for _, o := range m.active {
		o.overlapped = append(o.overlapped, tx)
		o.refs++
		tx.overlapped = append(tx.overlapped, o)
		tx.refs++
	}
	// The active set is unordered (swap-delete); restore creation
	// order so per-receiver interference sums add in a deterministic
	// order. Appends to the others' lists stay sorted for free: tx
	// has the largest seqno so far.
	for i := 1; i < len(tx.overlapped); i++ {
		o := tx.overlapped[i]
		j := i - 1
		for j >= 0 && tx.overlapped[j].seqno > o.seqno {
			tx.overlapped[j+1] = tx.overlapped[j]
			j--
		}
		tx.overlapped[j+1] = o
	}
	tx.activeIdx = len(m.active)
	m.active = append(m.active, tx)

	// Carrier-sense notification: nodes that sense this transmitter
	// see the medium go busy. Sparse rows visit only the in-range
	// neighborhood, in the same attachment order the dense scan walks
	// — every culled node has sense=false, so the dense loop would
	// skip it anyway.
	if tx.row.sparse {
		m.senseScratch = append(m.senseScratch[:0], m.cachedCands(tx.row, n)...)
		for _, c := range m.senseScratch {
			if c.l.sense {
				c.o.mediumBusyDelta(+1)
			}
		}
	} else {
		for _, o := range m.nodes {
			if o == n {
				continue
			}
			if tx.row.to[o.ID].sense {
				o.mediumBusyDelta(+1)
			}
		}
	}
	m.net.q.At(tx.end, tx.completeFn)
	return tx.end
}

// complete removes tx from the air, notifies carrier sense, delivers
// the frame to potential receivers, and feeds the observation taps.
func (m *medium) complete(tx *transmission) {
	// O(1) swap-delete from the active set.
	last := len(m.active) - 1
	if tx.activeIdx != last {
		moved := m.active[last]
		m.active[tx.activeIdx] = moved
		moved.activeIdx = tx.activeIdx
	}
	m.active[last] = nil
	m.active = m.active[:last]

	// Batched pre-pass: one walk of the overlap list per event pop,
	// instead of one per receiver. Half-duplex senders are stamped with
	// a completion-unique token (seqnos are unique, so stale stamps from
	// earlier completions can never match), and per-receiver
	// interference is accumulated interferer-outer — each receiver's
	// slot adds the identical terms in the identical seqno order the
	// old per-receiver walk used, so the float sums are bit-identical.
	// The FER decision context (table column bracket) is fetched once
	// per transmission rather than once per receiver.
	deaf := tx.seqno + 1
	var interf []float64
	for _, it := range tx.overlapped {
		it.from.deafSeq = deaf
	}
	var lk phy.FERLookup
	if m.net.fer != nil {
		lk = m.net.fer.Lookup(tx.wireLen, tx.rate)
	}

	// Carrier-sense release, then delivery. Sparse rows gather the
	// in-range neighborhood once (attachment order, matching the dense
	// scans): a culled node has sense=false and snr<=0, so the dense
	// loops would traverse it with zero effect — and zero RNG draws,
	// since sparse mode implies no shadowing.
	if tx.row.sparse {
		m.candScratch = append(m.candScratch[:0], m.cachedCands(tx.row, tx.from)...)
		cands := m.candScratch
		if len(tx.overlapped) > 0 {
			// Accumulate only for candidates that will reach the SINR
			// test: deliverable's earlier gates (decode floor, OFDM
			// capability, half-duplex) are all deterministic in sparse
			// mode — no shadowing, so no RNG draw is skipped — and a
			// gated-out receiver never reads its interference slot.
			// Sense-only-range neighbors and b-only receivers of OFDM
			// frames are most of a campus neighborhood, so this filter,
			// not the batching, is what keeps the pre-pass cheap.
			env := &m.net.cfg.Env
			ofdm := tx.rate.OFDM()
			elig := m.eligScratch[:0]
			interf = m.interfFor(len(m.net.nodes))
			for _, c := range cands {
				if env.SNRdB(c.l.dBm) <= 0 {
					continue
				}
				if ofdm && !c.o.GCapable {
					continue
				}
				if c.o.deafSeq == deaf {
					continue
				}
				elig = append(elig, c)
				interf[c.o.ID] = 0
			}
			for _, it := range tx.overlapped {
				// An interferer's pinned row may have culled a receiver;
				// its sub-floor power still belongs in the sum (mwTo
				// recomputes from the row's pinned transmitter position).
				for _, c := range elig {
					interf[c.o.ID] += m.net.mwTo(it.row, c.o)
				}
			}
			m.eligScratch = elig[:0]
		}
		for _, c := range cands {
			if c.l.sense {
				c.o.mediumBusyDelta(-1)
			}
		}
		for _, c := range cands {
			snr, ok := m.deliverable(c.o, tx, c.l, deaf, interf, lk)
			if !ok {
				continue
			}
			c.o.receive(tx, snr)
		}
	} else {
		if len(tx.overlapped) > 0 {
			interf = m.interfFor(len(m.net.nodes))
			for i := range interf {
				interf[i] = 0
			}
			for _, it := range tx.overlapped {
				row := it.row.to
				for i := range row {
					interf[i] += row[i].mw
				}
			}
		}
		for _, o := range m.nodes {
			if o == tx.from {
				continue
			}
			if tx.row.to[o.ID].sense {
				o.mediumBusyDelta(-1)
			}
		}

		// Deliver to each node that could have heard the frame.
		for _, o := range m.nodes {
			if o == tx.from {
				continue
			}
			snr, ok := m.deliverable(o, tx, tx.row.to[o.ID], deaf, interf, lk)
			if !ok {
				continue
			}
			o.receive(tx, snr)
		}
	}

	// Feed taps. Frame and Overlapped alias reused buffers; Taps
	// must not retain them past the call.
	if len(m.net.taps) > 0 {
		m.obsScratch = m.obsScratch[:0]
		for _, o := range tx.overlapped {
			m.obsScratch = append(m.obsScratch, TxRef{
				FromID: o.from.ID, FromPos: o.from.Pos, TxPowerDBm: o.from.TxPower,
			})
		}
		obs := TxObservation{
			Time:       tx.start,
			End:        tx.end,
			Channel:    m.channel,
			Rate:       tx.rate,
			Frame:      tx.frame,
			WireLen:    tx.wireLen,
			FromID:     tx.from.ID,
			FromPos:    tx.from.Pos,
			TxPowerDBm: tx.from.TxPower,
			Overlapped: m.obsScratch,
		}
		for _, t := range m.net.taps {
			t.ObserveTransmission(obs)
		}
	}
	tx.from.transmissionDone(tx)

	// Recycle: tx frees when everything that overlapped it is done
	// too (their delivery decisions read tx through their overlap
	// lists); completing may also release already-done overlappers
	// that were only waiting on tx.
	tx.done = true
	for _, o := range tx.overlapped {
		o.refs--
		if o.done && o.refs == 0 {
			m.net.putTx(o)
		}
	}
	if tx.refs == 0 {
		m.net.putTx(tx)
	}
}

// deliverable decides whether receiver o successfully decodes tx and
// returns the effective SNR. Three loss mechanisms apply, the same
// three the paper lists for unrecorded frames (Sec 4.4):
//
//  1. Low signal: the frame arrives below the noise floor margin.
//  2. Collision: an overlapping transmission's power at o brings the
//     SINR under the capture threshold.
//  3. Residual bit errors: a Bernoulli draw from the SNR/rate FER.
//
// A receiver that was itself transmitting during any part of tx is
// deaf (half-duplex); that is checked before the SINR test so a deaf
// node is not also counted as a collision victim. The per-transmission
// batch context comes from complete(): deaf is the half-duplex stamp,
// interf the per-receiver interference sums (nil when nothing
// overlapped), lk the transmission's FER table bracket.
func (m *medium) deliverable(o *Node, tx *transmission, l link, deaf uint64, interf []float64, lk phy.FERLookup) (snrDB float64, ok bool) {
	env := &m.net.cfg.Env
	rxPower := l.dBm
	if env.ShadowingSigmaDB > 0 {
		rxPower += m.net.rng.NormFloat64() * env.ShadowingSigmaDB
	}
	snr := env.SNRdB(rxPower)
	if snr <= 0 {
		return snr, false
	}
	// A b-only radio cannot demodulate ERP-OFDM: it senses the energy
	// (carrier sense above) but decodes nothing — checked before the
	// SINR test so a deaf-by-capability receiver is not counted as a
	// collision victim.
	if tx.rate.OFDM() && !o.GCapable {
		return snr, false
	}
	// Half-duplex: a node transmitting during any part of tx cannot
	// receive it, regardless of signal strength.
	if o.deafSeq == deaf {
		return snr, false
	}
	// Interference from overlapping transmissions at o, pre-summed by
	// complete(). A frame survives overlap only if its SINR clears the
	// rate-dependent capture threshold: slower modulations tolerate
	// more interference (the resilience that makes rate fallback
	// attractive, Sec 3).
	if interf != nil {
		if interfMW := interf[o.ID]; interfMW > 0 {
			sinr := rxPower - mwToDBm(interfMW+m.net.noiseMW)
			if sinr < CaptureThresholdFor(tx.rate, m.net.cfg.CaptureThresholdDB) {
				m.net.Stats.Collisions++
				return snr, false
			}
		}
	}
	// Residual bit errors at the noise-only SNR (a captured frame is
	// decodable by construction; thermal noise still applies). The
	// table decision equals u < phy.FER(snr, ...) exactly; the analytic
	// branch is the FERQuantumDB<0 dual-path pin.
	u := m.net.rng.Float64()
	if m.net.fer != nil {
		if lk.Lost(u, snr) {
			return snr, false
		}
	} else if u < phy.FER(snr, tx.wireLen, tx.rate) {
		return snr, false
	}
	return snr, true
}

// CaptureThresholdFor scales the base capture threshold by modulation
// robustness: 1 Mbps DBPSK captures at 40% of the base SINR
// requirement, 11 Mbps CCK needs the full base.
func CaptureThresholdFor(r phy.Rate, baseDB float64) float64 {
	switch r {
	case phy.Rate1Mbps:
		return baseDB * 0.4
	case phy.Rate2Mbps:
		return baseDB * 0.6
	case phy.Rate5_5Mbps:
		return baseDB * 0.8
	default:
		return baseDB
	}
}

func dbmToMW(dbm float64) float64 { return pow10(dbm / 10) }

func mwToDBm(mw float64) float64 { return 10 * log10(mw) }
