package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
)

// randomTwinNets builds two networks with an identical randomized
// multi-cell topology — one spatially culled, one forced dense — and
// returns them with the shared node layout applied to both.
func randomTwinNets(seed int64, nAPs, nStations int, extent float64) (sp, dn *Network) {
	mk := func(force bool) *Network {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Env.ShadowingSigmaDB = 0
		// Campus attenuation: ~60 m cull radius, so the randomized
		// extents below actually produce culled pairs.
		cfg.Env.PathLossExponent = 4.0
		cfg.ForceDenseLinks = force
		return New(cfg)
	}
	sp, dn = mk(false), mk(true)
	if !sp.sparse || dn.sparse {
		panic("twin nets: mode selection broken")
	}
	rng := rand.New(rand.NewSource(seed * 7919))
	chans := []phy.Channel{phy.Channel1, phy.Channel6, phy.Channel11}
	pos := make([]Position, 0, nAPs+nStations)
	for i := 0; i < nAPs; i++ {
		pos = append(pos, Position{X: rng.Float64() * extent, Y: rng.Float64() * extent})
	}
	for i := 0; i < nStations; i++ {
		pos = append(pos, Position{X: rng.Float64() * extent, Y: rng.Float64() * extent})
	}
	for _, n := range []*Network{sp, dn} {
		var aps []*Node
		for i := 0; i < nAPs; i++ {
			aps = append(aps, n.AddAP(fmt.Sprintf("ap%d", i), pos[i], chans[i%len(chans)]))
		}
		for i := 0; i < nStations; i++ {
			ap := aps[i%len(aps)]
			n.AddStation(fmt.Sprintf("st%d", i), pos[nAPs+i], ap, rate.NewFixedFactory(phy.Rate11Mbps))
		}
	}
	return sp, dn
}

// auditRows brute-force checks every directed pair: a link the sparse
// row stores must equal the dense computation bit for bit, and a link
// it culled must be below both the carrier-sense and decode floors in
// the dense matrix (so the dense loops would skip it with zero
// effect). Returns the number of culled pairs so callers can assert
// the audit wasn't vacuous.
func auditRows(t *testing.T, sp, dn *Network) (culled int) {
	t.Helper()
	if len(sp.nodes) != len(dn.nodes) {
		t.Fatalf("twin drift: %d vs %d nodes", len(sp.nodes), len(dn.nodes))
	}
	for i := range sp.nodes {
		srow := sp.rowFor(sp.nodes[i])
		drow := dn.rowFor(dn.nodes[i])
		for j := range dn.nodes {
			want := drow.to[j]
			got, ok := srow.linkTo(sp.nodes[j])
			if !ok {
				culled++
				if want.sense || want.snr > 0 {
					t.Fatalf("pair %d→%d culled but relevant: sense=%v snr=%v", i, j, want.sense, want.snr)
				}
				continue
			}
			if got != want {
				t.Fatalf("pair %d→%d stored link diverges: got %+v want %+v", i, j, got, want)
			}
		}
	}
	return culled
}

// TestSparseRowsMatchDense is the culled-pair audit of the headline
// bit-identity claim, on randomized topologies, through random node
// movement, transmit-power raises (TPC-style, above the index's cell
// sizing), and mid-run node additions against pinned rows.
func TestSparseRowsMatchDense(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sp, dn := randomTwinNets(seed, 6, 40, 400)
		if c := auditRows(t, sp, dn); c == 0 {
			t.Fatalf("seed %d: no culled pairs — audit is vacuous, shrink the extent", seed)
		}
		rng := rand.New(rand.NewSource(seed))
		// Random walks: same moves on both twins, re-audit each epoch.
		for step := 0; step < 10; step++ {
			k := rng.Intn(len(sp.nodes))
			p := Position{X: rng.Float64() * 400, Y: rng.Float64() * 400}
			sp.MoveNode(sp.nodes[k], p)
			dn.MoveNode(dn.nodes[k], p)
			auditRows(t, sp, dn)
		}
		// A power raise beyond the grid's cell sizing must re-key the
		// index (cells sized for 15 dBm are too small for 20).
		sp.nodes[0].TxPower, dn.nodes[0].TxPower = 20, 20
		auditRows(t, sp, dn)
		// Mid-run adds append to rows pinned by in-flight transmissions
		// — but only in-range appends are stored; inert (below-both-
		// floors) newcomers are culled at the append, or row storage
		// would creep back toward O(N²). Build a row first so the
		// append path (extras) is what the audit sees for the new
		// nodes: one planted in the pinned row's neighborhood (must be
		// mirrored) and one far outside it (must be dropped).
		prow := sp.rowFor(sp.nodes[1])
		dn.rowFor(dn.nodes[1])
		ap, dap := sp.nodes[0], dn.nodes[0]
		near := Position{X: sp.nodes[1].Pos.X + 4, Y: sp.nodes[1].Pos.Y + 3}
		sp.AddStation("late", near, ap, rate.NewFixedFactory(phy.Rate11Mbps))
		dn.AddStation("late", near, dap, rate.NewFixedFactory(phy.Rate11Mbps))
		if len(prow.extraIDs) != 1 {
			t.Fatalf("mid-run add not mirrored into pinned sparse row: extras=%d", len(prow.extraIDs))
		}
		far := Position{X: sp.nodes[1].Pos.X + 700, Y: sp.nodes[1].Pos.Y + 700}
		sp.AddStation("late2", far, ap, rate.NewFixedFactory(phy.Rate11Mbps))
		dn.AddStation("late2", far, dap, rate.NewFixedFactory(phy.Rate11Mbps))
		if len(prow.extraIDs) != 1 {
			t.Fatalf("inert mid-run add not culled from pinned sparse row: extras=%d", len(prow.extraIDs))
		}
		auditRows(t, sp, dn)
	}
}

// TestWaypointBucketMembership walks a node across bucket boundaries
// and checks the index keeps it in exactly one bucket — the correct
// one — at every position epoch.
func TestWaypointBucketMembership(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.Env.ShadowingSigmaDB = 0
	net := New(cfg)
	ap := net.AddAP("ap", Position{X: 0, Y: 0}, phy.Channel1)
	// Far corner spreads the bounding box over many cells.
	net.AddAP("corner", Position{X: 500, Y: 500}, phy.Channel6)
	mob := net.AddStation("mob", Position{X: 0, Y: 0}, ap, rate.NewFixedFactory(phy.Rate11Mbps))
	net.StartWaypoints(mob, 10, phy.MicrosPerSecond/10,
		Position{X: 490, Y: 10}, Position{X: 250, Y: 480}, Position{X: 10, Y: 10})
	for step := 0; step < 200; step++ {
		net.RunFor(phy.MicrosPerSecond / 10)
		g := net.spatialIndex(0)
		if g.epoch != net.posEpoch {
			t.Fatalf("step %d: index stale after rebuild (epoch %d vs %d)", step, g.epoch, net.posEpoch)
		}
		found := 0
		for ci, b := range g.buckets {
			for _, o := range b {
				if o == mob {
					found++
					cx, cy := g.cellOf(mob.Pos)
					if ci != cy*g.cols+cx {
						t.Fatalf("step %d: node at %+v bucketed in cell %d, want %d", step, mob.Pos, ci, cy*g.cols+cx)
					}
				}
			}
		}
		if found != 1 {
			t.Fatalf("step %d: node appears in %d buckets, want exactly 1", step, found)
		}
	}
}

// obsHash folds the over-the-air facts of every observation into one
// order-sensitive FNV fold — two runs with equal hashes produced the
// same frames at the same times with the same overlap structure.
type obsHash struct{ h uint64 }

func (o *obsHash) fold(v uint64) {
	if o.h == 0 {
		o.h = 14695981039346656037
	}
	o.h ^= v
	o.h *= 1099511628211
}

func (o *obsHash) ObserveTransmission(obs TxObservation) {
	o.fold(uint64(obs.Time))
	o.fold(uint64(obs.End))
	o.fold(uint64(obs.Channel))
	o.fold(uint64(obs.Rate))
	o.fold(uint64(obs.FromID))
	o.fold(uint64(obs.WireLen))
	o.fold(uint64(len(obs.Overlapped)))
	for _, b := range obs.Frame {
		o.fold(uint64(b))
	}
}

// TestSpatialTraceMatchesDense runs the same multi-cell scenario —
// traffic, mobility, index-served roaming, beacons, co-channel
// interference — spatially culled and forced dense, and requires
// bit-identical observation streams and ground-truth counters.
func TestSpatialTraceMatchesDense(t *testing.T) {
	run := func(force bool) (uint64, NetStats) {
		cfg := DefaultConfig()
		cfg.Seed = 11
		cfg.Env.ShadowingSigmaDB = 0
		cfg.Env.PathLossExponent = 4.0 // ~60 m cull radius: real culling
		cfg.ForceDenseLinks = force
		net := New(cfg)
		chans := []phy.Channel{phy.Channel1, phy.Channel6, phy.Channel11, phy.Channel1}
		var aps []*Node
		for i := 0; i < 4; i++ {
			p := Position{X: float64(i%2)*60 + 15, Y: float64(i/2)*60 + 15}
			aps = append(aps, net.AddAP(fmt.Sprintf("ap%d", i), p, chans[i]))
		}
		mix := DefaultMix()
		for i := 0; i < 12; i++ {
			ap := aps[i%len(aps)]
			p := Position{X: ap.Pos.X + float64(i%5)*4 - 8, Y: ap.Pos.Y + float64(i/5)*5 - 5}
			st := net.AddStation(fmt.Sprintf("st%d", i), p, ap, rate.NewARFFactory())
			net.StartTraffic(st, net.PickProfile(mix), 1.5)
		}
		mob := net.AddStation("mob", aps[0].Pos, aps[0], rate.NewARFFactory())
		net.StartTraffic(mob, net.PickProfile(mix), 1.5)
		net.StartWaypoints(mob, 8, phy.MicrosPerSecond/2,
			Position{X: 75, Y: 15}, Position{X: 75, Y: 75}, Position{X: 15, Y: 15})
		var roam func()
		roam = func() {
			if best := net.NearestAP(mob.Pos); best != nil && best != mob.AP {
				net.Reassociate(mob, best)
			}
			net.Schedule(net.Now()+phy.MicrosPerSecond, roam)
		}
		net.Schedule(phy.MicrosPerSecond, roam)
		var h obsHash
		net.AddTap(&h)
		net.RunFor(6 * phy.MicrosPerSecond)
		return h.h, net.Stats
	}
	spH, spStats := run(false)
	dnH, dnStats := run(true)
	if spH == 0 {
		t.Fatal("no observations — scenario is vacuous")
	}
	if spH != dnH {
		t.Fatalf("spatially culled trace diverges from dense: %#x vs %#x", spH, dnH)
	}
	if spStats != dnStats {
		t.Fatalf("stats diverge:\nsparse: %+v\ndense:  %+v", spStats, dnStats)
	}
}

// TestNetworkNearestAPMatchesLinear compares the expanding-ring index
// search against the linear scan on randomized layouts and on exact
// equidistant ties (the linear scan's first-wins tie is creation
// order, which the ring search must reproduce).
func TestNetworkNearestAPMatchesLinear(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Env.ShadowingSigmaDB = 0
		net := New(cfg)
		rng := rand.New(rand.NewSource(seed * 31))
		var aps []*Node
		for i := 0; i < 30; i++ {
			p := Position{X: rng.Float64() * 800, Y: rng.Float64() * 800}
			aps = append(aps, net.AddAP(fmt.Sprintf("ap%d", i), p, phy.Channel1))
		}
		for q := 0; q < 200; q++ {
			// Sprinkle queries beyond the bounding box too.
			p := Position{X: rng.Float64()*1000 - 100, Y: rng.Float64()*1000 - 100}
			want := NearestAP(aps, p)
			if got := net.NearestAP(p); got != want {
				t.Fatalf("seed %d query %+v: index found %v, linear scan %v", seed, p, got, want)
			}
		}
	}
	// Exact tie: two APs mirrored around the query point.
	cfg := DefaultConfig()
	cfg.Env.ShadowingSigmaDB = 0
	net := New(cfg)
	a := net.AddAP("a", Position{X: 0, Y: 50}, phy.Channel1)
	b := net.AddAP("b", Position{X: 100, Y: 50}, phy.Channel6)
	aps := []*Node{a, b}
	q := Position{X: 50, Y: 50}
	if NearestAP(aps, q) != a {
		t.Fatal("linear tie-break changed — update the index tie-break to match")
	}
	if got := net.NearestAP(q); got != a {
		t.Fatalf("index tie-break picked %v, linear scan picks first-created", got)
	}
	if net.NearestAP(Position{X: 99, Y: 50}) != b {
		t.Fatal("index missed the strictly nearer AP")
	}
	empty := New(cfg)
	if empty.NearestAP(q) != nil {
		t.Fatal("empty network must return nil")
	}
}
