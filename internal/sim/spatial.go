package sim

import "math"

// This file breaks the O(N²) link matrix with spatial interference
// culling: a uniform cell grid over node positions (rebuilt lazily off
// the position epoch, the same invalidation contract the link rows
// use) and sparse link rows that precompute links only to nodes within
// interference range, cutting link-matrix memory from O(N²) to O(N·k)
// and per-transmission medium work from O(N) to O(neighbors).
//
// Sparse mode engages when the radio is fully deterministic
// (Env.ShadowingSigmaDB == 0 and Config.ForceDenseLinks unset). With
// shadowing enabled, delivery draws one normal variate per candidate
// receiver before any range check, so culling the candidate set would
// shift the RNG stream; those networks keep the dense matrix
// byte-for-byte — which is also what keeps the existing goldens
// bit-identical. At σ = 0 a node beyond the cull radius is below both
// the carrier-sense and the decode floor, so the dense loops skip it
// with zero side effects and zero RNG draws; culling it is therefore
// exact (spatial_test.go audits this against the dense computation).

// spatialMargin pads the cull radius so floating-point rounding in the
// log/pow round-trip can never re-admit a culled node: beyond
// radius×margin the received power is decisively below both floors.
const spatialMargin = 1.001

// cullRadius returns the distance beyond which a transmitter at power
// dBm is below both the carrier-sense threshold and the noise floor at
// every receiver under the deterministic path loss.
func (n *Network) cullRadius(power float64) float64 {
	env := &n.cfg.Env
	floor := env.NoiseFloorDBm
	if env.CarrierSenseDBm < floor {
		floor = env.CarrierSenseDBm
	}
	d := math.Pow(10, (power-env.RefLossDB-floor)/(10*env.PathLossExponent))
	if d < 1 {
		d = 1 // PathLossDB clamps distances below 1 m
	}
	return d
}

// cellGrid is a uniform bucket grid over node positions. The cell edge
// is at least the cull radius of the strongest transmitter, so a
// node's entire interference neighborhood is contained in the 3×3
// block of cells around its own.
type cellGrid struct {
	epoch  uint64  // posEpoch the buckets were filled at
	nnodes int     // node count at fill time (adds don't bump the epoch)
	power  float64 // max transmit power the cell size covers
	cell   float64 // cell edge length in meters
	minX   float64
	minY   float64
	cols   int
	rows   int
	// buckets is row-major; each bucket lists its nodes in ID
	// (creation) order, so merged neighborhoods sort cheaply.
	buckets [][]*Node
	builds  uint64 // lifetime rebuild count (snapshot witness)
}

// spatialIndex returns the cell grid, rebuilding it if any node moved
// or was added since the last fill, or if power exceeds what the
// current cell size covers (TPC or tests raising TxPower mid-run).
func (n *Network) spatialIndex(power float64) *cellGrid {
	g := n.grid
	if g == nil {
		g = &cellGrid{}
		n.grid = g
	}
	if g.builds > 0 && g.epoch == n.posEpoch && g.nnodes == len(n.nodes) && power <= g.power {
		return g
	}
	maxP := power
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, o := range n.nodes {
		if o.TxPower > maxP {
			maxP = o.TxPower
		}
		minX, minY = math.Min(minX, o.Pos.X), math.Min(minY, o.Pos.Y)
		maxX, maxY = math.Max(maxX, o.Pos.X), math.Max(maxY, o.Pos.Y)
	}
	if len(n.nodes) == 0 {
		minX, minY, maxX, maxY = 0, 0, 0, 0
	}
	g.power = maxP
	g.cell = n.cullRadius(maxP) * spatialMargin
	g.minX, g.minY = minX, minY
	g.cols = int((maxX-minX)/g.cell) + 1
	g.rows = int((maxY-minY)/g.cell) + 1
	need := g.cols * g.rows
	if cap(g.buckets) < need {
		g.buckets = make([][]*Node, need)
	}
	g.buckets = g.buckets[:need]
	for i := range g.buckets {
		g.buckets[i] = g.buckets[i][:0]
	}
	for _, o := range n.nodes { // ID order keeps each bucket ID-sorted
		cx, cy := g.cellOf(o.Pos)
		g.buckets[cy*g.cols+cx] = append(g.buckets[cy*g.cols+cx], o)
	}
	g.epoch = n.posEpoch
	g.nnodes = len(n.nodes)
	g.builds++
	return g
}

// cellOf maps a position inside the index's bounding box to bucket
// coordinates, clamped defensively against float edge rounding.
func (g *cellGrid) cellOf(p Position) (cx, cy int) {
	cx = int((p.X - g.minX) / g.cell)
	cy = int((p.Y - g.minY) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

// cellAt maps an arbitrary position — possibly outside the bounding
// box — to unclamped cell coordinates for ring searches.
func (g *cellGrid) cellAt(p Position) (cx, cy int) {
	return int(math.Floor((p.X - g.minX) / g.cell)), int(math.Floor((p.Y - g.minY) / g.cell))
}

// visitCell calls fn for every node bucketed in cell (cx, cy); cells
// outside the grid are empty.
func (g *cellGrid) visitCell(cx, cy int, fn func(*Node)) {
	if cx < 0 || cx >= g.cols || cy < 0 || cy >= g.rows {
		return
	}
	for _, o := range g.buckets[cy*g.cols+cx] {
		fn(o)
	}
}

// forRing visits every node bucketed in cells at Chebyshev distance r
// from (cx, cy).
func (g *cellGrid) forRing(cx, cy, r int, fn func(*Node)) {
	if r == 0 {
		g.visitCell(cx, cy, fn)
		return
	}
	for x := cx - r; x <= cx+r; x++ {
		g.visitCell(x, cy-r, fn)
		g.visitCell(x, cy+r, fn)
	}
	for y := cy - r + 1; y <= cy+r-1; y++ {
		g.visitCell(cx-r, y, fn)
		g.visitCell(cx+r, y, fn)
	}
}

// buildSparseRow fills row with links to every node in the 3×3 bucket
// neighborhood of node's cell — a superset of all nodes within the
// cull radius at this row's power — in ascending node-ID order.
// Everything outside the neighborhood is below both the sense and
// decode floors, exactly the entries the dense matrix stores only to
// skip.
func (n *Network) buildSparseRow(row *linkRow, node *Node) {
	g := n.spatialIndex(row.power)
	row.ownerPos = node.Pos
	row.gen++ // invalidate caches keyed on this row's content
	row.ids, row.ls = row.ids[:0], row.ls[:0]
	row.extraIDs, row.extraLs = row.extraIDs[:0], row.extraLs[:0]
	cx, cy := g.cellOf(node.Pos)
	// Merge the up-to-nine ID-sorted buckets, computing links in the
	// merged (ascending ID) order — the same per-pair linkFromTo calls
	// the dense rebuild makes, so stored values are float-identical.
	var runs [9][]*Node
	nr := 0
	for y := cy - 1; y <= cy+1; y++ {
		if y < 0 || y >= g.rows {
			continue
		}
		for x := cx - 1; x <= cx+1; x++ {
			if x < 0 || x >= g.cols {
				continue
			}
			if b := g.buckets[y*g.cols+x]; len(b) > 0 {
				runs[nr] = b
				nr++
			}
		}
	}
	for {
		best := -1
		for i := 0; i < nr; i++ {
			if len(runs[i]) == 0 {
				continue
			}
			if best < 0 || runs[i][0].ID < runs[best][0].ID {
				best = i
			}
		}
		if best < 0 {
			break
		}
		o := runs[best][0]
		runs[best] = runs[best][1:]
		row.ids = append(row.ids, int32(o.ID))
		row.ls = append(row.ls, n.linkFromTo(row.power, node, o))
	}
}

// linkTo returns the stored link toward o and whether the row stores
// one. A miss means o was outside the cull radius when the row was
// built (or rebuilt last): below both the sense and decode floors.
func (r *linkRow) linkTo(o *Node) (link, bool) {
	if !r.sparse {
		return r.to[o.ID], true
	}
	id := int32(o.ID)
	lo, hi := 0, len(r.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.ids) && r.ids[lo] == id {
		return r.ls[lo], true
	}
	for i, eid := range r.extraIDs {
		if eid == id {
			return r.extraLs[i], true
		}
	}
	return link{}, false
}

// senses reports whether o's carrier sense detects this row's
// transmitter. Culled entries never sense — the dense matrix stores
// sense=false for them.
func (r *linkRow) senses(o *Node) bool {
	l, ok := r.linkTo(o)
	return ok && l.sense
}

// mwTo returns the row's received power in milliwatts at o, for
// interference sums. A culled pair still contributes its sub-floor
// power (the dense sum includes every overlapped transmitter), so a
// miss recomputes it from the row's pinned transmitter position.
func (n *Network) mwTo(r *linkRow, o *Node) float64 {
	if l, ok := r.linkTo(o); ok {
		return l.mw
	}
	env := &n.cfg.Env
	dBm := env.RxPowerDBm(r.power, r.ownerPos.Distance(o.Pos), nil)
	return pow10(dBm / 10)
}

// snrTo returns the row's SNR toward o, recomputing the out-of-range
// value from the row's pinned transmitter position when the sparse row
// culled it — callers see the same number the dense matrix stores.
func (n *Network) snrTo(r *linkRow, o *Node) float64 {
	if l, ok := r.linkTo(o); ok {
		return l.snr
	}
	env := &n.cfg.Env
	return env.SNRdB(env.RxPowerDBm(r.power, r.ownerPos.Distance(o.Pos), nil))
}

// spCand is one in-range candidate of a culled medium loop, carrying
// its precomputed link.
type spCand struct {
	o *Node
	l link
}

// gatherCands collects row's stored neighbors that are attached to m
// (excluding skip) into dst, ordered by medium attachment order — the
// same set and order in which the dense loops visit nodes with nonzero
// effect (everything else is below both floors and skipped there).
func (m *medium) gatherCands(dst []spCand, row *linkRow, skip *Node) []spCand {
	dst = dst[:0]
	for i, id := range row.ids {
		o := m.net.nodes[id]
		if o == skip || o.medium != m {
			continue
		}
		if l := row.ls[i]; l.sense || l.snr > 0 {
			dst = append(dst, spCand{o, l})
		}
	}
	for i, id := range row.extraIDs {
		o := m.net.nodes[id]
		if o == skip || o.medium != m {
			continue
		}
		if l := row.extraLs[i]; l.sense || l.snr > 0 {
			dst = append(dst, spCand{o, l})
		}
	}
	// Insertion sort by attachment order. IDs ascend, which is
	// creation order — already attachment order unless channel
	// switches reordered the medium, so passes are near-linear.
	for i := 1; i < len(dst); i++ {
		c := dst[i]
		j := i - 1
		for j >= 0 && dst[j].o.mediumIdx > c.o.mediumIdx {
			dst[j+1] = dst[j]
			j--
		}
		dst[j+1] = c
	}
	return dst
}

// NearestAP returns the geometrically nearest AP to pos, answered from
// the spatial index by expanding-ring search; ties break by node
// creation order, matching the package-level linear scan over a
// creation-ordered slice. The index carries all nodes and touches
// neither the RNG nor the event queue, so calling this from dense-mode
// networks leaves their traces bit-identical.
func (n *Network) NearestAP(pos Position) *Node {
	if len(n.nodes) == 0 {
		return nil
	}
	g := n.spatialIndex(0)
	cx, cy := g.cellAt(pos)
	var best *Node
	bestD := math.Inf(1)
	for r := 0; ; r++ {
		// Cells at Chebyshev ring r lie at least (r-1) cell edges from
		// pos; once that exceeds the best distance no closer AP exists.
		// The bound is strict, so rings that could hold an equidistant
		// lower-ID AP are still scanned.
		if best != nil && float64(r-1)*g.cell > bestD {
			break
		}
		// Stop once the ring interior has swallowed the whole grid.
		if cx-r+1 <= 0 && cx+r-1 >= g.cols-1 && cy-r+1 <= 0 && cy+r-1 >= g.rows-1 {
			break
		}
		g.forRing(cx, cy, r, func(o *Node) {
			if !o.IsAP {
				return
			}
			if d := o.Pos.Distance(pos); d < bestD || (d == bestD && o.ID < best.ID) {
				best, bestD = o, d
			}
		})
	}
	return best
}

// LinkStats forces every link row current and reports the matrix
// population: row count, total stored directed links, and the longest
// row — the O(N·k) versus O(N²) memory evidence the campus-scale
// tests assert on. Dense mode stores N links per row.
func (n *Network) LinkStats() (rows, links, maxRow int) {
	for _, node := range n.nodes {
		row := n.rowFor(node)
		stored := len(row.to)
		if row.sparse {
			stored = len(row.ids) + len(row.extraIDs)
		}
		links += stored
		if stored > maxRow {
			maxRow = stored
		}
	}
	return len(n.nodes), links, maxRow
}
