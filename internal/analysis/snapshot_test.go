package analysis

import (
	"sync"
	"testing"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
)

// buildSnapshotTrace returns a small multi-second, multi-channel trace
// including one unparseable record.
func buildSnapshotTrace() []capture.Record {
	var recs []capture.Record
	t := phy.Micros(0)
	for sec := 0; sec < 5; sec++ {
		t = phy.Micros(sec) * phy.MicrosPerSecond
		for i := 0; i < 20; i++ {
			chunk, end := dataAck(t, staAddr, 500, phy.Rate11Mbps, uint16(sec*100+i), false)
			recs = append(recs, chunk...)
			t = end + 100
		}
		recs = append(recs, beaconRec(t))
	}
	// One record whose MAC frame cannot parse (too short).
	recs = append(recs, capture.Record{
		Time: t + 50, Rate: phy.Rate1Mbps, Channel: phy.Channel1,
		OrigLen: 4, Frame: []byte{0xff, 0xff},
	})
	// A second channel, so the shard counter moves past 1.
	b := beaconRec(t + 100)
	b.Channel = phy.Channel6
	recs = append(recs, b)
	return recs
}

// TestSnapshotConcurrentWithFeed drives Feed on one goroutine while
// another polls Snapshot continuously — the monitor layer's exact
// access pattern. Under -race this proves the snapshot surface is
// safe to read mid-stream; the final snapshot must agree with the
// Result totals.
func TestSnapshotConcurrentWithFeed(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		a, err := New(Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		recs := buildSnapshotTrace()

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last Snapshot
			for {
				s := a.Snapshot()
				// Progress counters must be monotonic.
				if s.Frames < last.Frames || s.ParseErrors < last.ParseErrors ||
					s.Channels < last.Channels || s.LastTime < last.LastTime {
					t.Errorf("parallel=%v: snapshot went backwards: %+v after %+v", parallel, s, last)
					return
				}
				last = s
				select {
				case <-stop:
					return
				default:
				}
			}
		}()

		a.FeedAll(recs)
		r := a.Result()
		close(stop)
		wg.Wait()

		s := a.Snapshot()
		if s.Frames != r.TotalFrames {
			t.Errorf("parallel=%v: Snapshot.Frames = %d, Result.TotalFrames = %d", parallel, s.Frames, r.TotalFrames)
		}
		if s.ParseErrors != r.ParseErrors || s.ParseErrors != 1 {
			t.Errorf("parallel=%v: Snapshot.ParseErrors = %d, Result.ParseErrors = %d, want 1", parallel, s.ParseErrors, r.ParseErrors)
		}
		if s.Channels != 2 {
			t.Errorf("parallel=%v: Snapshot.Channels = %d, want 2", parallel, s.Channels)
		}
		if want := recs[len(recs)-1].Time; s.LastTime != want {
			t.Errorf("parallel=%v: Snapshot.LastTime = %d, want %d", parallel, s.LastTime, want)
		}
	}
}

// TestOptionsExtra proves Options.Extra stages are instantiated per
// shard and observe the same annotated events as registered stages.
func TestOptionsExtra(t *testing.T) {
	type tap struct {
		frames  int64
		seconds int64
	}
	var mu sync.Mutex
	taps := 0
	total := &tap{}
	a, err := New(Options{
		Metrics: []string{"util"},
		Extra: []Factory{func() Metric {
			mu.Lock()
			taps++
			mu.Unlock()
			return &funcMetric{
				onFrame:  func(*FrameEvent) { total.frames++ },
				onSecond: func(int64) { total.seconds++ },
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := buildSnapshotTrace()
	a.FeedAll(recs)
	r := a.Result()
	if taps != 2 {
		t.Errorf("extra factory invoked %d times, want once per shard (2)", taps)
	}
	if total.frames != r.TotalFrames {
		t.Errorf("extra stage saw %d frames, result has %d", total.frames, r.TotalFrames)
	}
	if total.seconds == 0 {
		t.Error("extra stage saw no OnSecond ticks")
	}
}

// funcMetric adapts closures to the Metric interface for tests.
type funcMetric struct {
	onFrame  func(*FrameEvent)
	onSecond func(int64)
}

func (m *funcMetric) OnFrame(ev *FrameEvent) { m.onFrame(ev) }
func (m *funcMetric) OnSecond(sec int64)     { m.onSecond(sec) }
func (m *funcMetric) Finalize(*Result)       {}
