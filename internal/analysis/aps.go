package analysis

import (
	"sort"

	"wlan80211/internal/dot11"
)

// APReport holds per-AP traffic and unrecorded-frame estimates
// (Figures 4a and 4c). The aps metric stage counts frames for every
// observed address while it discovers APs (beacon transmitters and
// FromDS BSSIDs); the report's accessors filter to the final AP set,
// so single-pass streaming matches the old two-pass discovery exactly.
type APReport struct {
	known  map[dot11.Addr]bool
	frames map[dot11.Addr]int64
	unrec  map[dot11.Addr]int64
}

// APStat is one AP's counters.
type APStat struct {
	// Addr identifies the AP (its BSSID).
	Addr dot11.Addr
	// Frames counts captured frames sent or received by the AP.
	Frames int64
	// Unrecorded counts frames attributed to the AP by the atomicity
	// estimators of Sec 4.4.
	Unrecorded int64
}

// UnrecordedPercent is Equation 1 applied per AP.
func (s *APStat) UnrecordedPercent() float64 {
	if s.Unrecorded+s.Frames == 0 {
		return 0
	}
	return 100 * float64(s.Unrecorded) / float64(s.Unrecorded+s.Frames)
}

// merge folds one shard's discovery sets and counters in.
func (r *APReport) merge(known map[dot11.Addr]bool, frames, unrec map[dot11.Addr]int64) {
	if r.known == nil {
		r.known = make(map[dot11.Addr]bool, len(known))
		r.frames = make(map[dot11.Addr]int64, len(frames))
		r.unrec = make(map[dot11.Addr]int64, len(unrec))
	}
	for a := range known {
		r.known[a] = true
	}
	for a, n := range frames {
		r.frames[a] += n
	}
	for a, n := range unrec {
		r.unrec[a] += n
	}
}

// IsAP reports whether an address belongs to a discovered AP.
func (r *APReport) IsAP(a dot11.Addr) bool { return r.known[a] }

// Count returns the number of discovered APs.
func (r *APReport) Count() int { return len(r.known) }

// Stat returns the stats for one AP (nil if unknown).
func (r *APReport) Stat(a dot11.Addr) *APStat {
	if !r.known[a] {
		return nil
	}
	return &APStat{Addr: a, Frames: r.frames[a], Unrecorded: r.unrec[a]}
}

// TopN returns the N most active APs by frame count, in decreasing
// order — the ranking of Figures 4a and 4c.
func (r *APReport) TopN(n int) []*APStat {
	out := make([]*APStat, 0, len(r.known))
	for a := range r.known {
		out = append(out, &APStat{Addr: a, Frames: r.frames[a], Unrecorded: r.unrec[a]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frames != out[j].Frames {
			return out[i].Frames > out[j].Frames
		}
		return out[i].Addr.String() < out[j].Addr.String() // stable tie-break
	})
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

// TopNShare returns the fraction of all AP-attributed frames carried
// by the N most active APs (the paper: top 15 carried 90.33% day,
// 95.37% plenary).
func (r *APReport) TopNShare(n int) float64 {
	var total, top int64
	ranked := r.TopN(len(r.known))
	for i, s := range ranked {
		total += s.Frames
		if i < n {
			top += s.Frames
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}
