package analysis

import (
	"wlan80211/internal/phy"
)

// Table 2 delay components, in microseconds. These are the paper's
// values verbatim; DataDelay reproduces the DDATA(size)(rate) formula.
const (
	DelayDIFS   phy.Micros = 50
	DelaySIFS   phy.Micros = 10
	DelayRTS    phy.Micros = 352
	DelayCTS    phy.Micros = 304
	DelayACK    phy.Micros = 304
	DelayBeacon phy.Micros = 304
	DelayBO     phy.Micros = 0 // Sec 5.1: at least one station always has BO=0
	DelayPLCP   phy.Micros = 192
)

// AckMatchWindow is the maximum gap between the end of a data frame
// and the start of its ACK for the pair to be considered a DATA–ACK
// exchange (SIFS plus scheduling slack).
const AckMatchWindow phy.Micros = 6 * DelaySIFS

// DataDelay is the paper's DDATA(size)(rate) = DPLCP + 8*(34+size)/rate
// with size in bytes and rate in Mbps. The 34 bytes account for
// MAC framing overhead beyond the payload the formula's "size" counts;
// the paper applies the formula to captured frame sizes, and so do we.
// Division is rounded up to whole microseconds (transmissions occupy
// whole symbol times).
func DataDelay(sizeBytes int, r phy.Rate) phy.Micros {
	if sizeBytes < 0 {
		sizeBytes = 0
	}
	bits := phy.Micros(34+sizeBytes) * 8
	kbps := phy.Micros(r.Kbps())
	if kbps == 0 {
		return DelayPLCP
	}
	return DelayPLCP + (bits*1000+kbps-1)/kbps
}

// CBTData is Equation 2: channel busy-time for a data frame of size S
// at rate R, charged a preceding DIFS.
func CBTData(sizeBytes int, r phy.Rate) phy.Micros {
	return DelayDIFS + DataDelay(sizeBytes, r)
}

// CBTRTS is Equation 3: busy-time for an RTS frame.
func CBTRTS() phy.Micros { return DelayRTS }

// CBTCTS is Equation 4: busy-time for a CTS frame (SIFS + CTS).
func CBTCTS() phy.Micros { return DelaySIFS + DelayCTS }

// CBTACK is Equation 5: busy-time for an ACK frame (SIFS + ACK).
func CBTACK() phy.Micros { return DelaySIFS + DelayACK }

// CBTBeacon is Equation 6: busy-time for a beacon (DIFS + beacon).
func CBTBeacon() phy.Micros { return DelayDIFS + DelayBeacon }

// UtilizationPercent is Equation 8: the percentage of a one-second
// interval consumed by cbtTotal microseconds of busy-time, clamped to
// 0..100 (a second can be slightly over-counted when IFS charges of
// frames straddling the boundary land in one bin).
func UtilizationPercent(cbtTotal phy.Micros) int {
	u := int(cbtTotal * 100 / phy.MicrosPerSecond)
	if u < 0 {
		return 0
	}
	if u > 100 {
		return 100
	}
	return u
}
