package analysis

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"wlan80211/internal/capture"
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

// syntheticTrace builds a deterministic three-channel trace that
// exercises every decoder path: complete DATA–ACK and RTS–CTS–DATA–ACK
// exchanges, retries, orphan ACKs and CTSs, an RTS–DATA pair with its
// CTS missing, broadcast data, management frames, a parse error, and
// multi-second gaps (so empty seconds and user windows appear).
func syntheticTrace() []capture.Record {
	var recs []capture.Record
	onCh := func(ch phy.Channel, rs ...capture.Record) {
		for i := range rs {
			rs[i].Channel = ch
			recs = append(recs, rs[i])
		}
	}
	for ci, ch := range []phy.Channel{phy.Channel1, phy.Channel6, phy.Channel11} {
		base := phy.Micros(ci) * 137 // desynchronize channels
		onCh(ch, beaconRec(base+100))

		// Complete exchanges at varied sizes and rates.
		t := base + 200_000
		for i := 0; i < 8; i++ {
			sta := dot11.AddrFromUint64(uint64(0x10 + i%3))
			size := 100 + i*190 // spans all four size classes
			rate := phy.Rates[i%4]
			m, end := dataAck(t, sta, size, rate, uint16(i), i%3 == 0)
			onCh(ch, m...)
			t = end + 5_000
		}

		// RTS–CTS–DATA–ACK, fully captured.
		rts := dot11.NewRTS(apAddr, staAddr, 2000)
		rtsEnd := t + phy.Airtime(20, phy.Rate1Mbps)
		ctsStart := rtsEnd + phy.SIFS
		ctsEnd := ctsStart + phy.Airtime(14, phy.Rate1Mbps)
		d := dot11.NewData(apAddr, staAddr, apAddr, 100, make([]byte, 900))
		d.FC.ToDS = true
		dStart := ctsEnd + phy.SIFS
		dEnd := dStart + phy.Airtime(d.WireLen(), phy.Rate11Mbps)
		onCh(ch,
			rec(t, rts, phy.Rate1Mbps),
			rec(ctsStart, dot11.NewCTS(staAddr, 1500), phy.Rate1Mbps),
			rec(dStart, d, phy.Rate11Mbps),
			rec(dEnd+phy.SIFS, dot11.NewACK(staAddr), phy.Rate1Mbps))

		// RTS then DATA with the CTS unrecorded.
		t = dEnd + 50_000
		d2 := dot11.NewData(apAddr, sta2, apAddr, 101, make([]byte, 700))
		d2.FC.ToDS = true
		onCh(ch,
			rec(t, dot11.NewRTS(apAddr, sta2, 2000), phy.Rate1Mbps),
			rec(t+1_000, d2, phy.Rate5_5Mbps))

		// Orphan ACK, lone CTS, broadcast data, management, retry span.
		onCh(ch, rec(t+100_000, dot11.NewACK(apAddr), phy.Rate1Mbps))
		onCh(ch, rec(t+150_000, dot11.NewCTS(apAddr, 900), phy.Rate2Mbps))
		bc := dot11.NewData(dot11.Broadcast, apAddr, apAddr, 102, make([]byte, 400))
		bc.FC.FromDS = true
		onCh(ch, rec(t+200_000, bc, phy.Rate2Mbps))
		onCh(ch, rec(t+250_000, dot11.NewAssocReq(staAddr, apAddr, "net", 103), phy.Rate1Mbps))

		// A parse error record.
		onCh(ch, capture.Record{Time: t + 300_000, Rate: phy.Rate1Mbps,
			OrigLen: 3, Frame: []byte{0xff, 0xff, 0xff}})

		// Jump several seconds (gap seconds + a second user window),
		// then one more exchange.
		m, _ := dataAck(base+35*phy.MicrosPerSecond, staAddr, 300, phy.Rate11Mbps, 104, false)
		onCh(ch, m...)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	return recs
}

// TestStreamingMatchesBatch is the redesign's core contract: feeding
// records incrementally, in arrival order interleaved across channels,
// produces a Result identical to the batch Analyze entry point.
func TestStreamingMatchesBatch(t *testing.T) {
	trace := syntheticTrace()
	batch := Analyze(trace)

	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace {
		a.Feed(r)
	}
	streamed := a.Result()

	if !reflect.DeepEqual(batch, streamed) {
		t.Errorf("streaming result differs from batch:\nbatch:    %+v\nstreamed: %+v", batch, streamed)
	}
	if batch.TotalFrames == 0 || batch.ParseErrors != 3 || batch.Unrecorded.Total() == 0 {
		t.Errorf("synthetic trace not exercising the decoder: %+v", batch.Unrecorded)
	}
	if len(batch.PerChannel) != 3 {
		t.Errorf("channels = %d, want 3", len(batch.PerChannel))
	}
	if len(batch.Users) != 2 {
		t.Errorf("user windows = %d, want 2", len(batch.Users))
	}
}

// TestParallelMatchesSequentialAndIsDeterministic: the per-channel
// parallel path merges shards in ascending channel order, so it is
// bit-identical to the sequential path, run after run.
func TestParallelMatchesSequentialAndIsDeterministic(t *testing.T) {
	trace := syntheticTrace()
	seq := Analyze(trace)
	var prev *Result
	for run := 0; run < 3; run++ {
		par, err := AnalyzeWith(Options{Parallel: true}, trace)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("run %d: parallel result differs from sequential", run)
		}
		if prev != nil && !reflect.DeepEqual(prev, par) {
			t.Fatalf("run %d: parallel result not deterministic", run)
		}
		prev = par
	}
}

// TestRunStreamsFromPcap verifies the io.Reader entry point: analyzing
// straight from a pcap stream equals reading the trace into memory
// first.
func TestRunStreamsFromPcap(t *testing.T) {
	trace := syntheticTrace()
	var buf bytes.Buffer
	w, err := capture.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	pcapBytes := buf.Bytes()

	loaded, _, err := capture.ReadAll(bytes.NewReader(pcapBytes))
	if err != nil {
		t.Fatal(err)
	}
	want := Analyze(loaded)

	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	skipped, err := a.Run(bytes.NewReader(pcapBytes))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d records", skipped)
	}
	got := a.Result()
	if !reflect.DeepEqual(want, got) {
		t.Error("Run(pcap) result differs from in-memory analysis")
	}
}

// TestRunRejectsWrongLinkType: a non-radiotap pcap is refused.
func TestRunRejectsWrongLinkType(t *testing.T) {
	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An ethernet pcap header (link type 1).
	hdr := []byte{0xd4, 0xc3, 0xb2, 0xa1, 2, 0, 4, 0,
		0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0, 0, 1, 0, 0, 0}
	if _, err := a.Run(bytes.NewReader(hdr)); err != capture.ErrLinkType {
		t.Errorf("err = %v, want ErrLinkType", err)
	}
}

// TestMetricSelection runs a subset of stages and checks unselected
// Result fields stay zero-valued.
func TestMetricSelection(t *testing.T) {
	trace := syntheticTrace()
	r, err := AnalyzeWith(Options{Metrics: []string{"util", "unrecorded"}}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerChannel) != 3 || r.UtilHist.N() == 0 {
		t.Error("util stage did not run")
	}
	if r.Unrecorded.Total() == 0 {
		t.Error("unrecorded stage did not run")
	}
	if r.Throughput.NOver(0, 100) != 0 || r.APs.Count() != 0 || len(r.Users) != 0 {
		t.Error("unselected stages produced output")
	}
	full := Analyze(trace)
	if full.Unrecorded != r.Unrecorded {
		t.Error("stage selection changed the unrecorded estimate")
	}

	if _, err := AnalyzeWith(Options{Metrics: []string{"nope"}}, trace); err == nil {
		t.Error("unknown metric name must error")
	}
}

// TestFeedAfterResultPanics pins the lifecycle contract.
func TestFeedAfterResultPanics(t *testing.T) {
	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Feed(beaconRec(100))
	a.Result()
	defer func() {
		if recover() == nil {
			t.Error("Feed after Result must panic")
		}
	}()
	a.Feed(beaconRec(200))
}

// TestRegistry checks the built-in stages are registered in figure
// order with descriptions.
func TestRegistry(t *testing.T) {
	names := Names()
	wantPrefix := []string{"util", "throughput", "rtscts", "rates",
		"categories", "firstack", "delay", "aps", "unrecorded"}
	if len(names) < len(wantPrefix) {
		t.Fatalf("registered = %v", names)
	}
	for i, w := range wantPrefix {
		if names[i] != w {
			t.Errorf("names[%d] = %q, want %q", i, names[i], w)
		}
		if Describe(w) == "" {
			t.Errorf("metric %q has no description", w)
		}
	}
	if Describe("nope") != "" {
		t.Error("unknown metric must describe empty")
	}
}

// countingMetric is the extensibility check: a custom stage observing
// the shared event stream.
type countingMetric struct {
	frames, seconds int
	total           *int
}

func (m *countingMetric) OnFrame(ev *FrameEvent) { m.frames++ }
func (m *countingMetric) OnSecond(sec int64)     { m.seconds++ }
func (m *countingMetric) Finalize(r *Result)     { *m.total += m.frames }

// TestCustomMetricRegistration plugs a user-defined stage into the
// pipeline via the registry.
func TestCustomMetricRegistration(t *testing.T) {
	total := 0
	Register("test-counter", "test-only frame counter",
		func() Metric { return &countingMetric{total: &total} })
	trace := syntheticTrace()
	r, err := AnalyzeWith(Options{Metrics: []string{"test-counter"}}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if int64(total) != r.TotalFrames || total != len(trace) {
		t.Errorf("custom metric saw %d frames, want %d", total, len(trace))
	}
}

// TestEmptyAnalyzer: a Result with no input is well-formed.
func TestEmptyAnalyzer(t *testing.T) {
	a, err := New(Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	r := a.Result()
	if r.TotalFrames != 0 || len(r.PerChannel) != 0 || r.UtilHist == nil {
		t.Errorf("empty result malformed: %+v", r)
	}
}

// TestLateRecordFoldedIntoOpenSecond documents the streaming-order
// contract: a record older than its channel's open second is counted,
// not dropped, and charged to the open second.
func TestLateRecordFoldedIntoOpenSecond(t *testing.T) {
	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Feed(beaconRec(5 * phy.MicrosPerSecond))
	a.Feed(beaconRec(2 * phy.MicrosPerSecond)) // late
	r := a.Result()
	if r.TotalFrames != 2 {
		t.Fatalf("TotalFrames = %d", r.TotalFrames)
	}
	secs := r.PerChannel[phy.Channel1]
	if len(secs) != 1 {
		t.Fatalf("seconds = %d, want 1", len(secs))
	}
	if secs[0].Beacon != 2 || secs[0].Second != 5 {
		t.Errorf("late record not folded: %+v", secs[0])
	}
}
