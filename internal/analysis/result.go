package analysis

import (
	"sort"

	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
	"wlan80211/internal/stats"
)

// SecondStat is one second of one channel, the unit of the paper's
// analysis.
type SecondStat struct {
	// Second is the interval index (seconds from trace epoch).
	Second int64
	// Channel the statistics belong to.
	Channel phy.Channel
	// CBT is the summed channel busy-time (Equation 7).
	CBT phy.Micros
	// Utilization is Equation 8's percentage for this second.
	Utilization int
	// ThroughputMbps counts bits of all captured frames.
	ThroughputMbps float64
	// GoodputMbps counts bits of control frames and successfully
	// acknowledged data frames.
	GoodputMbps float64
	// Frame counts by type.
	Data, RTS, CTS, ACK, Beacon int
}

// Result is the full analysis of a trace. Fields are populated by the
// metric stages that ran; a stage that was not selected leaves its
// fields zero-valued.
type Result struct {
	// PerChannel holds the per-second time series (Figures 5a/5b).
	PerChannel map[phy.Channel][]SecondStat
	// UtilHist is the utilization frequency histogram (Figure 5c),
	// one count per channel-second.
	UtilHist *stats.Histogram

	// Figure 6.
	Throughput stats.ByUtilization // Mbps samples keyed by utilization
	Goodput    stats.ByUtilization

	// Figure 7: RTS and CTS frames per second.
	RTSPerSec stats.ByUtilization
	CTSPerSec stats.ByUtilization

	// Figure 8: per-rate channel busy-time (seconds of each second).
	BusyTimePerRate [4]stats.ByUtilization
	// Figure 9: per-rate bytes per second.
	BytesPerRate [4]stats.ByUtilization

	// Figures 10–13: data-frame transmissions per second for each of
	// the 16 size×rate categories.
	TxPerCategory [16]stats.ByUtilization

	// Figure 14: data frames acknowledged at first attempt, per rate.
	FirstAckPerRate [4]stats.ByUtilization

	// Figure 15: acceptance delay (seconds) per category.
	AcceptDelay [16]stats.ByUtilization

	// Figure 4: per-AP traffic and unrecorded estimation, user counts.
	APs   APReport
	Users []UserPoint

	// Unrecorded aggregates the atomicity-based estimators (Sec 4.4).
	Unrecorded UnrecordedStats

	// TotalFrames is the number of records analyzed.
	TotalFrames int64
	// ParseErrors counts records whose MAC frame failed to parse.
	ParseErrors int64

	// userWindows accumulates per-window client-address candidates
	// until every shard has finalized; finish() resolves it against the
	// full AP set into Users.
	userWindows map[int64]map[dot11.Addr]bool
}

// newResult builds an empty Result ready for metric finalization.
func newResult() *Result {
	return &Result{
		PerChannel: make(map[phy.Channel][]SecondStat),
		UtilHist:   stats.NewHistogram(101),
	}
}

// mergeUserWindows folds one shard's per-window address sets in.
func (r *Result) mergeUserWindows(windows map[int64]map[dot11.Addr]bool) {
	if r.userWindows == nil {
		r.userWindows = make(map[int64]map[dot11.Addr]bool, len(windows))
	}
	for w, addrs := range windows {
		m, ok := r.userWindows[w]
		if !ok {
			m = make(map[dot11.Addr]bool, len(addrs))
			r.userWindows[w] = m
		}
		for a := range addrs {
			m[a] = true
		}
	}
}

// finish resolves cross-shard state once every metric has finalized:
// the user count of a window is the number of distinct non-AP
// addresses seen in it, and the AP set is only complete after all
// channels merged.
func (r *Result) finish() {
	if r.userWindows == nil {
		return
	}
	keys := make([]int64, 0, len(r.userWindows))
	for k := range r.userWindows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		n := 0
		for a := range r.userWindows[k] {
			if !r.APs.IsAP(a) {
				n++
			}
		}
		if n > 0 {
			r.Users = append(r.Users, UserPoint{WindowStart: k * UserWindowSeconds, Users: n})
		}
	}
	r.userWindows = nil
}

// UnrecordedStats aggregates Equation 1's inputs.
type UnrecordedStats struct {
	// MissingData counts ACKs whose soliciting DATA was not captured.
	MissingData int64
	// MissingRTS counts CTSs whose soliciting RTS was not captured.
	MissingRTS int64
	// MissingCTS counts RTS→DATA exchanges whose CTS was not captured.
	MissingCTS int64
	// Captured is the total captured frame count.
	Captured int64
}

// Total returns the estimated number of unrecorded frames.
func (u UnrecordedStats) Total() int64 {
	return u.MissingData + u.MissingRTS + u.MissingCTS
}

// Percent is Equation 1: unrecorded/(unrecorded+captured) × 100.
func (u UnrecordedStats) Percent() float64 {
	t := u.Total()
	if t+u.Captured == 0 {
		return 0
	}
	return 100 * float64(t) / float64(t+u.Captured)
}

// UserPoint is one 30-second sample of the associated-user estimate
// (Figure 4b counts distinct active client addresses per window).
type UserPoint struct {
	// WindowStart is the window's first second.
	WindowStart int64
	// Users is the number of distinct client addresses observed.
	Users int
}

// UserWindowSeconds is the averaging window of Figure 4b.
const UserWindowSeconds = 30
