package analysis

import (
	"fmt"
	"sort"

	"wlan80211/internal/phy"
)

// Metric is one composable stage of the streaming pipeline. The
// Analyzer instantiates a fresh Metric per channel shard; the shard's
// decoder calls OnFrame for every record (in time order) and OnSecond
// when a one-second interval closes, including empty gap seconds.
// Finalize merges the stage's accumulated state into the shared
// Result; shards finalize sequentially in ascending channel order, so
// Finalize needs no locking and merged aggregates are deterministic.
type Metric interface {
	// OnFrame observes one decoded, annotated record. The event
	// pointer is reused between frames and must not be retained.
	OnFrame(ev *FrameEvent)
	// OnSecond closes second sec (frames observed since the previous
	// OnSecond belong to it).
	OnSecond(sec int64)
	// Finalize merges this shard's state into the result.
	Finalize(r *Result)
}

// Factory builds one per-shard Metric instance.
type Factory func() Metric

// metricDef is one registry entry.
type metricDef struct {
	name    string
	desc    string
	factory Factory
}

// registry holds the registered stages in registration order; the
// built-in paper stages register first, in figure order.
var registry []metricDef

// Register adds a metric stage under a unique name so it can be
// selected by Options.Metrics (and wlanalyze's -metrics flag). The
// factory is invoked once per channel shard per Analyzer.
func Register(name, desc string, f Factory) {
	for _, d := range registry {
		if d.name == name {
			panic(fmt.Sprintf("analysis: metric %q already registered", name))
		}
	}
	registry = append(registry, metricDef{name: name, desc: desc, factory: f})
}

// Names returns every registered metric name in registration order
// (built-ins first, in paper-figure order).
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.name
	}
	return out
}

// Describe returns the one-line description of a registered metric
// ("" if unknown).
func Describe(name string) string {
	for _, d := range registry {
		if d.name == name {
			return d.desc
		}
	}
	return ""
}

// lookup resolves names to registry entries, preserving registration
// order and ignoring duplicates. nil or empty selects every
// registered metric.
func lookup(names []string) ([]metricDef, error) {
	if len(names) == 0 {
		return registry, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		found := false
		for _, d := range registry {
			if d.name == n {
				found = true
				break
			}
		}
		if !found {
			known := Names()
			sort.Strings(known)
			return nil, fmt.Errorf("analysis: unknown metric %q (have %v)", n, known)
		}
		want[n] = true
	}
	var out []metricDef
	for _, d := range registry {
		if want[d.name] {
			out = append(out, d)
		}
	}
	return out, nil
}

// secondUtil tracks the open second's channel busy-time so a stage can
// key its per-second samples by that second's utilization percentage —
// the x axis of every scatter figure. Embed it, call observe from
// OnFrame and flush from OnSecond.
type secondUtil struct {
	cbt phy.Micros
}

func (s *secondUtil) observe(ev *FrameEvent) { s.cbt += ev.CBT }

// flush returns the closing second's utilization and resets the
// accumulator for the next second.
func (s *secondUtil) flush() int {
	u := UtilizationPercent(s.cbt)
	s.cbt = 0
	return u
}
