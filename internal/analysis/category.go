package analysis

import (
	"fmt"

	"wlan80211/internal/phy"
)

// SizeClass is one of the paper's four frame-size classes (Sec 6).
type SizeClass int

// The four size classes.
const (
	SizeS  SizeClass = iota // 0–400 bytes: control, voice, audio
	SizeM                   // 401–800 bytes
	SizeL                   // 801–1200 bytes
	SizeXL                  // >1200 bytes: file transfer, video
)

// SizeClassOf buckets a wire frame length (bytes, FCS included).
func SizeClassOf(wireLen int) SizeClass {
	switch {
	case wireLen <= 400:
		return SizeS
	case wireLen <= 800:
		return SizeM
	case wireLen <= 1200:
		return SizeL
	default:
		return SizeXL
	}
}

// String implements fmt.Stringer ("S", "M", "L", "XL").
func (s SizeClass) String() string {
	switch s {
	case SizeS:
		return "S"
	case SizeM:
		return "M"
	case SizeL:
		return "L"
	case SizeXL:
		return "XL"
	}
	return fmt.Sprintf("size(%d)", int(s))
}

// Category is one of the paper's 16 size×rate frame categories,
// named in the size-rate format of Sec 6 ("S-11", "XL-1", ...).
type Category struct {
	Size SizeClass
	Rate phy.Rate
}

// CategoryOf builds the category of a frame.
func CategoryOf(wireLen int, r phy.Rate) Category {
	return Category{Size: SizeClassOf(wireLen), Rate: r}
}

// Index returns a dense index 0..15 (size-major) for array-backed
// aggregation, and whether the category's rate is valid.
func (c Category) Index() (int, bool) {
	ri, ok := c.Rate.Index()
	if !ok {
		return 0, false
	}
	return int(c.Size)*4 + ri, true
}

// CategoryFromIndex is the inverse of Index.
func CategoryFromIndex(i int) Category {
	return Category{Size: SizeClass(i / 4), Rate: phy.Rates[i%4]}
}

// String implements fmt.Stringer using the paper's naming ("S-11").
func (c Category) String() string {
	r := ""
	switch c.Rate {
	case phy.Rate1Mbps:
		r = "1"
	case phy.Rate2Mbps:
		r = "2"
	case phy.Rate5_5Mbps:
		r = "5.5"
	case phy.Rate11Mbps:
		r = "11"
	default:
		r = "?"
	}
	return c.Size.String() + "-" + r
}

// AllCategories lists the 16 categories in Index order.
func AllCategories() []Category {
	out := make([]Category, 16)
	for i := range out {
		out[i] = CategoryFromIndex(i)
	}
	return out
}
