// Package analysis is the canonical entry point for the paper's
// congestion analysis (Jardosh et al., IMC 2005): channel busy-time
// (Table 2, Equations 2–7), per-second channel utilization (Equation
// 8), throughput and goodput, congestion classification with knee
// detection (Sec 5), unrecorded-frame estimation from DCF atomicity
// (Sec 4.4, Equation 1), the 16 size×rate frame categories (Sec 6),
// and the per-figure aggregations for Figures 4–15.
//
// Unlike the batch core.Analyze of earlier revisions, the analysis is
// a streaming pipeline: a shared single-pass decoder parses each
// record once, tracks DCF exchange state, and fans annotated
// FrameEvents out to independent Metric stages — one per paper figure
// group — selected through Options.Metrics. Records arrive
// incrementally via Feed (or straight from a pcap stream via Run), so
// peak memory is bounded by per-second accumulator state and the
// per-device exchange tables, not by trace length. Work is sharded
// per channel — the unit at which the paper computes every metric —
// and optionally spread across goroutines; shards merge in ascending
// channel order, making the parallel path deterministic and
// bit-identical to the sequential one.
//
// The analysis consumes only capture records — what a vicinity sniffer
// could see — never simulator ground truth, so its estimators face the
// same information limits the paper's did.
package analysis

import (
	"io"
	"sort"
	"sync/atomic"

	"wlan80211/internal/capture"
	"wlan80211/internal/pcapio"
	"wlan80211/internal/phy"
)

// feedBatchSize is how many records a parallel shard receives per
// channel send (amortizes synchronization on the hot path).
const feedBatchSize = 512

// Options configures an Analyzer.
type Options struct {
	// Metrics selects which registered stages run, by name
	// (see Names). Empty runs every registered stage.
	Metrics []string
	// Parallel runs each channel shard on its own goroutine. Results
	// are identical to the sequential path: shards are independent
	// and merge in ascending channel order.
	Parallel bool
	// Extra appends per-shard metric stages beyond the registered
	// set: each factory is invoked once per channel shard, exactly
	// like a registry factory, and its stages see the same annotated
	// FrameEvents. This is how embedding layers (the live monitor)
	// tap the decoder without registering globally.
	Extra []Factory
}

// shard is the per-channel unit of work: its own decoder and metric
// instances, fed only that channel's records.
type shard struct {
	dec *decoder

	// Parallel mode: records flow through in; done closes when the
	// worker drains it.
	in   chan []capture.Record
	buf  []capture.Record
	done chan struct{}
}

// Analyzer consumes capture records incrementally and produces the
// paper's Result. Feed records (in non-decreasing time order per
// channel), then call Result once. Analyzer is not safe for
// concurrent use; parallelism is internal, per channel shard.
type Analyzer struct {
	opts   Options
	defs   []metricDef
	shards map[phy.Channel]*shard
	res    *Result

	// Live counters behind Snapshot: readable from any goroutine
	// while Feed runs on another.
	snapFrames   atomic.Int64
	snapErrors   atomic.Int64
	snapChannels atomic.Int64
	snapLast     atomic.Int64
}

// Snapshot is a goroutine-safe point-in-time view of an Analyzer's
// progress — the monitoring surface, so an embedding layer never
// reaches into decoder or stage internals.
type Snapshot struct {
	// Frames counts records accepted by Feed so far.
	Frames int64
	// ParseErrors counts records decoded so far whose MAC frame
	// failed to parse. In parallel mode decoding lags Feed, so this
	// can trail Frames' implied progress.
	ParseErrors int64
	// Channels is the number of channel shards opened.
	Channels int
	// LastTime is the newest record timestamp fed.
	LastTime phy.Micros
}

// Snapshot returns the current progress counters. Unlike every other
// Analyzer method it is safe to call concurrently with Feed (from any
// goroutine): values are individually atomic and mutually consistent
// only up to Feed's progress.
func (a *Analyzer) Snapshot() Snapshot {
	return Snapshot{
		Frames:      a.snapFrames.Load(),
		ParseErrors: a.snapErrors.Load(),
		Channels:    int(a.snapChannels.Load()),
		LastTime:    phy.Micros(a.snapLast.Load()),
	}
}

// New builds an Analyzer. It fails only when Options.Metrics names an
// unregistered stage.
func New(opts Options) (*Analyzer, error) {
	defs, err := lookup(opts.Metrics)
	if err != nil {
		return nil, err
	}
	return &Analyzer{
		opts:   opts,
		defs:   defs,
		shards: make(map[phy.Channel]*shard),
	}, nil
}

// shardFor returns (creating on first use) the channel's shard.
func (a *Analyzer) shardFor(ch phy.Channel) *shard {
	if s, ok := a.shards[ch]; ok {
		return s
	}
	metrics := make([]Metric, 0, len(a.defs)+len(a.opts.Extra))
	for _, d := range a.defs {
		metrics = append(metrics, d.factory())
	}
	for _, f := range a.opts.Extra {
		metrics = append(metrics, f())
	}
	s := &shard{dec: newDecoder(metrics)}
	if a.opts.Parallel {
		s.in = make(chan []capture.Record, 4)
		s.done = make(chan struct{})
		go func() {
			defer close(s.done)
			for batch := range s.in {
				for i := range batch {
					if !s.dec.feed(batch[i]) {
						a.snapErrors.Add(1)
					}
				}
			}
		}()
	}
	a.shards[ch] = s
	a.snapChannels.Add(1)
	return s
}

// Feed consumes one record. Records must arrive in non-decreasing
// time order within each channel (interleaving across channels is
// fine); a record older than its channel's open second is folded into
// the open second. Feed panics if called after Result.
func (a *Analyzer) Feed(rec capture.Record) {
	if a.res != nil {
		panic("analysis: Feed after Result")
	}
	s := a.shardFor(rec.Channel)
	a.snapFrames.Add(1)
	for {
		old := a.snapLast.Load()
		if int64(rec.Time) <= old || a.snapLast.CompareAndSwap(old, int64(rec.Time)) {
			break
		}
	}
	if !a.opts.Parallel {
		if !s.dec.feed(rec) {
			a.snapErrors.Add(1)
		}
		return
	}
	s.buf = append(s.buf, rec)
	if len(s.buf) >= feedBatchSize {
		s.in <- s.buf
		s.buf = make([]capture.Record, 0, feedBatchSize)
	}
}

// FeedAll consumes a slice of records via Feed.
func (a *Analyzer) FeedAll(recs []capture.Record) {
	for i := range recs {
		a.Feed(recs[i])
	}
}

// Run streams a radiotap pcap directly into the analyzer, record by
// record, without materializing the trace. It returns the number of
// records skipped because their radiotap header failed to decode
// (matching capture.ReadAll's tolerance). Run may be called for
// several streams before Result.
func (a *Analyzer) Run(rd io.Reader) (skipped int, err error) {
	pr, err := pcapio.NewReader(rd)
	if err != nil {
		return 0, err
	}
	if pr.LinkType() != pcapio.LinkTypeRadiotap {
		return 0, capture.ErrLinkType
	}
	for {
		p, err := pr.Next()
		if err == io.EOF {
			return skipped, nil
		}
		if err != nil {
			return skipped, err
		}
		r, err := capture.FromPcap(p)
		if err != nil {
			skipped++
			continue
		}
		a.Feed(r)
	}
}

// Result closes every open second, merges all channel shards in
// ascending channel order, and returns the analysis. Repeated calls
// return the same Result; Feed must not be called afterwards.
func (a *Analyzer) Result() *Result {
	if a.res != nil {
		return a.res
	}
	if a.opts.Parallel {
		for _, s := range a.shards {
			if len(s.buf) > 0 {
				s.in <- s.buf
				s.buf = nil
			}
			close(s.in)
		}
		for _, s := range a.shards {
			<-s.done
		}
	}

	channels := make([]phy.Channel, 0, len(a.shards))
	for ch := range a.shards {
		channels = append(channels, ch)
	}
	sort.Slice(channels, func(i, j int) bool { return channels[i] < channels[j] })

	res := newResult()
	for _, ch := range channels {
		s := a.shards[ch]
		s.dec.close()
		res.TotalFrames += s.dec.totalFrames
		res.ParseErrors += s.dec.parseErrors
		for _, m := range s.dec.metrics {
			m.Finalize(res)
		}
	}
	res.finish()
	a.res = res
	return res
}

// Analyze runs the full pipeline over a merged trace with every
// registered metric, sequentially. Records are processed per channel
// in time order (each channel's records are stably sorted by
// timestamp first, so unordered input is accepted).
func Analyze(recs []capture.Record) *Result {
	r, err := AnalyzeWith(Options{}, recs)
	if err != nil {
		panic(err) // unreachable: default options never fail
	}
	return r
}

// AnalyzeWith is Analyze with explicit Options.
func AnalyzeWith(opts Options, recs []capture.Record) (*Result, error) {
	a, err := New(opts)
	if err != nil {
		return nil, err
	}
	byCh := capture.SplitByChannel(recs)
	channels := make([]phy.Channel, 0, len(byCh))
	for ch := range byCh {
		channels = append(channels, ch)
	}
	sort.Slice(channels, func(i, j int) bool { return channels[i] < channels[j] })
	for _, ch := range channels {
		chRecs := byCh[ch]
		sort.SliceStable(chRecs, func(i, j int) bool { return chRecs[i].Time < chRecs[j].Time })
		a.FeedAll(chRecs)
	}
	return a.Result(), nil
}
