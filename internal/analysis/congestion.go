package analysis

import "fmt"

// Class is a congestion class (Sec 5.3).
type Class int

// The three congestion classes.
const (
	Uncongested Class = iota
	Moderate
	High
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Uncongested:
		return "uncongested"
	case Moderate:
		return "moderately congested"
	case High:
		return "highly congested"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classifier maps utilization percentages to congestion classes using
// the paper's thresholds: below Low is uncongested, above Knee is
// highly congested, between is moderate.
type Classifier struct {
	// Low is the uncongested/moderate boundary (paper: 30%).
	Low int
	// Knee is the moderate/high boundary — the utilization where
	// throughput and goodput peak before collapsing (paper: 84%).
	Knee int
}

// PaperClassifier returns the thresholds the paper derives for the
// IETF network: 30% and 84%.
func PaperClassifier() Classifier { return Classifier{Low: 30, Knee: 84} }

// Classify returns the congestion class for a utilization percentage.
func (c Classifier) Classify(utilization int) Class {
	switch {
	case utilization < c.Low:
		return Uncongested
	case utilization <= c.Knee:
		return Moderate
	default:
		return High
	}
}

// FindKnee locates the high-congestion threshold from an analysis
// result: the utilization in [lo, hi] at which mean throughput peaks
// (Sec 5.2 observes throughput rising to ~84% utilization and
// collapsing beyond it). To resist noise in thinly-populated bins,
// each candidate's throughput is the count-weighted mean over a ±3
// point window, and windows carrying fewer than minN seconds are
// ignored. If nothing qualifies it falls back to the paper's 84.
func (r *Result) FindKnee(lo, hi int, minN int64) int {
	best, bestV := -1, -1.0
	for u := lo; u <= hi; u++ {
		var sum float64
		var n int64
		for w := u - 3; w <= u+3; w++ {
			if w < 0 || w > 100 {
				continue
			}
			m, c := r.Throughput.Mean(w)
			sum += m * float64(c)
			n += c
		}
		if n < minN || n == 0 {
			continue
		}
		if v := sum / float64(n); v > bestV {
			best, bestV = u, v
		}
	}
	if best < 0 {
		return 84
	}
	return best
}

// DeriveClassifier builds a Classifier from the trace itself: Low
// fixed at the paper's 30% (the paper sets it from the observed lack
// of sub-30% data) and Knee from the throughput peak.
func (r *Result) DeriveClassifier() Classifier {
	return Classifier{Low: 30, Knee: r.FindKnee(30, 99, 3)}
}

// ClassShare returns the fraction of analyzed channel-seconds falling
// in each class under the classifier.
func (r *Result) ClassShare(c Classifier) map[Class]float64 {
	counts := map[Class]int64{}
	var total int64
	for u := 0; u <= 100; u++ {
		n := r.UtilHist.Count(u)
		counts[c.Classify(u)] += n
		total += n
	}
	out := make(map[Class]float64, 3)
	for cl, n := range counts {
		if total > 0 {
			out[cl] = float64(n) / float64(total)
		}
	}
	return out
}
