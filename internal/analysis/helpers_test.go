package analysis

import (
	"wlan80211/internal/capture"
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

var (
	apAddr  = dot11.AddrFromUint64(0x01)
	staAddr = dot11.AddrFromUint64(0x02)
	sta2    = dot11.AddrFromUint64(0x03)
)

// rec wraps a frame into a capture record.
func rec(t phy.Micros, f dot11.Frame, r phy.Rate) capture.Record {
	wire := f.AppendTo(nil)
	return capture.Record{
		Time: t, Rate: r, Channel: phy.Channel1,
		SignalDBm: -50, NoiseDBm: -95,
		OrigLen: f.WireLen(), Frame: wire,
	}
}

// dataAck builds a DATA(+ACK) exchange starting at t and returns the
// records plus the time just after the ACK.
func dataAck(t phy.Micros, ta dot11.Addr, size int, r phy.Rate, seq uint16, retry bool) ([]capture.Record, phy.Micros) {
	d := dot11.NewData(apAddr, ta, apAddr, seq, make([]byte, size))
	d.FC.ToDS = true
	d.FC.Retry = retry
	recs := []capture.Record{rec(t, d, r)}
	end := t + phy.Airtime(d.WireLen(), r)
	ack := dot11.NewACK(ta)
	recs = append(recs, rec(end+phy.SIFS, ack, phy.Rate1Mbps))
	return recs, end + phy.SIFS + phy.Airtime(14, phy.Rate1Mbps)
}

func beaconRec(t phy.Micros) capture.Record {
	b := dot11.NewBeacon(apAddr, "net", 1, uint64(t), 1)
	return rec(t, b, phy.Rate1Mbps)
}
