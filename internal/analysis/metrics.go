package analysis

import (
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
	"wlan80211/internal/stats"
)

// The built-in stages, one per paper figure group, registered in
// figure order. Each is an independent accumulator over the shared
// decoder's events; disabling one simply leaves its Result fields
// zero-valued.
func init() {
	Register("util", "per-second CBT, utilization series and histogram (Figures 5a-c)",
		func() Metric { return &utilMetric{} })
	Register("throughput", "throughput and goodput vs utilization (Figure 6)",
		func() Metric { return &throughputMetric{} })
	Register("rtscts", "RTS and CTS frames per second vs utilization (Figure 7)",
		func() Metric { return &rtsctsMetric{} })
	Register("rates", "per-rate busy time and bytes vs utilization (Figures 8-9)",
		func() Metric { return &ratesMetric{} })
	Register("categories", "transmissions per 16 size x rate category (Figures 10-13)",
		func() Metric { return &categoriesMetric{} })
	Register("firstack", "first-attempt acknowledgments per rate (Figure 14)",
		func() Metric { return &firstAckMetric{} })
	Register("delay", "acceptance delay per category (Figure 15)",
		func() Metric { return &delayMetric{} })
	Register("aps", "per-AP traffic attribution and user counts (Figure 4)",
		func() Metric { return &apsMetric{} })
	Register("unrecorded", "unrecorded-frame estimators from DCF atomicity (Sec 4.4)",
		func() Metric { return &unrecordedMetric{} })
}

// utilMetric builds the gap-free per-second SecondStat series and the
// utilization histogram (Figures 5a/5b/5c).
type utilMetric struct {
	haveCh   bool
	cur      SecondStat
	tputBits int64
	gputBits int64
	series   []SecondStat
	hist     *stats.Histogram
}

func (m *utilMetric) OnFrame(ev *FrameEvent) {
	if !m.haveCh {
		m.haveCh = true
		m.cur.Channel = ev.Rec.Channel
	}
	m.cur.CBT += ev.CBT
	switch ev.Kind {
	case KindInvalid:
		return
	case KindData:
		m.cur.Data++
	case KindACK:
		m.cur.ACK++
	case KindRTS:
		m.cur.RTS++
	case KindCTS:
		m.cur.CTS++
	case KindBeacon:
		m.cur.Beacon++
	}
	m.tputBits += int64(ev.Rec.OrigLen) * 8
	m.gputBits += ev.GoodputBits
}

func (m *utilMetric) OnSecond(sec int64) {
	s := m.cur
	s.Second = sec
	s.Utilization = UtilizationPercent(s.CBT)
	s.ThroughputMbps = float64(m.tputBits) / 1e6
	s.GoodputMbps = float64(m.gputBits) / 1e6
	m.series = append(m.series, s)
	if m.hist == nil {
		m.hist = stats.NewHistogram(101)
	}
	m.hist.Add(s.Utilization)
	ch := m.cur.Channel
	m.cur = SecondStat{Channel: ch}
	m.tputBits, m.gputBits = 0, 0
}

func (m *utilMetric) Finalize(r *Result) {
	if len(m.series) > 0 {
		r.PerChannel[m.series[0].Channel] = m.series
	}
	if m.hist != nil {
		r.UtilHist.Merge(m.hist)
	}
}

// throughputMetric aggregates per-second throughput and goodput by
// utilization (Figure 6).
type throughputMetric struct {
	secondUtil
	tputBits int64
	gputBits int64
	tput     stats.ByUtilization
	gput     stats.ByUtilization
}

func (m *throughputMetric) OnFrame(ev *FrameEvent) {
	m.observe(ev)
	if ev.Kind == KindInvalid {
		return
	}
	m.tputBits += int64(ev.Rec.OrigLen) * 8
	m.gputBits += ev.GoodputBits
}

func (m *throughputMetric) OnSecond(sec int64) {
	u := m.flush()
	m.tput.Add(u, float64(m.tputBits)/1e6)
	m.gput.Add(u, float64(m.gputBits)/1e6)
	m.tputBits, m.gputBits = 0, 0
}

func (m *throughputMetric) Finalize(r *Result) {
	r.Throughput.Merge(&m.tput)
	r.Goodput.Merge(&m.gput)
}

// rtsctsMetric counts RTS and CTS frames per second by utilization
// (Figure 7).
type rtsctsMetric struct {
	secondUtil
	rts, cts     int
	rtsBy, ctsBy stats.ByUtilization
}

func (m *rtsctsMetric) OnFrame(ev *FrameEvent) {
	m.observe(ev)
	switch ev.Kind {
	case KindRTS:
		m.rts++
	case KindCTS:
		m.cts++
	}
}

func (m *rtsctsMetric) OnSecond(sec int64) {
	u := m.flush()
	m.rtsBy.Add(u, float64(m.rts))
	m.ctsBy.Add(u, float64(m.cts))
	m.rts, m.cts = 0, 0
}

func (m *rtsctsMetric) Finalize(r *Result) {
	r.RTSPerSec.Merge(&m.rtsBy)
	r.CTSPerSec.Merge(&m.ctsBy)
}

// ratesMetric attributes busy time and bytes to each transmission rate
// (Figures 8 and 9).
type ratesMetric struct {
	secondUtil
	cbtPerRate   [4]int64
	bytesPerRate [4]int64
	cbtBy        [4]stats.ByUtilization
	bytesBy      [4]stats.ByUtilization
}

func (m *ratesMetric) OnFrame(ev *FrameEvent) {
	m.observe(ev)
	if ev.Kind == KindInvalid {
		return
	}
	m.cbtPerRate[ev.RateIdx] += int64(ev.CBT)
	m.bytesPerRate[ev.RateIdx] += int64(ev.Rec.OrigLen)
}

func (m *ratesMetric) OnSecond(sec int64) {
	u := m.flush()
	for i := 0; i < 4; i++ {
		m.cbtBy[i].Add(u, float64(m.cbtPerRate[i])/1e6)
		m.bytesBy[i].Add(u, float64(m.bytesPerRate[i]))
		m.cbtPerRate[i], m.bytesPerRate[i] = 0, 0
	}
}

func (m *ratesMetric) Finalize(r *Result) {
	for i := 0; i < 4; i++ {
		r.BusyTimePerRate[i].Merge(&m.cbtBy[i])
		r.BytesPerRate[i].Merge(&m.bytesBy[i])
	}
}

// categoriesMetric counts data transmissions per size x rate category
// (Figures 10-13).
type categoriesMetric struct {
	secondUtil
	tx   [16]int
	txBy [16]stats.ByUtilization
}

func (m *categoriesMetric) OnFrame(ev *FrameEvent) {
	m.observe(ev)
	if ev.Kind == KindData && ev.CatOK {
		m.tx[ev.CatIndex]++
	}
}

func (m *categoriesMetric) OnSecond(sec int64) {
	u := m.flush()
	for i := 0; i < 16; i++ {
		m.txBy[i].Add(u, float64(m.tx[i]))
		m.tx[i] = 0
	}
}

func (m *categoriesMetric) Finalize(r *Result) {
	for i := 0; i < 16; i++ {
		r.TxPerCategory[i].Merge(&m.txBy[i])
	}
}

// firstAckMetric counts data frames acknowledged at the first attempt,
// per rate (Figure 14).
type firstAckMetric struct {
	secondUtil
	acked [4]int
	by    [4]stats.ByUtilization
}

func (m *firstAckMetric) OnFrame(ev *FrameEvent) {
	m.observe(ev)
	if ev.Acked && !ev.AckedRetry {
		m.acked[ev.AckedRateIdx]++
	}
}

func (m *firstAckMetric) OnSecond(sec int64) {
	u := m.flush()
	for i := 0; i < 4; i++ {
		m.by[i].Add(u, float64(m.acked[i]))
		m.acked[i] = 0
	}
}

func (m *firstAckMetric) Finalize(r *Result) {
	for i := 0; i < 4; i++ {
		r.FirstAckPerRate[i].Merge(&m.by[i])
	}
}

// delaySample is one measured acceptance delay awaiting its second's
// utilization.
type delaySample struct {
	cat   int
	delay float64 // seconds
}

// delayMetric measures MSDU acceptance delay per category (Figure 15).
type delayMetric struct {
	secondUtil
	pending []delaySample
	by      [16]stats.ByUtilization
}

func (m *delayMetric) OnFrame(ev *FrameEvent) {
	m.observe(ev)
	if ev.AckedDelayOK {
		m.pending = append(m.pending, delaySample{cat: ev.AckedCat, delay: ev.AckedDelay})
	}
}

func (m *delayMetric) OnSecond(sec int64) {
	u := m.flush()
	for _, d := range m.pending {
		m.by[d.cat].Add(u, d.delay)
	}
	m.pending = m.pending[:0]
}

func (m *delayMetric) Finalize(r *Result) {
	for i := 0; i < 16; i++ {
		r.AcceptDelay[i].Merge(&m.by[i])
	}
}

// apsMetric discovers APs, attributes traffic and unrecorded frames to
// them, and collects the per-window client addresses behind the user
// count (Figure 4). Discovery and counting happen in the same pass:
// frames are counted for every address and the report filters to the
// final AP set, which is only complete once all shards merge.
type apsMetric struct {
	known   map[dot11.Addr]bool
	frames  map[dot11.Addr]int64
	unrec   map[dot11.Addr]int64
	windows map[int64]map[dot11.Addr]bool
}

func (m *apsMetric) OnFrame(ev *FrameEvent) {
	if ev.Kind == KindInvalid {
		return
	}
	if m.known == nil {
		m.known = make(map[dot11.Addr]bool)
		m.frames = make(map[dot11.Addr]int64)
		m.unrec = make(map[dot11.Addr]int64)
		m.windows = make(map[int64]map[dot11.Addr]bool)
	}
	// AP discovery: beacon transmitters and FromDS BSSIDs.
	switch f := ev.Parsed.Frame.(type) {
	case *dot11.Beacon:
		m.known[f.SA] = true
	case *dot11.Data:
		if f.FC.FromDS && !f.FC.ToDS {
			m.known[f.Addr2] = true
		}
	}
	// Traffic attribution (transmitter plus unicast receiver).
	if ta, ok := dot11.TransmitterOf(ev.Parsed.Frame); ok {
		m.frames[ta]++
	}
	if ra := dot11.ReceiverOf(ev.Parsed.Frame); !ra.IsGroup() {
		m.frames[ra]++
	}
	// Unrecorded-frame attribution (Sec 4.4).
	if ev.Missing != MissingNone {
		m.unrec[ev.MissingAddr]++
	}
	// User counting: client addresses of data exchanges per 30 s
	// window (AP addresses are filtered out at finish time, once the
	// AP set is complete).
	if d, ok := ev.Parsed.Frame.(*dot11.Data); ok {
		w := int64(ev.Rec.Time / phy.MicrosPerSecond / UserWindowSeconds)
		m.addUser(w, d.Addr2)
		m.addUser(w, d.Addr1)
	}
}

func (m *apsMetric) addUser(w int64, a dot11.Addr) {
	if a.IsGroup() {
		return
	}
	set, ok := m.windows[w]
	if !ok {
		set = make(map[dot11.Addr]bool)
		m.windows[w] = set
	}
	set[a] = true
}

func (m *apsMetric) OnSecond(sec int64) {}

func (m *apsMetric) Finalize(r *Result) {
	if m.known == nil {
		return
	}
	r.APs.merge(m.known, m.frames, m.unrec)
	r.mergeUserWindows(m.windows)
}

// unrecordedMetric totals the atomicity-based unrecorded-frame
// estimators (Sec 4.4, Equation 1).
type unrecordedMetric struct {
	u UnrecordedStats
}

func (m *unrecordedMetric) OnFrame(ev *FrameEvent) {
	m.u.Captured++
	switch ev.Missing {
	case MissingData:
		m.u.MissingData++
	case MissingRTS:
		m.u.MissingRTS++
	case MissingCTS:
		m.u.MissingCTS++
	}
}

func (m *unrecordedMetric) OnSecond(sec int64) {}

func (m *unrecordedMetric) Finalize(r *Result) {
	r.Unrecorded.MissingData += m.u.MissingData
	r.Unrecorded.MissingRTS += m.u.MissingRTS
	r.Unrecorded.MissingCTS += m.u.MissingCTS
	r.Unrecorded.Captured += m.u.Captured
}
