package analysis

import (
	"wlan80211/internal/capture"
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

// Kind classifies a decoded frame for metric stages, so stages can
// dispatch without repeating the type switch on the parsed frame.
type Kind uint8

// Frame kinds. KindInvalid marks a record whose MAC frame failed to
// parse; such events carry no Parsed frame and no CBT.
const (
	KindInvalid Kind = iota
	KindData
	KindACK
	KindRTS
	KindCTS
	KindBeacon
	KindMgmt
)

// MissingKind labels an unrecorded-frame inference (Sec 4.4) attached
// to the event that triggered it.
type MissingKind uint8

// The three DCF-atomicity estimators.
const (
	MissingNone MissingKind = iota
	// MissingData: an ACK arrived with no matching captured DATA.
	MissingData
	// MissingRTS: a CTS arrived with no matching captured RTS.
	MissingRTS
	// MissingCTS: a DATA completed an RTS exchange whose CTS was
	// never captured.
	MissingCTS
)

// FrameEvent is one captured record, decoded and annotated by the
// shared single-pass decoder, as delivered to every metric stage.
// The same event value is reused between frames; stages must not
// retain the pointer past OnFrame.
type FrameEvent struct {
	// Rec is the raw capture record.
	Rec capture.Record
	// Parsed is the decoded MAC frame (zero when Kind is KindInvalid).
	Parsed dot11.Parsed
	// Kind classifies the frame.
	Kind Kind
	// Second is the one-second interval the frame was charged to.
	Second int64
	// CBT is the channel busy-time charge of this frame (Table 2).
	CBT phy.Micros
	// RateIdx is the frame's rate bucket 0..3 (1/2/5.5/11 Mbps),
	// defaulting to 0 for invalid rate metadata.
	RateIdx int
	// GoodputBits is the goodput contribution of this event: the
	// frame's own bits for control/management/broadcast frames, plus
	// the acknowledged data frame's bits on a matched ACK.
	GoodputBits int64

	// CatIndex/CatOK give the 16-category index of a data frame.
	CatIndex int
	CatOK    bool

	// Acked marks an ACK that completed a captured DATA–ACK exchange.
	Acked bool
	// AckedRateIdx is the rate bucket of the acknowledged data frame.
	AckedRateIdx int
	// AckedRetry reports whether the acknowledged frame was a retry.
	AckedRetry bool
	// AckedDelay is the acceptance delay in seconds from the MSDU's
	// first attempt to this ACK (valid when AckedDelayOK).
	AckedDelay   float64
	AckedDelayOK bool
	// AckedCat is the acknowledged frame's category index.
	AckedCat int

	// Missing labels an inferred unrecorded frame; MissingAddr is the
	// address the estimate is attributed to.
	Missing     MissingKind
	MissingAddr dot11.Addr
}

// pendingData tracks the most recent unicast data frame awaiting its
// ACK in the trace.
type pendingData struct {
	valid   bool
	ta      dot11.Addr
	end     phy.Micros // transmission end time
	rate    phy.Rate
	wireLen int
	retry   bool
	seqKey  uint64 // addrSeqKey(ta, seq) of the MSDU
}

// pendingRTS tracks the most recent RTS awaiting CTS/DATA.
type pendingRTS struct {
	valid  bool
	ta, ra dot11.Addr
	end    phy.Micros
	sawCTS bool
}

// decoder is the per-channel single-pass front end: it advances the
// one-second clock, parses each record once, tracks DCF exchange state
// (DATA–ACK, RTS–CTS–DATA), and emits one annotated FrameEvent per
// record to every metric stage.
type decoder struct {
	metrics []Metric

	started bool
	second  int64

	pend      pendingData
	prts      pendingRTS
	firstSeen map[uint64]phy.Micros // (ta,seq) → first attempt time

	totalFrames int64
	parseErrors int64

	ev FrameEvent // reused between records
}

func newDecoder(metrics []Metric) *decoder {
	return &decoder{metrics: metrics, firstSeen: make(map[uint64]phy.Micros)}
}

// feed processes one record and reports whether its MAC frame parsed
// (false counts toward ParseErrors). Records must arrive in
// non-decreasing time order per channel; a record older than the open
// second is folded into the open second rather than reopening a
// closed one.
func (d *decoder) feed(rec capture.Record) bool {
	sec := rec.Second()
	if !d.started {
		d.started = true
		d.second = sec
	}
	// Close any completed seconds (emitting empty seconds too, so the
	// Figure 5 time series is gap-free).
	for d.second < sec {
		for _, m := range d.metrics {
			m.OnSecond(d.second)
		}
		d.second++
	}

	d.totalFrames++
	ev := &d.ev
	*ev = FrameEvent{Rec: rec, Second: d.second, RateIdx: rateIdx(rec.Rate)}

	p, err := dot11.Parse(rec.Frame)
	if err != nil {
		d.parseErrors++
		d.dispatch(ev) // stages still see the record (capture counts)
		return false
	}
	ev.Parsed = p

	switch f := p.Frame.(type) {
	case *dot11.Data:
		ev.Kind = KindData
		ev.CBT = CBTData(rec.OrigLen, rec.Rate)
		if ci, ok := CategoryOf(rec.OrigLen, rec.Rate).Index(); ok {
			ev.CatIndex, ev.CatOK = ci, true
		}
		// RTS–CTS–DATA atomicity: a DATA completing an RTS exchange
		// whose CTS was never captured implies an unrecorded CTS.
		if d.prts.valid && d.prts.ta == f.Addr2 {
			if !d.prts.sawCTS {
				ev.Missing = MissingCTS
				ev.MissingAddr = d.prts.ra
			}
			d.prts.valid = false
		}
		if !f.Addr1.IsGroup() {
			end := rec.Time + phy.Airtime(rec.OrigLen, rec.Rate)
			key := addrSeqKey(f.Addr2, f.Seq.Num)
			first, ok := d.firstSeen[key]
			if !ok || rec.Time-first > 2*phy.MicrosPerSecond {
				first = rec.Time
				d.firstSeen[key] = first
			}
			d.pend = pendingData{
				valid:   true,
				ta:      f.Addr2,
				end:     end,
				rate:    rec.Rate,
				wireLen: rec.OrigLen,
				retry:   f.FC.Retry,
				seqKey:  key,
			}
		} else {
			// Group-addressed data needs no ACK and counts as goodput.
			ev.GoodputBits = int64(rec.OrigLen) * 8
			d.pend.valid = false
		}

	case *dot11.ACK:
		ev.Kind = KindACK
		ev.CBT = CBTACK()
		ev.GoodputBits = int64(rec.OrigLen) * 8
		// DATA–ACK atomicity (Sec 4.4): an ACK must follow its DATA;
		// the ACK's receiver is the DATA's transmitter.
		if d.pend.valid && d.pend.ta == f.RA && rec.Time-d.pend.end <= AckMatchWindow {
			ev.Acked = true
			ev.GoodputBits += int64(d.pend.wireLen) * 8
			ev.AckedRateIdx = rateIdx(d.pend.rate)
			ev.AckedRetry = d.pend.retry
			// Acceptance delay: first attempt → this ACK.
			if first, ok := d.firstSeen[d.pend.seqKey]; ok {
				delay := float64(rec.Time-first) / 1e6
				if ci, okc := CategoryOf(d.pend.wireLen, d.pend.rate).Index(); okc && delay >= 0 {
					ev.AckedCat, ev.AckedDelay, ev.AckedDelayOK = ci, delay, true
				}
				delete(d.firstSeen, d.pend.seqKey)
			}
		} else {
			ev.Missing = MissingData
			ev.MissingAddr = f.RA
		}
		d.pend.valid = false
		d.prts.valid = false

	case *dot11.RTS:
		ev.Kind = KindRTS
		ev.CBT = CBTRTS()
		ev.GoodputBits = int64(rec.OrigLen) * 8
		d.prts = pendingRTS{valid: true, ta: f.TA, ra: f.RA, end: rec.Time + phy.Airtime(rec.OrigLen, rec.Rate)}
		d.pend.valid = false

	case *dot11.CTS:
		ev.Kind = KindCTS
		ev.CBT = CBTCTS()
		ev.GoodputBits = int64(rec.OrigLen) * 8
		// RTS–CTS atomicity: a CTS must follow a captured RTS whose
		// transmitter it addresses.
		if d.prts.valid && d.prts.ta == f.RA && rec.Time-d.prts.end <= AckMatchWindow {
			d.prts.sawCTS = true
		} else {
			ev.Missing = MissingRTS
			ev.MissingAddr = f.RA
			// Synthesize the pending RTS so a following DATA is not
			// also charged a missing CTS.
			d.prts = pendingRTS{valid: true, ta: f.RA, end: rec.Time + phy.Airtime(rec.OrigLen, rec.Rate), sawCTS: true}
		}
		d.pend.valid = false

	case *dot11.Beacon:
		ev.Kind = KindBeacon
		ev.CBT = CBTBeacon()
		ev.GoodputBits = int64(rec.OrigLen) * 8
		d.pend.valid = false
		d.prts.valid = false

	case *dot11.Management:
		// Other management frames are charged like data frames.
		ev.Kind = KindMgmt
		ev.CBT = CBTData(rec.OrigLen, rec.Rate)
		ev.GoodputBits = int64(rec.OrigLen) * 8
		d.pend.valid = false
		d.prts.valid = false
	}

	d.dispatch(ev)
	return true
}

func (d *decoder) dispatch(ev *FrameEvent) {
	for _, m := range d.metrics {
		m.OnFrame(ev)
	}
}

// close flushes the final (partial) second.
func (d *decoder) close() {
	if !d.started {
		return
	}
	for _, m := range d.metrics {
		m.OnSecond(d.second)
	}
}

// rateIdx maps a rate to 0..3, defaulting to 0 (1 Mbps) for invalid
// metadata.
func rateIdx(r phy.Rate) int {
	if i, ok := r.Index(); ok {
		return i
	}
	return 0
}

// addrSeqKey packs a transmitter address and sequence number.
func addrSeqKey(a dot11.Addr, seq uint16) uint64 {
	var v uint64
	for _, b := range a {
		v = v<<8 | uint64(b)
	}
	return v<<12 | uint64(seq&0xfff)
}
