package analysis

import (
	"testing"

	"wlan80211/internal/capture"
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

// beaconTrace builds a trace with beacons from one AP at the standard
// interval, dropping the indices in missing.
func beaconTrace(windows int, missing map[int]bool) []capture.Record {
	interval := phy.Micros(dot11.BeaconIntervalTU) * 1024
	var recs []capture.Record
	i := 0
	for t := phy.Micros(0); t < phy.Micros(windows)*10*phy.MicrosPerSecond; t += interval {
		if !missing[i] {
			b := dot11.NewBeacon(apAddr, "s", 1, uint64(t), uint16(i))
			recs = append(recs, rec(t, b, phy.Rate1Mbps))
		}
		i++
	}
	return recs
}

func TestBeaconReliabilityPerfect(t *testing.T) {
	recs := beaconTrace(3, nil)
	r := MeasureBeaconReliability(recs, 10)
	series := r.Series[apAddr]
	if len(series) == 0 {
		t.Fatal("no series")
	}
	if got := r.MeanRatio(); got < 0.95 {
		t.Errorf("perfect beacons: MeanRatio = %v", got)
	}
	for _, p := range series {
		if p.Expected < 90 {
			t.Errorf("expected beacons per 10 s window = %d, want ≈97", p.Expected)
		}
		if p.Ratio() > 1 {
			t.Errorf("ratio must clamp at 1: %v", p.Ratio())
		}
	}
}

func TestBeaconReliabilityWithLoss(t *testing.T) {
	// Drop every other beacon: ratio ≈ 0.5.
	missing := map[int]bool{}
	for i := 0; i < 400; i += 2 {
		missing[i] = true
	}
	r := MeasureBeaconReliability(beaconTrace(3, missing), 10)
	got := r.MeanRatio()
	if got < 0.4 || got > 0.6 {
		t.Errorf("half loss: MeanRatio = %v, want ≈0.5", got)
	}
}

func TestBeaconReliabilityDefaults(t *testing.T) {
	r := MeasureBeaconReliability(nil, 0)
	if r.WindowSeconds != UserWindowSeconds {
		t.Errorf("default window = %d", r.WindowSeconds)
	}
	if r.MeanRatio() != 0 {
		t.Error("empty trace must have 0 mean ratio")
	}
	if len(r.APs()) != 0 {
		t.Error("empty trace must have no APs")
	}
}

func TestBeaconReliabilityAPsSorted(t *testing.T) {
	recs := beaconTrace(1, nil)
	b2 := dot11.NewBeacon(sta2, "s", 1, 0, 0)
	recs = append(recs, rec(5000, b2, phy.Rate1Mbps))
	r := MeasureBeaconReliability(recs, 10)
	aps := r.APs()
	if len(aps) != 2 {
		t.Fatalf("APs = %d", len(aps))
	}
	if aps[0].String() > aps[1].String() {
		t.Error("APs must be sorted")
	}
}

func TestReliabilityGapWindows(t *testing.T) {
	// Beacons only in windows 0 and 2: window 1 must appear with 0
	// received (the dip is the signal).
	missing := map[int]bool{}
	for i := 96; i <= 196; i++ { // second window's beacons
		missing[i] = true
	}
	r := MeasureBeaconReliability(beaconTrace(3, missing), 10)
	series := r.Series[apAddr]
	var sawDip bool
	for _, p := range series {
		if p.Received <= 1 {
			sawDip = true
		}
	}
	if !sawDip {
		t.Error("gap window not represented")
	}
}

func TestPearson(t *testing.T) {
	if got := pearson([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8}); got < 0.999 {
		t.Errorf("perfect positive correlation = %v", got)
	}
	if got := pearson([]float64{1, 2, 3, 4}, []float64{8, 6, 4, 2}); got > -0.999 {
		t.Errorf("perfect negative correlation = %v", got)
	}
	if pearson([]float64{1, 2}, []float64{1, 2}) != 0 {
		t.Error("n<3 must be 0")
	}
	if pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("zero variance must be 0")
	}
}

func TestCorrelateWithUtilization(t *testing.T) {
	// Build a result whose utilization rises over three windows and a
	// reliability series that falls: correlation must be negative.
	res := &Result{PerChannel: map[phy.Channel][]SecondStat{}}
	var secs []SecondStat
	for s := int64(0); s < 30; s++ {
		secs = append(secs, SecondStat{Second: s, Utilization: int(s * 3)})
	}
	res.PerChannel[phy.Channel1] = secs
	r := &BeaconReliability{
		WindowSeconds: 10,
		Series: map[dot11.Addr][]ReliabilityPoint{
			apAddr: {
				{WindowStart: 0, Received: 95, Expected: 97},
				{WindowStart: 10, Received: 60, Expected: 97},
				{WindowStart: 20, Received: 20, Expected: 97},
			},
		},
	}
	if got := r.CorrelateWithUtilization(res); got >= 0 {
		t.Errorf("correlation = %v, want negative", got)
	}
}
