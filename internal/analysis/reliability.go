package analysis

import (
	"math"
	"sort"

	"wlan80211/internal/capture"
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

// This file implements the beacon-reception reliability metric of the
// authors' companion paper (Jardosh et al., "Understanding Link-Layer
// Behavior in Highly Congested IEEE 802.11b Wireless Networks",
// E-WIND 2005 — reference [10], discussed in Sec 2): access points
// beacon at a fixed interval, so the fraction of expected beacons a
// listener actually receives is a passive probe of link reliability,
// and its dips correlate with congestion. The present paper supersedes
// it with channel utilization; both are provided so the two congestion
// estimates can be compared (see the reliability ablation bench).

// BeaconReliability is the per-AP beacon reception ratio over fixed
// windows.
type BeaconReliability struct {
	// WindowSeconds is the averaging window.
	WindowSeconds int
	// Series maps each AP to its per-window reliability samples,
	// ordered by window.
	Series map[dot11.Addr][]ReliabilityPoint
}

// ReliabilityPoint is one window of one AP's beacon reliability.
type ReliabilityPoint struct {
	// WindowStart is the first second of the window.
	WindowStart int64
	// Received is the number of beacons captured in the window.
	Received int
	// Expected is the number implied by the AP's beacon interval.
	Expected int
}

// Ratio returns received/expected clamped to [0, 1]; a window can
// over-count slightly when beacon timing drifts across its edge.
func (p ReliabilityPoint) Ratio() float64 {
	if p.Expected <= 0 {
		return 0
	}
	r := float64(p.Received) / float64(p.Expected)
	if r > 1 {
		r = 1
	}
	return r
}

// MeasureBeaconReliability scans a trace for beacons and computes the
// per-AP reception ratio over windows of the given length. The beacon
// interval is read from the beacons themselves (Sec 5.1 assumes the
// standard ~100 ms interval; APs advertise theirs in time units).
func MeasureBeaconReliability(recs []capture.Record, windowSeconds int) *BeaconReliability {
	if windowSeconds <= 0 {
		windowSeconds = UserWindowSeconds
	}
	type apState struct {
		counts   map[int64]int
		interval phy.Micros // advertised beacon interval
		first    int64      // first window seen
		last     int64      // last window seen
		seen     bool
	}
	aps := make(map[dot11.Addr]*apState)
	for i := range recs {
		p, err := dot11.Parse(recs[i].Frame)
		if err != nil {
			continue
		}
		b, ok := p.Frame.(*dot11.Beacon)
		if !ok {
			continue
		}
		st := aps[b.SA]
		if st == nil {
			st = &apState{counts: make(map[int64]int)}
			aps[b.SA] = st
		}
		w := int64(recs[i].Time / phy.MicrosPerSecond / phy.Micros(windowSeconds))
		st.counts[w]++
		iv := phy.Micros(b.BeaconInterval) * 1024
		if iv > 0 {
			st.interval = iv
		}
		if !st.seen || w < st.first {
			st.first = w
		}
		if !st.seen || w > st.last {
			st.last = w
		}
		st.seen = true
	}

	out := &BeaconReliability{
		WindowSeconds: windowSeconds,
		Series:        make(map[dot11.Addr][]ReliabilityPoint, len(aps)),
	}
	for addr, st := range aps {
		if !st.seen {
			continue
		}
		interval := st.interval
		if interval <= 0 {
			interval = phy.Micros(dot11.BeaconIntervalTU) * 1024
		}
		expected := int(phy.Micros(windowSeconds) * phy.MicrosPerSecond / interval)
		if expected < 1 {
			expected = 1
		}
		var series []ReliabilityPoint
		for w := st.first; w <= st.last; w++ {
			series = append(series, ReliabilityPoint{
				WindowStart: w * int64(windowSeconds),
				Received:    st.counts[w],
				Expected:    expected,
			})
		}
		out.Series[addr] = series
	}
	return out
}

// MeanRatio returns the mean reliability over every AP and window.
func (r *BeaconReliability) MeanRatio() float64 {
	var sum float64
	var n int
	for _, series := range r.Series {
		for _, p := range series {
			sum += p.Ratio()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// APs returns the AP addresses with reliability series, sorted for
// deterministic iteration.
func (r *BeaconReliability) APs() []dot11.Addr {
	out := make([]dot11.Addr, 0, len(r.Series))
	for a := range r.Series {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// CorrelateWithUtilization pairs each reliability window with the mean
// utilization of the same window (over all channels in the result) and
// returns the Pearson correlation coefficient. The E-WIND paper's
// thesis predicts a negative correlation: reliability falls as the
// channel saturates. Returns 0 if there are fewer than 3 windows or no
// variance.
func (r *BeaconReliability) CorrelateWithUtilization(res *Result) float64 {
	// Mean utilization per window across channels.
	utilByWindow := make(map[int64][]float64)
	for _, secs := range res.PerChannel {
		for _, s := range secs {
			w := s.Second / int64(r.WindowSeconds)
			utilByWindow[w] = append(utilByWindow[w], float64(s.Utilization))
		}
	}
	var xs, ys []float64
	for _, series := range r.Series {
		for _, p := range series {
			w := p.WindowStart / int64(r.WindowSeconds)
			us, ok := utilByWindow[w]
			if !ok {
				continue
			}
			sum := 0.0
			for _, u := range us {
				sum += u
			}
			xs = append(xs, sum/float64(len(us)))
			ys = append(ys, p.Ratio())
		}
	}
	return pearson(xs, ys)
}

// pearson computes the correlation coefficient of two equal-length
// samples (0 when undefined).
func pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n < 3 || n != len(ys) {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
