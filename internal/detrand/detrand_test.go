package detrand

import (
	"math/rand"
	"testing"
)

// TestStreamMatchesPlainSource: wrapping must not perturb the value
// stream — rand.New over a counted source yields exactly the values
// it yields over a bare rand.NewSource. (The golden traces depend on
// this; it is why Uint64 forwards to the underlying Source64.)
func TestStreamMatchesPlainSource(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(New(42))
	for i := 0; i < 10_000; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d: %v != %v", i, av, bv)
		}
		if av, bv := a.Intn(1000), b.Intn(1000); av != bv {
			t.Fatalf("draw %d: Intn %d != %d", i, av, bv)
		}
		if av, bv := a.NormFloat64(), b.NormFloat64(); av != bv {
			t.Fatalf("draw %d: NormFloat64 %v != %v", i, av, bv)
		}
	}
}

// TestFastForwardReproducesPosition: a fresh source fast-forwarded by
// a running source's draw count continues with identical values — the
// replay property snapshots rely on.
func TestFastForwardReproducesPosition(t *testing.T) {
	src := New(7)
	r := rand.New(src)
	for i := 0; i < 1234; i++ {
		r.Float64()
		if i%3 == 0 {
			r.Intn(17)
		}
	}
	n := src.Draws()
	if n == 0 {
		t.Fatal("no draws counted")
	}

	src2 := New(7)
	src2.FastForward(n)
	if src2.Draws() != n {
		t.Fatalf("Draws after FastForward = %d, want %d", src2.Draws(), n)
	}
	r2 := rand.New(src2)
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), r2.Uint64(); a != b {
			t.Fatalf("post-fast-forward draw %d: %d != %d", i, a, b)
		}
	}
	if src.Draws() != src2.Draws() {
		t.Fatalf("draw counts diverged: %d vs %d", src.Draws(), src2.Draws())
	}
}

func TestSeedResetsCount(t *testing.T) {
	src := New(1)
	rand.New(src).Float64()
	if src.Draws() == 0 {
		t.Fatal("no draws counted")
	}
	src.Seed(9)
	if src.Draws() != 0 {
		t.Fatalf("Draws after Seed = %d, want 0", src.Draws())
	}
	if src.Seed0() != 9 {
		t.Fatalf("Seed0 = %d, want 9", src.Seed0())
	}
}
