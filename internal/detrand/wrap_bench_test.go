package detrand

import (
	"math/rand"
	"testing"
)

// The counted source adds one interface hop and a counter increment
// per draw. These two benches bound that cost (~1-2 ns/draw); at the
// simulator's ~70k draws per day-session run it is ~0.1 ms, noise
// against the ~8 ms run.

func BenchmarkPlainSource(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Float64()
	}
	_ = s
}

func BenchmarkCountedSource(b *testing.B) {
	r := rand.New(New(1))
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Float64()
	}
	_ = s
}
