// Package detrand wraps math/rand sources with a draw counter so a
// deterministic simulation can serialize the position of its RNG
// streams. The wrapper forwards both Int63 and Uint64 to the
// underlying source, so the value sequence every consumer sees is
// bit-identical to using the bare source — counting changes nothing
// but the ability to say "this stream has advanced N steps".
//
// The counter is the stream's whole state: Go's built-in source
// advances exactly one internal step per Int63 or Uint64 call, so a
// stream at draw N is reconstructed by seeding a fresh source and
// discarding N draws (FastForward). Snapshots therefore store just
// (seed, draws) per stream.
package detrand

import "math/rand"

// Source is a counting rand.Source64. Create with New; pass to
// rand.New.
type Source struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// New returns a counting source seeded like rand.NewSource(seed).
func New(seed int64) *Source {
	return &Source{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (s *Source) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed = seed
	s.draws = 0
}

// Seed0 returns the seed the source was created (or last re-seeded)
// with.
func (s *Source) Seed0() int64 { return s.seed }

// Draws returns how many steps the stream has advanced.
func (s *Source) Draws() uint64 { return s.draws }

// FastForward advances the source by n draws, discarding the values.
// A fresh New(seed) fast-forwarded by Draws() is state-identical to
// the original stream.
func (s *Source) FastForward(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.draws += n
}
