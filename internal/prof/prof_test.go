package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesBothProfiles runs a short profiled section and checks
// both files exist and are non-empty after stop.
func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and allocate so the profiles have samples to
	// record (emptiness of the *files* is what we assert, not samples).
	sink := 0
	for i := 0; i < 1e6; i++ {
		sink += i % 7
	}
	_ = sink
	buf := make([][]byte, 64)
	for i := range buf {
		buf[i] = make([]byte, 1024)
	}
	_ = buf
	stop()
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not created: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestStopIdempotent mirrors the CLI usage — stop deferred AND called
// explicitly before an exit site — and checks the double flush neither
// panics nor truncates the already-written profiles.
func TestStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stop() // explicit early-exit flush
	size := func(p string) int64 {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		return fi.Size()
	}
	cpuSize, memSize := size(cpu), size(mem)
	if memSize == 0 {
		t.Fatal("mem profile empty after first stop")
	}
	stop() // deferred flush lands second: must be a no-op
	stop() // and stays one
	if got := size(cpu); got != cpuSize {
		t.Fatalf("cpu profile rewritten by second stop: %d -> %d bytes", cpuSize, got)
	}
	if got := size(mem); got != memSize {
		t.Fatalf("mem profile rewritten by second stop: %d -> %d bytes", memSize, got)
	}
}

// TestCPUOnlyAndMemOnly cover the single-profile paths: the skipped
// profile's file must not appear.
func TestCPUOnlyAndMemOnly(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	stop, err := Start(cpu, "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if _, err := os.Stat(cpu); err != nil {
		t.Fatalf("cpu-only: cpu profile missing: %v", err)
	}
	if _, err := os.Stat(mem); !os.IsNotExist(err) {
		t.Fatalf("cpu-only: mem profile unexpectedly present (err=%v)", err)
	}

	stop, err = Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	fi, err := os.Stat(mem)
	if err != nil {
		t.Fatalf("mem-only: mem profile missing: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("mem-only: mem profile empty")
	}
}

// TestNoOpWhenBothEmpty asserts the documented no-op contract.
func TestNoOpWhenBothEmpty(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop()
}

// TestStartErrorPaths: an uncreatable CPU profile path must error (and
// leave profiling stopped so later Starts work); an uncreatable mem
// path surfaces at stop without breaking idempotence.
func TestStartErrorPaths(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("uncreatable cpu path did not error")
	}
	// Profiling must not have been left running: a fresh Start succeeds.
	cpu := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := Start(cpu, "")
	if err != nil {
		t.Fatalf("Start after failed Start: %v", err)
	}
	stop()

	// Mem profile failures are reported at stop (to stderr), not as a
	// Start error — the CPU profile must still have been written.
	cpu2 := filepath.Join(t.TempDir(), "cpu2.pprof")
	stop, err = Start(cpu2, filepath.Join(t.TempDir(), "no", "such", "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop()
	if fi, err := os.Stat(cpu2); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile lost to mem-path failure: fi=%v err=%v", fi, err)
	}
}
