// Package prof wires runtime/pprof profiling into the CLIs: one call
// starts the requested CPU and/or heap profiles, one idempotent stop
// flushes them. It exists so scaling work on campus-size scenarios can
// profile the real binaries (wlansweep, ietfrepro) instead of
// reconstructing workloads under go test.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins the profiles named by the (possibly empty) file paths:
// cpuPath receives a CPU profile from now until stop, memPath an
// allocs-accounted heap profile written at stop. It returns an
// idempotent stop function — safe to both defer and call explicitly on
// early-exit paths, which matters because os.Exit skips defers: call
// stop before every exit site. An empty path skips that profile; with
// both empty, Start is a no-op returning a no-op stop.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "prof: %v\n", err)
					return
				}
				defer f.Close()
				runtime.GC() // settle live-heap accounting before the write
				if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
					fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				}
			}
		})
	}
	return stop, nil
}
