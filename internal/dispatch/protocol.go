// Package dispatch shards a campaign across worker processes. A
// coordinator expands the campaign matrix once, partitions the spec
// index space into contiguous shards, and leases shards to workers
// over a small versioned HTTP/JSON API (/api/v1). Each worker runs
// its leased range as an ordinary crash-resumable journaled campaign
// (internal/experiment) and uploads the resulting journal records;
// the coordinator folds uploads in global spec order, so the final
// report is byte-identical to a single-process run of the same
// matrix — regardless of worker count, completion order, crashes, or
// duplicated work from reassigned leases (runs are deterministic, so
// a rerun journals the same record).
package dispatch

import (
	"errors"

	"wlan80211/internal/experiment"
)

// Errors the API maps to HTTP statuses (see api.go).
var (
	// ErrLeaseGone means the heartbeated lease expired or was never
	// issued — the worker should claim again (its finished work still
	// uploads fine).
	ErrLeaseGone = errors.New("dispatch: lease gone")
	// ErrConflict means two uploads disagreed about a run's record.
	// Runs are deterministic, so this is corruption or version skew
	// between workers — never a retryable race.
	ErrConflict = errors.New("dispatch: conflicting record")
)

// ClaimRequest asks the coordinator for work.
type ClaimRequest struct {
	// Worker is a display name for logs ("" is fine).
	Worker string `json:"worker,omitempty"`
}

// Lease grants a worker one shard until it expires or completes.
type Lease struct {
	ID    string `json:"id"`
	Shard int    `json:"shard"`
	// From/To are the shard's global spec indices [From, To).
	From int `json:"from"`
	To   int `json:"to"`
	// TTLMS is how long the lease lives without a heartbeat.
	TTLMS int64 `json:"ttl_ms"`
}

// ClaimResponse is exactly one of: a lease, wait-and-retry (all
// pending shards are leased out), or done (every shard folded).
type ClaimResponse struct {
	Done    bool   `json:"done,omitempty"`
	Wait    bool   `json:"wait,omitempty"`
	RetryMS int64  `json:"retry_ms,omitempty"`
	Lease   *Lease `json:"lease,omitempty"`
}

// HeartbeatResponse extends a live lease.
type HeartbeatResponse struct {
	// ExpiresUnixMS is the new expiry on the coordinator's clock.
	ExpiresUnixMS int64 `json:"expires_unix_ms"`
}

// UploadRequest delivers a shard's completed journal records. Lease
// is advisory (logging): uploads are accepted while the shard is
// pending even if the lease expired or the shard was reassigned —
// deterministic work is never wasted, and duplicates dedup by spec
// index.
type UploadRequest struct {
	Lease   string                 `json:"lease,omitempty"`
	Shard   int                    `json:"shard"`
	Records []experiment.RunRecord `json:"records"`
}

// UploadResponse reports what the upload changed.
type UploadResponse struct {
	// Accepted counts records that were new (not already folded).
	Accepted int `json:"accepted"`
	// ShardDone/CampaignDone report completion after this upload.
	ShardDone    bool `json:"shard_done"`
	CampaignDone bool `json:"campaign_done"`
}

// Status is the coordinator's progress view (GET /api/v1/status).
type Status struct {
	Specs        int  `json:"specs"`
	Shards       int  `json:"shards"`
	ShardsDone   int  `json:"shards_done"`
	RunsDone     int  `json:"runs_done"`
	ActiveLeases int  `json:"active_leases"`
	Done         bool `json:"done"`
}
