package dispatch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wlan80211/internal/dispatch"
	"wlan80211/internal/experiment"
)

func testMatrix() experiment.Matrix {
	return experiment.Matrix{
		Scenarios: []string{"day"},
		Seeds:     []int64{1, 2, 3},
		Scales:    []float64{0.1},
	}
}

// referenceReport runs the matrix as a single-process campaign and
// returns the report bytes exactly as `wlansweep -campaign -json`
// writes them.
func referenceReport(t *testing.T, m experiment.Matrix) []byte {
	t.Helper()
	dir := t.TempDir()
	res, err := experiment.RunCampaign(context.Background(), dir, m, experiment.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	man, err := experiment.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(res.Report(man), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestDistributedReportMatchesSingleProcess is the tentpole
// acceptance check in-process: two workers drain the shard queue over
// real HTTP and the coordinator's folded report is byte-identical to
// a single-process campaign over the same matrix.
func TestDistributedReportMatchesSingleProcess(t *testing.T) {
	m := testMatrix()
	want := referenceReport(t, m)

	co, err := dispatch.New(dispatch.Config{
		Dir: t.TempDir(), Matrix: m, ShardSize: 1,
		LeaseTTL: 10 * time.Second, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(dispatch.NewServer(co))
	defer srv.Close()

	ctx := context.Background()
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &dispatch.Worker{
			Coordinator: srv.URL, Dir: t.TempDir(),
			Name: fmt.Sprintf("w%d", i), Workers: 1, Logf: t.Logf,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- w.Run(ctx)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	got, ok := co.Report()
	if !ok {
		t.Fatal("campaign not done after both workers exited")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed report differs from single-process reference:\n--- distributed ---\n%s\n--- reference ---\n%s", got, want)
	}

	// The HTTP report is the same bytes verbatim.
	resp, err := http.Get(srv.URL + "/api/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("GET /api/v1/report differs from the reference report")
	}
}

// fakeRecord fabricates an identity-valid record for lease-protocol
// tests that never run real simulations.
func fakeRecord(t *testing.T, m experiment.Matrix, i int, hash string) experiment.RunRecord {
	t.Helper()
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sp := specs[i]
	return experiment.RunRecord{Index: i, Name: sp.Name, Seed: sp.Seed, Scale: sp.Scale, TraceHash: hash}
}

// TestLeaseExpiryReassignsShard drives the lease lifecycle with an
// injected clock: an expired lease's shard is reclaimable, its
// heartbeat 410s, and its late upload still counts while the shard is
// pending.
func TestLeaseExpiryReassignsShard(t *testing.T) {
	m := testMatrix()
	cur := time.Unix(1000, 0)
	co, err := dispatch.New(dispatch.Config{
		Dir: t.TempDir(), Matrix: m, ShardSize: 1,
		LeaseTTL: 10 * time.Second,
		Now:      func() time.Time { return cur },
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	first := co.Claim("w1")
	if first.Lease == nil {
		t.Fatalf("claim returned no lease: %+v", first)
	}
	if _, err := co.Heartbeat(first.Lease.ID); err != nil {
		t.Fatalf("heartbeat on live lease: %v", err)
	}

	// Lease out the remaining shards; the queue must then say wait.
	co.Claim("w1")
	co.Claim("w1")
	if r := co.Claim("w2"); !r.Wait || r.RetryMS <= 0 {
		t.Fatalf("all shards leased, want wait+retry, got %+v", r)
	}

	cur = cur.Add(11 * time.Second) // past every TTL
	second := co.Claim("w2")
	if second.Lease == nil || second.Lease.Shard != first.Lease.Shard {
		t.Fatalf("expired shard not reassigned first: %+v", second)
	}
	if _, err := co.Heartbeat(first.Lease.ID); err != dispatch.ErrLeaseGone {
		t.Fatalf("heartbeat on expired lease: want ErrLeaseGone, got %v", err)
	}

	// The dead worker's upload arrives anyway — accepted while the
	// shard is pending, and the duplicate from the new lease dedups.
	rec := fakeRecord(t, m, first.Lease.From, "aaaa")
	up, err := co.Upload(dispatch.UploadRequest{Lease: first.Lease.ID, Shard: first.Lease.Shard, Records: []experiment.RunRecord{rec}})
	if err != nil {
		t.Fatalf("upload from expired lease: %v", err)
	}
	if up.Accepted != 1 || !up.ShardDone {
		t.Fatalf("upload from expired lease: %+v", up)
	}
	dup, err := co.Upload(dispatch.UploadRequest{Lease: second.Lease.ID, Shard: second.Lease.Shard, Records: []experiment.RunRecord{rec}})
	if err != nil {
		t.Fatalf("duplicate upload: %v", err)
	}
	if dup.Accepted != 0 || !dup.ShardDone {
		t.Fatalf("duplicate upload should dedup to 0 accepted: %+v", dup)
	}
}

// TestUploadConflictRejected pins the determinism guardrail: two
// records for one spec index that disagree are corruption, not a
// race, and must fail the upload.
func TestUploadConflictRejected(t *testing.T) {
	m := testMatrix()
	co, err := dispatch.New(dispatch.Config{Dir: t.TempDir(), Matrix: m, ShardSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := fakeRecord(t, m, 0, "aaaa")
	b := fakeRecord(t, m, 0, "bbbb")
	if _, err := co.Upload(dispatch.UploadRequest{Shard: 0, Records: []experiment.RunRecord{a}}); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Upload(dispatch.UploadRequest{Shard: 0, Records: []experiment.RunRecord{b}}); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting record accepted: %v", err)
	}
	// Out-of-range and wrong-shard records are rejected too.
	out := fakeRecord(t, m, 2, "cccc")
	out.Index = 99
	out.Name = "day"
	if _, err := co.Upload(dispatch.UploadRequest{Shard: 0, Records: []experiment.RunRecord{out}}); err == nil {
		t.Fatal("out-of-range record accepted")
	}
}

// TestCoordinatorResume restarts the coordinator mid-campaign and
// after completion: persisted shards reload, and a finished directory
// comes back already done with the identical report bytes.
func TestCoordinatorResume(t *testing.T) {
	m := testMatrix()
	dir := t.TempDir()
	cfg := dispatch.Config{Dir: dir, Matrix: m, ShardSize: 1, Logf: t.Logf}
	co, err := dispatch.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Upload(dispatch.UploadRequest{Shard: 0, Records: []experiment.RunRecord{fakeRecord(t, m, 0, "aaaa")}}); err != nil {
		t.Fatal(err)
	}

	// Restart mid-campaign — resume without matrix flags.
	co2, err := dispatch.New(dispatch.Config{Dir: dir, ShardSize: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if st := co2.Status(); st.ShardsDone != 1 || st.RunsDone != 1 || st.Done {
		t.Fatalf("resumed status: %+v", st)
	}
	for i := 1; i < 3; i++ {
		if _, err := co2.Upload(dispatch.UploadRequest{Shard: i, Records: []experiment.RunRecord{fakeRecord(t, m, i, "hh")}}); err != nil {
			t.Fatal(err)
		}
	}
	rep, ok := co2.Report()
	if !ok {
		t.Fatal("campaign not done after all shards uploaded")
	}

	// Restart after completion: already finalized, same bytes.
	co3, err := dispatch.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep3, ok := co3.Report()
	if !ok {
		t.Fatal("finished campaign not done after restart")
	}
	if !bytes.Equal(rep, rep3) {
		t.Fatal("report changed across coordinator restart")
	}
	select {
	case <-co3.Done():
	default:
		t.Fatal("Done channel not closed on already-finished campaign")
	}

	// A conflicting matrix cannot hijack the directory.
	bad := m
	bad.Seeds = []int64{9}
	if _, err := dispatch.New(dispatch.Config{Dir: dir, Matrix: bad}); err == nil {
		t.Fatal("different matrix accepted into existing coordinator dir")
	}
}

// TestAPIContract pins the /api/v1 route set and its error statuses.
func TestAPIContract(t *testing.T) {
	m := testMatrix()
	co, err := dispatch.New(dispatch.Config{Dir: t.TempDir(), Matrix: m, ShardSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(dispatch.NewServer(co))
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("GET /healthz = %d", got)
	}
	if got := get("/api/v1/campaign"); got != http.StatusOK {
		t.Errorf("GET /api/v1/campaign = %d", got)
	}
	if got := get("/api/v1/status"); got != http.StatusOK {
		t.Errorf("GET /api/v1/status = %d", got)
	}
	if got := get("/api/v1/report"); got != http.StatusNotFound {
		t.Errorf("GET /api/v1/report before completion = %d, want 404", got)
	}
	if got, body := post("/api/v1/leases/claim", `{"worker":"t"}`); got != http.StatusOK || !strings.Contains(body, `"lease"`) {
		t.Errorf("POST claim = %d %s", got, body)
	}
	if got, _ := post("/api/v1/leases/claim", `{bad json`); got != http.StatusBadRequest {
		t.Errorf("POST claim with bad JSON = %d, want 400", got)
	}
	if got, _ := post("/api/v1/leases/nope/heartbeat", `{}`); got != http.StatusGone {
		t.Errorf("POST heartbeat on unknown lease = %d, want 410", got)
	}
	if got, _ := post("/api/v1/leases/x/journal", `{"shard":99,"records":[]}`); got != http.StatusBadRequest {
		t.Errorf("POST journal with bad shard = %d, want 400", got)
	}
	// Conflicting uploads surface as 409.
	rec := fakeRecord(t, m, 0, "aaaa")
	recJSON, _ := json.Marshal(dispatch.UploadRequest{Shard: 0, Records: []experiment.RunRecord{rec}})
	if got, _ := post("/api/v1/leases/x/journal", string(recJSON)); got != http.StatusOK {
		t.Errorf("POST journal = %d, want 200", got)
	}
	rec.TraceHash = "bbbb"
	recJSON, _ = json.Marshal(dispatch.UploadRequest{Shard: 0, Records: []experiment.RunRecord{rec}})
	if got, _ := post("/api/v1/leases/x/journal", string(recJSON)); got != http.StatusConflict {
		t.Errorf("POST conflicting journal = %d, want 409", got)
	}
	// Method mismatches 405 under Go 1.22+ pattern routing.
	if got, _ := post("/api/v1/campaign", `{}`); got != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/v1/campaign = %d, want 405", got)
	}
}
