package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"wlan80211/internal/experiment"
	"wlan80211/internal/snapshot"
)

// The coordinator's state directory mirrors a campaign directory:
//
//	campaign.json          — the global manifest (same shape and name
//	                         as a worker-side campaign, so tooling
//	                         that reads campaigns reads this too)
//	shards/shard-N.json    — each completed shard's records (atomic
//	                         write on completion; restart reloads)
//	report.json            — the final folded report, byte-identical
//	                         to a single-process `wlansweep -campaign
//	                         -json` over the same matrix
//
// Only completed shards persist. A shard lost mid-flight costs
// nothing durable: the worker's own journal (its campaign dir)
// already holds the finished runs, and a reassigned worker recomputes
// the rest deterministically.

const (
	manifestName = "campaign.json"
	shardsDir    = "shards"
	reportName   = "report.json"

	// DefaultShardSize is specs per shard: one run per lease keeps
	// reassignment losses minimal and load balancing automatic.
	DefaultShardSize = 1
	// DefaultLeaseTTL is how long a claimed shard survives without a
	// heartbeat before it is reassigned.
	DefaultLeaseTTL = 15 * time.Second
)

// Config configures a coordinator. Matrix may be empty to resume a
// directory that already holds a campaign.json.
type Config struct {
	// Dir is the coordinator state directory (created if needed).
	Dir string
	// Matrix is the campaign to shard. Empty Scenarios means resume:
	// the matrix, checkpoint interval, and metrics come from the
	// directory's manifest.
	Matrix experiment.Matrix
	// CheckpointMicros is the workers' mid-run snapshot interval.
	CheckpointMicros int64
	// Metrics selects analysis stages by name (empty = all).
	Metrics []string
	// ShardSize is specs per shard; <=0 means DefaultShardSize. Must
	// stay the same across restarts of one campaign (the persisted
	// shard files pin the layout).
	ShardSize int
	// LeaseTTL is the heartbeat deadline; <=0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Now is the clock (tests inject a fake one); nil means time.Now.
	Now func() time.Time
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Coordinator owns one distributed campaign: the shard table, the
// lease table, and the folded record set.
type Coordinator struct {
	cfg   Config
	man   experiment.Manifest
	specs []experiment.Spec
	now   func() time.Time
	logf  func(string, ...any)

	mu      sync.Mutex
	shards  []*shard
	leases  map[string]*lease
	seq     int // lease id counter (deterministic, unlike rand)
	records map[int]experiment.RunRecord
	report  []byte // final report JSON; non-nil means done
	done    chan struct{}
}

type shard struct {
	r       experiment.SpecRange
	done    bool
	leaseID string // active lease ("" = unleased)
}

type lease struct {
	id      string
	shard   int
	worker  string
	expires time.Time
}

// New opens (or resumes) a coordinator in cfg.Dir. Completed shards
// found on disk fold immediately; a directory whose shards are all
// done comes back already finalized.
func New(cfg Config) (*Coordinator, error) {
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = DefaultShardSize
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	c := &Coordinator{
		cfg:     cfg,
		now:     cfg.Now,
		logf:    cfg.Logf,
		leases:  make(map[string]*lease),
		records: make(map[int]experiment.RunRecord),
		done:    make(chan struct{}),
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, shardsDir), 0o755); err != nil {
		return nil, err
	}
	if err := c.loadManifest(); err != nil {
		return nil, err
	}
	var err error
	if c.specs, err = c.man.Matrix.Expand(); err != nil {
		return nil, err
	}
	for _, r := range partition(len(c.specs), cfg.ShardSize) {
		c.shards = append(c.shards, &shard{r: r})
	}
	if err := c.loadShards(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.allShardsDone() {
		if err := c.finalize(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// loadManifest creates campaign.json from the config, verifies an
// existing one matches it, or — when the config carries no matrix —
// adopts the existing one (resume).
func (c *Coordinator) loadManifest() error {
	path := filepath.Join(c.cfg.Dir, manifestName)
	prev, err := experiment.ReadManifest(c.cfg.Dir)
	if len(c.cfg.Matrix.Scenarios) == 0 {
		if err != nil {
			return fmt.Errorf("dispatch: resume %s: %w", c.cfg.Dir, err)
		}
		c.man = prev
		return nil
	}
	c.man = experiment.Manifest{
		Version:          1,
		Matrix:           c.cfg.Matrix,
		CheckpointMicros: c.cfg.CheckpointMicros,
		Metrics:          c.cfg.Metrics,
	}
	if err == nil {
		a, _ := json.Marshal(c.man)
		b, _ := json.Marshal(prev)
		if !bytes.Equal(a, b) {
			return fmt.Errorf("dispatch: %s already holds a different campaign (resume without matrix flags, or use a fresh directory)", c.cfg.Dir)
		}
		return nil
	}
	if !os.IsNotExist(err) {
		return err
	}
	return experiment.WriteJSONAtomic(path, c.man)
}

// shardFile is the persisted form of one completed shard.
type shardFile struct {
	Shard   int                    `json:"shard"`
	From    int                    `json:"from"`
	To      int                    `json:"to"`
	Records []experiment.RunRecord `json:"records"`
}

// loadShards folds completed shard files back in. The on-disk layout
// must match the computed partition — a changed -shard-size would
// silently misalign ranges otherwise.
func (c *Coordinator) loadShards() error {
	for i, sh := range c.shards {
		path := c.shardPath(i)
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return err
		}
		var sf shardFile
		if err := json.Unmarshal(data, &sf); err != nil {
			return fmt.Errorf("dispatch: %s: %w", path, err)
		}
		if sf.From != sh.r.From || sf.To != sh.r.To {
			return fmt.Errorf("dispatch: %s covers [%d,%d) but the shard layout says [%d,%d) — restart with the original -shard-size", path, sf.From, sf.To, sh.r.From, sh.r.To)
		}
		for _, rec := range sf.Records {
			if err := c.checkRecord(sh, rec); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			c.records[rec.Index] = rec
		}
		if !c.shardCovered(sh) {
			return fmt.Errorf("dispatch: %s is incomplete (%d of %d runs) — completed shards persist whole", path, len(sf.Records), sh.r.To-sh.r.From)
		}
		sh.done = true
	}
	return nil
}

func (c *Coordinator) shardPath(i int) string {
	return filepath.Join(c.cfg.Dir, shardsDir, fmt.Sprintf("shard-%d.json", i))
}

// partition splits n specs into contiguous shards of at most size.
func partition(n, size int) []experiment.SpecRange {
	var out []experiment.SpecRange
	for from := 0; from < n; from += size {
		out = append(out, experiment.SpecRange{From: from, To: min(from+size, n)})
	}
	return out
}

// Manifest returns the campaign identity workers run against.
func (c *Coordinator) Manifest() experiment.Manifest { return c.man }

// Done is closed once every shard has folded and the report exists.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Report returns the final report JSON once the campaign completed.
func (c *Coordinator) Report() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.report, c.report != nil
}

// Status reports progress.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reap(c.now())
	st := Status{
		Specs:        len(c.specs),
		Shards:       len(c.shards),
		RunsDone:     len(c.records),
		ActiveLeases: len(c.leases),
		Done:         c.report != nil,
	}
	for _, sh := range c.shards {
		if sh.done {
			st.ShardsDone++
		}
	}
	return st
}

// Claim hands out the first pending unleased shard, or says wait
// (everything pending is leased) or done. Expired leases are reaped
// here — lazily, on traffic — so a SIGKILLed worker's shard is
// reassigned at the next claim after its TTL runs out.
func (c *Coordinator) Claim(worker string) ClaimResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reap(now)
	if c.report != nil {
		return ClaimResponse{Done: true}
	}
	for i, sh := range c.shards {
		if sh.done || sh.leaseID != "" {
			continue
		}
		c.seq++
		l := &lease{
			id:      fmt.Sprintf("lease-%d", c.seq),
			shard:   i,
			worker:  worker,
			expires: now.Add(c.cfg.LeaseTTL),
		}
		c.leases[l.id] = l
		sh.leaseID = l.id
		c.logf("dispatch: %s: shard %d [%d,%d) leased to %q (ttl %s)",
			l.id, i, sh.r.From, sh.r.To, worker, c.cfg.LeaseTTL)
		return ClaimResponse{Lease: &Lease{
			ID: l.id, Shard: i, From: sh.r.From, To: sh.r.To,
			TTLMS: c.cfg.LeaseTTL.Milliseconds(),
		}}
	}
	return ClaimResponse{Wait: true, RetryMS: max(c.cfg.LeaseTTL.Milliseconds()/4, 100)}
}

// Heartbeat extends a live lease; ErrLeaseGone means it expired (or
// never existed) and the worker should claim again.
func (c *Coordinator) Heartbeat(id string) (time.Time, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reap(now)
	l, ok := c.leases[id]
	if !ok {
		return time.Time{}, ErrLeaseGone
	}
	l.expires = now.Add(c.cfg.LeaseTTL)
	return l.expires, nil
}

// reap drops expired leases so their shards become claimable. Caller
// holds mu.
func (c *Coordinator) reap(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.expires) {
			c.logf("dispatch: %s expired (shard %d, worker %q); shard reassignable", id, l.shard, l.worker)
			if c.shards[l.shard].leaseID == id {
				c.shards[l.shard].leaseID = ""
			}
			delete(c.leases, id)
		}
	}
}

// Upload folds a shard's completed records. All-or-nothing: every
// record is validated against the matrix (and against already-folded
// duplicates) before any is kept. Valid uploads are accepted even
// from expired or superseded leases while the shard is pending —
// deterministic work is never wasted.
func (c *Coordinator) Upload(req UploadRequest) (UploadResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Shard < 0 || req.Shard >= len(c.shards) {
		return UploadResponse{}, fmt.Errorf("dispatch: no shard %d (have %d)", req.Shard, len(c.shards))
	}
	sh := c.shards[req.Shard]
	for _, rec := range req.Records {
		if err := c.checkRecord(sh, rec); err != nil {
			return UploadResponse{}, err
		}
	}
	var resp UploadResponse
	for _, rec := range req.Records {
		if _, ok := c.records[rec.Index]; ok {
			continue
		}
		c.records[rec.Index] = rec
		resp.Accepted++
	}
	if !sh.done && c.shardCovered(sh) {
		if err := c.completeShard(req.Shard); err != nil {
			return UploadResponse{}, err
		}
	}
	resp.ShardDone = sh.done
	resp.CampaignDone = c.report != nil
	return resp, nil
}

// checkRecord validates one record against the shard range, the
// expanded matrix, and any already-folded duplicate. Caller holds mu.
func (c *Coordinator) checkRecord(sh *shard, rec experiment.RunRecord) error {
	if rec.Index < sh.r.From || rec.Index >= sh.r.To {
		return fmt.Errorf("dispatch: record for run %d is outside shard range [%d,%d)", rec.Index, sh.r.From, sh.r.To)
	}
	sp := c.specs[rec.Index]
	if rec.Name != sp.Name || rec.Seed != sp.Seed || rec.Scale != sp.Scale {
		return fmt.Errorf("dispatch: record %d is %s/seed=%d/scale=%g, matrix expands to %s/seed=%d/scale=%g",
			rec.Index, rec.Name, rec.Seed, rec.Scale, sp.Name, sp.Seed, sp.Scale)
	}
	if prev, ok := c.records[rec.Index]; ok && prev != rec {
		return fmt.Errorf("%w: run %d trace %s vs %s", ErrConflict, rec.Index, rec.TraceHash, prev.TraceHash)
	}
	return nil
}

func (c *Coordinator) shardCovered(sh *shard) bool {
	for i := sh.r.From; i < sh.r.To; i++ {
		if _, ok := c.records[i]; !ok {
			return false
		}
	}
	return true
}

func (c *Coordinator) allShardsDone() bool {
	for _, sh := range c.shards {
		if !sh.done {
			return false
		}
	}
	return true
}

// completeShard persists a fully-covered shard, retires its lease,
// and finalizes the campaign when it was the last one. Caller holds
// mu.
func (c *Coordinator) completeShard(idx int) error {
	sh := c.shards[idx]
	sf := shardFile{Shard: idx, From: sh.r.From, To: sh.r.To}
	for i := sh.r.From; i < sh.r.To; i++ {
		sf.Records = append(sf.Records, c.records[i])
	}
	if err := experiment.WriteJSONAtomic(c.shardPath(idx), sf); err != nil {
		return err
	}
	sh.done = true
	if sh.leaseID != "" {
		delete(c.leases, sh.leaseID)
		sh.leaseID = ""
	}
	done := 0
	for _, s := range c.shards {
		if s.done {
			done++
		}
	}
	c.logf("dispatch: shard %d [%d,%d) complete (%d/%d shards)", idx, sh.r.From, sh.r.To, done, len(c.shards))
	if c.allShardsDone() {
		return c.finalize()
	}
	return nil
}

// finalize folds every record in global spec order through the exact
// single-process path (FoldRecords → Report → MarshalIndent), caches
// the bytes, and writes report.json atomically. Caller holds mu.
func (c *Coordinator) finalize() error {
	recs := make([]experiment.RunRecord, 0, len(c.records))
	for i := range c.specs {
		recs = append(recs, c.records[i])
	}
	res, err := experiment.FoldRecords(c.man, recs)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res.Report(c.man), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := snapshot.AtomicWriteFile(filepath.Join(c.cfg.Dir, reportName), data); err != nil {
		return err
	}
	c.report = data
	close(c.done)
	c.logf("dispatch: campaign complete: %d runs folded, report at %s", len(recs), filepath.Join(c.cfg.Dir, reportName))
	return nil
}
