package dispatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// NewServer builds the coordinator's HTTP handler. All routes are
// versioned under /api/v1 from day one. Routes:
//
//	GET  /healthz                       — liveness + progress counts
//	GET  /api/v1/campaign               — the campaign manifest
//	                                      (matrix, checkpoint, metrics)
//	GET  /api/v1/status                 — shard/lease/run progress
//	POST /api/v1/leases/claim           — claim a shard lease
//	POST /api/v1/leases/{id}/heartbeat  — keep a lease alive (410 once
//	                                      it expired: claim again)
//	POST /api/v1/leases/{id}/journal    — upload a shard's records
//	GET  /api/v1/report                 — final report JSON (404 until
//	                                      every shard folded)
//
// All responses are JSON; errors use {"error": "..."} with
// 400/404/409/410 (409 = conflicting record, which is corruption or
// version skew, never a retryable race).
func NewServer(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := c.Status()
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok", "shards": st.Shards, "shards_done": st.ShardsDone, "done": st.Done,
		})
	})
	mux.HandleFunc("GET /api/v1/campaign", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Manifest())
	})
	mux.HandleFunc("GET /api/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("POST /api/v1/leases/claim", func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if err := decodeBody(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, c.Claim(req.Worker))
	})
	mux.HandleFunc("POST /api/v1/leases/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		expires, err := c.Heartbeat(r.PathValue("id"))
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, HeartbeatResponse{ExpiresUnixMS: expires.UnixMilli()})
	})
	mux.HandleFunc("POST /api/v1/leases/{id}/journal", func(w http.ResponseWriter, r *http.Request) {
		var req UploadRequest
		if err := decodeBody(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		req.Lease = r.PathValue("id")
		resp, err := c.Upload(req)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /api/v1/report", func(w http.ResponseWriter, r *http.Request) {
		data, ok := c.Report()
		if !ok {
			writeErr(w, http.StatusNotFound, errors.New("campaign incomplete"))
			return
		}
		// The cached bytes ARE the artifact — serving them verbatim is
		// what keeps the distributed report byte-identical to the
		// single-process one.
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	return mux
}

// maxBodyBytes caps request bodies; the largest legitimate body is a
// shard upload, a few hundred bytes per record.
const maxBodyBytes = 16 << 20

func decodeBody(r *http.Request, v any) error {
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrLeaseGone):
		return http.StatusGone
	case errors.Is(err, ErrConflict):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
