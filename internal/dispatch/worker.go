package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"wlan80211/internal/experiment"
)

// Worker is the client side of the dispatch protocol: claim a shard,
// run it as a local crash-resumable campaign, upload the journal,
// repeat until the coordinator says done.
//
// Crash safety rides entirely on the campaign machinery. The shard
// campaign dir (Dir/shard-N) journals every completed run, so a
// worker SIGKILLed mid-shard loses nothing committed: restarted with
// the same Dir it resumes its own journal; a different worker leased
// the shard instead recomputes it bit-identically (runs are
// deterministic), and the coordinator dedups the overlap by spec
// index.
type Worker struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Dir is the worker's state directory; each leased shard runs in
	// Dir/shard-N.
	Dir string
	// Name identifies the worker in coordinator logs.
	Name string
	// Workers bounds concurrent runs within a shard; <=0 means
	// GOMAXPROCS.
	Workers int
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run participates in the campaign until it completes (nil) or ctx is
// canceled (ctx.Err()). The initial manifest fetch retries briefly so
// a worker started a moment before its coordinator still connects.
func (w *Worker) Run(ctx context.Context) error {
	man, err := w.fetchManifest(ctx)
	if err != nil {
		return err
	}
	for {
		var claim ClaimResponse
		if _, err := w.postJSON(ctx, "/api/v1/leases/claim", ClaimRequest{Worker: w.Name}, &claim); err != nil {
			return err
		}
		switch {
		case claim.Done:
			w.logf("worker %s: campaign done", w.Name)
			return nil
		case claim.Wait:
			if err := sleepCtx(ctx, time.Duration(claim.RetryMS)*time.Millisecond); err != nil {
				return err
			}
		case claim.Lease != nil:
			campaignDone, err := w.runShard(ctx, man, claim.Lease)
			if err != nil {
				return err
			}
			if campaignDone {
				// This upload completed the campaign; the coordinator
				// may exit before another claim would reach it.
				w.logf("worker %s: campaign done", w.Name)
				return nil
			}
		default:
			return fmt.Errorf("dispatch: claim response carried neither lease, wait, nor done")
		}
	}
}

// fetchManifest gets the campaign identity, retrying connection
// failures for a few seconds.
func (w *Worker) fetchManifest(ctx context.Context) (experiment.Manifest, error) {
	var man experiment.Manifest
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, 250*time.Millisecond); err != nil {
				return man, err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Coordinator+"/api/v1/campaign", nil)
		if err != nil {
			return man, err
		}
		resp, err := w.client().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		err = decodeResponse(resp, &man)
		resp.Body.Close()
		if err != nil {
			return man, err
		}
		return man, nil
	}
	return man, fmt.Errorf("dispatch: coordinator unreachable at %s: %w", w.Coordinator, lastErr)
}

// runShard executes one leased range as a local journaled campaign,
// uploads the resulting records, and reports whether that upload
// completed the whole campaign. A heartbeat goroutine keeps the lease
// alive while the runs execute; losing the lease mid-run (410) does
// not abort the work — the upload is still accepted while the shard
// is pending.
func (w *Worker) runShard(ctx context.Context, man experiment.Manifest, ls *Lease) (bool, error) {
	dir := filepath.Join(w.Dir, fmt.Sprintf("shard-%d", ls.Shard))
	w.logf("worker %s: %s: shard %d [%d,%d) in %s", w.Name, ls.ID, ls.Shard, ls.From, ls.To, dir)

	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(hbCtx, ls)
	}()

	ex, err := (&experiment.Runner{}).Execute(ctx, experiment.RunSpecOpts{
		Mode:             experiment.ModeCampaign,
		Matrix:           man.Matrix,
		CampaignDir:      dir,
		Workers:          w.Workers,
		Metrics:          man.Metrics,
		CheckpointMicros: man.CheckpointMicros,
		Range:            &experiment.SpecRange{From: ls.From, To: ls.To},
	})
	stopHB()
	hbWG.Wait()
	if err != nil {
		return false, fmt.Errorf("dispatch: shard %d: %w", ls.Shard, err)
	}

	up := UploadRequest{Lease: ls.ID, Shard: ls.Shard}
	for i := ls.From; i < ls.To; i++ {
		if !ex.Campaign.Done[i] {
			return false, fmt.Errorf("dispatch: shard %d: run %d did not complete", ls.Shard, i)
		}
		up.Records = append(up.Records, ex.Campaign.Records[i])
	}
	var resp UploadResponse
	if _, err := w.postJSON(ctx, "/api/v1/leases/"+ls.ID+"/journal", up, &resp); err != nil {
		return false, err
	}
	w.logf("worker %s: shard %d uploaded (%d accepted, shard done=%v, campaign done=%v)",
		w.Name, ls.Shard, resp.Accepted, resp.ShardDone, resp.CampaignDone)
	return resp.CampaignDone, nil
}

// heartbeatLoop renews the lease at a third of its TTL until stopped.
// A 410 means the lease expired (the coordinator may reassign the
// shard); the worker keeps computing — its upload still counts.
func (w *Worker) heartbeatLoop(ctx context.Context, ls *Lease) {
	interval := time.Duration(ls.TTLMS) * time.Millisecond / 3
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var hb HeartbeatResponse
			status, err := w.postJSON(ctx, "/api/v1/leases/"+ls.ID+"/heartbeat", struct{}{}, &hb)
			if status == http.StatusGone {
				w.logf("worker %s: %s gone; continuing shard %d anyway (upload dedups)", w.Name, ls.ID, ls.Shard)
				return
			}
			if err != nil && ctx.Err() == nil {
				w.logf("worker %s: heartbeat %s: %v", w.Name, ls.ID, err)
			}
		}
	}
}

// postJSON posts a JSON body and decodes a JSON response, returning
// the HTTP status. Non-2xx responses return the server's {"error"}
// message as the error.
func (w *Worker) postJSON(ctx context.Context, path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeResponse(resp, out)
}

// decodeResponse decodes a 2xx JSON body into out, or turns an error
// response into a Go error carrying the server's message.
func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("dispatch: coordinator: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("dispatch: coordinator: HTTP %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps d or returns early with ctx.Err().
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
