package report

import (
	"bytes"
	"strings"
	"testing"

	"wlan80211/internal/core"
	"wlan80211/internal/dot11"
	"wlan80211/internal/stats"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("title", "col1", "longer_column")
	tb.AddRow("a", 1)
	tb.AddRow("bcdef", 2.5)
	out := tb.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "longer_column") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "2.5") {
		t.Error("missing float cell")
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	// Alignment: every line after the title should be equally long or
	// at least non-empty.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("lines = %d", len(lines))
	}
}

func TestTrimFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{{1.5, "1.5"}, {2.0, "2"}, {0.125, "0.125"}, {3.1000, "3.1"}}
	for _, c := range cases {
		if got := trimFloat(c.v); got != c.want {
			t.Errorf("trimFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", "plain")
	tb.AddRow(`quote"inside`, 7)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"quote""inside"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("missing header line: %s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0] == s[9] {
		t.Error("ramp should differ at extremes")
	}
	if Sparkline(nil, 10) != "" {
		t.Error("empty input must render empty")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Error("zero width must render empty")
	}
	// All zeros: must not panic, renders blanks.
	z := Sparkline([]float64{0, 0, 0}, 3)
	if z != "   " {
		t.Errorf("zeros = %q", z)
	}
}

func TestHistogramRender(t *testing.T) {
	var buf bytes.Buffer
	Histogram(&buf, []string{"a", "bb"}, []int64{2, 4}, 8)
	out := buf.String()
	if !strings.Contains(out, "####") {
		t.Errorf("no bars: %s", out)
	}
	if !strings.Contains(out, "bb") {
		t.Error("missing label")
	}
	// Zero width defaults.
	buf.Reset()
	Histogram(&buf, []string{"x"}, []int64{1}, 0)
	if buf.Len() == 0 {
		t.Error("default width render empty")
	}
}

func TestTable2(t *testing.T) {
	tb := Table2()
	out := tb.String()
	for _, want := range []string{"DIFS", "50", "SIFS", "10", "RTS", "352", "PLCP", "192"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestFigureBands(t *testing.T) {
	bands := FigureBands()
	if bands[0] != [2]int{30, 34} {
		t.Errorf("first band = %v", bands[0])
	}
	last := bands[len(bands)-1]
	if last[1] != 99 {
		t.Errorf("last band = %v", last)
	}
	// Contiguous coverage.
	for i := 1; i < len(bands); i++ {
		if bands[i][0] != bands[i-1][1]+1 {
			t.Errorf("gap between %v and %v", bands[i-1], bands[i])
		}
	}
}

func TestFiguresOnSyntheticResult(t *testing.T) {
	r := &core.Result{UtilHist: stats.NewHistogram(101)}
	// Populate a couple of utilization cells so figures have rows.
	for u := 40; u <= 90; u += 10 {
		r.UtilHist.Add(u)
		r.Throughput.Add(u, float64(u)/20)
		r.Goodput.Add(u, float64(u)/25)
		r.RTSPerSec.Add(u, 5)
		r.CTSPerSec.Add(u, 4)
		for i := 0; i < 4; i++ {
			r.BusyTimePerRate[i].Add(u, 0.1*float64(i+1))
			r.BytesPerRate[i].Add(u, 1000*float64(i+1))
			r.FirstAckPerRate[i].Add(u, float64(i))
		}
		for i := 0; i < 16; i++ {
			r.TxPerCategory[i].Add(u, float64(i))
			r.AcceptDelay[i].Add(u, 0.01)
		}
	}
	figs := AllFigures(r)
	if len(figs) != 17 {
		t.Fatalf("figures = %d, want 17", len(figs))
	}
	for i, f := range figs {
		out := f.String()
		if out == "" {
			t.Errorf("figure %d rendered empty", i)
		}
	}
	// Figure 6 must contain a row for the 40-44 band.
	if !strings.Contains(Figure6(r).String(), "40-44%") {
		t.Error("Figure 6 missing 40-44% band")
	}
	// Bands with no data are skipped.
	if strings.Contains(Figure6(r).String(), "35-39%") {
		t.Error("Figure 6 must skip empty bands")
	}
}

func TestReliabilityTable(t *testing.T) {
	rel := &core.BeaconReliability{
		WindowSeconds: 10,
		Series: map[dot11.Addr][]core.ReliabilityPoint{
			dot11.AddrFromUint64(1): {
				{WindowStart: 0, Received: 90, Expected: 97},
				{WindowStart: 10, Received: 40, Expected: 97},
			},
		},
	}
	out := Reliability(rel).String()
	if !strings.Contains(out, "mean_ratio") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "0.67") {
		t.Errorf("mean ratio missing: %s", out)
	}
}
