// Package report renders analysis results as aligned text tables,
// ASCII sparkline series, and CSV — the output layer of the cmd tools
// that regenerate the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// trimFloat renders a float with up to 3 decimals, no trailing zeros.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

// CSV renders the table as comma-separated values (headers first).
// Cells containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		esc := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			esc[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(esc, ","))
		return err
	}
	if err := writeLine(t.headers); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := writeLine(r); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Sparkline renders values as a one-line ASCII intensity plot using
// the given width; values are rescaled to max.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	ramp := []byte(" .:-=+*#%@")
	max := values[0]
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make([]byte, width)
	for i := range out {
		// Average the bucket of values mapping to this column.
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:min(hi, len(values))] {
			sum += v
		}
		avg := sum / float64(hi-lo)
		idx := 0
		if max > 0 {
			idx = int(avg / max * float64(len(ramp)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		out[i] = ramp[idx]
	}
	return string(out)
}

// MeanStddev formats a mean±stddev cell for aggregate tables.
func MeanStddev(mean, stddev float64) string {
	return trimFloat(mean) + "±" + trimFloat(stddev)
}

// Histogram renders labeled counts as horizontal bars scaled to
// maxWidth characters.
func Histogram(w io.Writer, labels []string, counts []int64, maxWidth int) {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	var peak int64 = 1
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, c := range counts {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		bar := strings.Repeat("#", int(c*int64(maxWidth)/peak))
		fmt.Fprintf(w, "%-*s %6d %s\n", labelW, label, c, bar)
	}
}
