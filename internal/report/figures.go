package report

import (
	"fmt"

	"wlan80211/internal/analysis"
	"wlan80211/internal/phy"
	"wlan80211/internal/stats"
)

// This file turns a analysis.Result into the paper's tables and figures.
// Scatter figures (6–15) are emitted as rows of utilization bands
// (5-point buckets over the paper's 30–99% range) so text output stays
// readable; the underlying per-percent data is available from the
// Result for finer rendering.

// FigureBands lists the utilization buckets used for scatter rows.
func FigureBands() [][2]int {
	var bands [][2]int
	for lo := 30; lo < 100; lo += 5 {
		hi := lo + 4
		if hi > 99 {
			hi = 99
		}
		bands = append(bands, [2]int{lo, hi})
	}
	return bands
}

// bandRow formats one utilization band's mean from each aggregation,
// skipping bands with no observations in any column.
func bandRow(t *Table, band [2]int, cols []*stats.ByUtilization) {
	var n int64
	for _, c := range cols {
		n += c.NOver(band[0], band[1])
	}
	if n == 0 {
		return
	}
	cells := make([]any, 0, len(cols)+1)
	cells = append(cells, fmt.Sprintf("%d-%d%%", band[0], band[1]))
	for _, c := range cols {
		cells = append(cells, c.MeanOver(band[0], band[1]))
	}
	t.AddRow(cells...)
}

// Table2 renders the paper's Table 2 delay components from the core
// constants (they are code, not data, so this is a consistency check
// as much as a table).
func Table2() *Table {
	t := NewTable("Table 2: delay components (µs)", "component", "delay")
	t.AddRow("DIFS", int64(analysis.DelayDIFS))
	t.AddRow("SIFS", int64(analysis.DelaySIFS))
	t.AddRow("RTS", int64(analysis.DelayRTS))
	t.AddRow("CTS", int64(analysis.DelayCTS))
	t.AddRow("ACK", int64(analysis.DelayACK))
	t.AddRow("BEACON", int64(analysis.DelayBeacon))
	t.AddRow("BO", int64(analysis.DelayBO))
	t.AddRow("PLCP", int64(analysis.DelayPLCP))
	t.AddRow("DATA(1000B, 11Mbps)", int64(analysis.DataDelay(1000, phy.Rate11Mbps)))
	return t
}

// Figure4a renders per-AP frame counts for the topN most active APs.
func Figure4a(r *analysis.Result, topN int) *Table {
	t := NewTable("Figure 4(a): frames sent+received by most active APs",
		"rank", "ap", "frames")
	for i, s := range r.APs.TopN(topN) {
		t.AddRow(i+1, s.Addr.String(), s.Frames)
	}
	return t
}

// Figure4b renders the associated-user estimate per 30 s window.
func Figure4b(r *analysis.Result) *Table {
	t := NewTable("Figure 4(b): users per 30 s window", "window_start_s", "users")
	for _, u := range r.Users {
		t.AddRow(u.WindowStart, u.Users)
	}
	return t
}

// Figure4c renders per-AP unrecorded percentages for the topN APs.
func Figure4c(r *analysis.Result, topN int) *Table {
	t := NewTable("Figure 4(c): unrecorded frame percentage per AP",
		"rank", "ap", "frames", "unrecorded", "unrecorded_pct")
	for i, s := range r.APs.TopN(topN) {
		t.AddRow(i+1, s.Addr.String(), s.Frames, s.Unrecorded, s.UnrecordedPercent())
	}
	return t
}

// Figure5 renders the per-channel utilization time series as
// sparklines plus summary statistics.
func Figure5(r *analysis.Result) *Table {
	t := NewTable("Figure 5(a/b): per-channel utilization time series",
		"channel", "seconds", "mean_util", "sparkline")
	for _, ch := range []phy.Channel{phy.Channel1, phy.Channel6, phy.Channel11} {
		secs := r.PerChannel[ch]
		if len(secs) == 0 {
			continue
		}
		vals := make([]float64, len(secs))
		sum := 0.0
		for i, s := range secs {
			vals[i] = float64(s.Utilization)
			sum += vals[i]
		}
		t.AddRow(fmt.Sprintf("%d", int(ch)), len(secs), sum/float64(len(secs)), Sparkline(vals, 40))
	}
	return t
}

// Figure5c renders the utilization frequency histogram in 10-point
// buckets, with the mode called out.
func Figure5c(r *analysis.Result) *Table {
	t := NewTable("Figure 5(c): utilization frequency", "utilization", "seconds")
	for lo := 0; lo <= 100; lo += 10 {
		var c int64
		hi := lo + 9
		if lo == 100 {
			hi = 100
		}
		for u := lo; u <= hi && u <= 100; u++ {
			c += r.UtilHist.Count(u)
		}
		t.AddRow(fmt.Sprintf("%d-%d%%", lo, hi), c)
	}
	mode, n := r.UtilHist.Mode()
	t.AddRow("mode", fmt.Sprintf("%d%% (%d s)", mode, n))
	return t
}

// Figure6 renders throughput and goodput versus utilization.
func Figure6(r *analysis.Result) *Table {
	t := NewTable("Figure 6: throughput and goodput vs utilization",
		"utilization", "throughput_mbps", "goodput_mbps")
	for _, b := range FigureBands() {
		bandRow(t, b, []*stats.ByUtilization{&r.Throughput, &r.Goodput})
	}
	return t
}

// Figure7 renders RTS and CTS frames per second versus utilization.
func Figure7(r *analysis.Result) *Table {
	t := NewTable("Figure 7: RTS/CTS frames per second vs utilization",
		"utilization", "rts_per_s", "cts_per_s")
	for _, b := range FigureBands() {
		bandRow(t, b, []*stats.ByUtilization{&r.RTSPerSec, &r.CTSPerSec})
	}
	return t
}

// Figure8 renders the channel busy-time share of each rate.
func Figure8(r *analysis.Result) *Table {
	t := NewTable("Figure 8: channel busy-time (s) per rate vs utilization",
		"utilization", "1mbps", "2mbps", "5.5mbps", "11mbps")
	for _, b := range FigureBands() {
		bandRow(t, b, []*stats.ByUtilization{
			&r.BusyTimePerRate[0], &r.BusyTimePerRate[1],
			&r.BusyTimePerRate[2], &r.BusyTimePerRate[3],
		})
	}
	return t
}

// Figure9 renders bytes per second at each rate.
func Figure9(r *analysis.Result) *Table {
	t := NewTable("Figure 9: bytes per second per rate vs utilization",
		"utilization", "1mbps", "2mbps", "5.5mbps", "11mbps")
	for _, b := range FigureBands() {
		bandRow(t, b, []*stats.ByUtilization{
			&r.BytesPerRate[0], &r.BytesPerRate[1],
			&r.BytesPerRate[2], &r.BytesPerRate[3],
		})
	}
	return t
}

// figureSizeAcrossRates renders one size class's tx/s per rate
// (Figures 10 and 11).
func figureSizeAcrossRates(r *analysis.Result, title string, size analysis.SizeClass) *Table {
	t := NewTable(title, "utilization",
		fmt.Sprintf("%s-1", size), fmt.Sprintf("%s-2", size),
		fmt.Sprintf("%s-5.5", size), fmt.Sprintf("%s-11", size))
	cols := make([]*stats.ByUtilization, 4)
	for i, rt := range phy.Rates {
		ci, _ := analysis.Category{Size: size, Rate: rt}.Index()
		cols[i] = &r.TxPerCategory[ci]
	}
	for _, b := range FigureBands() {
		bandRow(t, b, cols)
	}
	return t
}

// Figure10 renders small-frame transmissions per second per rate.
func Figure10(r *analysis.Result) *Table {
	return figureSizeAcrossRates(r, "Figure 10: S-frame tx/s per rate vs utilization", analysis.SizeS)
}

// Figure11 renders extra-large-frame transmissions per second per rate.
func Figure11(r *analysis.Result) *Table {
	return figureSizeAcrossRates(r, "Figure 11: XL-frame tx/s per rate vs utilization", analysis.SizeXL)
}

// figureRateAcrossSizes renders one rate's tx/s per size class
// (Figures 12 and 13).
func figureRateAcrossSizes(r *analysis.Result, title string, rt phy.Rate) *Table {
	suffix := map[phy.Rate]string{phy.Rate1Mbps: "1", phy.Rate2Mbps: "2", phy.Rate5_5Mbps: "5.5", phy.Rate11Mbps: "11"}[rt]
	t := NewTable(title, "utilization", "S-"+suffix, "M-"+suffix, "L-"+suffix, "XL-"+suffix)
	cols := make([]*stats.ByUtilization, 4)
	for i := 0; i < 4; i++ {
		ci, _ := analysis.Category{Size: analysis.SizeClass(i), Rate: rt}.Index()
		cols[i] = &r.TxPerCategory[ci]
	}
	for _, b := range FigureBands() {
		bandRow(t, b, cols)
	}
	return t
}

// Figure12 renders 1 Mbps transmissions per second per size class.
func Figure12(r *analysis.Result) *Table {
	return figureRateAcrossSizes(r, "Figure 12: 1 Mbps tx/s per size class vs utilization", phy.Rate1Mbps)
}

// Figure13 renders 11 Mbps transmissions per second per size class.
func Figure13(r *analysis.Result) *Table {
	return figureRateAcrossSizes(r, "Figure 13: 11 Mbps tx/s per size class vs utilization", phy.Rate11Mbps)
}

// Figure14 renders first-attempt acknowledgments per second per rate.
func Figure14(r *analysis.Result) *Table {
	t := NewTable("Figure 14: first-attempt acked frames/s per rate vs utilization",
		"utilization", "1mbps", "2mbps", "5.5mbps", "11mbps")
	for _, b := range FigureBands() {
		bandRow(t, b, []*stats.ByUtilization{
			&r.FirstAckPerRate[0], &r.FirstAckPerRate[1],
			&r.FirstAckPerRate[2], &r.FirstAckPerRate[3],
		})
	}
	return t
}

// Figure15 renders acceptance delay for the four categories the paper
// plots: S-1, XL-1, S-11, XL-11.
func Figure15(r *analysis.Result) *Table {
	t := NewTable("Figure 15: acceptance delay (s) vs utilization",
		"utilization", "S-1", "XL-1", "S-11", "XL-11")
	idx := func(size analysis.SizeClass, rt phy.Rate) *stats.ByUtilization {
		ci, _ := analysis.Category{Size: size, Rate: rt}.Index()
		return &r.AcceptDelay[ci]
	}
	cols := []*stats.ByUtilization{
		idx(analysis.SizeS, phy.Rate1Mbps), idx(analysis.SizeXL, phy.Rate1Mbps),
		idx(analysis.SizeS, phy.Rate11Mbps), idx(analysis.SizeXL, phy.Rate11Mbps),
	}
	for _, b := range FigureBands() {
		bandRow(t, b, cols)
	}
	return t
}

// Summary renders headline numbers: totals, unrecorded estimate,
// derived congestion thresholds, class shares.
func Summary(r *analysis.Result) *Table {
	t := NewTable("Summary", "metric", "value")
	t.AddRow("frames analyzed", r.TotalFrames)
	t.AddRow("parse errors", r.ParseErrors)
	t.AddRow("APs discovered", r.APs.Count())
	t.AddRow("unrecorded frames (est.)", r.Unrecorded.Total())
	t.AddRow("unrecorded percent (Eq. 1)", r.Unrecorded.Percent())
	c := r.DeriveClassifier()
	t.AddRow("congestion knee (throughput peak)", c.Knee)
	shares := r.ClassShare(c)
	t.AddRow("share uncongested", shares[analysis.Uncongested])
	t.AddRow("share moderately congested", shares[analysis.Moderate])
	t.AddRow("share highly congested", shares[analysis.High])
	return t
}

// AllFigures returns every table/figure in paper order, for the
// end-to-end reproduction command.
func AllFigures(r *analysis.Result) []*Table {
	return []*Table{
		Summary(r),
		Table2(),
		Figure4a(r, 15),
		Figure4b(r),
		Figure4c(r, 15),
		Figure5(r),
		Figure5c(r),
		Figure6(r),
		Figure7(r),
		Figure8(r),
		Figure9(r),
		Figure10(r),
		Figure11(r),
		Figure12(r),
		Figure13(r),
		Figure14(r),
		Figure15(r),
	}
}

// Reliability renders the E-WIND beacon-reliability metric per AP
// (companion analysis; see analysis.MeasureBeaconReliability).
func Reliability(rel *analysis.BeaconReliability) *Table {
	t := NewTable(
		fmt.Sprintf("Beacon reliability per AP (%d s windows)", rel.WindowSeconds),
		"ap", "windows", "mean_ratio", "sparkline")
	for _, ap := range rel.APs() {
		series := rel.Series[ap]
		vals := make([]float64, len(series))
		sum := 0.0
		for i, p := range series {
			vals[i] = p.Ratio()
			sum += vals[i]
		}
		mean := 0.0
		if len(series) > 0 {
			mean = sum / float64(len(series))
		}
		t.AddRow(ap.String(), len(series), mean, Sparkline(vals, 30))
	}
	return t
}
