package dot11

import (
	"encoding/binary"
)

// MgmtHeaderLen is the management frame MAC header length (same layout
// as a data frame header).
const MgmtHeaderLen = 24

// Management is the generic 802.11 management frame: the 24-byte
// header shared by all management subtypes plus a subtype-specific
// fixed part and a list of information elements.
type Management struct {
	FC       FrameControl
	Duration uint16
	DA       Addr // Addr1
	SA       Addr // Addr2
	BSSID    Addr // Addr3
	Seq      SeqControl
	Body     []byte // fixed fields + information elements
}

// Control implements Frame.
func (f *Management) Control() FrameControl { return f.FC }

// WireLen implements Frame.
func (f *Management) WireLen() int { return MgmtHeaderLen + len(f.Body) + 4 }

// AppendTo implements Frame.
func (f *Management) AppendTo(b []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, f.FC.Uint16())
	b = binary.LittleEndian.AppendUint16(b, f.Duration)
	b = append(b, f.DA[:]...)
	b = append(b, f.SA[:]...)
	b = append(b, f.BSSID[:]...)
	b = binary.LittleEndian.AppendUint16(b, f.Seq.Uint16())
	return append(b, f.Body...)
}

// DecodeFromBytes implements Frame. Body aliases data.
func (f *Management) DecodeFromBytes(data []byte) error {
	if len(data) < MgmtHeaderLen {
		return ErrTruncated
	}
	f.FC = FrameControlFromUint16(binary.LittleEndian.Uint16(data))
	if f.FC.Type != TypeMgmt {
		return ErrWrongType
	}
	f.Duration = binary.LittleEndian.Uint16(data[2:])
	copy(f.DA[:], data[4:10])
	copy(f.SA[:], data[10:16])
	copy(f.BSSID[:], data[16:22])
	f.Seq = SeqControlFromUint16(binary.LittleEndian.Uint16(data[22:24]))
	f.Body = data[MgmtHeaderLen:]
	return nil
}

// Information element IDs used by this reproduction.
const (
	ElemSSID           uint8 = 0
	ElemSupportedRates uint8 = 1
	ElemDSParameter    uint8 = 3
)

// Element is a type-length-value information element.
type Element struct {
	ID   uint8
	Data []byte
}

// AppendElement appends a TLV information element to b.
func AppendElement(b []byte, id uint8, data []byte) []byte {
	b = append(b, id, uint8(len(data)))
	return append(b, data...)
}

// ParseElements walks the information elements in body, calling fn for
// each. It stops early if fn returns false, and returns ErrTruncated
// on a malformed TLV.
func ParseElements(body []byte, fn func(Element) bool) error {
	for len(body) > 0 {
		if len(body) < 2 {
			return ErrTruncated
		}
		id, n := body[0], int(body[1])
		if len(body) < 2+n {
			return ErrTruncated
		}
		if !fn(Element{ID: id, Data: body[2 : 2+n]}) {
			return nil
		}
		body = body[2+n:]
	}
	return nil
}

// Beacon is a parsed beacon management frame. APs transmit beacons at
// ~100 ms intervals (Sec 5.1 of the paper; Equation 6 charges each one
// DIFS + DBEACON of channel busy-time).
type Beacon struct {
	Management
	Timestamp      uint64 // TSF timestamp, µs
	BeaconInterval uint16 // in 1024 µs time units
	Capability     uint16
	SSID           string
	Channel        uint8 // from the DS Parameter Set element
}

// BeaconIntervalTU is the standard 100-TU (102.4 ms) beacon interval.
const BeaconIntervalTU = 100

// NewBeacon builds a beacon for the given BSS.
func NewBeacon(bssid Addr, ssid string, channel uint8, timestamp uint64, seq uint16) *Beacon {
	b := &Beacon{
		Management: Management{
			FC:    FrameControl{Type: TypeMgmt, Subtype: SubtypeBeacon},
			DA:    Broadcast,
			SA:    bssid,
			BSSID: bssid,
			Seq:   SeqControl{Num: seq & 0xfff},
		},
		Timestamp:      timestamp,
		BeaconInterval: BeaconIntervalTU,
		Capability:     0x0001, // ESS
		SSID:           ssid,
		Channel:        channel,
	}
	b.Body = b.encodeBody()
	return b
}

func (f *Beacon) encodeBody() []byte {
	body := make([]byte, 0, 12+2+len(f.SSID)+2+4+3)
	body = binary.LittleEndian.AppendUint64(body, f.Timestamp)
	body = binary.LittleEndian.AppendUint16(body, f.BeaconInterval)
	body = binary.LittleEndian.AppendUint16(body, f.Capability)
	body = AppendElement(body, ElemSSID, []byte(f.SSID))
	body = AppendElement(body, ElemSupportedRates, []byte{0x82, 0x84, 0x8b, 0x96}) // 1,2,5.5,11 basic
	body = AppendElement(body, ElemDSParameter, []byte{f.Channel})
	return body
}

// DecodeFromBytes parses a beacon from a full management frame.
func (f *Beacon) DecodeFromBytes(data []byte) error {
	if err := f.Management.DecodeFromBytes(data); err != nil {
		return err
	}
	if f.FC.Subtype != SubtypeBeacon {
		return ErrWrongType
	}
	if len(f.Body) < 12 {
		return ErrTruncated
	}
	f.Timestamp = binary.LittleEndian.Uint64(f.Body)
	f.BeaconInterval = binary.LittleEndian.Uint16(f.Body[8:])
	f.Capability = binary.LittleEndian.Uint16(f.Body[10:])
	f.SSID, f.Channel = "", 0
	return ParseElements(f.Body[12:], func(e Element) bool {
		switch e.ID {
		case ElemSSID:
			f.SSID = string(e.Data)
		case ElemDSParameter:
			if len(e.Data) == 1 {
				f.Channel = e.Data[0]
			}
		}
		return true
	})
}

// NewAssocReq builds a minimal association request from sa to bssid.
func NewAssocReq(sa, bssid Addr, ssid string, seq uint16) *Management {
	body := make([]byte, 0, 4+2+len(ssid))
	body = binary.LittleEndian.AppendUint16(body, 0x0001) // capability
	body = binary.LittleEndian.AppendUint16(body, 10)     // listen interval
	body = AppendElement(body, ElemSSID, []byte(ssid))
	return &Management{
		FC: FrameControl{Type: TypeMgmt, Subtype: SubtypeAssocReq},
		DA: bssid, SA: sa, BSSID: bssid,
		Seq:  SeqControl{Num: seq & 0xfff},
		Body: body,
	}
}

// NewAssocResp builds a minimal association response.
func NewAssocResp(da, bssid Addr, aid uint16, seq uint16) *Management {
	body := make([]byte, 0, 6)
	body = binary.LittleEndian.AppendUint16(body, 0x0001) // capability
	body = binary.LittleEndian.AppendUint16(body, 0)      // status: success
	body = binary.LittleEndian.AppendUint16(body, aid|0xc000)
	return &Management{
		FC: FrameControl{Type: TypeMgmt, Subtype: SubtypeAssocResp},
		DA: da, SA: bssid, BSSID: bssid,
		Seq:  SeqControl{Num: seq & 0xfff},
		Body: body,
	}
}

// NewDisassoc builds a disassociation notification.
func NewDisassoc(da, sa, bssid Addr, reason uint16, seq uint16) *Management {
	body := binary.LittleEndian.AppendUint16(nil, reason)
	return &Management{
		FC: FrameControl{Type: TypeMgmt, Subtype: SubtypeDisassoc},
		DA: da, SA: sa, BSSID: bssid,
		Seq:  SeqControl{Num: seq & 0xfff},
		Body: body,
	}
}
