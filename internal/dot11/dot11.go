// Package dot11 implements encoding and decoding of IEEE 802.11 MAC
// frames: the frame-control word, the generic MAC header, the control
// frames used by DCF (RTS, CTS, ACK), data frames, and the management
// frames needed by this reproduction (beacon, association
// request/response, probe request/response, disassociation).
//
// The package follows the decoding idioms of gopacket's layers package:
// each frame type has DecodeFromBytes([]byte) error and
// AppendTo([]byte) []byte methods, decoding is allocation-free, and a
// top-level Parse dispatches on the frame-control word.
package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Addr is a 48-bit IEEE MAC address.
type Addr [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String implements fmt.Stringer ("aa:bb:cc:dd:ee:ff").
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IsBroadcast reports whether a is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// IsGroup reports whether a is a group (multicast or broadcast)
// address, i.e. has the I/G bit set. Group-addressed data frames are
// not acknowledged (Sec 3 of the paper).
func (a Addr) IsGroup() bool { return a[0]&0x01 != 0 }

// AddrFromUint64 builds an address from the low 48 bits of v. The
// simulator uses this to mint locally-administered unicast addresses.
func AddrFromUint64(v uint64) Addr {
	var a Addr
	for i := 5; i >= 0; i-- {
		a[i] = byte(v)
		v >>= 8
	}
	a[0] &^= 0x01 // unicast
	a[0] |= 0x02  // locally administered
	return a
}

// Type is the 2-bit frame type from the frame-control word.
type Type uint8

// Frame types.
const (
	TypeMgmt Type = 0
	TypeCtrl Type = 1
	TypeData Type = 2
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeMgmt:
		return "mgmt"
	case TypeCtrl:
		return "ctrl"
	case TypeData:
		return "data"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Subtype is the 4-bit frame subtype from the frame-control word.
type Subtype uint8

// Management subtypes.
const (
	SubtypeAssocReq  Subtype = 0
	SubtypeAssocResp Subtype = 1
	SubtypeProbeReq  Subtype = 4
	SubtypeProbeResp Subtype = 5
	SubtypeBeacon    Subtype = 8
	SubtypeDisassoc  Subtype = 10
	SubtypeAuth      Subtype = 11
	SubtypeDeauth    Subtype = 12
)

// Control subtypes.
const (
	SubtypeRTS Subtype = 11
	SubtypeCTS Subtype = 12
	SubtypeACK Subtype = 13
)

// Data subtypes.
const (
	SubtypeData     Subtype = 0
	SubtypeNullData Subtype = 4
)

// FrameControl is the 16-bit frame control word that begins every
// 802.11 MAC frame.
type FrameControl struct {
	Version   uint8 // protocol version, always 0
	Type      Type
	Subtype   Subtype
	ToDS      bool
	FromDS    bool
	MoreFrag  bool
	Retry     bool // set on retransmissions; the analysis relies on it
	PwrMgmt   bool
	MoreData  bool
	Protected bool
	Order     bool
}

// Uint16 packs the frame control word into its wire representation.
func (fc FrameControl) Uint16() uint16 {
	v := uint16(fc.Version&0x3) |
		uint16(fc.Type&0x3)<<2 |
		uint16(fc.Subtype&0xf)<<4
	if fc.ToDS {
		v |= 1 << 8
	}
	if fc.FromDS {
		v |= 1 << 9
	}
	if fc.MoreFrag {
		v |= 1 << 10
	}
	if fc.Retry {
		v |= 1 << 11
	}
	if fc.PwrMgmt {
		v |= 1 << 12
	}
	if fc.MoreData {
		v |= 1 << 13
	}
	if fc.Protected {
		v |= 1 << 14
	}
	if fc.Order {
		v |= 1 << 15
	}
	return v
}

// FrameControlFromUint16 unpacks a wire frame-control word.
func FrameControlFromUint16(v uint16) FrameControl {
	return FrameControl{
		Version:   uint8(v & 0x3),
		Type:      Type(v >> 2 & 0x3),
		Subtype:   Subtype(v >> 4 & 0xf),
		ToDS:      v&(1<<8) != 0,
		FromDS:    v&(1<<9) != 0,
		MoreFrag:  v&(1<<10) != 0,
		Retry:     v&(1<<11) != 0,
		PwrMgmt:   v&(1<<12) != 0,
		MoreData:  v&(1<<13) != 0,
		Protected: v&(1<<14) != 0,
		Order:     v&(1<<15) != 0,
	}
}

// String implements fmt.Stringer ("data/0 retry" etc.).
func (fc FrameControl) String() string {
	s := fmt.Sprintf("%v/%d", fc.Type, fc.Subtype)
	if fc.Retry {
		s += " retry"
	}
	return s
}

// Frame decode errors.
var (
	ErrTruncated  = errors.New("dot11: frame truncated")
	ErrBadFCS     = errors.New("dot11: FCS mismatch")
	ErrWrongType  = errors.New("dot11: frame control does not match frame type")
	ErrBadVersion = errors.New("dot11: unsupported protocol version")
)

// FCS computes the IEEE CRC-32 frame check sequence over frame (the
// MAC header and body, FCS excluded).
func FCS(frame []byte) uint32 { return crc32.ChecksumIEEE(frame) }

// AppendFCS appends the 4-byte little-endian FCS of b to b.
func AppendFCS(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, FCS(b))
}

// CheckFCS verifies that the final 4 bytes of frame are the correct FCS
// for the preceding bytes. It returns the frame without the FCS.
func CheckFCS(frame []byte) ([]byte, error) {
	if len(frame) < 4 {
		return nil, ErrTruncated
	}
	body, fcs := frame[:len(frame)-4], binary.LittleEndian.Uint32(frame[len(frame)-4:])
	if FCS(body) != fcs {
		return nil, ErrBadFCS
	}
	return body, nil
}
