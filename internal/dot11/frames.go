package dot11

import (
	"encoding/binary"

	"wlan80211/internal/phy"
)

// Frame is the interface implemented by every decodable 802.11 frame
// type in this package.
type Frame interface {
	// Control returns the frame-control word.
	Control() FrameControl
	// AppendTo appends the encoded frame (without FCS) to b and
	// returns the extended slice.
	AppendTo(b []byte) []byte
	// DecodeFromBytes parses the frame (without FCS) from data.
	DecodeFromBytes(data []byte) error
	// WireLen returns the encoded length in bytes including the
	// 4-byte FCS — the "frame size" the paper's size classes and
	// airtime computations use.
	WireLen() int
}

// --- Control frames -------------------------------------------------

// RTS is a Request-To-Send control frame (20 bytes on the wire).
type RTS struct {
	FC       FrameControl
	Duration uint16 // NAV: µs remaining after this frame
	RA       Addr   // receiver
	TA       Addr   // transmitter
}

// NewRTS builds an RTS addressed from ta to ra with the given NAV.
func NewRTS(ra, ta Addr, duration uint16) *RTS {
	return &RTS{FC: FrameControl{Type: TypeCtrl, Subtype: SubtypeRTS}, Duration: duration, RA: ra, TA: ta}
}

// Control implements Frame.
func (f *RTS) Control() FrameControl { return f.FC }

// WireLen implements Frame: 2+2+6+6 + FCS = 20.
func (f *RTS) WireLen() int { return 20 }

// AppendTo implements Frame.
func (f *RTS) AppendTo(b []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, f.FC.Uint16())
	b = binary.LittleEndian.AppendUint16(b, f.Duration)
	b = append(b, f.RA[:]...)
	return append(b, f.TA[:]...)
}

// DecodeFromBytes implements Frame.
func (f *RTS) DecodeFromBytes(data []byte) error {
	if len(data) < 16 {
		return ErrTruncated
	}
	f.FC = FrameControlFromUint16(binary.LittleEndian.Uint16(data))
	if f.FC.Type != TypeCtrl || f.FC.Subtype != SubtypeRTS {
		return ErrWrongType
	}
	f.Duration = binary.LittleEndian.Uint16(data[2:])
	copy(f.RA[:], data[4:10])
	copy(f.TA[:], data[10:16])
	return nil
}

// CTS is a Clear-To-Send control frame (14 bytes on the wire).
type CTS struct {
	FC       FrameControl
	Duration uint16
	RA       Addr
}

// NewCTS builds a CTS addressed to ra with the given NAV.
func NewCTS(ra Addr, duration uint16) *CTS {
	return &CTS{FC: FrameControl{Type: TypeCtrl, Subtype: SubtypeCTS}, Duration: duration, RA: ra}
}

// Control implements Frame.
func (f *CTS) Control() FrameControl { return f.FC }

// WireLen implements Frame: 2+2+6 + FCS = 14.
func (f *CTS) WireLen() int { return 14 }

// AppendTo implements Frame.
func (f *CTS) AppendTo(b []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, f.FC.Uint16())
	b = binary.LittleEndian.AppendUint16(b, f.Duration)
	return append(b, f.RA[:]...)
}

// DecodeFromBytes implements Frame.
func (f *CTS) DecodeFromBytes(data []byte) error {
	if len(data) < 10 {
		return ErrTruncated
	}
	f.FC = FrameControlFromUint16(binary.LittleEndian.Uint16(data))
	if f.FC.Type != TypeCtrl || f.FC.Subtype != SubtypeCTS {
		return ErrWrongType
	}
	f.Duration = binary.LittleEndian.Uint16(data[2:])
	copy(f.RA[:], data[4:10])
	return nil
}

// ACK is an acknowledgment control frame (14 bytes on the wire).
type ACK struct {
	FC       FrameControl
	Duration uint16
	RA       Addr
}

// NewACK builds an ACK addressed to ra.
func NewACK(ra Addr) *ACK {
	return &ACK{FC: FrameControl{Type: TypeCtrl, Subtype: SubtypeACK}, RA: ra}
}

// Control implements Frame.
func (f *ACK) Control() FrameControl { return f.FC }

// WireLen implements Frame: 14.
func (f *ACK) WireLen() int { return 14 }

// AppendTo implements Frame.
func (f *ACK) AppendTo(b []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, f.FC.Uint16())
	b = binary.LittleEndian.AppendUint16(b, f.Duration)
	return append(b, f.RA[:]...)
}

// DecodeFromBytes implements Frame.
func (f *ACK) DecodeFromBytes(data []byte) error {
	if len(data) < 10 {
		return ErrTruncated
	}
	f.FC = FrameControlFromUint16(binary.LittleEndian.Uint16(data))
	if f.FC.Type != TypeCtrl || f.FC.Subtype != SubtypeACK {
		return ErrWrongType
	}
	f.Duration = binary.LittleEndian.Uint16(data[2:])
	copy(f.RA[:], data[4:10])
	return nil
}

// --- Data frames ----------------------------------------------------

// Data is an 802.11 data frame. Address semantics depend on the DS
// bits; for the infrastructure traffic this reproduction generates:
//
//	ToDS=1:  Addr1=BSSID, Addr2=SA (client), Addr3=DA
//	FromDS=1: Addr1=DA (client), Addr2=BSSID, Addr3=SA
type Data struct {
	FC       FrameControl
	Duration uint16
	Addr1    Addr
	Addr2    Addr
	Addr3    Addr
	Seq      SeqControl
	Body     []byte
}

// SeqControl is the 16-bit sequence control field: a 12-bit sequence
// number and 4-bit fragment number.
type SeqControl struct {
	Frag uint8  // 0..15
	Num  uint16 // 0..4095
}

// Uint16 packs the sequence-control field.
func (s SeqControl) Uint16() uint16 { return uint16(s.Frag&0xf) | s.Num<<4 }

// SeqControlFromUint16 unpacks a wire sequence-control field.
func SeqControlFromUint16(v uint16) SeqControl {
	return SeqControl{Frag: uint8(v & 0xf), Num: v >> 4}
}

// DataHeaderLen is the length of a (non-QoS, 3-address) data frame MAC
// header in bytes.
const DataHeaderLen = 24

// NewData builds a unicast data frame carrying body.
func NewData(a1, a2, a3 Addr, seq uint16, body []byte) *Data {
	return &Data{
		FC:    FrameControl{Type: TypeData, Subtype: SubtypeData},
		Addr1: a1, Addr2: a2, Addr3: a3,
		Seq:  SeqControl{Num: seq & 0xfff},
		Body: body,
	}
}

// Control implements Frame.
func (f *Data) Control() FrameControl { return f.FC }

// WireLen implements Frame: 24-byte header + body + 4-byte FCS.
func (f *Data) WireLen() int { return DataHeaderLen + len(f.Body) + 4 }

// TA returns the transmitter address (Addr2).
func (f *Data) TA() Addr { return f.Addr2 }

// RA returns the receiver address (Addr1).
func (f *Data) RA() Addr { return f.Addr1 }

// AppendTo implements Frame.
func (f *Data) AppendTo(b []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, f.FC.Uint16())
	b = binary.LittleEndian.AppendUint16(b, f.Duration)
	b = append(b, f.Addr1[:]...)
	b = append(b, f.Addr2[:]...)
	b = append(b, f.Addr3[:]...)
	b = binary.LittleEndian.AppendUint16(b, f.Seq.Uint16())
	return append(b, f.Body...)
}

// DecodeFromBytes implements Frame. The body slice aliases data.
func (f *Data) DecodeFromBytes(data []byte) error {
	if len(data) < DataHeaderLen {
		return ErrTruncated
	}
	f.FC = FrameControlFromUint16(binary.LittleEndian.Uint16(data))
	if f.FC.Type != TypeData {
		return ErrWrongType
	}
	f.Duration = binary.LittleEndian.Uint16(data[2:])
	copy(f.Addr1[:], data[4:10])
	copy(f.Addr2[:], data[10:16])
	copy(f.Addr3[:], data[16:22])
	f.Seq = SeqControlFromUint16(binary.LittleEndian.Uint16(data[22:24]))
	f.Body = data[DataHeaderLen:]
	return nil
}

// --- NAV helpers ----------------------------------------------------

// NAVForData returns the Duration value for a data frame: the time for
// the following SIFS + ACK exchange. Group-addressed frames carry 0.
func NAVForData(ra Addr, ackRate phy.Rate) uint16 {
	if ra.IsGroup() {
		return 0
	}
	return uint16(phy.SIFS + phy.AckDuration(ackRate))
}

// NAVForRTS returns the Duration value for an RTS protecting a data
// frame of dataBytes at dataRate: 3*SIFS + CTS + DATA + ACK.
func NAVForRTS(dataBytes int, dataRate phy.Rate) uint16 {
	nav := 3*phy.SIFS +
		phy.CtsDuration(phy.ControlRate) +
		phy.Airtime(dataBytes, dataRate) +
		phy.AckDuration(phy.ControlRate)
	if nav > 0xffff {
		nav = 0xffff
	}
	return uint16(nav)
}

// NAVForCTS derives a CTS Duration from the soliciting RTS Duration:
// the RTS NAV minus SIFS and the CTS airtime.
func NAVForCTS(rtsDuration uint16) uint16 {
	d := int64(rtsDuration) - int64(phy.SIFS) - int64(phy.CtsDuration(phy.ControlRate))
	if d < 0 {
		d = 0
	}
	return uint16(d)
}
