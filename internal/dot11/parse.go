package dot11

import "encoding/binary"

// Parsed is the result of Parse: the frame-control word plus the
// decoded frame, one of *RTS, *CTS, *ACK, *Data, or *Management.
type Parsed struct {
	FC    FrameControl
	Frame Frame
}

// Parse decodes an 802.11 MAC frame (without FCS) by dispatching on
// the frame-control word. Snap-length truncated frames parse as long
// as the fixed header survives (the paper captured only 250 bytes per
// frame; Sec 4.2).
func Parse(data []byte) (Parsed, error) {
	if len(data) < 2 {
		return Parsed{}, ErrTruncated
	}
	fc := FrameControlFromUint16(binary.LittleEndian.Uint16(data))
	if fc.Version != 0 {
		return Parsed{}, ErrBadVersion
	}
	var f Frame
	switch fc.Type {
	case TypeCtrl:
		switch fc.Subtype {
		case SubtypeRTS:
			f = new(RTS)
		case SubtypeCTS:
			f = new(CTS)
		case SubtypeACK:
			f = new(ACK)
		default:
			return Parsed{}, ErrWrongType
		}
	case TypeData:
		f = new(Data)
	case TypeMgmt:
		if fc.Subtype == SubtypeBeacon {
			f = new(Beacon)
		} else {
			f = new(Management)
		}
	default:
		return Parsed{}, ErrWrongType
	}
	if err := f.DecodeFromBytes(data); err != nil {
		return Parsed{}, err
	}
	return Parsed{FC: fc, Frame: f}, nil
}

// Encode serializes a frame and appends its FCS, producing the
// complete over-the-air MAC frame.
func Encode(f Frame) []byte {
	return AppendFCS(f.AppendTo(make([]byte, 0, f.WireLen())))
}

// TransmitterOf returns the transmitter address of a parsed frame and
// whether it has one (CTS and ACK frames carry no transmitter
// address — a fact the paper's atomicity-based estimators exploit in
// reverse, inferring the transmitter from the preceding frame).
func TransmitterOf(f Frame) (Addr, bool) {
	switch t := f.(type) {
	case *RTS:
		return t.TA, true
	case *Data:
		return t.Addr2, true
	case *Management:
		return t.SA, true
	case *Beacon:
		return t.SA, true
	}
	return Addr{}, false
}

// ReceiverOf returns the receiver address of a parsed frame.
func ReceiverOf(f Frame) Addr {
	switch t := f.(type) {
	case *RTS:
		return t.RA
	case *CTS:
		return t.RA
	case *ACK:
		return t.RA
	case *Data:
		return t.Addr1
	case *Management:
		return t.DA
	case *Beacon:
		return t.DA
	}
	return Addr{}
}
