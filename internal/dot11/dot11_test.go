package dot11

import (
	"bytes"
	"testing"
	"testing/quick"

	"wlan80211/internal/phy"
)

func addr(b byte) Addr { return Addr{0x02, 0, 0, 0, 0, b} }

func TestAddrString(t *testing.T) {
	a := Addr{0xaa, 0xbb, 0xcc, 0x01, 0x02, 0x03}
	if got := a.String(); got != "aa:bb:cc:01:02:03" {
		t.Errorf("String() = %q", got)
	}
}

func TestAddrGroupBits(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsGroup() {
		t.Error("broadcast must be group+broadcast")
	}
	if addr(1).IsGroup() {
		t.Error("unicast address must not be group")
	}
	m := Addr{0x01, 0x00, 0x5e, 0, 0, 1}
	if !m.IsGroup() || m.IsBroadcast() {
		t.Error("multicast must be group but not broadcast")
	}
}

func TestAddrFromUint64(t *testing.T) {
	a := AddrFromUint64(0x123456789a)
	if a.IsGroup() {
		t.Error("minted addresses must be unicast")
	}
	if a[0]&0x02 == 0 {
		t.Error("minted addresses must be locally administered")
	}
	b := AddrFromUint64(0x123456789b)
	if a == b {
		t.Error("distinct seeds must give distinct addresses")
	}
}

func TestFrameControlRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		fc := FrameControlFromUint16(v)
		return fc.Uint16() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameControlFields(t *testing.T) {
	fc := FrameControl{Type: TypeData, Subtype: SubtypeData, ToDS: true, Retry: true}
	got := FrameControlFromUint16(fc.Uint16())
	if got != fc {
		t.Errorf("round trip: %+v != %+v", got, fc)
	}
	if fc.String() != "data/0 retry" {
		t.Errorf("String() = %q", fc.String())
	}
}

func TestSeqControlRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		return SeqControlFromUint16(v).Uint16() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFCSRoundTrip(t *testing.T) {
	frame := AppendFCS([]byte{1, 2, 3, 4, 5})
	body, err := CheckFCS(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, []byte{1, 2, 3, 4, 5}) {
		t.Error("body mismatch")
	}
	frame[2] ^= 0xff
	if _, err := CheckFCS(frame); err != ErrBadFCS {
		t.Errorf("corrupted frame: got %v, want ErrBadFCS", err)
	}
	if _, err := CheckFCS([]byte{1, 2}); err != ErrTruncated {
		t.Errorf("short frame: got %v, want ErrTruncated", err)
	}
}

func roundTrip(t *testing.T, f Frame, fresh Frame) Frame {
	t.Helper()
	wire := Encode(f)
	if len(wire) != f.WireLen() {
		t.Fatalf("WireLen = %d but encoded %d bytes", f.WireLen(), len(wire))
	}
	body, err := CheckFCS(wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.DecodeFromBytes(body); err != nil {
		t.Fatal(err)
	}
	return fresh
}

func TestRTSRoundTrip(t *testing.T) {
	f := NewRTS(addr(1), addr(2), 1234)
	got := roundTrip(t, f, new(RTS)).(*RTS)
	if *got != *f {
		t.Errorf("round trip: %+v != %+v", got, f)
	}
	if f.WireLen() != 20 {
		t.Errorf("RTS wire length = %d, want 20", f.WireLen())
	}
}

func TestCTSRoundTrip(t *testing.T) {
	f := NewCTS(addr(3), 999)
	got := roundTrip(t, f, new(CTS)).(*CTS)
	if *got != *f {
		t.Errorf("round trip: %+v != %+v", got, f)
	}
	if f.WireLen() != 14 {
		t.Errorf("CTS wire length = %d, want 14", f.WireLen())
	}
}

func TestACKRoundTrip(t *testing.T) {
	f := NewACK(addr(4))
	got := roundTrip(t, f, new(ACK)).(*ACK)
	if *got != *f {
		t.Errorf("round trip: %+v != %+v", got, f)
	}
	if f.WireLen() != 14 {
		t.Errorf("ACK wire length = %d, want 14", f.WireLen())
	}
}

func TestDataRoundTrip(t *testing.T) {
	body := bytes.Repeat([]byte{0xab}, 700)
	f := NewData(addr(1), addr(2), addr(3), 77, body)
	f.FC.ToDS = true
	f.FC.Retry = true
	got := roundTrip(t, f, new(Data)).(*Data)
	if got.FC != f.FC || got.Addr1 != f.Addr1 || got.Addr2 != f.Addr2 ||
		got.Addr3 != f.Addr3 || got.Seq != f.Seq || !bytes.Equal(got.Body, body) {
		t.Error("data round trip mismatch")
	}
	if f.WireLen() != 24+700+4 {
		t.Errorf("WireLen = %d", f.WireLen())
	}
	if f.TA() != addr(2) || f.RA() != addr(1) {
		t.Error("TA/RA accessors wrong")
	}
}

func TestDataDecodeErrors(t *testing.T) {
	var d Data
	if err := d.DecodeFromBytes(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	// A 24-byte buffer whose frame control says "control frame".
	wrong := make([]byte, 24)
	copy(wrong, NewRTS(addr(1), addr(2), 0).AppendTo(nil))
	if err := d.DecodeFromBytes(wrong); err != ErrWrongType {
		t.Errorf("wrong type: %v", err)
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	f := NewBeacon(addr(9), "ietf62", 6, 123456789, 42)
	wire := Encode(f)
	body, err := CheckFCS(wire)
	if err != nil {
		t.Fatal(err)
	}
	var got Beacon
	if err := got.DecodeFromBytes(body); err != nil {
		t.Fatal(err)
	}
	if got.SSID != "ietf62" || got.Channel != 6 || got.Timestamp != 123456789 ||
		got.BeaconInterval != BeaconIntervalTU || got.BSSID != addr(9) {
		t.Errorf("beacon mismatch: %+v", got)
	}
}

func TestBeaconTruncated(t *testing.T) {
	var b Beacon
	m := Management{FC: FrameControl{Type: TypeMgmt, Subtype: SubtypeBeacon}, Body: []byte{1, 2}}
	if err := b.DecodeFromBytes(m.AppendTo(nil)); err != ErrTruncated {
		t.Errorf("got %v, want ErrTruncated", err)
	}
}

func TestMgmtFrames(t *testing.T) {
	req := NewAssocReq(addr(1), addr(2), "ssid", 5)
	var got Management
	if err := got.DecodeFromBytes(req.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	if got.FC.Subtype != SubtypeAssocReq || got.SA != addr(1) || got.BSSID != addr(2) {
		t.Error("assoc req mismatch")
	}
	resp := NewAssocResp(addr(1), addr(2), 7, 6)
	if resp.FC.Subtype != SubtypeAssocResp {
		t.Error("assoc resp subtype")
	}
	dis := NewDisassoc(addr(1), addr(2), addr(2), 8, 7)
	if dis.FC.Subtype != SubtypeDisassoc {
		t.Error("disassoc subtype")
	}
}

func TestParseElements(t *testing.T) {
	body := AppendElement(nil, ElemSSID, []byte("x"))
	body = AppendElement(body, ElemDSParameter, []byte{11})
	var ids []uint8
	err := ParseElements(body, func(e Element) bool {
		ids = append(ids, e.ID)
		return true
	})
	if err != nil || len(ids) != 2 {
		t.Fatalf("err=%v ids=%v", err, ids)
	}
	// Early stop.
	count := 0
	ParseElements(body, func(Element) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
	// Malformed.
	if err := ParseElements([]byte{0, 200, 1}, func(Element) bool { return true }); err != ErrTruncated {
		t.Errorf("malformed: %v", err)
	}
	if err := ParseElements([]byte{5}, func(Element) bool { return true }); err != ErrTruncated {
		t.Errorf("dangling byte: %v", err)
	}
}

func TestParseDispatch(t *testing.T) {
	frames := []Frame{
		NewRTS(addr(1), addr(2), 100),
		NewCTS(addr(1), 50),
		NewACK(addr(1)),
		NewData(addr(1), addr(2), addr(3), 1, []byte("hi")),
		NewBeacon(addr(4), "s", 1, 1, 1),
		NewAssocReq(addr(1), addr(2), "s", 2),
	}
	wantTypes := []string{"*dot11.RTS", "*dot11.CTS", "*dot11.ACK", "*dot11.Data", "*dot11.Beacon", "*dot11.Management"}
	for i, f := range frames {
		p, err := Parse(f.AppendTo(nil))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got := typeName(p.Frame); got != wantTypes[i] {
			t.Errorf("frame %d parsed as %s, want %s", i, got, wantTypes[i])
		}
		if p.FC != f.Control() {
			t.Errorf("frame %d FC mismatch", i)
		}
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case *RTS:
		return "*dot11.RTS"
	case *CTS:
		return "*dot11.CTS"
	case *ACK:
		return "*dot11.ACK"
	case *Beacon:
		return "*dot11.Beacon"
	case *Data:
		return "*dot11.Data"
	case *Management:
		return "*dot11.Management"
	}
	return "?"
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{1}); err != ErrTruncated {
		t.Errorf("1 byte: %v", err)
	}
	// Version 1 frame.
	if _, err := Parse([]byte{0x01, 0x00, 0, 0}); err != ErrBadVersion {
		t.Errorf("bad version: %v", err)
	}
	// Reserved control subtype 0.
	if _, err := Parse([]byte{0x04, 0x00, 0, 0}); err != ErrWrongType {
		t.Errorf("reserved ctrl subtype: %v", err)
	}
}

func TestTransmitterReceiverOf(t *testing.T) {
	d := NewData(addr(1), addr(2), addr(3), 0, nil)
	if ta, ok := TransmitterOf(d); !ok || ta != addr(2) {
		t.Error("data TA")
	}
	if ReceiverOf(d) != addr(1) {
		t.Error("data RA")
	}
	r := NewRTS(addr(1), addr(2), 0)
	if ta, ok := TransmitterOf(r); !ok || ta != addr(2) {
		t.Error("rts TA")
	}
	a := NewACK(addr(1))
	if _, ok := TransmitterOf(a); ok {
		t.Error("ACK has no transmitter address")
	}
	c := NewCTS(addr(1), 0)
	if _, ok := TransmitterOf(c); ok {
		t.Error("CTS has no transmitter address")
	}
	if ReceiverOf(a) != addr(1) || ReceiverOf(c) != addr(1) {
		t.Error("ctrl RA")
	}
	b := NewBeacon(addr(5), "s", 1, 0, 0)
	if ta, ok := TransmitterOf(b); !ok || ta != addr(5) {
		t.Error("beacon TA")
	}
	if ReceiverOf(b) != Broadcast {
		t.Error("beacon RA must be broadcast")
	}
}

func TestNAV(t *testing.T) {
	// Data NAV: SIFS + ACK@1Mbps = 10+304 = 314.
	if got := NAVForData(addr(1), phy.ControlRate); got != 314 {
		t.Errorf("NAVForData = %d, want 314", got)
	}
	if got := NAVForData(Broadcast, phy.ControlRate); got != 0 {
		t.Errorf("broadcast NAV = %d, want 0", got)
	}
	// RTS NAV for 1000B at 11 Mbps: 3*10 + 304 + (192+ceil(8000/11)) + 304.
	want := uint16(30 + 304 + 192 + 728 + 304)
	if got := NAVForRTS(1000, phy.Rate11Mbps); got != want {
		t.Errorf("NAVForRTS = %d, want %d", got, want)
	}
	// CTS NAV is RTS NAV minus SIFS+CTS.
	if got := NAVForCTS(want); got != want-10-304 {
		t.Errorf("NAVForCTS = %d", got)
	}
	if got := NAVForCTS(5); got != 0 {
		t.Errorf("NAVForCTS underflow = %d, want 0", got)
	}
	// Huge frame at 1 Mbps saturates the 16-bit field.
	if got := NAVForRTS(20000, phy.Rate1Mbps); got != 0xffff {
		t.Errorf("NAV must saturate, got %d", got)
	}
}

func TestParseSnapTruncatedData(t *testing.T) {
	// The paper captured 250-byte snapshots; a 1400-byte data frame
	// truncated to 250 bytes must still parse its header.
	f := NewData(addr(1), addr(2), addr(3), 9, bytes.Repeat([]byte{1}, 1400))
	wire := f.AppendTo(nil)[:250]
	p, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Frame.(*Data)
	if d.Seq.Num != 9 || len(d.Body) != 250-24 {
		t.Errorf("truncated parse: seq=%d len=%d", d.Seq.Num, len(d.Body))
	}
}

// TestParseNeverPanics throws random bytes at the parser: it must
// return an error or a frame, never panic — a sniffer feeds it
// whatever the air delivered.
func TestParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %x: %v", data, r)
			}
		}()
		p, err := Parse(data)
		if err == nil && p.Frame == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodersNeverPanic drives each frame decoder over random bytes.
func TestDecodersNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decoder panicked: %v", r)
			}
		}()
		_ = new(RTS).DecodeFromBytes(data)
		_ = new(CTS).DecodeFromBytes(data)
		_ = new(ACK).DecodeFromBytes(data)
		_ = new(Data).DecodeFromBytes(data)
		_ = new(Management).DecodeFromBytes(data)
		_ = new(Beacon).DecodeFromBytes(data)
		_ = ParseElements(data, func(Element) bool { return true })
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEncodedFramesRoundTripThroughParse is the closure property: any
// frame this package encodes, Parse decodes to the same frame type and
// addresses.
func TestEncodedFramesRoundTripThroughParse(t *testing.T) {
	f := func(a, b uint64, dur uint16, n uint16) bool {
		aa, bb := AddrFromUint64(a), AddrFromUint64(b)
		frames := []Frame{
			NewRTS(aa, bb, dur),
			NewCTS(aa, dur),
			NewACK(aa),
			NewData(aa, bb, aa, n, make([]byte, int(n%1500))),
			NewBeacon(aa, "x", 6, uint64(dur), n),
		}
		for _, fr := range frames {
			p, err := Parse(fr.AppendTo(nil))
			if err != nil {
				return false
			}
			if p.FC != fr.Control() {
				return false
			}
			if ReceiverOf(p.Frame) != ReceiverOf(fr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
