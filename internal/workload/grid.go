package workload

import (
	"fmt"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
)

// Grid describes a multi-cell deployment: an N×M grid of AP cells with
// 1/6/11 channel reuse (so co-channel cells interfere), a mixed
// 802.11b / 802.11b-g station population, mobile stations that roam
// between cells, and several sniffers per channel whose overlapping
// observations exercise the streaming dedup window. It goes beyond
// the paper's single-hall scenarios toward the multi-cell enterprise
// deployments its conclusions point at.
type Grid struct {
	// Rows and Cols shape the AP grid.
	Rows, Cols int
	// Spacing is the distance in meters between adjacent AP centers;
	// stations scatter within ±40% of it around their AP.
	Spacing float64
	// Channels is the reuse pattern striped across cells in row-major
	// order (default: the orthogonal 1/6/11 set). A 2×2 grid therefore
	// puts two cells on one channel — co-channel interference.
	Channels []phy.Channel
	// StationsPerCell is the static population of each cell.
	StationsPerCell int
	// MobileStations roam the whole grid on waypoint paths,
	// reassociating to the nearest AP every RoamSec.
	MobileStations int
	// GFraction of stations are 802.11b/g dual-mode; the rest are
	// b-only (and blind to OFDM NAVs — mixed-mode interference).
	GFraction float64
	// Load is the per-station traffic multiplier.
	Load float64
	// DurationSec is the simulated run length.
	DurationSec int
	// SniffersPerChannel places this many sniffers on every channel in
	// use; ≥2 produces the duplicate observations the dedup collapses.
	SniffersPerChannel int
	// RoamSec is the mobile reassociation check cadence.
	RoamSec int
	// SpeedMPS is the mobile walking speed.
	SpeedMPS float64
	// RTSFraction of stations use RTS/CTS.
	RTSFraction float64
	// Seed makes the scenario deterministic.
	Seed int64
	// Env overrides the radio environment (nil keeps the default).
	// Campus-scale grids use CampusEnvironment: deterministic
	// (shadowing-free) radios engage the simulator's spatial culling,
	// which is what makes 16×16 feasible.
	Env *phy.Environment
}

// DefaultGrid returns the 2×2 reference grid: four cells on three
// channels (one channel reused), half the population dual-mode, four
// roaming mobiles, and two sniffers per channel.
func DefaultGrid() Grid {
	return Grid{
		Rows: 2, Cols: 2,
		Spacing:            22,
		StationsPerCell:    6,
		MobileStations:     4,
		GFraction:          0.5,
		Load:               2.0,
		DurationSec:        40,
		SniffersPerChannel: 2,
		RoamSec:            2,
		SpeedMPS:           3,
		RTSFraction:        0.05,
		Seed:               17,
	}
}

// DenseGrid returns a 3×3 grid with every channel reused three times —
// the heavier interference variant.
func DenseGrid() Grid {
	g := DefaultGrid()
	g.Rows, g.Cols = 3, 3
	g.StationsPerCell = 4
	g.MobileStations = 6
	g.Spacing = 18
	g.Seed = 19
	return g
}

// CampusEnvironment is the outdoor/large-venue radio model of the
// campus-scale grids: steeper log-distance attenuation (exponent 4 —
// cluttered propagation between buildings and halls) and no lognormal
// shadowing. σ = 0 makes the radio fully deterministic, which lets
// the simulator cull interference spatially (sim sparse mode) instead
// of evaluating every node pair per transmission.
func CampusEnvironment() phy.Environment {
	env := phy.DefaultEnvironment()
	env.PathLossExponent = 4.0
	env.ShadowingSigmaDB = 0
	return env
}

// Grid256 returns the campus-scale 16×16 grid: 256 APs on the 1/6/11
// reuse stripe, 1000+ stations (half dual-mode), two dozen mobiles
// roaming the whole campus, and two sniffers per channel. It runs
// under CampusEnvironment, so the simulator serves it from sparse
// spatially-culled link rows — per-transmission work scales with the
// ~100-node interference neighborhood, not the ~1300-node campus.
func Grid256() Grid {
	env := CampusEnvironment()
	return Grid{
		Rows: 16, Cols: 16,
		Spacing:            40,
		StationsPerCell:    4,
		MobileStations:     24,
		GFraction:          0.5,
		Load:               1.0,
		DurationSec:        12,
		SniffersPerChannel: 2,
		RoamSec:            2,
		SpeedMPS:           3,
		RTSFraction:        0.05,
		Seed:               29,
		Env:                &env,
	}
}

// Scale shrinks or grows the grid's duration and population together,
// matching Session.Scale's behaviour.
func (g Grid) Scale(f float64) Grid {
	if f <= 0 {
		return g
	}
	g.DurationSec = int(float64(g.DurationSec) * f)
	if g.DurationSec < 10 {
		g.DurationSec = 10
	}
	g.StationsPerCell = int(float64(g.StationsPerCell)*f + 0.5)
	if g.StationsPerCell < 2 {
		g.StationsPerCell = 2
	}
	g.MobileStations = int(float64(g.MobileStations)*f + 0.5)
	if g.MobileStations < 1 {
		g.MobileStations = 1
	}
	return g
}

// Cells returns the number of AP cells.
func (g Grid) Cells() int { return g.Rows * g.Cols }

// cellChannel is the reuse pattern: channels striped row-major.
func (g Grid) cellChannel(cell int) phy.Channel {
	if len(g.Channels) == 0 {
		return phy.OrthogonalChannels[cell%len(phy.OrthogonalChannels)]
	}
	return g.Channels[cell%len(g.Channels)]
}

// GridBuilt is a constructed grid scenario ready to run.
type GridBuilt struct {
	Net      *sim.Network
	APs      []*sim.Node
	Mobiles  []*sim.Node
	Sniffers []*sniffer.Sniffer
	Grid     Grid
}

// Build constructs the grid's network: APs, static and mobile
// stations, roaming schedule, and sniffers. Call Run or RunStream to
// execute it.
func (g Grid) Build() (*GridBuilt, error) {
	if g.Rows < 1 || g.Cols < 1 {
		return nil, fmt.Errorf("workload: grid needs ≥1×1 cells, got %d×%d", g.Rows, g.Cols)
	}
	if g.DurationSec <= 0 {
		return nil, fmt.Errorf("workload: grid has no duration")
	}
	if g.Spacing <= 0 {
		g.Spacing = 22
	}
	if g.Load <= 0 {
		g.Load = 1
	}
	if g.SniffersPerChannel < 1 {
		g.SniffersPerChannel = 1
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = g.Seed
	if g.Env != nil {
		cfg.Env = *g.Env
	}
	net := sim.New(cfg)
	b := &GridBuilt{Net: net, Grid: g}

	// APs: all dual-mode (enterprise b/g hardware), SNR-adapting over
	// the OFDM ladder toward dual-mode clients.
	gAPFactory := rate.NewSNRFactoryLadder(rate.LadderBG)
	for cell := 0; cell < g.Cells(); cell++ {
		r, c := cell/g.Cols, cell%g.Cols
		center := sim.Position{X: (float64(c) + 0.5) * g.Spacing, Y: (float64(r) + 0.5) * g.Spacing}
		ap := net.AddAP(fmt.Sprintf("gap-%d", cell), center, g.cellChannel(cell))
		ap.GCapable = true
		ap.SetGAdapterFactory(gAPFactory)
		b.APs = append(b.APs, ap)
	}

	// Stations: static per-cell population plus grid-roaming mobiles,
	// each b-only or dual-mode by the GFraction draw.
	rng := net.Rand()
	mix := sim.DefaultMix()
	bFactory := rate.NewMixedFactory()
	gFactory := rate.NewMixedFactoryLadder(rate.LadderBG)
	addStation := func(name string, pos sim.Position, ap *sim.Node) *sim.Node {
		gcap := rng.Float64() < g.GFraction
		f := bFactory
		if gcap {
			f = gFactory
		}
		st := net.AddStation(name, pos, ap, f)
		st.GCapable = gcap
		if rng.Float64() < g.RTSFraction {
			st.UseRTS = true
		}
		net.StartTraffic(st, net.PickProfile(mix), g.Load)
		return st
	}
	for cell := 0; cell < g.Cells(); cell++ {
		ap := b.APs[cell]
		for i := 0; i < g.StationsPerCell; i++ {
			pos := sim.Position{
				X: ap.Pos.X + (rng.Float64()-0.5)*g.Spacing*0.8,
				Y: ap.Pos.Y + (rng.Float64()-0.5)*g.Spacing*0.8,
			}
			addStation(fmt.Sprintf("g%d-u%d", cell, i), pos, ap)
		}
	}
	w := float64(g.Cols) * g.Spacing
	h := float64(g.Rows) * g.Spacing
	for i := 0; i < g.MobileStations; i++ {
		home := b.APs[i%len(b.APs)]
		st := addStation(fmt.Sprintf("gm-%d", i), home.Pos, home)
		// A private triangle of waypoints across the whole grid keeps
		// the mobile crossing cell borders for the entire run.
		pts := []sim.Position{
			{X: rng.Float64() * w, Y: rng.Float64() * h},
			{X: rng.Float64() * w, Y: rng.Float64() * h},
			{X: rng.Float64() * w, Y: rng.Float64() * h},
		}
		net.StartWaypoints(st, g.SpeedMPS, phy.MicrosPerSecond/2, pts...)
		b.Mobiles = append(b.Mobiles, st)
	}

	// Roaming: every RoamSec, each mobile reassociates to the nearest
	// AP (1 m hysteresis keeps equidistant pairs from flapping). The
	// lookup comes from the network's spatial index — O(neighborhood)
	// per mobile instead of scanning all APs, with the same
	// creation-order tie-break as the linear scan.
	if g.RoamSec > 0 && len(b.Mobiles) > 0 {
		interval := phy.Micros(g.RoamSec) * phy.MicrosPerSecond
		var roam func()
		roam = func() {
			for _, st := range b.Mobiles {
				best := net.NearestAP(st.Pos)
				if best != nil && best != st.AP && best.Pos.Distance(st.Pos)+1 < st.AP.Pos.Distance(st.Pos) {
					net.Reassociate(st, best)
				}
			}
			net.Schedule(net.Now()+interval, roam)
		}
		net.Schedule(interval, roam)
	}

	// Sniffers: SniffersPerChannel per channel in use, spread over the
	// cells sharing that channel (offset so co-located pairs still see
	// slightly different radio links). IDs follow registration order —
	// the order Merge and the streaming dedup both key their stable
	// tie-breaks on.
	id := 0
	for _, ch := range g.usedChannels() {
		var centers []sim.Position
		for cell := 0; cell < g.Cells(); cell++ {
			if g.cellChannel(cell) == ch {
				centers = append(centers, b.APs[cell].Pos)
			}
		}
		for k := 0; k < g.SniffersPerChannel; k++ {
			base := centers[k%len(centers)]
			pos := sim.Position{X: base.X + 2 + float64(k), Y: base.Y - 2}
			id++
			sn := sniffer.New(sniffer.DefaultConfig(fmt.Sprintf("G%d", id), id, pos, ch))
			net.AddTap(sn)
			b.Sniffers = append(b.Sniffers, sn)
		}
	}
	return b, nil
}

// usedChannels returns the distinct channels of the reuse pattern in
// first-use order.
func (g Grid) usedChannels() []phy.Channel {
	var out []phy.Channel
	for cell := 0; cell < g.Cells(); cell++ {
		ch := g.cellChannel(cell)
		seen := false
		for _, o := range out {
			if o == ch {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, ch)
		}
	}
	return out
}

// Run executes the grid and returns the merged, deduplicated,
// time-sorted trace from all sniffers (the materialized reference the
// streaming path must match bit for bit).
func (b *GridBuilt) Run() []capture.Record {
	b.Net.RunFor(phy.Micros(b.Grid.DurationSec) * phy.MicrosPerSecond)
	traces := make([][]capture.Record, len(b.Sniffers))
	for i, sn := range b.Sniffers {
		traces[i] = sn.Records()
	}
	return capture.Merge(traces...)
}

// MultiSniffer reports whether any channel has ≥2 sniffers — when
// true, a streamed run contains cross-sniffer duplicates the
// experiment engine must dedup to match Run's merged trace.
func (b *GridBuilt) MultiSniffer() bool {
	perChannel := make(map[phy.Channel]int)
	for _, sn := range b.Sniffers {
		perChannel[sn.Config().Channel]++
		if perChannel[sn.Config().Channel] >= 2 {
			return true
		}
	}
	return false
}

// RunStream executes the grid, streaming every record any sniffer
// captures to emit at capture time; nothing is materialized. Unlike
// the single-sniffer-per-channel scenarios, the stream contains
// cross-sniffer duplicates — the experiment package's dedup window
// collapses them ahead of reordering.
func (b *GridBuilt) RunStream(emit func(capture.Record)) {
	for _, sn := range b.Sniffers {
		sn.SetEmit(emit)
	}
	b.Net.RunFor(phy.Micros(b.Grid.DurationSec) * phy.MicrosPerSecond)
}

// RunStreamSlices is RunStream sliced at interval boundaries for
// checkpointing; see Built.RunStreamSlices.
func (b *GridBuilt) RunStreamSlices(emit func(capture.Record), interval phy.Micros, atSlice func(t phy.Micros) error) error {
	for _, sn := range b.Sniffers {
		sn.SetEmit(emit)
	}
	total := phy.Micros(b.Grid.DurationSec) * phy.MicrosPerSecond
	return RunSlices(b.Net, total, interval, atSlice)
}
