package workload

import (
	"fmt"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
)

// Sweep drives a single cell through rising offered load so its
// per-second utilization covers the paper's 30–99% analysis range.
// Stations activate one at a time every StepSec seconds, each
// generating at a fixed per-station Load, so utilization climbs in
// small increments instead of jumping over the mid-band; the run ends
// with TailSec seconds at full population (deep congestion). Every
// scatter figure (6–15) is regenerated from sweep traces: the figures
// condition on utilization, so sweeps provide samples at every
// congestion level from light to collapse.
type Sweep struct {
	// Stations in the cell; one activates every StepSec.
	Stations int
	// StepSec is the activation interval in seconds.
	StepSec int
	// TailSec extends the run at full population.
	TailSec int
	// Load is the per-station traffic multiplier.
	Load float64
	// RTSFraction of stations use RTS/CTS.
	RTSFraction float64
	// RoomSize is the cell edge length in meters; larger rooms create
	// weaker links and more rate diversity.
	RoomSize float64
	// RateFactory supplies rate adaptation (default: the mixed
	// ARF/AARF/SNR population, reflecting the paper's hardware
	// diversity).
	RateFactory rate.Factory
	// Channel to run on.
	Channel phy.Channel
	// Seed for determinism.
	Seed int64
}

// DefaultSweep returns the sweep used by the figure benches.
func DefaultSweep() Sweep {
	return Sweep{
		Stations:    24,
		StepSec:     5,
		TailSec:     30,
		Load:        5.0,
		RTSFraction: 0.1,
		RoomSize:    24,
		RateFactory: rate.NewMixedFactory(),
		Channel:     phy.Channel1,
		Seed:        7,
	}
}

// DurationSec returns the sweep's total simulated time.
func (s Sweep) DurationSec() int { return s.Stations*s.StepSec + s.TailSec }

// Scale shrinks or grows the sweep's population and full-load tail
// together (the per-station load and activation cadence stay fixed,
// so the utilization ramp keeps its slope).
func (s Sweep) Scale(f float64) Sweep {
	if f <= 0 {
		return s
	}
	s.Stations = max(int(float64(s.Stations)*f+0.5), 2)
	s.TailSec = max(int(float64(s.TailSec)*f+0.5), 5)
	return s
}

// Build constructs the sweep's network, AP, sniffer, and activation
// schedule without running it. Call Run or RunStream to execute.
func (s Sweep) Build() (*sim.Network, *sniffer.Sniffer) {
	if s.RateFactory == nil {
		s.RateFactory = rate.NewMixedFactory()
	}
	if s.Channel == 0 {
		s.Channel = phy.Channel1
	}
	if s.RoomSize <= 0 {
		s.RoomSize = 24
	}
	if s.Load <= 0 {
		s.Load = 5
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = s.Seed
	net := sim.New(cfg)
	mid := s.RoomSize / 2
	ap := net.AddAP("ap", sim.Position{X: mid, Y: mid}, s.Channel)
	sn := sniffer.New(sniffer.DefaultConfig("S", 1, sim.Position{X: mid, Y: mid + 2}, s.Channel))
	net.AddTap(sn)

	rng := net.Rand()
	mix := sim.DefaultMix()
	for i := 0; i < s.Stations; i++ {
		pos := sim.Position{X: rng.Float64() * s.RoomSize, Y: rng.Float64() * s.RoomSize}
		st := net.AddStation(fmt.Sprintf("u%d", i), pos, ap, s.RateFactory)
		if rng.Float64() < s.RTSFraction {
			st.UseRTS = true
		}
		p := net.PickProfile(mix)
		at := phy.Micros(i*s.StepSec) * phy.MicrosPerSecond
		load := s.Load
		net.Schedule(at, func() { net.StartTraffic(st, p, load) })
	}
	return net, sn
}

// Run executes the sweep and returns the sniffer trace.
func (s Sweep) Run() ([]capture.Record, *sniffer.Sniffer, *sim.Network) {
	net, sn := s.Build()
	net.RunFor(phy.Micros(s.DurationSec()) * phy.MicrosPerSecond)
	return sn.Records(), sn, net
}

// RunStream executes the sweep, streaming every captured record to
// emit at capture time (see Sniffer.SetEmit for the aliasing and
// ordering contract); nothing is materialized.
func (s Sweep) RunStream(emit func(capture.Record)) (*sniffer.Sniffer, *sim.Network) {
	net, sn := s.Build()
	sn.SetEmit(emit)
	net.RunFor(phy.Micros(s.DurationSec()) * phy.MicrosPerSecond)
	return sn, net
}

// ShiftTrace returns a copy of recs with all timestamps offset by d,
// so traces from independent runs can be merged into one analysis
// without overlapping seconds.
func ShiftTrace(recs []capture.Record, d phy.Micros) []capture.Record {
	out := make([]capture.Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Time += d
	}
	return out
}

// MultiSweep merges the traces of a ladder of sweep variants into
// disjoint time epochs. The default ladder mixes cell sizes, loads,
// and adapter populations: a small mixed-adapter cell covers light
// utilization, a dense lightly-loaded SNR-adapter cell holds the
// 30–70% mid-band stably (no ARF collapse spiral), and a saturated
// mixed-adapter cell reaches the collapse regime — together covering
// the paper's full 30–99% analysis range the way its day and plenary
// data sets did.
func MultiSweep(ladder []Sweep) []capture.Record {
	var traces [][]capture.Record
	var offset phy.Micros
	for _, sw := range ladder {
		recs, _, _ := sw.Run()
		traces = append(traces, ShiftTrace(recs, offset))
		offset += phy.Micros(sw.DurationSec()+1) * phy.MicrosPerSecond
	}
	return capture.Merge(traces...)
}

// DefaultLadder returns the sweep ladder the figure benches use.
// scale below 1 shrinks every run for quicker benches; above 1 grows
// the populations and tails (matching Session.Scale's behaviour, so
// matrix rows labelled with a scale ran at that scale).
func DefaultLadder(scale float64) []Sweep {
	if scale <= 0 {
		scale = 1
	}
	shrink := func(s Sweep, stations int, tail int) Sweep {
		s.Stations, s.TailSec = stations, tail
		return s.Scale(scale)
	}
	low := DefaultSweep()
	low.Seed = 11
	low = shrink(low, 8, 20)

	mid := DefaultSweep()
	mid.RateFactory = rate.NewSNRFactory()
	mid.StepSec = 4
	mid.Load = 0.8
	mid.RoomSize = 30
	mid.Seed = 112
	mid = shrink(mid, 40, 30)

	// A second stable cell pushed to the edge of saturation fills the
	// 60–85% band with pre-collapse (high-throughput) seconds, the
	// regime just below the paper's 84% knee.
	upper := DefaultSweep()
	upper.RateFactory = rate.NewSNRFactory()
	upper.StepSec = 3
	upper.Load = 1.0
	upper.RoomSize = 30
	upper.Seed = 313
	upper = shrink(upper, 44, 30)

	high := DefaultSweep()
	high.Seed = 213
	high = shrink(high, 24, 40)

	return []Sweep{low, mid, upper, high}
}
