package workload

import (
	"testing"

	"wlan80211/internal/capture"

	"wlan80211/internal/core"
	"wlan80211/internal/phy"
)

func TestSessionBuildValidation(t *testing.T) {
	s := DaySession()
	s.DurationSec = 0
	if _, err := s.Build(); err == nil {
		t.Error("zero-duration session must be rejected")
	}
}

func TestScale(t *testing.T) {
	s := DaySession()
	scaled := s.Scale(0.5)
	if scaled.DurationSec != s.DurationSec/2 || scaled.PeakUsers != s.PeakUsers/2 {
		t.Errorf("scale: %d/%d", scaled.DurationSec, scaled.PeakUsers)
	}
	// Floors.
	tiny := s.Scale(0.001)
	if tiny.DurationSec < 10 || tiny.PeakUsers < 4 {
		t.Errorf("floors: %d/%d", tiny.DurationSec, tiny.PeakUsers)
	}
	// Non-positive scale is identity.
	if same := s.Scale(0); same.DurationSec != s.DurationSec {
		t.Error("zero scale must be identity")
	}
}

func TestDaySessionProducesAnalyzableTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("session run is slow")
	}
	b, err := DaySession().Scale(0.25).Build()
	if err != nil {
		t.Fatal(err)
	}
	recs := b.Run()
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	r := core.Analyze(recs)
	if r.TotalFrames == 0 {
		t.Fatal("nothing analyzed")
	}
	// All three channels must carry traffic (Table 1's channel plan).
	for _, ch := range phy.OrthogonalChannels {
		if len(r.PerChannel[ch]) == 0 {
			t.Errorf("no trace on %v", ch)
		}
	}
	// APs must be discovered from the trace.
	if r.APs.Count() < 3 {
		t.Errorf("discovered %d APs", r.APs.Count())
	}
	// Users must appear.
	if len(r.Users) == 0 {
		t.Error("no user windows")
	}
	peak := 0
	for _, u := range r.Users {
		if u.Users > peak {
			peak = u.Users
		}
	}
	if peak < 5 {
		t.Errorf("peak users = %d, expected a visible population", peak)
	}
}

func TestPlenaryBusierThanDay(t *testing.T) {
	if testing.Short() {
		t.Skip("session run is slow")
	}
	day, err := DaySession().Scale(0.25).Build()
	if err != nil {
		t.Fatal(err)
	}
	dayRes := core.Analyze(day.Run())
	plenary, err := PlenarySession().Scale(0.25).Build()
	if err != nil {
		t.Fatal(err)
	}
	plenRes := core.Analyze(plenary.Run())

	dayMode, _ := dayRes.UtilHist.Mode()
	plenMode, _ := plenRes.UtilHist.Mode()
	// The paper: day mode ≈55%, plenary mode ≈86%. The shapes must
	// order the same way: plenary busier than day.
	if plenMode <= dayMode {
		t.Errorf("plenary mode %d%% not above day mode %d%%", plenMode, dayMode)
	}
}

func TestSweepCoversUtilizationRange(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run is slow")
	}
	sw := DefaultSweep()
	sw.StepSec = 3
	recs, sn, net := sw.Run()
	if len(recs) == 0 {
		t.Fatal("empty sweep trace")
	}
	if net.Stats.DataSent == 0 || sn.Captured == 0 {
		t.Fatal("no traffic")
	}
	r := core.Analyze(recs)
	// The sweep must produce seconds both below 60% and above 75%
	// utilization (so scatter figures have range to plot).
	lo, hi := false, false
	for _, s := range r.PerChannel[sw.Channel] {
		if s.Utilization > 0 && s.Utilization < 60 {
			lo = true
		}
		if s.Utilization > 75 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Errorf("sweep utilization coverage: lo=%v hi=%v", lo, hi)
	}
	// RTS users were configured: RTS frames must appear in the trace.
	var rts bool
	for _, s := range r.PerChannel[sw.Channel] {
		if s.RTS > 0 {
			rts = true
			break
		}
	}
	if !rts {
		t.Error("no RTS frames in sweep trace")
	}
}

func TestSweepDefaults(t *testing.T) {
	sw := Sweep{Stations: 1, StepSec: 1}
	recs, _, _ := sw.Run() // nil factory, zero channel/room/load default
	_ = recs
	if sw.DurationSec() != 1 {
		t.Errorf("DurationSec = %d", sw.DurationSec())
	}
}

func TestShiftTrace(t *testing.T) {
	in := []capture.Record{{Time: 5}, {Time: 9}}
	out := ShiftTrace(in, 100)
	if out[0].Time != 105 || out[1].Time != 109 {
		t.Errorf("shift: %+v", out)
	}
	if in[0].Time != 5 {
		t.Error("input mutated")
	}
}
