package workload

import (
	"testing"

	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

// TestGridTraceStable extends the golden-hash pattern to the grid:
// two builds of the same scenario must produce bit-identical merged
// traces, or mobility, roaming, mixed-b/g adaptation, or merge-time
// dedup leaked nondeterminism.
func TestGridTraceStable(t *testing.T) {
	run := func() string {
		b, err := DefaultGrid().Scale(0.5).Build()
		if err != nil {
			t.Fatal(err)
		}
		return hashTrace(b.Run())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed grid runs diverged: %s vs %s", a, b)
	}
}

// TestGridMixedBG checks the capability model end to end from the
// trace: dual-mode stations reach OFDM rates, and no b-only radio
// ever transmits one.
func TestGridMixedBG(t *testing.T) {
	b, err := DefaultGrid().Scale(0.5).Build()
	if err != nil {
		t.Fatal(err)
	}
	recs := b.Run()
	if len(recs) == 0 {
		t.Fatal("empty grid trace")
	}

	bOnly := make(map[dot11.Addr]bool)
	var haveB, haveG bool
	for _, n := range b.Net.Nodes() {
		if n.IsAP {
			continue
		}
		if n.GCapable {
			haveG = true
		} else {
			haveB = true
			bOnly[n.Addr] = true
		}
	}
	if !haveB || !haveG {
		t.Fatalf("population not mixed (b=%v g=%v); adjust GFraction or seed", haveB, haveG)
	}

	ofdm := 0
	for _, rec := range recs {
		if !rec.Rate.OFDM() {
			continue
		}
		ofdm++
		p, err := dot11.Parse(rec.Frame)
		if err != nil {
			continue
		}
		if d, ok := p.Frame.(*dot11.Data); ok && bOnly[d.Addr2] {
			t.Fatalf("b-only station %v transmitted at OFDM rate %v", d.Addr2, rec.Rate)
		}
	}
	if ofdm == 0 {
		t.Error("no OFDM frames captured; the g population never left the b ladder")
	}
}

// TestGridRoaming checks the mobiles actually cross cells: the run
// must produce reassociation events beyond the initial associations,
// and at least one mobile must end on an AP other than its starting
// one.
func TestGridRoaming(t *testing.T) {
	g := DefaultGrid().Scale(0.5)
	b, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Mobiles) == 0 {
		t.Fatal("grid built no mobiles")
	}
	start := make(map[int]string)
	for _, m := range b.Mobiles {
		start[m.ID] = m.AP.Name
	}
	initialAssoc := b.Net.Stats.AssocEvents

	b.Net.RunFor(phy.Micros(g.DurationSec) * phy.MicrosPerSecond)

	if b.Net.Stats.AssocEvents <= initialAssoc {
		t.Error("no reassociation events; roaming never fired")
	}
	moved := false
	for _, m := range b.Mobiles {
		if m.AP.Name != start[m.ID] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("no mobile changed AP over the run")
	}
}

// TestGridSniffersShareChannels pins the acceptance-criteria topology:
// the default grid places at least two sniffers on one channel (the
// multi-vantage setup the dedup window exists for).
func TestGridSniffersShareChannels(t *testing.T) {
	b, err := DefaultGrid().Build()
	if err != nil {
		t.Fatal(err)
	}
	perChannel := make(map[phy.Channel]int)
	for _, sn := range b.Sniffers {
		perChannel[sn.Config().Channel]++
	}
	shared := 0
	for _, n := range perChannel {
		if n >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatalf("no channel has ≥2 sniffers: %v", perChannel)
	}
}
