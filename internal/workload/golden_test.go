package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"sort"
	"testing"

	"wlan80211/internal/capture"
)

// updateGolden regenerates testdata/goldens.json from the current
// simulator. The regeneration workflow for a deliberate
// behaviour-visible change (anything that re-orders event seq
// allocation, e.g. the lazy DCF countdown):
//
//  1. BEFORE the change, run `go test ./internal/workload/
//     -update-golden` and commit the file — it records both the
//     order-sensitive trace hashes and the seq-agnostic physics
//     digests of the old simulator.
//  2. Make the change.
//  3. Run -update-golden again and inspect the git diff: the
//     physics_digest values must be UNCHANGED (the change moved event
//     bookkeeping, not radio physics), while trace_hash values may
//     move. A digest change means the "refactor" altered simulated
//     behaviour — stop and find out why.
//  4. Commit the regenerated file together with the change.
var updateGolden = flag.Bool("update-golden", false,
	"regenerate testdata/goldens.json from the current simulator")

const goldensPath = "testdata/goldens.json"

// golden records the two digests kept per scenario.
type golden struct {
	// TraceHash folds every record field in merged-trace order: any
	// drift at all — physics, event ordering, merge tie-breaks —
	// changes it. It pins full bit-identity per seed.
	TraceHash string `json:"trace_hash"`
	// PhysicsDigest folds the same per-record content through a
	// commutative sum, so it is independent of record order: event-seq
	// reallocation that only permutes same-instant records leaves it
	// bit-identical, while any change to what was transmitted — times,
	// rates, sources, outcomes, signal levels — shows up.
	PhysicsDigest string `json:"physics_digest"`
}

// goldenScenarios are the traces under golden protection: the two
// paper sessions, the figure sweep, and the multi-cell grid — together
// they exercise contention, collisions, rate adaptation, churn, the
// controller, NAV/RTS protection, mobility, mixed b/g, and all three
// sniffer loss modes.
var goldenScenarios = map[string]func() []capture.Record{
	"day": func() []capture.Record {
		b, err := DaySession().Scale(0.1).Build()
		if err != nil {
			panic(err)
		}
		return b.Run()
	},
	"plenary": func() []capture.Record {
		b, err := PlenarySession().Scale(0.1).Build()
		if err != nil {
			panic(err)
		}
		return b.Run()
	},
	"sweep": func() []capture.Record {
		recs, _, _ := DefaultSweep().Scale(0.25).Run()
		return recs
	},
	"grid": func() []capture.Record {
		b, err := DefaultGrid().Scale(0.5).Build()
		if err != nil {
			panic(err)
		}
		return b.Run()
	},
	// grid256 runs under CampusEnvironment (σ = 0), so it pins the
	// spatially-culled sparse-link path the other scenarios never
	// take; half scale keeps it ~1 s while still >500 stations.
	"grid256": func() []capture.Record {
		b, err := Grid256().Scale(0.5).Build()
		if err != nil {
			panic(err)
		}
		return b.Run()
	},
}

// goldenScenario is the fast scenario the stability and bench tests
// reuse.
func goldenScenario() []capture.Record { return goldenScenarios["day"]() }

// recordSum hashes one record's full content (time, channel, rate,
// signal/noise, sniffer, lengths, frame bytes) into two 64-bit lanes.
func recordSum(r *capture.Record) (uint64, uint64) {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(r.Time))
	put(uint64(r.Rate))
	put(uint64(r.Channel))
	put(uint64(uint8(r.SignalDBm)))
	put(uint64(uint8(r.NoiseDBm)))
	put(uint64(r.SnifferID))
	put(uint64(r.OrigLen))
	put(uint64(len(r.Frame)))
	h.Write(r.Frame)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.LittleEndian.Uint64(sum[0:8]), binary.LittleEndian.Uint64(sum[8:16])
}

// hashTrace folds every field of every record into one order-sensitive
// digest, so any behavioural drift in the simulator — timing, rates,
// signal levels, frame bytes, ordering — changes the hash.
func hashTrace(recs []capture.Record) string {
	h := sha256.New()
	var buf [8]byte
	for i := range recs {
		a, b := recordSum(&recs[i])
		binary.LittleEndian.PutUint64(buf[:], a)
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], b)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// digestTrace folds the same per-record content order-insensitively:
// each record's two hash lanes are summed mod 2^64 along with the
// record count. Two traces with the same multiset of records — however
// ordered — digest identically; a single changed bit in any record
// moves both lanes.
func digestTrace(recs []capture.Record) string {
	var laneA, laneB uint64
	for i := range recs {
		a, b := recordSum(&recs[i])
		laneA += a
		laneB += b
	}
	var out [24]byte
	binary.LittleEndian.PutUint64(out[0:8], uint64(len(recs)))
	binary.LittleEndian.PutUint64(out[8:16], laneA)
	binary.LittleEndian.PutUint64(out[16:24], laneB)
	return hex.EncodeToString(out[:])
}

// loadGoldens reads the committed goldens file.
func loadGoldens(t *testing.T) map[string]golden {
	t.Helper()
	data, err := os.ReadFile(goldensPath)
	if err != nil {
		t.Fatalf("reading goldens (run `go test ./internal/workload/ -update-golden` to create): %v", err)
	}
	var m map[string]golden
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parsing %s: %v", goldensPath, err)
	}
	return m
}

// TestGoldenTraces pins every golden scenario's merged trace, at two
// strengths: trace_hash (full bit-identity, including ordering) and
// physics_digest (order-insensitive record content). With
// -update-golden it regenerates testdata/goldens.json instead; see the
// flag comment for the seq-breaking-change workflow.
func TestGoldenTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	names := make([]string, 0, len(goldenScenarios))
	for name := range goldenScenarios {
		names = append(names, name)
	}
	sort.Strings(names)

	got := make(map[string]golden, len(names))
	for _, name := range names {
		recs := goldenScenarios[name]()
		if len(recs) == 0 {
			t.Fatalf("%s: empty golden trace", name)
		}
		got[name] = golden{TraceHash: hashTrace(recs), PhysicsDigest: digestTrace(recs)}
	}

	if *updateGolden {
		enc, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldensPath, append(enc, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s; diff it — physics_digest moving means simulated behaviour changed", goldensPath)
		return
	}

	want := loadGoldens(t)
	for _, name := range names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from %s (run -update-golden)", name, goldensPath)
			continue
		}
		g := got[name]
		if g.PhysicsDigest != w.PhysicsDigest {
			t.Errorf("%s: physics digest drifted — the simulator's behaviour changed:\n got %s\nwant %s",
				name, g.PhysicsDigest, w.PhysicsDigest)
		}
		if g.TraceHash != w.TraceHash {
			t.Errorf("%s: trace hash drifted:\n got %s\nwant %s", name, g.TraceHash, w.TraceHash)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("%s: golden entry has no scenario; prune it from %s", name, goldensPath)
		}
	}
}

// TestGoldenTraceStable guards the guard: two runs of the same scenario
// must agree with each other, or the hash test is meaningless.
func TestGoldenTraceStable(t *testing.T) {
	if a, b := hashTrace(goldenScenario()), hashTrace(goldenScenario()); a != b {
		t.Fatalf("same-seed runs diverged: %s vs %s", a, b)
	}
}

// TestDigestOrderInsensitive pins the digest's defining property on a
// real trace: reversing the record order must not change it, and
// flipping one byte of one frame must.
func TestDigestOrderInsensitive(t *testing.T) {
	recs := goldenScenario()
	if len(recs) < 2 {
		t.Fatal("trace too small")
	}
	fwd := digestTrace(recs)
	rev := make([]capture.Record, len(recs))
	for i := range recs {
		rev[len(recs)-1-i] = recs[i]
	}
	if got := digestTrace(rev); got != fwd {
		t.Errorf("digest is order-sensitive: %s vs %s", got, fwd)
	}
	if len(recs[0].Frame) > 0 {
		mut := make([]capture.Record, len(recs))
		copy(mut, recs)
		f := append([]byte(nil), mut[0].Frame...)
		f[0] ^= 0x80
		mut[0].Frame = f
		if got := digestTrace(mut); got == fwd {
			t.Error("digest missed a mutated frame byte")
		}
	}
}
