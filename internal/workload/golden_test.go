package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"wlan80211/internal/capture"
)

// goldenScenario is a small, fast scenario exercising every simulator
// mechanism that feeds the trace: contention, collisions, rate
// adaptation, churn, the controller, and all three sniffer loss modes.
func goldenScenario() []capture.Record {
	b, err := DaySession().Scale(0.1).Build()
	if err != nil {
		panic(err)
	}
	return b.Run()
}

// hashTrace folds every field of every record into one digest, so any
// behavioural drift in the simulator — timing, rates, signal levels,
// frame bytes, ordering — changes the hash.
func hashTrace(recs []capture.Record) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, r := range recs {
		put(uint64(r.Time))
		put(uint64(r.Rate))
		put(uint64(r.Channel))
		put(uint64(uint8(r.SignalDBm)))
		put(uint64(uint8(r.NoiseDBm)))
		put(uint64(r.SnifferID))
		put(uint64(r.OrigLen))
		put(uint64(len(r.Frame)))
		h.Write(r.Frame)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenTraceHash is the digest of goldenScenario's merged trace as
// produced by the simulator before the hot-path overhaul (slab event
// queue, link matrix, pooled transmissions). The overhaul must be
// bit-identical for fixed seeds; regenerate this constant only for
// deliberate behavioural changes.
const goldenTraceHash = "efca01bb81f1ed530f6b0fc6ae19064a21630b09dff2e40d857239258f406fbc"

func TestGoldenTraceHash(t *testing.T) {
	got := hashTrace(goldenScenario())
	if got != goldenTraceHash {
		t.Errorf("golden trace hash drifted:\n got %s\nwant %s", got, goldenTraceHash)
	}
}

// TestGoldenTraceStable guards the guard: two runs of the same scenario
// must agree with each other, or the hash test is meaningless.
func TestGoldenTraceStable(t *testing.T) {
	if a, b := hashTrace(goldenScenario()), hashTrace(goldenScenario()); a != b {
		t.Fatalf("same-seed runs diverged: %s vs %s", a, b)
	}
}
