// Package workload builds the experiment scenarios of the
// reproduction: scaled models of the IETF62 day and plenary sessions
// (Table 1, Figures 2–3) and the load-sweep used to drive the channel
// through the paper's 30–99% utilization range for Figures 6–15.
//
// The real sessions spanned hours with hundreds of users; simulating
// that verbatim is possible but slow, so each scenario takes a Scale
// knob. The utilization-conditioned statistics the paper reports are
// per-second averages, so shorter sessions with proportionally fewer
// users sample the same curves with less data.
package workload

import (
	"fmt"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
)

// Session describes one measurement session (Table 1).
type Session struct {
	// Name labels the data set ("day", "plenary").
	Name string
	// DurationSec is the simulated session length in seconds.
	DurationSec int
	// PeakUsers is the maximum concurrent associated users.
	PeakUsers int
	// APsPerChannel places this many APs on each of channels 1/6/11.
	APsPerChannel int
	// RoomW/RoomH bound the venue in meters (Figures 2–3: ballroom
	// ~210' × 120' ≈ 64 m × 37 m plus conference rooms).
	RoomW, RoomH float64
	// Sniffers are the capture points.
	Sniffers []SnifferSpec
	// RTSFraction of users enable RTS/CTS (the paper saw minimal,
	// non-zero use: 40k RTS vs 28.6M data frames).
	RTSFraction float64
	// LoadScale multiplies all traffic generators.
	LoadScale float64
	// RateFactory supplies per-station rate adaptation (default:
	// the mixed ARF/AARF/SNR population).
	RateFactory rate.Factory
	// Controller enables the Airespace-style channel/load balancing.
	Controller bool
	// PathLossExponent / ShadowingSigmaDB override the radio
	// environment when non-zero. The day session uses a lossier
	// environment than the single-hall default: its users sat in
	// several rooms behind walls and people, which is what produced
	// the paper's 3–15% unrecorded rates (Figure 4c).
	PathLossExponent float64
	ShadowingSigmaDB float64
	// Seed makes the scenario deterministic.
	Seed int64
}

// SnifferSpec places one sniffer.
type SnifferSpec struct {
	Name    string
	Pos     sim.Position
	Channel phy.Channel
}

// DaySession returns a scaled model of the March 9 day session:
// sniffers spread at three locations in one meeting room, users
// distributed across several rooms (so a sizeable fraction of traffic
// is distant from the sniffers), moderate load.
func DaySession() Session {
	return Session{
		Name:          "day",
		DurationSec:   120,
		PeakUsers:     90,
		APsPerChannel: 2,
		RoomW:         64, RoomH: 37,
		Sniffers: []SnifferSpec{
			{Name: "A", Pos: sim.Position{X: 12, Y: 30}, Channel: phy.Channel1},
			{Name: "B", Pos: sim.Position{X: 22, Y: 18}, Channel: phy.Channel6},
			{Name: "C", Pos: sim.Position{X: 12, Y: 8}, Channel: phy.Channel11},
		},
		RTSFraction:      0.02,
		LoadScale:        2.0,
		RateFactory:      rate.NewMixedFactory(),
		Controller:       true,
		PathLossExponent: 3.7,
		ShadowingSigmaDB: 6,
		Seed:             62,
	}
}

// PlenarySession returns a scaled model of the March 10 plenary: all
// users congregate in one ballroom, the three sniffers co-located,
// heavy load (the 86%-utilization mode of Figure 5c).
func PlenarySession() Session {
	return Session{
		Name:          "plenary",
		DurationSec:   120,
		PeakUsers:     120,
		APsPerChannel: 2,
		RoomW:         45, RoomH: 30,
		Sniffers: []SnifferSpec{
			{Name: "A", Pos: sim.Position{X: 22, Y: 15}, Channel: phy.Channel1},
			{Name: "B", Pos: sim.Position{X: 23, Y: 15}, Channel: phy.Channel6},
			{Name: "C", Pos: sim.Position{X: 24, Y: 15}, Channel: phy.Channel11},
		},
		RTSFraction: 0.02,
		LoadScale:   4.5,
		RateFactory: rate.NewMixedFactory(),
		Controller:  true,
		Seed:        63,
	}
}

// Scale shrinks or grows a session's duration and population together.
func (s Session) Scale(f float64) Session {
	if f <= 0 {
		return s
	}
	s.DurationSec = int(float64(s.DurationSec) * f)
	if s.DurationSec < 10 {
		s.DurationSec = 10
	}
	s.PeakUsers = int(float64(s.PeakUsers) * f)
	if s.PeakUsers < 4 {
		s.PeakUsers = 4
	}
	return s
}

// Built is a constructed scenario ready to run.
type Built struct {
	Net      *sim.Network
	APs      []*sim.Node
	Sniffers []*sniffer.Sniffer
	Session  Session
}

// Build constructs the network, APs, sniffers, and user-churn
// schedule. Call Run to execute it.
func (s Session) Build() (*Built, error) {
	if s.DurationSec <= 0 {
		return nil, fmt.Errorf("workload: session %q has no duration", s.Name)
	}
	if s.RateFactory == nil {
		s.RateFactory = rate.NewMixedFactory()
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = s.Seed
	if s.PathLossExponent > 0 {
		cfg.Env.PathLossExponent = s.PathLossExponent
	}
	if s.ShadowingSigmaDB > 0 {
		cfg.Env.ShadowingSigmaDB = s.ShadowingSigmaDB
	}
	net := sim.New(cfg)

	// Place APs row by row across the venue, striping channels.
	var aps []*sim.Node
	total := s.APsPerChannel * 3
	for i := 0; i < total; i++ {
		ch := phy.OrthogonalChannels[i%3]
		x := s.RoomW * (0.2 + 0.6*float64(i)/float64(max(total-1, 1)))
		y := s.RoomH * (0.25 + 0.5*float64(i%2))
		ap := net.AddAP(fmt.Sprintf("ap-%d", i), sim.Position{X: x, Y: y}, ch)
		aps = append(aps, ap)
	}

	b := &Built{Net: net, APs: aps, Session: s}
	for i, sp := range s.Sniffers {
		sn := sniffer.New(sniffer.DefaultConfig(sp.Name, i+1, sp.Pos, sp.Channel))
		net.AddTap(sn)
		b.Sniffers = append(b.Sniffers, sn)
	}
	if s.Controller {
		net.NewController(aps).Start()
	}
	s.scheduleChurn(b)
	return b, nil
}

// scheduleChurn arrives and departs users along a triangular ramp
// peaking mid-session (the shape of Figure 4b's curves).
func (s Session) scheduleChurn(b *Built) {
	net := b.Net
	rng := net.Rand()
	mix := sim.DefaultMix()
	dur := phy.Micros(s.DurationSec) * phy.MicrosPerSecond

	type user struct {
		station *sim.Node
		gen     *sim.Generator
	}
	var active []user

	// Initial population: half the peak joins at t≈0.
	spawn := func() {
		i := len(active)
		ap := b.APs[i%len(b.APs)]
		pos := sim.Position{
			X: ap.Pos.X + (rng.Float64()-0.5)*s.RoomW*0.4,
			Y: ap.Pos.Y + (rng.Float64()-0.5)*s.RoomH*0.4,
		}
		st := net.AddStation(fmt.Sprintf("u%d", i), pos, ap, s.RateFactory)
		if rng.Float64() < s.RTSFraction {
			st.UseRTS = true
		}
		gen := net.StartTraffic(st, net.PickProfile(mix), s.LoadScale)
		active = append(active, user{st, gen})
	}
	for i := 0; i < s.PeakUsers/2; i++ {
		spawn()
	}
	// Ramp up to the peak through the first half, drain through the
	// second half (churn drives the utilization sweep of Figure 5).
	half := s.PeakUsers - s.PeakUsers/2
	for i := 0; i < half; i++ {
		at := dur / 2 * phy.Micros(i+1) / phy.Micros(half+1)
		net.Schedule(at, spawn)
	}
	leave := s.PeakUsers / 2
	for i := 0; i < leave; i++ {
		at := dur/2 + dur/2*phy.Micros(i+1)/phy.Micros(leave+1)
		net.Schedule(at, func() {
			if len(active) == 0 {
				return
			}
			u := active[len(active)-1]
			active = active[:len(active)-1]
			u.gen.Stop()
			net.Disassociate(u.station)
		})
	}
}

// Run executes the scenario and returns the merged, time-sorted trace
// from all sniffers.
func (b *Built) Run() []capture.Record {
	b.Net.RunFor(phy.Micros(b.Session.DurationSec) * phy.MicrosPerSecond)
	traces := make([][]capture.Record, len(b.Sniffers))
	for i, sn := range b.Sniffers {
		traces[i] = sn.Records()
	}
	return capture.Merge(traces...)
}

// RunStream executes the scenario, streaming every record any sniffer
// captures to emit at capture time instead of materializing traces —
// peak memory is independent of the session length. Records arrive in
// observation order (non-decreasing transmission-end time across all
// sniffers); each record's Frame aliases a simulator buffer valid
// only during the emit call. The experiment package's reordering
// bridge turns this stream into the time-sorted order Run produces.
func (b *Built) RunStream(emit func(capture.Record)) {
	for _, sn := range b.Sniffers {
		sn.SetEmit(emit)
	}
	b.Net.RunFor(phy.Micros(b.Session.DurationSec) * phy.MicrosPerSecond)
}

// RunStreamSlices is RunStream with the run sliced at interval
// boundaries: after the simulation reaches each multiple of interval
// (and the final instant), atSlice is called with the current sim
// time, between events, so the caller can checkpoint. Slicing is
// invisible to the simulation — the event sequence, and therefore the
// emitted stream, is bit-identical to RunStream (RunUntil in steps
// fires exactly the events one RunUntil would). An atSlice error
// aborts the run and is returned.
func (b *Built) RunStreamSlices(emit func(capture.Record), interval phy.Micros, atSlice func(t phy.Micros) error) error {
	for _, sn := range b.Sniffers {
		sn.SetEmit(emit)
	}
	total := phy.Micros(b.Session.DurationSec) * phy.MicrosPerSecond
	return RunSlices(b.Net, total, interval, atSlice)
}

// RunSlices advances net to total in interval steps, invoking atSlice
// between events after each boundary (and at the final instant). An
// interval <= 0 means a single slice at total. Slicing is invisible to
// the simulation: RunUntil in steps fires exactly the events one
// RunUntil would, so the event sequence — and any emitted stream — is
// bit-identical to an unsliced run. Scenario wrappers that manage
// their own networks (the experiment package's sweep and ladder runs)
// use this directly.
func RunSlices(net *sim.Network, total, interval phy.Micros, atSlice func(t phy.Micros) error) error {
	if interval <= 0 {
		interval = total
	}
	for t := phy.Micros(0); t < total; {
		t += interval
		if t > total {
			t = total
		}
		net.RunUntil(t)
		if atSlice != nil {
			if err := atSlice(t); err != nil {
				return err
			}
		}
	}
	return nil
}
