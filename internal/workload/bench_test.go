package workload

import (
	"testing"

	"wlan80211/internal/sim"
)

// The simulator benches run the paper's two sessions end to end
// (simulate + capture + merge) at a reduced scale, reporting allocs so
// the hot-path work (event queue, link matrix, transmission pooling,
// capture arena) stays measurable.

// reportEventQueueMetrics reports the per-frame event-queue costs the
// BENCH_N trajectory tracks: fired callbacks and heap mutations
// beyond the unavoidable pops (schedulings + cancellations + deferred
// re-keys) — the traffic the lazy DCF countdown cut.
func reportEventQueueMetrics(b *testing.B, net *sim.Network, frames int) {
	b.ReportMetric(float64(net.EventsProcessed())/float64(frames), "evq_events/frame")
	b.ReportMetric(float64(net.EventHeapOps())/float64(frames), "evq_heapops/frame")
}

func benchSession(b *testing.B, s Session) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		built, err := s.Build()
		if err != nil {
			b.Fatal(err)
		}
		recs := built.Run()
		if len(recs) == 0 {
			b.Fatal("empty trace")
		}
		reportEventQueueMetrics(b, built.Net, len(recs))
	}
}

func BenchmarkSimDay(b *testing.B)     { benchSession(b, DaySession().Scale(0.15)) }
func BenchmarkSimPlenary(b *testing.B) { benchSession(b, PlenarySession().Scale(0.15)) }

// BenchmarkSimGrid runs the multi-cell grid end to end and reports the
// event-queue traffic behind each captured frame — the cost the lazy
// DCF countdown shrinks (dense co-channel cells make every contender
// overhear every transmission). evq_events/frame counts fired
// callbacks; evq_rearms/frame counts in-place re-arms of deferred
// countdowns, the lazy scheme's residual heap work.
func BenchmarkSimGrid(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		built, err := DefaultGrid().Scale(0.5).Build()
		if err != nil {
			b.Fatal(err)
		}
		recs := built.Run()
		if len(recs) == 0 {
			b.Fatal("empty trace")
		}
		reportEventQueueMetrics(b, built.Net, len(recs))
		b.ReportMetric(float64(built.Net.EventDeferrals())/float64(len(recs)), "evq_rearms/frame")
	}
}
