package workload

import (
	"testing"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
	"wlan80211/internal/sim"
	"wlan80211/internal/snapshot"
	"wlan80211/internal/sniffer"
)

// The simulator benches run the paper's two sessions end to end
// (simulate + capture + merge) at a reduced scale, reporting allocs so
// the hot-path work (event queue, link matrix, transmission pooling,
// capture arena) stays measurable.

// reportEventQueueMetrics reports the per-frame event-queue costs the
// BENCH_N trajectory tracks: fired callbacks and heap mutations
// beyond the unavoidable pops (schedulings + cancellations + deferred
// re-keys) — the traffic the lazy DCF countdown cut.
func reportEventQueueMetrics(b *testing.B, net *sim.Network, frames int) {
	b.ReportMetric(float64(net.EventsProcessed())/float64(frames), "evq_events/frame")
	b.ReportMetric(float64(net.EventHeapOps())/float64(frames), "evq_heapops/frame")
}

func benchSession(b *testing.B, s Session) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		built, err := s.Build()
		if err != nil {
			b.Fatal(err)
		}
		recs := built.Run()
		if len(recs) == 0 {
			b.Fatal("empty trace")
		}
		reportEventQueueMetrics(b, built.Net, len(recs))
	}
}

func BenchmarkSimDay(b *testing.B)     { benchSession(b, DaySession().Scale(0.15)) }
func BenchmarkSimPlenary(b *testing.B) { benchSession(b, PlenarySession().Scale(0.15)) }

// BenchmarkSimDayCheckpointed is BenchmarkSimDay's streaming run with
// a full state snapshot (network + sniffers, container-framed) taken
// every simulated second — the worst-case checkpoint cadence. The gap
// between this and the plain bench is the whole cost of
// checkpointing; snap_bytes tracks the serialized state size.
func BenchmarkSimDayCheckpointed(b *testing.B) {
	b.ReportAllocs()
	s := DaySession().Scale(0.15)
	for i := 0; i < b.N; i++ {
		built, err := s.Build()
		if err != nil {
			b.Fatal(err)
		}
		frames, snaps, snapBytes := 0, 0, 0
		err = built.RunStreamSlices(func(capture.Record) { frames++ },
			phy.MicrosPerSecond, func(t phy.Micros) error {
				states := make([]sniffer.State, len(built.Sniffers))
				for i, sn := range built.Sniffers {
					states[i] = sn.CaptureState()
				}
				bld := snapshot.NewBuilder()
				bld.Section(snapshot.TagNetwork, snapshot.EncodeNetworkState(built.Net.CaptureState()))
				bld.Section(snapshot.TagSniffers, snapshot.EncodeSnifferStates(states))
				snapBytes += len(bld.Finish())
				snaps++
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if frames == 0 || snaps == 0 {
			b.Fatal("empty checkpointed run")
		}
		reportEventQueueMetrics(b, built.Net, frames)
		b.ReportMetric(float64(snapBytes)/float64(snaps), "snap_bytes")
	}
}

// BenchmarkSimGrid runs the multi-cell grid end to end and reports the
// event-queue traffic behind each captured frame — the cost the lazy
// DCF countdown shrinks (dense co-channel cells make every contender
// overhear every transmission). evq_events/frame counts fired
// callbacks; evq_rearms/frame counts in-place re-arms of deferred
// countdowns, the lazy scheme's residual heap work.
func BenchmarkSimGrid(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		built, err := DefaultGrid().Scale(0.5).Build()
		if err != nil {
			b.Fatal(err)
		}
		recs := built.Run()
		if len(recs) == 0 {
			b.Fatal("empty trace")
		}
		reportEventQueueMetrics(b, built.Net, len(recs))
		b.ReportMetric(float64(built.Net.EventDeferrals())/float64(len(recs)), "evq_rearms/frame")
	}
}

// BenchmarkSimGrid256 is the campus-scale tier (BENCH_8): the full
// 16×16 grid, 1304 nodes, spatially-culled sparse links. Alongside
// the event-queue metrics it reports the stored link density —
// row_links/node ≈ the interference neighborhood k, the O(N·k) claim
// in a number (dense would be N = 1304).
func BenchmarkSimGrid256(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		built, err := Grid256().Build()
		if err != nil {
			b.Fatal(err)
		}
		recs := built.Run()
		if len(recs) == 0 {
			b.Fatal("empty trace")
		}
		reportEventQueueMetrics(b, built.Net, len(recs))
		rows, links, _ := built.Net.LinkStats()
		b.ReportMetric(float64(links)/float64(rows), "row_links/node")
	}
}
