package workload

import (
	"testing"
)

// The simulator benches run the paper's two sessions end to end
// (simulate + capture + merge) at a reduced scale, reporting allocs so
// the hot-path work (event queue, link matrix, transmission pooling,
// capture arena) stays measurable.

func benchSession(b *testing.B, s Session) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		built, err := s.Build()
		if err != nil {
			b.Fatal(err)
		}
		if recs := built.Run(); len(recs) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkSimDay(b *testing.B)     { benchSession(b, DaySession().Scale(0.15)) }
func BenchmarkSimPlenary(b *testing.B) { benchSession(b, PlenarySession().Scale(0.15)) }
