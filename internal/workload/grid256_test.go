package workload

import "testing"

// TestGrid256SparseRowLengths pins the O(N·k) link-matrix claim on the
// campus grid: every row must hold only its interference neighborhood,
// a small fraction of the node count (a dense matrix stores N links in
// every row).
func TestGrid256SparseRowLengths(t *testing.T) {
	b, err := Grid256().Build()
	if err != nil {
		t.Fatal(err)
	}
	rows, links, maxRow := b.Net.LinkStats()
	if rows < 1300 {
		t.Fatalf("campus grid shrank: %d nodes, want ≥1300", rows)
	}
	if maxRow >= rows/4 {
		t.Fatalf("rows are not sparse: longest row %d of %d nodes", maxRow, rows)
	}
	avg := float64(links) / float64(rows)
	if avg >= float64(rows)/8 {
		t.Fatalf("average row %.1f links is not ≪ %d nodes", avg, rows)
	}
	t.Logf("N=%d: avg row %.1f links, max %d (dense would be %d per row)", rows, avg, maxRow, rows)
}

// TestGrid256StationCount pins the scenario's headline population:
// 16×16 APs and 1000+ stations.
func TestGrid256StationCount(t *testing.T) {
	g := Grid256()
	if g.Cells() != 256 {
		t.Fatalf("cells = %d, want 256", g.Cells())
	}
	stations := g.Cells()*g.StationsPerCell + g.MobileStations
	if stations < 1000 {
		t.Fatalf("stations = %d, want ≥1000", stations)
	}
}
