package core

import (
	"sort"

	"wlan80211/internal/capture"
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
	"wlan80211/internal/stats"
)

// AckMatchWindow is the maximum gap between the end of a data frame
// and the start of its ACK for the pair to be considered a DATA–ACK
// exchange (SIFS plus scheduling slack).
const AckMatchWindow phy.Micros = 6 * DelaySIFS

// SecondStat is one second of one channel, the unit of the paper's
// analysis.
type SecondStat struct {
	// Second is the interval index (seconds from trace epoch).
	Second int64
	// Channel the statistics belong to.
	Channel phy.Channel
	// CBT is the summed channel busy-time (Equation 7).
	CBT phy.Micros
	// Utilization is Equation 8's percentage for this second.
	Utilization int
	// ThroughputMbps counts bits of all captured frames.
	ThroughputMbps float64
	// GoodputMbps counts bits of control frames and successfully
	// acknowledged data frames.
	GoodputMbps float64
	// Frame counts by type.
	Data, RTS, CTS, ACK, Beacon int
}

// Result is the full analysis of a trace.
type Result struct {
	// PerChannel holds the per-second time series (Figures 5a/5b).
	PerChannel map[phy.Channel][]SecondStat
	// UtilHist is the utilization frequency histogram (Figure 5c),
	// one count per channel-second.
	UtilHist *stats.Histogram

	// Figure 6.
	Throughput stats.ByUtilization // Mbps samples keyed by utilization
	Goodput    stats.ByUtilization

	// Figure 7: RTS and CTS frames per second.
	RTSPerSec stats.ByUtilization
	CTSPerSec stats.ByUtilization

	// Figure 8: per-rate channel busy-time (seconds of each second).
	BusyTimePerRate [4]stats.ByUtilization
	// Figure 9: per-rate bytes per second.
	BytesPerRate [4]stats.ByUtilization

	// Figures 10–13: data-frame transmissions per second for each of
	// the 16 size×rate categories.
	TxPerCategory [16]stats.ByUtilization

	// Figure 14: data frames acknowledged at first attempt, per rate.
	FirstAckPerRate [4]stats.ByUtilization

	// Figure 15: acceptance delay (seconds) per category.
	AcceptDelay [16]stats.ByUtilization

	// Figure 4: per-AP traffic and unrecorded estimation, user counts.
	APs   APReport
	Users []UserPoint

	// Unrecorded aggregates the atomicity-based estimators (Sec 4.4).
	Unrecorded UnrecordedStats

	// TotalFrames is the number of records analyzed.
	TotalFrames int64
	// ParseErrors counts records whose MAC frame failed to parse.
	ParseErrors int64
}

// UnrecordedStats aggregates Equation 1's inputs.
type UnrecordedStats struct {
	// MissingData counts ACKs whose soliciting DATA was not captured.
	MissingData int64
	// MissingRTS counts CTSs whose soliciting RTS was not captured.
	MissingRTS int64
	// MissingCTS counts RTS→DATA exchanges whose CTS was not captured.
	MissingCTS int64
	// Captured is the total captured frame count.
	Captured int64
}

// Total returns the estimated number of unrecorded frames.
func (u UnrecordedStats) Total() int64 {
	return u.MissingData + u.MissingRTS + u.MissingCTS
}

// Percent is Equation 1: unrecorded/(unrecorded+captured) × 100.
func (u UnrecordedStats) Percent() float64 {
	t := u.Total()
	if t+u.Captured == 0 {
		return 0
	}
	return 100 * float64(t) / float64(t+u.Captured)
}

// UserPoint is one 30-second sample of the associated-user estimate
// (Figure 4b counts distinct active client addresses per window).
type UserPoint struct {
	// WindowStart is the window's first second.
	WindowStart int64
	// Users is the number of distinct client addresses observed.
	Users int
}

// UserWindowSeconds is the averaging window of Figure 4b.
const UserWindowSeconds = 30

// Analyze runs the full pipeline over a merged trace. Records are
// processed per channel in time order.
func Analyze(recs []capture.Record) *Result {
	r := &Result{
		PerChannel: make(map[phy.Channel][]SecondStat),
		UtilHist:   stats.NewHistogram(101),
	}
	byCh := capture.SplitByChannel(recs)

	// Pass 1: discover AP addresses (beacon transmitters and FromDS
	// BSSIDs) so user counting and attribution can tell APs from
	// clients.
	aps := discoverAPs(recs)
	r.APs.init(aps)

	channels := make([]phy.Channel, 0, len(byCh))
	for ch := range byCh {
		channels = append(channels, ch)
	}
	sort.Slice(channels, func(i, j int) bool { return channels[i] < channels[j] })

	users := newUserCounter(aps)
	for _, ch := range channels {
		chRecs := byCh[ch]
		sort.SliceStable(chRecs, func(i, j int) bool { return chRecs[i].Time < chRecs[j].Time })
		r.analyzeChannel(ch, chRecs, users)
	}
	r.Users = users.series()
	return r
}

// discoverAPs returns the set of access point addresses: beacon
// sources plus BSSIDs seen in FromDS data frames.
func discoverAPs(recs []capture.Record) map[dot11.Addr]bool {
	aps := make(map[dot11.Addr]bool)
	for i := range recs {
		p, err := dot11.Parse(recs[i].Frame)
		if err != nil {
			continue
		}
		switch f := p.Frame.(type) {
		case *dot11.Beacon:
			aps[f.SA] = true
		case *dot11.Data:
			if f.FC.FromDS && !f.FC.ToDS {
				aps[f.Addr2] = true
			}
		}
	}
	return aps
}

// pendingData tracks the most recent unicast data frame awaiting its
// ACK in the trace.
type pendingData struct {
	valid    bool
	ta       dot11.Addr
	end      phy.Micros // transmission end time
	rate     phy.Rate
	wireLen  int
	retry    bool
	second   int64
	firstTry phy.Micros // first attempt time of this MSDU (for delay)
	seqKey   uint64     // addrSeqKey(ta, seq) of the MSDU
}

// pendingRTS tracks the most recent RTS awaiting CTS/DATA.
type pendingRTS struct {
	valid  bool
	ta, ra dot11.Addr
	end    phy.Micros
	sawCTS bool
}

// secondAccum accumulates one second of one channel.
type secondAccum struct {
	stat           SecondStat
	cbtPerRate     [4]phy.Micros
	bytesPerRate   [4]int64
	txPerCat       [16]int
	firstAck       [4]int
	throughputBits int64
	goodputBits    int64
	delays         []delaySample
}

type delaySample struct {
	cat   int
	delay float64 // seconds
}

// analyzeChannel walks one channel's records in time order.
func (r *Result) analyzeChannel(ch phy.Channel, recs []capture.Record, users *userCounter) {
	if len(recs) == 0 {
		return
	}
	var acc secondAccum
	acc.stat = SecondStat{Second: recs[0].Second(), Channel: ch}

	var pend pendingData
	var prts pendingRTS
	firstSeen := make(map[uint64]phy.Micros) // (ta,seq) → first attempt time

	flush := func() {
		s := &acc.stat
		s.Utilization = UtilizationPercent(s.CBT)
		s.ThroughputMbps = float64(acc.throughputBits) / 1e6
		s.GoodputMbps = float64(acc.goodputBits) / 1e6
		r.PerChannel[ch] = append(r.PerChannel[ch], *s)
		r.UtilHist.Add(s.Utilization)
		u := s.Utilization
		r.Throughput.Add(u, s.ThroughputMbps)
		r.Goodput.Add(u, s.GoodputMbps)
		r.RTSPerSec.Add(u, float64(s.RTS))
		r.CTSPerSec.Add(u, float64(s.CTS))
		for i := 0; i < 4; i++ {
			r.BusyTimePerRate[i].Add(u, float64(acc.cbtPerRate[i])/1e6)
			r.BytesPerRate[i].Add(u, float64(acc.bytesPerRate[i]))
			r.FirstAckPerRate[i].Add(u, float64(acc.firstAck[i]))
		}
		for i := 0; i < 16; i++ {
			r.TxPerCategory[i].Add(u, float64(acc.txPerCat[i]))
		}
		for _, d := range acc.delays {
			r.AcceptDelay[d.cat].Add(u, d.delay)
		}
	}

	for i := range recs {
		rec := &recs[i]
		sec := rec.Second()
		// Flush any completed seconds (emitting empty seconds too, so
		// the Figure 5 time series is gap-free).
		for acc.stat.Second < sec {
			flush()
			next := acc.stat.Second + 1
			acc = secondAccum{}
			acc.stat = SecondStat{Second: next, Channel: ch}
		}

		r.TotalFrames++
		r.Unrecorded.Captured++
		p, err := dot11.Parse(rec.Frame)
		if err != nil {
			r.ParseErrors++
			continue
		}
		users.observe(rec.Time, p)
		r.APs.observe(p)
		acc.throughputBits += int64(rec.OrigLen) * 8

		switch f := p.Frame.(type) {
		case *dot11.Data:
			r.handleData(rec, f, &acc, &pend, &prts, firstSeen)
		case *dot11.ACK:
			r.handleACK(rec, f, &acc, &pend, firstSeen)
		case *dot11.RTS:
			acc.stat.RTS++
			acc.stat.CBT += CBTRTS()
			r.addRateCBT(&acc, rec, CBTRTS())
			acc.goodputBits += int64(rec.OrigLen) * 8
			prts = pendingRTS{valid: true, ta: f.TA, ra: f.RA, end: rec.Time + phy.Airtime(rec.OrigLen, rec.Rate)}
			pend.valid = false
		case *dot11.CTS:
			acc.stat.CTS++
			acc.stat.CBT += CBTCTS()
			r.addRateCBT(&acc, rec, CBTCTS())
			acc.goodputBits += int64(rec.OrigLen) * 8
			// RTS–CTS atomicity: a CTS must follow a captured RTS
			// whose transmitter it addresses.
			if prts.valid && prts.ta == f.RA && rec.Time-prts.end <= AckMatchWindow {
				prts.sawCTS = true
			} else {
				r.Unrecorded.MissingRTS++
				r.APs.attributeUnrecorded(f.RA)
				// Synthesize the pending RTS so a following DATA is
				// not also charged a missing CTS.
				prts = pendingRTS{valid: true, ta: f.RA, end: rec.Time + phy.Airtime(rec.OrigLen, rec.Rate), sawCTS: true}
			}
			pend.valid = false
		case *dot11.Beacon:
			acc.stat.Beacon++
			acc.stat.CBT += CBTBeacon()
			r.addRateCBT(&acc, rec, CBTBeacon())
			acc.goodputBits += int64(rec.OrigLen) * 8
			pend.valid = false
		case *dot11.Management:
			// Other management frames are charged like data frames.
			acc.stat.CBT += CBTData(rec.OrigLen, rec.Rate)
			r.addRateCBT(&acc, rec, CBTData(rec.OrigLen, rec.Rate))
			acc.goodputBits += int64(rec.OrigLen) * 8
			pend.valid = false
		}
		if _, ok := p.Frame.(*dot11.Data); !ok {
			if _, isCTS := p.Frame.(*dot11.CTS); !isCTS {
				// An RTS exchange is broken by any frame other than
				// its CTS or DATA.
				if _, isRTS := p.Frame.(*dot11.RTS); !isRTS {
					prts.valid = false
				}
			}
		}
		acc.bytesPerRate[rateIdx(rec.Rate)] += int64(rec.OrigLen)
	}
	flush()
}

// handleData processes a captured data frame.
func (r *Result) handleData(rec *capture.Record, f *dot11.Data, acc *secondAccum,
	pend *pendingData, prts *pendingRTS, firstSeen map[uint64]phy.Micros) {

	acc.stat.Data++
	cbt := CBTData(rec.OrigLen, rec.Rate)
	acc.stat.CBT += cbt
	r.addRateCBT(acc, rec, cbt)
	if ci, ok := CategoryOf(rec.OrigLen, rec.Rate).Index(); ok {
		acc.txPerCat[ci]++
	}

	// RTS–CTS–DATA atomicity: a DATA completing an RTS exchange whose
	// CTS was never captured implies an unrecorded CTS.
	if prts.valid && prts.ta == f.Addr2 {
		if !prts.sawCTS {
			r.Unrecorded.MissingCTS++
			r.APs.attributeUnrecorded(prts.ra)
		}
		prts.valid = false
	}

	if !f.Addr1.IsGroup() {
		end := rec.Time + phy.Airtime(rec.OrigLen, rec.Rate)
		key := addrSeqKey(f.Addr2, f.Seq.Num)
		first, ok := firstSeen[key]
		if !ok || rec.Time-first > 2*phy.MicrosPerSecond {
			first = rec.Time
			firstSeen[key] = first
		}
		*pend = pendingData{
			valid:    true,
			ta:       f.Addr2,
			end:      end,
			rate:     rec.Rate,
			wireLen:  rec.OrigLen,
			retry:    f.FC.Retry,
			second:   rec.Second(),
			firstTry: first,
			seqKey:   key,
		}
	} else {
		// Group-addressed data needs no ACK and counts as goodput.
		acc.goodputBits += int64(rec.OrigLen) * 8
		pend.valid = false
	}
}

// handleACK processes a captured ACK frame.
func (r *Result) handleACK(rec *capture.Record, f *dot11.ACK, acc *secondAccum,
	pend *pendingData, firstSeen map[uint64]phy.Micros) {

	acc.stat.ACK++
	acc.stat.CBT += CBTACK()
	r.addRateCBT(acc, rec, CBTACK())
	acc.goodputBits += int64(rec.OrigLen) * 8

	// DATA–ACK atomicity (Sec 4.4): an ACK must follow its DATA; the
	// ACK's receiver is the DATA's transmitter.
	if pend.valid && pend.ta == f.RA && rec.Time-pend.end <= AckMatchWindow {
		// Successful acknowledgment: goodput and reception stats.
		acc.goodputBits += int64(pend.wireLen) * 8
		if !pend.retry {
			acc.firstAck[rateIdx(pend.rate)]++
		}
		// Acceptance delay: first attempt → this ACK.
		key := addrSeqKeyFromPending(pend)
		if first, ok := firstSeen[key]; ok {
			d := float64(rec.Time-first) / 1e6
			if ci, okc := CategoryOf(pend.wireLen, pend.rate).Index(); okc && d >= 0 {
				acc.delays = append(acc.delays, delaySample{cat: ci, delay: d})
			}
			delete(firstSeen, key)
		}
	} else {
		r.Unrecorded.MissingData++
		r.APs.attributeUnrecorded(f.RA)
	}
	pend.valid = false
}

// addRateCBT attributes a frame's CBT to its transmission rate bucket
// (Figure 8).
func (r *Result) addRateCBT(acc *secondAccum, rec *capture.Record, cbt phy.Micros) {
	acc.cbtPerRate[rateIdx(rec.Rate)] += cbt
}

// rateIdx maps a rate to 0..3, defaulting to 0 (1 Mbps) for invalid
// metadata.
func rateIdx(r phy.Rate) int {
	if i, ok := r.Index(); ok {
		return i
	}
	return 0
}

// addrSeqKey packs a transmitter address and sequence number.
func addrSeqKey(a dot11.Addr, seq uint16) uint64 {
	var v uint64
	for _, b := range a {
		v = v<<8 | uint64(b)
	}
	return v<<12 | uint64(seq&0xfff)
}

func addrSeqKeyFromPending(p *pendingData) uint64 { return p.seqKey }
