// Package core is the compatibility surface of the original batch
// analyzer. The analysis itself — the single-pass streaming metric
// pipeline — lives in package analysis, which is the canonical entry
// point; core re-exports its types and primitives so long-standing
// callers (and the beacon-reliability companion metric below in
// reliability.go) keep working unchanged.
package core

import (
	"wlan80211/internal/analysis"
	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
)

// Re-exported analysis types. Result and its components are aliases,
// so a core.Result is an analysis.Result and vice versa.
type (
	// Result is the full analysis of a trace.
	Result = analysis.Result
	// SecondStat is one second of one channel.
	SecondStat = analysis.SecondStat
	// UnrecordedStats aggregates Equation 1's inputs.
	UnrecordedStats = analysis.UnrecordedStats
	// UserPoint is one 30-second associated-user sample (Figure 4b).
	UserPoint = analysis.UserPoint
	// APReport holds per-AP traffic and unrecorded estimates.
	APReport = analysis.APReport
	// APStat is one AP's counters.
	APStat = analysis.APStat
	// SizeClass is one of the paper's four frame-size classes (Sec 6).
	SizeClass = analysis.SizeClass
	// Category is one of the 16 size×rate frame categories.
	Category = analysis.Category
	// Class is a congestion class (Sec 5.3).
	Class = analysis.Class
	// Classifier maps utilization percentages to congestion classes.
	Classifier = analysis.Classifier
	// BeaconReliability is the per-AP beacon reception ratio metric
	// (the E-WIND companion paper's congestion signal).
	BeaconReliability = analysis.BeaconReliability
	// ReliabilityPoint is one window of one AP's beacon reliability.
	ReliabilityPoint = analysis.ReliabilityPoint
)

// Table 2 delay components and matching windows.
const (
	DelayDIFS   = analysis.DelayDIFS
	DelaySIFS   = analysis.DelaySIFS
	DelayRTS    = analysis.DelayRTS
	DelayCTS    = analysis.DelayCTS
	DelayACK    = analysis.DelayACK
	DelayBeacon = analysis.DelayBeacon
	DelayBO     = analysis.DelayBO
	DelayPLCP   = analysis.DelayPLCP

	// AckMatchWindow is the maximum DATA-end→ACK-start gap of a
	// captured DATA–ACK exchange.
	AckMatchWindow = analysis.AckMatchWindow
	// UserWindowSeconds is the averaging window of Figure 4b.
	UserWindowSeconds = analysis.UserWindowSeconds
)

// The four size classes.
const (
	SizeS  = analysis.SizeS
	SizeM  = analysis.SizeM
	SizeL  = analysis.SizeL
	SizeXL = analysis.SizeXL
)

// The three congestion classes.
const (
	Uncongested = analysis.Uncongested
	Moderate    = analysis.Moderate
	High        = analysis.High
)

// Analyze runs the full pipeline over a merged trace. It is a thin
// wrapper over the streaming analysis package: records are fed per
// channel in time order through every registered metric stage.
func Analyze(recs []capture.Record) *Result { return analysis.Analyze(recs) }

// DataDelay is the paper's DDATA(size)(rate) formula (Table 2).
func DataDelay(sizeBytes int, r phy.Rate) phy.Micros { return analysis.DataDelay(sizeBytes, r) }

// CBTData is Equation 2: busy-time for a data frame.
func CBTData(sizeBytes int, r phy.Rate) phy.Micros { return analysis.CBTData(sizeBytes, r) }

// CBTRTS is Equation 3: busy-time for an RTS frame.
func CBTRTS() phy.Micros { return analysis.CBTRTS() }

// CBTCTS is Equation 4: busy-time for a CTS frame.
func CBTCTS() phy.Micros { return analysis.CBTCTS() }

// CBTACK is Equation 5: busy-time for an ACK frame.
func CBTACK() phy.Micros { return analysis.CBTACK() }

// CBTBeacon is Equation 6: busy-time for a beacon.
func CBTBeacon() phy.Micros { return analysis.CBTBeacon() }

// UtilizationPercent is Equation 8, clamped to 0..100.
func UtilizationPercent(cbtTotal phy.Micros) int { return analysis.UtilizationPercent(cbtTotal) }

// SizeClassOf buckets a wire frame length (bytes, FCS included).
func SizeClassOf(wireLen int) SizeClass { return analysis.SizeClassOf(wireLen) }

// CategoryOf builds the category of a frame.
func CategoryOf(wireLen int, r phy.Rate) Category { return analysis.CategoryOf(wireLen, r) }

// CategoryFromIndex is the inverse of Category.Index.
func CategoryFromIndex(i int) Category { return analysis.CategoryFromIndex(i) }

// AllCategories lists the 16 categories in Index order.
func AllCategories() []Category { return analysis.AllCategories() }

// PaperClassifier returns the thresholds the paper derives for the
// IETF network: 30% and 84%.
func PaperClassifier() Classifier { return analysis.PaperClassifier() }

// MeasureBeaconReliability scans a trace for beacons and computes the
// per-AP reception ratio over windows of the given length.
func MeasureBeaconReliability(recs []capture.Record, windowSeconds int) *BeaconReliability {
	return analysis.MeasureBeaconReliability(recs, windowSeconds)
}
