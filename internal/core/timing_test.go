package core

import (
	"testing"
	"testing/quick"

	"wlan80211/internal/phy"
)

// TestTable2Values pins the paper's Table 2 exactly.
func TestTable2Values(t *testing.T) {
	if DelayDIFS != 50 || DelaySIFS != 10 || DelayRTS != 352 ||
		DelayCTS != 304 || DelayACK != 304 || DelayBeacon != 304 ||
		DelayBO != 0 || DelayPLCP != 192 {
		t.Error("Table 2 constants drifted")
	}
}

func TestDataDelayFormula(t *testing.T) {
	// DDATA = 192 + 8*(34+size)/rate.
	cases := []struct {
		size int
		r    phy.Rate
		want phy.Micros
	}{
		{1000, phy.Rate1Mbps, 192 + 8*1034},          // 8464
		{1000, phy.Rate2Mbps, 192 + 8*1034/2},        // 4328
		{1466, phy.Rate11Mbps, 192 + (8*1500+10)/11}, // ceil(12000/11)=1091
		{0, phy.Rate1Mbps, 192 + 8*34},
	}
	for _, c := range cases {
		if got := DataDelay(c.size, c.r); got != c.want {
			t.Errorf("DataDelay(%d, %v) = %d, want %d", c.size, c.r, got, c.want)
		}
	}
	if DataDelay(-10, phy.Rate1Mbps) != DataDelay(0, phy.Rate1Mbps) {
		t.Error("negative size must clamp")
	}
	if DataDelay(100, phy.Rate(0)) != DelayPLCP {
		t.Error("invalid rate must degrade to PLCP only")
	}
}

func TestCBTEquations(t *testing.T) {
	// Equation 2: DIFS + DDATA.
	if got := CBTData(500, phy.Rate11Mbps); got != 50+DataDelay(500, phy.Rate11Mbps) {
		t.Errorf("CBTData = %d", got)
	}
	// Equations 3–6.
	if CBTRTS() != 352 {
		t.Errorf("CBTRTS = %d", CBTRTS())
	}
	if CBTCTS() != 10+304 {
		t.Errorf("CBTCTS = %d", CBTCTS())
	}
	if CBTACK() != 10+304 {
		t.Errorf("CBTACK = %d", CBTACK())
	}
	if CBTBeacon() != 50+304 {
		t.Errorf("CBTBeacon = %d", CBTBeacon())
	}
}

func TestUtilizationPercent(t *testing.T) {
	cases := []struct {
		cbt  phy.Micros
		want int
	}{
		{0, 0}, {500_000, 50}, {1_000_000, 100}, {1_500_000, 100},
		{-5, 0}, {839_999, 83}, {840_000, 84},
	}
	for _, c := range cases {
		if got := UtilizationPercent(c.cbt); got != c.want {
			t.Errorf("UtilizationPercent(%d) = %d, want %d", c.cbt, got, c.want)
		}
	}
}

// Property: CBT of data frames is monotone in size and antitone in
// rate, the two facts Sec 5.1 derives from Table 2.
func TestCBTMonotonicity(t *testing.T) {
	f := func(n uint16) bool {
		s := int(n % 2000)
		if CBTData(s, phy.Rate1Mbps) < CBTData(s, phy.Rate11Mbps) {
			return false
		}
		return CBTData(s+1, phy.Rate11Mbps) >= CBTData(s, phy.Rate11Mbps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeClassOf(t *testing.T) {
	cases := []struct {
		n    int
		want SizeClass
	}{{0, SizeS}, {400, SizeS}, {401, SizeM}, {800, SizeM}, {801, SizeL}, {1200, SizeL}, {1201, SizeXL}, {3000, SizeXL}}
	for _, c := range cases {
		if got := SizeClassOf(c.n); got != c.want {
			t.Errorf("SizeClassOf(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestSizeClassString(t *testing.T) {
	want := []string{"S", "M", "L", "XL"}
	for i, w := range want {
		if got := SizeClass(i).String(); got != w {
			t.Errorf("String(%d) = %q", i, got)
		}
	}
	if SizeClass(9).String() == "" {
		t.Error("unknown class must still format")
	}
}

func TestCategoryNaming(t *testing.T) {
	c := CategoryOf(300, phy.Rate11Mbps)
	if c.String() != "S-11" {
		t.Errorf("got %q, want S-11", c.String())
	}
	c = CategoryOf(1400, phy.Rate1Mbps)
	if c.String() != "XL-1" {
		t.Errorf("got %q, want XL-1", c.String())
	}
	c = CategoryOf(600, phy.Rate5_5Mbps)
	if c.String() != "M-5.5" {
		t.Errorf("got %q, want M-5.5", c.String())
	}
	bad := Category{Size: SizeS, Rate: phy.Rate(7)}
	if bad.String() != "S-?" {
		t.Errorf("invalid rate category = %q", bad.String())
	}
}

func TestCategoryIndexRoundTrip(t *testing.T) {
	seen := map[int]bool{}
	for _, c := range AllCategories() {
		i, ok := c.Index()
		if !ok {
			t.Fatalf("category %v has no index", c)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
		if back := CategoryFromIndex(i); back != c {
			t.Errorf("round trip %v → %d → %v", c, i, back)
		}
	}
	if len(seen) != 16 {
		t.Errorf("%d categories, want 16", len(seen))
	}
	if _, ok := (Category{Rate: phy.Rate(3)}).Index(); ok {
		t.Error("invalid rate must have no index")
	}
}

func TestClassifier(t *testing.T) {
	c := PaperClassifier()
	cases := []struct {
		u    int
		want Class
	}{{0, Uncongested}, {29, Uncongested}, {30, Moderate}, {84, Moderate}, {85, High}, {100, High}}
	for _, tc := range cases {
		if got := c.Classify(tc.u); got != tc.want {
			t.Errorf("Classify(%d) = %v, want %v", tc.u, got, tc.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if Uncongested.String() != "uncongested" ||
		Moderate.String() != "moderately congested" ||
		High.String() != "highly congested" {
		t.Error("class names drifted")
	}
	if Class(9).String() == "" {
		t.Error("unknown class must format")
	}
}
