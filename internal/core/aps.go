package core

import (
	"sort"

	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

// APReport accumulates per-AP traffic and unrecorded-frame estimates
// (Figures 4a and 4c). APs are discovered from beacons and FromDS data
// frames before the main pass.
type APReport struct {
	aps   map[dot11.Addr]*APStat
	known map[dot11.Addr]bool
}

// APStat is one AP's counters.
type APStat struct {
	// Addr identifies the AP (its BSSID).
	Addr dot11.Addr
	// Frames counts captured frames sent or received by the AP.
	Frames int64
	// Unrecorded counts frames attributed to the AP by the atomicity
	// estimators of Sec 4.4.
	Unrecorded int64
}

// UnrecordedPercent is Equation 1 applied per AP.
func (s *APStat) UnrecordedPercent() float64 {
	if s.Unrecorded+s.Frames == 0 {
		return 0
	}
	return 100 * float64(s.Unrecorded) / float64(s.Unrecorded+s.Frames)
}

func (r *APReport) init(aps map[dot11.Addr]bool) {
	r.aps = make(map[dot11.Addr]*APStat, len(aps))
	r.known = aps
	for a := range aps {
		r.aps[a] = &APStat{Addr: a}
	}
}

// IsAP reports whether an address belongs to a discovered AP.
func (r *APReport) IsAP(a dot11.Addr) bool { return r.known[a] }

// observe counts a captured frame against every AP that transmitted or
// was addressed by it.
func (r *APReport) observe(p dot11.Parsed) {
	count := func(a dot11.Addr) {
		if s, ok := r.aps[a]; ok {
			s.Frames++
		}
	}
	if ta, ok := dot11.TransmitterOf(p.Frame); ok {
		count(ta)
	}
	ra := dot11.ReceiverOf(p.Frame)
	if !ra.IsGroup() {
		count(ra)
	}
}

// attributeUnrecorded charges an estimated-unrecorded frame to the
// inferred transmitter, if it is an AP.
func (r *APReport) attributeUnrecorded(ta dot11.Addr) {
	if s, ok := r.aps[ta]; ok {
		s.Unrecorded++
	}
}

// Count returns the number of discovered APs.
func (r *APReport) Count() int { return len(r.aps) }

// Stat returns the stats for one AP (nil if unknown).
func (r *APReport) Stat(a dot11.Addr) *APStat { return r.aps[a] }

// TopN returns the N most active APs by frame count, in decreasing
// order — the ranking of Figures 4a and 4c.
func (r *APReport) TopN(n int) []*APStat {
	out := make([]*APStat, 0, len(r.aps))
	for _, s := range r.aps {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frames != out[j].Frames {
			return out[i].Frames > out[j].Frames
		}
		return out[i].Addr.String() < out[j].Addr.String() // stable tie-break
	})
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

// TopNShare returns the fraction of all AP-attributed frames carried
// by the N most active APs (the paper: top 15 carried 90.33% day,
// 95.37% plenary).
func (r *APReport) TopNShare(n int) float64 {
	var total, top int64
	ranked := r.TopN(len(r.aps))
	for i, s := range ranked {
		total += s.Frames
		if i < n {
			top += s.Frames
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// userCounter estimates the number of associated users per 30-second
// window by counting distinct client addresses participating in data
// exchanges (Figure 4b).
type userCounter struct {
	aps     map[dot11.Addr]bool
	windows map[int64]map[dot11.Addr]bool
}

func newUserCounter(aps map[dot11.Addr]bool) *userCounter {
	return &userCounter{aps: aps, windows: make(map[int64]map[dot11.Addr]bool)}
}

func (u *userCounter) observe(t phy.Micros, p dot11.Parsed) {
	d, ok := p.Frame.(*dot11.Data)
	if !ok {
		return
	}
	w := int64(t / phy.MicrosPerSecond / UserWindowSeconds)
	add := func(a dot11.Addr) {
		if a.IsGroup() || u.aps[a] {
			return
		}
		m, ok := u.windows[w]
		if !ok {
			m = make(map[dot11.Addr]bool)
			u.windows[w] = m
		}
		m[a] = true
	}
	// Client transmitters (ToDS) and client receivers (FromDS).
	add(d.Addr2)
	add(d.Addr1)
}

func (u *userCounter) series() []UserPoint {
	keys := make([]int64, 0, len(u.windows))
	for k := range u.windows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]UserPoint, len(keys))
	for i, k := range keys {
		out[i] = UserPoint{WindowStart: k * UserWindowSeconds, Users: len(u.windows[k])}
	}
	return out
}
