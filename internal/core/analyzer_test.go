package core

import (
	"testing"

	"wlan80211/internal/capture"
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
	"wlan80211/internal/stats"
)

var (
	apAddr  = dot11.AddrFromUint64(0x01)
	staAddr = dot11.AddrFromUint64(0x02)
	sta2    = dot11.AddrFromUint64(0x03)
)

// rec wraps a frame into a capture record.
func rec(t phy.Micros, f dot11.Frame, r phy.Rate) capture.Record {
	wire := f.AppendTo(nil)
	return capture.Record{
		Time: t, Rate: r, Channel: phy.Channel1,
		SignalDBm: -50, NoiseDBm: -95,
		OrigLen: f.WireLen(), Frame: wire,
	}
}

// dataAck builds a DATA(+ACK) exchange starting at t and returns the
// records plus the time just after the ACK.
func dataAck(t phy.Micros, ta dot11.Addr, size int, r phy.Rate, seq uint16, retry bool) ([]capture.Record, phy.Micros) {
	d := dot11.NewData(apAddr, ta, apAddr, seq, make([]byte, size))
	d.FC.ToDS = true
	d.FC.Retry = retry
	recs := []capture.Record{rec(t, d, r)}
	end := t + phy.Airtime(d.WireLen(), r)
	ack := dot11.NewACK(ta)
	recs = append(recs, rec(end+phy.SIFS, ack, phy.Rate1Mbps))
	return recs, end + phy.SIFS + phy.Airtime(14, phy.Rate1Mbps)
}

func beaconRec(t phy.Micros) capture.Record {
	b := dot11.NewBeacon(apAddr, "net", 1, uint64(t), 1)
	return rec(t, b, phy.Rate1Mbps)
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	r := Analyze(nil)
	if r.TotalFrames != 0 || len(r.PerChannel) != 0 {
		t.Error("empty trace must produce empty result")
	}
	if r.Unrecorded.Percent() != 0 {
		t.Error("empty unrecorded percent")
	}
}

func TestAnalyzeDataAckExchange(t *testing.T) {
	var recs []capture.Record
	recs = append(recs, beaconRec(1000)) // discover the AP
	more, _ := dataAck(200_000, staAddr, 500, phy.Rate11Mbps, 7, false)
	recs = append(recs, more...)
	r := Analyze(recs)

	if r.TotalFrames != 3 {
		t.Fatalf("TotalFrames = %d", r.TotalFrames)
	}
	if r.ParseErrors != 0 {
		t.Fatalf("ParseErrors = %d", r.ParseErrors)
	}
	// No unrecorded frames in a complete exchange.
	if r.Unrecorded.Total() != 0 {
		t.Errorf("Unrecorded = %+v", r.Unrecorded)
	}
	secs := r.PerChannel[phy.Channel1]
	if len(secs) != 1 {
		t.Fatalf("seconds = %d", len(secs))
	}
	s := secs[0]
	if s.Data != 1 || s.ACK != 1 || s.Beacon != 1 {
		t.Errorf("counts: %+v", s)
	}
	// CBT = beacon (354) + data (50 + 192 + ceil(8*(34+528)/11)) + ack (314).
	wantData := CBTData(528, phy.Rate11Mbps)
	want := CBTBeacon() + wantData + CBTACK()
	if s.CBT != want {
		t.Errorf("CBT = %d, want %d", s.CBT, want)
	}
	// Goodput counts all three frames (beacon+ack control, data acked).
	if s.GoodputMbps <= 0 || s.GoodputMbps > s.ThroughputMbps {
		t.Errorf("goodput %v vs throughput %v", s.GoodputMbps, s.ThroughputMbps)
	}
	// First-attempt ack at 11 Mbps recorded at this second's utilization.
	u := s.Utilization
	if m, n := r.FirstAckPerRate[3].Mean(u); n != 1 || m != 1 {
		t.Errorf("FirstAckPerRate[11] at u=%d: %v,%d", u, m, n)
	}
	// Acceptance delay present for S-11.
	ci, _ := CategoryOf(528, phy.Rate11Mbps).Index()
	if _, n := r.AcceptDelay[ci].Mean(u); n != 1 {
		t.Errorf("AcceptDelay missing for cat %d", ci)
	}
}

func TestAcceptanceDelaySpansRetries(t *testing.T) {
	// First attempt at t=0 (no ACK), retry at t=50ms (ACK'd): delay
	// measured from the first attempt.
	d1 := dot11.NewData(apAddr, staAddr, apAddr, 9, make([]byte, 500))
	d1.FC.ToDS = true
	recs := []capture.Record{beaconRec(100), rec(10_000, d1, phy.Rate11Mbps)}
	d2 := dot11.NewData(apAddr, staAddr, apAddr, 9, make([]byte, 500))
	d2.FC.ToDS = true
	d2.FC.Retry = true
	recs = append(recs, rec(60_000, d2, phy.Rate11Mbps))
	end := phy.Micros(60_000) + phy.Airtime(d2.WireLen(), phy.Rate11Mbps)
	recs = append(recs, rec(end+phy.SIFS, dot11.NewACK(staAddr), phy.Rate1Mbps))

	r := Analyze(recs)
	ci, _ := CategoryOf(d2.WireLen(), phy.Rate11Mbps).Index()
	var got float64
	found := false
	for u := 0; u <= 100; u++ {
		if m, n := r.AcceptDelay[ci].Mean(u); n > 0 {
			got, found = m, true
		}
	}
	if !found {
		t.Fatal("no delay sample")
	}
	wantMin := float64(end+phy.SIFS-10_000) / 1e6
	if got < wantMin-1e-9 {
		t.Errorf("delay %v < %v: not measured from first attempt", got, wantMin)
	}
	// The retried frame must NOT count as a first-attempt ack.
	for u := 0; u <= 100; u++ {
		if m, n := r.FirstAckPerRate[3].Mean(u); n > 0 && m > 0 {
			t.Error("retry counted as first-attempt ack")
		}
	}
}

func TestMissingDataEstimator(t *testing.T) {
	// An ACK with no preceding DATA → one unrecorded data frame,
	// attributed to the AP (the ACK receiver).
	recs := []capture.Record{
		beaconRec(100),
		rec(500_000, dot11.NewACK(apAddr), phy.Rate1Mbps),
	}
	r := Analyze(recs)
	if r.Unrecorded.MissingData != 1 {
		t.Errorf("MissingData = %d", r.Unrecorded.MissingData)
	}
	st := r.APs.Stat(apAddr)
	if st == nil || st.Unrecorded != 1 {
		t.Errorf("AP attribution: %+v", st)
	}
	if p := r.Unrecorded.Percent(); p <= 0 || p >= 100 {
		t.Errorf("Percent = %v", p)
	}
}

func TestMissingRTSEstimator(t *testing.T) {
	// A CTS with no preceding RTS → one unrecorded RTS.
	recs := []capture.Record{
		beaconRec(100),
		rec(500_000, dot11.NewCTS(apAddr, 1000), phy.Rate1Mbps),
	}
	r := Analyze(recs)
	if r.Unrecorded.MissingRTS != 1 {
		t.Errorf("MissingRTS = %d", r.Unrecorded.MissingRTS)
	}
}

func TestMissingCTSEstimator(t *testing.T) {
	// RTS followed by its DATA with no CTS between → unrecorded CTS.
	rts := dot11.NewRTS(apAddr, staAddr, 2000)
	d := dot11.NewData(apAddr, staAddr, apAddr, 3, make([]byte, 900))
	d.FC.ToDS = true
	recs := []capture.Record{
		beaconRec(100),
		rec(500_000, rts, phy.Rate1Mbps),
		rec(501_000, d, phy.Rate11Mbps),
	}
	r := Analyze(recs)
	if r.Unrecorded.MissingCTS != 1 {
		t.Errorf("MissingCTS = %d", r.Unrecorded.MissingCTS)
	}
	// AP (the RTS receiver = CTS sender) gets the attribution.
	if st := r.APs.Stat(apAddr); st == nil || st.Unrecorded != 1 {
		t.Error("missing CTS not attributed to AP")
	}
}

func TestCompleteRTSCTSExchangeNotFlagged(t *testing.T) {
	rts := dot11.NewRTS(apAddr, staAddr, 2000)
	rtsEnd := phy.Micros(500_000) + phy.Airtime(20, phy.Rate1Mbps)
	cts := dot11.NewCTS(staAddr, 1500)
	ctsStart := rtsEnd + phy.SIFS
	ctsEnd := ctsStart + phy.Airtime(14, phy.Rate1Mbps)
	d := dot11.NewData(apAddr, staAddr, apAddr, 4, make([]byte, 900))
	d.FC.ToDS = true
	dStart := ctsEnd + phy.SIFS
	dEnd := dStart + phy.Airtime(d.WireLen(), phy.Rate11Mbps)
	recs := []capture.Record{
		beaconRec(100),
		rec(500_000, rts, phy.Rate1Mbps),
		rec(ctsStart, cts, phy.Rate1Mbps),
		rec(dStart, d, phy.Rate11Mbps),
		rec(dEnd+phy.SIFS, dot11.NewACK(staAddr), phy.Rate1Mbps),
	}
	r := Analyze(recs)
	if r.Unrecorded.Total() != 0 {
		t.Errorf("complete exchange flagged unrecorded: %+v", r.Unrecorded)
	}
	secs := r.PerChannel[phy.Channel1]
	if secs[0].RTS != 1 || secs[0].CTS != 1 {
		t.Errorf("RTS/CTS counts: %+v", secs[0])
	}
}

func TestAPDiscoveryAndRanking(t *testing.T) {
	ap2 := dot11.AddrFromUint64(0x20)
	var recs []capture.Record
	recs = append(recs, beaconRec(100))
	b2 := dot11.NewBeacon(ap2, "net", 6, 200, 1)
	recs = append(recs, rec(200, b2, phy.Rate1Mbps))
	// 3 exchanges via ap1, 1 via ap2.
	t0 := phy.Micros(300_000)
	for i := 0; i < 3; i++ {
		more, end := dataAck(t0, staAddr, 400, phy.Rate11Mbps, uint16(10+i), false)
		recs = append(recs, more...)
		t0 = end + 1000
	}
	d := dot11.NewData(ap2, sta2, ap2, 40, make([]byte, 400))
	d.FC.ToDS = true
	recs = append(recs, rec(t0, d, phy.Rate11Mbps))

	r := Analyze(recs)
	if r.APs.Count() != 2 {
		t.Fatalf("APs = %d", r.APs.Count())
	}
	top := r.APs.TopN(2)
	if top[0].Addr != apAddr {
		t.Errorf("top AP = %v", top[0].Addr)
	}
	if top[0].Frames <= top[1].Frames {
		t.Error("ranking not decreasing")
	}
	if share := r.APs.TopNShare(1); share <= 0.5 || share >= 1 {
		t.Errorf("TopNShare = %v", share)
	}
	if !r.APs.IsAP(apAddr) || r.APs.IsAP(staAddr) {
		t.Error("IsAP wrong")
	}
}

func TestUserCounting(t *testing.T) {
	var recs []capture.Record
	recs = append(recs, beaconRec(100))
	// Two distinct stations in window 0; one in window 1.
	m1, _ := dataAck(1_000_000, staAddr, 300, phy.Rate11Mbps, 1, false)
	m2, _ := dataAck(2_000_000, sta2, 300, phy.Rate11Mbps, 1, false)
	m3, _ := dataAck(31_000_000, staAddr, 300, phy.Rate11Mbps, 2, false)
	recs = append(append(append(recs, m1...), m2...), m3...)
	r := Analyze(recs)
	if len(r.Users) != 2 {
		t.Fatalf("windows = %d", len(r.Users))
	}
	if r.Users[0].Users != 2 {
		t.Errorf("window 0 users = %d, want 2", r.Users[0].Users)
	}
	if r.Users[1].Users != 1 {
		t.Errorf("window 1 users = %d, want 1", r.Users[1].Users)
	}
	if r.Users[0].WindowStart != 0 || r.Users[1].WindowStart != 30 {
		t.Errorf("window starts: %+v", r.Users)
	}
}

func TestGapFreeTimeSeries(t *testing.T) {
	// Frames at seconds 0 and 3: series must contain seconds 0..3.
	var recs []capture.Record
	recs = append(recs, beaconRec(100))
	more, _ := dataAck(3_200_000, staAddr, 300, phy.Rate11Mbps, 1, false)
	recs = append(recs, more...)
	r := Analyze(recs)
	secs := r.PerChannel[phy.Channel1]
	if len(secs) != 4 {
		t.Fatalf("series length = %d, want 4", len(secs))
	}
	for i, s := range secs {
		if s.Second != int64(i) {
			t.Errorf("series[%d].Second = %d", i, s.Second)
		}
	}
	if secs[1].CBT != 0 || secs[2].CBT != 0 {
		t.Error("idle seconds must have zero CBT")
	}
	if r.UtilHist.N() != 4 {
		t.Errorf("hist N = %d", r.UtilHist.N())
	}
}

func TestBusyTimeAndBytesPerRate(t *testing.T) {
	var recs []capture.Record
	recs = append(recs, beaconRec(100))
	m1, next := dataAck(200_000, staAddr, 1400, phy.Rate1Mbps, 1, false)
	recs = append(recs, m1...)
	m2, _ := dataAck(next+1000, sta2, 1400, phy.Rate11Mbps, 1, false)
	recs = append(recs, m2...)
	r := Analyze(recs)
	u := r.PerChannel[phy.Channel1][0].Utilization
	slow, _ := r.BusyTimePerRate[0].Mean(u)
	fast, _ := r.BusyTimePerRate[3].Mean(u)
	if slow <= fast {
		t.Errorf("1 Mbps busy time (%v) must exceed 11 Mbps (%v) for equal frames", slow, fast)
	}
	b1, _ := r.BytesPerRate[0].Mean(u)
	b11, _ := r.BytesPerRate[3].Mean(u)
	if b1 <= 0 || b11 <= 0 {
		t.Error("bytes per rate missing")
	}
}

func TestTxPerCategory(t *testing.T) {
	var recs []capture.Record
	recs = append(recs, beaconRec(100))
	m1, next := dataAck(200_000, staAddr, 100, phy.Rate11Mbps, 1, false) // S-11
	recs = append(recs, m1...)
	m2, _ := dataAck(next+1000, sta2, 1400, phy.Rate1Mbps, 1, false) // XL-1
	recs = append(recs, m2...)
	r := Analyze(recs)
	u := r.PerChannel[phy.Channel1][0].Utilization
	s11, _ := CategoryOf(128, phy.Rate11Mbps).Index()
	xl1, _ := CategoryOf(1428, phy.Rate1Mbps).Index()
	if m, n := r.TxPerCategory[s11].Mean(u); n != 1 || m != 1 {
		t.Errorf("S-11 count: %v,%d", m, n)
	}
	if m, n := r.TxPerCategory[xl1].Mean(u); n != 1 || m != 1 {
		t.Errorf("XL-1 count: %v,%d", m, n)
	}
}

func TestParseErrorsCounted(t *testing.T) {
	recs := []capture.Record{
		beaconRec(100),
		{Time: 200, Rate: phy.Rate1Mbps, Channel: phy.Channel1, OrigLen: 1, Frame: []byte{0xff}},
	}
	r := Analyze(recs)
	if r.ParseErrors != 1 {
		t.Errorf("ParseErrors = %d", r.ParseErrors)
	}
}

func TestFindKneeFromSyntheticCurve(t *testing.T) {
	r := &Result{}
	// Throughput rises to a peak at 84 then collapses.
	for u := 30; u <= 99; u++ {
		var v float64
		if u <= 84 {
			v = float64(u) / 84 * 4.9
		} else {
			v = 4.9 - float64(u-84)*0.15
		}
		for i := 0; i < 5; i++ {
			r.Throughput.Add(u, v)
		}
	}
	knee := r.FindKnee(30, 99, 3)
	if knee < 81 || knee > 87 {
		t.Errorf("knee = %d, want 84±3 (window smoothing)", knee)
	}
	// Derived classifier uses it.
	c := r.DeriveClassifier()
	if c.Low != 30 || c.Knee != knee {
		t.Errorf("classifier = %+v", c)
	}
}

func TestFindKneeFallback(t *testing.T) {
	r := &Result{}
	if knee := r.FindKnee(30, 99, 1); knee != 84 {
		t.Errorf("empty-data knee = %d, want fallback 84", knee)
	}
}

func TestClassShare(t *testing.T) {
	h := stats.NewHistogram(101)
	for v, n := range map[int]int{10: 5, 50: 3, 90: 2} {
		for i := 0; i < n; i++ {
			h.Add(v)
		}
	}
	r := &Result{UtilHist: h}
	share := r.ClassShare(PaperClassifier())
	if share[Uncongested] != 0.5 || share[Moderate] != 0.3 || share[High] != 0.2 {
		t.Errorf("shares = %v", share)
	}
}

func TestAnalyzeMultiChannel(t *testing.T) {
	// Records on two channels are analyzed independently; each channel
	// gets its own utilization series.
	var recs []capture.Record
	recs = append(recs, beaconRec(100))
	m1, _ := dataAck(200_000, staAddr, 600, phy.Rate11Mbps, 1, false)
	recs = append(recs, m1...)
	ch6 := beaconRec(150)
	ch6.Channel = phy.Channel6
	recs = append(recs, ch6)
	m2, _ := dataAck(300_000, sta2, 600, phy.Rate11Mbps, 1, false)
	for i := range m2 {
		m2[i].Channel = phy.Channel6
	}
	recs = append(recs, m2...)

	r := Analyze(recs)
	if len(r.PerChannel[phy.Channel1]) != 1 || len(r.PerChannel[phy.Channel6]) != 1 {
		t.Fatalf("per-channel series: %d/%d",
			len(r.PerChannel[phy.Channel1]), len(r.PerChannel[phy.Channel6]))
	}
	// Two channel-seconds in the histogram.
	if r.UtilHist.N() != 2 {
		t.Errorf("hist N = %d", r.UtilHist.N())
	}
}

func TestAnalyzeOutOfOrderRecords(t *testing.T) {
	// The analyzer sorts per channel, so shuffled input produces the
	// same result as ordered input.
	var recs []capture.Record
	recs = append(recs, beaconRec(100))
	m, _ := dataAck(200_000, staAddr, 500, phy.Rate11Mbps, 3, false)
	recs = append(recs, m...)
	shuffled := []capture.Record{recs[2], recs[0], recs[1]}
	a := Analyze(recs)
	b := Analyze(shuffled)
	if a.Unrecorded != b.Unrecorded || a.TotalFrames != b.TotalFrames {
		t.Error("order dependence detected")
	}
	sa := a.PerChannel[phy.Channel1][0]
	sb := b.PerChannel[phy.Channel1][0]
	if sa.CBT != sb.CBT || sa.GoodputMbps != sb.GoodputMbps {
		t.Errorf("per-second stats differ: %+v vs %+v", sa, sb)
	}
}

func TestAckOutsideWindowNotMatched(t *testing.T) {
	// An ACK arriving far later than SIFS does not acknowledge the
	// data frame; it is counted as an orphan (missing data).
	d := dot11.NewData(apAddr, staAddr, apAddr, 5, make([]byte, 300))
	d.FC.ToDS = true
	recs := []capture.Record{
		beaconRec(100),
		rec(200_000, d, phy.Rate11Mbps),
		rec(900_000, dot11.NewACK(staAddr), phy.Rate1Mbps), // 700 ms later
	}
	r := Analyze(recs)
	if r.Unrecorded.MissingData != 1 {
		t.Errorf("late ACK must count as orphan: %+v", r.Unrecorded)
	}
	// And the data frame is not goodput.
	s := r.PerChannel[phy.Channel1][0]
	if s.GoodputMbps >= s.ThroughputMbps {
		t.Error("unacked data must not be goodput")
	}
}

func TestAckForDifferentStationNotMatched(t *testing.T) {
	// DATA from staAddr followed by an ACK addressed to sta2: no match.
	d := dot11.NewData(apAddr, staAddr, apAddr, 6, make([]byte, 300))
	d.FC.ToDS = true
	end := phy.Micros(200_000) + phy.Airtime(d.WireLen(), phy.Rate11Mbps)
	recs := []capture.Record{
		beaconRec(100),
		rec(200_000, d, phy.Rate11Mbps),
		rec(end+phy.SIFS, dot11.NewACK(sta2), phy.Rate1Mbps),
	}
	r := Analyze(recs)
	if r.Unrecorded.MissingData != 1 {
		t.Errorf("mismatched ACK must be orphan: %+v", r.Unrecorded)
	}
}

func TestBroadcastDataIsGoodputWithoutAck(t *testing.T) {
	d := dot11.NewData(dot11.Broadcast, apAddr, apAddr, 7, make([]byte, 200))
	d.FC.FromDS = true
	recs := []capture.Record{beaconRec(100), rec(200_000, d, phy.Rate11Mbps)}
	r := Analyze(recs)
	s := r.PerChannel[phy.Channel1][0]
	// Beacon + broadcast data both count fully toward goodput.
	if s.GoodputMbps != s.ThroughputMbps {
		t.Errorf("broadcast goodput %v != throughput %v", s.GoodputMbps, s.ThroughputMbps)
	}
	if r.Unrecorded.Total() != 0 {
		t.Error("broadcast needs no ACK; nothing is missing")
	}
}

func TestUtilizationClampAt100(t *testing.T) {
	// Pathological trace: enormous CBT in one second must clamp.
	var recs []capture.Record
	recs = append(recs, beaconRec(100))
	t0 := phy.Micros(200_000)
	for i := 0; i < 200; i++ {
		d := dot11.NewData(apAddr, staAddr, apAddr, uint16(i), make([]byte, 1400))
		d.FC.ToDS = true
		recs = append(recs, rec(t0, d, phy.Rate1Mbps))
		t0 += 3000
	}
	r := Analyze(recs)
	if u := r.PerChannel[phy.Channel1][0].Utilization; u != 100 {
		t.Errorf("utilization = %d, want clamp at 100", u)
	}
}
