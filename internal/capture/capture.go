// Package capture defines the in-memory representation of a sniffed
// 802.11 frame — the MAC frame bytes plus the RFMon metadata the
// paper's sniffers recorded (timestamp, rate, channel, SNR) — and the
// bridging to the on-disk radiotap/pcap representation. It also merges
// the per-channel traces of multiple sniffers into one time-ordered
// stream, the first step of the paper's analysis pipeline.
package capture

import (
	"errors"
	"fmt"
	"io"
	"slices"

	"wlan80211/internal/pcapio"
	"wlan80211/internal/phy"
	"wlan80211/internal/radiotap"
)

// Record is one captured frame with its RFMon metadata.
type Record struct {
	// Time is the capture timestamp in microseconds from the trace
	// epoch (the arrival time of the first bit).
	Time phy.Micros
	// Rate is the transmission rate of the frame.
	Rate phy.Rate
	// Channel is the channel the sniffer captured on.
	Channel phy.Channel
	// SignalDBm / NoiseDBm give received power and noise floor.
	SignalDBm int8
	NoiseDBm  int8
	// SnifferID identifies which sniffer produced the record, for
	// multi-sniffer dedup during merge.
	SnifferID int
	// OrigLen is the over-the-air frame length in bytes including the
	// FCS — the length the paper's airtime and size-class computations
	// use. Frame may be shorter (snap truncation).
	OrigLen int
	// Frame holds the captured MAC frame bytes, without FCS.
	Frame []byte
}

// SNR returns the record's signal-to-noise ratio in dB.
func (r *Record) SNR() float64 { return float64(r.SignalDBm) - float64(r.NoiseDBm) }

// Second returns the one-second analysis interval this record falls
// into (the paper computes all per-second metrics on these).
func (r *Record) Second() int64 { return int64(r.Time / phy.MicrosPerSecond) }

// ErrLinkType is returned when reading a pcap whose link type is not
// radiotap-encapsulated 802.11.
var ErrLinkType = errors.New("capture: pcap link type is not radiotap (127)")

// ToPcap converts a Record to a pcap record with a radiotap header.
func ToPcap(r Record) pcapio.Record {
	h := radiotap.Header{
		TSFT: uint64(r.Time), HaveTSFT: true,
		Flags: 0, HaveFlags: true,
		Rate: r.Rate, HaveRate: true,
		Channel: r.Channel, HaveChannel: true,
		SignalDBm: r.SignalDBm, HaveSignal: true,
		NoiseDBm: r.NoiseDBm, HaveNoise: true,
	}
	hdr := h.Encode()
	data := make([]byte, 0, len(hdr)+len(r.Frame))
	data = append(data, hdr...)
	data = append(data, r.Frame...)
	return pcapio.Record{
		TimestampMicros: int64(r.Time),
		OrigLen:         len(hdr) + r.OrigLen,
		Data:            data,
	}
}

// FromPcap converts a radiotap pcap record back to a capture Record.
func FromPcap(p pcapio.Record) (Record, error) {
	h, err := radiotap.Decode(p.Data)
	if err != nil {
		return Record{}, fmt.Errorf("capture: decoding radiotap: %w", err)
	}
	r := Record{
		Time:    phy.Micros(p.TimestampMicros),
		OrigLen: p.OrigLen - h.Length,
		Frame:   p.Data[h.Length:],
	}
	if h.HaveTSFT {
		r.Time = phy.Micros(h.TSFT)
	}
	if h.HaveRate {
		r.Rate = h.Rate
	}
	if h.HaveChannel {
		r.Channel = h.Channel
	}
	if h.HaveSignal {
		r.SignalDBm = h.SignalDBm
	}
	if h.HaveNoise {
		r.NoiseDBm = h.NoiseDBm
	}
	if r.OrigLen < len(r.Frame) {
		r.OrigLen = len(r.Frame)
	}
	return r, nil
}

// Writer writes capture records to a radiotap pcap stream.
type Writer struct {
	pw *pcapio.Writer
}

// NewWriter creates a radiotap pcap writer with the given snap length
// applied to the MAC frame (the radiotap header is always kept whole,
// mirroring how tethereal snaps after the capture header).
func NewWriter(w io.Writer, snapLen int) (*Writer, error) {
	// Reserve headroom for the radiotap header (max 24 bytes here).
	pcapSnap := 0
	if snapLen > 0 {
		pcapSnap = snapLen + 24
	}
	pw, err := pcapio.NewWriter(w, pcapio.LinkTypeRadiotap, pcapSnap)
	if err != nil {
		return nil, err
	}
	return &Writer{pw: pw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error { return w.pw.WriteRecord(ToPcap(r)) }

// Flush flushes the underlying pcap writer.
func (w *Writer) Flush() error { return w.pw.Flush() }

// ReadAll reads an entire radiotap pcap stream into capture records.
// Records that fail radiotap decoding are skipped (counted in the
// second return), matching the tolerant behaviour of trace tooling.
func ReadAll(rd io.Reader) ([]Record, int, error) {
	pr, err := pcapio.NewReader(rd)
	if err != nil {
		return nil, 0, err
	}
	if pr.LinkType() != pcapio.LinkTypeRadiotap {
		return nil, 0, ErrLinkType
	}
	var recs []Record
	skipped := 0
	for {
		p, err := pr.Next()
		if err == io.EOF {
			return recs, skipped, nil
		}
		if err != nil {
			return recs, skipped, err
		}
		r, err := FromPcap(p)
		if err != nil {
			skipped++
			continue
		}
		recs = append(recs, r)
	}
}

// minMergeRunLen is the average ascending-run length below which
// Merge abandons the run-merging path for the index sort: traces that
// fragmented into short runs pay more for run bookkeeping than the
// sort costs.
const minMergeRunLen = 32

// Merge combines multiple per-sniffer traces into one stream sorted by
// timestamp. When two sniffers captured the same transmission (equal
// time, channel, and frame bytes), only one copy is kept — co-located
// sniffers during the plenary session would otherwise double-count.
// The inputs need not be sorted. Merge is stable for distinct records
// with equal timestamps.
//
// Sniffer traces are nearly time-sorted already (capture order is
// transmission-end order; starts lag by at most one airtime), so
// Merge first splits every trace into maximal non-decreasing runs and
// k-way-merges them in ~O(n) when the runs are long — typically a
// handful of runs per trace. Heavily shuffled input falls back to the
// O(n log n) index sort.
func Merge(traces ...[]Record) []Record {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	if total == 0 {
		return nil
	}
	// Split into maximal non-decreasing runs, in input order: run i
	// precedes run j exactly when every record of i precedes every
	// record of j in the original concatenation — which makes a k-way
	// merge that breaks ties by run index equivalent to the stable
	// (original-position) sort.
	runs := make([][]Record, 0, len(traces))
	for _, tr := range traces {
		for i := 0; i < len(tr); {
			j := i + 1
			for j < len(tr) && tr[j].Time >= tr[j-1].Time {
				j++
			}
			runs = append(runs, tr[i:j])
			i = j
		}
	}
	var out []Record
	if total/len(runs) >= minMergeRunLen || len(runs) <= len(traces) {
		out = mergeRuns(runs, total)
	} else {
		out = sortConcat(traces, total)
	}
	// Drop duplicates among equal-time runs.
	dedup := out[:0]
	for i, r := range out {
		dup := false
		for j := i - 1; j >= 0 && out[j].Time == r.Time; j-- {
			if sameAir(&out[j], &r) {
				dup = true
				break
			}
		}
		if !dup {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

// mergeRuns k-way-merges already-sorted runs into one stream: O(n)
// for one run, O(n log k) otherwise, against the index sort's
// O(n log n). Ties pop from the lowest run index, matching the stable
// sort (runs are in original-position order).
func mergeRuns(runs [][]Record, total int) []Record {
	out := make([]Record, 0, total)
	if len(runs) == 1 {
		return append(out, runs[0]...)
	}
	// heap is a binary min-heap of run indices ordered by each run's
	// head record time, ties by run index.
	heap := make([]int32, 0, len(runs))
	less := func(a, b int32) bool {
		ta, tb := runs[a][0].Time, runs[b][0].Time
		if ta != tb {
			return ta < tb
		}
		return a < b
	}
	push := func(ri int32) {
		heap = append(heap, ri)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	for ri := range runs {
		push(int32(ri))
	}
	for len(heap) > 0 {
		ri := heap[0]
		out = append(out, runs[ri][0])
		runs[ri] = runs[ri][1:]
		if len(runs[ri]) == 0 {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown()
	}
	return out
}

// sortConcat is the fallback for heavily shuffled input: concatenate
// and index-sort, then apply the permutation in place.
func sortConcat(traces [][]Record, total int) []Record {
	merged := make([]Record, 0, total)
	for _, t := range traces {
		merged = append(merged, t...)
	}
	// Sort indices, not 80-byte records; breaking ties by original
	// position makes the unstable sort equivalent to a stable one.
	idx := make([]int32, len(merged))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		ta, tb := merged[a].Time, merged[b].Time
		switch {
		case ta < tb:
			return -1
		case ta > tb:
			return 1
		}
		return int(a - b)
	})
	// Apply the permutation in place by following its cycles (marking
	// visited entries with -1), avoiding a second record buffer.
	for i := range idx {
		j := idx[i]
		if j < 0 || int(j) == i {
			idx[i] = -1
			continue
		}
		tmp := merged[i]
		k := i
		for int(j) != i {
			merged[k] = merged[j]
			idx[k] = -1
			k = int(j)
			j = idx[k]
		}
		merged[k] = tmp
		idx[k] = -1
	}
	return merged
}

// sameAir reports whether two records describe the same over-the-air
// transmission seen by different sniffers.
func sameAir(a, b *Record) bool {
	if a.Time != b.Time || a.Channel != b.Channel || a.Rate != b.Rate || len(a.Frame) != len(b.Frame) {
		return false
	}
	for i := range a.Frame {
		if a.Frame[i] != b.Frame[i] {
			return false
		}
	}
	return true
}

// SplitByChannel partitions a merged trace by channel, the unit at
// which the paper computes utilization (each sniffer listened to one
// of channels 1, 6, 11).
func SplitByChannel(recs []Record) map[phy.Channel][]Record {
	out := make(map[phy.Channel][]Record)
	for _, r := range recs {
		out[r.Channel] = append(out[r.Channel], r)
	}
	return out
}
