package capture

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"wlan80211/internal/dot11"
	"wlan80211/internal/pcapio"
	"wlan80211/internal/phy"
)

func testRecord(t phy.Micros, ch phy.Channel, payload byte) Record {
	f := dot11.NewData(dot11.AddrFromUint64(1), dot11.AddrFromUint64(2), dot11.AddrFromUint64(3), 1, []byte{payload})
	wire := f.AppendTo(nil)
	return Record{
		Time: t, Rate: phy.Rate11Mbps, Channel: ch,
		SignalDBm: -50, NoiseDBm: -95,
		OrigLen: f.WireLen(), Frame: wire,
	}
}

func TestSNRAndSecond(t *testing.T) {
	r := testRecord(2_500_000, phy.Channel1, 0)
	if r.SNR() != 45 {
		t.Errorf("SNR = %v", r.SNR())
	}
	if r.Second() != 2 {
		t.Errorf("Second = %d", r.Second())
	}
}

func TestPcapRoundTrip(t *testing.T) {
	r := testRecord(123456, phy.Channel6, 0xaa)
	p := ToPcap(r)
	got, err := FromPcap(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != r.Time || got.Rate != r.Rate || got.Channel != r.Channel ||
		got.SignalDBm != r.SignalDBm || got.NoiseDBm != r.NoiseDBm {
		t.Errorf("metadata mismatch: %+v vs %+v", got, r)
	}
	if !bytes.Equal(got.Frame, r.Frame) {
		t.Error("frame bytes mismatch")
	}
	if got.OrigLen != r.OrigLen {
		t.Errorf("OrigLen = %d, want %d", got.OrigLen, r.OrigLen)
	}
}

func TestWriterReadAll(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		testRecord(1000, phy.Channel1, 1),
		testRecord(2000, phy.Channel6, 2),
		testRecord(3000, phy.Channel11, 3),
	}
	for _, r := range want {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	got, skipped, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i].Time != want[i].Time || got[i].Channel != want[i].Channel {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestWriterSnapLen(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 250)
	if err != nil {
		t.Fatal(err)
	}
	big := testRecord(1, phy.Channel1, 0)
	big.Frame = bytes.Repeat([]byte{0x08, 0x00}, 700) // 1400-byte frame
	big.OrigLen = 1404
	if err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, _, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("lost record")
	}
	// Frame snapped to ~250 bytes but OrigLen preserved.
	if len(got[0].Frame) > 260 {
		t.Errorf("frame not snapped: %d bytes", len(got[0].Frame))
	}
	if got[0].OrigLen != 1404 {
		t.Errorf("OrigLen = %d, want 1404", got[0].OrigLen)
	}
}

func TestReadAllWrongLinkType(t *testing.T) {
	var buf bytes.Buffer
	pw, _ := pcapio.NewWriter(&buf, pcapio.LinkTypeIEEE80211, 0)
	pw.WriteRecord(pcapio.Record{Data: []byte{1}})
	pw.Flush()
	if _, _, err := ReadAll(&buf); err != ErrLinkType {
		t.Errorf("err = %v, want ErrLinkType", err)
	}
}

func TestReadAllSkipsBadRadiotap(t *testing.T) {
	var buf bytes.Buffer
	pw, _ := pcapio.NewWriter(&buf, pcapio.LinkTypeRadiotap, 0)
	pw.WriteRecord(ToPcap(testRecord(1, phy.Channel1, 0)))
	pw.WriteRecord(pcapio.Record{TimestampMicros: 2, Data: []byte{9, 9}}) // garbage
	pw.WriteRecord(ToPcap(testRecord(3, phy.Channel1, 0)))
	pw.Flush()
	got, skipped, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(got) != 2 {
		t.Errorf("skipped=%d len=%d", skipped, len(got))
	}
}

func TestMergeSortsAndDedups(t *testing.T) {
	a := testRecord(100, phy.Channel1, 1)
	b := testRecord(50, phy.Channel1, 2)
	dupOfA := a // same transmission seen by another sniffer
	dupOfA.SnifferID = 2
	dupOfA.SignalDBm = -60 // different RSSI at a different sniffer
	c := testRecord(100, phy.Channel6, 3)

	merged := Merge([]Record{a, c}, []Record{b, dupOfA})
	if len(merged) != 3 {
		t.Fatalf("merged %d records, want 3", len(merged))
	}
	if merged[0].Time != 50 {
		t.Error("not sorted")
	}
	// Same time but different channel must survive.
	chans := map[phy.Channel]bool{}
	for _, r := range merged {
		chans[r.Channel] = true
	}
	if !chans[phy.Channel6] {
		t.Error("channel-6 record lost in dedup")
	}
}

// TestMergeEqualTimeTieBreaking pins Merge's documented stability:
// distinct records with equal timestamps keep their input order —
// within one trace, and across traces in argument order. The analysis
// depends on this for reproducible exchange matching when a DATA and
// its ACK carry the same (coarse) timestamp.
func TestMergeEqualTimeTieBreaking(t *testing.T) {
	a := testRecord(100, phy.Channel1, 0xa)
	b := testRecord(100, phy.Channel1, 0xb)
	c := testRecord(100, phy.Channel1, 0xc)

	merged := Merge([]Record{a, b}, []Record{c})
	if len(merged) != 3 {
		t.Fatalf("merged %d records, want 3", len(merged))
	}
	want := []byte{0xa, 0xb, 0xc}
	for i, r := range merged {
		if got := r.Frame[len(r.Frame)-1]; got != want[i] {
			t.Fatalf("merged[%d] payload = %#x, want %#x (tie-break order broken)", i, got, want[i])
		}
	}
	// Argument order decides between traces too: swapping the traces
	// swaps the run of equal-time records.
	merged = Merge([]Record{c}, []Record{a, b})
	want = []byte{0xc, 0xa, 0xb}
	for i, r := range merged {
		if got := r.Frame[len(r.Frame)-1]; got != want[i] {
			t.Fatalf("swapped merged[%d] payload = %#x, want %#x", i, got, want[i])
		}
	}
}

// TestMergeDedupRequiresIdenticalAir checks that near-duplicates —
// same instant but different rate, channel, or frame bytes — are all
// preserved; only true cross-sniffer copies collapse.
func TestMergeDedupRequiresIdenticalAir(t *testing.T) {
	base := testRecord(500, phy.Channel1, 1)

	diffRate := base
	diffRate.Rate = phy.Rate1Mbps
	diffChan := base
	diffChan.Channel = phy.Channel11
	diffBytes := testRecord(500, phy.Channel1, 2)
	trueDup := base
	trueDup.SnifferID = 9
	trueDup.NoiseDBm = -90

	merged := Merge([]Record{base}, []Record{diffRate, diffChan, diffBytes, trueDup})
	if len(merged) != 4 {
		t.Errorf("merged %d records, want 4 (only the true duplicate collapses)", len(merged))
	}
}

// refMerge is the straightforward specification Merge must match:
// concatenate, stable-sort by time, then drop same-air duplicates.
func refMerge(traces ...[]Record) []Record {
	var all []Record
	for _, tr := range traces {
		all = append(all, tr...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	var out []Record
	for i, r := range all {
		dup := false
		for j := i - 1; j >= 0 && all[j].Time == r.Time; j-- {
			if sameAir(&all[j], &r) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r)
		}
	}
	return out
}

func sameMerged(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Time != b[i].Time || a[i].SnifferID != b[i].SnifferID ||
			a[i].Channel != b[i].Channel || !bytes.Equal(a[i].Frame, b[i].Frame) {
			return false
		}
	}
	return true
}

// TestMergeMatchesReference drives both Merge paths — the ~O(n)
// run-detecting k-way merge on nearly-sorted input and the index-sort
// fallback on shuffled input — against the specification.
func TestMergeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name string
		gen  func() [][]Record
	}{
		{"sorted", func() [][]Record {
			// Fully sorted per-sniffer traces: one run each.
			var traces [][]Record
			for s := 0; s < 3; s++ {
				var tr []Record
				tm := phy.Micros(rng.Intn(50))
				for i := 0; i < 200; i++ {
					tm += phy.Micros(rng.Intn(300))
					r := testRecord(tm, phy.Channel1, byte(i))
					r.SnifferID = s
					tr = append(tr, r)
				}
				traces = append(traces, tr)
			}
			return traces
		}},
		{"nearly-sorted", func() [][]Record {
			// Occasional out-of-order records, as overlapping
			// transmissions produce: long runs, few breaks.
			var traces [][]Record
			for s := 0; s < 2; s++ {
				var tr []Record
				tm := phy.Micros(1000)
				for i := 0; i < 400; i++ {
					tm += phy.Micros(rng.Intn(200))
					at := tm
					if rng.Intn(100) == 0 {
						at -= phy.Micros(5000) // a late long frame
					}
					r := testRecord(at, phy.Channel6, byte(i))
					r.SnifferID = s
					tr = append(tr, r)
				}
				traces = append(traces, tr)
			}
			return traces
		}},
		{"shuffled", func() [][]Record {
			// Fully random: short runs force the index-sort fallback.
			var tr []Record
			for i := 0; i < 500; i++ {
				tr = append(tr, testRecord(phy.Micros(rng.Intn(2000)), phy.Channel11, byte(i)))
			}
			return [][]Record{tr}
		}},
		{"equal-times", func() [][]Record {
			// Heavy timestamp collisions exercise tie-breaking and
			// dedup together.
			var a, b []Record
			for i := 0; i < 200; i++ {
				tm := phy.Micros(rng.Intn(20))
				a = append(a, testRecord(tm, phy.Channel1, byte(i%7)))
				b = append(b, testRecord(tm, phy.Channel1, byte(i%5)))
			}
			return [][]Record{a, b}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			traces := tc.gen()
			// Inputs must survive the merge unmodified.
			backup := make([][]Record, len(traces))
			for i, tr := range traces {
				backup[i] = append([]Record(nil), tr...)
			}
			got := Merge(traces...)
			want := refMerge(traces...)
			if !sameMerged(got, want) {
				t.Fatalf("Merge diverges from reference: %d vs %d records", len(got), len(want))
			}
			for i := range traces {
				if !sameMerged(traces[i], backup[i]) {
					t.Fatalf("Merge mutated input trace %d", i)
				}
			}
		})
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(); len(got) != 0 {
		t.Error("empty merge must be empty")
	}
	if got := Merge(nil, nil); len(got) != 0 {
		t.Error("merge of nils must be empty")
	}
}

func TestSplitByChannel(t *testing.T) {
	recs := []Record{
		testRecord(1, phy.Channel1, 0),
		testRecord(2, phy.Channel6, 0),
		testRecord(3, phy.Channel1, 0),
	}
	m := SplitByChannel(recs)
	if len(m[phy.Channel1]) != 2 || len(m[phy.Channel6]) != 1 {
		t.Errorf("split: %d/%d", len(m[phy.Channel1]), len(m[phy.Channel6]))
	}
}

// TestSplitByChannelPreservesOrder: each channel's slice keeps the
// records in input order — the streaming analyzer's per-channel feed
// relies on it.
func TestSplitByChannelPreservesOrder(t *testing.T) {
	var recs []Record
	for i := 0; i < 20; i++ {
		ch := phy.Channel1
		if i%3 == 0 {
			ch = phy.Channel6
		}
		recs = append(recs, testRecord(phy.Micros(1000-i), ch, byte(i)))
	}
	m := SplitByChannel(recs)
	for ch, part := range m {
		last := -1
		for _, r := range part {
			i := int(r.Frame[len(r.Frame)-1])
			if i <= last {
				t.Fatalf("channel %v order broken: %d after %d", ch, i, last)
			}
			last = i
		}
	}
	if len(m[phy.Channel6])+len(m[phy.Channel1]) != len(recs) {
		t.Error("records lost in split")
	}
}
