package capture

import (
	"bytes"
	"testing"

	"wlan80211/internal/dot11"
	"wlan80211/internal/pcapio"
	"wlan80211/internal/phy"
)

func testRecord(t phy.Micros, ch phy.Channel, payload byte) Record {
	f := dot11.NewData(dot11.AddrFromUint64(1), dot11.AddrFromUint64(2), dot11.AddrFromUint64(3), 1, []byte{payload})
	wire := f.AppendTo(nil)
	return Record{
		Time: t, Rate: phy.Rate11Mbps, Channel: ch,
		SignalDBm: -50, NoiseDBm: -95,
		OrigLen: f.WireLen(), Frame: wire,
	}
}

func TestSNRAndSecond(t *testing.T) {
	r := testRecord(2_500_000, phy.Channel1, 0)
	if r.SNR() != 45 {
		t.Errorf("SNR = %v", r.SNR())
	}
	if r.Second() != 2 {
		t.Errorf("Second = %d", r.Second())
	}
}

func TestPcapRoundTrip(t *testing.T) {
	r := testRecord(123456, phy.Channel6, 0xaa)
	p := ToPcap(r)
	got, err := FromPcap(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != r.Time || got.Rate != r.Rate || got.Channel != r.Channel ||
		got.SignalDBm != r.SignalDBm || got.NoiseDBm != r.NoiseDBm {
		t.Errorf("metadata mismatch: %+v vs %+v", got, r)
	}
	if !bytes.Equal(got.Frame, r.Frame) {
		t.Error("frame bytes mismatch")
	}
	if got.OrigLen != r.OrigLen {
		t.Errorf("OrigLen = %d, want %d", got.OrigLen, r.OrigLen)
	}
}

func TestWriterReadAll(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		testRecord(1000, phy.Channel1, 1),
		testRecord(2000, phy.Channel6, 2),
		testRecord(3000, phy.Channel11, 3),
	}
	for _, r := range want {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	got, skipped, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d", skipped)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i].Time != want[i].Time || got[i].Channel != want[i].Channel {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestWriterSnapLen(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 250)
	if err != nil {
		t.Fatal(err)
	}
	big := testRecord(1, phy.Channel1, 0)
	big.Frame = bytes.Repeat([]byte{0x08, 0x00}, 700) // 1400-byte frame
	big.OrigLen = 1404
	if err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, _, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("lost record")
	}
	// Frame snapped to ~250 bytes but OrigLen preserved.
	if len(got[0].Frame) > 260 {
		t.Errorf("frame not snapped: %d bytes", len(got[0].Frame))
	}
	if got[0].OrigLen != 1404 {
		t.Errorf("OrigLen = %d, want 1404", got[0].OrigLen)
	}
}

func TestReadAllWrongLinkType(t *testing.T) {
	var buf bytes.Buffer
	pw, _ := pcapio.NewWriter(&buf, pcapio.LinkTypeIEEE80211, 0)
	pw.WriteRecord(pcapio.Record{Data: []byte{1}})
	pw.Flush()
	if _, _, err := ReadAll(&buf); err != ErrLinkType {
		t.Errorf("err = %v, want ErrLinkType", err)
	}
}

func TestReadAllSkipsBadRadiotap(t *testing.T) {
	var buf bytes.Buffer
	pw, _ := pcapio.NewWriter(&buf, pcapio.LinkTypeRadiotap, 0)
	pw.WriteRecord(ToPcap(testRecord(1, phy.Channel1, 0)))
	pw.WriteRecord(pcapio.Record{TimestampMicros: 2, Data: []byte{9, 9}}) // garbage
	pw.WriteRecord(ToPcap(testRecord(3, phy.Channel1, 0)))
	pw.Flush()
	got, skipped, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(got) != 2 {
		t.Errorf("skipped=%d len=%d", skipped, len(got))
	}
}

func TestMergeSortsAndDedups(t *testing.T) {
	a := testRecord(100, phy.Channel1, 1)
	b := testRecord(50, phy.Channel1, 2)
	dupOfA := a // same transmission seen by another sniffer
	dupOfA.SnifferID = 2
	dupOfA.SignalDBm = -60 // different RSSI at a different sniffer
	c := testRecord(100, phy.Channel6, 3)

	merged := Merge([]Record{a, c}, []Record{b, dupOfA})
	if len(merged) != 3 {
		t.Fatalf("merged %d records, want 3", len(merged))
	}
	if merged[0].Time != 50 {
		t.Error("not sorted")
	}
	// Same time but different channel must survive.
	chans := map[phy.Channel]bool{}
	for _, r := range merged {
		chans[r.Channel] = true
	}
	if !chans[phy.Channel6] {
		t.Error("channel-6 record lost in dedup")
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(); len(got) != 0 {
		t.Error("empty merge must be empty")
	}
	if got := Merge(nil, nil); len(got) != 0 {
		t.Error("merge of nils must be empty")
	}
}

func TestSplitByChannel(t *testing.T) {
	recs := []Record{
		testRecord(1, phy.Channel1, 0),
		testRecord(2, phy.Channel6, 0),
		testRecord(3, phy.Channel1, 0),
	}
	m := SplitByChannel(recs)
	if len(m[phy.Channel1]) != 2 || len(m[phy.Channel6]) != 1 {
		t.Errorf("split: %d/%d", len(m[phy.Channel1]), len(m[phy.Channel6]))
	}
}
