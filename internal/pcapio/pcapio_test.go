package pcapio

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeRadiotap, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{TimestampMicros: 1_500_000, Data: []byte{1, 2, 3}},
		{TimestampMicros: 2_000_001, Data: bytes.Repeat([]byte{9}, 100), OrigLen: 100},
		{TimestampMicros: 2_000_002, Data: []byte{}, OrigLen: 0},
	}
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRadiotap {
		t.Errorf("link type = %d", r.LinkType())
	}
	if r.SnapLen() != 65535 {
		t.Errorf("snap len = %d", r.SnapLen())
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i].TimestampMicros != recs[i].TimestampMicros {
			t.Errorf("rec %d ts = %d", i, got[i].TimestampMicros)
		}
		if !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Errorf("rec %d data mismatch", i)
		}
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeIEEE80211, 250)
	if err != nil {
		t.Fatal(err)
	}
	if w.SnapLen() != 250 {
		t.Fatalf("SnapLen() = %d", w.SnapLen())
	}
	data := bytes.Repeat([]byte{7}, 1400)
	if err := w.WriteRecord(Record{TimestampMicros: 5, Data: data}); err != nil {
		t.Fatal(err)
	}
	w.Flush()

	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CapLen() != 250 {
		t.Errorf("CapLen = %d, want 250", rec.CapLen())
	}
	if rec.OrigLen != 1400 {
		t.Errorf("OrigLen = %d, want 1400", rec.OrigLen)
	}
	if !rec.Truncated() {
		t.Error("record must report truncated")
	}
}

func TestRecordHelpers(t *testing.T) {
	r := Record{Data: []byte{1, 2}, OrigLen: 2}
	if r.Truncated() {
		t.Error("full record must not be truncated")
	}
	if r.CapLen() != 2 {
		t.Error("CapLen")
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian microsecond pcap with one record.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], magicMicros)
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeIEEE80211)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:], 3)   // sec
	binary.BigEndian.PutUint32(rec[4:], 250) // usec
	binary.BigEndian.PutUint32(rec[8:], 2)   // caplen
	binary.BigEndian.PutUint32(rec[12:], 2)  // origlen
	buf.Write(rec)
	buf.Write([]byte{0xaa, 0xbb})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeIEEE80211 {
		t.Errorf("link type = %d", r.LinkType())
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.TimestampMicros != 3_000_250 {
		t.Errorf("ts = %d", got.TimestampMicros)
	}
	if !bytes.Equal(got.Data, []byte{0xaa, 0xbb}) {
		t.Error("data mismatch")
	}
}

func TestNanosecondRead(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], magicNanos)
	binary.LittleEndian.PutUint32(hdr[16:], 65535)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRadiotap)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:], 1)           // sec
	binary.LittleEndian.PutUint32(rec[4:], 500_000_999) // nsec
	binary.LittleEndian.PutUint32(rec[8:], 1)
	binary.LittleEndian.PutUint32(rec[12:], 1)
	buf.Write(rec)
	buf.WriteByte(0x42)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.TimestampMicros != 1_500_000 {
		t.Errorf("ts = %d, want 1500000", got.TimestampMicros)
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err != ErrTruncated {
		t.Errorf("short header: %v", err)
	}
	bad := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(bad)); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	// Record header cut short.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeRadiotap, 0)
	w.WriteRecord(Record{Data: []byte{1, 2, 3, 4}})
	w.Flush()
	full := buf.Bytes()
	r, _ := NewReader(bytes.NewReader(full[:len(full)-2]))
	if _, err := r.Next(); err != ErrTruncated {
		t.Errorf("cut record: %v", err)
	}
	// Clean EOF.
	r, _ = NewReader(bytes.NewReader(full[:24]))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("clean EOF: %v", err)
	}
	// Absurd caplen.
	crazy := make([]byte, 40)
	copy(crazy, full[:24])
	binary.LittleEndian.PutUint32(crazy[32:], 1<<25)
	r, _ = NewReader(bytes.NewReader(crazy))
	if _, err := r.Next(); err != ErrTruncated {
		t.Errorf("crazy caplen: %v", err)
	}
}

func TestReadAllStopsOnError(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeRadiotap, 0)
	w.WriteRecord(Record{Data: []byte{1}})
	w.WriteRecord(Record{Data: []byte{2}})
	w.Flush()
	full := buf.Bytes()
	r, _ := NewReader(bytes.NewReader(full[:len(full)-1]))
	recs, err := ReadAll(r)
	if err != ErrTruncated {
		t.Errorf("err = %v", err)
	}
	if len(recs) != 1 {
		t.Errorf("recovered %d records, want 1", len(recs))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ts int64, payload []byte) bool {
		if ts < 0 {
			ts = -ts
		}
		ts %= 4_000_000_000 * 1_000_000 / 2 // fit in uint32 seconds
		var buf bytes.Buffer
		w, err := NewWriter(&buf, LinkTypeRadiotap, 0)
		if err != nil {
			return false
		}
		if err := w.WriteRecord(Record{TimestampMicros: ts, Data: payload}); err != nil {
			return false
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		if err != nil {
			return false
		}
		return got.TimestampMicros == ts && bytes.Equal(got.Data, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestReaderNeverPanics: arbitrary bytes must error, not panic.
func TestReaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return true
		}
		for i := 0; i < 10; i++ {
			if _, err := r.Next(); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
