// Package pcapio reads and writes libpcap capture files using only the
// standard library. It supports the classic microsecond format and the
// nanosecond variant, both byte orders on read, and per-record snap
// length truncation on write — the on-disk format the paper's
// tethereal-based collection framework produced.
package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Link types relevant to 802.11 capture.
const (
	// LinkTypeIEEE80211 is a bare 802.11 MAC frame.
	LinkTypeIEEE80211 uint32 = 105
	// LinkTypeRadiotap is an 802.11 frame preceded by a radiotap
	// header — what RFMon-mode capture produces.
	LinkTypeRadiotap uint32 = 127
)

// Magic numbers.
const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d
)

// Errors.
var (
	ErrBadMagic  = errors.New("pcapio: bad magic number")
	ErrTruncated = errors.New("pcapio: truncated file")
)

// Record is one captured packet.
type Record struct {
	// TimestampMicros is the capture time in microseconds since the
	// epoch of the trace.
	TimestampMicros int64
	// OrigLen is the original packet length on the wire.
	OrigLen int
	// Data is the captured bytes (possibly snap-truncated).
	Data []byte
}

// CapLen returns the captured length.
func (r *Record) CapLen() int { return len(r.Data) }

// Truncated reports whether the record was snap-length truncated.
func (r *Record) Truncated() bool { return len(r.Data) < r.OrigLen }

// Writer writes a pcap file.
type Writer struct {
	w        *bufio.Writer
	snapLen  int
	linkType uint32
	wrote    bool
}

// DefaultSnapLen mirrors the paper's collection configuration: "the
// snap-length of the captured packets was set to 250 bytes" (plus room
// for the radiotap header we prepend).
const DefaultSnapLen = 250

// NewWriter creates a pcap writer with the given link type and snap
// length (0 means unlimited, stored as 65535).
func NewWriter(w io.Writer, linkType uint32, snapLen int) (*Writer, error) {
	if snapLen <= 0 {
		snapLen = 65535
	}
	pw := &Writer{w: bufio.NewWriterSize(w, 1<<16), snapLen: snapLen, linkType: linkType}
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	binary.LittleEndian.PutUint32(hdr[16:], uint32(snapLen))
	binary.LittleEndian.PutUint32(hdr[20:], linkType)
	if _, err := pw.w.Write(hdr); err != nil {
		return nil, fmt.Errorf("pcapio: writing file header: %w", err)
	}
	return pw, nil
}

// SnapLen returns the writer's snap length.
func (w *Writer) SnapLen() int { return w.snapLen }

// WriteRecord writes one packet, truncating to the snap length. The
// record's OrigLen is honored if it exceeds len(Data); otherwise the
// original length is len(Data).
func (w *Writer) WriteRecord(r Record) error {
	data := r.Data
	orig := r.OrigLen
	if orig < len(data) {
		orig = len(data)
	}
	if len(data) > w.snapLen {
		data = data[:w.snapLen]
	}
	var hdr [16]byte
	sec := r.TimestampMicros / 1_000_000
	usec := r.TimestampMicros % 1_000_000
	binary.LittleEndian.PutUint32(hdr[0:], uint32(sec))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(usec))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(orig))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcapio: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcapio: writing record data: %w", err)
	}
	w.wrote = true
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader reads a pcap file.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nanos    bool
	snapLen  int
	linkType uint32
}

// NewReader parses the pcap file header and prepares to read records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, ErrTruncated
	}
	pr := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(hdr)
	magicBE := binary.BigEndian.Uint32(hdr)
	switch {
	case magicLE == magicMicros:
		pr.order = binary.LittleEndian
	case magicLE == magicNanos:
		pr.order, pr.nanos = binary.LittleEndian, true
	case magicBE == magicMicros:
		pr.order = binary.BigEndian
	case magicBE == magicNanos:
		pr.order, pr.nanos = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	pr.snapLen = int(pr.order.Uint32(hdr[16:]))
	pr.linkType = pr.order.Uint32(hdr[20:])
	return pr, nil
}

// LinkType returns the file's link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// SnapLen returns the file's snap length.
func (r *Reader) SnapLen() int { return r.snapLen }

// Next reads the next record. It returns io.EOF cleanly at end of
// file and ErrTruncated if a record is cut short.
func (r *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, ErrTruncated
	}
	sec := int64(r.order.Uint32(hdr[0:]))
	sub := int64(r.order.Uint32(hdr[4:]))
	capLen := int(r.order.Uint32(hdr[8:]))
	origLen := int(r.order.Uint32(hdr[12:]))
	if capLen < 0 || capLen > 1<<24 {
		return Record{}, ErrTruncated
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, ErrTruncated
	}
	ts := sec * 1_000_000
	if r.nanos {
		ts += sub / 1000
	} else {
		ts += sub
	}
	return Record{TimestampMicros: ts, OrigLen: origLen, Data: data}, nil
}

// ReadAll drains the reader into a slice.
func ReadAll(r *Reader) ([]Record, error) {
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
