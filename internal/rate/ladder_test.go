package rate

import (
	"testing"

	"wlan80211/internal/phy"
)

func TestLadderWalk(t *testing.T) {
	if got := LadderBG.Top(); got != phy.Rate54Mbps {
		t.Errorf("LadderBG.Top() = %v", got)
	}
	if got := LadderBG.Next(phy.Rate5_5Mbps); got != phy.Rate6Mbps {
		t.Errorf("Next(5.5) = %v, want 6 Mbps", got)
	}
	if got := LadderBG.Prev(phy.Rate12Mbps); got != phy.Rate11Mbps {
		t.Errorf("Prev(12) = %v, want 11 Mbps", got)
	}
	if got := LadderBG.Next(phy.Rate54Mbps); got != phy.Rate54Mbps {
		t.Errorf("Next at top = %v, want saturation", got)
	}
	if got := LadderBG.Prev(phy.Rate1Mbps); got != phy.Rate1Mbps {
		t.Errorf("Prev at bottom = %v, want saturation", got)
	}
	// Off-ladder rates saturate rather than jump.
	if got := LadderB.Next(phy.Rate24Mbps); got != phy.Rate24Mbps {
		t.Errorf("b-ladder Next(24 OFDM) = %v, want identity", got)
	}
	// Both ladders are strictly throughput-ordered.
	for _, l := range []Ladder{LadderB, LadderBG} {
		for i := 1; i < len(l); i++ {
			if l[i].Kbps() <= l[i-1].Kbps() {
				t.Fatalf("ladder not ordered at %d: %v after %v", i, l[i], l[i-1])
			}
		}
	}
}

// TestARFLadderEquivalence checks that a ladder-backed ARF fed the b
// ladder behaves exactly like the classic ARF for any feedback
// sequence — the property that lets the b-only population keep its
// pre-ladder traces bit-identical.
func TestARFLadderEquivalence(t *testing.T) {
	classic := NewARF(phy.Rate11Mbps)
	laddered := NewARFLadder(LadderB)
	feedback := []bool{
		false, false, true, true, true, true, true, true, true, true, true, true,
		false, true, false, false, false, false, false, false, true, true,
	}
	for round := 0; round < 20; round++ {
		for i, ok := range feedback {
			if ok {
				classic.OnAck()
				laddered.OnAck()
			} else {
				classic.OnFailure()
				laddered.OnFailure()
			}
			if classic.Rate() != laddered.Rate() {
				t.Fatalf("round %d step %d: classic %v, laddered %v", round, i, classic.Rate(), laddered.Rate())
			}
		}
	}
}

// TestAARFLadderClimbsToOFDM drives a clean channel and checks the
// dual-mode adapter climbs through the CCK/OFDM boundary to 54 Mbps.
func TestAARFLadderClimbsToOFDM(t *testing.T) {
	a := NewAARFLadder(LadderBG)
	for i := 0; i < 40; i++ {
		a.OnFailure()
	}
	if a.Rate() != phy.Rate1Mbps {
		t.Fatalf("floor = %v, want 1 Mbps", a.Rate())
	}
	for i := 0; i < 5000; i++ {
		a.OnAck()
	}
	if a.Rate() != phy.Rate54Mbps {
		t.Fatalf("ceiling = %v, want 54 Mbps", a.Rate())
	}
}

// TestSNRThresholdLadder checks the dual-mode SNR adapter picks OFDM
// rates at high SNR, b rates at low SNR, and never exceeds what the
// restricted ladder allows.
func TestSNRThresholdLadder(t *testing.T) {
	g := NewSNRThresholdLadder(LadderBG)
	b := NewSNRThresholdLadder(LadderB)
	if got := g.RateFor(1000, 45); got != phy.Rate54Mbps {
		t.Errorf("g at 45 dB = %v, want 54 Mbps", got)
	}
	if got := b.RateFor(1000, 45); got != phy.Rate11Mbps {
		t.Errorf("b at 45 dB = %v, want 11 Mbps", got)
	}
	if got := g.RateFor(1000, -5); got != phy.Rate1Mbps {
		t.Errorf("g at -5 dB = %v, want 1 Mbps", got)
	}
	// The b-restricted ladder must agree with the nil-ladder default
	// at every SNR (the default path is the b ladder).
	def := NewSNRThreshold()
	for snr := -10.0; snr <= 40; snr += 0.5 {
		if b.RateFor(1000, snr) != def.RateFor(1000, snr) {
			t.Fatalf("b-ladder diverged from default at %v dB", snr)
		}
	}
	// Monotone in SNR for the dual-mode ladder.
	prev := phy.Rate1Mbps
	for snr := -10.0; snr <= 45; snr += 0.25 {
		r := g.RateFor(1000, snr)
		if r.Kbps() < prev.Kbps() {
			t.Fatalf("rate dropped with rising SNR at %v dB: %v after %v", snr, r, prev)
		}
		prev = r
	}
}
