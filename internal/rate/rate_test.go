package rate

import (
	"testing"

	"wlan80211/internal/phy"
)

func TestARFStartsAtGivenRate(t *testing.T) {
	a := NewARF(phy.Rate5_5Mbps)
	if a.Rate() != phy.Rate5_5Mbps {
		t.Errorf("start rate = %v", a.Rate())
	}
	if NewARF(phy.Rate(3)).Rate() != phy.Rate11Mbps {
		t.Error("invalid start must default to 11 Mbps")
	}
	if a.Name() != "arf" {
		t.Error("name")
	}
}

func TestARFFallsAfterTwoFailures(t *testing.T) {
	a := NewARF(phy.Rate11Mbps)
	a.OnFailure()
	if a.Rate() != phy.Rate11Mbps {
		t.Error("one failure must not drop the rate")
	}
	a.OnFailure()
	if a.Rate() != phy.Rate5_5Mbps {
		t.Errorf("two failures: %v, want 5.5", a.Rate())
	}
	// Keep failing all the way to 1 Mbps, then saturate.
	for i := 0; i < 10; i++ {
		a.OnFailure()
	}
	if a.Rate() != phy.Rate1Mbps {
		t.Errorf("rate = %v, want 1 Mbps floor", a.Rate())
	}
}

func TestARFRaisesAfterTenSuccesses(t *testing.T) {
	a := NewARF(phy.Rate1Mbps)
	for i := 0; i < 9; i++ {
		a.OnAck()
	}
	if a.Rate() != phy.Rate1Mbps {
		t.Error("9 successes must not raise")
	}
	a.OnAck()
	if a.Rate() != phy.Rate2Mbps {
		t.Errorf("10 successes: %v, want 2 Mbps", a.Rate())
	}
}

func TestARFProbeFailureDropsImmediately(t *testing.T) {
	a := NewARF(phy.Rate1Mbps)
	for i := 0; i < 10; i++ {
		a.OnAck()
	}
	if a.Rate() != phy.Rate2Mbps {
		t.Fatal("probe not started")
	}
	a.OnFailure() // first frame at probed rate fails
	if a.Rate() != phy.Rate1Mbps {
		t.Errorf("failed probe must drop immediately, got %v", a.Rate())
	}
}

func TestARFSuccessResetsFailureCount(t *testing.T) {
	a := NewARF(phy.Rate11Mbps)
	a.OnFailure()
	a.OnAck()
	a.OnFailure()
	if a.Rate() != phy.Rate11Mbps {
		t.Error("non-consecutive failures must not drop")
	}
}

func TestARFCeiling(t *testing.T) {
	a := NewARF(phy.Rate11Mbps)
	for i := 0; i < 30; i++ {
		a.OnAck()
	}
	if a.Rate() != phy.Rate11Mbps {
		t.Error("rate must cap at 11 Mbps")
	}
}

func TestARFRateForIgnoresArgs(t *testing.T) {
	a := NewARF(phy.Rate2Mbps)
	if a.RateFor(1500, 40) != phy.Rate2Mbps {
		t.Error("ARF must ignore size and SNR")
	}
}

func TestAARFDoublesThreshold(t *testing.T) {
	a := NewAARF(phy.Rate1Mbps)
	if a.Name() != "aarf" {
		t.Error("name")
	}
	// Probe after 10 successes.
	for i := 0; i < 10; i++ {
		a.OnAck()
	}
	if a.Rate() != phy.Rate2Mbps {
		t.Fatal("probe not started")
	}
	a.OnFailure() // failed probe → threshold 20
	if a.Rate() != phy.Rate1Mbps {
		t.Fatal("failed probe must drop")
	}
	for i := 0; i < 10; i++ {
		a.OnAck()
	}
	if a.Rate() != phy.Rate1Mbps {
		t.Error("10 successes must not probe (threshold now 20)")
	}
	for i := 0; i < 10; i++ {
		a.OnAck()
	}
	if a.Rate() != phy.Rate2Mbps {
		t.Error("20 successes must probe")
	}
}

func TestAARFThresholdCap(t *testing.T) {
	a := NewAARF(phy.Rate1Mbps)
	for probe := 0; probe < 5; probe++ {
		for a.Rate() == phy.Rate1Mbps {
			a.OnAck()
		}
		a.OnFailure()
	}
	if a.threshold > aarfMaxThreshold {
		t.Errorf("threshold %d exceeds cap", a.threshold)
	}
}

func TestAARFNormalFailureResetsThreshold(t *testing.T) {
	a := NewAARF(phy.Rate11Mbps)
	a.threshold = 40
	a.OnFailure()
	a.OnFailure()
	if a.Rate() != phy.Rate5_5Mbps {
		t.Error("two failures must drop")
	}
	if a.threshold != arfRaiseThreshold {
		t.Errorf("threshold = %d, want reset to %d", a.threshold, arfRaiseThreshold)
	}
	if NewAARF(phy.Rate(0)).Rate() != phy.Rate11Mbps {
		t.Error("invalid start must default")
	}
}

func TestSNRThresholdPicksFastestViableRate(t *testing.T) {
	s := NewSNRThreshold()
	if s.Name() != "snr" {
		t.Error("name")
	}
	// Very high SNR → 11 Mbps regardless of size.
	if got := s.RateFor(1500, 40); got != phy.Rate11Mbps {
		t.Errorf("40 dB: %v", got)
	}
	// Very low SNR → 1 Mbps.
	if got := s.RateFor(1500, -5); got != phy.Rate1Mbps {
		t.Errorf("-5 dB: %v", got)
	}
	// Rate choice is monotone in SNR.
	prev := phy.Rate1Mbps
	for snr := -5.0; snr <= 40; snr += 0.5 {
		r := s.RateFor(1000, snr)
		if ri, _ := r.Index(); ri < func() int { pi, _ := prev.Index(); return pi }() {
			t.Fatalf("rate dropped from %v to %v as SNR rose to %v", prev, r, snr)
		}
		prev = r
	}
	// ACK feedback is ignored.
	before := s.RateFor(1000, 20)
	for i := 0; i < 10; i++ {
		s.OnFailure()
	}
	if s.RateFor(1000, 20) != before {
		t.Error("SNR adapter must ignore failures")
	}
	s.OnAck() // no-op, must not panic
}

func TestFixed(t *testing.T) {
	f := Fixed{R: phy.Rate5_5Mbps}
	if f.RateFor(9999, -100) != phy.Rate5_5Mbps {
		t.Error("fixed must always return its rate")
	}
	f.OnAck()
	f.OnFailure()
	if f.Name() != "fixed-5.5 Mbps" {
		t.Errorf("name = %q", f.Name())
	}
}

func TestFactories(t *testing.T) {
	cases := []struct {
		f    Factory
		name string
	}{
		{NewARFFactory(), "arf"},
		{NewAARFFactory(), "aarf"},
		{NewSNRFactory(), "snr"},
		{NewFixedFactory(phy.Rate11Mbps), "fixed-11 Mbps"},
	}
	for _, c := range cases {
		a := c.f()
		if a.Name() != c.name {
			t.Errorf("factory produced %q, want %q", a.Name(), c.name)
		}
	}
	// Factories must produce independent adapters.
	f := NewARFFactory()
	a1, a2 := f(), f()
	a1.OnFailure()
	a1.OnFailure()
	if a2.(*ARF).Rate() != phy.Rate11Mbps {
		t.Error("adapters share state")
	}
}

// TestARFCongestionCollapse reproduces in miniature the paper's core
// claim: under collision-dominated loss (loss independent of rate),
// ARF spends most attempts at 1 or 11 Mbps and rarely at 2/5.5 —
// the bimodal usage of Figure 8/9 — because every pair of collisions
// knocks the rate down and every lucky streak walks it back up through
// the middle rates quickly.
func TestARFCongestionCollapse(t *testing.T) {
	a := NewARF(phy.Rate11Mbps)
	counts := map[phy.Rate]int{}
	// Deterministic collision pattern: ~40% loss, independent of rate.
	seq := 0
	for i := 0; i < 10000; i++ {
		r := a.RateFor(1000, 25)
		counts[r]++
		seq = (seq*1103515245 + 12345) & 0x7fffffff
		if seq%100 < 40 {
			a.OnFailure()
		} else {
			a.OnAck()
		}
	}
	mid := counts[phy.Rate2Mbps] + counts[phy.Rate5_5Mbps]
	edge := counts[phy.Rate1Mbps] + counts[phy.Rate11Mbps]
	if mid >= edge {
		t.Errorf("expected bimodal rate usage, got middle=%d edge=%d (%v)", mid, edge, counts)
	}
}

func TestMixedFactoryPopulation(t *testing.T) {
	f := NewMixedFactory()
	counts := map[string]int{}
	for i := 0; i < 100; i++ {
		counts[f().Name()]++
	}
	if counts["arf"] != 25 || counts["aarf"] != 25 || counts["snr"] != 50 {
		t.Errorf("population = %v", counts)
	}
}
