// Package rate implements the multirate adaptation schemes the paper
// discusses. The IEEE 802.11 standard leaves rate adaptation to
// vendors (Sec 3); the dominant scheme of the 802.11b era was Auto
// Rate Fallback (ARF, Kamerman & Monteban 1997), which the paper
// identifies as the cause of both the scarce use of 2/5.5 Mbps and the
// throughput collapse under congestion: ARF cannot distinguish
// collision losses from channel-error losses, so congestion drives
// rates down, which deepens congestion (Sec 7).
//
// Implemented schemes:
//
//   - ARF: fall after 2 consecutive failures, probe up after 10
//     consecutive successes or a timeout.
//   - AARF: ARF with a success threshold that doubles after each
//     failed probe (Lacage et al.), reducing probe thrashing.
//   - SNRThreshold: the paper's suggested alternative — pick the
//     fastest rate whose expected FER at the observed SNR is below a
//     target, immune to collision-induced fallback.
//   - Fixed: no adaptation, for baselines and ablations.
package rate

import (
	"wlan80211/internal/phy"
)

// Adapter chooses transmission rates from per-frame feedback. The
// simulator calls RateFor before each data transmission attempt and
// exactly one of OnAck / OnFailure after it.
type Adapter interface {
	// RateFor returns the rate for the next transmission attempt of a
	// frame of size bytes, given the most recent SNR estimate toward
	// the receiver (dB; 0 if unknown).
	RateFor(sizeBytes int, snrDB float64) phy.Rate
	// OnAck reports a successful (acknowledged) transmission.
	OnAck()
	// OnFailure reports a transmission failure (ACK timeout).
	OnFailure()
	// Name identifies the scheme for reports.
	Name() string
}

// Standard ARF parameters.
const (
	arfFallThreshold  = 2  // consecutive failures before rate drop
	arfRaiseThreshold = 10 // consecutive successes before probe
)

// ARF is the classic Auto Rate Fallback adapter.
type ARF struct {
	cur     phy.Rate
	succ    int
	fail    int
	probing bool // the next frame is the first at a raised rate
}

// NewARF returns an ARF adapter starting at the given rate.
func NewARF(start phy.Rate) *ARF {
	if !start.Valid() {
		start = phy.Rate11Mbps
	}
	return &ARF{cur: start}
}

// Name implements Adapter.
func (a *ARF) Name() string { return "arf" }

// Rate returns the current rate without consuming feedback.
func (a *ARF) Rate() phy.Rate { return a.cur }

// RateFor implements Adapter.
func (a *ARF) RateFor(int, float64) phy.Rate { return a.cur }

// OnAck implements Adapter.
func (a *ARF) OnAck() {
	a.fail = 0
	a.probing = false
	a.succ++
	if a.succ >= arfRaiseThreshold && a.cur != phy.Rate11Mbps {
		a.cur = a.cur.Next()
		a.succ = 0
		a.probing = true
	}
}

// OnFailure implements Adapter.
func (a *ARF) OnFailure() {
	a.succ = 0
	a.fail++
	// A failed probe drops immediately; otherwise after 2 failures.
	if a.probing || a.fail >= arfFallThreshold {
		a.cur = a.cur.Prev()
		a.fail = 0
		a.probing = false
	}
}

// AARF is Adaptive ARF: like ARF, but each failed probe doubles the
// success threshold required before the next probe (capped), which
// stops the probe-fail-probe oscillation ARF exhibits under stable
// channels.
type AARF struct {
	cur       phy.Rate
	succ      int
	fail      int
	threshold int
	probing   bool
}

const aarfMaxThreshold = 50

// NewAARF returns an AARF adapter starting at the given rate.
func NewAARF(start phy.Rate) *AARF {
	if !start.Valid() {
		start = phy.Rate11Mbps
	}
	return &AARF{cur: start, threshold: arfRaiseThreshold}
}

// Name implements Adapter.
func (a *AARF) Name() string { return "aarf" }

// Rate returns the current rate.
func (a *AARF) Rate() phy.Rate { return a.cur }

// RateFor implements Adapter.
func (a *AARF) RateFor(int, float64) phy.Rate { return a.cur }

// OnAck implements Adapter.
func (a *AARF) OnAck() {
	a.fail = 0
	a.probing = false
	a.succ++
	if a.succ >= a.threshold && a.cur != phy.Rate11Mbps {
		a.cur = a.cur.Next()
		a.succ = 0
		a.probing = true
	}
}

// OnFailure implements Adapter.
func (a *AARF) OnFailure() {
	a.succ = 0
	a.fail++
	if a.probing {
		// Failed probe: back off and double the success threshold.
		a.cur = a.cur.Prev()
		a.threshold *= 2
		if a.threshold > aarfMaxThreshold {
			a.threshold = aarfMaxThreshold
		}
		a.fail = 0
		a.probing = false
		return
	}
	if a.fail >= arfFallThreshold {
		a.cur = a.cur.Prev()
		a.threshold = arfRaiseThreshold
		a.fail = 0
	}
}

// SNRThreshold picks the fastest rate whose modelled FER at the
// reported SNR is below Target — the SNR-based adaptation the paper
// recommends (Sec 7, citing RBAR/OAR). It ignores ACK feedback
// entirely, so collisions cannot drive it to low rates.
type SNRThreshold struct {
	// Target is the acceptable frame error rate (default 0.1).
	Target float64
	// MarginDB is subtracted from the reported SNR as a safety margin.
	MarginDB float64
}

// NewSNRThreshold returns an SNR-threshold adapter with a 10% FER
// target and 3 dB margin.
func NewSNRThreshold() *SNRThreshold { return &SNRThreshold{Target: 0.1, MarginDB: 3} }

// Name implements Adapter.
func (s *SNRThreshold) Name() string { return "snr" }

// RateFor implements Adapter.
func (s *SNRThreshold) RateFor(sizeBytes int, snrDB float64) phy.Rate {
	snr := snrDB - s.MarginDB
	for i := len(phy.Rates) - 1; i > 0; i-- {
		if phy.FER(snr, sizeBytes, phy.Rates[i]) <= s.Target {
			return phy.Rates[i]
		}
	}
	return phy.Rate1Mbps
}

// OnAck implements Adapter (no-op: SNR adaptation ignores ACKs).
func (s *SNRThreshold) OnAck() {}

// OnFailure implements Adapter (no-op).
func (s *SNRThreshold) OnFailure() {}

// Fixed always transmits at one rate.
type Fixed struct{ R phy.Rate }

// Name implements Adapter.
func (f Fixed) Name() string { return "fixed-" + f.R.String() }

// RateFor implements Adapter.
func (f Fixed) RateFor(int, float64) phy.Rate { return f.R }

// OnAck implements Adapter (no-op).
func (f Fixed) OnAck() {}

// OnFailure implements Adapter (no-op).
func (f Fixed) OnFailure() {}

// Factory builds a fresh Adapter per station, so stations do not share
// adaptation state.
type Factory func() Adapter

// NewARFFactory returns a Factory producing ARF adapters starting at
// 11 Mbps.
func NewARFFactory() Factory { return func() Adapter { return NewARF(phy.Rate11Mbps) } }

// NewAARFFactory returns a Factory producing AARF adapters.
func NewAARFFactory() Factory { return func() Adapter { return NewAARF(phy.Rate11Mbps) } }

// NewSNRFactory returns a Factory producing SNR-threshold adapters.
func NewSNRFactory() Factory { return func() Adapter { return NewSNRThreshold() } }

// NewFixedFactory returns a Factory producing fixed-rate adapters.
func NewFixedFactory(r phy.Rate) Factory { return func() Adapter { return Fixed{R: r} } }

// NewMixedFactory cycles deterministically through a population of
// adapter types: a quarter classic ARF, a quarter AARF, half
// SNR-threshold. The paper stresses the "large diversity in wireless
// hardware" at the IETF (Sec 1); a heterogeneous population is what
// produces its simultaneous observations of 1 Mbps channel occupancy
// (ARF victims, Figure 8) and dominant 11 Mbps byte counts (radios
// that hold the high rate, Figure 9), so scenario builders default to
// this mix.
func NewMixedFactory() Factory {
	i := 0
	return func() Adapter {
		i++
		switch i % 4 {
		case 1:
			return NewARF(phy.Rate11Mbps)
		case 2:
			return NewAARF(phy.Rate11Mbps)
		default:
			return NewSNRThreshold()
		}
	}
}
