// Package rate implements the multirate adaptation schemes the paper
// discusses. The IEEE 802.11 standard leaves rate adaptation to
// vendors (Sec 3); the dominant scheme of the 802.11b era was Auto
// Rate Fallback (ARF, Kamerman & Monteban 1997), which the paper
// identifies as the cause of both the scarce use of 2/5.5 Mbps and the
// throughput collapse under congestion: ARF cannot distinguish
// collision losses from channel-error losses, so congestion drives
// rates down, which deepens congestion (Sec 7).
//
// Implemented schemes:
//
//   - ARF: fall after 2 consecutive failures, probe up after 10
//     consecutive successes or a timeout.
//   - AARF: ARF with a success threshold that doubles after each
//     failed probe (Lacage et al.), reducing probe thrashing.
//   - SNRThreshold: the paper's suggested alternative — pick the
//     fastest rate whose expected FER at the observed SNR is below a
//     target, immune to collision-induced fallback.
//   - Fixed: no adaptation, for baselines and ablations.
package rate

import (
	"wlan80211/internal/phy"
)

// Adapter chooses transmission rates from per-frame feedback. The
// simulator calls RateFor before each data transmission attempt and
// exactly one of OnAck / OnFailure after it.
type Adapter interface {
	// RateFor returns the rate for the next transmission attempt of a
	// frame of size bytes, given the most recent SNR estimate toward
	// the receiver (dB; 0 if unknown).
	RateFor(sizeBytes int, snrDB float64) phy.Rate
	// OnAck reports a successful (acknowledged) transmission.
	OnAck()
	// OnFailure reports a transmission failure (ACK timeout).
	OnFailure()
	// Name identifies the scheme for reports.
	Name() string
}

// Ladder is the ordered (slowest to fastest) rate set a radio may use
// — its PHY capability. A nil Ladder means the classic 802.11b ladder,
// preserving the pre-ladder adapter behaviour bit for bit. Ladders are
// shared between adapters and must not be mutated.
type Ladder []phy.Rate

// LadderB is the 802.11b DSSS/CCK ladder (1/2/5.5/11 Mbps).
var LadderB = Ladder{phy.Rate1Mbps, phy.Rate2Mbps, phy.Rate5_5Mbps, phy.Rate11Mbps}

// LadderBG is the dual-mode ladder of an 802.11b/g radio: the four
// DSSS/CCK rates interleaved with the eight ERP-OFDM rates in
// throughput order.
var LadderBG = Ladder{
	phy.Rate1Mbps, phy.Rate2Mbps, phy.Rate5_5Mbps, phy.Rate6Mbps,
	phy.Rate9Mbps, phy.Rate11Mbps, phy.Rate12Mbps, phy.Rate18Mbps,
	phy.Rate24Mbps, phy.Rate36Mbps, phy.Rate48Mbps, phy.Rate54Mbps,
}

// index returns r's position in the ladder, or -1.
func (l Ladder) index(r phy.Rate) int {
	for i, v := range l {
		if v == r {
			return i
		}
	}
	return -1
}

// Next returns the next faster ladder rate, or r itself at the top
// (or off-ladder).
func (l Ladder) Next(r phy.Rate) phy.Rate {
	if i := l.index(r); i >= 0 && i < len(l)-1 {
		return l[i+1]
	}
	return r
}

// Prev returns the next slower ladder rate, or r itself at the bottom
// (or off-ladder).
func (l Ladder) Prev(r phy.Rate) phy.Rate {
	if i := l.index(r); i > 0 {
		return l[i-1]
	}
	return r
}

// Top returns the ladder's fastest rate.
func (l Ladder) Top() phy.Rate { return l[len(l)-1] }

// Standard ARF parameters.
const (
	arfFallThreshold  = 2  // consecutive failures before rate drop
	arfRaiseThreshold = 10 // consecutive successes before probe
)

// ladderWalker holds an adapter's current rate and capability ladder,
// sharing the walk logic the feedback-driven adapters need. A nil
// ladder walks the b ladder via phy.Rate.Next/Prev with an 11 Mbps
// top — the pre-ladder behaviour, bit for bit.
type ladderWalker struct {
	cur    phy.Rate
	ladder Ladder
}

func (w *ladderWalker) next() phy.Rate {
	if w.ladder != nil {
		return w.ladder.Next(w.cur)
	}
	return w.cur.Next()
}

func (w *ladderWalker) prev() phy.Rate {
	if w.ladder != nil {
		return w.ladder.Prev(w.cur)
	}
	return w.cur.Prev()
}

func (w *ladderWalker) atTop() bool {
	if w.ladder != nil {
		return w.cur == w.ladder.Top()
	}
	return w.cur == phy.Rate11Mbps
}

// ARF is the classic Auto Rate Fallback adapter.
type ARF struct {
	ladderWalker
	succ    int
	fail    int
	probing bool // the next frame is the first at a raised rate
}

// NewARF returns an ARF adapter starting at the given rate. The
// ladderless adapter walks the b ladder, so a start outside it (OFDM
// rates included — use NewARFLadder for those) normalizes to 11 Mbps
// rather than pinning the adapter on a rate it cannot step through.
func NewARF(start phy.Rate) *ARF {
	if _, ok := start.Index(); !ok {
		start = phy.Rate11Mbps
	}
	return &ARF{ladderWalker: ladderWalker{cur: start}}
}

// NewARFLadder returns an ARF adapter walking the given ladder,
// starting at its top rate.
func NewARFLadder(l Ladder) *ARF {
	return &ARF{ladderWalker: ladderWalker{cur: l.Top(), ladder: l}}
}

// Name implements Adapter.
func (a *ARF) Name() string { return "arf" }

// Rate returns the current rate without consuming feedback.
func (a *ARF) Rate() phy.Rate { return a.cur }

// RateFor implements Adapter.
func (a *ARF) RateFor(int, float64) phy.Rate { return a.cur }

// OnAck implements Adapter.
func (a *ARF) OnAck() {
	a.fail = 0
	a.probing = false
	a.succ++
	if a.succ >= arfRaiseThreshold && !a.atTop() {
		a.cur = a.next()
		a.succ = 0
		a.probing = true
	}
}

// OnFailure implements Adapter.
func (a *ARF) OnFailure() {
	a.succ = 0
	a.fail++
	// A failed probe drops immediately; otherwise after 2 failures.
	if a.probing || a.fail >= arfFallThreshold {
		a.cur = a.prev()
		a.fail = 0
		a.probing = false
	}
}

// AARF is Adaptive ARF: like ARF, but each failed probe doubles the
// success threshold required before the next probe (capped), which
// stops the probe-fail-probe oscillation ARF exhibits under stable
// channels.
type AARF struct {
	ladderWalker
	succ      int
	fail      int
	threshold int
	probing   bool
}

const aarfMaxThreshold = 50

// NewAARF returns an AARF adapter starting at the given rate. Starts
// outside the b ladder normalize to 11 Mbps (see NewARF).
func NewAARF(start phy.Rate) *AARF {
	if _, ok := start.Index(); !ok {
		start = phy.Rate11Mbps
	}
	return &AARF{ladderWalker: ladderWalker{cur: start}, threshold: arfRaiseThreshold}
}

// NewAARFLadder returns an AARF adapter walking the given ladder,
// starting at its top rate.
func NewAARFLadder(l Ladder) *AARF {
	return &AARF{ladderWalker: ladderWalker{cur: l.Top(), ladder: l}, threshold: arfRaiseThreshold}
}

// Name implements Adapter.
func (a *AARF) Name() string { return "aarf" }

// Rate returns the current rate.
func (a *AARF) Rate() phy.Rate { return a.cur }

// RateFor implements Adapter.
func (a *AARF) RateFor(int, float64) phy.Rate { return a.cur }

// OnAck implements Adapter.
func (a *AARF) OnAck() {
	a.fail = 0
	a.probing = false
	a.succ++
	if a.succ >= a.threshold && !a.atTop() {
		a.cur = a.next()
		a.succ = 0
		a.probing = true
	}
}

// OnFailure implements Adapter.
func (a *AARF) OnFailure() {
	a.succ = 0
	a.fail++
	if a.probing {
		// Failed probe: back off and double the success threshold.
		a.cur = a.prev()
		a.threshold *= 2
		if a.threshold > aarfMaxThreshold {
			a.threshold = aarfMaxThreshold
		}
		a.fail = 0
		a.probing = false
		return
	}
	if a.fail >= arfFallThreshold {
		a.cur = a.prev()
		a.threshold = arfRaiseThreshold
		a.fail = 0
	}
}

// SNRThreshold picks the fastest rate whose modelled FER at the
// reported SNR is below Target — the SNR-based adaptation the paper
// recommends (Sec 7, citing RBAR/OAR). It ignores ACK feedback
// entirely, so collisions cannot drive it to low rates.
type SNRThreshold struct {
	// Target is the acceptable frame error rate (default 0.1).
	Target float64
	// MarginDB is subtracted from the reported SNR as a safety margin.
	MarginDB float64
	// Ladder is the rate set considered (nil: the b ladder).
	Ladder Ladder
}

// NewSNRThreshold returns an SNR-threshold adapter with a 10% FER
// target and 3 dB margin.
func NewSNRThreshold() *SNRThreshold { return &SNRThreshold{Target: 0.1, MarginDB: 3} }

// NewSNRThresholdLadder returns an SNR-threshold adapter restricted to
// the given ladder.
func NewSNRThresholdLadder(l Ladder) *SNRThreshold {
	return &SNRThreshold{Target: 0.1, MarginDB: 3, Ladder: l}
}

// Name implements Adapter.
func (s *SNRThreshold) Name() string { return "snr" }

// RateFor implements Adapter.
func (s *SNRThreshold) RateFor(sizeBytes int, snrDB float64) phy.Rate {
	snr := snrDB - s.MarginDB
	if s.Ladder != nil {
		for i := len(s.Ladder) - 1; i > 0; i-- {
			if phy.FER(snr, sizeBytes, s.Ladder[i]) <= s.Target {
				return s.Ladder[i]
			}
		}
		return s.Ladder[0]
	}
	for i := len(phy.Rates) - 1; i > 0; i-- {
		if phy.FER(snr, sizeBytes, phy.Rates[i]) <= s.Target {
			return phy.Rates[i]
		}
	}
	return phy.Rate1Mbps
}

// OnAck implements Adapter (no-op: SNR adaptation ignores ACKs).
func (s *SNRThreshold) OnAck() {}

// OnFailure implements Adapter (no-op).
func (s *SNRThreshold) OnFailure() {}

// Fixed always transmits at one rate.
type Fixed struct{ R phy.Rate }

// Name implements Adapter.
func (f Fixed) Name() string { return "fixed-" + f.R.String() }

// RateFor implements Adapter.
func (f Fixed) RateFor(int, float64) phy.Rate { return f.R }

// OnAck implements Adapter (no-op).
func (f Fixed) OnAck() {}

// OnFailure implements Adapter (no-op).
func (f Fixed) OnFailure() {}

// Factory builds a fresh Adapter per station, so stations do not share
// adaptation state.
type Factory func() Adapter

// NewARFFactory returns a Factory producing ARF adapters starting at
// 11 Mbps.
func NewARFFactory() Factory { return func() Adapter { return NewARF(phy.Rate11Mbps) } }

// NewAARFFactory returns a Factory producing AARF adapters.
func NewAARFFactory() Factory { return func() Adapter { return NewAARF(phy.Rate11Mbps) } }

// NewSNRFactory returns a Factory producing SNR-threshold adapters.
func NewSNRFactory() Factory { return func() Adapter { return NewSNRThreshold() } }

// NewFixedFactory returns a Factory producing fixed-rate adapters.
func NewFixedFactory(r phy.Rate) Factory { return func() Adapter { return Fixed{R: r} } }

// NewMixedFactory cycles deterministically through a population of
// adapter types: a quarter classic ARF, a quarter AARF, half
// SNR-threshold. The paper stresses the "large diversity in wireless
// hardware" at the IETF (Sec 1); a heterogeneous population is what
// produces its simultaneous observations of 1 Mbps channel occupancy
// (ARF victims, Figure 8) and dominant 11 Mbps byte counts (radios
// that hold the high rate, Figure 9), so scenario builders default to
// this mix.
func NewMixedFactory() Factory {
	i := 0
	return func() Adapter {
		i++
		switch i % 4 {
		case 1:
			return NewARF(phy.Rate11Mbps)
		case 2:
			return NewAARF(phy.Rate11Mbps)
		default:
			return NewSNRThreshold()
		}
	}
}

// NewSNRFactoryLadder returns a Factory producing SNR-threshold
// adapters restricted to the given ladder.
func NewSNRFactoryLadder(l Ladder) Factory {
	return func() Adapter { return NewSNRThresholdLadder(l) }
}

// NewMixedFactoryLadder is NewMixedFactory over an explicit ladder:
// the same ARF/AARF/SNR population, walking the given rate set — the
// dual-mode (LadderBG) population of the mixed-b/g scenarios.
func NewMixedFactoryLadder(l Ladder) Factory {
	i := 0
	return func() Adapter {
		i++
		switch i % 4 {
		case 1:
			return NewARFLadder(l)
		case 2:
			return NewAARFLadder(l)
		default:
			return NewSNRThresholdLadder(l)
		}
	}
}
