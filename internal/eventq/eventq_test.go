package eventq

import (
	"testing"
	"testing/quick"

	"wlan80211/internal/phy"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if q.Now() != 30 {
		t.Errorf("Now = %d", q.Now())
	}
	if q.Processed() != 3 {
		t.Errorf("Processed = %d", q.Processed())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func() { got = append(got, i) })
	}
	q.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	var q Queue
	var at phy.Micros
	q.At(100, func() {
		q.After(50, func() { at = q.Now() })
	})
	q.Run()
	if at != 150 {
		t.Errorf("After fired at %d, want 150", at)
	}
	// Negative delay clamps to now.
	fired := phy.Micros(-1)
	q.After(-10, func() { fired = q.Now() })
	q.Run()
	if fired != 150 {
		t.Errorf("negative After fired at %d", fired)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var q Queue
	q.At(100, func() {})
	q.Run()
	var at phy.Micros
	q.At(10, func() { at = q.Now() }) // in the past
	q.Run()
	if at != 100 {
		t.Errorf("past event fired at %d, want clamp to 100", at)
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.At(10, func() { fired = true })
	q.At(5, func() {})
	e.Cancel()
	if !e.Cancelled() {
		t.Error("Cancelled() false after Cancel")
	}
	q.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestLenExcludesCancelled(t *testing.T) {
	var q Queue
	e1 := q.At(1, func() {})
	q.At(2, func() {})
	e1.Cancel()
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var got []phy.Micros
	for _, at := range []phy.Micros{10, 20, 30, 40} {
		at := at
		q.At(at, func() { got = append(got, at) })
	}
	q.RunUntil(25)
	if len(got) != 2 {
		t.Errorf("fired %d events, want 2", len(got))
	}
	if q.Now() != 25 {
		t.Errorf("Now = %d, want 25", q.Now())
	}
	q.RunUntil(100)
	if len(got) != 4 {
		t.Errorf("fired %d events total, want 4", len(got))
	}
	if q.Now() != 100 {
		t.Errorf("Now = %d, want 100", q.Now())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	var q Queue
	e := q.At(5, func() { t.Error("cancelled head fired") })
	q.At(10, func() {})
	e.Cancel()
	q.RunUntil(20)
	if q.Processed() != 1 {
		t.Errorf("Processed = %d", q.Processed())
	}
}

func TestStepEmptyQueue(t *testing.T) {
	var q Queue
	if q.Step() {
		t.Error("Step on empty queue must return false")
	}
}

func TestEventAt(t *testing.T) {
	var q Queue
	e := q.At(42, func() {})
	if e.At() != 42 {
		t.Errorf("At() = %d", e.At())
	}
}

// Property: events always fire in nondecreasing time order regardless
// of insertion order.
func TestMonotonicProperty(t *testing.T) {
	f := func(times []uint32) bool {
		var q Queue
		var fired []phy.Micros
		for _, v := range times {
			at := phy.Micros(v % 10000)
			q.At(at, func() { fired = append(fired, q.Now()) })
		}
		q.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
