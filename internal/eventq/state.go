package eventq

import (
	"fmt"

	"wlan80211/internal/phy"
)

// This file exposes the queue's complete numeric state for the
// snapshot subsystem. Callbacks are funcs and cannot be serialized;
// SaveState records everything else (slab slots with their deferred
// deadlines and FIFO ranks, the heap, the free list, the clock, and
// the op counters) and RestoreState rebuilds a live queue from it,
// asking the caller to rebind each pending slot's callback. A
// deterministic caller that re-creates its callbacks in slot order
// gets a queue that fires the exact event sequence of the original —
// deferral stamps, free-list reuse order, and same-instant FIFO ranks
// included.

// SlotState is one slab entry minus its callback.
type SlotState struct {
	At       phy.Micros
	Deadline phy.Micros
	Seq      uint64
	DeferSeq uint64
	Pos      int32
	Gen      uint32
	State    uint8
	HasFn    bool
}

// HeapEntryState is one heap entry.
type HeapEntryState struct {
	At  phy.Micros
	Seq uint64
	Idx int32
}

// QueueState is the queue's full serializable state.
type QueueState struct {
	Now       phy.Micros
	Seq       uint64
	Runs      uint64
	Deferrals uint64
	Scheds    uint64
	Cancels   uint64
	Slots     []SlotState
	Heap      []HeapEntryState
	Free      []int32
}

// SaveState captures the queue's complete state (except callbacks).
func (q *Queue) SaveState() QueueState {
	st := QueueState{
		Now: q.now, Seq: q.seq, Runs: q.runs,
		Deferrals: q.deferrals, Scheds: q.scheds, Cancels: q.cancels,
		Slots: make([]SlotState, len(q.slots)),
		Heap:  make([]HeapEntryState, len(q.heap)),
		Free:  append([]int32(nil), q.free...),
	}
	for i := range q.slots {
		s := &q.slots[i]
		st.Slots[i] = SlotState{
			At: s.at, Deadline: s.deadline, Seq: s.seq, DeferSeq: s.deferSeq,
			Pos: s.pos, Gen: s.gen, State: s.state, HasFn: s.fn != nil,
		}
	}
	for i, e := range q.heap {
		st.Heap[i] = HeapEntryState{At: e.at, Seq: e.seq, Idx: e.idx}
	}
	return st
}

// RestoreState rebuilds a queue from a saved state. rebind is called
// once per slot that held a callback (in slot order) and must return
// the function to fire; the snapshot's consumer reconstructs its
// callbacks deterministically and maps them back by slot index.
// Structural invalidity — heap indexes out of range, slot/heap
// position disagreement, a pending slot without a callback — returns
// an error, never panics.
func RestoreState(st QueueState, rebind func(slot int) func()) (*Queue, error) {
	q := &Queue{
		now: st.Now, seq: st.Seq, runs: st.Runs,
		deferrals: st.Deferrals, scheds: st.Scheds, cancels: st.Cancels,
		slots: make([]slot, len(st.Slots)),
		heap:  make([]heapEntry, len(st.Heap)),
		free:  append([]int32(nil), st.Free...),
	}
	for i, ss := range st.Slots {
		if ss.State > stateCancelled {
			return nil, fmt.Errorf("eventq: slot %d has unknown state %d", i, ss.State)
		}
		s := &q.slots[i]
		s.at, s.deadline = ss.At, ss.Deadline
		s.seq, s.deferSeq = ss.Seq, ss.DeferSeq
		s.pos, s.gen, s.state = ss.Pos, ss.Gen, ss.State
		if ss.HasFn {
			if rebind == nil {
				return nil, fmt.Errorf("eventq: slot %d needs a callback but rebind is nil", i)
			}
			if s.fn = rebind(i); s.fn == nil {
				return nil, fmt.Errorf("eventq: rebind returned no callback for slot %d", i)
			}
		} else if ss.State == statePending {
			return nil, fmt.Errorf("eventq: pending slot %d has no callback", i)
		}
	}
	for i, e := range st.Heap {
		if e.Idx < 0 || int(e.Idx) >= len(q.slots) {
			return nil, fmt.Errorf("eventq: heap entry %d indexes slot %d of %d", i, e.Idx, len(q.slots))
		}
		s := &q.slots[e.Idx]
		if s.state != statePending {
			return nil, fmt.Errorf("eventq: heap entry %d points at non-pending slot %d", i, e.Idx)
		}
		if s.pos != int32(i) {
			return nil, fmt.Errorf("eventq: heap entry %d disagrees with slot %d position %d", i, e.Idx, s.pos)
		}
		q.heap[i] = heapEntry{at: e.At, seq: e.Seq, idx: e.Idx}
	}
	// Every pending slot must be exactly one heap entry, and free-list
	// entries must reference non-pending slots in range.
	pending := 0
	for i := range q.slots {
		if q.slots[i].state == statePending {
			pending++
		}
	}
	if pending != len(q.heap) {
		return nil, fmt.Errorf("eventq: %d pending slots but %d heap entries", pending, len(q.heap))
	}
	for _, f := range q.free {
		if f < 0 || int(f) >= len(q.slots) {
			return nil, fmt.Errorf("eventq: free-list entry %d out of range", f)
		}
		if q.slots[f].state == statePending {
			return nil, fmt.Errorf("eventq: free-list entry %d is pending", f)
		}
	}
	return q, nil
}

// Slot returns the slab index the handle points at, or -1 for the
// zero Event. Together with When/Pending it lets snapshot consumers
// record which queue slot a held handle refers to.
func (e Event) Slot() int32 {
	if e.q == nil {
		return -1
	}
	return e.slot
}

// Handle reconstructs an Event handle for a restored slot, so callers
// that held handles across a snapshot (the simulator's per-node
// countdown and await events) can keep using Pending/When/Defer/
// Cancel after a restore. The zero Event is returned for out-of-range
// slots.
func (q *Queue) Handle(slot int) Event {
	if slot < 0 || slot >= len(q.slots) {
		return Event{}
	}
	s := &q.slots[slot]
	return Event{q: q, slot: int32(slot), gen: s.gen, at: s.at}
}
