package eventq

import (
	"testing"

	"wlan80211/internal/phy"
)

// TestCancelHeavyNoRetention schedules and cancels far more events
// than ever fire and asserts the heap sheds them eagerly: cancelled
// events must not linger until popped, and the slab must stay bounded
// by the peak pending population, not the total scheduled count.
func TestCancelHeavyNoRetention(t *testing.T) {
	var q Queue
	fn := func() {}
	const rounds = 10000
	for i := 0; i < rounds; i++ {
		keep := q.At(phy.Micros(i+1), fn)
		q.At(phy.Micros(i+2), fn).Cancel()
		q.At(phy.Micros(i+3), fn).Cancel()
		q.At(phy.Micros(i+4), fn).Cancel()
		_ = keep
	}
	if got := q.Len(); got != rounds {
		t.Fatalf("Len = %d, want %d live events", got, rounds)
	}
	if got := len(q.heap); got != rounds {
		t.Fatalf("heap holds %d entries, want %d: cancelled events retained", got, rounds)
	}
	// Slab high-water mark: one kept + at most one in-flight cancelled
	// slot per round would be 2 live slots at any instant; the slab
	// must reuse freed slots instead of growing per scheduling.
	if got := len(q.slots); got > rounds+3 {
		t.Fatalf("slab grew to %d slots for %d live events", got, rounds)
	}
	q.Run()
	if q.Processed() != rounds {
		t.Fatalf("Processed = %d, want %d", q.Processed(), rounds)
	}
}

// TestSameInstantFIFOUnderChurn interleaves same-instant scheduling
// with cancellations so fired events must still come out in schedule
// order despite slot reuse and heap holes.
func TestSameInstantFIFOUnderChurn(t *testing.T) {
	var q Queue
	var got []int
	var doomed []Event
	want := 0
	for i := 0; i < 200; i++ {
		i := i
		if i%3 == 1 {
			doomed = append(doomed, q.At(50, func() { t.Error("cancelled event fired") }))
		} else {
			q.At(50, func() { got = append(got, i) })
			want++
		}
		if i%7 == 0 {
			for _, e := range doomed {
				e.Cancel()
			}
			doomed = doomed[:0]
		}
	}
	for _, e := range doomed {
		e.Cancel()
	}
	q.Run()
	if len(got) != want {
		t.Fatalf("fired %d events, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("same-instant FIFO violated: %d fired after %d", got[i], got[i-1])
		}
	}
}

// TestCancelStaleHandle exercises handle staleness: cancelling after
// the slot has been recycled must not touch the new occupant.
func TestCancelStaleHandle(t *testing.T) {
	var q Queue
	e1 := q.At(10, func() {})
	e1.Cancel()
	fired := false
	q.At(20, func() { fired = true }) // reuses e1's slot
	e1.Cancel()                       // stale: must be a no-op
	q.Run()
	if !fired {
		t.Fatal("stale Cancel killed an unrelated event")
	}
}

// TestZeroEventInert checks the zero handle is safe to use.
func TestZeroEventInert(t *testing.T) {
	var e Event
	e.Cancel()
	if e.Cancelled() || e.Scheduled() || e.At() != 0 {
		t.Error("zero Event must be inert")
	}
}

// TestRemoveMiddleKeepsHeapOrder cancels events from the middle of a
// large heap and verifies global ordering afterwards.
func TestRemoveMiddleKeepsHeapOrder(t *testing.T) {
	var q Queue
	var events []Event
	for i := 0; i < 500; i++ {
		at := phy.Micros((i * 7919) % 1000)
		events = append(events, q.At(at, func() {}))
	}
	for i := 0; i < len(events); i += 3 {
		events[i].Cancel()
	}
	var last phy.Micros = -1
	for q.Step() {
		if q.Now() < last {
			t.Fatalf("time went backwards: %d after %d", q.Now(), last)
		}
		last = q.Now()
	}
}
