// Package eventq provides the discrete-event scheduler driving the
// 802.11b network simulator: a priority queue of timed callbacks on a
// monotonic microsecond clock, with stable FIFO ordering for events
// scheduled at the same instant and support for cancellation.
//
// The queue is built for the simulator's hot path: events live in a
// slab indexed by a 4-ary heap, slots are recycled through a free
// list, and cancellation removes the event from the heap eagerly, so
// steady-state scheduling performs no per-event allocation and the
// heap never accumulates dead entries.
//
// For callers whose deadlines move often (the DCF backoff countdown
// pauses on every overheard transmission), Defer postpones a pending
// event with an O(1) stamp and no heap traffic: the stale heap entry
// re-arms itself in place when it surfaces, so heap work scales with
// events that actually come due rather than with deadline changes.
package eventq

import (
	"wlan80211/internal/phy"
)

// slot states. A slot is pending while queued, then fired or
// cancelled until its next reuse.
const (
	stateFree uint8 = iota
	statePending
	stateFired
	stateCancelled
)

// slot is one slab entry backing a scheduled event.
type slot struct {
	at phy.Micros
	// deadline is the deferred fire time (see Event.Defer). The event
	// is stale while deadline > at: when it surfaces at the heap top it
	// re-arms at deadline instead of firing.
	deadline phy.Micros
	seq      uint64
	// deferSeq is the FIFO rank minted when Defer stamped the
	// deadline. The in-place re-arm adopts it, so a deferred event
	// orders among same-instant events exactly as if it had been
	// cancelled and rescheduled at Defer time — deferral changes the
	// cost of moving a deadline, never the fire order.
	deferSeq uint64
	fn       func()
	pos      int32 // heap position; -1 when not queued
	gen      uint32
	state    uint8
}

// Event is a handle to a scheduled callback. The zero Event is
// inert: Cancel and Cancelled are no-ops on it.
type Event struct {
	q    *Queue
	slot int32
	gen  uint32
	at   phy.Micros
}

// At returns the time the event was originally scheduled for. A
// deferred event's actual fire time can be later (see Defer).
func (e Event) At() phy.Micros { return e.at }

// Scheduled reports whether the handle refers to a real scheduling
// (i.e. is not the zero Event). It does not say whether the event is
// still pending.
func (e Event) Scheduled() bool { return e.q != nil }

// Pending reports whether the event is still queued to fire: it has
// neither fired nor been cancelled, and its slot has not been
// recycled. Deferral does not affect pendingness — the handle stays
// valid across in-place re-arms.
func (e Event) Pending() bool {
	if e.q == nil {
		return false
	}
	s := &e.q.slots[e.slot]
	return s.gen == e.gen && s.state == statePending
}

// When returns the event's current fire target and whether it is
// still pending. The target of a deferred event is its stamped
// deadline, not the original At time.
func (e Event) When() (phy.Micros, bool) {
	if e.q == nil {
		return 0, false
	}
	s := &e.q.slots[e.slot]
	if s.gen != e.gen || s.state != statePending {
		return 0, false
	}
	return s.deadline, true
}

// Defer postpones a still-pending event to fire at t, with no heap
// traffic: the slot is stamped and the stale heap entry re-keys
// itself in place when it reaches the heap top. A deferred event
// fires in exactly the order a cancel-and-reschedule at Defer time
// would have produced: the FIFO rank among same-instant events is
// minted here, not at re-key — deferring to the event's current
// target still refreshes its rank. Deferring to an earlier time than
// the current target is a no-op (Defer never moves an event earlier;
// cancel and reschedule for that). Defer reports whether the event
// was still pending (an already-fired or cancelled event cannot be
// revived — schedule a new one).
func (e Event) Defer(t phy.Micros) bool {
	if e.q == nil {
		return false
	}
	s := &e.q.slots[e.slot]
	if s.gen != e.gen || s.state != statePending {
		return false
	}
	if t >= s.deadline {
		s.deadline = t
		s.deferSeq = e.q.seq
		e.q.seq++
	}
	return true
}

// Cancel prevents the event from firing and releases its slot
// immediately. Cancelling an already-fired or already-cancelled event
// is a no-op.
func (e Event) Cancel() {
	if e.q == nil {
		return
	}
	s := &e.q.slots[e.slot]
	if s.gen != e.gen || s.state != statePending {
		return
	}
	e.q.removeAt(int(s.pos))
	s.state = stateCancelled
	s.fn = nil
	s.pos = -1
	e.q.free = append(e.q.free, e.slot)
	e.q.cancels++
}

// Cancelled reports whether Cancel was called before the event fired.
// Once the event's slot has been recycled by a later scheduling the
// report degrades to false.
func (e Event) Cancelled() bool {
	if e.q == nil {
		return false
	}
	s := &e.q.slots[e.slot]
	return s.gen == e.gen && s.state == stateCancelled
}

// heapEntry carries the ordering key inline so heap compares touch no
// slot memory.
type heapEntry struct {
	at  phy.Micros
	seq uint64
	idx int32
}

// Queue is a discrete-event scheduler. The zero value is ready to use.
type Queue struct {
	slots     []slot
	heap      []heapEntry // 4-ary min-heap ordered by (at, seq)
	free      []int32
	now       phy.Micros
	seq       uint64
	runs      uint64
	deferrals uint64
	scheds    uint64
	cancels   uint64
}

// Now returns the current simulation time.
func (q *Queue) Now() phy.Micros { return q.now }

// Len returns the number of pending events in O(1). Cancelled events
// are removed eagerly and deferred events keep their single heap
// entry across in-place re-arms, so every heap entry is exactly one
// live pending event.
func (q *Queue) Len() int { return len(q.heap) }

// Processed returns the number of events that have fired. In-place
// re-arms of deferred events are not fires; they count in Deferrals.
func (q *Queue) Processed() uint64 { return q.runs }

// Deferrals returns the number of in-place re-arms performed for
// deferred events — the heap traffic Defer's O(1) stamping did not
// avoid. Deferrals/Processed bounds the lazy scheme's residual cost.
func (q *Queue) Deferrals() uint64 { return q.deferrals }

// Scheduled returns the number of events ever scheduled (At/After
// calls — heap inserts).
func (q *Queue) Scheduled() uint64 { return q.scheds }

// Cancelled returns the number of eager cancellations (heap removes).
// Scheduled + Cancelled + Deferrals approximates total heap mutation
// traffic beyond the unavoidable fire pops.
func (q *Queue) Cancelled() uint64 { return q.cancels }

// At schedules fn at absolute time t. Scheduling in the past (t <
// Now()) clamps to Now(), which keeps the clock monotonic.
func (q *Queue) At(t phy.Micros, fn func()) Event {
	if t < q.now {
		t = q.now
	}
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.slots = append(q.slots, slot{})
		idx = int32(len(q.slots) - 1)
	}
	s := &q.slots[idx]
	s.at = t
	s.deadline = t
	s.seq = q.seq
	s.deferSeq = q.seq
	s.fn = fn
	s.gen++
	s.state = statePending
	q.seq++
	q.scheds++
	s.pos = int32(len(q.heap))
	q.heap = append(q.heap, heapEntry{at: t, seq: s.seq, idx: idx})
	q.siftUp(int(s.pos))
	return Event{q: q, slot: idx, gen: s.gen, at: t}
}

// After schedules fn d microseconds from now.
func (q *Queue) After(d phy.Micros, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return q.At(q.now+d, fn)
}

// stale reports whether the heap-top entry for s carries an outdated
// key: a deferred deadline later than its queued time, or a refreshed
// FIFO rank (a Defer to the same instant).
func (s *slot) stale() bool { return s.deadline > s.at || s.deferSeq != s.seq }

// rearmTop re-keys the stale event at the heap top to its deferred
// deadline, adopting the seq minted when the deadline was stamped so
// the fire order matches a cancel-and-reschedule at Defer time. The
// slot generation (and so any live handle) is untouched.
func (q *Queue) rearmTop(s *slot) {
	s.at = s.deadline
	s.seq = s.deferSeq
	q.heap[0] = heapEntry{at: s.at, seq: s.seq, idx: q.heap[0].idx}
	q.siftDown(0)
	q.deferrals++
}

// Step fires the earliest live (non-deferred) pending event and
// returns true, or returns false if the queue is empty. Stale entries
// of deferred events surfacing at the heap top are re-armed in place
// on the way, without firing and without advancing the clock.
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		idx := q.heap[0].idx
		s := &q.slots[idx]
		if s.stale() {
			q.rearmTop(s)
			continue
		}
		q.now = s.at
		fn := s.fn
		s.fn = nil
		s.state = stateFired
		s.pos = -1
		q.removeAt(0)
		q.free = append(q.free, idx)
		q.runs++
		fn()
		return true
	}
	return false
}

// RunUntil fires events in order until the next live event would be
// after deadline (or the queue empties). Deferred entries whose stale
// time falls inside the window re-arm without firing — an event
// deferred past the deadline does not fire. The clock finishes at
// exactly deadline.
func (q *Queue) RunUntil(deadline phy.Micros) {
	for len(q.heap) > 0 && q.heap[0].at <= deadline {
		s := &q.slots[q.heap[0].idx]
		if s.stale() {
			q.rearmTop(s)
			continue
		}
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// Run fires all events until the queue is empty. Use with care: a
// self-rescheduling event makes this unbounded — prefer RunUntil.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// --- 4-ary heap with inline (time, seq) keys --------------------------

// less orders entries by (time, seq): earliest first, FIFO within the
// same instant.
func (a heapEntry) less(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// removeAt deletes the heap entry at position pos, restoring heap
// order by moving the last entry into the hole.
func (q *Queue) removeAt(pos int) {
	last := len(q.heap) - 1
	if pos != last {
		q.heap[pos] = q.heap[last]
		q.slots[q.heap[pos].idx].pos = int32(pos)
	}
	q.heap = q.heap[:last]
	if pos < last {
		q.siftDown(pos)
		q.siftUp(pos)
	}
}

func (q *Queue) siftUp(pos int) {
	e := q.heap[pos]
	for pos > 0 {
		parent := (pos - 1) / 4
		if !e.less(q.heap[parent]) {
			break
		}
		q.heap[pos] = q.heap[parent]
		q.slots[q.heap[pos].idx].pos = int32(pos)
		pos = parent
	}
	q.heap[pos] = e
	q.slots[e.idx].pos = int32(pos)
}

func (q *Queue) siftDown(pos int) {
	e := q.heap[pos]
	n := len(q.heap)
	for {
		first := pos*4 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.heap[c].less(q.heap[best]) {
				best = c
			}
		}
		if !q.heap[best].less(e) {
			break
		}
		q.heap[pos] = q.heap[best]
		q.slots[q.heap[pos].idx].pos = int32(pos)
		pos = best
	}
	q.heap[pos] = e
	q.slots[e.idx].pos = int32(pos)
}
