// Package eventq provides the discrete-event scheduler driving the
// 802.11b network simulator: a priority queue of timed callbacks on a
// monotonic microsecond clock, with stable FIFO ordering for events
// scheduled at the same instant and support for cancellation.
package eventq

import (
	"container/heap"

	"wlan80211/internal/phy"
)

// Event is a scheduled callback.
type Event struct {
	at     phy.Micros
	seq    uint64
	fn     func()
	index  int // heap index; -1 once popped or cancelled
	cancel bool
}

// At returns the time the event is scheduled for.
func (e *Event) At() phy.Micros { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancel }

// Queue is a discrete-event scheduler. The zero value is ready to use.
type Queue struct {
	h    eventHeap
	now  phy.Micros
	seq  uint64
	runs uint64
}

// Now returns the current simulation time.
func (q *Queue) Now() phy.Micros { return q.now }

// Len returns the number of pending (non-cancelled) events. Cancelled
// events still in the heap are not counted.
func (q *Queue) Len() int {
	n := 0
	for _, e := range q.h {
		if !e.cancel {
			n++
		}
	}
	return n
}

// Processed returns the number of events that have fired.
func (q *Queue) Processed() uint64 { return q.runs }

// At schedules fn at absolute time t. Scheduling in the past (t <
// Now()) clamps to Now(), which keeps the clock monotonic.
func (q *Queue) At(t phy.Micros, fn func()) *Event {
	if t < q.now {
		t = q.now
	}
	e := &Event{at: t, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// After schedules fn d microseconds from now.
func (q *Queue) After(d phy.Micros, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return q.At(q.now+d, fn)
}

// Step fires the earliest pending event and returns true, or returns
// false if the queue is empty.
func (q *Queue) Step() bool {
	for q.h.Len() > 0 {
		e := heap.Pop(&q.h).(*Event)
		if e.cancel {
			continue
		}
		q.now = e.at
		q.runs++
		e.fn()
		return true
	}
	return false
}

// RunUntil fires events in order until the next event would be after
// deadline (or the queue empties). The clock finishes at exactly
// deadline.
func (q *Queue) RunUntil(deadline phy.Micros) {
	for q.h.Len() > 0 {
		e := q.h[0]
		if e.cancel {
			heap.Pop(&q.h)
			continue
		}
		if e.at > deadline {
			break
		}
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// Run fires all events until the queue is empty. Use with care: a
// self-rescheduling event makes this unbounded — prefer RunUntil.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
