// Package eventq provides the discrete-event scheduler driving the
// 802.11b network simulator: a priority queue of timed callbacks on a
// monotonic microsecond clock, with stable FIFO ordering for events
// scheduled at the same instant and support for cancellation.
//
// The queue is built for the simulator's hot path: events live in a
// slab indexed by a 4-ary heap, slots are recycled through a free
// list, and cancellation removes the event from the heap eagerly, so
// steady-state scheduling performs no per-event allocation and the
// heap never accumulates dead entries.
package eventq

import (
	"wlan80211/internal/phy"
)

// slot states. A slot is pending while queued, then fired or
// cancelled until its next reuse.
const (
	stateFree uint8 = iota
	statePending
	stateFired
	stateCancelled
)

// slot is one slab entry backing a scheduled event.
type slot struct {
	at    phy.Micros
	seq   uint64
	fn    func()
	pos   int32 // heap position; -1 when not queued
	gen   uint32
	state uint8
}

// Event is a handle to a scheduled callback. The zero Event is
// inert: Cancel and Cancelled are no-ops on it.
type Event struct {
	q    *Queue
	slot int32
	gen  uint32
	at   phy.Micros
}

// At returns the time the event was scheduled for.
func (e Event) At() phy.Micros { return e.at }

// Scheduled reports whether the handle refers to a real scheduling
// (i.e. is not the zero Event). It does not say whether the event is
// still pending.
func (e Event) Scheduled() bool { return e.q != nil }

// Cancel prevents the event from firing and releases its slot
// immediately. Cancelling an already-fired or already-cancelled event
// is a no-op.
func (e Event) Cancel() {
	if e.q == nil {
		return
	}
	s := &e.q.slots[e.slot]
	if s.gen != e.gen || s.state != statePending {
		return
	}
	e.q.removeAt(int(s.pos))
	s.state = stateCancelled
	s.fn = nil
	s.pos = -1
	e.q.free = append(e.q.free, e.slot)
}

// Cancelled reports whether Cancel was called before the event fired.
// Once the event's slot has been recycled by a later scheduling the
// report degrades to false.
func (e Event) Cancelled() bool {
	if e.q == nil {
		return false
	}
	s := &e.q.slots[e.slot]
	return s.gen == e.gen && s.state == stateCancelled
}

// heapEntry carries the ordering key inline so heap compares touch no
// slot memory.
type heapEntry struct {
	at  phy.Micros
	seq uint64
	idx int32
}

// Queue is a discrete-event scheduler. The zero value is ready to use.
type Queue struct {
	slots []slot
	heap  []heapEntry // 4-ary min-heap ordered by (at, seq)
	free  []int32
	now   phy.Micros
	seq   uint64
	runs  uint64
}

// Now returns the current simulation time.
func (q *Queue) Now() phy.Micros { return q.now }

// Len returns the number of pending events in O(1). Cancelled events
// are removed eagerly, so every heap entry is live.
func (q *Queue) Len() int { return len(q.heap) }

// Processed returns the number of events that have fired.
func (q *Queue) Processed() uint64 { return q.runs }

// At schedules fn at absolute time t. Scheduling in the past (t <
// Now()) clamps to Now(), which keeps the clock monotonic.
func (q *Queue) At(t phy.Micros, fn func()) Event {
	if t < q.now {
		t = q.now
	}
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.slots = append(q.slots, slot{})
		idx = int32(len(q.slots) - 1)
	}
	s := &q.slots[idx]
	s.at = t
	s.seq = q.seq
	s.fn = fn
	s.gen++
	s.state = statePending
	q.seq++
	s.pos = int32(len(q.heap))
	q.heap = append(q.heap, heapEntry{at: t, seq: s.seq, idx: idx})
	q.siftUp(int(s.pos))
	return Event{q: q, slot: idx, gen: s.gen, at: t}
}

// After schedules fn d microseconds from now.
func (q *Queue) After(d phy.Micros, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return q.At(q.now+d, fn)
}

// Step fires the earliest pending event and returns true, or returns
// false if the queue is empty.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	idx := q.heap[0].idx
	s := &q.slots[idx]
	q.now = s.at
	fn := s.fn
	s.fn = nil
	s.state = stateFired
	s.pos = -1
	q.removeAt(0)
	q.free = append(q.free, idx)
	q.runs++
	fn()
	return true
}

// RunUntil fires events in order until the next event would be after
// deadline (or the queue empties). The clock finishes at exactly
// deadline.
func (q *Queue) RunUntil(deadline phy.Micros) {
	for len(q.heap) > 0 && q.heap[0].at <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// Run fires all events until the queue is empty. Use with care: a
// self-rescheduling event makes this unbounded — prefer RunUntil.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// --- 4-ary heap with inline (time, seq) keys --------------------------

// less orders entries by (time, seq): earliest first, FIFO within the
// same instant.
func (a heapEntry) less(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// removeAt deletes the heap entry at position pos, restoring heap
// order by moving the last entry into the hole.
func (q *Queue) removeAt(pos int) {
	last := len(q.heap) - 1
	if pos != last {
		q.heap[pos] = q.heap[last]
		q.slots[q.heap[pos].idx].pos = int32(pos)
	}
	q.heap = q.heap[:last]
	if pos < last {
		q.siftDown(pos)
		q.siftUp(pos)
	}
}

func (q *Queue) siftUp(pos int) {
	e := q.heap[pos]
	for pos > 0 {
		parent := (pos - 1) / 4
		if !e.less(q.heap[parent]) {
			break
		}
		q.heap[pos] = q.heap[parent]
		q.slots[q.heap[pos].idx].pos = int32(pos)
		pos = parent
	}
	q.heap[pos] = e
	q.slots[e.idx].pos = int32(pos)
}

func (q *Queue) siftDown(pos int) {
	e := q.heap[pos]
	n := len(q.heap)
	for {
		first := pos*4 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.heap[c].less(q.heap[best]) {
				best = c
			}
		}
		if !q.heap[best].less(e) {
			break
		}
		q.heap[pos] = q.heap[best]
		q.slots[q.heap[pos].idx].pos = int32(pos)
		pos = best
	}
	q.heap[pos] = e
	q.slots[e.idx].pos = int32(pos)
}
