package eventq

import (
	"testing"

	"wlan80211/internal/phy"
)

// These tests pin the deferred-fire/re-arm semantics the lazy DCF
// countdown depends on: Defer is an O(1) stamp, the stale heap entry
// re-arms in place exactly once per surfacing, handles stay valid
// across re-arms, and slot recycling never lets a stale handle touch
// a successor event.

func TestDeferFiresOnceAtDeadline(t *testing.T) {
	var q Queue
	fired := 0
	var at phy.Micros
	e := q.At(10, func() { fired++; at = q.Now() })
	if !e.Defer(30) {
		t.Fatal("Defer on a pending event reported not-pending")
	}
	q.Run()
	if fired != 1 || at != 30 {
		t.Fatalf("fired %d times at t=%d; want once at t=30", fired, at)
	}
	if q.Processed() != 1 || q.Deferrals() != 1 {
		t.Errorf("processed=%d deferrals=%d; want 1 and 1", q.Processed(), q.Deferrals())
	}
}

func TestDeferTakesMaxAndNeverMovesEarlier(t *testing.T) {
	var q Queue
	var at phy.Micros
	e := q.At(10, func() { at = q.Now() })
	e.Defer(30)
	e.Defer(20) // earlier than the stamped deadline: no-op
	e.Defer(5)  // earlier than the original time: no-op
	q.Run()
	if at != 30 {
		t.Fatalf("fired at t=%d, want 30", at)
	}
}

func TestDoubleRearm(t *testing.T) {
	var q Queue
	var at phy.Micros
	fired := 0
	e := q.At(10, func() { fired++; at = q.Now() })
	e.Defer(30)
	// A second deferral lands between the first re-arm (at t=10) and
	// the deferred deadline, forcing a second in-place re-arm at t=30.
	q.At(15, func() { e.Defer(40) })
	q.Run()
	if fired != 1 || at != 40 {
		t.Fatalf("fired %d times at t=%d; want once at t=40", fired, at)
	}
	if q.Deferrals() != 2 {
		t.Errorf("deferrals=%d, want 2 (re-armed at t=10 and t=30)", q.Deferrals())
	}
}

func TestDeferAfterFireAndCancelAfterFire(t *testing.T) {
	var q Queue
	e := q.At(10, func() {})
	q.Run()
	if e.Pending() {
		t.Error("fired event still pending")
	}
	if e.Defer(50) {
		t.Error("Defer revived a fired event")
	}
	e.Cancel() // must be a no-op
	// The freed slot is recycled by the next scheduling; the stale
	// handle must not be able to cancel or defer its successor.
	fired := 0
	e2 := q.At(20, func() { fired++ })
	e.Cancel()
	if e.Defer(99) {
		t.Error("stale handle deferred a recycled slot")
	}
	q.Run()
	if fired != 1 {
		t.Fatalf("successor event fired %d times, want 1 (stale handle interfered)", fired)
	}
	if e2.Pending() {
		t.Error("successor event still pending after Run")
	}
}

func TestCancelDeferredEvent(t *testing.T) {
	var q Queue
	e := q.At(10, func() { t.Error("cancelled deferred event fired") })
	e.Defer(30)
	e.Cancel()
	if e.Pending() {
		t.Error("cancelled event still pending")
	}
	if q.Len() != 0 {
		t.Errorf("Len=%d after cancelling the only event", q.Len())
	}
	q.Run()
}

func TestHandleSurvivesRearmAndFreeListReuse(t *testing.T) {
	var q Queue
	fired := 0
	e := q.At(10, func() { fired++ })
	e.Defer(100)
	// Fire-and-recycle another slot so the free list is warm, then run
	// past the stale time: the deferred event re-arms in place.
	q.At(5, func() {})
	q.RunUntil(50)
	if !e.Pending() {
		t.Fatal("handle went stale across an in-place re-arm")
	}
	if q.Len() != 1 {
		t.Fatalf("Len=%d, want 1 (one pending deferred event)", q.Len())
	}
	// The handle still defers and cancels after the re-arm.
	if !e.Defer(200) {
		t.Fatal("Defer after re-arm reported not-pending")
	}
	e.Cancel()
	if e.Pending() || q.Len() != 0 {
		t.Fatal("cancel after re-arm did not remove the event")
	}
	// The slot returns to the free list and serves a fresh event the
	// stale handle cannot touch.
	e2 := q.At(60, func() { fired += 10 })
	if e.Defer(999) || e.Pending() {
		t.Error("stale handle still live after slot reuse")
	}
	q.Run()
	if fired != 10 {
		t.Fatalf("fired=%d, want 10 (reused-slot event only, no deferred fire)", fired)
	}
	_ = e2
}

func TestRunUntilDoesNotFireDeferredPastDeadline(t *testing.T) {
	var q Queue
	fired := false
	e := q.At(10, func() { fired = true })
	e.Defer(100)
	q.RunUntil(50)
	if fired {
		t.Fatal("RunUntil fired an event deferred past its deadline")
	}
	if q.Now() != 50 {
		t.Errorf("now=%d, want 50", q.Now())
	}
	q.RunUntil(100)
	if !fired {
		t.Fatal("deferred event never fired")
	}
}

func TestRearmOrdersAfterEventsAlreadyAtInstant(t *testing.T) {
	var q Queue
	var order []string
	// B is scheduled for t=30 before A's stale entry surfaces at t=10;
	// A's re-arm mints a fresh seq, so at t=30 B keeps FIFO priority.
	a := q.At(10, func() { order = append(order, "A") })
	q.At(30, func() { order = append(order, "B") })
	a.Defer(30)
	q.Run()
	if len(order) != 2 || order[0] != "B" || order[1] != "A" {
		t.Fatalf("order=%v, want [B A]", order)
	}
}

func TestStepSkipsStaleEntries(t *testing.T) {
	var q Queue
	var got []phy.Micros
	e := q.At(10, func() { got = append(got, q.Now()) })
	q.At(20, func() { got = append(got, q.Now()) })
	e.Defer(40)
	// First Step must fire the t=20 event (re-arming the stale t=10
	// entry on the way), not the deferred one.
	if !q.Step() {
		t.Fatal("Step found no event")
	}
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("first fire at %v, want [20]", got)
	}
	q.Run()
	if len(got) != 2 || got[1] != 40 {
		t.Fatalf("fires=%v, want [20 40]", got)
	}
}
