package eventq

import (
	"testing"

	"wlan80211/internal/phy"
)

// BenchmarkEventQueue models the simulator's scheduling pattern: a
// steady churn of schedule/fire with a fraction of events cancelled
// before firing (ACK timeouts, paused backoff countdowns).
func BenchmarkEventQueue(b *testing.B) {
	b.ReportAllocs()
	var q Queue
	fn := func() {}
	// Warm a realistic pending population.
	for i := 0; i < 1024; i++ {
		q.After(phy.Micros(i%97+1), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.After(phy.Micros(i%131+1), fn)
		if i%4 == 0 {
			e.Cancel()
		}
		q.Step()
	}
}

// BenchmarkEventQueueCancelHeavy stresses cancellation: every scheduled
// event is cancelled, as happens to backoff countdowns on a busy
// medium.
func BenchmarkEventQueueCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	var q Queue
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.After(phy.Micros(i%53+1), fn)
		e.Cancel()
		if i%8 == 0 {
			q.Step()
		}
	}
}
