// Package faultinject is the deterministic crash harness for
// crash-resume testing of sweep campaigns. A Plan names one crash
// point — after run K commits, at a run's Nth mid-run checkpoint, or
// midway through run K's journal write — and an Injector arms it
// inside the campaign runner. Crashes are delivered through the
// overridable Crash hook: in-process tests install a panic they
// recover from; the CI smoke job instead SIGKILLs the real process,
// which this package exists to make reproducible in-tree.
//
// Schedules are pure functions of a seed, so a failing crash point is
// re-run exactly: same seed, same plan, same crash instant.
package faultinject

import "fmt"

// Point is a crash-point kind.
type Point uint8

const (
	// None disables injection.
	None Point = iota
	// AfterRun crashes immediately after run K's completion record is
	// durably journaled (the resume must skip K and everything before).
	AfterRun
	// MidRun crashes at run K's Nth checkpoint, right after the
	// snapshot file is atomically written (the resume must
	// replay-verify that snapshot).
	MidRun
	// JournalWrite crashes midway through writing run K's journal
	// record, leaving a torn tail line (the resume must detect it via
	// the per-record checksum, truncate it, and re-run K).
	JournalWrite
)

func (p Point) String() string {
	switch p {
	case None:
		return "none"
	case AfterRun:
		return "after-run"
	case MidRun:
		return "mid-run"
	case JournalWrite:
		return "journal-write"
	default:
		return fmt.Sprintf("point(%d)", uint8(p))
	}
}

// Plan is one scheduled crash.
type Plan struct {
	Point Point
	// Run is the zero-based run index the point applies to.
	Run int
	// Checkpoint is the zero-based checkpoint index within the run
	// (MidRun only).
	Checkpoint int
}

func (p Plan) String() string {
	if p.Point == MidRun {
		return fmt.Sprintf("%s run=%d checkpoint=%d", p.Point, p.Run, p.Checkpoint)
	}
	return fmt.Sprintf("%s run=%d", p.Point, p.Run)
}

// Schedule derives a crash plan from a seed, deterministically: the
// same (seed, totalRuns, maxCheckpoints) always yields the same plan.
// The point kind, victim run, and checkpoint index all come from
// independent splitmix64 draws.
func Schedule(seed int64, totalRuns, maxCheckpoints int) Plan {
	if totalRuns < 1 {
		totalRuns = 1
	}
	if maxCheckpoints < 1 {
		maxCheckpoints = 1
	}
	s := uint64(seed)
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	return Plan{
		Point:      Point(1 + next()%3),
		Run:        int(next() % uint64(totalRuns)),
		Checkpoint: int(next() % uint64(maxCheckpoints)),
	}
}

// Crashed is the value the default Crash hook panics with; tests
// recover it to distinguish an injected crash from a real failure.
type Crashed struct {
	Plan Plan
}

func (c Crashed) Error() string {
	return fmt.Sprintf("faultinject: injected crash at %s", c.Plan)
}

// Crash delivers an armed crash. The default panics with Crashed —
// the in-process analogue of a SIGKILL: no deferred cleanup in the
// campaign runner is given a chance to tidy partial state (the runner
// has none; crash-consistency comes from atomic writes, not
// shutdown paths). Tests may replace it to observe arming.
var Crash = func(plan Plan) {
	panic(Crashed{Plan: plan})
}

// Injector arms a plan inside a campaign runner. A nil *Injector is
// inert, so call sites need no guards. Methods are not concurrency-
// safe beyond their single matching run — campaigns under injection
// run single-worker so the crash instant is reproducible.
type Injector struct {
	plan  Plan
	fired bool
}

// New arms plan. A None plan yields an inert injector.
func New(plan Plan) *Injector {
	if plan.Point == None {
		return nil
	}
	return &Injector{plan: plan}
}

// Plan returns the armed plan (zero Plan when inert).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// AfterRun crashes if the plan is AfterRun for this run index.
func (in *Injector) AfterRun(run int) {
	if in == nil || in.fired || in.plan.Point != AfterRun || run != in.plan.Run {
		return
	}
	in.fired = true
	Crash(in.plan)
}

// AtCheckpoint crashes if the plan is MidRun for this run and
// checkpoint index.
func (in *Injector) AtCheckpoint(run, checkpoint int) {
	if in == nil || in.fired || in.plan.Point != MidRun || run != in.plan.Run || checkpoint != in.plan.Checkpoint {
		return
	}
	in.fired = true
	Crash(in.plan)
}

// JournalWrite reports whether the plan is to tear this run's journal
// record. The caller writes the torn prefix itself, then must call
// CrashNow — splitting the decision from the crash lets the tear land
// exactly mid-write.
func (in *Injector) JournalWrite(run int) bool {
	return in != nil && !in.fired && in.plan.Point == JournalWrite && run == in.plan.Run
}

// CrashNow fires the armed crash unconditionally (used with
// JournalWrite after the torn bytes are on disk).
func (in *Injector) CrashNow() {
	if in == nil || in.fired {
		return
	}
	in.fired = true
	Crash(in.plan)
}
