package faultinject

import "testing"

// fire replaces Crash with a recorder for the duration of f and
// returns the plans that fired.
func fire(t *testing.T, f func()) []Plan {
	t.Helper()
	var fired []Plan
	old := Crash
	Crash = func(p Plan) { fired = append(fired, p) }
	defer func() { Crash = old }()
	f()
	return fired
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	fired := fire(t, func() {
		in.AfterRun(0)
		in.AtCheckpoint(0, 0)
		if in.JournalWrite(0) {
			t.Error("nil injector armed a journal tear")
		}
		in.CrashNow()
	})
	if len(fired) != 0 {
		t.Fatalf("nil injector fired %v", fired)
	}
	if New(Plan{Point: None}) != nil {
		t.Fatal("None plan should yield a nil injector")
	}
}

func TestInjectorFiresExactlyOnce(t *testing.T) {
	plan := Plan{Point: AfterRun, Run: 2}
	in := New(plan)
	fired := fire(t, func() {
		in.AfterRun(0)
		in.AfterRun(1)
		in.AtCheckpoint(2, 0) // wrong point kind: must not fire
		in.AfterRun(2)
		in.AfterRun(2) // already fired: must not fire again
		in.AfterRun(3)
	})
	if len(fired) != 1 || fired[0] != plan {
		t.Fatalf("fired = %v, want exactly %v", fired, plan)
	}
}

func TestMidRunMatchesCheckpointIndex(t *testing.T) {
	plan := Plan{Point: MidRun, Run: 1, Checkpoint: 2}
	in := New(plan)
	fired := fire(t, func() {
		in.AtCheckpoint(1, 0)
		in.AtCheckpoint(1, 1)
		in.AtCheckpoint(0, 2) // wrong run
		in.AtCheckpoint(1, 2)
	})
	if len(fired) != 1 || fired[0] != plan {
		t.Fatalf("fired = %v, want exactly %v", fired, plan)
	}
}

func TestJournalWriteSplitArming(t *testing.T) {
	in := New(Plan{Point: JournalWrite, Run: 1})
	if in.JournalWrite(0) {
		t.Fatal("armed for the wrong run")
	}
	if !in.JournalWrite(1) {
		t.Fatal("not armed for the planned run")
	}
	fired := fire(t, func() { in.CrashNow(); in.CrashNow() })
	if len(fired) != 1 {
		t.Fatalf("CrashNow fired %d times", len(fired))
	}
	if in.JournalWrite(1) {
		t.Fatal("still armed after firing")
	}
}

func TestScheduleDeterministicAndInRange(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := Schedule(seed, 7, 4)
		if p != Schedule(seed, 7, 4) {
			t.Fatalf("seed %d: schedule not deterministic", seed)
		}
		if p.Point != AfterRun && p.Point != MidRun && p.Point != JournalWrite {
			t.Fatalf("seed %d: invalid point %v", seed, p.Point)
		}
		if p.Run < 0 || p.Run >= 7 {
			t.Fatalf("seed %d: run %d out of range", seed, p.Run)
		}
		if p.Checkpoint < 0 || p.Checkpoint >= 4 {
			t.Fatalf("seed %d: checkpoint %d out of range", seed, p.Checkpoint)
		}
	}
	// Degenerate bounds clamp instead of dividing by zero.
	if p := Schedule(1, 0, 0); p.Run != 0 || p.Checkpoint != 0 {
		t.Fatalf("clamped schedule = %+v", p)
	}
}

func TestCrashedIsError(t *testing.T) {
	var err error = Crashed{Plan: Plan{Point: MidRun, Run: 3, Checkpoint: 1}}
	want := "faultinject: injected crash at mid-run run=3 checkpoint=1"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}
