package experiment

import (
	"math/rand"
	"reflect"
	"testing"

	"wlan80211/internal/analysis"
	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
	"wlan80211/internal/workload"
)

// streamResult runs the named registry scenario through the full
// streaming bridge (emit → Reorder → sequential Analyzer), the exact
// path Engine.runOne takes.
func streamResult(t *testing.T, name string, seed int64, scale float64) *analysis.Result {
	t.Helper()
	sc, err := New(name, seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Workers: 1}
	res := e.Run([]Spec{{Name: name, Seed: seed, Scale: scale, Scenario: sc}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	return res[0].Result
}

// TestStreamingMatchesMaterialized is the engine's acceptance gate:
// for a fixed seed, a Tap-fed streamed run must produce a Result
// bit-identical to materializing the trace and batch-analyzing it —
// across all three scenario shapes, including the multi-channel,
// multi-sniffer day session.
func TestStreamingMatchesMaterialized(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	t.Run("day", func(t *testing.T) {
		b, err := workload.DaySession().Scale(0.1).Build()
		if err != nil {
			t.Fatal(err)
		}
		want := analysis.Analyze(b.Run())
		got := streamResult(t, "day", 0, 0.1)
		if want.TotalFrames == 0 {
			t.Fatal("empty materialized trace")
		}
		if !reflect.DeepEqual(want, got) {
			t.Error("streamed day result differs from materialized batch result")
		}
	})
	t.Run("sweep", func(t *testing.T) {
		recs, _, _ := workload.DefaultSweep().Scale(0.15).Run()
		want := analysis.Analyze(recs)
		got := streamResult(t, "sweep", 0, 0.15)
		if !reflect.DeepEqual(want, got) {
			t.Error("streamed sweep result differs from materialized batch result")
		}
	})
	t.Run("ladder", func(t *testing.T) {
		want := analysis.Analyze(workload.MultiSweep(workload.DefaultLadder(0.1)))
		got := streamResult(t, "ladder", 0, 0.1)
		if !reflect.DeepEqual(want, got) {
			t.Error("streamed ladder result differs from MultiSweep batch result")
		}
	})
}

// TestMatrixParallelDeterminism runs the same ≥8-cell matrix on one
// worker and on several, and demands identical per-run summaries and
// aggregates: completion order must not leak into results. Run under
// -race in CI, this is also the engine's data-race gate.
func TestMatrixParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	m := Matrix{
		Scenarios: []string{"sweep"},
		Seeds:     []int64{7, 8},
		Scales:    []float64{0.1, 0.15},
	}
	specsA, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	specsB, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specsA) < 4 {
		t.Fatalf("matrix expanded to %d cells", len(specsA))
	}

	serial := (&Engine{Workers: 1}).Run(specsA)
	parallel := (&Engine{Workers: 4}).Run(specsB)

	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("run %d failed: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Summary != parallel[i].Summary {
			t.Errorf("run %d summary differs across worker counts:\n serial  %+v\n parallel %+v",
				i, serial[i].Summary, parallel[i].Summary)
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Errorf("run %d full result differs across worker counts", i)
		}
	}
	if !reflect.DeepEqual(Aggregate(serial), Aggregate(parallel)) {
		t.Error("aggregates differ across worker counts")
	}
}

// TestAggregateGroupsAndReduces checks the scenario+scale grouping and
// the mean/stddev reduction on hand-built results.
func TestAggregateGroupsAndReduces(t *testing.T) {
	mk := func(name string, scale float64, frames int64) RunResult {
		return RunResult{
			Spec:    Spec{Name: name, Scale: scale},
			Summary: Summary{Frames: frames},
			Result:  &analysis.Result{},
		}
	}
	aggs := Aggregate([]RunResult{
		mk("a", 0.5, 100),
		mk("a", 0.5, 200),
		mk("b", 0.5, 10),
		{Spec: Spec{Name: "b", Scale: 0.5}, Err: errFake},
	})
	if len(aggs) != 2 {
		t.Fatalf("got %d groups, want 2", len(aggs))
	}
	a := aggs[0]
	if a.Scenario != "a" || a.Runs != 2 {
		t.Fatalf("group a = %+v", a)
	}
	f := a.Field("frames")
	if f.Mean != 150 {
		t.Errorf("frames mean = %v, want 150", f.Mean)
	}
	if f.Stddev < 70 || f.Stddev > 71 {
		t.Errorf("frames stddev = %v, want ~70.7", f.Stddev)
	}
	b := aggs[1]
	if b.Runs != 1 || b.Errors != 1 {
		t.Errorf("group b runs/errors = %d/%d, want 1/1", b.Runs, b.Errors)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

// TestReorderRestoresStartOrder feeds a synthetic end-ordered stream
// with overlapping frames and checks the output is start-ordered with
// arrival-stable ties — the order capture.Merge's sort would produce.
func TestReorderRestoresStartOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type obs struct {
		start phy.Micros
		len   int
	}
	// Random overlapping transmissions, delivered in end order.
	var all []obs
	var tme phy.Micros
	for i := 0; i < 500; i++ {
		tme += phy.Micros(rng.Intn(2000))
		all = append(all, obs{start: tme, len: 100 + rng.Intn(1400)})
	}
	ends := make([]phy.Micros, len(all))
	idx := make([]int, len(all))
	for i, o := range all {
		ends[i] = o.start + phy.Airtime(o.len, phy.Rate1Mbps)
		idx[i] = i
	}
	// Deliver in end order (stable on ties).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && ends[idx[j]] < ends[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}

	var got []capture.Record
	ro := NewReorder(func(rec capture.Record) {
		cp := rec
		cp.Frame = append([]byte(nil), rec.Frame...)
		got = append(got, cp)
	})
	frame := make([]byte, 4)
	for _, i := range idx {
		o := all[i]
		frame[0], frame[1] = byte(i), byte(i>>8)
		ro.Add(capture.Record{
			Time: o.start, Rate: phy.Rate1Mbps, Channel: phy.Channel1,
			OrigLen: o.len, Frame: frame,
		})
	}
	ro.Flush()

	if len(got) != len(all) {
		t.Fatalf("got %d records, want %d", len(got), len(all))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("output not start-ordered at %d: %d after %d", i, got[i].Time, got[i-1].Time)
		}
	}
	// Against the reference: stable sort of delivery order by start.
	ref := make([]int, len(idx))
	copy(ref, idx)
	for i := 1; i < len(ref); i++ {
		for j := i; j > 0 && all[ref[j]].start < all[ref[j-1]].start; j-- {
			ref[j], ref[j-1] = ref[j-1], ref[j]
		}
	}
	for i, want := range ref {
		if id := int(got[i].Frame[0]) | int(got[i].Frame[1])<<8; id != want {
			t.Fatalf("record %d is transmission %d, want %d (tie order broken)", i, id, want)
		}
	}
}

// TestReorderBoundedBuffer streams a real sweep and checks the
// properties the engine's memory claim rests on: the sniffer retains
// nothing, and the reorder buffer's high-water mark stays a tiny
// constant regardless of how many frames pass through.
func TestReorderBoundedBuffer(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	frames := 0
	ro := NewReorder(func(capture.Record) { frames++ })
	sn, _ := workload.DefaultSweep().Scale(0.2).RunStream(ro.Add)
	ro.Flush()

	if frames < 1000 {
		t.Fatalf("only %d frames streamed; sweep too small to be meaningful", frames)
	}
	if got := len(sn.Records()); got != 0 {
		t.Errorf("streaming sniffer materialized %d records", got)
	}
	if int64(sn.Captured) != int64(frames) {
		t.Errorf("sniffer captured %d but stream delivered %d", sn.Captured, frames)
	}
	if ro.MaxPending() > 128 {
		t.Errorf("reorder high-water mark %d; want a small constant (≤128) independent of the %d-frame trace",
			ro.MaxPending(), frames)
	}
}

// TestRegistry pins the built-in scenario set and the unknown-name
// error path.
func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{"day": true, "plenary": true, "sweep": true, "ladder": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing built-in scenarios: %v (have %v)", want, names)
	}
	if _, err := New("no-such-scenario", 0, 1); err == nil {
		t.Error("unknown scenario must error")
	}
	if _, err := (Matrix{Scenarios: []string{"nope"}}).Expand(); err == nil {
		t.Error("matrix with unknown scenario must error")
	}
}

// TestMatrixExpandDefaults checks the zero-value defaults (one run at
// default seed, full scale) and the expansion ordering.
func TestMatrixExpandDefaults(t *testing.T) {
	specs, err := Matrix{Scenarios: []string{"sweep"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Seed != 0 || specs[0].Scale != 1.0 {
		t.Fatalf("default expansion = %+v", specs)
	}
	specs, err = Matrix{
		Scenarios: []string{"sweep", "day"},
		Seeds:     []int64{1, 2},
		Scales:    []float64{0.5},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(specs))
	}
	order := []struct {
		name string
		seed int64
	}{{"sweep", 1}, {"sweep", 2}, {"day", 1}, {"day", 2}}
	for i, w := range order {
		if specs[i].Name != w.name || specs[i].Seed != w.seed {
			t.Errorf("spec %d = %s/%d, want %s/%d", i, specs[i].Name, specs[i].Seed, w.name, w.seed)
		}
	}
}
