package experiment

import (
	"math/rand"
	"reflect"
	"testing"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
)

// synthTx is one synthetic transmission for the dedup fuzzers.
type synthTx struct {
	rec      capture.Record // canonical record (SnifferID/Signal unset)
	end      phy.Micros
	captured []int // ascending sniffer indices that captured it
}

// genObservations builds a randomized transmission sequence on the
// 1/6/11 channels — overlapping airtimes, occasional identical start
// times — and assigns every transmission a random nonempty subset of k
// sniffers that captured it. Returned in delivery (end-time) order.
func genObservations(rng *rand.Rand, n, k int) []synthTx {
	rates := []phy.Rate{phy.Rate1Mbps, phy.Rate2Mbps, phy.Rate5_5Mbps, phy.Rate11Mbps, phy.Rate54Mbps}
	var t phy.Micros
	txs := make([]synthTx, n)
	for i := range txs {
		t += phy.Micros(rng.Intn(400)) // 0 gaps → equal start times
		wire := 60 + rng.Intn(1400)
		r := rates[rng.Intn(len(rates))]
		frame := make([]byte, 24+rng.Intn(64))
		rng.Read(frame)
		// Embed the index so distinct transmissions never alias.
		frame[0], frame[1] = byte(i), byte(i>>8)
		var caps []int
		for s := 0; s < k; s++ {
			if rng.Intn(3) > 0 { // each sniffer catches ~2/3 of frames
				caps = append(caps, s)
			}
		}
		if len(caps) == 0 {
			caps = []int{rng.Intn(k)}
		}
		txs[i] = synthTx{
			rec: capture.Record{
				Time:     t,
				Rate:     r,
				Channel:  phy.OrthogonalChannels[rng.Intn(3)],
				NoiseDBm: -96,
				OrigLen:  wire,
				Frame:    frame,
			},
			end:      t + phy.Airtime(wire, r),
			captured: caps,
		}
	}
	// Deliver in end order (stable for equal ends).
	for i := 1; i < len(txs); i++ {
		for j := i; j > 0 && txs[j].end < txs[j-1].end; j-- {
			txs[j], txs[j-1] = txs[j-1], txs[j]
		}
	}
	return txs
}

// snifferCopy is tx's record as sniffer s captured it: same air facts,
// jittered per-sniffer reception metadata.
func snifferCopy(tx synthTx, s int) capture.Record {
	rec := tx.rec
	rec.SnifferID = s + 1
	rec.SignalDBm = int8(-40 - s - int(tx.rec.Time%7)) // jitter: differs per sniffer
	return rec
}

// TestDedupFuzzMatchesReference streams k jittered sniffer copies of
// randomized transmission sequences through the dedup window and
// checks the output is exactly the single-copy reference: one record
// per transmission, the lowest-ID capturing sniffer's copy, in
// delivery order.
func TestDedupFuzzMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		txs := genObservations(rng, 400, k)

		var got []capture.Record
		dd := NewDedup(func(rec capture.Record) {
			cp := rec
			cp.Frame = append([]byte(nil), rec.Frame...)
			got = append(got, cp)
		})
		copies := 0
		for _, tx := range txs {
			for _, s := range tx.captured {
				copies++
				dd.Add(snifferCopy(tx, s))
			}
		}

		if len(got) != len(txs) {
			t.Fatalf("seed %d: %d records out, want %d (one per transmission)", seed, len(got), len(txs))
		}
		if want := int64(copies - len(txs)); dd.Dropped != want {
			t.Fatalf("seed %d: Dropped = %d, want %d", seed, dd.Dropped, want)
		}
		for i, tx := range txs {
			want := snifferCopy(tx, tx.captured[0])
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("seed %d: record %d = %+v, want first capturer's copy %+v", seed, i, got[i], want)
			}
		}
		if dd.MaxPending() > 256 {
			t.Fatalf("seed %d: dedup table high-water mark %d; want bounded", seed, dd.MaxPending())
		}
	}
}

// TestDedupReorderMatchesMerge is the streaming bridge's multi-sniffer
// acceptance property: for randomized jittered k-sniffer streams, the
// dedup window followed by the reordering stage must reproduce
// capture.Merge of the materialized per-sniffer traces bit for bit —
// duplicates collapsed to the same copy, order identical including
// equal-time tie-breaks.
func TestDedupReorderMatchesMerge(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		txs := genObservations(rng, 500, k)

		// Materialized path: per-sniffer traces in capture order.
		traces := make([][]capture.Record, k)
		for _, tx := range txs {
			for _, s := range tx.captured {
				traces[s] = append(traces[s], snifferCopy(tx, s))
			}
		}
		want := capture.Merge(traces...)

		// Streaming path: interleaved arrival, dedup, reorder.
		var got []capture.Record
		ro := NewReorder(func(rec capture.Record) {
			cp := rec
			cp.Frame = append([]byte(nil), rec.Frame...)
			got = append(got, cp)
		})
		dd := NewDedup(ro.Add)
		for _, tx := range txs {
			for _, s := range tx.captured {
				dd.Add(snifferCopy(tx, s))
			}
		}
		ro.Flush()

		if !reflect.DeepEqual(got, want) {
			if len(got) != len(want) {
				t.Fatalf("seed %d: streamed %d records, merged %d", seed, len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("seed %d: record %d differs:\n streamed %+v\n merged   %+v", seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDedupPassThroughSingleSniffer pins the transparency property the
// pre-dedup scenarios rely on: a single-sniffer stream passes through
// untouched.
func TestDedupPassThroughSingleSniffer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	txs := genObservations(rng, 300, 1)
	var got []capture.Record
	dd := NewDedup(func(rec capture.Record) { got = append(got, rec) })
	for _, tx := range txs {
		dd.Add(snifferCopy(tx, 0))
	}
	if len(got) != len(txs) || dd.Dropped != 0 {
		t.Fatalf("single-sniffer stream altered: %d in, %d out, %d dropped", len(txs), len(got), dd.Dropped)
	}
}
