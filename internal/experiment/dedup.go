package experiment

import (
	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
)

// The materialized path lets several sniffers share a channel:
// capture.Merge collapses duplicate observations of one transmission
// (equal start time, channel, rate, and frame bytes) and keeps the
// first copy in its stable sort order — the lowest-registered
// sniffer's. Before this stage existed the streaming path simply
// required ≤1 sniffer per channel. Dedup lifts that restriction: it
// sits ahead of Reorder and collapses the same duplicates on the fly.
//
// Records arrive in observation (transmission-end) order, and all
// copies of one transmission share its start time, so an entry can be
// forgotten once the stream's end-time watermark has passed its start
// by more than the maximum airtime: every future arrival starts at or
// after watermark-maxAirtime. That is the dedup window — the same
// horizon Reorder uses — and it bounds the table at the number of
// frames that can end within one maxAirtime, independent of trace
// length, preserving the engine's flat-memory guarantee.
//
// Boundary contract (pinned by TestDedupHorizonBoundary): an entry
// whose start time is exactly watermark-maxAirtime is evicted, which
// is safe because a well-formed (end-ordered, horizon-bounded) stream
// cannot deliver a duplicate that late unless the frame's airtime is
// exactly maxAirtime. A duplicate that nevertheless arrives after its
// entry was evicted — a source violating the ordering contract, or a
// pathological maximum-airtime frame — is forwarded, not dropped:
// late duplicates are counted (double-counted downstream) rather than
// risking the loss of a genuinely new observation. This mirrors the
// materialized path's behavior only within the horizon; beyond it the
// streaming path deliberately degrades to over-counting, never to
// dropping.

// dedupEntry is one remembered observation, keyed exactly as
// capture.Merge's sameAir compares records: start time, channel,
// rate, and (captured) frame bytes — OrigLen deliberately excluded so
// the streaming and materialized criteria cannot diverge. buf holds a
// private copy of the frame bytes (the incoming record's alias dies
// with the Add call) and returns to a pool on eviction.
type dedupEntry struct {
	time    phy.Micros
	channel phy.Channel
	rate    phy.Rate
	hash    uint64
	buf     []byte
}

// Dedup is the streaming same-air deduplication stage. Records pass
// through in arrival order; duplicates (as capture.Merge's sameAir
// defines them) are dropped, keeping the first arrival — taps fire in
// sniffer registration order, so that is the same copy Merge keeps.
// Not safe for concurrent use; each run gets its own Dedup.
type Dedup struct {
	sink      Sink
	window    []dedupEntry
	head      int // live entries are window[head:]
	free      [][]byte
	watermark phy.Micros
	// maxPending is the table's high-water mark, exposed for the
	// bounded-memory test.
	maxPending int
	// Dropped counts collapsed duplicates.
	Dropped int64
}

// NewDedup creates a dedup stage feeding sink. Records are forwarded
// synchronously during Add, still aliasing the caller's buffers.
func NewDedup(sink Sink) *Dedup { return &Dedup{sink: sink} }

// fnv1a hashes frame bytes for the cheap first-pass comparison.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Add accepts the next record of an observation-ordered stream,
// forwarding it unless it duplicates a remembered observation.
func (d *Dedup) Add(rec capture.Record) {
	hash := fnv1a(rec.Frame)
	for i := d.head; i < len(d.window); i++ {
		e := &d.window[i]
		if e.time != rec.Time || e.channel != rec.Channel || e.rate != rec.Rate ||
			e.hash != hash || len(e.buf) != len(rec.Frame) {
			continue
		}
		same := true
		for j := range e.buf {
			if e.buf[j] != rec.Frame[j] {
				same = false
				break
			}
		}
		if same {
			d.Dropped++
			return
		}
	}

	// Remember this observation: copy the frame into a pooled buffer.
	var buf []byte
	if n := len(d.free); n > 0 {
		buf = d.free[n-1][:0]
		d.free = d.free[:n-1]
	}
	buf = append(buf, rec.Frame...)
	d.window = append(d.window, dedupEntry{
		time: rec.Time, channel: rec.Channel, rate: rec.Rate,
		hash: hash, buf: buf,
	})
	if live := len(d.window) - d.head; live > d.maxPending {
		d.maxPending = live
	}

	if end := rec.Time + phy.Airtime(rec.OrigLen, rec.Rate); end > d.watermark {
		d.watermark = end
	}
	// Evict entries no future arrival can duplicate. Entries are in
	// arrival (end-time) order, so once the head survives, later
	// entries may too — but their ends are no earlier, so the prefix
	// scan still evicts everything evictable within one maxAirtime.
	for d.head < len(d.window) && d.window[d.head].time <= d.watermark-maxAirtime {
		d.free = append(d.free, d.window[d.head].buf)
		d.window[d.head] = dedupEntry{}
		d.head++
	}
	if d.head > 0 && d.head*2 >= len(d.window) && d.head >= 32 {
		k := copy(d.window, d.window[d.head:])
		clear(d.window[k:])
		d.window = d.window[:k]
		d.head = 0
	}

	d.sink(rec)
}

// MaxPending reports the deepest the dedup table ever got.
func (d *Dedup) MaxPending() int { return d.maxPending }
