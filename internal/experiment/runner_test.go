package experiment

import (
	"context"
	"reflect"
	"testing"
)

// TestRunnerCollectMatchesRun pins the compat contract: the legacy
// Engine.Run signature and Runner.Execute(ModeCollect) produce
// bit-identical summaries and aggregates for the same matrix.
func TestRunnerCollectMatchesRun(t *testing.T) {
	m := Matrix{Scenarios: []string{"day"}, Seeds: []int64{1, 2}, Scales: []float64{0.1}}
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	legacy := (&Engine{Workers: 2}).Run(specs)

	ex, err := (&Runner{}).Execute(context.Background(), RunSpecOpts{Mode: ModeCollect, Matrix: m, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Results) != len(legacy) {
		t.Fatalf("Execute returned %d results, Run %d", len(ex.Results), len(legacy))
	}
	for i := range legacy {
		if legacy[i].Summary != ex.Results[i].Summary {
			t.Fatalf("run %d: summary %+v != %+v", i, ex.Results[i].Summary, legacy[i].Summary)
		}
	}
	if !reflect.DeepEqual(ex.Aggregates, Aggregate(legacy)) {
		t.Fatal("Execute aggregates differ from Aggregate(Run(specs))")
	}
}

// TestRunnerReduceMatchesRunReduce: the reduce path through Execute
// folds to the same aggregates as the legacy signature and as the
// collect path.
func TestRunnerReduceMatchesRunReduce(t *testing.T) {
	m := Matrix{Scenarios: []string{"day"}, Seeds: []int64{1, 2}, Scales: []float64{0.1}}
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	legacyAggs, legacyErrs := (&Engine{Workers: 2}).RunReduce(specs)
	for i, err := range legacyErrs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	ex, err := (&Runner{}).Execute(context.Background(), RunSpecOpts{Mode: ModeReduce, Matrix: m, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ex.Aggregates, legacyAggs) {
		t.Fatal("Execute(ModeReduce) aggregates differ from RunReduce(specs)")
	}

	col, err := (&Runner{}).Execute(context.Background(), RunSpecOpts{Mode: ModeCollect, Matrix: m, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ex.Aggregates, col.Aggregates) {
		t.Fatal("reduce and collect aggregates diverge")
	}
}

// TestRunnerRange: a range-restricted Execute runs exactly the
// sub-slice of the expanded matrix, with the same per-run summaries.
func TestRunnerRange(t *testing.T) {
	m := Matrix{Scenarios: []string{"day"}, Seeds: []int64{1, 2, 3}, Scales: []float64{0.1}}
	full, err := (&Runner{}).Execute(context.Background(), RunSpecOpts{Mode: ModeCollect, Matrix: m, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	part, err := (&Runner{}).Execute(context.Background(), RunSpecOpts{
		Mode: ModeCollect, Matrix: m, Workers: 2, Range: &SpecRange{From: 1, To: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Results) != 2 {
		t.Fatalf("range [1,3) ran %d specs, want 2", len(part.Results))
	}
	for i, r := range part.Results {
		if r.Summary != full.Results[i+1].Summary {
			t.Fatalf("range result %d != full result %d", i, i+1)
		}
	}

	for _, bad := range []SpecRange{{From: -1, To: 1}, {From: 0, To: 4}, {From: 2, To: 2}} {
		if _, err := (&Runner{}).Execute(context.Background(), RunSpecOpts{Matrix: m, Range: &bad}); err == nil {
			t.Errorf("range %+v accepted for 3 specs", bad)
		}
	}
}

// TestRunnerRejections pins Execute's input validation.
func TestRunnerRejections(t *testing.T) {
	m := Matrix{Scenarios: []string{"day"}, Seeds: []int64{1}, Scales: []float64{0.1}}
	ctx := context.Background()
	if _, err := (&Runner{}).Execute(ctx, RunSpecOpts{Mode: "bogus", Matrix: m}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := (&Runner{}).Execute(ctx, RunSpecOpts{Mode: ModeCampaign, Matrix: m}); err == nil {
		t.Error("ModeCampaign without CampaignDir accepted")
	}
	specs, _ := m.Expand()
	if _, err := (&Runner{}).Execute(ctx, RunSpecOpts{Mode: ModeCampaign, CampaignDir: t.TempDir(), Specs: specs}); err == nil {
		t.Error("ModeCampaign with pre-built Specs accepted")
	}
}
