package experiment

import (
	"context"
	"errors"
	"testing"
)

// fakeScenario is a registry-free Scenario whose run emits nothing and
// invokes a hook — enough to exercise the engine's dispatch logic
// without simulator cost.
type fakeScenario struct {
	name     string
	onStream func()
}

func (f fakeScenario) Name() string        { return f.name }
func (f fakeScenario) Params() []Param     { return nil }
func (f fakeScenario) Build() (Run, error) { return fakeRun{f.onStream}, nil }

type fakeRun struct{ onStream func() }

func (f fakeRun) Stream(sink Sink) error {
	if f.onStream != nil {
		f.onStream()
	}
	return nil
}

func fakeSpecs(n int, onFirstStream func()) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		hook := func() {}
		if i == 0 {
			hook = onFirstStream
		}
		specs[i] = Spec{Name: "fake", Seed: int64(i + 1), Scale: 1, Scenario: fakeScenario{"fake", hook}}
	}
	return specs
}

// TestRunContextCancel cancels the context from inside the first run:
// the first run completes, every undispatched spec comes back with
// ctx.Err(), and the canceled specs form a suffix (cancellation stops
// dispatch, it never abandons in-flight work).
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	specs := fakeSpecs(6, cancel)
	eng := &Engine{Workers: 1}
	results := eng.RunContext(ctx, specs)

	if results[0].Err != nil {
		t.Fatalf("first (in-flight) run failed: %v", results[0].Err)
	}
	canceled := 0
	for i, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			canceled++
		} else if canceled > 0 {
			t.Fatalf("spec %d completed after a canceled spec: cancellation must be a suffix", i)
		}
	}
	// The dispatcher may hand out at most one more spec after the
	// cancel races the worker becoming free; everything beyond that
	// must be canceled.
	if canceled < len(specs)-2 {
		t.Fatalf("only %d specs canceled of %d; cancellation did not stop dispatch", canceled, len(specs))
	}
}

// TestRunReduceContextCancel mirrors TestRunContextCancel on the
// reduce-as-you-go path: canceled specs land in the error slice and
// count in Aggregated.Errors, completed runs still fold.
func TestRunReduceContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	specs := fakeSpecs(6, cancel)
	eng := &Engine{Workers: 1}
	aggs, errs := eng.RunReduceContext(ctx, specs)

	if len(aggs) != 1 {
		t.Fatalf("%d aggregate groups, want 1", len(aggs))
	}
	canceled := 0
	for i, err := range errs {
		if errors.Is(err, context.Canceled) {
			canceled++
		} else if err != nil {
			t.Fatalf("spec %d: unexpected error %v", i, err)
		} else if canceled > 0 {
			t.Fatalf("spec %d completed after a canceled spec", i)
		}
	}
	if canceled < len(specs)-2 {
		t.Fatalf("only %d specs canceled of %d", canceled, len(specs))
	}
	if aggs[0].Errors != canceled {
		t.Fatalf("Aggregated.Errors = %d, canceled specs = %d", aggs[0].Errors, canceled)
	}
	if aggs[0].Runs != len(specs)-canceled {
		t.Fatalf("Aggregated.Runs = %d, want %d", aggs[0].Runs, len(specs)-canceled)
	}
}

// TestRunContextUncanceled pins that the context path is transparent
// when the context never fires.
func TestRunContextUncanceled(t *testing.T) {
	specs := fakeSpecs(4, func() {})
	eng := &Engine{Workers: 2}
	for _, r := range eng.RunContext(context.Background(), specs) {
		if r.Err != nil {
			t.Fatalf("run failed: %v", r.Err)
		}
	}
	aggs, errs := eng.RunReduceContext(context.Background(), specs)
	for _, err := range errs {
		if err != nil {
			t.Fatalf("reduce run failed: %v", err)
		}
	}
	if aggs[0].Runs != 4 || aggs[0].Errors != 0 {
		t.Fatalf("aggregate runs=%d errors=%d, want 4/0", aggs[0].Runs, aggs[0].Errors)
	}
}
