package experiment

import (
	"testing"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
)

// boundaryRec builds a minimal record with distinct frame bytes.
func boundaryRec(t phy.Micros, wire int, r phy.Rate, tag byte) capture.Record {
	frame := make([]byte, 24)
	frame[0] = tag
	return capture.Record{
		Time: t, Rate: r, Channel: phy.Channel1,
		SnifferID: 1, OrigLen: wire, Frame: frame,
	}
}

// copyRec deep-copies a record whose Frame aliases a pooled buffer.
func copyRec(rec capture.Record) capture.Record {
	rec.Frame = append([]byte(nil), rec.Frame...)
	return rec
}

// endingAt builds a record whose transmission ends exactly at end.
func endingAt(end phy.Micros, wire int, r phy.Rate, tag byte) capture.Record {
	return boundaryRec(end-phy.Airtime(wire, r), wire, r, tag)
}

// TestDedupHorizonBoundary pins the dedup window's edge behavior: an
// entry whose start time is exactly watermark-horizon is evicted (the
// eviction comparison is <=), one microsecond inside the horizon it
// is retained. A duplicate arriving after its entry was evicted is
// forwarded — the documented late-loss mode: late duplicates are
// counted, never dropped as if they were known.
func TestDedupHorizonBoundary(t *testing.T) {
	horizon := ReorderHorizon()

	t.Run("evicted-at-edge-then-late-duplicate-counted", func(t *testing.T) {
		var got []capture.Record
		dd := NewDedup(func(rec capture.Record) { got = append(got, rec) })

		a := boundaryRec(0, 60, phy.Rate11Mbps, 'a')
		dd.Add(a)
		// Push the watermark to exactly horizon: a's entry (start 0)
		// sits exactly at watermark-horizon and is evicted.
		dd.Add(endingAt(horizon, 200, phy.Rate11Mbps, 'b'))
		// The late duplicate of a is forwarded, not dropped.
		dup := a
		dup.SnifferID = 2
		dd.Add(dup)

		if len(got) != 3 || dd.Dropped != 0 {
			t.Fatalf("late duplicate after eviction: %d records out, %d dropped; want 3 forwarded, 0 dropped", len(got), dd.Dropped)
		}
	})

	t.Run("retained-inside-edge-duplicate-dropped", func(t *testing.T) {
		var got []capture.Record
		dd := NewDedup(func(rec capture.Record) { got = append(got, rec) })

		a := boundaryRec(0, 60, phy.Rate11Mbps, 'a')
		dd.Add(a)
		// Watermark one microsecond short of the horizon: a's entry
		// survives, so its duplicate still collapses.
		dd.Add(endingAt(horizon-1, 200, phy.Rate11Mbps, 'b'))
		dup := a
		dup.SnifferID = 2
		dd.Add(dup)

		if len(got) != 2 || dd.Dropped != 1 {
			t.Fatalf("duplicate inside horizon: %d records out, %d dropped; want 2 forwarded, 1 dropped", len(got), dd.Dropped)
		}
	})
}

// TestReorderHorizonBoundary pins the reorder release rule at the
// horizon edge: a buffered record releases the moment the watermark
// passes its start time by exactly the horizon (<=), and not one
// microsecond earlier. Releasing at equality is safe because only a
// frame with airtime exactly equal to the horizon — the largest frame
// the stage accepts, at the lowest rate — could still arrive with
// that start time.
func TestReorderHorizonBoundary(t *testing.T) {
	horizon := ReorderHorizon()

	t.Run("released-at-edge", func(t *testing.T) {
		var got []capture.Record
		ro := NewReorder(func(rec capture.Record) { got = append(got, copyRec(rec)) })
		ro.Add(boundaryRec(0, 60, phy.Rate11Mbps, 'a'))
		ro.Add(endingAt(horizon, 200, phy.Rate11Mbps, 'b'))
		if len(got) != 1 || got[0].Frame[0] != 'a' {
			t.Fatalf("record at watermark-horizon: released %d records, want just 'a'", len(got))
		}
	})

	t.Run("held-inside-edge", func(t *testing.T) {
		var got []capture.Record
		ro := NewReorder(func(rec capture.Record) { got = append(got, copyRec(rec)) })
		ro.Add(boundaryRec(0, 60, phy.Rate11Mbps, 'a'))
		ro.Add(endingAt(horizon-1, 200, phy.Rate11Mbps, 'b'))
		if len(got) != 0 {
			t.Fatalf("record one µs inside the horizon: released %d records, want 0 before Flush", len(got))
		}
		ro.Flush()
		if len(got) != 2 {
			t.Fatalf("after Flush: %d records, want 2", len(got))
		}
	})

	t.Run("max-wire-accepted-oversize-rejected", func(t *testing.T) {
		ro := NewReorder(func(capture.Record) {})
		// The largest legal frame occupies the air for exactly the
		// horizon and must be accepted.
		ro.Add(boundaryRec(0, MaxReorderWire, phy.Rate1Mbps, 'a'))
		defer func() {
			if recover() == nil {
				t.Fatal("oversize frame did not panic; the horizon bound would be silently violated")
			}
		}()
		ro.Add(boundaryRec(0, MaxReorderWire+1, phy.Rate1Mbps, 'b'))
	})
}

// TestReorderEqualStartTieAtHorizon documents the one pathological
// case release-at-equality admits: after a record with start time s
// is released at watermark-horizon == s, only a horizon-airtime frame
// (MaxReorderWire bytes at 1 Mbps) can still arrive with start s; its
// tie-break (sniffer ID) is then not applied across the release.
// Real traffic never emits such frames, so the released order equals
// capture.Merge's for every simulator stream.
func TestReorderEqualStartTieAtHorizon(t *testing.T) {
	horizon := ReorderHorizon()
	var got []capture.Record
	ro := NewReorder(func(rec capture.Record) { got = append(got, copyRec(rec)) })

	a := boundaryRec(0, 60, phy.Rate11Mbps, 'a')
	a.SnifferID = 5
	ro.Add(a)
	ro.Add(endingAt(horizon, 200, phy.Rate11Mbps, 'b')) // releases a

	// The pathological same-start arrival: a maximum-airtime frame
	// starting at 0 whose end is exactly the current watermark.
	c := boundaryRec(0, MaxReorderWire, phy.Rate1Mbps, 'c')
	c.SnifferID = 1
	ro.Add(c)
	ro.Flush()

	if len(got) != 3 {
		t.Fatalf("%d records released, want 3", len(got))
	}
	// a released before c despite c's lower sniffer ID: the
	// documented horizon-edge concession.
	if got[0].Frame[0] != 'a' || got[1].Frame[0] != 'c' {
		t.Fatalf("release order %c,%c — the documented edge order is a then c", got[0].Frame[0], got[1].Frame[0])
	}
}
