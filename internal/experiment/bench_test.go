package experiment

import (
	"testing"
)

// BenchmarkGridMatrix runs the short grid matrix CI archives into
// BENCH_4.json: both grid variants over two seeds, streamed through
// the dedup window on the engine's worker pool. The reported metrics
// are the aggregate counts the grid scenarios exist to produce —
// comparable across PRs like the Table 1 counts in BENCH_3.
func BenchmarkGridMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		specs, err := (Matrix{
			Scenarios: []string{"grid", "grid9"},
			Seeds:     []int64{1, 2},
			Scales:    []float64{0.5},
		}).Expand()
		if err != nil {
			b.Fatal(err)
		}
		results := (&Engine{}).Run(specs)
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		aggs := Aggregate(results)
		for _, a := range aggs {
			prefix := a.Scenario + "_"
			b.ReportMetric(a.Field("frames").Mean, prefix+"frames")
			b.ReportMetric(a.Field("modal_util_pct").Mean, prefix+"modal_util_pct")
			b.ReportMetric(a.Field("throughput_mbps").Mean, prefix+"throughput_mbps")
			b.ReportMetric(a.Field("unrecorded_pct").Mean, prefix+"unrecorded_pct")
		}
	}
}

// BenchmarkGridReduce measures the reduce-as-you-go mode on the same
// matrix (the path very large matrices take).
func BenchmarkGridReduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		specs, err := (Matrix{
			Scenarios: []string{"grid"},
			Seeds:     []int64{1, 2, 3},
			Scales:    []float64{0.5},
		}).Expand()
		if err != nil {
			b.Fatal(err)
		}
		eng := &Engine{}
		aggs, errs := eng.RunReduce(specs)
		for _, e := range errs {
			if e != nil {
				b.Fatal(e)
			}
		}
		b.ReportMetric(aggs[0].Field("frames").Mean, "frames")
		b.ReportMetric(float64(eng.PeakPending()), "peak_pending")
	}
}
