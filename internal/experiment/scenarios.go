package experiment

import (
	"fmt"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
	"wlan80211/internal/workload"
)

// This file adapts the workload package's experiment shapes — Session
// (day/plenary), Sweep (single-cell load ramp), sweep ladders, and
// multi-cell Grids — to the Scenario interface, and registers the
// built-in variants.
//
// The paper-reproduction scenarios place at most one sniffer per
// channel; the grid scenarios place several, producing cross-sniffer
// duplicate observations. The engine's streaming dedup window
// collapses those exactly as the materialized path's capture.Merge
// does, so both kinds stream bit-identically to their materialized
// reference.

func init() {
	Register("day", func(seed int64, scale float64) Scenario {
		s := workload.DaySession()
		if seed != 0 {
			s.Seed = seed
		}
		return NewSession(s.Scale(scale))
	})
	Register("plenary", func(seed int64, scale float64) Scenario {
		s := workload.PlenarySession()
		if seed != 0 {
			s.Seed = seed
		}
		return NewSession(s.Scale(scale))
	})
	Register("sweep", func(seed int64, scale float64) Scenario {
		s := workload.DefaultSweep()
		if seed != 0 {
			s.Seed = seed
		}
		return NewSweep(s.Scale(scale))
	})
	Register("ladder", func(seed int64, scale float64) Scenario {
		ladder := workload.DefaultLadder(scale)
		if seed != 0 {
			for i := range ladder {
				ladder[i].Seed += seed
			}
		}
		return NewLadder("ladder", ladder)
	})
	Register("grid", func(seed int64, scale float64) Scenario {
		g := workload.DefaultGrid()
		if seed != 0 {
			g.Seed = seed
		}
		return NewGrid("grid", g.Scale(scale))
	})
	Register("grid9", func(seed int64, scale float64) Scenario {
		g := workload.DenseGrid()
		if seed != 0 {
			g.Seed = seed
		}
		return NewGrid("grid9", g.Scale(scale))
	})
	Register("grid256", func(seed int64, scale float64) Scenario {
		g := workload.Grid256()
		if seed != 0 {
			g.Seed = seed
		}
		return NewGrid("grid256", g.Scale(scale))
	})
}

// NewSession wraps a workload session (day/plenary shape) as a
// Scenario.
func NewSession(s workload.Session) Scenario { return sessionScenario{s} }

type sessionScenario struct{ s workload.Session }

func (c sessionScenario) Name() string { return c.s.Name }

func (c sessionScenario) Params() []Param {
	return []Param{
		{"duration_s", fmt.Sprint(c.s.DurationSec)},
		{"peak_users", fmt.Sprint(c.s.PeakUsers)},
		{"aps_per_channel", fmt.Sprint(c.s.APsPerChannel)},
		{"sniffers", fmt.Sprint(len(c.s.Sniffers))},
		{"load_scale", fmt.Sprint(c.s.LoadScale)},
		{"seed", fmt.Sprint(c.s.Seed)},
	}
}

func (c sessionScenario) Build() (Run, error) {
	b, err := c.s.Build()
	if err != nil {
		return nil, err
	}
	return sessionRun{b}, nil
}

type sessionRun struct{ b *workload.Built }

func (r sessionRun) Stream(sink Sink) error {
	r.b.RunStream(sink)
	return nil
}

// NewSweep wraps a single utilization sweep as a Scenario.
func NewSweep(s workload.Sweep) Scenario { return sweepScenario{s} }

type sweepScenario struct{ s workload.Sweep }

func (c sweepScenario) Name() string { return "sweep" }

func (c sweepScenario) Params() []Param {
	return []Param{
		{"stations", fmt.Sprint(c.s.Stations)},
		{"step_s", fmt.Sprint(c.s.StepSec)},
		{"tail_s", fmt.Sprint(c.s.TailSec)},
		{"load", fmt.Sprint(c.s.Load)},
		{"seed", fmt.Sprint(c.s.Seed)},
	}
}

func (c sweepScenario) Build() (Run, error) {
	return &sweepRun{s: c.s}, nil
}

// sweepRun is a pointer type so StreamSlices can expose the live
// network and sniffer to CaptureState mid-run (see checkpoint.go).
type sweepRun struct {
	s   workload.Sweep
	net *sim.Network
	sn  *sniffer.Sniffer
}

func (r *sweepRun) Stream(sink Sink) error {
	r.sn, r.net = r.s.RunStream(sink)
	return nil
}

// NewLadder wraps a ladder of sweeps run back to back in disjoint
// time epochs (the MultiSweep shape behind Figures 6–15) as a single
// Scenario whose stream covers the paper's full utilization range.
func NewLadder(name string, ladder []workload.Sweep) Scenario {
	return ladderScenario{name, ladder}
}

type ladderScenario struct {
	name   string
	ladder []workload.Sweep
}

func (c ladderScenario) Name() string { return c.name }

func (c ladderScenario) Params() []Param {
	total := 0
	for _, sw := range c.ladder {
		total += sw.DurationSec()
	}
	return []Param{
		{"rungs", fmt.Sprint(len(c.ladder))},
		{"total_duration_s", fmt.Sprint(total)},
	}
}

func (c ladderScenario) Build() (Run, error) {
	if len(c.ladder) == 0 {
		return nil, fmt.Errorf("experiment: ladder %q has no sweeps", c.name)
	}
	return &ladderRun{ladder: c.ladder}, nil
}

// ladderRun is a pointer type so StreamSlices can expose the current
// rung's live network and sniffer to CaptureState (see checkpoint.go).
type ladderRun struct {
	ladder []workload.Sweep
	net    *sim.Network
	sn     *sniffer.Sniffer
}

// Stream runs the rungs sequentially, shifting each rung's timestamps
// into its own epoch (exactly workload.MultiSweep's offsets) so the
// combined stream is one gap-free record sequence.
func (r *ladderRun) Stream(sink Sink) error {
	var offset phy.Micros
	for _, sw := range r.ladder {
		shift := offset
		sw.RunStream(func(rec capture.Record) {
			rec.Time += shift
			sink(rec)
		})
		offset += phy.Micros(sw.DurationSec()+1) * phy.MicrosPerSecond
	}
	return nil
}

// NewGrid wraps a multi-cell grid (interference, mobility, mixed b/g,
// multi-sniffer channels) as a Scenario under the given registry name.
func NewGrid(name string, g workload.Grid) Scenario { return gridScenario{name, g} }

type gridScenario struct {
	name string
	g    workload.Grid
}

func (c gridScenario) Name() string { return c.name }

func (c gridScenario) Params() []Param {
	return []Param{
		{"cells", fmt.Sprintf("%dx%d", c.g.Rows, c.g.Cols)},
		{"duration_s", fmt.Sprint(c.g.DurationSec)},
		{"stations_per_cell", fmt.Sprint(c.g.StationsPerCell)},
		{"mobile_stations", fmt.Sprint(c.g.MobileStations)},
		{"g_fraction", fmt.Sprint(c.g.GFraction)},
		{"sniffers_per_channel", fmt.Sprint(c.g.SniffersPerChannel)},
		{"load", fmt.Sprint(c.g.Load)},
		{"seed", fmt.Sprint(c.g.Seed)},
	}
}

func (c gridScenario) Build() (Run, error) {
	b, err := c.g.Build()
	if err != nil {
		return nil, err
	}
	return gridRun{b}, nil
}

type gridRun struct{ b *workload.GridBuilt }

func (r gridRun) Stream(sink Sink) error {
	r.b.RunStream(sink)
	return nil
}

// MultiSniffer implements MultiSnifferRun: grid channels carry ≥2
// sniffers, so the engine must dedup the stream.
func (r gridRun) MultiSniffer() bool { return r.b.MultiSniffer() }
