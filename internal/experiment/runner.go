package experiment

import (
	"context"
	"fmt"

	"wlan80211/internal/experiment/faultinject"
	"wlan80211/internal/phy"
)

// This file is the unified entry point for running experiments. The
// engine grew four parallel entry points over time — Engine.Run,
// Engine.RunReduce, RunCampaign, ResumeCampaign — each with its own
// parameter list, which made "what to run" impossible to describe in
// one serializable value (the thing a remote-worker protocol needs).
// Runner.Execute(RunSpecOpts) replaces them: one options struct that
// JSON-round-trips (minus in-process escape hatches), one result
// shape, with the old signatures kept as thin deprecated compat
// wrappers over it.

// RunMode selects Runner.Execute's execution strategy.
type RunMode string

const (
	// ModeCollect runs every spec and retains per-run results
	// (Engine.Run's behavior).
	ModeCollect RunMode = "collect"
	// ModeReduce folds summaries as runs complete, retaining only
	// aggregates — O(groups+workers) memory (Engine.RunReduce).
	ModeReduce RunMode = "reduce"
	// ModeCampaign runs as a crash-resumable journaled campaign in
	// CampaignDir (RunCampaign/ResumeCampaign).
	ModeCampaign RunMode = "campaign"
)

// SpecRange restricts execution to the expanded matrix's spec indices
// [From, To). Spec indices are global — defined by Matrix.Expand order
// — so a range names the same runs on every machine, which is what
// lets a coordinator lease disjoint ranges to workers and fold their
// journals back in global spec order.
type SpecRange struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Contains reports whether spec index i falls in the range.
func (r *SpecRange) Contains(i int) bool {
	return r == nil || (i >= r.From && i < r.To)
}

// validate checks the range against an expanded spec count.
func (r *SpecRange) validate(n int) error {
	if r == nil {
		return nil
	}
	if r.From < 0 || r.To > n || r.From >= r.To {
		return fmt.Errorf("experiment: spec range [%d,%d) invalid for %d specs", r.From, r.To, n)
	}
	return nil
}

// RunSpecOpts is the single serializable description of "what to
// run": the matrix, the execution mode, and the mode's knobs. The
// dispatch coordinator hands one of these (matrix + campaign knobs +
// a spec range) to each worker; in-process callers use the same
// struct, optionally with the non-serializable escape hatches.
type RunSpecOpts struct {
	// Matrix is the seeds × scales × scenarios grid to expand.
	Matrix Matrix `json:"matrix"`
	// Mode selects the strategy; empty means ModeCollect.
	Mode RunMode `json:"mode,omitempty"`
	// Workers bounds concurrent runs; <=0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Metrics selects analysis stages by name (empty = all).
	Metrics []string `json:"metrics,omitempty"`
	// Range restricts execution to spec indices [From, To) of the
	// expanded matrix; nil means every spec.
	Range *SpecRange `json:"range,omitempty"`

	// CampaignDir is the journaled campaign directory (ModeCampaign).
	CampaignDir string `json:"campaign_dir,omitempty"`
	// CheckpointMicros is the mid-run snapshot interval in sim
	// microseconds (ModeCampaign); 0 disables mid-run snapshots.
	CheckpointMicros int64 `json:"checkpoint_micros,omitempty"`
	// Resume continues the campaign already in CampaignDir: the
	// on-disk manifest is authoritative and Matrix, Metrics,
	// CheckpointMicros, and Range are taken from it.
	Resume bool `json:"resume,omitempty"`

	// Specs overrides Matrix expansion with pre-built specs — an
	// in-process escape hatch for callers that already expanded (the
	// legacy Engine.Run/RunReduce signatures). Not serializable, not
	// valid with ModeCampaign.
	Specs []Spec `json:"-"`
	// Injector arms a deterministic crash point (ModeCampaign tests).
	Injector *faultinject.Injector `json:"-"`
}

// Execution is what Runner.Execute produced. Fields are filled per
// mode; Aggregates is always set on success (and on interruption, for
// the runs that did complete).
type Execution struct {
	// Specs are the executed specs: the expanded matrix restricted to
	// Range (ModeCollect/ModeReduce), or the full expansion
	// (ModeCampaign, where Range restricts running, not folding).
	Specs []Spec
	// Results holds per-run results in spec order (ModeCollect only).
	Results []RunResult
	// Errs holds per-spec errors in spec order (ModeReduce only; nil
	// entries for successes).
	Errs []error
	// Aggregates are the scenario+scale group reductions.
	Aggregates []Aggregated
	// Campaign is the campaign state (ModeCampaign only), including
	// partial state when the run was interrupted.
	Campaign *CampaignResult
}

// Runner executes experiment matrices. The zero value is ready to
// use; Engine pins a specific engine (its Workers/Metrics override
// the opts', and RunReduce bookkeeping like PeakPending lands on it).
type Runner struct {
	// Engine, when non-nil, is the engine to execute on. Nil means a
	// fresh engine configured from the opts.
	Engine *Engine
}

// Execute runs one experiment described by opts and returns its
// Execution. On cooperative cancellation the completed runs are still
// aggregated and returned alongside the context error, exactly like
// the legacy entry points. This is the single entry point the legacy
// Engine.Run / Engine.RunReduce / RunCampaign / ResumeCampaign
// signatures wrap.
func (r *Runner) Execute(ctx context.Context, opts RunSpecOpts) (*Execution, error) {
	mode := opts.Mode
	if mode == "" {
		mode = ModeCollect
	}
	if mode == ModeCampaign {
		return r.executeCampaign(ctx, opts)
	}

	specs := opts.Specs
	if specs == nil {
		var err error
		if specs, err = opts.Matrix.Expand(); err != nil {
			return nil, err
		}
	}
	if err := opts.Range.validate(len(specs)); err != nil {
		return nil, err
	}
	if opts.Range != nil {
		specs = specs[opts.Range.From:opts.Range.To]
	}
	eng := r.Engine
	if eng == nil {
		eng = &Engine{Workers: opts.Workers, Metrics: opts.Metrics}
	}

	switch mode {
	case ModeCollect:
		results := eng.RunContext(ctx, specs)
		return &Execution{Specs: specs, Results: results, Aggregates: Aggregate(results)}, nil
	case ModeReduce:
		aggs, errs := eng.RunReduceContext(ctx, specs)
		return &Execution{Specs: specs, Errs: errs, Aggregates: aggs}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown run mode %q", mode)
	}
}

// executeCampaign is Execute's ModeCampaign arm: create-or-continue
// (Resume=false, Matrix authoritative and checked against any existing
// manifest) or resume (Resume=true, manifest authoritative).
func (r *Runner) executeCampaign(ctx context.Context, opts RunSpecOpts) (*Execution, error) {
	if opts.CampaignDir == "" {
		return nil, fmt.Errorf("experiment: ModeCampaign requires CampaignDir")
	}
	if opts.Specs != nil {
		return nil, fmt.Errorf("experiment: ModeCampaign runs from a Matrix, not pre-built Specs (the journal must re-expand them on resume)")
	}
	copts := CampaignOptions{
		Workers:    opts.Workers,
		Metrics:    opts.Metrics,
		Checkpoint: phy.Micros(opts.CheckpointMicros),
		Injector:   opts.Injector,
		Range:      opts.Range,
	}
	var (
		res *CampaignResult
		err error
	)
	if opts.Resume {
		res, err = resumeCampaignDir(ctx, opts.CampaignDir, copts)
	} else {
		res, err = startCampaignDir(ctx, opts.CampaignDir, opts.Matrix, copts)
	}
	if res == nil {
		return nil, err
	}
	return &Execution{Specs: res.Specs, Aggregates: res.Aggregates, Campaign: res}, err
}
