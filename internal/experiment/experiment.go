// Package experiment is the scenario-driven parallel experiment
// engine: the layer that turns single simulator runs into the
// aggregate, multi-run results the paper reports (means over many
// sniffer-hours at different congestion levels).
//
// It contributes three pieces:
//
//   - A Scenario abstraction (name, parameters, build → runnable)
//     unifying the workload package's Session, Sweep, and sweep-ladder
//     shapes behind one interface, with a registry so CLIs can select
//     scenarios by name and a Matrix expander for seeds × scales ×
//     scenario variants.
//
//   - A streaming sim→analysis bridge: a run emits capture records as
//     frames are sniffed (sniffer emit mode), a bounded reordering
//     stage restores start-time order, and records feed
//     analysis.Analyzer.Feed directly — no materialized
//     []capture.Record, no post-hoc capture.Merge, per-run peak
//     memory independent of trace length. The streamed Result is
//     bit-identical to analyzing the materialized, merged trace.
//
//   - A worker-pool Engine (bounded by GOMAXPROCS) that executes an
//     expanded matrix, collects per-run analysis Results, and
//     aggregates summary metrics into deterministic mean/stddev rows
//     keyed by scenario+scale.
package experiment

import (
	"fmt"
	"sort"

	"wlan80211/internal/capture"
)

// Sink receives one capture record. A record's Frame bytes may alias
// a buffer the producer reuses: they are valid only during the call,
// and a Sink that retains them must copy.
type Sink func(rec capture.Record)

// Param is one scenario knob, for reports and JSON output.
type Param struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Scenario is one runnable experiment configuration: a named,
// parameterized recipe that builds into a Run. Implementations wrap
// the workload package's session, sweep, and ladder shapes; Register
// makes new ones selectable by name.
type Scenario interface {
	// Name labels the scenario family ("day", "sweep", ...).
	Name() string
	// Params describes the concrete knobs, in display order.
	Params() []Param
	// Build constructs the simulation. Each Run executes once.
	Build() (Run, error)
}

// Run is one constructed simulation, ready to execute exactly once.
type Run interface {
	// Stream executes the simulation, feeding every captured record
	// to sink at capture time. Records arrive in observation order —
	// non-decreasing transmission-end time — so a record's start
	// timestamp may trail an earlier-delivered one by up to a frame
	// airtime; Reorder restores start-time order. Frame bytes alias
	// reused buffers, valid only during the sink call.
	Stream(sink Sink) error
}

// MultiSnifferRun is optionally implemented by Runs whose stream may
// contain cross-sniffer duplicate observations (≥2 sniffers sharing a
// channel). The engine routes such streams through the Dedup window;
// everything else keeps the direct, dedup-free hot path. A Run that
// places several sniffers on one channel and does not implement this
// double-counts transmissions relative to the materialized
// capture.Merge path.
type MultiSnifferRun interface {
	Run
	// MultiSniffer reports whether any channel has ≥2 sniffers.
	MultiSniffer() bool
}

// Factory builds a scenario variant for one matrix cell. A zero seed
// keeps the scenario's default seed; scale is the workload Scale
// factor (1.0 = full size).
type Factory func(seed int64, scale float64) Scenario

// registry maps scenario names to factories, in registration order.
var registry []struct {
	name    string
	factory Factory
}

// Register adds a scenario factory under a unique name so Matrix and
// the CLIs can select it. Built-ins ("day", "plenary", "sweep",
// "ladder") register at init.
func Register(name string, f Factory) {
	for _, e := range registry {
		if e.name == name {
			panic(fmt.Sprintf("experiment: scenario %q already registered", name))
		}
	}
	registry = append(registry, struct {
		name    string
		factory Factory
	}{name, f})
}

// Names returns the registered scenario names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// New builds the named scenario variant from the registry.
func New(name string, seed int64, scale float64) (Scenario, error) {
	for _, e := range registry {
		if e.name == name {
			return e.factory(seed, scale), nil
		}
	}
	known := Names()
	sort.Strings(known)
	return nil, fmt.Errorf("experiment: unknown scenario %q (have %v)", name, known)
}
