package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

// TestPartitionFoldByteIdentical is the distributed-sweep property
// test: for random partitions of the matrix's spec range — including
// overlapping ranges, which model a reassigned lease rerunning
// another worker's specs — running each range as its own
// range-restricted campaign and folding the per-range journals with
// FoldRecords yields aggregates and report JSON byte-identical to the
// unpartitioned campaign.
func TestPartitionFoldByteIdentical(t *testing.T) {
	m := Matrix{Scenarios: []string{"day", "grid"}, Seeds: []int64{1, 2}, Scales: []float64{0.1}}
	ctx := context.Background()

	refDir := t.TempDir()
	ref, err := RunCampaign(ctx, refDir, m, CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(refDir)
	if err != nil {
		t.Fatal(err)
	}
	wantReport, err := json.MarshalIndent(ref.Report(man), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	n := len(ref.Specs)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		// Random contiguous partition of [0,n), then stretch some
		// ranges one spec to the right so neighbors overlap.
		var ranges []SpecRange
		for from := 0; from < n; {
			to := from + 1 + rng.Intn(n-from)
			ranges = append(ranges, SpecRange{From: from, To: to})
			from = to
		}
		for i := range ranges {
			if ranges[i].To < n && rng.Intn(2) == 0 {
				ranges[i].To++ // overlapping lease: duplicate runs
			}
		}

		var recs []RunRecord
		for i, r := range ranges {
			dir := filepath.Join(t.TempDir(), "shard")
			if _, err := RunCampaign(ctx, dir, m, CampaignOptions{Workers: 2, Range: &r}); err != nil {
				t.Fatalf("trial %d range %d %+v: %v", trial, i, r, err)
			}
			shard, err := ReadJournal(JournalPath(dir))
			if err != nil {
				t.Fatal(err)
			}
			if len(shard) < r.To-r.From {
				t.Fatalf("trial %d range %+v journaled %d records", trial, r, len(shard))
			}
			recs = append(recs, shard...)
		}
		if len(recs) <= n {
			// The overlap coin flips should usually produce duplicates;
			// when they did, the fold below proves dedup. Not fatal —
			// a no-overlap draw still tests the partition property.
			t.Logf("trial %d: no overlapping ranges drawn", trial)
		}

		// Shuffle upload order: folding is spec-ordered, not
		// arrival-ordered.
		rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })

		folded, err := FoldRecords(man, recs)
		if err != nil {
			t.Fatalf("trial %d: fold: %v", trial, err)
		}
		if folded.FromJournal != n {
			t.Fatalf("trial %d: folded %d unique records, want %d", trial, folded.FromJournal, n)
		}
		if !reflect.DeepEqual(folded.Aggregates, ref.Aggregates) {
			t.Fatalf("trial %d: folded aggregates differ from unpartitioned campaign", trial)
		}
		gotReport, err := json.MarshalIndent(folded.Report(man), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotReport, wantReport) {
			t.Fatalf("trial %d: folded report differs:\n--- folded ---\n%s\n--- reference ---\n%s", trial, gotReport, wantReport)
		}
	}
}

// TestFoldRecordsConflict: a record disagreeing with an already-folded
// one for the same spec index must fail the fold, not silently win.
func TestFoldRecordsConflict(t *testing.T) {
	m := Matrix{Scenarios: []string{"day"}, Seeds: []int64{1}, Scales: []float64{0.1}}
	man := Manifest{Version: 1, Matrix: m}
	a := RunRecord{Index: 0, Name: "day", Seed: 1, Scale: 0.1, TraceHash: "aaaa"}
	b := a
	b.TraceHash = "bbbb"
	if _, err := FoldRecords(man, []RunRecord{a, a}); err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
	if _, err := FoldRecords(man, []RunRecord{a, b}); err == nil {
		t.Fatal("conflicting duplicate accepted")
	}
	bad := a
	bad.Index = 5
	if _, err := FoldRecords(man, []RunRecord{bad}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	wrong := a
	wrong.Seed = 9
	if _, err := FoldRecords(man, []RunRecord{wrong}); err == nil {
		t.Fatal("identity mismatch accepted")
	}
}
