package experiment

import (
	"fmt"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
)

// The simulator's taps observe a transmission when it *completes*, so
// a streamed run delivers records in non-decreasing end-time order
// while capture timestamps are start times: when transmissions
// overlap (collisions), a short frame that started later can be
// delivered before a long frame that started earlier. The
// materialized path hides this behind capture.Merge's timestamp sort.
// Reorder restores start-time order on the fly with a bounded buffer:
// because end times never decrease and no frame stays on the air
// longer than maxAirtime, any buffered record whose start precedes
// the newest end by more than maxAirtime can never be preceded by a
// future arrival and is safe to release.

// MaxReorderWire bounds the wire length a reordered stream can carry:
// comfortably above both the 802.11 MPDU ceiling (2346 bytes) and the
// largest frame the traffic profiles generate (~1540 bytes). Ingest
// layers validate against it before feeding the streaming stages,
// because Add fails loudly on anything larger.
const MaxReorderWire = 4096

// maxAirtime is the longest any single frame can occupy the air: a
// MaxReorderWire-byte frame at 1 Mbps with the long preamble (~33 ms).
// It is the reordering horizon — and therefore the peak buffer depth,
// independent of trace length.
var maxAirtime = phy.Airtime(MaxReorderWire, phy.Rate1Mbps)

// ReorderHorizon returns the streaming stages' shared time horizon:
// records are held (Reorder) or remembered (Dedup) only this long
// behind the stream's end-time watermark.
func ReorderHorizon() phy.Micros { return maxAirtime }

// pendingRec is one buffered record; rec.Frame aliases buf, which is
// recycled once the record is released.
type pendingRec struct {
	rec capture.Record
	buf []byte
	seq uint64 // arrival order, the tie-break for equal start times
}

// Reorder is the streaming bridge's sorting stage: records added in
// observation (end-time) order are released to the sink in start-time
// order, ties broken by sniffer ID then arrival — exactly the order
// capture.Merge's stable timestamp sort produces for the same records
// (Merge sorts the concatenation of per-sniffer traces, so its tie
// order is sniffer registration order, then within-trace capture
// order). Not safe for concurrent use; each run gets its own Reorder.
type Reorder struct {
	sink Sink
	// heap is a binary min-heap on (rec.Time, rec.SnifferID, seq).
	heap []pendingRec
	free [][]byte
	seq  uint64
	// watermark is the newest observation end time seen.
	watermark phy.Micros
	// maxPending is the high-water mark of the heap, exposed for the
	// bounded-memory test.
	maxPending int
}

// NewReorder creates a reordering stage feeding sink. Records the
// sink receives alias pooled buffers valid only during the call.
func NewReorder(sink Sink) *Reorder {
	return &Reorder{sink: sink}
}

// Add accepts the next record of an observation-ordered stream and
// releases every buffered record that can no longer be preceded.
func (r *Reorder) Add(rec capture.Record) {
	air := phy.Airtime(rec.OrigLen, rec.Rate)
	if air > maxAirtime {
		// Impossible for the simulator's traffic (see MaxReorderWire);
		// fail loudly rather than silently mis-sort.
		panic(fmt.Sprintf("experiment: frame airtime %dµs exceeds reorder horizon %dµs", air, maxAirtime))
	}

	// Copy the frame into a pooled buffer; the incoming bytes alias a
	// simulator buffer that dies when this call returns.
	var buf []byte
	if n := len(r.free); n > 0 {
		buf = r.free[n-1][:0]
		r.free = r.free[:n-1]
	}
	buf = append(buf, rec.Frame...)
	rec.Frame = buf

	r.push(pendingRec{rec: rec, buf: buf, seq: r.seq})
	r.seq++
	if len(r.heap) > r.maxPending {
		r.maxPending = len(r.heap)
	}

	if end := rec.Time + air; end > r.watermark {
		r.watermark = end
	}
	// Every future arrival starts at or after watermark-maxAirtime.
	for len(r.heap) > 0 && r.heap[0].rec.Time <= r.watermark-maxAirtime {
		r.release()
	}
}

// Flush releases everything still buffered; call once the run ends.
func (r *Reorder) Flush() {
	for len(r.heap) > 0 {
		r.release()
	}
}

// MaxPending reports the deepest the buffer ever got.
func (r *Reorder) MaxPending() int { return r.maxPending }

// release pops the minimum record, hands it to the sink, and recycles
// its buffer.
func (r *Reorder) release() {
	p := r.pop()
	r.sink(p.rec)
	r.free = append(r.free, p.buf)
}

// less orders the heap by (start time, sniffer ID, arrival), the
// materialized path's stable order.
func (r *Reorder) less(a, b pendingRec) bool {
	if a.rec.Time != b.rec.Time {
		return a.rec.Time < b.rec.Time
	}
	if a.rec.SnifferID != b.rec.SnifferID {
		return a.rec.SnifferID < b.rec.SnifferID
	}
	return a.seq < b.seq
}

func (r *Reorder) push(p pendingRec) {
	r.heap = append(r.heap, p)
	i := len(r.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !r.less(r.heap[i], r.heap[parent]) {
			break
		}
		r.heap[i], r.heap[parent] = r.heap[parent], r.heap[i]
		i = parent
	}
}

func (r *Reorder) pop() pendingRec {
	top := r.heap[0]
	last := len(r.heap) - 1
	r.heap[0] = r.heap[last]
	r.heap[last] = pendingRec{}
	r.heap = r.heap[:last]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		smallest := i
		if l < len(r.heap) && r.less(r.heap[l], r.heap[smallest]) {
			smallest = l
		}
		if rt < len(r.heap) && r.less(r.heap[rt], r.heap[smallest]) {
			smallest = rt
		}
		if smallest == i {
			break
		}
		r.heap[i], r.heap[smallest] = r.heap[smallest], r.heap[i]
		i = smallest
	}
	return top
}
