package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"wlan80211/internal/analysis"
	"wlan80211/internal/experiment/faultinject"
	"wlan80211/internal/phy"
	"wlan80211/internal/snapshot"
)

// This file makes matrix sweeps crash-resumable. A campaign lives in
// a directory:
//
//	campaign.json   — the matrix + options (atomic write; resume
//	                  re-expands specs from it, never from flags)
//	journal.jsonl   — one line per completed run, appended with
//	                  O_APPEND in a single write; each line carries a
//	                  CRC32 of its record, so a torn tail from a crash
//	                  mid-append is detected and truncated on resume
//	snapshots/run-N.snap — the latest mid-run snapshot of each
//	                  in-flight run (temp-file+rename, see snapshot)
//
// Determinism contract: a campaign that crashes at ANY instant and is
// resumed produces aggregates and per-run trace hashes bit-identical
// to one that never crashed. Completed runs come back from the
// journal (JSON round-trips int64 and float64 values exactly, and
// folding happens in spec order either way); interrupted runs are
// deterministically replayed, and their mid-run snapshot is verified
// byte-for-byte against the replayed state at the same sim instant —
// proving the snapshot witnessed the exact state the resumed run
// passes through (event callbacks are closures, so state cannot be
// deserialized directly; the snapshot is the proof of equivalence,
// the replay is the reconstruction).

const (
	manifestName = "campaign.json"
	journalName  = "journal.jsonl"
	snapshotsDir = "snapshots"
)

// CampaignOptions configures a campaign run.
type CampaignOptions struct {
	// Workers bounds concurrent runs; <=0 means GOMAXPROCS. Forced to
	// 1 when an Injector is armed, so crash instants are reproducible.
	Workers int
	// Metrics selects analysis stages by name (empty = all).
	Metrics []string
	// Checkpoint is the mid-run snapshot interval in sim time; 0
	// disables mid-run snapshots (the journal alone still makes
	// completed runs skippable).
	Checkpoint phy.Micros
	// Injector arms a deterministic crash point (tests and the CI
	// kill-and-resume job).
	Injector *faultinject.Injector
	// Range restricts execution to spec indices [From, To) of the
	// expanded matrix — a dispatch worker's leased shard. The matrix
	// (and the journal's index space) stays global, so shard journals
	// from different ranges fold together in global spec order.
	Range *SpecRange
}

// Manifest is the persisted campaign identity (campaign.json).
type Manifest struct {
	Version          int        `json:"version"`
	Matrix           Matrix     `json:"matrix"`
	CheckpointMicros int64      `json:"checkpoint_micros"`
	Metrics          []string   `json:"metrics,omitempty"`
	Range            *SpecRange `json:"range,omitempty"`
}

// RunRecord is one completed run as journaled.
type RunRecord struct {
	Index     int     `json:"index"`
	Name      string  `json:"name"`
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
	Summary   Summary `json:"summary"`
	TraceHash string  `json:"trace_hash"`
}

// CampaignResult is a finished (or interrupted) campaign.
type CampaignResult struct {
	Specs      []Spec
	Records    []RunRecord // spec order; zero-valued where incomplete
	Done       []bool      // which Records are filled
	Aggregates []Aggregated
	// FromJournal counts runs skipped because the journal already had
	// them; Verified counts interrupted runs whose snapshot was
	// replay-verified on resume.
	FromJournal int
	Verified    int
}

// Report is the serializable campaign report (what wlansweep -json
// writes and the CI kill-and-resume job diffs).
func (r *CampaignResult) Report(man Manifest) CampaignReport {
	rep := CampaignReport{
		Scenarios:        man.Matrix.Scenarios,
		Seeds:            man.Matrix.Seeds,
		Scales:           man.Matrix.Scales,
		CheckpointMicros: man.CheckpointMicros,
		Aggregates:       r.Aggregates,
	}
	for i, rec := range r.Records {
		if r.Done[i] {
			rep.Runs = append(rep.Runs, rec)
		}
	}
	return rep
}

// CampaignReport is the JSON report shape.
type CampaignReport struct {
	Scenarios        []string     `json:"scenarios"`
	Seeds            []int64      `json:"seeds,omitempty"`
	Scales           []float64    `json:"scales,omitempty"`
	CheckpointMicros int64        `json:"checkpoint_micros"`
	Runs             []RunRecord  `json:"runs"`
	Aggregates       []Aggregated `json:"aggregates"`
}

// WriteJSONAtomic marshals v and writes it to path via
// temp-file+rename, so an interrupt can never leave a torn report.
func WriteJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return snapshot.AtomicWriteFile(path, append(data, '\n'))
}

// journal is the append-only completion log.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

type journalLine struct {
	CRC string          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// scanJournal parses data's valid newline-terminated prefix,
// returning the records and the prefix's byte length. A damaged or
// unterminated tail line is tolerated — it is the torn-append
// artifact of a crash (even a fragment that happens to parse is not
// trustworthy without its terminator). Corruption anywhere but the
// tail is a hard error — that is damage, not a crash artifact.
func scanJournal(path string, data []byte) ([]RunRecord, int, error) {
	var recs []RunRecord
	valid := 0 // byte length of the valid, newline-terminated prefix
	for valid < len(data) {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break
		}
		rec, perr := parseJournalLine(data[valid : valid+nl])
		if perr != nil {
			if valid+nl+1 >= len(data) {
				break
			}
			return nil, 0, fmt.Errorf("experiment: journal %s: corrupt record at offset %d (not at tail): %w", path, valid, perr)
		}
		recs = append(recs, rec)
		valid += nl + 1
	}
	return recs, valid, nil
}

// ReadJournal reads a campaign journal without opening it for writing
// and without truncating a torn tail — the read-only view a dispatch
// worker uses to collect its shard's completed records for upload.
// A missing journal yields no records and no error.
func ReadJournal(path string) ([]RunRecord, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	recs, _, err := scanJournal(path, data)
	return recs, err
}

// JournalPath returns the journal file inside a campaign directory.
func JournalPath(dir string) string { return filepath.Join(dir, journalName) }

// openJournal reads an existing journal (verifying every record's
// CRC), truncates a torn tail line if the last append was interrupted
// mid-write, and opens the file for appending.
func openJournal(path string) (*journal, []RunRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	recs, valid, err := scanJournal(path, data)
	if err != nil {
		return nil, nil, err
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, nil, fmt.Errorf("experiment: journal %s: truncating torn tail: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &journal{f: f}, recs, nil
}

func parseJournalLine(line []byte) (RunRecord, error) {
	var jl journalLine
	if err := json.Unmarshal(line, &jl); err != nil {
		return RunRecord{}, err
	}
	want := fmt.Sprintf("%08x", crc32.ChecksumIEEE(jl.Rec))
	if jl.CRC != want {
		return RunRecord{}, fmt.Errorf("crc %s != %s", jl.CRC, want)
	}
	var rec RunRecord
	if err := json.Unmarshal(jl.Rec, &rec); err != nil {
		return RunRecord{}, err
	}
	return rec, nil
}

// append journals one completed run: a single O_APPEND write of the
// whole line, then fsync, so a crash leaves either nothing or the
// complete record — and if the kernel tears the write (or the
// injector simulates it), the CRC catches the fragment on resume.
func (j *journal) append(rec RunRecord, inj *faultinject.Injector) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("{\"crc\":\"%08x\",\"rec\":%s}\n", crc32.ChecksumIEEE(payload), payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if inj.JournalWrite(rec.Index) {
		// Simulate the torn write: half the line reaches the disk,
		// then the process dies.
		if _, err := j.f.WriteString(line[:len(line)/2]); err != nil {
			return err
		}
		j.f.Sync()
		inj.CrashNow()
	}
	if _, err := j.f.WriteString(line); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() error { return j.f.Close() }

// RunCampaign starts (or continues — the journal makes it idempotent)
// a campaign in dir. The directory is created if needed; an existing
// campaign.json must describe the same matrix and options.
//
// Deprecated: RunCampaign is a thin compat wrapper over
// Runner.Execute with ModeCampaign; new callers should use Runner.
func RunCampaign(ctx context.Context, dir string, m Matrix, opts CampaignOptions) (*CampaignResult, error) {
	ex, err := (&Runner{}).Execute(ctx, RunSpecOpts{
		Mode: ModeCampaign, Matrix: m, CampaignDir: dir,
		Workers: opts.Workers, Metrics: opts.Metrics,
		CheckpointMicros: int64(opts.Checkpoint),
		Range:            opts.Range, Injector: opts.Injector,
	})
	if ex == nil {
		return nil, err
	}
	return ex.Campaign, err
}

// ResumeCampaign continues the campaign in dir, re-expanding the
// matrix from campaign.json: finished runs are folded straight from
// the journal, interrupted ones are deterministically replayed with
// their latest snapshot verified byte-for-byte at its sim instant.
//
// Deprecated: ResumeCampaign is a thin compat wrapper over
// Runner.Execute with ModeCampaign and Resume; new callers should use
// Runner.
func ResumeCampaign(ctx context.Context, dir string, opts CampaignOptions) (*CampaignResult, error) {
	ex, err := (&Runner{}).Execute(ctx, RunSpecOpts{
		Mode: ModeCampaign, CampaignDir: dir, Resume: true,
		Workers: opts.Workers, Injector: opts.Injector,
	})
	if ex == nil {
		return nil, err
	}
	return ex.Campaign, err
}

// startCampaignDir creates (or matches) the campaign manifest in dir
// and runs the pending specs — Runner.Execute's ModeCampaign start
// path.
func startCampaignDir(ctx context.Context, dir string, m Matrix, opts CampaignOptions) (*CampaignResult, error) {
	man := Manifest{Version: 1, Matrix: m, CheckpointMicros: int64(opts.Checkpoint), Metrics: opts.Metrics, Range: opts.Range}
	if err := os.MkdirAll(filepath.Join(dir, snapshotsDir), 0o755); err != nil {
		return nil, err
	}
	manPath := filepath.Join(dir, manifestName)
	if prev, err := readManifest(manPath); err == nil {
		a, _ := json.Marshal(man)
		b, _ := json.Marshal(prev)
		if !bytes.Equal(a, b) {
			return nil, fmt.Errorf("experiment: %s already holds a different campaign (use -resume, or a fresh directory)", dir)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	} else if err := WriteJSONAtomic(manPath, man); err != nil {
		return nil, err
	}
	return runCampaign(ctx, dir, man, opts)
}

// resumeCampaignDir continues the campaign in dir with the on-disk
// manifest authoritative — Runner.Execute's ModeCampaign resume path.
func resumeCampaignDir(ctx context.Context, dir string, opts CampaignOptions) (*CampaignResult, error) {
	man, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("experiment: resume %s: %w", dir, err)
	}
	opts.Checkpoint = phy.Micros(man.CheckpointMicros)
	opts.Metrics = man.Metrics
	opts.Range = man.Range
	if err := os.MkdirAll(filepath.Join(dir, snapshotsDir), 0o755); err != nil {
		return nil, err
	}
	return runCampaign(ctx, dir, man, opts)
}

// ReadManifest loads a campaign directory's manifest.
func ReadManifest(dir string) (Manifest, error) {
	return readManifest(filepath.Join(dir, manifestName))
}

// validateRecord checks a journaled (or uploaded) record against the
// expanded matrix: the index must exist and the identity fields must
// match what the matrix expands to at that index.
func validateRecord(specs []Spec, rec RunRecord) error {
	if rec.Index < 0 || rec.Index >= len(specs) {
		return fmt.Errorf("experiment: journal records run %d, matrix has %d runs", rec.Index, len(specs))
	}
	sp := specs[rec.Index]
	if rec.Name != sp.Name || rec.Seed != sp.Seed || rec.Scale != sp.Scale {
		return fmt.Errorf("experiment: journal run %d is %s/seed=%d/scale=%g, matrix expands to %s/seed=%d/scale=%g",
			rec.Index, rec.Name, rec.Seed, rec.Scale, sp.Name, sp.Seed, sp.Scale)
	}
	return nil
}

// FoldRecords assembles a CampaignResult from journal records gathered
// out of band — the dispatch coordinator folding worker shard uploads,
// or a partition test folding per-range journals. Records may arrive
// in any order and from overlapping leases: duplicates for a spec
// index are fine when bit-identical (runs are deterministic, so a
// rerun of the same spec journals the same record) and a hard error
// when they differ, because that means two workers disagreed on a
// deterministic computation. Done records fold in global spec order,
// so the aggregates — and the report built from the result — are
// byte-identical to a single-process campaign over the same matrix.
func FoldRecords(man Manifest, recs []RunRecord) (*CampaignResult, error) {
	specs, err := man.Matrix.Expand()
	if err != nil {
		return nil, err
	}
	res := &CampaignResult{
		Specs:   specs,
		Records: make([]RunRecord, len(specs)),
		Done:    make([]bool, len(specs)),
	}
	for _, rec := range recs {
		if err := validateRecord(specs, rec); err != nil {
			return nil, err
		}
		if res.Done[rec.Index] {
			if rec != res.Records[rec.Index] {
				return nil, fmt.Errorf("experiment: conflicting records for run %d (%s seed=%d scale=%g): trace %s vs %s",
					rec.Index, rec.Name, rec.Seed, rec.Scale, rec.TraceHash, res.Records[rec.Index].TraceHash)
			}
			continue
		}
		res.Records[rec.Index] = rec
		res.Done[rec.Index] = true
		res.FromJournal++
	}
	var rrs []RunResult
	for i := range specs {
		if res.Done[i] {
			rrs = append(rrs, RunResult{Spec: specs[i], Summary: res.Records[i].Summary})
		}
	}
	res.Aggregates = Aggregate(rrs)
	return res, nil
}

func readManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("%s: %w", path, err)
	}
	if man.Version != 1 {
		return Manifest{}, fmt.Errorf("%s: unsupported campaign version %d", path, man.Version)
	}
	return man, nil
}

func runCampaign(ctx context.Context, dir string, man Manifest, opts CampaignOptions) (*CampaignResult, error) {
	specs, err := man.Matrix.Expand()
	if err != nil {
		return nil, err
	}
	j, journaled, err := openJournal(filepath.Join(dir, journalName))
	if err != nil {
		return nil, err
	}
	defer j.close()

	res := &CampaignResult{
		Specs:   specs,
		Records: make([]RunRecord, len(specs)),
		Done:    make([]bool, len(specs)),
	}
	for _, rec := range journaled {
		if err := validateRecord(specs, rec); err != nil {
			return nil, err
		}
		if !res.Done[rec.Index] {
			res.FromJournal++
		}
		res.Records[rec.Index] = rec
		res.Done[rec.Index] = true
	}

	// A range-restricted campaign (a dispatch worker's shard) only
	// runs its leased indices; the journal and fold stay global.
	var pending []int
	for i := range specs {
		if !res.Done[i] && opts.Range.Contains(i) {
			pending = append(pending, i)
		}
	}

	eng := &Engine{Workers: opts.Workers, Metrics: opts.Metrics}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Injector != nil {
		workers = 1 // reproducible crash instants
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var (
		mu       sync.Mutex
		firstErr error
		verified int
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rec, didVerify, err := runCellRecovered(eng, dir, specs[i], i, opts, j)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("run %d (%s seed=%d scale=%g): %w", i, specs[i].Name, specs[i].Seed, specs[i].Scale, err)
					}
				} else {
					res.Records[i] = rec
					res.Done[i] = true
					if didVerify {
						verified++
					}
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for _, i := range pending {
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	res.Verified = verified
	if firstErr != nil {
		return res, firstErr
	}

	// Fold in spec order — exactly the uninterrupted Aggregate path.
	var rrs []RunResult
	for i := range specs {
		if res.Done[i] {
			rrs = append(rrs, RunResult{Spec: specs[i], Summary: res.Records[i].Summary})
		}
	}
	res.Aggregates = Aggregate(rrs)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runCellRecovered runs one cell, converting an injected crash
// (faultinject.Crashed panic) into an error that aborts the campaign
// with the on-disk state exactly as-at-crash — the in-process
// equivalent of a SIGKILL at that instant, which is what the
// kill-and-resume tests exercise. Real panics propagate.
func runCellRecovered(eng *Engine, dir string, spec Spec, idx int, opts CampaignOptions, j *journal) (rec RunRecord, didVerify bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := r.(faultinject.Crashed); ok {
				err = c
				return
			}
			panic(r)
		}
	}()
	return runCampaignCell(eng, dir, spec, idx, opts, j)
}

// runCampaignCell executes one pending run with checkpointing, then
// journals its completion and retires its snapshot.
func runCampaignCell(eng *Engine, dir string, spec Spec, idx int, opts CampaignOptions, j *journal) (RunRecord, bool, error) {
	env := checkpointEnv{
		interval: opts.Checkpoint,
		runIdx:   idx,
		inj:      opts.Injector,
	}
	snapPath := filepath.Join(dir, snapshotsDir, fmt.Sprintf("run-%d.snap", idx))
	if opts.Checkpoint > 0 {
		env.snapPath = snapPath
	}
	if f, err := snapshot.ReadFile(snapPath); err == nil {
		meta, err := decodeMeta(f)
		if err != nil {
			return RunRecord{}, false, err
		}
		if meta.Name != spec.Name || meta.Seed != spec.Seed || meta.Scale != spec.Scale || meta.RunIdx != idx {
			return RunRecord{}, false, fmt.Errorf("snapshot %s is for %s/seed=%d/scale=%g/run=%d, not this run", snapPath, meta.Name, meta.Seed, meta.Scale, meta.RunIdx)
		}
		env.verify = f
		env.verifyT = meta.SimTime
		env.interval = meta.Interval
		if opts.Checkpoint > 0 {
			env.snapPath = snapPath
		}
	} else if !os.IsNotExist(err) {
		// A snapshot exists but does not validate: fail loud, never
		// silently rerun over possibly-damaged campaign state.
		return RunRecord{}, false, err
	}

	sum, hash, err := eng.runOneCheckpointed(spec, env)
	if err != nil {
		return RunRecord{}, false, err
	}
	rec := RunRecord{Index: idx, Name: spec.Name, Seed: spec.Seed, Scale: spec.Scale, Summary: sum, TraceHash: hash}
	if err := j.append(rec, opts.Injector); err != nil {
		return RunRecord{}, false, err
	}
	opts.Injector.AfterRun(idx)
	os.Remove(snapPath) // completed: the journal is now the authority
	return rec, env.verify != nil, nil
}

// snapMeta is the META section: which run a snapshot belongs to and
// where in sim time it was taken.
type snapMeta struct {
	Name       string
	Seed       int64
	Scale      float64
	RunIdx     int
	Interval   phy.Micros
	SimTime    phy.Micros
	Checkpoint int
}

func encodeMeta(m snapMeta) []byte {
	var e snapshot.Enc
	e.Str(m.Name)
	e.I64(m.Seed)
	e.F64(m.Scale)
	e.Int(m.RunIdx)
	e.I64(m.Interval)
	e.I64(m.SimTime)
	e.Int(m.Checkpoint)
	return e.Bytes()
}

func decodeMeta(f *snapshot.File) (snapMeta, error) {
	p, err := f.MustSection(snapshot.TagMeta)
	if err != nil {
		return snapMeta{}, err
	}
	d := snapshot.NewDec(p)
	m := snapMeta{
		Name: d.Str(), Seed: d.I64(), Scale: d.F64(), RunIdx: d.Int(),
		Interval: d.I64(), SimTime: d.I64(), Checkpoint: d.Int(),
	}
	return m, d.Finish()
}

// checkpointEnv parameterizes one checkpointed run.
type checkpointEnv struct {
	interval phy.Micros
	snapPath string         // write mid-run snapshots here ("" = off)
	verify   *snapshot.File // snapshot to replay-verify against
	verifyT  phy.Micros     // sim instant the snapshot was taken at
	runIdx   int
	inj      *faultinject.Injector
}

// runOneCheckpointed is runOne with the campaign pipeline: a
// TraceHasher between reorder and analyzer, periodic state snapshots,
// and — on resume — byte-for-byte verification of the stored snapshot
// against the deterministically replayed state at the same instant.
func (e *Engine) runOneCheckpointed(spec Spec, env checkpointEnv) (Summary, string, error) {
	run, err := spec.Scenario.Build()
	if err != nil {
		return Summary{}, "", err
	}
	a, err := analysis.New(analysis.Options{Metrics: e.Metrics})
	if err != nil {
		return Summary{}, "", err
	}
	th := NewTraceHasher(a.Feed)
	ro := NewReorder(th.Add)
	sink := ro.Add
	var dd *Dedup
	if ms, ok := run.(MultiSnifferRun); ok && ms.MultiSniffer() {
		dd = NewDedup(ro.Add)
		sink = dd.Add
	}

	cp, can := run.(Checkpointable)
	switch {
	case env.verify != nil && !can:
		return Summary{}, "", fmt.Errorf("scenario is not checkpointable but snapshot exists")
	case !can || (env.snapPath == "" && env.verify == nil):
		// Run-to-completion fallback (non-checkpointable custom
		// scenario, or checkpointing off): the journal still records
		// the completion.
		if err := run.Stream(sink); err != nil {
			return Summary{}, "", err
		}
	default:
		cpIdx := 0
		verified := env.verify == nil
		err := cp.StreamSlices(sink, env.interval, func(t phy.Micros) error {
			if env.verify != nil && t == env.verifyT {
				if err := verifySnapshot(env.verify, cp, th, a, ro, dd); err != nil {
					return err
				}
				verified = true
			}
			if env.snapPath != "" {
				data := buildRunSnapshot(spec, env.runIdx, t, env.interval, cpIdx, cp, th, a, ro, dd)
				if err := snapshot.AtomicWriteFile(env.snapPath, data); err != nil {
					return err
				}
				env.inj.AtCheckpoint(env.runIdx, cpIdx)
				cpIdx++
			}
			return nil
		})
		if err != nil {
			return Summary{}, "", err
		}
		if !verified {
			return Summary{}, "", fmt.Errorf("replay never reached snapshot instant t=%dus (interval changed?)", env.verifyT)
		}
	}

	ro.Flush()
	return Summarize(a.Result()), th.Sum(), nil
}

// buildRunSnapshot assembles a run's checkpoint: identity, simulator
// state, sniffer state, and pipeline position.
func buildRunSnapshot(spec Spec, runIdx int, t, interval phy.Micros, cpIdx int, cp Checkpointable, th *TraceHasher, a *analysis.Analyzer, ro *Reorder, dd *Dedup) []byte {
	net, sns := cp.CaptureState()
	b := snapshot.NewBuilder()
	b.Section(snapshot.TagMeta, encodeMeta(snapMeta{
		Name: spec.Name, Seed: spec.Seed, Scale: spec.Scale,
		RunIdx: runIdx, Interval: interval, SimTime: t, Checkpoint: cpIdx,
	}))
	b.Section(snapshot.TagNetwork, snapshot.EncodeNetworkState(net))
	b.Section(snapshot.TagSniffers, snapshot.EncodeSnifferStates(sns))
	b.Section(snapshot.TagPipeline, encodePipeline(th, a, ro, dd))
	return b.Finish()
}

// verifySnapshot proves the replayed run passes through exactly the
// state a stored snapshot witnessed: each state section, re-captured
// now, must be byte-identical. Any divergence — version skew in the
// simulator, nondeterminism, damage the checksum missed — fails the
// resume loudly instead of continuing from a wrong state.
func verifySnapshot(f *snapshot.File, cp Checkpointable, th *TraceHasher, a *analysis.Analyzer, ro *Reorder, dd *Dedup) error {
	net, sns := cp.CaptureState()
	sections := []struct {
		tag  string
		data []byte
	}{
		{snapshot.TagNetwork, snapshot.EncodeNetworkState(net)},
		{snapshot.TagSniffers, snapshot.EncodeSnifferStates(sns)},
		{snapshot.TagPipeline, encodePipeline(th, a, ro, dd)},
	}
	for _, s := range sections {
		stored, err := f.MustSection(s.tag)
		if err != nil {
			return err
		}
		if !bytes.Equal(stored, s.data) {
			return fmt.Errorf("snapshot section %q does not match replayed state (%d vs %d bytes): refusing to resume from diverged state", s.tag, len(stored), len(s.data))
		}
	}
	return nil
}
