package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"wlan80211/internal/analysis"
	"wlan80211/internal/report"
	"wlan80211/internal/stats"
)

// Spec is one expanded matrix cell: a concrete scenario variant plus
// the seed and scale it was expanded with.
type Spec struct {
	// Name is the registry name the cell was expanded from (the
	// aggregation key together with Scale).
	Name  string
	Seed  int64
	Scale float64
	// Scenario is the built variant.
	Scenario Scenario
}

// Matrix describes a seeds × scales × scenarios experiment grid.
type Matrix struct {
	// Scenarios are registry names (see Names).
	Scenarios []string
	// Seeds are per-run seeds; 0 keeps a scenario's default seed.
	Seeds []int64
	// Scales are workload scale factors (1.0 = full size).
	Scales []float64
}

// Expand resolves the grid into specs, ordered scenario-major, then
// scale, then seed — so runs of one aggregate group are contiguous.
func (m Matrix) Expand() ([]Spec, error) {
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	scales := m.Scales
	if len(scales) == 0 {
		scales = []float64{1.0}
	}
	var specs []Spec
	for _, name := range m.Scenarios {
		for _, scale := range scales {
			for _, seed := range seeds {
				sc, err := New(name, seed, scale)
				if err != nil {
					return nil, err
				}
				specs = append(specs, Spec{Name: name, Seed: seed, Scale: scale, Scenario: sc})
			}
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("experiment: empty matrix (no scenarios)")
	}
	return specs, nil
}

// Summary is the per-run headline extraction aggregated across seeds.
type Summary struct {
	Frames         int64   `json:"frames"`
	ParseErrors    int64   `json:"parse_errors"`
	ChannelSeconds int     `json:"channel_seconds"`
	DataFrames     int64   `json:"data_frames"`
	BeaconFrames   int64   `json:"beacon_frames"`
	PeakUsers      int     `json:"peak_users"`
	ModalUtilPct   int     `json:"modal_util_pct"`
	ThroughputMbps float64 `json:"throughput_mbps"`
	GoodputMbps    float64 `json:"goodput_mbps"`
	UnrecordedPct  float64 `json:"unrecorded_pct"`
}

// Summarize extracts a run's Summary from its analysis Result.
func Summarize(r *analysis.Result) Summary {
	s := Summary{
		Frames:         r.TotalFrames,
		ParseErrors:    r.ParseErrors,
		ThroughputMbps: r.Throughput.MeanOver(0, 100),
		GoodputMbps:    r.Goodput.MeanOver(0, 100),
		UnrecordedPct:  r.Unrecorded.Percent(),
	}
	for _, secs := range r.PerChannel {
		s.ChannelSeconds += len(secs)
		for i := range secs {
			s.DataFrames += int64(secs[i].Data)
			s.BeaconFrames += int64(secs[i].Beacon)
		}
	}
	if r.UtilHist != nil && r.UtilHist.N() > 0 {
		s.ModalUtilPct, _ = r.UtilHist.Mode()
	}
	for _, u := range r.Users {
		if u.Users > s.PeakUsers {
			s.PeakUsers = u.Users
		}
	}
	return s
}

// summaryFields is the ordered field list aggregation reduces; names
// double as table headers and JSON keys.
var summaryFields = []struct {
	Name string
	Get  func(Summary) float64
}{
	{"frames", func(s Summary) float64 { return float64(s.Frames) }},
	{"data_frames", func(s Summary) float64 { return float64(s.DataFrames) }},
	{"channel_seconds", func(s Summary) float64 { return float64(s.ChannelSeconds) }},
	{"peak_users", func(s Summary) float64 { return float64(s.PeakUsers) }},
	{"modal_util_pct", func(s Summary) float64 { return float64(s.ModalUtilPct) }},
	{"throughput_mbps", func(s Summary) float64 { return s.ThroughputMbps }},
	{"goodput_mbps", func(s Summary) float64 { return s.GoodputMbps }},
	{"unrecorded_pct", func(s Summary) float64 { return s.UnrecordedPct }},
}

// SummaryFieldNames returns the aggregated field names in order.
func SummaryFieldNames() []string {
	out := make([]string, len(summaryFields))
	for i, f := range summaryFields {
		out[i] = f.Name
	}
	return out
}

// RunResult is one completed (or failed) matrix cell.
type RunResult struct {
	Spec    Spec
	Summary Summary
	// Result is the run's full analysis (nil when Err is set). Its
	// size is bounded by per-second state, not trace length, so
	// keeping every run's Result is cheap.
	Result *analysis.Result
	Err    error
}

// Engine executes matrix specs on a bounded worker pool, streaming
// each run straight into its own sequential analyzer.
type Engine struct {
	// Workers bounds concurrent runs; <=0 means GOMAXPROCS.
	Workers int
	// Metrics selects analysis stages by name (empty = all).
	Metrics []string

	// peakPending is RunReduce's retention high-water mark (see
	// PeakPending).
	peakPending int
}

// Run executes every spec and returns results in spec order, so
// downstream aggregation is deterministic regardless of worker count
// or completion order. Per-run failures land in RunResult.Err rather
// than aborting the matrix.
//
// Deprecated: Run is a thin compat wrapper over Runner.Execute with
// ModeCollect; new callers should use Runner.
func (e *Engine) Run(specs []Spec) []RunResult {
	if specs == nil {
		specs = []Spec{} // nil means "use Matrix" to Execute
	}
	ex, _ := (&Runner{Engine: e}).Execute(context.Background(), RunSpecOpts{Mode: ModeCollect, Specs: specs})
	return ex.Results
}

// RunContext is Run with cooperative cancellation: once ctx is done,
// no further specs are dispatched; in-flight runs complete (a run is
// not interruptible mid-stream) and every undispatched spec's
// RunResult carries ctx.Err(). The partial results that did complete
// are returned normally, so a CLI can still aggregate and report them
// after SIGINT/SIGTERM.
func (e *Engine) RunContext(ctx context.Context, specs []Spec) []RunResult {
	results := make([]RunResult, len(specs))
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = e.runOne(specs[i])
			}
		}()
	}
dispatch:
	for i := range specs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(specs); j++ {
				results[j] = RunResult{Spec: specs[j], Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return results
}

// runOne executes one cell: build, stream through the reordering
// bridge into a fresh sequential analyzer, summarize. Runs that
// declare multi-sniffer channels (MultiSnifferRun) stream through the
// Dedup window first, which collapses cross-sniffer duplicates
// exactly as the materialized path's capture.Merge does; everything
// else keeps the direct, per-frame-overhead-free path. The analyzer
// runs unsharded — cross-run parallelism already saturates the pool,
// and the sequential path is the one that never retains frame bytes,
// which is what lets the whole pipeline run without materializing.
func (e *Engine) runOne(spec Spec) RunResult {
	run, err := spec.Scenario.Build()
	if err != nil {
		return RunResult{Spec: spec, Err: err}
	}
	a, err := analysis.New(analysis.Options{Metrics: e.Metrics})
	if err != nil {
		return RunResult{Spec: spec, Err: err}
	}
	ro := NewReorder(a.Feed)
	sink := ro.Add
	if ms, ok := run.(MultiSnifferRun); ok && ms.MultiSniffer() {
		sink = NewDedup(ro.Add).Add
	}
	if err := run.Stream(sink); err != nil {
		return RunResult{Spec: spec, Err: err}
	}
	ro.Flush()
	r := a.Result()
	return RunResult{Spec: spec, Summary: Summarize(r), Result: r}
}

// RunReduce executes every spec like Run but reduces as it goes: each
// completed run's full analysis Result is dropped the moment its
// Summary is extracted, and summaries fold into per-group Welford
// accumulators in spec order (buffering at most one small Summary per
// worker to bridge out-of-order completion). Peak retention is
// therefore O(groups + workers) — not O(runs) — which is what makes
// very large matrices (hundreds of cells × many seeds) run in flat
// memory. The aggregates are bit-identical to
// Aggregate(e.Run(specs)); per-spec failures land in the returned
// error slice (nil entries for successes) and count in
// Aggregated.Errors.
//
// Deprecated: RunReduce is a thin compat wrapper over Runner.Execute
// with ModeReduce; new callers should use Runner.
func (e *Engine) RunReduce(specs []Spec) ([]Aggregated, []error) {
	if specs == nil {
		specs = []Spec{} // nil means "use Matrix" to Execute
	}
	ex, _ := (&Runner{Engine: e}).Execute(context.Background(), RunSpecOpts{Mode: ModeReduce, Specs: specs})
	return ex.Aggregates, ex.Errs
}

// RunReduceContext is RunReduce with cooperative cancellation,
// mirroring RunContext: once ctx is done no further specs dispatch,
// in-flight runs complete and fold normally, and every undispatched
// spec gets ctx.Err() in the error slice (counting in
// Aggregated.Errors). The partial aggregates remain deterministic:
// completed runs fold in spec order exactly as without cancellation.
func (e *Engine) RunReduceContext(ctx context.Context, specs []Spec) ([]Aggregated, []error) {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	// Group bookkeeping in spec order, mirroring Aggregate.
	type key struct {
		name  string
		scale float64
	}
	groupOf := make([]int, len(specs))
	index := make(map[key]int)
	var order []key
	for i, s := range specs {
		k := key{s.Name, s.Scale}
		gi, ok := index[k]
		if !ok {
			gi = len(order)
			index[k] = gi
			order = append(order, k)
		}
		groupOf[i] = gi
	}
	aggs := make([]Aggregated, len(order))
	accs := make([][]stats.Welford, len(order))
	for gi, k := range order {
		aggs[gi] = Aggregated{Scenario: k.name, Scale: k.scale}
		accs[gi] = make([]stats.Welford, len(summaryFields))
	}

	type done struct {
		i   int
		sum Summary
		err error
	}
	results := make(chan done)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := e.runOne(specs[i])
				r.Result = nil // reduce-as-you-go: only the Summary survives
				results <- done{i: i, sum: r.Summary, err: r.Err}
			}
		}()
	}

	// Fold summaries strictly in spec order so the float accumulation
	// order — and therefore every mean and stddev bit — is independent
	// of worker count and completion order. Dispatch is windowed: spec
	// i is not handed out until spec i-workers has been reduced, which
	// caps the out-of-order buffer at the worker count by construction
	// (a slow head-of-line run may briefly idle the other workers —
	// the price of a retention bound that does not degrade to O(runs)).
	errs := make([]error, len(specs))
	pending := make(map[int]done, workers)
	sent, next, peak := 0, 0, 0
	// total is how many specs will produce worker results; a cancel
	// freezes it at the dispatch point so the loop only waits for
	// in-flight runs.
	total := len(specs)
	apply := func(r done) {
		gi := groupOf[r.i]
		if r.err != nil {
			errs[r.i] = r.err
			aggs[gi].Errors++
			return
		}
		aggs[gi].Runs++
		for fi, f := range summaryFields {
			accs[gi][fi].Add(f.Get(r.sum))
		}
	}
	for completed := 0; completed < total; {
		var r done
		if sent < total && sent < next+workers {
			select {
			case jobs <- sent:
				sent++
				continue
			case r = <-results:
			case <-ctx.Done():
				total = sent
				continue
			}
		} else {
			r = <-results
		}
		completed++
		pending[r.i] = r
		if len(pending) > peak {
			peak = len(pending)
		}
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			apply(q)
			next++
		}
	}
	close(jobs)
	wg.Wait()
	e.peakPending = peak

	// Undispatched specs were canceled: record the error in spec
	// order so Aggregated.Errors matches the RunContext path.
	if total < len(specs) {
		cerr := ctx.Err()
		for j := total; j < len(specs); j++ {
			errs[j] = cerr
			aggs[groupOf[j]].Errors++
		}
	}

	for gi := range aggs {
		aggs[gi].Fields = make([]FieldStat, len(summaryFields))
		for fi, f := range summaryFields {
			aggs[gi].Fields[fi] = FieldStat{Name: f.Name, Mean: accs[gi][fi].Mean(), Stddev: accs[gi][fi].Stddev()}
		}
	}
	return aggs, errs
}

// PeakPending reports how many completed-but-not-yet-reduced
// summaries the last RunReduce held at once (≤ its worker count) —
// the retention the reduce mode's memory claim rests on.
func (e *Engine) PeakPending() int { return e.peakPending }

// FieldStat is one aggregated summary field.
type FieldStat struct {
	Name   string  `json:"name"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
}

// Aggregated is the reduction of one scenario+scale group across its
// seeds: mean and stddev of every summary field.
type Aggregated struct {
	Scenario string      `json:"scenario"`
	Scale    float64     `json:"scale"`
	Runs     int         `json:"runs"`
	Errors   int         `json:"errors"`
	Fields   []FieldStat `json:"fields"`
}

// Field returns the named field's stats (zero FieldStat if absent).
func (a Aggregated) Field(name string) FieldStat {
	for _, f := range a.Fields {
		if f.Name == name {
			return f
		}
	}
	return FieldStat{}
}

// AggregateTable renders aggregates as one mean±stddev row per
// scenario+scale group — the table both CLIs print.
func AggregateTable(title string, aggs []Aggregated) *report.Table {
	headers := append([]string{"scenario", "scale", "runs"}, SummaryFieldNames()...)
	t := report.NewTable(title, headers...)
	for _, a := range aggs {
		cells := []any{a.Scenario, a.Scale, a.Runs}
		for _, f := range a.Fields {
			cells = append(cells, report.MeanStddev(f.Mean, f.Stddev))
		}
		t.AddRow(cells...)
	}
	return t
}

// Aggregate groups run results by scenario+scale (in first-seen
// order, which for Matrix.Expand output is expansion order) and
// reduces each summary field with a Welford accumulator. Failed runs
// count in Errors and contribute no samples.
func Aggregate(results []RunResult) []Aggregated {
	type key struct {
		name  string
		scale float64
	}
	order := make([]key, 0, 4)
	groups := make(map[key][]RunResult)
	for _, r := range results {
		k := key{r.Spec.Name, r.Spec.Scale}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([]Aggregated, 0, len(order))
	for _, k := range order {
		g := groups[k]
		agg := Aggregated{Scenario: k.name, Scale: k.scale}
		accs := make([]stats.Welford, len(summaryFields))
		for _, r := range g {
			if r.Err != nil {
				agg.Errors++
				continue
			}
			agg.Runs++
			for i, f := range summaryFields {
				accs[i].Add(f.Get(r.Summary))
			}
		}
		agg.Fields = make([]FieldStat, len(summaryFields))
		for i, f := range summaryFields {
			agg.Fields[i] = FieldStat{Name: f.Name, Mean: accs[i].Mean(), Stddev: accs[i].Stddev()}
		}
		out = append(out, agg)
	}
	return out
}
