package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"wlan80211/internal/analysis"
	"wlan80211/internal/workload"
)

// TestGridStreamingMatchesMaterialized is the grid bridge's acceptance
// gate, mirroring the day/sweep/ladder equivalence tests: a streamed
// grid run — multi-sniffer channels, dedup window, reordering — must
// produce a Result bit-identical to materializing every sniffer's
// trace, capture.Merge-ing them, and batch-analyzing. It also pins
// that the grid actually exercises the new paths: cross-sniffer
// duplicates collapsed, and a bounded dedup table.
func TestGridStreamingMatchesMaterialized(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	g := workload.DefaultGrid().Scale(0.5)

	mb, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.Analyze(mb.Run())
	if want.TotalFrames == 0 {
		t.Fatal("empty materialized grid trace")
	}

	sb, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := analysis.New(analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ro := NewReorder(a.Feed)
	dd := NewDedup(ro.Add)
	sb.RunStream(dd.Add)
	ro.Flush()
	got := a.Result()

	if !reflect.DeepEqual(want, got) {
		t.Error("streamed grid result differs from materialized batch result")
	}
	if dd.Dropped == 0 {
		t.Error("grid stream produced no cross-sniffer duplicates; the dedup path is untested")
	}
	if dd.MaxPending() > 512 {
		t.Errorf("dedup table high-water mark %d; want a small constant", dd.MaxPending())
	}
	for _, sn := range sb.Sniffers {
		if len(sn.Records()) != 0 {
			t.Error("streaming grid sniffer materialized records")
		}
	}
}

// hashResult collapses a full analysis Result into a digest, the
// golden-hash pattern from internal/workload applied at the Result
// level: any bit of drift in any metric changes the hash.
func hashResult(t *testing.T, r *analysis.Result) string {
	t.Helper()
	enc, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:])
}

// TestGridMatrixDeterminism is the determinism property test for the
// new scenarios: the same grid matrix run twice, on 1, 2, and 8
// workers, must produce bit-identical Result hashes and aggregates —
// mobility, roaming, mixed-b/g adaptation, and the dedup window must
// all be pure functions of the seed, with no leakage from worker
// scheduling. Run under -race in CI it doubles as the data-race gate
// for the new paths.
func TestGridMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	m := Matrix{
		Scenarios: []string{"grid", "grid9"},
		Seeds:     []int64{1, 2},
		Scales:    []float64{0.25},
	}

	var ref []RunResult
	var refHashes []string
	for _, workers := range []int{1, 2, 8, 1} { // trailing 1: same config twice
		specs, err := m.Expand()
		if err != nil {
			t.Fatal(err)
		}
		results := (&Engine{Workers: workers}).Run(specs)
		hashes := make([]string, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d run %d: %v", workers, i, r.Err)
			}
			if r.Summary.Frames == 0 {
				t.Fatalf("workers=%d run %d captured nothing", workers, i)
			}
			hashes[i] = hashResult(t, r.Result)
		}
		if ref == nil {
			ref, refHashes = results, hashes
			continue
		}
		for i := range results {
			if hashes[i] != refHashes[i] {
				t.Errorf("workers=%d run %d result hash drifted:\n got %s\nwant %s", workers, i, hashes[i], refHashes[i])
			}
			if results[i].Summary != ref[i].Summary {
				t.Errorf("workers=%d run %d summary differs", workers, i)
			}
		}
		if !reflect.DeepEqual(Aggregate(results), Aggregate(ref)) {
			t.Errorf("workers=%d aggregates differ", workers)
		}
	}
}

// TestRunReduceMatchesRun checks the reduce-as-you-go mode against the
// materializing engine: bit-identical aggregates regardless of worker
// count, and peak retention bounded by the worker count — O(cells),
// not O(runs) — which is the footprint fix the mode exists for.
func TestRunReduceMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	m := Matrix{
		Scenarios: []string{"sweep"},
		Seeds:     []int64{1, 2, 3, 4, 5, 6},
		Scales:    []float64{0.1},
	}
	specsA, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	specsB, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := Aggregate((&Engine{Workers: 2}).Run(specsA))

	eng := &Engine{Workers: 3}
	got, errs := eng.RunReduce(specsB)
	for i, e := range errs {
		if e != nil {
			t.Fatalf("reduce run %d: %v", i, e)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reduced aggregates differ from materialized:\n got %+v\nwant %+v", got, want)
	}
	if peak := eng.PeakPending(); peak > 3 {
		t.Errorf("reduce mode retained %d pending summaries; want ≤ workers (3), independent of the %d runs",
			peak, len(specsB))
	}
}

// errScenario builds nothing, for the reduce error path.
type errScenario struct{}

func (errScenario) Name() string        { return "err" }
func (errScenario) Params() []Param     { return nil }
func (errScenario) Build() (Run, error) { return nil, errors.New("boom") }

// TestRunReduceCountsErrors checks failed cells land in the error
// slice and the group's Errors count without contributing samples.
func TestRunReduceCountsErrors(t *testing.T) {
	specs := []Spec{
		{Name: "err", Scale: 1, Scenario: errScenario{}},
		{Name: "err", Scale: 1, Scenario: errScenario{}},
	}
	eng := &Engine{Workers: 2}
	aggs, errs := eng.RunReduce(specs)
	if errs[0] == nil || errs[1] == nil {
		t.Fatalf("errors not reported: %v", errs)
	}
	if len(aggs) != 1 || aggs[0].Errors != 2 || aggs[0].Runs != 0 {
		t.Fatalf("aggregates = %+v, want one group with 2 errors, 0 runs", aggs)
	}
}

// TestGridMatrixGoldenResults pins the full analysis Results of the
// reference grid matrix to committed hashes — the experiment-level
// equivalence gate for behaviour-preserving simulator refactors (the
// lazy DCF countdown landed against these values unchanged). A drift
// here means simulated physics or analysis arithmetic moved, not just
// event bookkeeping; regenerate together with the workload goldens
// (see -update-golden there) only for deliberate changes.
func TestGridMatrixGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	want := []string{
		"d941c7da8da14f4c4743353717f97c0f3bf5e004e0548d625930ab299f8a177e",
		"8d8e98d89e4366edc31481321438e3d7a331418f8971269cf7f415e7ff5717ec",
		"22c57cf9990e98595a62cc47664b843bfedd587cbe456f1bce5e2ed673f73d34",
		"04c1699981ab7a928031359c80da8bec9899fa9f89dc426e43b84a4af2165b79",
	}
	specs, err := (Matrix{
		Scenarios: []string{"grid", "grid9"},
		Seeds:     []int64{1, 2},
		Scales:    []float64{0.25},
	}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	results := (&Engine{Workers: 2}).Run(specs)
	if len(results) != len(want) {
		t.Fatalf("matrix produced %d results, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("run %d: %v", i, r.Err)
		}
		if got := hashResult(t, r.Result); got != want[i] {
			t.Errorf("run %d (%s seed=%d) result hash drifted:\n got %s\nwant %s",
				i, r.Spec.Name, r.Spec.Seed, got, want[i])
		}
	}
}
