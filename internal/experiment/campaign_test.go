package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wlan80211/internal/experiment/faultinject"
	"wlan80211/internal/phy"
	"wlan80211/internal/snapshot"
)

// traceHashOf runs one spec through the campaign pipeline with the
// given checkpointing environment and returns (summary, trace hash).
func traceHashOf(t *testing.T, name string, seed int64, scale float64, env checkpointEnv) (Summary, string) {
	t.Helper()
	sc, err := New(name, seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: 1}
	sum, hash, err := eng.runOneCheckpointed(Spec{Name: name, Seed: seed, Scale: scale, Scenario: sc}, env)
	if err != nil {
		t.Fatal(err)
	}
	return sum, hash
}

// TestCheckpointedTraceHashMatchesUninterrupted is the tentpole
// acceptance criterion: for all four golden scenarios, a run that
// snapshots at every interval — and a resumed run that restores
// (replay-verifies) from a mid-run snapshot and continues to the end
// — produce the same trace hash and summary as an uninterrupted run.
// The -race CI matrix covers this test via the experiment package.
func TestCheckpointedTraceHashMatchesUninterrupted(t *testing.T) {
	cases := []struct {
		name  string
		scale float64
	}{
		{"day", 0.1},
		{"plenary", 0.1},
		{"grid", 0.5},
		{"grid9", 0.35},
		// grid256 exercises the sparse spatially-culled link rows and
		// index witness through the snapshot/replay round-trip.
		{"grid256", 0.5},
		// sweep/ladder became Checkpointable with the dispatch work;
		// ladder additionally crosses rung boundaries, exercising the
		// global-clock slice times.
		{"sweep", 0.15},
		{"ladder", 0.1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Uninterrupted reference: no slicing at all.
			refSum, refHash := traceHashOf(t, tc.name, 1, tc.scale, checkpointEnv{})
			if refHash == "" {
				t.Fatal("empty trace hash")
			}

			// Checkpointed: snapshot every 2 sim-seconds; the stream
			// must be bit-identical (same hash) despite the slicing
			// and state capture.
			dir := t.TempDir()
			snapPath := filepath.Join(dir, "run-0.snap")
			env := checkpointEnv{interval: 2 * phy.MicrosPerSecond, snapPath: snapPath}
			cpSum, cpHash := traceHashOf(t, tc.name, 1, tc.scale, env)
			if cpHash != refHash {
				t.Fatalf("checkpointed trace hash %s != uninterrupted %s", cpHash, refHash)
			}
			if !reflect.DeepEqual(cpSum, refSum) {
				t.Fatalf("checkpointed summary %+v != uninterrupted %+v", cpSum, refSum)
			}

			// Snapshot-at-t → restore → run-to-end: the final snapshot
			// left on disk is from the last interval boundary; resume
			// from it (replay to t, verify byte-for-byte, continue).
			f, err := snapshot.ReadFile(snapPath)
			if err != nil {
				t.Fatalf("reading final checkpoint: %v", err)
			}
			meta, err := decodeMeta(f)
			if err != nil {
				t.Fatal(err)
			}
			if meta.SimTime == 0 {
				t.Fatal("checkpoint has zero sim time")
			}
			resSum, resHash := traceHashOf(t, tc.name, 1, tc.scale, checkpointEnv{
				interval: meta.Interval, verify: f, verifyT: meta.SimTime,
			})
			if resHash != refHash {
				t.Fatalf("restored trace hash %s != uninterrupted %s", resHash, refHash)
			}
			if !reflect.DeepEqual(resSum, refSum) {
				t.Fatalf("restored summary %+v != uninterrupted %+v", resSum, refSum)
			}
		})
	}
}

// TestVerifyRejectsForeignSnapshot: resuming against a snapshot from
// a different run (different seed) must fail the byte comparison, not
// silently continue.
func TestVerifyRejectsForeignSnapshot(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "run-0.snap")
	env := checkpointEnv{interval: 2 * phy.MicrosPerSecond, snapPath: snapPath}
	traceHashOf(t, "day", 1, 0.1, env)
	f, err := snapshot.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := decodeMeta(f)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := New("day", 2, 0.1) // different seed than the snapshot
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: 1}
	_, _, err = eng.runOneCheckpointed(Spec{Name: "day", Seed: 2, Scale: 0.1, Scenario: sc}, checkpointEnv{
		interval: meta.Interval, verify: f, verifyT: meta.SimTime,
	})
	if err == nil || !strings.Contains(err.Error(), "does not match replayed state") {
		t.Fatalf("foreign snapshot accepted: %v", err)
	}
}

func campaignMatrix() Matrix {
	return Matrix{
		Scenarios: []string{"day", "grid"},
		Seeds:     []int64{1, 2},
		Scales:    []float64{0.1},
	}
}

// TestCampaignKillAndResume is the fault-injection acceptance
// criterion: for every crash-point kind, a campaign killed at that
// instant and resumed yields aggregates, per-run trace hashes, and a
// JSON report bit-identical to a campaign that never crashed.
func TestCampaignKillAndResume(t *testing.T) {
	ctx := context.Background()
	m := campaignMatrix()
	opts := CampaignOptions{Workers: 1, Checkpoint: 2 * phy.MicrosPerSecond}

	refDir := t.TempDir()
	ref, err := RunCampaign(ctx, refDir, m, opts)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	if got := len(ref.Records); got != 4 {
		t.Fatalf("reference has %d records, want 4", got)
	}
	refMan, err := ReadManifest(refDir)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref.Report(refMan))
	if err != nil {
		t.Fatal(err)
	}

	plans := []faultinject.Plan{
		{Point: faultinject.AfterRun, Run: 1},
		{Point: faultinject.MidRun, Run: 2, Checkpoint: 1},
		{Point: faultinject.JournalWrite, Run: 1},
	}
	// A seeded schedule is deterministic and lands on a real point.
	sched := faultinject.Schedule(42, 4, 3)
	if sched != faultinject.Schedule(42, 4, 3) {
		t.Fatal("Schedule not deterministic")
	}
	if sched.Point == faultinject.None || sched.Run < 0 || sched.Run >= 4 {
		t.Fatalf("Schedule produced unusable plan %+v", sched)
	}
	plans = append(plans, sched)

	for _, plan := range plans {
		t.Run(plan.String(), func(t *testing.T) {
			dir := t.TempDir()
			crashOpts := opts
			crashOpts.Injector = faultinject.New(plan)
			_, err := RunCampaign(ctx, dir, m, crashOpts)
			var crashed faultinject.Crashed
			if !errors.As(err, &crashed) {
				t.Fatalf("campaign did not crash: err=%v", err)
			}

			resumed, err := ResumeCampaign(ctx, dir, CampaignOptions{Workers: 1})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !reflect.DeepEqual(resumed.Aggregates, ref.Aggregates) {
				t.Fatalf("resumed aggregates differ:\n%+v\nvs\n%+v", resumed.Aggregates, ref.Aggregates)
			}
			if !reflect.DeepEqual(resumed.Records, ref.Records) {
				t.Fatalf("resumed per-run records (trace hashes) differ:\n%+v\nvs\n%+v", resumed.Records, ref.Records)
			}
			if resumed.FromJournal == 0 && plan.Point != faultinject.JournalWrite && plan.Run > 0 {
				t.Error("resume re-ran everything; journal was not used")
			}
			if plan.Point == faultinject.MidRun && resumed.Verified == 0 {
				t.Error("mid-run crash resumed without verifying a snapshot")
			}
			man, err := ReadManifest(dir)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(resumed.Report(man))
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(refJSON) {
				t.Fatalf("resumed report JSON differs from uninterrupted reference:\n%s\nvs\n%s", gotJSON, refJSON)
			}
			// Resuming a finished campaign is a no-op fold from the
			// journal alone.
			again, err := ResumeCampaign(ctx, dir, CampaignOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if again.FromJournal != 4 {
				t.Fatalf("second resume re-ran runs: FromJournal=%d", again.FromJournal)
			}
			if !reflect.DeepEqual(again.Aggregates, ref.Aggregates) {
				t.Fatal("second resume aggregates differ")
			}
		})
	}
}

// TestCampaignInterruptedContext: a context cancel behaves like a
// graceful SIGINT — in-flight runs finish and journal, and a later
// resume completes the matrix to the bit-identical reference.
func TestCampaignInterruptedContext(t *testing.T) {
	m := campaignMatrix()
	opts := CampaignOptions{Workers: 1, Checkpoint: 2 * phy.MicrosPerSecond}

	refDir := t.TempDir()
	ref, err := RunCampaign(context.Background(), refDir, m, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before dispatch: nothing runs, nothing breaks
	res, err := RunCampaign(ctx, dir, m, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	resumed, err := ResumeCampaign(context.Background(), dir, CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Aggregates, ref.Aggregates) {
		t.Fatal("aggregates after cancel+resume differ from reference")
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")

	// Two valid records, then a torn half-line with no terminator.
	j, recs, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	r0 := RunRecord{Index: 0, Name: "day", Seed: 1, Scale: 0.1, TraceHash: "aaaa"}
	r1 := RunRecord{Index: 1, Name: "day", Seed: 2, Scale: 0.1, TraceHash: "bbbb"}
	if err := j.append(r0, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.append(r1, nil); err != nil {
		t.Fatal(err)
	}
	j.close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), full...), []byte(`{"crc":"00000000","rec":{"index":2`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := openJournal(path)
	if err != nil {
		t.Fatalf("torn tail not forgiven: %v", err)
	}
	if len(recs) != 2 || recs[0] != r0 || recs[1] != r1 {
		t.Fatalf("recovered records = %+v", recs)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(full) {
		t.Fatal("torn tail not truncated")
	}
	// And appending after recovery yields a clean record.
	r2 := RunRecord{Index: 2, Name: "grid", Seed: 1, Scale: 0.1, TraceHash: "cccc"}
	if err := j2.append(r2, nil); err != nil {
		t.Fatal(err)
	}
	j2.close()
	j3, recs3, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.close()
	if len(recs3) != 3 || recs3[2] != r2 {
		t.Fatalf("after recovery+append: %+v", recs3)
	}
}

func TestJournalCorruptionNotAtTailFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.append(RunRecord{Index: 0, Name: "day", Scale: 0.1}, nil)
	j.append(RunRecord{Index: 1, Name: "day", Scale: 0.1}, nil)
	j.close()
	data, _ := os.ReadFile(path)
	data[10] ^= 0x40 // damage the FIRST line
	os.WriteFile(path, data, 0o644)
	if _, _, err := openJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestCampaignRejectsDifferentMatrix(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	m := Matrix{Scenarios: []string{"day"}, Seeds: []int64{1}, Scales: []float64{0.1}}
	if _, err := RunCampaign(ctx, dir, m, CampaignOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	m2 := m
	m2.Seeds = []int64{9}
	if _, err := RunCampaign(ctx, dir, m2, CampaignOptions{Workers: 1}); err == nil {
		t.Fatal("different matrix accepted into existing campaign dir")
	}
}

func TestCampaignParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	m := campaignMatrix()
	a, err := RunCampaign(ctx, t.TempDir(), m, CampaignOptions{Workers: 1, Checkpoint: 2 * phy.MicrosPerSecond})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(ctx, t.TempDir(), m, CampaignOptions{Workers: 4, Checkpoint: 2 * phy.MicrosPerSecond})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Aggregates, b.Aggregates) {
		t.Fatal("worker count changed campaign aggregates")
	}
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("worker count changed campaign records")
	}
}

// TestCampaignMatchesEngine: campaign aggregates are bit-identical to
// the plain engine path over the same matrix (the checkpoint pipeline
// must not perturb analysis).
func TestCampaignMatchesEngine(t *testing.T) {
	m := campaignMatrix()
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{Workers: 1}
	want := Aggregate(eng.Run(specs))
	got, err := RunCampaign(context.Background(), t.TempDir(), m, CampaignOptions{Workers: 1, Checkpoint: 2 * phy.MicrosPerSecond})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Aggregates, want) {
		t.Fatalf("campaign aggregates differ from engine:\n%+v\nvs\n%+v", got.Aggregates, want)
	}
}

func init() {
	// Guard: tests in this file assume these registry names exist.
	for _, n := range []string{"day", "plenary", "grid", "grid9"} {
		found := false
		for _, have := range Names() {
			if have == n {
				found = true
			}
		}
		if !found {
			panic(fmt.Sprintf("campaign_test: scenario %q missing from registry", n))
		}
	}
}
