package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"wlan80211/internal/analysis"
	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
	"wlan80211/internal/sim"
	"wlan80211/internal/snapshot"
	"wlan80211/internal/sniffer"
	"wlan80211/internal/workload"
)

// Checkpointable is a Run whose stream can be sliced at sim-time
// boundaries and whose full simulator state can be captured between
// events. All built-in scenario shapes implement it: session
// (day/plenary) and grid runs slice their single network at interval
// boundaries; sweep runs do the same; ladder runs chain several
// simulators and slice each rung at interval boundaries plus the rung
// ends, reporting slice times on the ladder's global clock — so a
// worker crash mid-ladder resumes (replay-verifies against the last
// snapshot) instead of silently rerunning the whole shard.
type Checkpointable interface {
	Run
	// StreamSlices streams exactly like Stream — the event sequence and
	// emitted records are bit-identical — but pauses between events at
	// each interval boundary to call atSlice with the current sim time.
	// An atSlice error aborts the run.
	StreamSlices(sink Sink, interval phy.Micros, atSlice func(t phy.Micros) error) error
	// CaptureState returns the run's complete simulator and sniffer
	// state (see sim.NetworkState for the witness semantics).
	CaptureState() (*sim.NetworkState, []sniffer.State)
}

func (r sessionRun) StreamSlices(sink Sink, interval phy.Micros, atSlice func(phy.Micros) error) error {
	return r.b.RunStreamSlices(sink, interval, atSlice)
}

func (r sessionRun) CaptureState() (*sim.NetworkState, []sniffer.State) {
	states := make([]sniffer.State, len(r.b.Sniffers))
	for i, sn := range r.b.Sniffers {
		states[i] = sn.CaptureState()
	}
	return r.b.Net.CaptureState(), states
}

func (r gridRun) StreamSlices(sink Sink, interval phy.Micros, atSlice func(phy.Micros) error) error {
	return r.b.RunStreamSlices(sink, interval, atSlice)
}

func (r gridRun) CaptureState() (*sim.NetworkState, []sniffer.State) {
	states := make([]sniffer.State, len(r.b.Sniffers))
	for i, sn := range r.b.Sniffers {
		states[i] = sn.CaptureState()
	}
	return r.b.Net.CaptureState(), states
}

// StreamSlices implements Checkpointable for the single-cell sweep:
// build, then advance the one network in interval steps, exactly like
// the session scenarios.
func (r *sweepRun) StreamSlices(sink Sink, interval phy.Micros, atSlice func(phy.Micros) error) error {
	net, sn := r.s.Build()
	r.net, r.sn = net, sn
	sn.SetEmit(sink)
	total := phy.Micros(r.s.DurationSec()) * phy.MicrosPerSecond
	return workload.RunSlices(net, total, interval, atSlice)
}

func (r *sweepRun) CaptureState() (*sim.NetworkState, []sniffer.State) {
	return r.net.CaptureState(), []sniffer.State{r.sn.CaptureState()}
}

// StreamSlices implements Checkpointable for ladders. Each rung is
// sliced at interval boundaries within its own epoch (interval <= 0
// slices only at rung ends), and slice times are reported on the
// ladder's global clock — shift + local t — so they are strictly
// increasing across rungs and a resume replays to exactly the same
// instant. The emitted stream is bit-identical to Stream: the time
// shift is the same, and slicing is invisible to each rung's
// simulation (see workload.RunSlices).
func (r *ladderRun) StreamSlices(sink Sink, interval phy.Micros, atSlice func(phy.Micros) error) error {
	var offset phy.Micros
	for _, sw := range r.ladder {
		shift := offset
		net, sn := sw.Build()
		r.net, r.sn = net, sn
		sn.SetEmit(func(rec capture.Record) {
			rec.Time += shift
			sink(rec)
		})
		total := phy.Micros(sw.DurationSec()) * phy.MicrosPerSecond
		err := workload.RunSlices(net, total, interval, func(t phy.Micros) error {
			return atSlice(shift + t)
		})
		if err != nil {
			return err
		}
		offset += phy.Micros(sw.DurationSec()+1) * phy.MicrosPerSecond
	}
	return nil
}

// CaptureState returns the current rung's state. A ladder snapshot
// taken at a global slice instant t witnesses the rung live at t;
// replay rebuilds the earlier rungs deterministically and passes
// through the identical state at the identical instant.
func (r *ladderRun) CaptureState() (*sim.NetworkState, []sniffer.State) {
	return r.net.CaptureState(), []sniffer.State{r.sn.CaptureState()}
}

// TraceHasher is a pass-through pipeline stage that folds every record
// into a running order-sensitive sha256 chain (digest_i =
// sha256(digest_{i-1} || record_i)). Campaigns insert it between the
// reorder release and the analyzer, so each run's final Sum is a
// content hash of the exact analyzed record sequence — the value the
// resume tests compare bit for bit. The intermediate fold is plain
// bytes, so a checkpoint can store it as a stream-prefix witness.
type TraceHasher struct {
	sink Sink
	n    uint64
	fold [sha256.Size]byte
	buf  []byte
}

// NewTraceHasher creates a hashing stage feeding sink.
func NewTraceHasher(sink Sink) *TraceHasher {
	return &TraceHasher{sink: sink}
}

// Add folds rec into the chain and forwards it.
func (t *TraceHasher) Add(rec capture.Record) {
	b := append(t.buf[:0], t.fold[:]...)
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.Time))
	b = binary.LittleEndian.AppendUint16(b, uint16(rec.Rate))
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.Channel))
	b = append(b, byte(rec.SignalDBm), byte(rec.NoiseDBm))
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.SnifferID))
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.OrigLen))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(rec.Frame)))
	b = append(b, rec.Frame...)
	t.fold = sha256.Sum256(b)
	t.buf = b
	t.n++
	t.sink(rec)
}

// Count returns how many records have been folded.
func (t *TraceHasher) Count() uint64 { return t.n }

// Sum returns the chain digest so far as hex. After the stream ends
// this is the run's trace hash.
func (t *TraceHasher) Sum() string { return hex.EncodeToString(t.fold[:]) }

// captureWitness folds the reorder stage's buffered state — records
// added but not yet released — into the pipeline witness: counters
// plus an order-sensitive fnv fold over the heap array (whose layout
// is a pure function of the record stream, hence replay-stable).
func (r *Reorder) captureWitness(e *snapshot.Enc) {
	e.I64(r.watermark)
	e.U64(r.seq)
	e.Int(r.maxPending)
	e.Int(len(r.heap))
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	for i := range r.heap {
		p := &r.heap[i]
		mix(uint64(p.rec.Time))
		mix(uint64(p.rec.SnifferID))
		mix(p.seq)
		mix(uint64(len(p.rec.Frame)))
		h = fnv1aFold(h, p.rec.Frame)
	}
	e.U64(h)
}

// captureWitness folds the dedup window's live entries the same way.
func (d *Dedup) captureWitness(e *snapshot.Enc) {
	e.I64(d.watermark)
	e.I64(d.Dropped)
	e.Int(d.maxPending)
	e.Int(len(d.window) - d.head)
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	for i := d.head; i < len(d.window); i++ {
		en := &d.window[i]
		mix(uint64(en.time))
		mix(uint64(en.channel))
		mix(uint64(en.rate))
		mix(en.hash)
		h = fnv1aFold(h, en.buf)
	}
	e.U64(h)
}

// fnv1aFold continues an fnv-1a hash over b.
func fnv1aFold(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// encodePipeline builds the PIPE section: the analysis pipeline's
// position in the stream — trace-hash chain, analyzer progress
// counters, reorder heap, and (when present) dedup window.
func encodePipeline(th *TraceHasher, a *analysis.Analyzer, ro *Reorder, dd *Dedup) []byte {
	var e snapshot.Enc
	e.U64(th.n)
	e.Blob(th.fold[:])
	snap := a.Snapshot()
	e.I64(snap.Frames)
	e.I64(snap.ParseErrors)
	e.Int(snap.Channels)
	e.I64(snap.LastTime)
	ro.captureWitness(&e)
	e.Bool(dd != nil)
	if dd != nil {
		dd.captureWitness(&e)
	}
	return e.Bytes()
}
