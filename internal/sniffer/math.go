package sniffer

import "math"

func pow10(x float64) float64 { return math.Pow(10, x) }
func log10(x float64) float64 { return math.Log10(x) }
