// Package sniffer models the paper's vicinity-sniffing framework
// (Sec 4.2): a passive RFMon-mode radio at a fixed location tuned to
// one channel, capturing frames with their rate, channel, and SNR, and
// — critically — failing to capture some of them. The paper names
// three causes of unrecorded frames (Sec 4.4): bit errors in received
// frames, hardware drops under high load, and hidden terminals. All
// three emerge from this model, which lets the analysis package's
// atomicity-based estimators be validated against ground truth.
package sniffer

import (
	"math"
	"math/rand"

	"wlan80211/internal/capture"
	"wlan80211/internal/detrand"
	"wlan80211/internal/phy"
	"wlan80211/internal/sim"
)

// Config parameterizes a sniffer.
type Config struct {
	// Name labels the sniffer ("A", "B", "C" in Figure 2).
	Name string
	// ID distinguishes sniffers in merged traces.
	ID int
	// Pos is the sniffer's location.
	Pos sim.Position
	// Channel the radio is tuned to; frames on other channels are
	// invisible (each IETF sniffer was fixed to one of 1/6/11).
	Channel phy.Channel
	// SnapLen truncates captured frames (250 bytes at the IETF).
	SnapLen int
	// Env is the radio environment (defaults to phy defaults).
	Env phy.Environment
	// SensitivityDBm is the weakest signal the radio can decode;
	// transmitters below it are the sniffer's hidden terminals.
	SensitivityDBm float64
	// MaxFramesPerSec models the capture-pipeline ceiling; beyond it
	// frames drop with probability growing in the excess (the
	// "hardware limitations" loss of Sec 4.4 / Yeo et al.).
	MaxFramesPerSec int
	// Seed for the sniffer's private RNG (bit-error and overload
	// draws), independent of the simulator's randomness.
	Seed int64
}

// DefaultConfig returns a sniffer configured like the IETF laptops.
func DefaultConfig(name string, id int, pos sim.Position, ch phy.Channel) Config {
	return Config{
		Name:           name,
		ID:             id,
		Pos:            pos,
		Channel:        ch,
		SnapLen:        250,
		Env:            phy.DefaultEnvironment(),
		SensitivityDBm: -90,
		// A 2005-era PCMCIA radio + laptop capture pipeline saturated
		// well below the channel's peak frame rate; Yeo et al. (cited
		// in Sec 4.4) measured exactly this hardware drop behaviour.
		MaxFramesPerSec: 1200,
		Seed:            int64(id) + 1000,
	}
}

// Sniffer implements sim.Tap, accumulating capture records.
type Sniffer struct {
	cfg    Config
	rng    *rand.Rand
	rngSrc *detrand.Source // counted source behind rng, for snapshots

	// emit, when set, switches the sniffer into streaming mode: every
	// captured record is handed to the callback at capture time and
	// nothing is retained, so memory stays flat over arbitrarily long
	// runs. See SetEmit.
	emit func(capture.Record)

	records []capture.Record
	// arena holds all captured frame bytes back to back; each record's
	// Frame aliases a span of it. One growing buffer replaces one
	// allocation per captured frame.
	arena []byte
	// memos caches the deterministic received power per transmitter
	// (indexed by the dense node ID), replacing a path-loss
	// computation per observed frame. Power and position changes
	// (TPC, mobility) invalidate entries lazily.
	memos   []txMemo
	noiseMW float64
	// fer is the shared quantized FER table (default quantum); its
	// decisions are bit-identical to the analytic phy.FER draw.
	fer *phy.FERTable

	// Loss accounting (ground truth for validating the paper's
	// unrecorded-frame estimators).
	Seen          int64 // frames on our channel, in principle audible
	Captured      int64
	LostHidden    int64 // below sensitivity (hidden terminal)
	LostCollision int64 // overlap at the sniffer's location
	LostBitError  int64 // FER draw failed
	LostOverload  int64 // capture pipeline saturated

	curSecond int64
	curCount  int
}

// txMemo is the cached deterministic link from one transmitter to the
// sniffer. Transmit power and position changes (TPC, mobility)
// invalidate it lazily.
type txMemo struct {
	known bool
	power float64      // transmit power the memo was computed at
	pos   sim.Position // transmitter position the memo was computed at
	det   float64      // deterministic rx power, dBm
	mw    float64      // same in milliwatts
}

// New creates a sniffer.
func New(cfg Config) *Sniffer {
	if cfg.SnapLen <= 0 {
		cfg.SnapLen = 250
	}
	if cfg.MaxFramesPerSec <= 0 {
		cfg.MaxFramesPerSec = 1200
	}
	src := detrand.New(cfg.Seed)
	return &Sniffer{
		cfg:     cfg,
		rng:     rand.New(src),
		rngSrc:  src,
		noiseMW: dbmToMW(cfg.Env.NoiseFloorDBm),
		fer:     phy.SharedFERTable(0),
	}
}

// State is a sniffer's complete serializable state (streaming mode:
// captured bytes flow to the emit callback, so the stream position is
// the loss counters, the per-second overload window, and the RNG draw
// count). Part of the snapshot subsystem's replay-verified witness.
type State struct {
	ID       int
	Seed     int64
	RNGDraws uint64

	Seen          int64
	Captured      int64
	LostHidden    int64
	LostCollision int64
	LostBitError  int64
	LostOverload  int64

	CurSecond int64
	CurCount  int
}

// CaptureState snapshots the sniffer's state.
func (s *Sniffer) CaptureState() State {
	return State{
		ID: s.cfg.ID, Seed: s.cfg.Seed, RNGDraws: s.rngSrc.Draws(),
		Seen: s.Seen, Captured: s.Captured,
		LostHidden: s.LostHidden, LostCollision: s.LostCollision,
		LostBitError: s.LostBitError, LostOverload: s.LostOverload,
		CurSecond: s.curSecond, CurCount: s.curCount,
	}
}

// memoFor returns the cached deterministic link from transmitter id at
// pos with the given power, computing it on first sight (or when the
// transmitter's power or position changed).
func (s *Sniffer) memoFor(id int, power float64, pos sim.Position) *txMemo {
	for id >= len(s.memos) {
		s.memos = append(s.memos, txMemo{})
	}
	m := &s.memos[id]
	if !m.known || m.power != power || m.pos != pos {
		det := s.cfg.Env.RxPowerDBm(power, pos.Distance(s.cfg.Pos), nil)
		*m = txMemo{known: true, power: power, pos: pos, det: det, mw: dbmToMW(det)}
	}
	return m
}

// Records returns the captured trace in arrival order. In streaming
// mode (SetEmit) nothing is retained and Records stays empty.
func (s *Sniffer) Records() []capture.Record { return s.records }

// SetEmit switches the sniffer into streaming mode: every captured
// record is passed to fn as it is captured instead of being appended
// to Records, so the sniffer's memory use is independent of run
// length. The record's Frame aliases a buffer the simulator reuses —
// it is valid only during the fn call; a consumer that retains the
// record must copy the bytes. The capture decision path, loss
// accounting, and RNG stream are identical to the materializing mode,
// so a streamed run is record-for-record the same as a recorded one.
// Set before the simulation starts; records are delivered in
// observation order (non-decreasing transmission-end time), which can
// lag start-time order by up to one frame airtime.
func (s *Sniffer) SetEmit(fn func(capture.Record)) { s.emit = fn }

// Config returns the sniffer's configuration.
func (s *Sniffer) Config() Config { return s.cfg }

// ObserveTransmission implements sim.Tap.
func (s *Sniffer) ObserveTransmission(o sim.TxObservation) {
	if o.Channel != s.cfg.Channel {
		return
	}
	s.Seen++

	env := &s.cfg.Env
	rx := s.memoFor(o.FromID, o.TxPowerDBm, o.FromPos).det
	if env.ShadowingSigmaDB > 0 {
		rx += s.rng.NormFloat64() * env.ShadowingSigmaDB
	}
	if rx < s.cfg.SensitivityDBm {
		s.LostHidden++
		return
	}
	snr := env.SNRdB(rx)

	// Collision at the sniffer: interference from overlapping
	// transmissions as received here.
	if len(o.Overlapped) > 0 {
		interfMW := 0.0
		for _, it := range o.Overlapped {
			interfMW += s.memoFor(it.FromID, it.TxPowerDBm, it.FromPos).mw
		}
		sinr := rx - mwToDBm(interfMW+s.noiseMW)
		if sinr < sim.CaptureThresholdFor(o.Rate, 10) { // as at receivers
			s.LostCollision++
			return
		}
	}

	// Bit errors. The table decision is bit-identical to drawing
	// against the analytic phy.FER (and the draw comes first either
	// way), so routing through the shared quantized table changes only
	// the per-frame cost, not the capture stream.
	if u := s.rng.Float64(); s.fer.Lookup(o.WireLen, o.Rate).Lost(u, snr) {
		s.LostBitError++
		return
	}

	// Overload: past the per-second budget, drop probability rises
	// linearly with the excess.
	sec := int64(o.Time / phy.MicrosPerSecond)
	if sec != s.curSecond {
		s.curSecond, s.curCount = sec, 0
	}
	s.curCount++
	if over := s.curCount - s.cfg.MaxFramesPerSec; over > 0 {
		pDrop := float64(over) / float64(s.cfg.MaxFramesPerSec)
		if pDrop > 0.9 {
			pDrop = 0.9
		}
		if s.rng.Float64() < pDrop {
			s.LostOverload++
			return
		}
	}

	frame := o.Frame
	if len(frame) > s.cfg.SnapLen {
		frame = frame[:s.cfg.SnapLen]
	}
	if s.emit != nil {
		// Streaming mode: hand the record over without retaining
		// anything. Frame still aliases the simulator's buffer.
		s.emit(capture.Record{
			Time:      o.Time,
			Rate:      o.Rate,
			Channel:   o.Channel,
			SignalDBm: clampDBm(rx),
			NoiseDBm:  clampDBm(env.NoiseFloorDBm),
			SnifferID: s.cfg.ID,
			OrigLen:   o.WireLen,
			Frame:     frame,
		})
		s.Captured++
		return
	}
	// Copy the frame bytes into the arena (o.Frame aliases a reused
	// simulator buffer) and grow the record slice in chunks sized by
	// the capture pipeline's per-second ceiling.
	start := len(s.arena)
	s.arena = append(s.arena, frame...)
	cp := s.arena[start:len(s.arena):len(s.arena)]
	if len(s.records) == cap(s.records) {
		grow := s.cfg.MaxFramesPerSec
		if grow < len(s.records) {
			grow = len(s.records) // amortize: double at scale
		}
		next := make([]capture.Record, len(s.records), len(s.records)+grow)
		copy(next, s.records)
		s.records = next
	}
	s.records = append(s.records, capture.Record{
		Time:      o.Time,
		Rate:      o.Rate,
		Channel:   o.Channel,
		SignalDBm: clampDBm(rx),
		NoiseDBm:  clampDBm(env.NoiseFloorDBm),
		SnifferID: s.cfg.ID,
		OrigLen:   o.WireLen,
		Frame:     cp,
	})
	s.Captured++
}

// UnrecordedTruth returns the ground-truth unrecorded fraction among
// frames on the sniffer's channel.
func (s *Sniffer) UnrecordedTruth() float64 {
	if s.Seen == 0 {
		return 0
	}
	return float64(s.Seen-s.Captured) / float64(s.Seen)
}

func clampDBm(v float64) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

func dbmToMW(dbm float64) float64 {
	return math.Pow(10, dbm/10)
}

func mwToDBm(mw float64) float64 {
	return 10 * math.Log10(mw)
}
