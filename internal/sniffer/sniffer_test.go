package sniffer

import (
	"testing"

	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
	"wlan80211/internal/sim"
)

// buildScenario runs a small saturated cell with one sniffer attached
// and returns the sniffer.
func buildScenario(t *testing.T, snifferPos sim.Position, maxFPS int) (*Sniffer, *sim.Network) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Seed = 99
	net := sim.New(cfg)
	ap := net.AddAP("ap", sim.Position{X: 10, Y: 10}, phy.Channel1)
	for i := 0; i < 8; i++ {
		st := net.AddStation("s", sim.Position{X: 6 + float64(i), Y: 10}, ap, rate.NewARFFactory())
		net.StartTraffic(st, sim.ProfileWeb, 4)
	}
	sc := DefaultConfig("A", 1, snifferPos, phy.Channel1)
	if maxFPS > 0 {
		sc.MaxFramesPerSec = maxFPS
	}
	sn := New(sc)
	net.AddTap(sn)
	net.RunFor(5 * phy.MicrosPerSecond)
	return sn, net
}

func TestSnifferCapturesNearbyTraffic(t *testing.T) {
	sn, net := buildScenario(t, sim.Position{X: 10, Y: 12}, 0)
	if sn.Seen == 0 {
		t.Fatal("sniffer saw no transmissions")
	}
	if sn.Captured == 0 {
		t.Fatal("sniffer captured nothing")
	}
	if net.Stats.DataSent == 0 {
		t.Fatal("no traffic")
	}
	// A nearby sniffer should capture the vast majority.
	if frac := sn.UnrecordedTruth(); frac > 0.3 {
		t.Errorf("nearby sniffer missed %.0f%% of frames", frac*100)
	}
	// Captured frames must parse as 802.11 and carry sane metadata.
	for _, r := range sn.Records()[:10] {
		if _, err := dot11.Parse(r.Frame); err != nil {
			t.Fatalf("captured frame does not parse: %v", err)
		}
		if r.Channel != phy.Channel1 || !r.Rate.Valid() {
			t.Errorf("bad metadata: %+v", r)
		}
		if r.SNR() <= 0 {
			t.Errorf("non-positive SNR: %v", r.SNR())
		}
	}
}

func TestSnifferChannelFilter(t *testing.T) {
	cfg := sim.DefaultConfig()
	net := sim.New(cfg)
	ap := net.AddAP("ap", sim.Position{X: 10, Y: 10}, phy.Channel6)
	st := net.AddStation("s", sim.Position{X: 8, Y: 10}, ap, rate.NewARFFactory())
	sn := New(DefaultConfig("A", 1, sim.Position{X: 10, Y: 11}, phy.Channel1)) // wrong channel
	net.AddTap(sn)
	st.SendData(ap.Addr, 500)
	net.RunFor(phy.MicrosPerSecond)
	if sn.Seen != 0 || sn.Captured != 0 {
		t.Errorf("sniffer on channel 1 saw channel-6 traffic: seen=%d", sn.Seen)
	}
}

func TestSnifferHiddenTerminalLoss(t *testing.T) {
	// Sniffer placed far from the cell: most frames below sensitivity.
	sn, _ := buildScenario(t, sim.Position{X: 1500, Y: 1500}, 0)
	if sn.LostHidden == 0 {
		t.Error("distant sniffer must lose frames to range")
	}
	if sn.UnrecordedTruth() < 0.5 {
		t.Errorf("distant sniffer captured %.0f%%, expected mostly lost",
			100*(1-sn.UnrecordedTruth()))
	}
}

func TestSnifferOverloadLoss(t *testing.T) {
	// Absurdly low pipeline budget forces overload drops.
	sn, _ := buildScenario(t, sim.Position{X: 10, Y: 12}, 10)
	if sn.LostOverload == 0 {
		t.Error("overloaded sniffer must drop frames")
	}
}

func TestSnifferSnapLen(t *testing.T) {
	sn, _ := buildScenario(t, sim.Position{X: 10, Y: 12}, 0)
	sawTruncated := false
	for _, r := range sn.Records() {
		if len(r.Frame) > 250 {
			t.Fatalf("frame exceeds snap length: %d", len(r.Frame))
		}
		if r.OrigLen > 250 && len(r.Frame) == 250 {
			sawTruncated = true
		}
	}
	if !sawTruncated {
		t.Error("no snap-truncated frames observed (web frames exceed 250B)")
	}
}

func TestSnifferLossAccounting(t *testing.T) {
	sn, _ := buildScenario(t, sim.Position{X: 10, Y: 12}, 0)
	total := sn.Captured + sn.LostHidden + sn.LostCollision + sn.LostBitError + sn.LostOverload
	if total != sn.Seen {
		t.Errorf("loss accounting: %d captured+lost != %d seen", total, sn.Seen)
	}
}

func TestSnifferDefaults(t *testing.T) {
	s := New(Config{Name: "x", Channel: phy.Channel1})
	if s.Config().SnapLen != 250 {
		t.Error("snap len default")
	}
	if s.Config().MaxFramesPerSec != 1200 {
		t.Error("fps default")
	}
	if s.UnrecordedTruth() != 0 {
		t.Error("empty sniffer unrecorded truth must be 0")
	}
}

func TestClampDBm(t *testing.T) {
	if clampDBm(300) != 127 || clampDBm(-300) != -128 || clampDBm(-55) != -55 {
		t.Error("clamp broken")
	}
}
