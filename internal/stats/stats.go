// Package stats provides the streaming statistics used throughout the
// analysis: Welford mean/variance accumulators, integer histograms,
// percentile estimation over collected samples, and the
// "average-by-utilization-percentage" aggregation that underlies every
// scatter figure in the paper (Figures 6–15 all plot a per-second
// quantity averaged over all seconds at each utilization percentage).
package stats

import (
	"math"
	"sort"
)

// Welford accumulates mean and variance in one pass.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates a sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 for no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into w (parallel Welford).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Histogram counts integer-valued observations in [0, len(bins)).
// Out-of-range observations are clamped into the edge bins, so the
// total count is preserved — the paper's Figure 5(c) utilization
// histogram uses 101 bins for 0..100%.
type Histogram struct {
	bins []int64
	n    int64
}

// NewHistogram creates a histogram with n bins.
func NewHistogram(n int) *Histogram { return &Histogram{bins: make([]int64, n)} }

// Add counts one observation of value v.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.bins) {
		v = len(h.bins) - 1
	}
	h.bins[v]++
	h.n++
}

// Merge folds another histogram's counts in. Bins beyond h's range
// are clamped into h's top bin, so the total count is preserved.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for v, c := range o.bins {
		if c == 0 {
			continue
		}
		i := v
		if i >= len(h.bins) {
			i = len(h.bins) - 1
		}
		h.bins[i] += c
		h.n += c
	}
}

// Count returns the count in bin v (0 if out of range).
func (h *Histogram) Count(v int) int64 {
	if v < 0 || v >= len(h.bins) {
		return 0
	}
	return h.bins[v]
}

// N returns the total number of observations.
func (h *Histogram) N() int64 { return h.n }

// Bins returns the underlying counts (not a copy).
func (h *Histogram) Bins() []int64 { return h.bins }

// Mode returns the bin with the highest count (ties go to the lower
// bin) and its count.
func (h *Histogram) Mode() (int, int64) {
	best, bestN := 0, int64(-1)
	for i, c := range h.bins {
		if c > bestN {
			best, bestN = i, c
		}
	}
	return best, bestN
}

// CumulativeFraction returns the fraction of observations at or below
// bin v.
func (h *Histogram) CumulativeFraction(v int) float64 {
	if h.n == 0 {
		return 0
	}
	var c int64
	for i := 0; i <= v && i < len(h.bins); i++ {
		c += h.bins[i]
	}
	return float64(c) / float64(h.n)
}

// Percentile returns the p-th percentile (0..100) of sorted-copy xs.
// It uses linear interpolation between closest ranks. Empty input
// returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ByUtilization aggregates per-second samples keyed by the integer
// channel-utilization percentage of that second (0..100). Every
// scatter plot in the paper is "mean of per-second quantity Q over all
// seconds whose utilization was u%, for each u" — this type is that
// aggregation.
type ByUtilization struct {
	cells [101]Welford
}

// Add records sample v for a second whose utilization was u percent.
// u is clamped to 0..100.
func (b *ByUtilization) Add(u int, v float64) {
	if u < 0 {
		u = 0
	}
	if u > 100 {
		u = 100
	}
	b.cells[u].Add(v)
}

// Merge folds another aggregation in, cell by cell (parallel Welford).
func (b *ByUtilization) Merge(o *ByUtilization) {
	for u := range b.cells {
		b.cells[u].Merge(o.cells[u])
	}
}

// Mean returns the mean sample at utilization u and the number of
// seconds observed there.
func (b *ByUtilization) Mean(u int) (float64, int64) {
	if u < 0 || u > 100 {
		return 0, 0
	}
	return b.cells[u].Mean(), b.cells[u].N()
}

// Series returns (utilization, mean) points for every utilization
// percentage in [lo, hi] with at least minN observations — the rows a
// figure plots. The paper restricts its figures to 30–99% utilization
// (Sec 5.1).
func (b *ByUtilization) Series(lo, hi int, minN int64) (us []int, means []float64) {
	if lo < 0 {
		lo = 0
	}
	if hi > 100 {
		hi = 100
	}
	for u := lo; u <= hi; u++ {
		if b.cells[u].N() >= minN && b.cells[u].N() > 0 {
			us = append(us, u)
			means = append(means, b.cells[u].Mean())
		}
	}
	return us, means
}

// MeanOver returns the grand mean over utilizations in [lo, hi],
// weighting each second equally (not each utilization bin equally).
func (b *ByUtilization) MeanOver(lo, hi int) float64 {
	var acc Welford
	if lo < 0 {
		lo = 0
	}
	if hi > 100 {
		hi = 100
	}
	for u := lo; u <= hi; u++ {
		acc.Merge(b.cells[u])
	}
	return acc.Mean()
}

// NOver returns the number of seconds observed at utilizations in
// [lo, hi].
func (b *ByUtilization) NOver(lo, hi int) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > 100 {
		hi = 100
	}
	var n int64
	for u := lo; u <= hi; u++ {
		n += b.cells[u].N()
	}
	return n
}
