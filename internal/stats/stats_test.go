package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero value must be zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", w.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almost(w.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", w.Variance())
	}
	if !almost(w.Stddev(), math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("Stddev = %v", w.Stddev())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Error("single sample: mean 42, var 0")
	}
}

func TestWelfordMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Errorf("merged N = %d", a.N())
	}
	if !almost(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if !almost(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged var %v vs %v", a.Variance(), all.Variance())
	}
	// Merging into empty and merging empty.
	var empty Welford
	empty.Merge(a)
	if empty.N() != a.N() || !almost(empty.Mean(), a.Mean(), 1e-12) {
		t.Error("merge into empty")
	}
	before := a
	a.Merge(Welford{})
	if a != before {
		t.Error("merging empty must not change accumulator")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(101)
	h.Add(55)
	h.Add(55)
	h.Add(86)
	h.Add(-5)  // clamps to 0
	h.Add(200) // clamps to 100
	if h.N() != 5 {
		t.Errorf("N = %d", h.N())
	}
	if h.Count(55) != 2 || h.Count(86) != 1 || h.Count(0) != 1 || h.Count(100) != 1 {
		t.Error("counts wrong")
	}
	if h.Count(-1) != 0 || h.Count(101) != 0 {
		t.Error("out-of-range Count must be 0")
	}
	mode, n := h.Mode()
	if mode != 55 || n != 2 {
		t.Errorf("Mode = %d,%d", mode, n)
	}
	if got := h.CumulativeFraction(55); !almost(got, 3.0/5, 1e-12) {
		t.Errorf("CumulativeFraction(55) = %v", got)
	}
	if got := h.CumulativeFraction(100); !almost(got, 1, 1e-12) {
		t.Errorf("CumulativeFraction(100) = %v", got)
	}
	if len(h.Bins()) != 101 {
		t.Error("Bins length")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10)
	if h.CumulativeFraction(5) != 0 {
		t.Error("empty cumulative fraction must be 0")
	}
	mode, n := h.Mode()
	if mode != 0 || n != 0 {
		t.Errorf("empty Mode = %d,%d", mode, n)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {150, 5},
		{10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestByUtilization(t *testing.T) {
	var b ByUtilization
	b.Add(55, 10)
	b.Add(55, 20)
	b.Add(86, 100)
	b.Add(-3, 1)  // clamps to 0
	b.Add(300, 1) // clamps to 100
	m, n := b.Mean(55)
	if m != 15 || n != 2 {
		t.Errorf("Mean(55) = %v,%d", m, n)
	}
	if _, n := b.Mean(-1); n != 0 {
		t.Error("out-of-range Mean must be empty")
	}
	us, means := b.Series(30, 99, 1)
	if len(us) != 2 || us[0] != 55 || us[1] != 86 || means[0] != 15 || means[1] != 100 {
		t.Errorf("Series = %v %v", us, means)
	}
	// minN filter.
	us, _ = b.Series(30, 99, 2)
	if len(us) != 1 || us[0] != 55 {
		t.Errorf("Series minN: %v", us)
	}
	// MeanOver weights seconds equally: (10+20+100)/3.
	if got := b.MeanOver(30, 99); !almost(got, 130.0/3, 1e-12) {
		t.Errorf("MeanOver = %v", got)
	}
}

func TestSeriesBoundsClamp(t *testing.T) {
	var b ByUtilization
	b.Add(0, 5)
	b.Add(100, 7)
	us, _ := b.Series(-10, 200, 1)
	if len(us) != 2 || us[0] != 0 || us[1] != 100 {
		t.Errorf("clamped Series = %v", us)
	}
}

// Property: Welford mean matches naive mean.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		var sum float64
		ok := true
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			w.Add(x)
			sum += x
			n++
		}
		if n > 0 {
			ok = almost(w.Mean(), sum/float64(n), 1e-6*(1+math.Abs(sum)))
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram preserves total count under clamping.
func TestHistogramCountPreserved(t *testing.T) {
	f := func(vs []int16) bool {
		h := NewHistogram(101)
		for _, v := range vs {
			h.Add(int(v))
		}
		var total int64
		for _, c := range h.Bins() {
			total += c
		}
		return total == int64(len(vs)) && h.N() == int64(len(vs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNOver(t *testing.T) {
	var b ByUtilization
	b.Add(40, 1)
	b.Add(41, 1)
	b.Add(90, 1)
	if b.NOver(30, 60) != 2 || b.NOver(0, 100) != 3 || b.NOver(-5, 200) != 3 {
		t.Error("NOver wrong")
	}
}

// TestHistogramMerge: counts sum bin-wise, out-of-range bins clamp
// into the top bin, and N stays consistent.
func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(5)
	a.Add(1)
	a.Add(3)
	b := NewHistogram(5)
	b.Add(1)
	b.Add(4)
	a.Merge(b)
	if a.N() != 4 || a.Count(1) != 2 || a.Count(3) != 1 || a.Count(4) != 1 {
		t.Errorf("merged histogram wrong: %v (N=%d)", a.Bins(), a.N())
	}
	a.Merge(nil) // no-op
	if a.N() != 4 {
		t.Error("nil merge changed counts")
	}
	wide := NewHistogram(8)
	wide.Add(7)
	narrow := NewHistogram(5)
	narrow.Merge(wide)
	if narrow.Count(4) != 1 || narrow.N() != 1 {
		t.Error("out-of-range bin must clamp into the top bin")
	}
}

// TestByUtilizationMerge: merging per-shard aggregations equals the
// Welford merge cell by cell.
func TestByUtilizationMerge(t *testing.T) {
	var a, b ByUtilization
	a.Add(50, 1)
	a.Add(50, 3)
	a.Add(80, 10)
	b.Add(50, 5)
	b.Add(60, 7)
	a.Merge(&b)
	if m, n := a.Mean(50); n != 3 || m != 3 {
		t.Errorf("cell 50: mean=%v n=%d, want 3,3", m, n)
	}
	if m, n := a.Mean(60); n != 1 || m != 7 {
		t.Errorf("cell 60: mean=%v n=%d", m, n)
	}
	if m, n := a.Mean(80); n != 1 || m != 10 {
		t.Errorf("cell 80: mean=%v n=%d", m, n)
	}
	if a.NOver(0, 100) != 5 {
		t.Errorf("total n = %d, want 5", a.NOver(0, 100))
	}
}
