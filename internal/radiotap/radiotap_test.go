package radiotap

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"wlan80211/internal/phy"
)

func fullHeader() *Header {
	return &Header{
		TSFT: 123456789, HaveTSFT: true,
		Flags: FlagFCSAtEnd, HaveFlags: true,
		Rate: phy.Rate11Mbps, HaveRate: true,
		Channel: phy.Channel6, HaveChannel: true,
		SignalDBm: -55, HaveSignal: true,
		NoiseDBm: -96, HaveNoise: true,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := fullHeader()
	b := h.Encode()
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TSFT != h.TSFT || !got.HaveTSFT {
		t.Errorf("TSFT: %+v", got)
	}
	if got.Flags != h.Flags || !got.HaveFlags {
		t.Errorf("Flags: %+v", got)
	}
	if got.Rate != phy.Rate11Mbps || !got.HaveRate {
		t.Errorf("Rate: %+v", got)
	}
	if got.Channel != phy.Channel6 || !got.HaveChannel {
		t.Errorf("Channel: %+v", got)
	}
	if got.SignalDBm != -55 || got.NoiseDBm != -96 {
		t.Errorf("signal/noise: %+v", got)
	}
	if got.Length != len(b) {
		t.Errorf("Length = %d, want %d", got.Length, len(b))
	}
}

func TestSNR(t *testing.T) {
	h := fullHeader()
	snr, ok := h.SNR()
	if !ok || snr != 41 {
		t.Errorf("SNR = %v, %v; want 41, true", snr, ok)
	}
	h.HaveNoise = false
	if _, ok := h.SNR(); ok {
		t.Error("SNR without noise must report false")
	}
}

func TestBadFCSFlag(t *testing.T) {
	h := &Header{Flags: FlagBadFCS, HaveFlags: true}
	if !h.BadFCS() {
		t.Error("BadFCS must be true")
	}
	h.Flags = FlagFCSAtEnd
	if h.BadFCS() {
		t.Error("BadFCS must be false")
	}
	h.HaveFlags = false
	if h.BadFCS() {
		t.Error("BadFCS without flags must be false")
	}
}

func TestPartialHeaders(t *testing.T) {
	// Rate-only header (no 8-byte alignment padding needed).
	h := &Header{Rate: phy.Rate5_5Mbps, HaveRate: true}
	got, err := Decode(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.HaveRate || got.Rate != phy.Rate5_5Mbps {
		t.Errorf("rate: %+v", got)
	}
	if got.HaveTSFT || got.HaveChannel || got.HaveSignal {
		t.Error("absent fields must stay absent")
	}
	// Channel-only header exercises the 2-byte alignment path.
	h = &Header{Channel: phy.Channel11, HaveChannel: true}
	got, err = Decode(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Channel != phy.Channel11 {
		t.Errorf("channel: %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0, 0, 8}); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	if _, err := Decode([]byte{1, 0, 8, 0, 0, 0, 0, 0}); err != ErrVersion {
		t.Errorf("version: %v", err)
	}
	// Declared length longer than data.
	b := fullHeader().Encode()
	binary.LittleEndian.PutUint16(b[2:], uint16(len(b)+10))
	if _, err := Decode(b); err != ErrTruncated {
		t.Errorf("overlong: %v", err)
	}
	// Declared length shorter than the present words claim.
	h := fullHeader()
	b = h.Encode()
	binary.LittleEndian.PutUint16(b[2:], 9)
	if _, err := Decode(b[:9]); err != ErrTruncated {
		t.Errorf("fields past length: %v", err)
	}
}

func TestDecodeExtendedPresent(t *testing.T) {
	// Build a header with an extended present word (bit 31 chained) and
	// one unknown field in the second word; the decoder must skip it.
	b := make([]byte, 14)
	binary.LittleEndian.PutUint16(b[2:], uint16(len(b)))
	binary.LittleEndian.PutUint32(b[4:], 1<<bitExt|1<<bitRate)
	binary.LittleEndian.PutUint32(b[8:], 1<<bitFlags) // second word: ignored
	b[12] = phy.Rate2Mbps.RadiotapRate()              // first-word rate field
	b[13] = 0xff                                      // second-word (ignored) field
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HaveRate || got.Rate != phy.Rate2Mbps {
		t.Errorf("rate after ext word: %+v", got)
	}
	if got.HaveFlags {
		t.Error("second-word fields must not be interpreted")
	}
}

func TestDecodeSkipsUnknownFields(t *testing.T) {
	// Present: antenna (bit 12, size 1) then signal (bit 5).
	// Signal comes first in bit order.
	b := make([]byte, 10)
	binary.LittleEndian.PutUint16(b[2:], uint16(len(b)))
	binary.LittleEndian.PutUint32(b[4:], 1<<bitAntennaSignal|1<<12)
	sig := int8(-40)
	b[8] = byte(sig) // signal
	b[9] = 1         // antenna number (skipped)
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HaveSignal || got.SignalDBm != -40 {
		t.Errorf("signal: %+v", got)
	}
}

func TestEncodeAlignment(t *testing.T) {
	// TSFT must land on an 8-byte boundary; with version+len+present
	// occupying 8 bytes it starts at 8 naturally. Channel after
	// flags+rate (2 bytes) must be 2-aligned.
	h := fullHeader()
	b := h.Encode()
	if got := binary.LittleEndian.Uint64(b[8:]); got != h.TSFT {
		t.Errorf("TSFT at offset 8 = %d", got)
	}
	// flags at 16, rate at 17, channel at 18 (already even).
	if b[16] != h.Flags {
		t.Error("flags offset")
	}
	if b[17] != h.Rate.RadiotapRate() {
		t.Error("rate offset")
	}
	if got := binary.LittleEndian.Uint16(b[18:]); got != uint16(phy.Channel6.FreqMHz()) {
		t.Errorf("channel freq = %d", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(tsft uint64, flags uint8, ri uint8, ci uint8, sig, noise int8) bool {
		h := &Header{
			TSFT: tsft, HaveTSFT: true,
			Flags: flags, HaveFlags: true,
			Rate: phy.Rates[int(ri)%4], HaveRate: true,
			Channel: phy.OrthogonalChannels[int(ci)%3], HaveChannel: true,
			SignalDBm: sig, HaveSignal: true,
			NoiseDBm: noise, HaveNoise: true,
		}
		got, err := Decode(h.Encode())
		if err != nil {
			return false
		}
		return got.TSFT == tsft && got.Flags == flags &&
			got.Rate == h.Rate && got.Channel == h.Channel &&
			got.SignalDBm == sig && got.NoiseDBm == noise
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanics: arbitrary bytes must error, not panic.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked: %v", r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
