// Package radiotap implements the radiotap capture header, the
// de-facto standard envelope for 802.11 frames captured in monitor
// (RFMon) mode. The paper's sniffers recorded, per frame, the send
// rate, the channel, and the signal-to-noise ratio (Sec 4.2); this
// package carries exactly those fields plus the TSFT timestamp.
//
// Only the fields this reproduction uses are implemented, but the
// decoder skips unknown present bits correctly (including extended
// present words), so real-world radiotap captures parse too.
package radiotap

import (
	"encoding/binary"
	"errors"

	"wlan80211/internal/phy"
)

// Present-word bits (field IDs) implemented here.
const (
	bitTSFT          = 0
	bitFlags         = 1
	bitRate          = 2
	bitChannel       = 3
	bitAntennaSignal = 5
	bitAntennaNoise  = 6
	bitExt           = 31
)

// Flags-field bits.
const (
	// FlagFCSAtEnd indicates the captured frame includes the FCS.
	FlagFCSAtEnd = 0x10
	// FlagBadFCS indicates the capture hardware saw an FCS error.
	FlagBadFCS = 0x40
	// FlagShortPreamble indicates short-preamble transmission.
	FlagShortPreamble = 0x02
)

// Channel-field flags.
const (
	// ChannelCCK marks a CCK (802.11b) channel.
	ChannelCCK = 0x0020
	// Channel2GHz marks the 2.4 GHz band.
	Channel2GHz = 0x0080
)

// Decode errors.
var (
	ErrTruncated = errors.New("radiotap: header truncated")
	ErrVersion   = errors.New("radiotap: unsupported version")
)

// Header is a decoded (or to-be-encoded) radiotap header.
type Header struct {
	// TSFT is the MAC time the first bit of the frame arrived, in
	// microseconds. Valid if HaveTSFT.
	TSFT     uint64
	HaveTSFT bool

	// Flags holds the radiotap flags byte. Valid if HaveFlags.
	Flags     uint8
	HaveFlags bool

	// Rate is the transmission rate. Valid if HaveRate.
	Rate     phy.Rate
	HaveRate bool

	// Channel the frame was received on. Valid if HaveChannel.
	Channel     phy.Channel
	HaveChannel bool

	// SignalDBm and NoiseDBm give the antenna signal and noise; their
	// difference is the SNR the paper's sniffers recorded.
	SignalDBm  int8
	HaveSignal bool
	NoiseDBm   int8
	HaveNoise  bool

	// Length is the total radiotap header length in bytes (set by
	// Decode; computed by Encode).
	Length int
}

// SNR returns the signal-to-noise ratio in dB and whether both signal
// and noise were present.
func (h *Header) SNR() (float64, bool) {
	if !h.HaveSignal || !h.HaveNoise {
		return 0, false
	}
	return float64(h.SignalDBm) - float64(h.NoiseDBm), true
}

// BadFCS reports whether the capture flagged an FCS error — one of the
// paper's three causes of unrecorded frames (bit errors).
func (h *Header) BadFCS() bool { return h.HaveFlags && h.Flags&FlagBadFCS != 0 }

// align returns offset advanced to the next multiple of n.
func align(off, n int) int { return (off + n - 1) &^ (n - 1) }

// Encode serializes the header. The returned slice is the radiotap
// header only; append the 802.11 frame after it.
func (h *Header) Encode() []byte {
	var present uint32
	// Compute field layout (radiotap fields are naturally aligned and
	// appear in bit order).
	off := 8 // version(1) pad(1) len(2) present(4)
	type field struct {
		at, size int
	}
	var fTSFT, fFlags, fRate, fChan, fSig, fNoise field
	if h.HaveTSFT {
		present |= 1 << bitTSFT
		off = align(off, 8)
		fTSFT = field{off, 8}
		off += 8
	}
	if h.HaveFlags {
		present |= 1 << bitFlags
		fFlags = field{off, 1}
		off++
	}
	if h.HaveRate {
		present |= 1 << bitRate
		fRate = field{off, 1}
		off++
	}
	if h.HaveChannel {
		present |= 1 << bitChannel
		off = align(off, 2)
		fChan = field{off, 4}
		off += 4
	}
	if h.HaveSignal {
		present |= 1 << bitAntennaSignal
		fSig = field{off, 1}
		off++
	}
	if h.HaveNoise {
		present |= 1 << bitAntennaNoise
		fNoise = field{off, 1}
		off++
	}
	h.Length = off
	b := make([]byte, off)
	// b[0] = version 0, b[1] = pad.
	binary.LittleEndian.PutUint16(b[2:], uint16(off))
	binary.LittleEndian.PutUint32(b[4:], present)
	if h.HaveTSFT {
		binary.LittleEndian.PutUint64(b[fTSFT.at:], h.TSFT)
	}
	if h.HaveFlags {
		b[fFlags.at] = h.Flags
	}
	if h.HaveRate {
		b[fRate.at] = h.Rate.RadiotapRate()
	}
	if h.HaveChannel {
		binary.LittleEndian.PutUint16(b[fChan.at:], uint16(h.Channel.FreqMHz()))
		binary.LittleEndian.PutUint16(b[fChan.at+2:], ChannelCCK|Channel2GHz)
	}
	if h.HaveSignal {
		b[fSig.at] = byte(h.SignalDBm)
	}
	if h.HaveNoise {
		b[fNoise.at] = byte(h.NoiseDBm)
	}
	return b
}

// fieldSizeAlign gives (size, alignment) for radiotap field ids 0..31
// so the decoder can skip fields it does not interpret. Unknown ids
// default to size 1 / align 1, which matches the remaining defined
// single-byte fields closely enough for the captures we produce.
func fieldSizeAlign(id int) (int, int) {
	switch id {
	case bitTSFT:
		return 8, 8
	case bitFlags, bitRate:
		return 1, 1
	case bitChannel:
		return 4, 2
	case 4: // FHSS
		return 2, 2
	case bitAntennaSignal, bitAntennaNoise:
		return 1, 1
	case 7: // lock quality
		return 2, 2
	case 8, 9: // tx attenuation
		return 2, 2
	case 10: // db tx attenuation
		return 2, 2
	case 11: // dbm tx power
		return 1, 1
	case 12: // antenna
		return 1, 1
	case 13, 14: // db signal/noise
		return 1, 1
	case 15: // rx flags
		return 2, 2
	case 19: // mcs
		return 3, 1
	case 20: // ampdu
		return 8, 4
	case 21: // vht
		return 12, 2
	default:
		return 1, 1
	}
}

// Decode parses a radiotap header from data, which must begin at the
// radiotap version byte. The 802.11 frame follows at data[h.Length:].
func Decode(data []byte) (*Header, error) {
	if len(data) < 8 {
		return nil, ErrTruncated
	}
	if data[0] != 0 {
		return nil, ErrVersion
	}
	length := int(binary.LittleEndian.Uint16(data[2:]))
	if length < 8 || length > len(data) {
		return nil, ErrTruncated
	}
	// Collect present words (bit 31 chains another word).
	var words []uint32
	off := 4
	for {
		if off+4 > length {
			return nil, ErrTruncated
		}
		w := binary.LittleEndian.Uint32(data[off:])
		words = append(words, w)
		off += 4
		if w&(1<<bitExt) == 0 {
			break
		}
	}
	h := &Header{Length: length}
	for wi, w := range words {
		for bit := 0; bit < 31; bit++ {
			if w&(1<<bit) == 0 {
				continue
			}
			size, al := fieldSizeAlign(bit)
			off = align(off, al)
			if off+size > length {
				return nil, ErrTruncated
			}
			if wi == 0 { // only the first word's fields are interpreted
				switch bit {
				case bitTSFT:
					h.TSFT = binary.LittleEndian.Uint64(data[off:])
					h.HaveTSFT = true
				case bitFlags:
					h.Flags = data[off]
					h.HaveFlags = true
				case bitRate:
					if r, ok := phy.RateFromRadiotap(data[off]); ok {
						h.Rate = r
						h.HaveRate = true
					}
				case bitChannel:
					mhz := int(binary.LittleEndian.Uint16(data[off:]))
					if c, ok := phy.ChannelFromFreq(mhz); ok {
						h.Channel = c
						h.HaveChannel = true
					}
				case bitAntennaSignal:
					h.SignalDBm = int8(data[off])
					h.HaveSignal = true
				case bitAntennaNoise:
					h.NoiseDBm = int8(data[off])
					h.HaveNoise = true
				}
			}
			off += size
		}
	}
	return h, nil
}
