package phy

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestFERTableDecisionExact is the table's core contract: for any
// (u, snr, length, rate), Lost must return exactly `u < FER(...)`.
// Sweeps the full waterfall region of every rate at several lengths,
// with u drawn both uniformly and adversarially near the exact FER.
func TestFERTableDecisionExact(t *testing.T) {
	tbl := NewFERTable(DefaultFERQuantumDB)
	rng := rand.New(rand.NewSource(9))
	lengths := []int{0, 14, 20, 38, 252, 1024, 1538, 2346}
	for _, r := range append(Rates[:], GRates[:]...) {
		thr := ferZeroSNRdB(r)
		for _, n := range lengths {
			lk := tbl.Lookup(n, r)
			for snr := -4.0; snr <= thr+3; snr += 0.0613 {
				fer := FER(snr, n, r)
				// Adversarial draws at and around the exact value, plus
				// uniform ones.
				draws := []float64{
					fer, math.Nextafter(fer, 0), math.Nextafter(fer, 1),
					fer - 1e-10, fer + 1e-10, fer / 2, (1 + fer) / 2,
					rng.Float64(), rng.Float64(),
				}
				for _, u := range draws {
					if u < 0 || u >= 1 {
						continue
					}
					want := u < fer
					if got := lk.Lost(u, snr); got != want {
						t.Fatalf("Lost(%v, %v) for len=%d rate=%v = %v, want %v (fer=%g)",
							u, snr, n, r, got, want, fer)
					}
				}
			}
		}
	}
}

// TestFERTableCoarseQuantumStillExact proves the quantum is a pure
// performance knob: even an absurdly coarse 4 dB table must make
// bit-identical decisions, just via more exact-path fallbacks.
func TestFERTableCoarseQuantumStillExact(t *testing.T) {
	tbl := NewFERTable(4.0)
	rng := rand.New(rand.NewSource(41))
	for _, r := range []Rate{Rate1Mbps, Rate11Mbps, Rate6Mbps, Rate54Mbps} {
		lk := tbl.Lookup(1500, r)
		for i := 0; i < 20000; i++ {
			snr := rng.Float64()*35 - 3
			u := rng.Float64()
			want := u < FER(snr, 1500, r)
			if got := lk.Lost(u, snr); got != want {
				t.Fatalf("coarse Lost(%v, %v) rate=%v = %v, want %v", u, snr, r, got, want)
			}
		}
	}
}

// TestFERTableUnknownRate falls back to the exact path (FER == 1 below
// the infinite threshold) instead of indexing a missing column.
func TestFERTableUnknownRate(t *testing.T) {
	tbl := NewFERTable(0)
	lk := tbl.Lookup(100, Rate(777))
	if !lk.Lost(0.5, 30) {
		t.Fatalf("unknown rate should have FER 1 and lose every frame")
	}
}

// TestFERTableNegativeLength clamps like FER does.
func TestFERTableNegativeLength(t *testing.T) {
	tbl := NewFERTable(0)
	lk := tbl.Lookup(-5, Rate11Mbps)
	for snr := 0.0; snr < 20; snr += 0.31 {
		u := 0.3
		if got, want := lk.Lost(u, snr), u < FER(snr, -5, Rate11Mbps); got != want {
			t.Fatalf("negative-length Lost mismatch at snr=%v", snr)
		}
	}
}

// TestSharedFERTableRegistry returns one table per quantum and maps
// <=0 to the default.
func TestSharedFERTableRegistry(t *testing.T) {
	a := SharedFERTable(0)
	b := SharedFERTable(DefaultFERQuantumDB)
	if a != b {
		t.Fatalf("SharedFERTable(0) and SharedFERTable(default) differ")
	}
	c := SharedFERTable(0.5)
	if c == a {
		t.Fatalf("distinct quanta should get distinct tables")
	}
	if got := c.QuantumDB(); got != 0.5 {
		t.Fatalf("QuantumDB = %v, want 0.5", got)
	}
}

// TestFERTableConcurrentBuild hammers lazy column building from many
// goroutines (the engine runs Networks in parallel); run under -race
// this validates the copy-on-write publication.
func TestFERTableConcurrentBuild(t *testing.T) {
	tbl := NewFERTable(DefaultFERQuantumDB)
	var wg sync.WaitGroup
	rates := append(Rates[:], GRates[:]...)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				r := rates[rng.Intn(len(rates))]
				n := rng.Intn(2400)
				lk := tbl.Lookup(n, r)
				snr := rng.Float64() * 30
				u := rng.Float64()
				if got, want := lk.Lost(u, snr), u < FER(snr, n, r); got != want {
					t.Errorf("concurrent Lost mismatch: u=%v snr=%v len=%d rate=%v", u, snr, n, r)
					return
				}
			}
		}(int64(g) + 100)
	}
	wg.Wait()
}

// BenchmarkFER compares the direct analytic evaluation against the
// table decision on the same workload: mid-waterfall SNRs where the
// exact-zero fast path does not apply.
func BenchmarkFER(b *testing.B) {
	type sample struct {
		u, snr float64
	}
	mk := func(r Rate) []sample {
		rng := rand.New(rand.NewSource(7))
		thr := ferZeroSNRdB(r)
		s := make([]sample, 1024)
		for i := range s {
			s[i] = sample{u: rng.Float64(), snr: rng.Float64() * thr}
		}
		return s
	}
	for _, bc := range []struct {
		name string
		rate Rate
	}{{"11Mbps", Rate11Mbps}, {"54Mbps", Rate54Mbps}} {
		samples := mk(bc.rate)
		b.Run("direct/"+bc.name, func(b *testing.B) {
			var lost int
			for i := 0; i < b.N; i++ {
				s := samples[i&1023]
				if s.u < FER(s.snr, 1538, bc.rate) {
					lost++
				}
			}
			sinkInt = lost
		})
		b.Run("table/"+bc.name, func(b *testing.B) {
			lk := SharedFERTable(0).Lookup(1538, bc.rate)
			var lost int
			for i := 0; i < b.N; i++ {
				s := samples[i&1023]
				if lk.Lost(s.u, s.snr) {
					lost++
				}
			}
			sinkInt = lost
		})
	}
}

var sinkInt int
