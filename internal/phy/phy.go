// Package phy models the IEEE 802.11b physical layer — the four
// DSSS/CCK data rates, channelization in the 2.4 GHz ISM band, PLCP
// framing overhead, frame airtime, and a signal-propagation /
// frame-error model — plus the eight 802.11g ERP-OFDM rates used by
// the mixed-b/g scenario extensions.
//
// All timing in this package is expressed in integer microseconds, the
// native unit of 802.11 MAC timing (see Table 2 of Jardosh et al., IMC
// 2005). Rates are expressed in units of 100 kbps so that 5.5 Mbps is
// representable as an integer (55).
package phy

import "fmt"

// Micros is a duration or instant in integer microseconds. The MAC and
// the simulator use a monotonic microsecond clock; one second of channel
// time is exactly 1e6 Micros.
type Micros = int64

// MicrosPerSecond is the number of microseconds in one second.
const MicrosPerSecond Micros = 1_000_000

// Rate identifies an IEEE 802.11b or 802.11g data rate. The value is
// the rate in units of 100 kbps: Rate1Mbps == 10, Rate54Mbps == 540.
type Rate uint16

// The four 802.11b data rates.
const (
	Rate1Mbps   Rate = 10  // 1 Mbps DBPSK (Barker)
	Rate2Mbps   Rate = 20  // 2 Mbps DQPSK (Barker)
	Rate5_5Mbps Rate = 55  // 5.5 Mbps CCK
	Rate11Mbps  Rate = 110 // 11 Mbps CCK
)

// The eight 802.11g ERP-OFDM data rates. The paper's network (and its
// sniffers) was 802.11b-only; these exist for the mixed-b/g scenario
// extensions, where g-capable radios share the 2.4 GHz channels with
// b-only ones.
const (
	Rate6Mbps  Rate = 60  // BPSK 1/2
	Rate9Mbps  Rate = 90  // BPSK 3/4
	Rate12Mbps Rate = 120 // QPSK 1/2
	Rate18Mbps Rate = 180 // QPSK 3/4
	Rate24Mbps Rate = 240 // 16-QAM 1/2
	Rate36Mbps Rate = 360 // 16-QAM 3/4
	Rate48Mbps Rate = 480 // 64-QAM 2/3
	Rate54Mbps Rate = 540 // 64-QAM 3/4
)

// Rates lists the 802.11b rates from slowest to fastest. The paper's
// 16 size×rate analysis categories are built on this set, so it stays
// b-only; OFDM rates have no category index.
var Rates = [4]Rate{Rate1Mbps, Rate2Mbps, Rate5_5Mbps, Rate11Mbps}

// GRates lists the ERP-OFDM rates from slowest to fastest.
var GRates = [8]Rate{Rate6Mbps, Rate9Mbps, Rate12Mbps, Rate18Mbps, Rate24Mbps, Rate36Mbps, Rate48Mbps, Rate54Mbps}

// Valid reports whether r is an 802.11b DSSS/CCK or 802.11g ERP-OFDM
// rate.
func (r Rate) Valid() bool {
	switch r {
	case Rate1Mbps, Rate2Mbps, Rate5_5Mbps, Rate11Mbps:
		return true
	}
	return r.OFDM()
}

// OFDM reports whether r is an 802.11g ERP-OFDM rate (as opposed to an
// 802.11b DSSS/CCK rate). OFDM frames use different PLCP timing and
// cannot be demodulated by b-only radios.
func (r Rate) OFDM() bool {
	switch r {
	case Rate6Mbps, Rate9Mbps, Rate12Mbps, Rate18Mbps, Rate24Mbps, Rate36Mbps, Rate48Mbps, Rate54Mbps:
		return true
	}
	return false
}

// Kbps returns the rate in kilobits per second.
func (r Rate) Kbps() int { return int(r) * 100 }

// Mbps returns the rate in megabits per second.
func (r Rate) Mbps() float64 { return float64(r) / 10 }

// Index returns the position of r in Rates (0 for 1 Mbps .. 3 for
// 11 Mbps) and true, or 0 and false if r is not a valid 802.11b rate.
func (r Rate) Index() (int, bool) {
	for i, v := range Rates {
		if v == r {
			return i, true
		}
	}
	return 0, false
}

// Next returns the next faster 802.11b rate, or r itself if r is
// already 11 Mbps.
func (r Rate) Next() Rate {
	if i, ok := r.Index(); ok && i < len(Rates)-1 {
		return Rates[i+1]
	}
	return r
}

// Prev returns the next slower 802.11b rate, or r itself if r is
// already 1 Mbps.
func (r Rate) Prev() Rate {
	if i, ok := r.Index(); ok && i > 0 {
		return Rates[i-1]
	}
	return r
}

// String implements fmt.Stringer ("1 Mbps", "5.5 Mbps", ...).
func (r Rate) String() string {
	switch r {
	case Rate5_5Mbps:
		return "5.5 Mbps"
	default:
		return fmt.Sprintf("%d Mbps", int(r)/10)
	}
}

// RadiotapRate returns the rate in radiotap units of 500 kbps.
func (r Rate) RadiotapRate() uint8 { return uint8(int(r) / 5) }

// RateFromRadiotap converts a radiotap rate field (500 kbps units) to a
// Rate, reporting whether it is a valid 802.11b rate.
func RateFromRadiotap(v uint8) (Rate, bool) {
	r := Rate(int(v) * 5)
	return r, r.Valid()
}

// Channel is an IEEE 802.11b/g channel number in the 2.4 GHz band
// (1..14).
type Channel int

// The three orthogonal 2.4 GHz channels used by the IETF62 network.
const (
	Channel1  Channel = 1
	Channel6  Channel = 6
	Channel11 Channel = 11
)

// OrthogonalChannels lists the classic non-overlapping 2.4 GHz channel
// set {1, 6, 11} used throughout the paper.
var OrthogonalChannels = [3]Channel{Channel1, Channel6, Channel11}

// Valid reports whether c is a legal 2.4 GHz channel number.
func (c Channel) Valid() bool { return c >= 1 && c <= 14 }

// FreqMHz returns the channel center frequency in MHz. Channel 14 is
// the Japanese special case at 2484 MHz.
func (c Channel) FreqMHz() int {
	if c == 14 {
		return 2484
	}
	return 2407 + 5*int(c)
}

// ChannelFromFreq converts a center frequency in MHz to a channel
// number, reporting whether the frequency is a 2.4 GHz channel.
func ChannelFromFreq(mhz int) (Channel, bool) {
	if mhz == 2484 {
		return 14, true
	}
	if mhz < 2412 || mhz > 2472 || (mhz-2407)%5 != 0 {
		return 0, false
	}
	return Channel(mhz-2407) / 5, true
}

// Overlaps reports whether two DSSS channels interfere. DSSS signals
// are 22 MHz wide, so channels fewer than 5 apart overlap.
func (c Channel) Overlaps(o Channel) bool {
	d := int(c) - int(o)
	if d < 0 {
		d = -d
	}
	return d < 5
}

// String implements fmt.Stringer.
func (c Channel) String() string { return fmt.Sprintf("channel %d", int(c)) }
