package phy

// IEEE 802.11b MAC/PHY timing constants, in microseconds.
//
// These are the standard High-Rate DSSS values. Note one deliberate
// deviation recorded in DESIGN.md: the paper's prose says "each slot
// time is equal to 10 microseconds", but the 802.11b slot time is 20 µs
// (and the paper's own DIFS = SIFS + 2*slot = 50 µs is only consistent
// with a 20 µs slot). The simulator uses the standard 20 µs slot.
const (
	// SlotTime is the 802.11b slot time.
	SlotTime Micros = 20
	// SIFS is the Short Inter-Frame Space.
	SIFS Micros = 10
	// DIFS is the DCF Inter-Frame Space: SIFS + 2*SlotTime.
	DIFS Micros = SIFS + 2*SlotTime
	// EIFS is the Extended IFS used after a reception error:
	// SIFS + DIFS + ACK time at 1 Mbps.
	EIFS Micros = SIFS + DIFS + ackAirtime1Mbps

	// PLCPLongPreamble is the long PLCP preamble+header duration. All
	// 802.11b frames in this reproduction use the long preamble, which
	// is the value the paper's Table 2 uses (DPLCP = 192 µs).
	PLCPLongPreamble Micros = 192
	// PLCPShortPreamble is the optional short preamble+header duration.
	PLCPShortPreamble Micros = 96

	// ackAirtime1Mbps is the airtime of a 14-byte ACK at 1 Mbps
	// including the long PLCP preamble: 192 + 14*8 = 304.
	ackAirtime1Mbps Micros = PLCPLongPreamble + 14*8

	// OFDMPreamble is the ERP-OFDM PLCP preamble + SIGNAL duration.
	OFDMPreamble Micros = 20
	// OFDMSymbol is the OFDM symbol duration.
	OFDMSymbol Micros = 4
	// OFDMSignalExtension is the 802.11g-in-2.4-GHz quiet tail appended
	// after the last symbol.
	OFDMSignalExtension Micros = 6
)

// Contention window bounds. The paper describes MaxBO growing
// exponentially "from 31 to 255 slot times"; 802.11b's CWmax is 1023.
// The simulator follows the paper's narrower window by default (the
// network behaviour the paper reports was produced by such hardware),
// but CWMaxStandard is available for sensitivity runs.
const (
	CWMin         = 31
	CWMaxPaper    = 255
	CWMaxStandard = 1023
)

// Airtime returns the time to transmit length bytes of MAC frame
// (header + body + FCS) at rate r. DSSS/CCK rates include the long
// PLCP preamble/header, always transmitted at 1 Mbps regardless of r,
// which is why DPLCP is a fixed 192 µs; ERP-OFDM rates use the OFDM
// PLCP timing (AirtimeOFDM).
//
// The payload time is rounded up to a whole microsecond, matching the
// ceil behaviour of real hardware duration fields.
func Airtime(lengthBytes int, r Rate) Micros {
	if r.OFDM() {
		return AirtimeOFDM(lengthBytes, r)
	}
	return AirtimePreamble(lengthBytes, r, PLCPLongPreamble)
}

// AirtimeOFDM returns the ERP-OFDM airtime of length bytes at rate r:
// the 20 µs preamble+SIGNAL, the payload (16 SERVICE bits + data + 6
// tail bits) in whole 4 µs symbols of r×4 data bits each, and the 6 µs
// signal extension 802.11g requires in 2.4 GHz.
func AirtimeOFDM(lengthBytes int, r Rate) Micros {
	if lengthBytes < 0 {
		lengthBytes = 0
	}
	bitsPerSymbol := Micros(r.Kbps()) * 4 / 1000 // 54 Mbps → 216 bits
	if bitsPerSymbol == 0 {
		return OFDMPreamble + OFDMSignalExtension
	}
	bits := 16 + Micros(lengthBytes)*8 + 6
	symbols := (bits + bitsPerSymbol - 1) / bitsPerSymbol
	return OFDMPreamble + symbols*OFDMSymbol + OFDMSignalExtension
}

// AirtimePreamble is Airtime with an explicit preamble duration, for
// short-preamble experiments.
func AirtimePreamble(lengthBytes int, r Rate, preamble Micros) Micros {
	if lengthBytes < 0 {
		lengthBytes = 0
	}
	bits := Micros(lengthBytes) * 8
	kbps := Micros(r.Kbps())
	if kbps == 0 {
		return preamble
	}
	// ceil(bits * 1000 / kbps) microseconds.
	payload := (bits*1000 + kbps - 1) / kbps
	return preamble + payload
}

// AckDuration returns the airtime of an ACK control frame (14 bytes)
// at rate r.
func AckDuration(r Rate) Micros { return Airtime(14, r) }

// CtsDuration returns the airtime of a CTS control frame (14 bytes)
// at rate r.
func CtsDuration(r Rate) Micros { return Airtime(14, r) }

// RtsDuration returns the airtime of an RTS control frame (20 bytes)
// at rate r.
func RtsDuration(r Rate) Micros { return Airtime(20, r) }

// ControlRate is the rate used for control responses (ACK/CTS) and RTS
// in this reproduction: 1 Mbps, the basic rate, which yields the
// paper's Table 2 values DRTS=352 and DCTS=DACK=304.
const ControlRate = Rate1Mbps
