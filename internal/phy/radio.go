package phy

import (
	"math"
	"math/rand"
)

// This file models signal propagation and frame error behaviour: a
// log-distance path loss model mapping transmit power and distance to a
// received SNR, and per-rate SNR→BER curves for the 802.11b
// modulations (DBPSK, DQPSK, CCK). The simulator and the vicinity
// sniffer both consume this model, so frame loss due to low SNR — one
// of the paper's three unrecorded-frame causes — emerges naturally.

// Radio environment defaults (typical indoor conference hall).
const (
	// DefaultTxPowerDBm is a typical client transmit power.
	DefaultTxPowerDBm = 15.0
	// DefaultNoiseFloorDBm is the thermal-plus-interference noise floor.
	DefaultNoiseFloorDBm = -96.0
	// DefaultPathLossExponent for an open hall with people: between
	// free space (2.0) and heavily obstructed indoor (4+).
	DefaultPathLossExponent = 3.0
	// DefaultRefLossDB is path loss at the 1 m reference distance for
	// 2.4 GHz (Friis).
	DefaultRefLossDB = 40.0
	// DefaultCarrierSenseDBm is the energy-detect threshold: below
	// this, a station does not defer to the signal (hidden terminal).
	DefaultCarrierSenseDBm = -82.0
)

// Environment describes the radio propagation environment shared by
// all stations on a channel.
type Environment struct {
	// PathLossExponent is the log-distance path loss exponent.
	PathLossExponent float64
	// RefLossDB is the loss at 1 m in dB.
	RefLossDB float64
	// NoiseFloorDBm is the noise floor in dBm.
	NoiseFloorDBm float64
	// ShadowingSigmaDB is the standard deviation of log-normal
	// shadowing applied per transmission (0 disables).
	ShadowingSigmaDB float64
	// CarrierSenseDBm is the energy-detect threshold in dBm.
	CarrierSenseDBm float64
}

// DefaultEnvironment returns an Environment tuned for a crowded indoor
// conference hall.
func DefaultEnvironment() Environment {
	return Environment{
		PathLossExponent: DefaultPathLossExponent,
		RefLossDB:        DefaultRefLossDB,
		NoiseFloorDBm:    DefaultNoiseFloorDBm,
		ShadowingSigmaDB: 4.0,
		CarrierSenseDBm:  DefaultCarrierSenseDBm,
	}
}

// PathLossDB returns the deterministic path loss in dB over distance d
// meters (d is clamped to at least 1 m).
func (e Environment) PathLossDB(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return e.RefLossDB + 10*e.PathLossExponent*math.Log10(d)
}

// RxPowerDBm returns the received power in dBm for a transmission at
// txDBm over d meters, with optional shadowing drawn from rng (pass nil
// for the deterministic mean).
func (e Environment) RxPowerDBm(txDBm, d float64, rng *rand.Rand) float64 {
	p := txDBm - e.PathLossDB(d)
	if rng != nil && e.ShadowingSigmaDB > 0 {
		p += rng.NormFloat64() * e.ShadowingSigmaDB
	}
	return p
}

// SNRdB converts a received power to an SNR against the noise floor.
func (e Environment) SNRdB(rxDBm float64) float64 { return rxDBm - e.NoiseFloorDBm }

// Senses reports whether a signal of rxDBm is above the carrier-sense
// threshold, i.e. whether a station defers to it. Stations that can be
// heard but not sensed are the hidden-terminal population.
func (e Environment) Senses(rxDBm float64) bool { return rxDBm >= e.CarrierSenseDBm }

// BER returns the bit error rate at the given SNR (dB) for rate r.
//
// The curves are standard approximations for the 802.11b modulations:
//
//	1 Mbps  DBPSK:  0.5 * exp(-ebn0)
//	2 Mbps  DQPSK:  Q(sqrt(2*ebn0)) approx via 0.5*exp(-ebn0) shifted
//	5.5/11  CCK:    empirically shifted waterfall curves
//
// Eb/N0 is derived from SNR by the processing gain of each modulation
// (11 MHz chip rate over the bit rate). The exact analytic form matters
// less than the ordering: for a given SNR, higher rates have strictly
// higher BER, and each curve has the waterfall shape that makes rate
// adaptation meaningful.
func BER(snrDB float64, r Rate) float64 {
	return berLinear(math.Pow(10, snrDB/10), r)
}

// ofdmGain is the effective Eb/N0 multiplier for each ERP-OFDM rate:
// coding gain and constellation density folded into one factor,
// calibrated so the FER waterfalls sit near the SNRs commodity 802.11g
// radios need (≈8 dB for 6 Mbps up to ≈25 dB for 54 Mbps) while
// keeping the strict per-SNR ordering that makes rate adaptation
// meaningful. Zero for non-OFDM rates.
func ofdmGain(r Rate) float64 {
	switch r {
	case Rate6Mbps:
		return 4.0
	case Rate9Mbps:
		return 3.0
	case Rate12Mbps:
		return 2.0
	case Rate18Mbps:
		return 1.4
	case Rate24Mbps:
		return 0.62
	case Rate36Mbps:
		return 0.30
	case Rate48Mbps:
		return 0.13
	case Rate54Mbps:
		return 0.095
	}
	return 0
}

// berLinear is BER with the SNR already converted to linear scale, so
// a caller evaluating several rates at one SNR (FER does: the header
// rate plus the body rate) pays for the dB→linear Pow once.
func berLinear(snr float64, r Rate) float64 {
	var ebn0 float64
	switch r {
	case Rate1Mbps:
		ebn0 = snr * 11.0 // 11 MHz / 1 Mbps processing gain
	case Rate2Mbps:
		ebn0 = snr * 5.5
	case Rate5_5Mbps:
		ebn0 = snr * 2.0
	case Rate11Mbps:
		ebn0 = snr * 1.0
	default:
		g := ofdmGain(r)
		if g == 0 {
			return 1
		}
		ber := 0.5 * math.Exp(-snr*g)
		if ber > 0.5 {
			ber = 0.5
		}
		return ber
	}
	var ber float64
	switch r {
	case Rate1Mbps, Rate2Mbps:
		ber = 0.5 * math.Exp(-ebn0)
	case Rate5_5Mbps:
		// CCK-5.5: approximated as 8-ary Bi-orthogonal keying.
		ber = 0.5 * math.Exp(-ebn0*0.75)
	case Rate11Mbps:
		// CCK-11: approximated 256-ary with union bound flattening.
		ber = 0.5 * math.Exp(-ebn0*0.5)
	}
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// ferZeroSNRdB returns the SNR above which FER provably evaluates to
// exactly 0.0 at double precision for rate r, so callers can skip the
// transcendental math. Above the threshold both the header and body
// exponents satisfy c·snr_lin ≥ 40 > 53·ln2, making each BER smaller
// than 2⁻⁵⁴; then 1-BER rounds to exactly 1.0, Pow(1, n) is exactly
// 1.0, and 1 - 1·1 is exactly 0 — the same value the full computation
// produces. The thresholds carry ≈8% margin over the rounding
// boundary, far beyond any ulp error in Pow.
//
// Each DSSS/CCK body threshold dominates the 6.0 dB threshold of its
// 1 Mbps PLCP header; each OFDM body threshold dominates the 10.4 dB
// threshold of its 6 Mbps SIGNAL field (equal for 6 Mbps itself), so a
// single per-rate comparison covers both factors. The FER table
// builder and the boundary test in radio_fastpath_test.go rely on
// these exact values.
func ferZeroSNRdB(r Rate) float64 {
	switch r {
	case Rate1Mbps:
		return 6.0 // 11·snr_lin ≥ 40
	case Rate2Mbps:
		return 9.0 // 5.5·snr_lin ≥ 40
	case Rate5_5Mbps:
		return 14.5 // 1.5·snr_lin ≥ 40
	case Rate11Mbps:
		return 19.5 // 0.5·snr_lin ≥ 40
	}
	// OFDM rates: gain·snr_lin ≥ 40 at 10·log10(40/gain) dB; the same
	// ≈8% margin.
	switch r {
	case Rate6Mbps:
		return 10.4 // 4.0·snr_lin ≥ 40 at 10.0 dB
	case Rate9Mbps:
		return 11.6 // 3.0·snr_lin ≥ 40 at 11.25 dB
	case Rate12Mbps:
		return 13.4 // 2.0·snr_lin ≥ 40 at 13.0 dB
	case Rate18Mbps:
		return 14.9 // 1.4·snr_lin ≥ 40 at 14.6 dB
	case Rate24Mbps:
		return 18.5 // 0.62·snr_lin ≥ 40 at 18.1 dB
	case Rate36Mbps:
		return 21.6 // 0.30·snr_lin ≥ 40 at 21.2 dB
	case Rate48Mbps:
		return 25.3 // 0.13·snr_lin ≥ 40 at 24.9 dB
	case Rate54Mbps:
		return 26.6 // 0.095·snr_lin ≥ 40 at 26.2 dB
	}
	return math.Inf(1) // unknown rate: BER is 1, no fast path
}

// PLCP header models: a DSSS/CCK frame carries a 48-bit PLCP header
// always sent at 1 Mbps (long preamble); an ERP-OFDM frame instead
// carries a 24-bit SIGNAL field encoded with the 6 Mbps parameters
// (BPSK rate-1/2), so its header error rate follows the 6 Mbps BER
// curve.
const (
	dsssHeaderBits = 48
	ofdmSignalBits = 24
)

// headerOKLinear returns the probability that the PLCP header of a
// frame at rate r survives, with the SNR already in linear scale:
// the 48-bit 1 Mbps header for DSSS/CCK rates, the 24-bit 6 Mbps
// SIGNAL field for ERP-OFDM rates.
func headerOKLinear(snr float64, r Rate) float64 {
	if r.OFDM() {
		return math.Pow(1-berLinear(snr, Rate6Mbps), ofdmSignalBits)
	}
	return math.Pow(1-berLinear(snr, Rate1Mbps), dsssHeaderBits)
}

// FER returns the frame error rate for a frame of lengthBytes
// transmitted at rate r and received at snrDB, assuming independent
// bit errors: 1 - (1-BER)^bits. The PLCP header (1 Mbps for DSSS/CCK,
// the 6 Mbps SIGNAL field for ERP-OFDM) is included at its own, much
// lower, error rate.
func FER(snrDB float64, lengthBytes int, r Rate) float64 {
	if lengthBytes < 0 {
		lengthBytes = 0
	}
	if snrDB >= ferZeroSNRdB(r) {
		// Every rate threshold dominates its header threshold, so both
		// factors below are exactly 1 and FER is exactly 0.
		return 0
	}
	snr := math.Pow(10, snrDB/10)
	plcpOK := headerOKLinear(snr, r)
	bodyOK := math.Pow(1-berLinear(snr, r), float64(lengthBytes*8))
	return 1 - plcpOK*bodyOK
}

// MinSNRForFER returns the lowest SNR (dB, in 0.5 dB steps) at which a
// frame of lengthBytes at rate r has FER at most target. It is used by
// SNR-threshold rate adaptation.
func MinSNRForFER(target float64, lengthBytes int, r Rate) float64 {
	for snr := -10.0; snr <= 40; snr += 0.5 {
		if FER(snr, lengthBytes, r) <= target {
			return snr
		}
	}
	return 40
}
