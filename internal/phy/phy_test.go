package phy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRateValid(t *testing.T) {
	for _, r := range Rates {
		if !r.Valid() {
			t.Errorf("%v should be valid", r)
		}
	}
	// 60 and 120 became the 6/12 Mbps ERP-OFDM rates; 70 and 330 stay
	// outside both ladders.
	for _, r := range []Rate{0, 5, 15, 30, 70, 330} {
		if r.Valid() {
			t.Errorf("Rate(%d) should be invalid", r)
		}
	}
}

func TestRateConversions(t *testing.T) {
	cases := []struct {
		r    Rate
		kbps int
		mbps float64
		str  string
		rt   uint8
	}{
		{Rate1Mbps, 1000, 1, "1 Mbps", 2},
		{Rate2Mbps, 2000, 2, "2 Mbps", 4},
		{Rate5_5Mbps, 5500, 5.5, "5.5 Mbps", 11},
		{Rate11Mbps, 11000, 11, "11 Mbps", 22},
	}
	for _, c := range cases {
		if got := c.r.Kbps(); got != c.kbps {
			t.Errorf("%v.Kbps() = %d, want %d", c.r, got, c.kbps)
		}
		if got := c.r.Mbps(); got != c.mbps {
			t.Errorf("%v.Mbps() = %v, want %v", c.r, got, c.mbps)
		}
		if got := c.r.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
		if got := c.r.RadiotapRate(); got != c.rt {
			t.Errorf("%v.RadiotapRate() = %d, want %d", c.r, got, c.rt)
		}
		back, ok := RateFromRadiotap(c.rt)
		if !ok || back != c.r {
			t.Errorf("RateFromRadiotap(%d) = %v, %v", c.rt, back, ok)
		}
	}
}

func TestRateNextPrev(t *testing.T) {
	if Rate1Mbps.Prev() != Rate1Mbps {
		t.Error("1 Mbps Prev should saturate")
	}
	if Rate11Mbps.Next() != Rate11Mbps {
		t.Error("11 Mbps Next should saturate")
	}
	if Rate1Mbps.Next() != Rate2Mbps || Rate2Mbps.Next() != Rate5_5Mbps || Rate5_5Mbps.Next() != Rate11Mbps {
		t.Error("Next ladder broken")
	}
	if Rate11Mbps.Prev() != Rate5_5Mbps || Rate5_5Mbps.Prev() != Rate2Mbps || Rate2Mbps.Prev() != Rate1Mbps {
		t.Error("Prev ladder broken")
	}
}

func TestRateIndex(t *testing.T) {
	for i, r := range Rates {
		gi, ok := r.Index()
		if !ok || gi != i {
			t.Errorf("%v.Index() = %d,%v want %d,true", r, gi, ok, i)
		}
	}
	if _, ok := Rate(0).Index(); ok {
		t.Error("invalid rate should have no index")
	}
}

func TestChannelFreq(t *testing.T) {
	cases := []struct {
		c   Channel
		mhz int
	}{{1, 2412}, {6, 2437}, {11, 2462}, {13, 2472}, {14, 2484}}
	for _, c := range cases {
		if got := c.c.FreqMHz(); got != c.mhz {
			t.Errorf("%v.FreqMHz() = %d, want %d", c.c, got, c.mhz)
		}
		back, ok := ChannelFromFreq(c.mhz)
		if !ok || back != c.c {
			t.Errorf("ChannelFromFreq(%d) = %v,%v", c.mhz, back, ok)
		}
	}
	if _, ok := ChannelFromFreq(2413); ok {
		t.Error("2413 MHz is not a channel")
	}
	if _, ok := ChannelFromFreq(5180); ok {
		t.Error("5 GHz is not a 2.4 GHz channel")
	}
}

func TestChannelOverlap(t *testing.T) {
	if Channel1.Overlaps(Channel6) || Channel6.Overlaps(Channel11) || Channel1.Overlaps(Channel11) {
		t.Error("1/6/11 must be orthogonal")
	}
	if !Channel1.Overlaps(Channel(4)) || !Channel6.Overlaps(Channel6) {
		t.Error("nearby channels must overlap")
	}
}

// TestTable2Constants pins the exact delay values of the paper's
// Table 2, which the phy airtime functions must regenerate.
func TestTable2Constants(t *testing.T) {
	if SIFS != 10 {
		t.Errorf("SIFS = %d, want 10", SIFS)
	}
	if DIFS != 50 {
		t.Errorf("DIFS = %d, want 50", DIFS)
	}
	if PLCPLongPreamble != 192 {
		t.Errorf("DPLCP = %d, want 192", PLCPLongPreamble)
	}
	if got := RtsDuration(ControlRate); got != 352 {
		t.Errorf("DRTS = %d, want 352", got)
	}
	if got := CtsDuration(ControlRate); got != 304 {
		t.Errorf("DCTS = %d, want 304", got)
	}
	if got := AckDuration(ControlRate); got != 304 {
		t.Errorf("DACK = %d, want 304", got)
	}
}

func TestAirtime(t *testing.T) {
	// 1500 bytes at 11 Mbps: 192 + ceil(12000/11) = 192+1091 = 1283.
	if got := Airtime(1500, Rate11Mbps); got != 1283 {
		t.Errorf("Airtime(1500, 11) = %d, want 1283", got)
	}
	// 1500 bytes at 1 Mbps: 192 + 12000 = 12192.
	if got := Airtime(1500, Rate1Mbps); got != 12192 {
		t.Errorf("Airtime(1500, 1) = %d, want 12192", got)
	}
	// Zero/negative length degrades to just the preamble.
	if got := Airtime(0, Rate2Mbps); got != 192 {
		t.Errorf("Airtime(0) = %d, want 192", got)
	}
	if got := Airtime(-5, Rate2Mbps); got != 192 {
		t.Errorf("Airtime(-5) = %d, want 192", got)
	}
	// Short preamble variant.
	if got := AirtimePreamble(0, Rate1Mbps, PLCPShortPreamble); got != 96 {
		t.Errorf("short preamble = %d, want 96", got)
	}
}

// Property: airtime is monotone in length and antitone in rate.
func TestAirtimeMonotonicity(t *testing.T) {
	f := func(n uint16) bool {
		l := int(n % 2400)
		for i := 0; i < len(Rates)-1; i++ {
			if Airtime(l, Rates[i]) < Airtime(l, Rates[i+1]) {
				return false
			}
		}
		return Airtime(l, Rate11Mbps) <= Airtime(l+1, Rate11Mbps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathLoss(t *testing.T) {
	e := DefaultEnvironment()
	if got := e.PathLossDB(1); got != e.RefLossDB {
		t.Errorf("loss at 1 m = %v, want %v", got, e.RefLossDB)
	}
	if e.PathLossDB(10) <= e.PathLossDB(5) {
		t.Error("loss must grow with distance")
	}
	if e.PathLossDB(0.1) != e.PathLossDB(1) {
		t.Error("distance must clamp at 1 m")
	}
}

func TestRxPowerShadowing(t *testing.T) {
	e := DefaultEnvironment()
	det := e.RxPowerDBm(15, 20, nil)
	if det != 15-e.PathLossDB(20) {
		t.Errorf("deterministic rx power wrong: %v", det)
	}
	rng := rand.New(rand.NewSource(1))
	varied := false
	for i := 0; i < 32; i++ {
		if e.RxPowerDBm(15, 20, rng) != det {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("shadowing should perturb rx power")
	}
	e.ShadowingSigmaDB = 0
	if e.RxPowerDBm(15, 20, rng) != det {
		t.Error("sigma=0 must be deterministic")
	}
}

func TestBEROrdering(t *testing.T) {
	// At any SNR, faster rates must have >= BER.
	for snr := -5.0; snr <= 30; snr += 2.5 {
		for i := 0; i < len(Rates)-1; i++ {
			lo, hi := BER(snr, Rates[i]), BER(snr, Rates[i+1])
			if lo > hi {
				t.Fatalf("BER(%v, %v)=%g > BER(%v, %v)=%g", snr, Rates[i], lo, snr, Rates[i+1], hi)
			}
		}
	}
	if BER(10, Rate(99)) != 1 {
		t.Error("invalid rate must return BER 1")
	}
}

func TestBERWaterfall(t *testing.T) {
	// BER must fall with SNR and be capped at 0.5.
	for _, r := range Rates {
		if BER(-30, r) > 0.5 {
			t.Errorf("BER must cap at 0.5, got %g", BER(-30, r))
		}
		if BER(5, r) < BER(25, r) {
			t.Errorf("%v: BER must fall with SNR", r)
		}
		if BER(30, r) > 1e-6 {
			t.Errorf("%v: BER at 30 dB should be tiny, got %g", r, BER(30, r))
		}
	}
}

func TestFER(t *testing.T) {
	// Longer frames fail more; higher rates fail more; high SNR ~ 0.
	if FER(8, 1500, Rate11Mbps) <= FER(8, 100, Rate11Mbps) {
		t.Error("longer frames must have higher FER")
	}
	if FER(8, 500, Rate11Mbps) <= FER(8, 500, Rate1Mbps) {
		t.Error("faster rates must have higher FER at same SNR")
	}
	if got := FER(35, 1500, Rate11Mbps); got > 1e-3 {
		t.Errorf("FER at 35 dB should be ~0, got %g", got)
	}
	if got := FER(-20, 1500, Rate11Mbps); got < 0.99 {
		t.Errorf("FER at -20 dB should be ~1, got %g", got)
	}
	if FER(10, -4, Rate1Mbps) < 0 {
		t.Error("negative length must not panic or go negative")
	}
}

func TestFERProbabilityRange(t *testing.T) {
	f := func(s int8, n uint16, ri uint8) bool {
		snr := float64(s) / 2
		fer := FER(snr, int(n%3000), Rates[int(ri)%4])
		return fer >= 0 && fer <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinSNRForFER(t *testing.T) {
	// Faster rates need more SNR for the same FER target.
	prev := -100.0
	for _, r := range Rates {
		s := MinSNRForFER(0.1, 1000, r)
		if s < prev {
			t.Errorf("MinSNR must be nondecreasing across rates, %v: %v < %v", r, s, prev)
		}
		prev = s
		if got := FER(s, 1000, r); got > 0.1+1e-9 && s < 40 {
			t.Errorf("FER at MinSNR exceeds target: %g", got)
		}
	}
}

func TestSenses(t *testing.T) {
	e := DefaultEnvironment()
	if !e.Senses(-60) {
		t.Error("-60 dBm must be sensed")
	}
	if e.Senses(-90) {
		t.Error("-90 dBm must not be sensed (hidden terminal regime)")
	}
}
