package phy

import "testing"

// TestOFDMRateProperties pins the identity of the ERP-OFDM rate set:
// validity, OFDM classification, and exclusion from the paper's b-only
// category index.
func TestOFDMRateProperties(t *testing.T) {
	for _, r := range GRates {
		if !r.Valid() {
			t.Errorf("%v not Valid", r)
		}
		if !r.OFDM() {
			t.Errorf("%v not OFDM", r)
		}
		if _, ok := r.Index(); ok {
			t.Errorf("%v has a b-ladder index; the 16-category analysis is b-only", r)
		}
	}
	for _, r := range Rates {
		if r.OFDM() {
			t.Errorf("%v wrongly classified OFDM", r)
		}
	}
	if Rate(70).Valid() || Rate(70).OFDM() {
		t.Error("7 Mbps is not a rate")
	}
}

// TestAirtimeOFDM checks the symbol-quantized OFDM airtime against
// hand-computed values and its place in the airtime ordering.
func TestAirtimeOFDM(t *testing.T) {
	// 1500 bytes at 54 Mbps: 16+12000+6 = 12022 bits, 216 bits/symbol
	// → 56 symbols → 20 + 224 + 6 = 250 µs.
	if got := Airtime(1500, Rate54Mbps); got != 250 {
		t.Errorf("Airtime(1500, 54M) = %d, want 250", got)
	}
	// 1500 bytes at 6 Mbps: 12022 bits / 24 = 501 symbols → 20 + 2004 + 6.
	if got := Airtime(1500, Rate6Mbps); got != 2030 {
		t.Errorf("Airtime(1500, 6M) = %d, want 2030", got)
	}
	// Zero-length frame still costs preamble + one symbol (22 bits).
	if got := Airtime(0, Rate54Mbps); got != OFDMPreamble+OFDMSymbol+OFDMSignalExtension {
		t.Errorf("Airtime(0, 54M) = %d", got)
	}
	// Faster rates never take longer, and every OFDM airtime fits the
	// reorder horizon implied by 1 Mbps DSSS.
	for n := 0; n <= 2346; n += 123 {
		prev := Airtime(n, Rate6Mbps)
		for _, r := range GRates[1:] {
			cur := Airtime(n, r)
			if cur > prev {
				t.Fatalf("Airtime(%d, %v) = %d exceeds slower rate's %d", n, r, cur, prev)
			}
			prev = cur
		}
		if Airtime(n, Rate6Mbps) > Airtime(n, Rate1Mbps) {
			t.Fatalf("6 Mbps OFDM slower than 1 Mbps DSSS at %d bytes", n)
		}
	}
}

// TestOFDMFEROrdering checks the property rate adaptation rests on:
// at any SNR, a faster OFDM rate never has a lower FER, and every
// curve is non-increasing in SNR.
func TestOFDMFEROrdering(t *testing.T) {
	const n = 1000
	for snr := -5.0; snr <= 35; snr += 0.25 {
		prev := -1.0
		for _, r := range GRates {
			f := FER(snr, n, r)
			if f < prev {
				t.Fatalf("FER(%v, %v) = %g below slower rate's %g", snr, r, f, prev)
			}
			prev = f
		}
	}
	for _, r := range GRates {
		prev := 2.0
		for snr := -5.0; snr <= 35; snr += 0.25 {
			f := FER(snr, n, r)
			if f > prev {
				t.Fatalf("FER(%v, %v) increased with SNR", snr, r)
			}
			prev = f
		}
	}
}
