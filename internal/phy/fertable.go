package phy

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements quantized FER tables: precomputed per-(rate,
// SNR-quantum, length-quantum) frame error rates that answer the hot
// per-delivery question — "does this uniform draw u land below
// FER(snr, length, rate)?" — without the exp/pow transcendental math
// of the analytic model on the vast majority of calls.
//
// The design is exact, not approximate. FER is monotone: it falls as
// SNR rises and rises with frame length, so the exact value for any
// (snr, length) is bracketed by the table entries at the enclosing
// SNR-bin and length-bin edges. A delivery draw u outside the bracket
// is decided purely from the table; a draw inside it falls back to the
// full analytic FER. The quantum therefore never changes simulated
// behaviour — traces stay bit-identical to the direct evaluation at
// ANY resolution — it only moves the fallback frequency, i.e. how
// often the transcendental math still runs. (The exact-zero fast path
// of ferZeroSNRdB bounds the table domain from above: beyond each
// rate's threshold no table is consulted at all.)
//
// Tables are shared process-wide per quantum (FER is a pure function
// of snr/length/rate, independent of the radio environment), so the
// build cost of a column amortizes across every Network, sniffer, and
// experiment run in the process. Columns are built lazily per
// (rate, length-edge) under a mutex and published copy-on-write
// through an atomic pointer; lookups are two slice indexes and never
// block.

// DefaultFERQuantumDB is the default SNR bin width of shared FER
// tables: fine enough that bracket fallbacks are rare across the
// waterfall region, coarse enough that a column is a few hundred
// entries.
const DefaultFERQuantumDB = 0.25

// ferLenStepBytes is the frame-length bin width. Control frames (ACK,
// CTS at 14 bytes; RTS at 20) land in the first bin, data frames span
// a handful of bins; a finer step narrows brackets (fewer exact
// fallbacks) at the cost of more lazily-built columns.
const ferLenStepBytes = 16

// ferGuard widens the table bracket before a decision is trusted, so
// ulp-level wobble between a column entry (FER evaluated at a bin
// edge) and the analytic FER at an interior point can never flip an
// outcome the exact path would decide differently. FER's factors are
// built from faithfully-rounded Exp/Pow, so their true error is a few
// ulps (~1e-16 relative); the margin here is seven orders of magnitude
// wider and still vanishingly unlikely to catch a uniform draw.
func ferGuard(fer float64) float64 { return 1e-12 + 1e-9*fer }

// ferRateIndex maps every valid Rate to a dense table index.
var ferRateIndex = map[Rate]int{
	Rate1Mbps: 0, Rate2Mbps: 1, Rate5_5Mbps: 2, Rate11Mbps: 3,
	Rate6Mbps: 4, Rate9Mbps: 5, Rate12Mbps: 6, Rate18Mbps: 7,
	Rate24Mbps: 8, Rate36Mbps: 9, Rate48Mbps: 10, Rate54Mbps: 11,
}

const ferNumRates = 12

// ferColumn holds exact FER values for one (rate, length-edge) pair at
// every SNR-bin edge: fer[i] = FER(i·quantum, lenBytes, rate).
// Entries at or beyond the rate's zero threshold are exactly 0.
// Columns are immutable once published.
type ferColumn struct {
	fer []float64
}

// ferTableState is the immutable published state of a table:
// cols[rateIdx][lenEdge] is nil until that column has been built.
type ferTableState struct {
	cols [ferNumRates][]*ferColumn
}

// FERTable answers frame-error Bernoulli decisions from quantized
// exact-FER columns with an exact-math fallback for draws that land
// inside a bracket. The zero value is not usable; construct with
// NewFERTable or SharedFERTable. A table is safe for concurrent use.
type FERTable struct {
	quantumDB float64
	inv       float64 // 1 / quantumDB

	mu    sync.Mutex // serializes column builds
	state atomic.Pointer[ferTableState]
}

// NewFERTable returns an empty table with the given SNR bin width in
// dB (values <= 0 select DefaultFERQuantumDB). Columns populate
// lazily as (rate, length) pairs are first queried.
func NewFERTable(quantumDB float64) *FERTable {
	if quantumDB <= 0 {
		quantumDB = DefaultFERQuantumDB
	}
	t := &FERTable{quantumDB: quantumDB, inv: 1 / quantumDB}
	t.state.Store(&ferTableState{})
	return t
}

// QuantumDB returns the table's SNR bin width in dB.
func (t *FERTable) QuantumDB() float64 { return t.quantumDB }

// sharedTables is the process-wide table registry, keyed by quantum.
var (
	sharedMu     sync.Mutex
	sharedTables = map[float64]*FERTable{}
)

// SharedFERTable returns the process-wide table for the given quantum
// (<= 0 selects DefaultFERQuantumDB), creating it on first use. All
// simulations and sniffers sharing a quantum share one lazily-built
// column set, so steady-state runs build no columns at all.
func SharedFERTable(quantumDB float64) *FERTable {
	if quantumDB <= 0 {
		quantumDB = DefaultFERQuantumDB
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	t, ok := sharedTables[quantumDB]
	if !ok {
		t = NewFERTable(quantumDB)
		sharedTables[quantumDB] = t
	}
	return t
}

// FERLookup is one (rate, wire length) slice through a table: the two
// length-edge columns enclosing the length, plus the cached zero
// threshold. It is a value type fetched once per transmission and
// consulted once per receiver.
type FERLookup struct {
	lo, hi    []float64 // columns at the enclosing length edges (lo <= len <= hi)
	inv       float64
	zeroSNRdB float64
	lenBytes  int
	rate      Rate
}

// Lookup returns the decision slice for frames of lengthBytes at rate
// r, building the two enclosing length-edge columns if this is the
// first query for them.
func (t *FERTable) Lookup(lengthBytes int, r Rate) FERLookup {
	if lengthBytes < 0 {
		lengthBytes = 0
	}
	ri, ok := ferRateIndex[r]
	if !ok {
		// Unknown rate: BER is 1, FER is 1 — no columns; Lost falls
		// back to the exact formula.
		return FERLookup{zeroSNRdB: math.Inf(1), lenBytes: lengthBytes, rate: r}
	}
	loEdge := lengthBytes / ferLenStepBytes
	hiEdge := (lengthBytes + ferLenStepBytes - 1) / ferLenStepBytes
	st := t.state.Load()
	var lo, hi *ferColumn
	if cols := st.cols[ri]; hiEdge < len(cols) {
		lo, hi = cols[loEdge], cols[hiEdge]
	}
	if lo == nil || hi == nil {
		lo, hi = t.buildColumns(ri, r, loEdge, hiEdge)
	}
	return FERLookup{
		lo: lo.fer, hi: hi.fer, inv: t.inv,
		zeroSNRdB: ferZeroSNRdB(r), lenBytes: lengthBytes, rate: r,
	}
}

// buildColumns computes (and publishes copy-on-write) the columns for
// the two length edges, returning them. Racing builders are
// serialized by mu; losers reuse the winner's columns.
func (t *FERTable) buildColumns(ri int, r Rate, loEdge, hiEdge int) (lo, hi *ferColumn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state.Load()
	next := &ferTableState{cols: st.cols}
	cols := next.cols[ri]
	if hiEdge >= len(cols) {
		grown := make([]*ferColumn, hiEdge+1)
		copy(grown, cols)
		cols = grown
	} else {
		cols = append([]*ferColumn(nil), cols...)
	}
	for _, e := range [2]int{loEdge, hiEdge} {
		if cols[e] == nil {
			cols[e] = t.buildColumn(r, e*ferLenStepBytes)
		}
	}
	next.cols[ri] = cols
	t.state.Store(next)
	return cols[loEdge], cols[hiEdge]
}

// buildColumn evaluates the exact analytic FER at every SNR-bin edge
// from 0 dB up to just past the rate's zero threshold, for one frame
// length.
func (t *FERTable) buildColumn(r Rate, lenBytes int) *ferColumn {
	edges := int(math.Ceil(ferZeroSNRdB(r)*t.inv)) + 2
	c := &ferColumn{fer: make([]float64, edges)}
	for i := range c.fer {
		c.fer[i] = FER(float64(i)*t.quantumDB, lenBytes, r)
	}
	// The bracket logic relies on the column being non-increasing;
	// FER's analytic form is monotone in SNR, so this is a build-time
	// sanity assertion, not a runtime concern.
	if !sort.SliceIsSorted(c.fer, func(a, b int) bool { return c.fer[a] > c.fer[b] }) &&
		!isNonIncreasing(c.fer) {
		panic("phy: FER column not monotone")
	}
	return c
}

func isNonIncreasing(v []float64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] > v[i-1] {
			return false
		}
	}
	return true
}

// Lost reports whether a frame is lost to residual bit errors — the
// exact same outcome as `u < FER(snrDB, lenBytes, rate)` with u drawn
// uniformly from [0, 1) — deciding from the quantized bracket when u
// falls clear of it and from the analytic FER when it does not.
func (l FERLookup) Lost(u, snrDB float64) bool {
	if snrDB >= l.zeroSNRdB {
		return false // FER is exactly 0 (ferZeroSNRdB fast path)
	}
	if snrDB < 0 || l.lo == nil {
		// Below the table domain (callers gate on snr > 0; sniffers can
		// stray below) or an unknown rate: exact path.
		return u < FER(snrDB, l.lenBytes, l.rate)
	}
	i := int(snrDB * l.inv)
	if i+1 >= len(l.lo) {
		// Unreachable: snrDB < zeroSNRdB keeps i inside the column.
		// Defensive against float edge rounding.
		return u < FER(snrDB, l.lenBytes, l.rate)
	}
	// FER is monotone (falls with SNR, rises with length), so the
	// exact value is bracketed by [lo at the upper SNR edge, hi at the
	// lower SNR edge].
	ferMin := l.lo[i+1]
	ferMax := l.hi[i]
	if u < ferMin-ferGuard(ferMin) {
		return true
	}
	if u >= ferMax+ferGuard(ferMax) {
		return false
	}
	return u < FER(snrDB, l.lenBytes, l.rate)
}
