package phy

import (
	"math"
	"testing"
)

// ferFull is the FER formula without the zero fast path, for proving
// the fast path returns bit-identical values.
func ferFull(snrDB float64, lengthBytes int, r Rate) float64 {
	if lengthBytes < 0 {
		lengthBytes = 0
	}
	snr := math.Pow(10, snrDB/10)
	plcpOK := math.Pow(1-berLinear(snr, Rate1Mbps), 48)
	bodyOK := math.Pow(1-berLinear(snr, r), float64(lengthBytes*8))
	return 1 - plcpOK*bodyOK
}

// TestFERFastPathBitIdentical sweeps SNR across each rate's fast-path
// threshold and asserts FER matches the full computation exactly —
// above the threshold both must be exactly 0, below they must agree
// bit for bit. The simulator's golden-trace guarantee rests on this.
func TestFERFastPathBitIdentical(t *testing.T) {
	lengths := []int{0, 14, 250, 1500, 4096}
	for _, r := range append(Rates[:], GRates[:]...) {
		thr := ferZeroSNRdB(r)
		for snr := thr - 8; snr <= thr+12; snr += 0.097 {
			for _, n := range lengths {
				got := FER(snr, n, r)
				want := ferFull(snr, n, r)
				if got != want {
					t.Fatalf("FER(%v, %d, %v) = %g, full = %g", snr, n, r, got, want)
				}
				if snr >= thr && got != 0 {
					t.Fatalf("FER(%v, %d, %v) = %g above fast-path threshold %v, want exactly 0",
						snr, n, r, got, thr)
				}
			}
		}
	}
}

// TestBERMatchesBerLinear pins the exported BER to the shared linear
// helper.
func TestBERMatchesBerLinear(t *testing.T) {
	for _, r := range Rates {
		for snr := -10.0; snr <= 40; snr += 0.5 {
			if BER(snr, r) != berLinear(math.Pow(10, snr/10), r) {
				t.Fatalf("BER(%v, %v) diverged from berLinear", snr, r)
			}
		}
	}
}
