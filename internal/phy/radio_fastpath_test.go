package phy

import (
	"math"
	"testing"
)

// ferFull is the FER formula without the zero fast path, for proving
// the fast path returns bit-identical values. It mirrors the per-family
// PLCP models: 48-bit 1 Mbps header for DSSS/CCK, 24-bit 6 Mbps SIGNAL
// field for ERP-OFDM.
func ferFull(snrDB float64, lengthBytes int, r Rate) float64 {
	if lengthBytes < 0 {
		lengthBytes = 0
	}
	snr := math.Pow(10, snrDB/10)
	var plcpOK float64
	if r.OFDM() {
		plcpOK = math.Pow(1-berLinear(snr, Rate6Mbps), 24)
	} else {
		plcpOK = math.Pow(1-berLinear(snr, Rate1Mbps), 48)
	}
	bodyOK := math.Pow(1-berLinear(snr, r), float64(lengthBytes*8))
	return 1 - plcpOK*bodyOK
}

// TestFERFastPathBitIdentical sweeps SNR across each rate's fast-path
// threshold and asserts FER matches the full computation exactly —
// above the threshold both must be exactly 0, below they must agree
// bit for bit. The simulator's golden-trace guarantee rests on this.
func TestFERFastPathBitIdentical(t *testing.T) {
	lengths := []int{0, 14, 250, 1500, 4096}
	for _, r := range append(Rates[:], GRates[:]...) {
		thr := ferZeroSNRdB(r)
		for snr := thr - 8; snr <= thr+12; snr += 0.097 {
			for _, n := range lengths {
				got := FER(snr, n, r)
				want := ferFull(snr, n, r)
				if got != want {
					t.Fatalf("FER(%v, %d, %v) = %g, full = %g", snr, n, r, got, want)
				}
				if snr >= thr && got != 0 {
					t.Fatalf("FER(%v, %d, %v) = %g above fast-path threshold %v, want exactly 0",
						snr, n, r, got, thr)
				}
			}
		}
	}
}

// TestFERZeroBoundary exhaustively audits every rate's ferZeroSNRdB
// threshold against the per-family header models: FER must be exactly
// 0.0 at and above the threshold (the fast path and the FER table
// builder both rely on this), and strictly positive a margin below it.
// The margin is 1.0 dB: at threshold−0.5 the 1 Mbps exponent
// (11·snr_lin ≈ 39) can still round (1−BER) to exactly 1.0, so 0.5 dB
// is inside the rounding boundary's slack; 1.0 dB is comfortably
// outside it for every rate.
func TestFERZeroBoundary(t *testing.T) {
	lengths := []int{0, 14, 1500, 2346}
	for _, r := range append(Rates[:], GRates[:]...) {
		thr := ferZeroSNRdB(r)
		for _, above := range []float64{0, 0.25, 5, 20} {
			for _, n := range lengths {
				if got := FER(thr+above, n, r); got != 0 {
					t.Errorf("FER(%v+%v, %d, %v) = %g, want exactly 0", thr, above, n, r, got)
				}
			}
		}
		if got := FER(thr-1.0, 1500, r); !(got > 0) {
			t.Errorf("FER(%v-1.0, 1500, %v) = %g, want > 0", thr, r, got)
		}
		// Header dominance: at the body threshold the header factor must
		// itself already be exactly 1, otherwise the single per-rate
		// comparison in FER's fast path would be wrong. Checked at the
		// threshold with zero body bits so only the header contributes.
		if got := FER(thr, 0, r); got != 0 {
			t.Errorf("header factor at threshold: FER(%v, 0, %v) = %g, want exactly 0", thr, r, got)
		}
	}
}

// TestOFDMHeaderModel pins the OFDM PLCP fix: an ERP-OFDM frame's
// header follows the 24-bit 6 Mbps SIGNAL-field model, not the 48-bit
// DSSS header, so a zero-length OFDM frame's FER equals
// 1-(1-BER6)^24 and differs from the old 1 Mbps model.
func TestOFDMHeaderModel(t *testing.T) {
	const snrDB = 5.0
	snr := math.Pow(10, snrDB/10)
	for _, r := range GRates {
		want := 1 - math.Pow(1-berLinear(snr, Rate6Mbps), 24)
		if got := FER(snrDB, 0, r); got != want {
			t.Errorf("FER(%v, 0, %v) = %g, want SIGNAL-field model %g", snrDB, r, got, want)
		}
		old := 1 - math.Pow(1-berLinear(snr, Rate1Mbps), 48)
		if got := FER(snrDB, 0, r); got == old {
			t.Errorf("FER(%v, 0, %v) still matches the old DSSS header model", snrDB, r)
		}
	}
	// DSSS/CCK rates keep the 48-bit 1 Mbps header.
	for _, r := range Rates {
		want := 1 - math.Pow(1-berLinear(snr, Rate1Mbps), 48)
		if got := FER(snrDB, 0, r); got != want {
			t.Errorf("FER(%v, 0, %v) = %g, want DSSS header model %g", snrDB, r, got, want)
		}
	}
}

// TestBERMatchesBerLinear pins the exported BER to the shared linear
// helper.
func TestBERMatchesBerLinear(t *testing.T) {
	for _, r := range Rates {
		for snr := -10.0; snr <= 40; snr += 0.5 {
			if BER(snr, r) != berLinear(math.Pow(10, snr/10), r) {
				t.Fatalf("BER(%v, %v) diverged from berLinear", snr, r)
			}
		}
	}
}
