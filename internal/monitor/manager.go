package monitor

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrMaxSessions is returned when creating a session would exceed the
// manager's cap (the API maps it to 429).
var ErrMaxSessions = errors.New("monitor: session limit reached")

// ErrNotFound is returned for an unknown session ID (mapped to 404).
var ErrNotFound = errors.New("monitor: no such session")

// DefaultMaxSessions caps concurrent sessions when the daemon's flag
// does not.
const DefaultMaxSessions = 8

// Manager owns the daemon's sessions: creation behind the cap,
// lookup, stop/delete, and the SIGTERM drain. Finished sessions stay
// listed (their windows and alert history remain queryable) and count
// toward the cap until deleted.
type Manager struct {
	ctx context.Context
	max int

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string // creation order, for stable listings
	nextID   int
	closed   bool

	// defWindow, when set, is applied to configs that leave WindowSec
	// zero (the daemon's -window flag).
	defWindow int
}

// NewManager builds a manager whose sessions live within ctx; maxSessions
// <= 0 selects DefaultMaxSessions.
func NewManager(ctx context.Context, maxSessions int) *Manager {
	if maxSessions <= 0 {
		maxSessions = DefaultMaxSessions
	}
	return &Manager{ctx: ctx, max: maxSessions, sessions: make(map[string]*Session)}
}

// Max reports the session cap.
func (m *Manager) Max() int { return m.max }

// SetDefaultWindow sets the history depth applied to sessions that do
// not choose their own. Call before serving requests.
func (m *Manager) SetDefaultWindow(sec int) {
	if sec > 0 {
		m.defWindow = sec
	}
}

// Create validates cfg, starts the session, and registers it.
func (m *Manager) Create(cfg Config) (*Session, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errors.New("monitor: manager shut down")
	}
	if len(m.sessions) >= m.max {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d active, max %d; delete one first)", ErrMaxSessions, len(m.sessions), m.max)
	}
	m.nextID++
	id := fmt.Sprintf("s%d", m.nextID)
	if cfg.WindowSec == 0 {
		cfg.WindowSec = m.defWindow
	}
	m.mu.Unlock()

	// Session construction (scenario build, pcap stat) runs outside
	// the lock; re-check the cap when registering.
	s, err := newSession(m.ctx, id, cfg)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed || len(m.sessions) >= m.max {
		closed := m.closed
		m.mu.Unlock()
		s.Stop()
		if closed {
			return nil, errors.New("monitor: manager shut down")
		}
		return nil, fmt.Errorf("%w (%d active, max %d; delete one first)", ErrMaxSessions, len(m.sessions), m.max)
	}
	m.sessions[id] = s
	m.order = append(m.order, id)
	m.mu.Unlock()
	return s, nil
}

// Get returns the session or ErrNotFound.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s, nil
}

// List returns sessions in creation order.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, id := range m.order {
		if s, ok := m.sessions[id]; ok {
			out = append(out, s)
		}
	}
	return out
}

// Delete stops the session (draining its pipeline) and removes it.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(m.sessions, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	s.Stop()
	return nil
}

// Close stops every session and rejects further creation — the
// graceful-drain path for SIGTERM. Blocks until all pumps settle.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			s.Stop()
		}(s)
	}
	wg.Wait()
}
