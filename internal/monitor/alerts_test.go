package monitor

import (
	"strings"
	"testing"

	"wlan80211/internal/analysis"
	"wlan80211/internal/phy"
)

// feedSecond closes one second with the given busy fraction and runs
// the engine against it.
func feedSecond(w *Window, e *AlertEngine, sec int64, busyPct float64) {
	if busyPct > 0 {
		cbt := phy.Micros(busyPct / 100 * float64(phy.MicrosPerSecond))
		w.Observe(ev(sec, analysis.KindData, cbt, 1000, phy.Channel1))
	}
	w.CloseSecond(sec)
	e.Evaluate(w, sec)
}

func utilRule(raise, clear float64, window, cooldown int) Rule {
	return Rule{
		Name: "util-high", Metric: "utilization_pct", Op: ">=",
		Raise: raise, Clear: clear, WindowSec: window, CooldownSec: cooldown,
	}
}

func TestAlertRaiseAndHysteresisClear(t *testing.T) {
	e, err := NewAlertEngine([]Rule{utilRule(50, 20, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWindow(10)

	feedSecond(w, e, 0, 10) // below raise
	if st := e.Status()[0]; st.Active {
		t.Fatal("raised below threshold")
	}
	feedSecond(w, e, 1, 60) // crosses raise
	if st := e.Status()[0]; !st.Active || st.Since != 1 {
		t.Fatalf("not raised at 60%%: %+v", st)
	}
	// 30% is under the raise threshold but above clear: hysteresis
	// holds the alert.
	feedSecond(w, e, 2, 30)
	if st := e.Status()[0]; !st.Active {
		t.Fatal("hysteresis band did not hold the alert")
	}
	feedSecond(w, e, 3, 10) // below clear
	if st := e.Status()[0]; st.Active {
		t.Fatal("did not clear below the clear threshold")
	}

	h := e.History()
	if len(h) != 2 || h[0].State != StateRaised || h[1].State != StateCleared {
		t.Fatalf("history %+v, want raise then clear", h)
	}
	if h[0].Second != 1 || h[1].Second != 3 {
		t.Fatalf("transition seconds %d,%d, want 1,3", h[0].Second, h[1].Second)
	}
}

func TestAlertCooldown(t *testing.T) {
	e, err := NewAlertEngine([]Rule{utilRule(50, 20, 1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWindow(10)
	feedSecond(w, e, 0, 60) // raise
	feedSecond(w, e, 1, 5)  // clear at second 1
	feedSecond(w, e, 2, 60) // within cooldown: suppressed
	if st := e.Status()[0]; st.Active {
		t.Fatal("re-raised inside the cooldown")
	}
	feedSecond(w, e, 3, 5)
	feedSecond(w, e, 4, 60) // cooldown (1+3) expired
	if st := e.Status()[0]; !st.Active {
		t.Fatal("cooldown expiry did not allow the re-raise")
	}
}

func TestAlertLowWatermarkOp(t *testing.T) {
	// "<=" alerts on low values: goodput collapsing under congestion.
	e, err := NewAlertEngine([]Rule{{
		Name: "goodput-low", Metric: "goodput_mbps", Op: "<=",
		Raise: 0.001, Clear: 0.002, WindowSec: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWindow(10)
	// Empty second: goodput 0 <= raise → alert.
	feedSecond(w, e, 0, 0)
	if st := e.Status()[0]; !st.Active {
		t.Fatal("low-watermark rule did not raise on zero goodput")
	}
}

func TestAlertRuleValidation(t *testing.T) {
	bad := []Rule{
		{Name: "", Metric: "utilization_pct", Op: ">=", Raise: 1, Clear: 0},
		{Name: "x", Metric: "nope", Op: ">=", Raise: 1, Clear: 0},
		{Name: "x", Metric: "utilization_pct", Op: "==", Raise: 1, Clear: 0},
		// Inverted hysteresis: clear above raise for >=.
		{Name: "x", Metric: "utilization_pct", Op: ">=", Raise: 10, Clear: 20},
		// Inverted for <=.
		{Name: "x", Metric: "goodput_mbps", Op: "<=", Raise: 20, Clear: 10},
		{Name: "x", Metric: "utilization_pct", Op: ">=", Raise: 1, Clear: 0, WindowSec: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %d validated: %+v", i, r)
		}
	}
	if _, err := NewAlertEngine([]Rule{utilRule(50, 20, 1, 0), utilRule(60, 30, 1, 0)}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate rule names accepted: %v", err)
	}
}

func TestAlertOutOfOrderSecondsIdempotent(t *testing.T) {
	e, err := NewAlertEngine([]Rule{utilRule(50, 20, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWindow(10)
	feedSecond(w, e, 0, 60)
	// A lagging channel shard re-evaluates an older second: no
	// duplicate transition.
	e.Evaluate(w, 0)
	if h := e.History(); len(h) != 1 {
		t.Fatalf("%d events after duplicate evaluation, want 1", len(h))
	}
}
