package monitor

import (
	"fmt"
	"sync"
)

// Rule is one threshold alert definition evaluated against a
// session's rolling window every time a second closes. Hysteresis:
// for Op ">=" the alert raises when the windowed value reaches Raise
// and clears only once it falls below Clear (Clear <= Raise); for
// "<=" the comparisons mirror (raises at or below Raise, clears above
// Clear, Clear >= Raise). CooldownSec suppresses a re-raise for that
// many trace seconds after a clear, so a value oscillating around the
// threshold cannot flap the alert every second.
type Rule struct {
	// Name identifies the rule in alert events (unique per session).
	Name string `json:"name"`
	// Metric selects the windowed value: "utilization_pct",
	// "retry_rate_pct", "throughput_mbps", "goodput_mbps", or
	// "frames_per_sec".
	Metric string `json:"metric"`
	// Op is ">=" (alert on high values) or "<=" (alert on low).
	Op string `json:"op"`
	// Raise and Clear are the hysteresis thresholds.
	Raise float64 `json:"raise"`
	Clear float64 `json:"clear"`
	// WindowSec is the aggregation window the rule evaluates over
	// (defaults to DefaultMetricsWindowSec).
	WindowSec int `json:"window_sec,omitempty"`
	// CooldownSec suppresses re-raising for this many seconds after a
	// clear.
	CooldownSec int `json:"cooldown_sec,omitempty"`
}

// Validate checks the rule is well-formed and its thresholds are
// ordered for hysteresis rather than against it.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("alert rule: name required")
	}
	switch r.Metric {
	case "utilization_pct", "retry_rate_pct", "throughput_mbps", "goodput_mbps", "frames_per_sec":
	default:
		return fmt.Errorf("alert rule %q: unknown metric %q", r.Name, r.Metric)
	}
	switch r.Op {
	case ">=":
		if r.Clear > r.Raise {
			return fmt.Errorf("alert rule %q: clear %g above raise %g inverts hysteresis for >=", r.Name, r.Clear, r.Raise)
		}
	case "<=":
		if r.Clear < r.Raise {
			return fmt.Errorf("alert rule %q: clear %g below raise %g inverts hysteresis for <=", r.Name, r.Clear, r.Raise)
		}
	default:
		return fmt.Errorf("alert rule %q: op must be \">=\" or \"<=\", got %q", r.Name, r.Op)
	}
	if r.WindowSec < 0 || r.CooldownSec < 0 {
		return fmt.Errorf("alert rule %q: negative window or cooldown", r.Name)
	}
	return nil
}

// value extracts the rule's metric from a window aggregate.
func (r Rule) value(m WindowMetrics) float64 {
	switch r.Metric {
	case "utilization_pct":
		return m.UtilizationPct
	case "retry_rate_pct":
		return m.RetryRatePct
	case "throughput_mbps":
		return m.ThroughputMbps
	case "goodput_mbps":
		return m.GoodputMbps
	case "frames_per_sec":
		return m.FramesPerSec
	}
	return 0
}

// Alert states.
const (
	StateRaised  = "raised"
	StateCleared = "cleared"
)

// AlertEvent is one state transition of one rule.
type AlertEvent struct {
	Rule   string `json:"rule"`
	Metric string `json:"metric"`
	// State is "raised" or "cleared".
	State string `json:"state"`
	// Value is the windowed metric value that triggered the
	// transition; Threshold the side it crossed.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Second is the trace second whose close triggered evaluation.
	Second int64 `json:"second"`
}

// AlertStatus is one rule's current standing, served by the API.
type AlertStatus struct {
	Rule   Rule    `json:"rule"`
	Active bool    `json:"active"`
	Value  float64 `json:"value"`
	// Since is the trace second of the last transition (-1 if none).
	Since int64 `json:"since"`
}

// maxAlertHistory bounds the per-session event log; older events are
// discarded oldest-first.
const maxAlertHistory = 256

// ruleState is one rule's mutable standing.
type ruleState struct {
	rule      Rule
	active    bool
	value     float64
	since     int64
	lastClear int64 // trace second of last clear, for cooldown
	hasClear  bool
}

// AlertEngine evaluates a session's rules against its window whenever
// a second closes. Goroutine-safe: collectors on multiple channel
// shards evaluate concurrently with API reads.
type AlertEngine struct {
	mu      sync.Mutex
	states  []*ruleState
	history []AlertEvent
	lastSec int64
	started bool
}

// NewAlertEngine validates the rules and builds an engine; returns an
// error naming the first invalid rule.
func NewAlertEngine(rules []Rule) (*AlertEngine, error) {
	seen := make(map[string]bool, len(rules))
	eng := &AlertEngine{}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("alert rule %q: duplicate name", r.Name)
		}
		seen[r.Name] = true
		eng.states = append(eng.states, &ruleState{rule: r, since: -1})
	}
	return eng, nil
}

// crossed reports whether v is on the alerting side of threshold t
// under the rule's comparison.
func crossed(op string, v, t float64) bool {
	if op == "<=" {
		return v <= t
	}
	return v >= t
}

// Evaluate runs every rule against the window state after sec closed.
// Seconds may arrive out of order across channel shards; evaluation
// is idempotent per second and only ever advances.
func (e *AlertEngine) Evaluate(w *Window, sec int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started && sec <= e.lastSec {
		return
	}
	e.started = true
	e.lastSec = sec
	for _, st := range e.states {
		m := w.Metrics(st.rule.WindowSec)
		v := st.rule.value(m)
		st.value = v
		if !st.active {
			if !crossed(st.rule.Op, v, st.rule.Raise) {
				continue
			}
			if st.hasClear && st.rule.CooldownSec > 0 && sec < st.lastClear+int64(st.rule.CooldownSec) {
				continue // still cooling down from the last clear
			}
			st.active = true
			st.since = sec
			e.record(AlertEvent{
				Rule: st.rule.Name, Metric: st.rule.Metric, State: StateRaised,
				Value: v, Threshold: st.rule.Raise, Second: sec,
			})
			continue
		}
		// Active: clear only once the value has retreated past the
		// clear threshold (strictly, so Clear==Raise degenerates to a
		// simple threshold with no hysteresis band).
		if crossed(st.rule.Op, v, st.rule.Clear) {
			continue
		}
		st.active = false
		st.since = sec
		st.lastClear = sec
		st.hasClear = true
		e.record(AlertEvent{
			Rule: st.rule.Name, Metric: st.rule.Metric, State: StateCleared,
			Value: v, Threshold: st.rule.Clear, Second: sec,
		})
	}
}

// record appends to the bounded history. Caller holds e.mu.
func (e *AlertEngine) record(ev AlertEvent) {
	if len(e.history) >= maxAlertHistory {
		n := copy(e.history, e.history[len(e.history)-maxAlertHistory+1:])
		e.history = e.history[:n]
	}
	e.history = append(e.history, ev)
}

// Status snapshots every rule's current standing.
func (e *AlertEngine) Status() []AlertStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertStatus, len(e.states))
	for i, st := range e.states {
		out[i] = AlertStatus{Rule: st.rule, Active: st.active, Value: st.value, Since: st.since}
	}
	return out
}

// History returns the event log, oldest first (a copy).
func (e *AlertEngine) History() []AlertEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]AlertEvent(nil), e.history...)
}
