// Package monitor is the live congestion-monitoring service: the
// operational layer the paper's analysis was built for. Where the
// rest of the repo analyzes finished traces, this package owns
// long-running monitoring sessions, each wiring an ingest source — a
// live scenario run, wire-speed-paced pcap replay, or an HTTP
// frame-ingest endpoint — through the streaming experiment stages
// (Dedup/Reorder) into an incremental analysis.Analyzer.Feed
// pipeline, and maintains a rolling window of per-second congestion
// metrics (channel utilization, retransmission rate, throughput,
// goodput) with threshold alerting on top.
//
// The Manager holds N concurrent sessions behind a max-sessions cap
// with per-session isolation: each session has its own analyzer,
// metric window, alert engine, bounded ingest queue with drop
// counters, and lifecycle. The HTTP/JSON API in api.go is the
// product surface; cmd/wland is the daemon.
package monitor

import (
	"sync"

	"wlan80211/internal/analysis"
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

// Bucket is one second of one session's rolling accounting, summed
// across that session's channels. Buckets are keyed by the trace
// clock (record timestamps), not wall time, so replayed and live
// sources share one metric definition.
type Bucket struct {
	// Second is the trace second the bucket covers.
	Second int64 `json:"second"`
	// Frames is every captured record charged to the second.
	Frames int64 `json:"frames"`
	// Data counts data frames; Retries counts data frames with the
	// MAC retry bit — the paper's retransmission signal.
	Data    int64 `json:"data"`
	Retries int64 `json:"retries"`
	// Beacons counts beacon frames.
	Beacons int64 `json:"beacons"`
	// CBT is the summed channel busy-time charge (Table 2).
	CBT phy.Micros `json:"cbt_us"`
	// Bits counts all captured bits (throughput numerator); GoodBits
	// counts goodput bits (control frames plus acknowledged data).
	Bits     int64 `json:"bits"`
	GoodBits int64 `json:"good_bits"`
	// chanMask records which channels contributed (bit per channel
	// number), so windowed utilization can normalize per channel.
	chanMask uint64
}

// add folds one annotated frame event into the bucket.
func (b *Bucket) add(ev *analysis.FrameEvent) {
	b.Frames++
	b.CBT += ev.CBT
	b.Bits += int64(ev.Rec.OrigLen) * 8
	b.GoodBits += ev.GoodputBits
	b.chanMask |= 1 << (uint(ev.Rec.Channel) & 63)
	switch ev.Kind {
	case analysis.KindData:
		b.Data++
		if d, ok := ev.Parsed.Frame.(*dot11.Data); ok && d.FC.Retry {
			b.Retries++
		}
	case analysis.KindBeacon:
		b.Beacons++
	}
}

// WindowMetrics is the rolling aggregate over the last N closed
// seconds — the values the API serves and the alert engine evaluates.
type WindowMetrics struct {
	// WindowSec is the requested window; Seconds is how many closed
	// seconds the window actually covered (less while warming up).
	WindowSec int `json:"window_sec"`
	Seconds   int `json:"seconds"`
	// FromSecond/ToSecond bound the covered trace seconds.
	FromSecond int64 `json:"from_second"`
	ToSecond   int64 `json:"to_second"`
	// Channels is the number of distinct channels observed in the
	// window (utilization normalizes per channel).
	Channels int `json:"channels"`
	// Frames and FramesPerSec count captured records.
	Frames       int64   `json:"frames"`
	FramesPerSec float64 `json:"frames_per_sec"`
	// UtilizationPct is mean channel utilization (Equation 8) over
	// the window, normalized by channel count.
	UtilizationPct float64 `json:"utilization_pct"`
	// RetryRatePct is retransmitted data frames / data frames × 100.
	RetryRatePct float64 `json:"retry_rate_pct"`
	// ThroughputMbps / GoodputMbps are windowed means.
	ThroughputMbps float64 `json:"throughput_mbps"`
	GoodputMbps    float64 `json:"goodput_mbps"`
	// Congestion classifies UtilizationPct with the paper's
	// thresholds (Sec 5.3).
	Congestion string `json:"congestion"`
}

// Window is a fixed-capacity ring of per-second buckets fed by the
// session's collector stages and read by the HTTP layer. All methods
// are goroutine-safe.
type Window struct {
	mu      sync.Mutex
	buckets []Bucket
	started bool
	// latest is the newest second any bucket was written for; closed
	// is the newest second the decoder clock has closed. Metrics and
	// Series only expose closed seconds, so a half-filled open second
	// never skews a rate.
	latest int64
	closed int64
}

// NewWindow builds a ring retaining capacity seconds of history.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = DefaultWindowSec
	}
	return &Window{buckets: make([]Bucket, capacity)}
}

// Capacity returns the deepest history the window can serve.
func (w *Window) Capacity() int { return len(w.buckets) }

// bucketFor returns the ring slot for sec, resetting it when the ring
// has wrapped past its previous tenant. Caller holds w.mu.
func (w *Window) bucketFor(sec int64) *Bucket {
	b := &w.buckets[sec%int64(len(w.buckets))]
	if b.Second != sec || !w.started {
		*b = Bucket{Second: sec}
	}
	return b
}

// Observe folds one annotated frame event into its second's bucket.
func (w *Window) Observe(ev *analysis.FrameEvent) {
	w.mu.Lock()
	defer w.mu.Unlock()
	sec := ev.Second
	b := w.bucketFor(sec)
	b.add(ev)
	if !w.started || sec > w.latest {
		w.latest = sec
		if !w.started {
			w.started = true
			w.closed = sec - 1
		}
	}
}

// CloseSecond marks sec closed (the decoder clock has moved past it).
// Multiple channel shards close independently; the newest close wins.
func (w *Window) CloseSecond(sec int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started {
		w.started = true
		w.latest = sec
		w.closed = sec
		w.bucketFor(sec) // materialize the empty second
		return
	}
	if sec > w.closed {
		// Materialize empty buckets for gap seconds so windows over
		// idle air report zeros rather than stale history.
		from := w.closed + 1
		if from < sec-int64(len(w.buckets)) {
			from = sec - int64(len(w.buckets))
		}
		for s := from; s <= sec; s++ {
			w.bucketFor(s)
		}
		w.closed = sec
		if sec > w.latest {
			w.latest = sec
		}
	}
}

// Metrics aggregates the last windowSec closed seconds. A window
// wider than the ring capacity is clamped.
func (w *Window) Metrics(windowSec int) WindowMetrics {
	w.mu.Lock()
	defer w.mu.Unlock()
	if windowSec <= 0 {
		windowSec = DefaultMetricsWindowSec
	}
	if windowSec > len(w.buckets) {
		windowSec = len(w.buckets)
	}
	m := WindowMetrics{WindowSec: windowSec}
	if !w.started || w.closed < 0 {
		m.Congestion = analysis.Uncongested.String()
		return m
	}
	to := w.closed
	from := to - int64(windowSec) + 1
	var mask uint64
	var cbt phy.Micros
	var bits, goodBits, data, retries int64
	for s := from; s <= to; s++ {
		if s < 0 {
			continue // window reaches before the trace epoch
		}
		b := &w.buckets[s%int64(len(w.buckets))]
		if b.Second != s {
			continue // never filled (before stream start or evicted)
		}
		m.Seconds++
		if m.Seconds == 1 {
			m.FromSecond = s
		}
		m.ToSecond = s
		m.Frames += b.Frames
		data += b.Data
		retries += b.Retries
		cbt += b.CBT
		bits += b.Bits
		goodBits += b.GoodBits
		mask |= b.chanMask
	}
	if m.Seconds == 0 {
		m.Congestion = analysis.Uncongested.String()
		return m
	}
	channels := 0
	for v := mask; v != 0; v &= v - 1 {
		channels++
	}
	if channels == 0 {
		channels = 1
	}
	m.Channels = channels
	secs := float64(m.Seconds)
	m.FramesPerSec = float64(m.Frames) / secs
	m.UtilizationPct = 100 * float64(cbt) / (secs * float64(phy.MicrosPerSecond) * float64(channels))
	if data > 0 {
		m.RetryRatePct = 100 * float64(retries) / float64(data)
	}
	m.ThroughputMbps = float64(bits) / secs / 1e6
	m.GoodputMbps = float64(goodBits) / secs / 1e6
	m.Congestion = analysis.PaperClassifier().Classify(int(m.UtilizationPct)).String()
	return m
}

// Series returns up to n most recent closed seconds' buckets in
// ascending second order (copies; safe to retain).
func (w *Window) Series(n int) []Bucket {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n <= 0 || !w.started {
		return nil
	}
	if n > len(w.buckets) {
		n = len(w.buckets)
	}
	out := make([]Bucket, 0, n)
	for s := w.closed - int64(n) + 1; s <= w.closed; s++ {
		if s < 0 {
			continue
		}
		b := &w.buckets[s%int64(len(w.buckets))]
		if b.Second == s {
			out = append(out, *b)
		}
	}
	return out
}

// Defaults for the window layer.
const (
	// DefaultWindowSec is the ring capacity: how much per-second
	// history a session retains.
	DefaultWindowSec = 300
	// DefaultMetricsWindowSec is the window the metrics endpoint
	// aggregates when the request does not specify one.
	DefaultMetricsWindowSec = 60
)
