package monitor

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"wlan80211/internal/analysis"
	"wlan80211/internal/capture"
	"wlan80211/internal/experiment"
	"wlan80211/internal/pcapio"
	"wlan80211/internal/phy"
)

// Source types.
const (
	// SourceScenario streams a live simulator run from the experiment
	// registry into the session.
	SourceScenario = "scenario"
	// SourcePcap replays a radiotap pcap file, optionally paced to
	// the capture's own wire timing.
	SourcePcap = "pcap"
	// SourcePush accepts frames over the HTTP ingest endpoint.
	SourcePush = "push"
)

// SourceConfig selects and parameterizes a session's ingest source.
type SourceConfig struct {
	// Type is SourceScenario, SourcePcap, or SourcePush.
	Type string `json:"type"`
	// Scenario/Seed/Scale parameterize a SourceScenario (any name
	// from the experiment registry; Scale defaults to 1).
	Scenario string  `json:"scenario,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	// Path is the pcap file a SourcePcap replays.
	Path string `json:"path,omitempty"`
	// Speed paces a pcap replay against the wall clock: 1 replays at
	// the capture's own wire timing, 2 at double speed. 0 replays as
	// fast as the pipeline drains (lossless).
	Speed float64 `json:"speed,omitempty"`
	// Dedup inserts the cross-sniffer same-air dedup stage ahead of
	// reordering for pcap and push sources (scenario sources enable
	// it automatically when the run is multi-sniffer).
	Dedup bool `json:"dedup,omitempty"`
}

// Config is one monitoring session's full configuration.
type Config struct {
	// Name is a free-form label echoed by the API.
	Name   string       `json:"name,omitempty"`
	Source SourceConfig `json:"source"`
	// WindowSec is the per-second history the session retains
	// (default DefaultWindowSec).
	WindowSec int `json:"window_sec,omitempty"`
	// QueueSize bounds the ingest queue (default DefaultQueueSize).
	// Paced and push sources drop (and count) frames when it is
	// full; unpaced sources block, so nothing is lost.
	QueueSize int `json:"queue_size,omitempty"`
	// Alerts are the session's threshold rules.
	Alerts []Rule `json:"alerts,omitempty"`
}

// DefaultQueueSize bounds the ingest queue when the config does not.
const DefaultQueueSize = 4096

// Session states.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	StateStopped = "stopped"
)

// errStopped marks a source that exited because the session was
// stopped, distinguishing a stop from a source failure.
var errStopped = errors.New("monitor: session stopped")

// Session is one isolated monitoring pipeline: a source goroutine
// feeding a bounded queue, and a pump goroutine draining it through
// the streaming stages (optional Dedup, then Reorder) into an
// incremental analyzer whose per-shard collector stages maintain the
// rolling window and alert engine.
type Session struct {
	ID  string
	cfg Config

	analyzer *analysis.Analyzer
	win      *Window
	alerts   *AlertEngine

	queue  chan capture.Record
	cancel context.CancelFunc
	done   chan struct{}

	accepted atomic.Int64
	dropped  atomic.Int64
	rejected atomic.Int64
	deduped  atomic.Int64

	// pushMu guards pushClosed: HTTP ingest handlers are concurrent
	// writers and must not race the queue close.
	pushMu     sync.Mutex
	pushClosed bool

	mu       sync.Mutex
	state    string
	err      error
	stopping bool

	// srcErr is written by the source goroutine before it closes the
	// queue; the pump reads it after the queue drains (the channel
	// close orders the two).
	srcErr error
}

// validate rejects malformed configs before any resources are built.
func (c *Config) validate() error {
	switch c.Source.Type {
	case SourceScenario:
		if _, err := experiment.New(c.Source.Scenario, c.Source.Seed, scaleOr1(c.Source.Scale)); err != nil {
			return err
		}
	case SourcePcap:
		if c.Source.Path == "" {
			return fmt.Errorf("monitor: pcap source requires a path")
		}
		if _, err := os.Stat(c.Source.Path); err != nil {
			return fmt.Errorf("monitor: pcap source: %w", err)
		}
		if c.Source.Speed < 0 {
			return fmt.Errorf("monitor: negative replay speed")
		}
	case SourcePush:
	default:
		return fmt.Errorf("monitor: unknown source type %q", c.Source.Type)
	}
	if c.WindowSec < 0 || c.QueueSize < 0 {
		return fmt.Errorf("monitor: negative window or queue size")
	}
	for _, r := range c.Alerts {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func scaleOr1(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

// newSession builds and starts a session. ctx bounds the session's
// lifetime: canceling it stops the source and drains the pipeline.
func newSession(ctx context.Context, id string, cfg Config) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	alerts, err := NewAlertEngine(cfg.Alerts)
	if err != nil {
		return nil, err
	}
	win := NewWindow(cfg.WindowSec)
	analyzer, err := analysis.New(analysis.Options{
		Metrics: []string{"util"},
		Extra:   []analysis.Factory{newCollectorFactory(win, alerts)},
	})
	if err != nil {
		return nil, err
	}
	qs := cfg.QueueSize
	if qs <= 0 {
		qs = DefaultQueueSize
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Session{
		ID: id, cfg: cfg,
		analyzer: analyzer, win: win, alerts: alerts,
		queue:  make(chan capture.Record, qs),
		cancel: cancel,
		done:   make(chan struct{}),
		state:  StateRunning,
	}

	dedup := cfg.Source.Dedup
	switch cfg.Source.Type {
	case SourceScenario:
		scn, _ := experiment.New(cfg.Source.Scenario, cfg.Source.Seed, scaleOr1(cfg.Source.Scale))
		run, err := scn.Build()
		if err != nil {
			cancel()
			return nil, err
		}
		if ms, ok := run.(experiment.MultiSnifferRun); ok && ms.MultiSniffer() {
			dedup = true
		}
		go s.runScenario(sctx, run)
	case SourcePcap:
		go s.runPcap(sctx)
	case SourcePush:
		// No source goroutine: Stop closes the queue.
	}
	go s.pump(dedup)
	return s, nil
}

// validateRecord enforces the streaming stages' input contract: the
// reorder horizon only bounds memory for frames up to the maximum
// legal wire size at a valid rate.
func validateRecord(rec capture.Record) error {
	if !rec.Rate.Valid() {
		return fmt.Errorf("monitor: invalid rate %d", rec.Rate)
	}
	if rec.OrigLen <= 0 || rec.OrigLen > experiment.MaxReorderWire {
		return fmt.Errorf("monitor: wire length %d outside (0, %d]", rec.OrigLen, experiment.MaxReorderWire)
	}
	return nil
}

// enqueueBlocking is the lossless path: it waits for queue space and
// reports false only when the session is stopped.
func (s *Session) enqueueBlocking(ctx context.Context, rec capture.Record) bool {
	select {
	case s.queue <- rec:
		s.accepted.Add(1)
		return true
	case <-ctx.Done():
		return false
	}
}

// enqueue is the live path: a full queue drops the frame and counts
// it, modeling a capture interface whose consumer fell behind.
func (s *Session) enqueue(rec capture.Record) bool {
	select {
	case s.queue <- rec:
		s.accepted.Add(1)
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// runScenario streams a simulator run into the queue. Stream has no
// cancellation hook, so a stop aborts it by panicking out of the sink
// and recovering here.
func (s *Session) runScenario(ctx context.Context, run experiment.Run) {
	defer close(s.queue)
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if r == errStopped {
					err = errStopped
					return
				}
				panic(r)
			}
		}()
		return run.Stream(func(rec capture.Record) {
			// Stream's frames alias reused buffers, valid only during
			// this call; the queue outlives it.
			rec.Frame = append([]byte(nil), rec.Frame...)
			if err := validateRecord(rec); err != nil {
				s.rejected.Add(1)
				return
			}
			if !s.enqueueBlocking(ctx, rec) {
				panic(errStopped)
			}
		})
	}()
	s.srcErr = err
}

// runPcap replays a radiotap pcap into the queue, pacing against the
// wall clock when Speed > 0.
func (s *Session) runPcap(ctx context.Context) {
	defer close(s.queue)
	s.srcErr = s.replayPcap(ctx)
}

func (s *Session) replayPcap(ctx context.Context) error {
	f, err := os.Open(s.cfg.Source.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	pr, err := pcapio.NewReader(f)
	if err != nil {
		return err
	}
	if pr.LinkType() != pcapio.LinkTypeRadiotap {
		return capture.ErrLinkType
	}
	speed := s.cfg.Source.Speed
	var base phy.Micros
	var start time.Time
	first := true
	for {
		if ctx.Err() != nil {
			return errStopped
		}
		prec, err := pr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		rec, err := capture.FromPcap(prec)
		if err != nil {
			s.rejected.Add(1) // undecodable radiotap, like capture.ReadAll's skip
			continue
		}
		if err := validateRecord(rec); err != nil {
			s.rejected.Add(1)
			continue
		}
		if speed > 0 {
			if first {
				base, start, first = rec.Time, time.Now(), false
			} else if target := time.Duration(float64(rec.Time-base) / speed * float64(time.Microsecond)); target > time.Since(start) {
				select {
				case <-time.After(target - time.Since(start)):
				case <-ctx.Done():
					return errStopped
				}
			}
			s.enqueue(rec)
			continue
		}
		if !s.enqueueBlocking(ctx, rec) {
			return errStopped
		}
	}
}

// Ingest accepts a batch of pushed records (the HTTP ingest path).
// Invalid records are rejected individually; a full queue drops.
func (s *Session) Ingest(recs []capture.Record) (accepted, dropped, rejected int, err error) {
	if s.cfg.Source.Type != SourcePush {
		return 0, 0, 0, fmt.Errorf("monitor: session %s is not a push session", s.ID)
	}
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	if s.pushClosed {
		return 0, 0, 0, fmt.Errorf("monitor: session %s is not accepting frames", s.ID)
	}
	for _, rec := range recs {
		if validateRecord(rec) != nil {
			s.rejected.Add(1)
			rejected++
			continue
		}
		if s.enqueue(rec) {
			accepted++
		} else {
			dropped++
		}
	}
	return accepted, dropped, rejected, nil
}

// pump drains the queue through the streaming stages into the
// analyzer, then finalizes: flushing the reorder buffer, closing the
// final partial second (which fires the last alert evaluation), and
// settling the terminal state.
func (s *Session) pump(dedup bool) {
	defer close(s.done)
	ro := experiment.NewReorder(func(rec capture.Record) { s.analyzer.Feed(rec) })
	head := experiment.Sink(ro.Add)
	if dedup {
		dd := experiment.NewDedup(ro.Add)
		head = func(rec capture.Record) {
			dd.Add(rec)
			s.deduped.Store(dd.Dropped)
		}
	}
	for rec := range s.queue {
		head(rec)
	}
	ro.Flush()
	s.analyzer.Result()

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.srcErr == nil && !s.stopping:
		s.state = StateDone
	case s.srcErr == nil || errors.Is(s.srcErr, errStopped):
		s.state = StateStopped
	default:
		s.state = StateFailed
		s.err = s.srcErr
	}
}

// Stop cancels the session's source, drains the pipeline, and waits
// for the pump to settle the terminal state. Idempotent.
func (s *Session) Stop() {
	s.mu.Lock()
	if s.state == StateRunning {
		s.stopping = true
	}
	s.mu.Unlock()
	s.cancel()
	if s.cfg.Source.Type == SourcePush {
		s.pushMu.Lock()
		if !s.pushClosed {
			s.pushClosed = true
			close(s.queue)
		}
		s.pushMu.Unlock()
	}
	<-s.done
}

// Done exposes the pump's completion for tests and the manager.
func (s *Session) Done() <-chan struct{} { return s.done }

// Metrics aggregates the session's rolling window.
func (s *Session) Metrics(windowSec int) WindowMetrics { return s.win.Metrics(windowSec) }

// Series returns the most recent closed per-second buckets.
func (s *Session) Series(n int) []Bucket { return s.win.Series(n) }

// Alerts exposes the alert engine (status + history).
func (s *Session) Alerts() *AlertEngine { return s.alerts }

// View is the API's JSON representation of a session.
type View struct {
	ID     string       `json:"id"`
	Name   string       `json:"name,omitempty"`
	State  string       `json:"state"`
	Error  string       `json:"error,omitempty"`
	Source SourceConfig `json:"source"`
	// WindowSec is the retained history; QueueCap the ingest bound.
	WindowSec int `json:"window_sec"`
	QueueCap  int `json:"queue_cap"`
	// Ingest accounting: Accepted entered the queue, Dropped hit a
	// full queue, Rejected failed validation, Deduped collapsed as
	// cross-sniffer duplicates.
	Accepted int64 `json:"accepted"`
	Dropped  int64 `json:"dropped"`
	Rejected int64 `json:"rejected"`
	Deduped  int64 `json:"deduped,omitempty"`
	// Analyzer progress, from the goroutine-safe snapshot.
	Frames      int64 `json:"frames"`
	ParseErrors int64 `json:"parse_errors"`
	Channels    int   `json:"channels"`
	LastSecond  int64 `json:"last_second"`
}

// View snapshots the session for the API.
func (s *Session) View() View {
	s.mu.Lock()
	state, serr := s.state, s.err
	s.mu.Unlock()
	snap := s.analyzer.Snapshot()
	v := View{
		ID: s.ID, Name: s.cfg.Name, State: state,
		Source:    s.cfg.Source,
		WindowSec: s.win.Capacity(),
		QueueCap:  cap(s.queue),
		Accepted:  s.accepted.Load(),
		Dropped:   s.dropped.Load(),
		Rejected:  s.rejected.Load(),
		Deduped:   s.deduped.Load(),
		Frames:    snap.Frames, ParseErrors: snap.ParseErrors,
		Channels:   snap.Channels,
		LastSecond: int64(snap.LastTime / phy.MicrosPerSecond),
	}
	if serr != nil {
		v.Error = serr.Error()
	}
	return v
}
