package monitor

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"
)

// keysOf returns the sorted top-level keys of a JSON object — the
// contract the API's consumers depend on.
func keysOf(t *testing.T, raw []byte) []string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("response is not a JSON object: %v\n%s", err, raw)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func wantKeys(t *testing.T, raw []byte, want ...string) {
	t.Helper()
	sort.Strings(want)
	got := keysOf(t, raw)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("JSON keys changed:\n  got  %v\n  want %v\nbody: %s", got, want, raw)
	}
}

// do issues a request and returns status + body.
func do(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestAPIContract(t *testing.T) {
	mgr := NewManager(context.Background(), 2)
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(mgr))
	defer srv.Close()

	// Health.
	code, body := do(t, "GET", srv.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: %d\n%s", code, body)
	}
	wantKeys(t, body, "status", "sessions", "max_sessions")

	// Empty listing.
	code, body = do(t, "GET", srv.URL+"/api/sessions", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	wantKeys(t, body, "sessions")

	// Create a push session with an alert rule.
	code, body = do(t, "POST", srv.URL+"/api/sessions", Config{
		Name:   "contract",
		Source: SourceConfig{Type: SourcePush},
		Alerts: []Rule{{
			Name: "util-high", Metric: "utilization_pct", Op: ">=",
			Raise: 20, Clear: 5, WindowSec: 2,
		}},
	})
	if code != http.StatusCreated {
		t.Fatalf("create: %d\n%s", code, body)
	}
	// The session view is the shape dashboards consume; pin it.
	wantKeys(t, body,
		"id", "name", "state", "source", "window_sec", "queue_cap",
		"accepted", "dropped", "rejected", "frames", "parse_errors",
		"channels", "last_second")
	var created View
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || created.State != StateRunning {
		t.Fatalf("created view: %+v", created)
	}
	id := created.ID

	// Ingest three busy seconds plus a closing beacon.
	recs := busyQuietTrace(3, 0)
	var wire []map[string]any
	for _, r := range recs {
		wire = append(wire, map[string]any{
			"time_us": int64(r.Time), "rate": uint16(r.Rate),
			"channel": int(r.Channel), "orig_len": r.OrigLen,
			"frame_hex": hex.EncodeToString(r.Frame),
		})
	}
	code, body = do(t, "POST", srv.URL+"/api/sessions/"+id+"/ingest",
		map[string]any{"records": wire})
	if code != http.StatusOK {
		t.Fatalf("ingest: %d\n%s", code, body)
	}
	wantKeys(t, body, "accepted", "dropped", "rejected")
	var ing struct{ Accepted, Dropped, Rejected int }
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Accepted != len(recs) || ing.Dropped != 0 || ing.Rejected != 0 {
		t.Fatalf("ingest counts %+v, want %d accepted", ing, len(recs))
	}

	// Poll metrics until the busy seconds close through the pipeline.
	var metrics WindowMetrics
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body = do(t, "GET", srv.URL+"/api/sessions/"+id+"/metrics?window=10", nil)
		if code != http.StatusOK {
			t.Fatalf("metrics: %d\n%s", code, body)
		}
		if err := json.Unmarshal(body, &metrics); err != nil {
			t.Fatal(err)
		}
		// The reorder horizon holds the stream's tail while the push
		// session stays open, so only fully closed seconds appear:
		// with 3 busy seconds ingested, at least 2 must close.
		if metrics.Seconds >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never populated: %+v", metrics)
		}
		time.Sleep(5 * time.Millisecond)
	}
	wantKeys(t, body,
		"window_sec", "seconds", "from_second", "to_second", "channels",
		"frames", "frames_per_sec", "utilization_pct", "retry_rate_pct",
		"throughput_mbps", "goodput_mbps", "congestion")
	if metrics.UtilizationPct < 20 {
		t.Fatalf("busy trace utilization %.1f%%, want >=20", metrics.UtilizationPct)
	}

	// The alert raised; status and history have stable shapes.
	code, body = do(t, "GET", srv.URL+"/api/sessions/"+id+"/alerts", nil)
	if code != http.StatusOK {
		t.Fatalf("alerts: %d", code)
	}
	wantKeys(t, body, "status", "history")
	var alerts struct {
		Status  []AlertStatus `json:"status"`
		History []AlertEvent  `json:"history"`
	}
	if err := json.Unmarshal(body, &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts.Status) != 1 || !alerts.Status[0].Active {
		t.Fatalf("alert not raised: %+v", alerts.Status)
	}
	if len(alerts.History) == 0 || alerts.History[0].State != StateRaised {
		t.Fatalf("alert history: %+v", alerts.History)
	}

	// Series endpoint.
	code, body = do(t, "GET", srv.URL+"/api/sessions/"+id+"/series?seconds=5", nil)
	if code != http.StatusOK {
		t.Fatalf("series: %d", code)
	}
	wantKeys(t, body, "seconds")

	// Bad requests.
	if code, _ = do(t, "GET", srv.URL+"/api/sessions/"+id+"/metrics?window=x", nil); code != http.StatusBadRequest {
		t.Fatalf("bad window param: %d, want 400", code)
	}
	if code, body = do(t, "POST", srv.URL+"/api/sessions", Config{Source: SourceConfig{Type: "tape"}}); code != http.StatusBadRequest {
		t.Fatalf("bad source type: %d\n%s", code, body)
	}
	wantKeys(t, body, "error")

	// Unknown session: 404 everywhere.
	for _, ep := range []string{"", "/metrics", "/alerts", "/series"} {
		if code, _ = do(t, "GET", srv.URL+"/api/sessions/nope"+ep, nil); code != http.StatusNotFound {
			t.Fatalf("GET unknown session%s: %d, want 404", ep, code)
		}
	}

	// Cap: one slot left, fill it, then 429.
	if code, _ = do(t, "POST", srv.URL+"/api/sessions", Config{Source: SourceConfig{Type: SourcePush}}); code != http.StatusCreated {
		t.Fatalf("second create: %d", code)
	}
	code, body = do(t, "POST", srv.URL+"/api/sessions", Config{Source: SourceConfig{Type: SourcePush}})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: %d, want 429\n%s", code, body)
	}

	// Delete frees the slot; the session is gone.
	if code, _ = do(t, "DELETE", srv.URL+"/api/sessions/"+id, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if code, _ = do(t, "GET", srv.URL+"/api/sessions/"+id, nil); code != http.StatusNotFound {
		t.Fatalf("deleted session still served: %d", code)
	}
	if code, _ = do(t, "DELETE", srv.URL+"/api/sessions/"+id, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", code)
	}
}

// TestAPIVersionedRoutes pins the /api/v1 surface introduced
// alongside the dispatch API: every route serves identically under
// /api/v1, legacy /api aliases keep working but carry the deprecation
// headers, and the canonical routes carry none.
func TestAPIVersionedRoutes(t *testing.T) {
	mgr := NewManager(context.Background(), 2)
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(mgr))
	defer srv.Close()

	code, body := do(t, "POST", srv.URL+"/api/v1/sessions", Config{
		Name: "v1", Source: SourceConfig{Type: SourcePush},
	})
	if code != http.StatusCreated {
		t.Fatalf("v1 create: %d\n%s", code, body)
	}
	var created View
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	id := created.ID

	// The same session is visible through both route sets, with equal
	// bodies — aliases never fork behavior.
	for _, path := range []string{
		"/sessions", "/sessions/" + id, "/sessions/" + id + "/metrics",
		"/sessions/" + id + "/series", "/sessions/" + id + "/alerts",
	} {
		v1Resp, err := http.Get(srv.URL + "/api/v1" + path)
		if err != nil {
			t.Fatal(err)
		}
		var v1Body bytes.Buffer
		v1Body.ReadFrom(v1Resp.Body)
		v1Resp.Body.Close()
		legacyResp, err := http.Get(srv.URL + "/api" + path)
		if err != nil {
			t.Fatal(err)
		}
		var legacyBody bytes.Buffer
		legacyBody.ReadFrom(legacyResp.Body)
		legacyResp.Body.Close()

		if v1Resp.StatusCode != http.StatusOK || legacyResp.StatusCode != http.StatusOK {
			t.Fatalf("%s: v1=%d legacy=%d", path, v1Resp.StatusCode, legacyResp.StatusCode)
		}
		if v1Body.String() != legacyBody.String() {
			t.Fatalf("%s: v1 and legacy bodies differ:\n%s\n%s", path, v1Body.String(), legacyBody.String())
		}
		if got := v1Resp.Header.Get("Deprecation"); got != "" {
			t.Fatalf("/api/v1%s carries Deprecation: %q", path, got)
		}
		if got := legacyResp.Header.Get("Deprecation"); got != "true" {
			t.Fatalf("/api%s Deprecation = %q, want \"true\"", path, got)
		}
		wantLink := `</api/v1` + path + `>; rel="successor-version"`
		if got := legacyResp.Header.Get("Link"); got != wantLink {
			t.Fatalf("/api%s Link = %q, want %q", path, got, wantLink)
		}
	}

	// Errors version the same way.
	code, _ = do(t, "GET", srv.URL+"/api/v1/sessions/nope", nil)
	if code != http.StatusNotFound {
		t.Fatalf("v1 unknown session: %d, want 404", code)
	}
	if code, _ = do(t, "DELETE", srv.URL+"/api/v1/sessions/"+id, nil); code != http.StatusOK {
		t.Fatalf("v1 delete: %d", code)
	}
}

func TestAPIPcapSession(t *testing.T) {
	mgr := NewManager(context.Background(), 2)
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(mgr))
	defer srv.Close()

	path := writePcap(t, busyQuietTrace(2, 1))
	code, body := do(t, "POST", srv.URL+"/api/sessions", Config{
		Source: SourceConfig{Type: SourcePcap, Path: path},
	})
	if code != http.StatusCreated {
		t.Fatalf("create pcap session: %d\n%s", code, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body = do(t, "GET", srv.URL+"/api/sessions/"+v.ID, nil)
		if code != http.StatusOK {
			t.Fatalf("get: %d", code)
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replay did not finish: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v.Frames == 0 || v.Error != "" {
		t.Fatalf("finished replay: %+v", v)
	}
}

// pushSession creates a push session and returns its id.
func pushSession(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	code, body := do(t, "POST", srv.URL+"/api/sessions", Config{
		Source: SourceConfig{Type: SourcePush},
	})
	if code != http.StatusCreated {
		t.Fatalf("create push session: %d\n%s", code, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// TestIngestBodyTooLarge pins the ingest body cap: anything over
// MaxIngestBytes is refused with 413 and a structured limit, without
// being buffered first.
func TestIngestBodyTooLarge(t *testing.T) {
	mgr := NewManager(context.Background(), 2)
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(mgr))
	defer srv.Close()
	id := pushSession(t, srv)

	// One giant frame_hex string pushes the body just past the cap.
	huge := strings.Repeat("a", MaxIngestBytes+1024)
	code, body := do(t, "POST", srv.URL+"/api/sessions/"+id+"/ingest",
		map[string]any{"records": []map[string]any{{"frame_hex": huge}}})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: %d, want 413\n%.200s", code, body)
	}
	wantKeys(t, body, "error", "limit_bytes")
	var resp struct {
		LimitBytes int64 `json:"limit_bytes"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.LimitBytes != MaxIngestBytes {
		t.Fatalf("limit_bytes = %d, want %d", resp.LimitBytes, MaxIngestBytes)
	}

	// A body just under the cap is still parsed (and rejected for what
	// it says, not for its size).
	code, body = do(t, "POST", srv.URL+"/api/sessions/"+id+"/ingest",
		map[string]any{"records": []map[string]any{}})
	if code != http.StatusOK {
		t.Fatalf("small ingest after oversized one: %d\n%s", code, body)
	}
}

// TestIngestMalformedHexStructuredError pins the structured error for
// undecodable frame_hex: 400 plus machine-readable locator fields.
func TestIngestMalformedHexStructuredError(t *testing.T) {
	mgr := NewManager(context.Background(), 2)
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(mgr))
	defer srv.Close()
	id := pushSession(t, srv)

	good := map[string]any{"time_us": 1000, "rate": 10, "channel": 1,
		"frame_hex": hex.EncodeToString(beaconRec(1000, 1).Frame)}
	bad := map[string]any{"time_us": 2000, "rate": 10, "channel": 1,
		"frame_hex": "zz-not-hex"}
	code, body := do(t, "POST", srv.URL+"/api/sessions/"+id+"/ingest",
		map[string]any{"records": []map[string]any{good, bad}})
	if code != http.StatusBadRequest {
		t.Fatalf("malformed hex: %d, want 400\n%s", code, body)
	}
	wantKeys(t, body, "error", "record", "field", "value")
	var resp struct {
		Error  string `json:"error"`
		Record int    `json:"record"`
		Field  string `json:"field"`
		Value  string `json:"value"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Record != 1 || resp.Field != "frame_hex" || resp.Value != "zz-not-hex" {
		t.Fatalf("structured error = %+v", resp)
	}
	if !strings.Contains(resp.Error, "record 1") || !strings.Contains(resp.Error, "frame_hex") {
		t.Fatalf("error message %q lacks locator prose", resp.Error)
	}
}
