package monitor

import (
	"wlan80211/internal/analysis"
)

// collector is the per-channel-shard analysis.Metric that taps the
// decoder's annotated event stream into the session's shared Window
// and alert engine. One collector is created per channel shard via
// analysis.Options.Extra; the Window serializes cross-shard access.
type collector struct {
	win    *Window
	alerts *AlertEngine
}

// newCollectorFactory returns the Options.Extra factory wiring every
// shard of a session's analyzer to one shared window and alert
// engine. alerts may be nil (no rules configured).
func newCollectorFactory(win *Window, alerts *AlertEngine) analysis.Factory {
	return func() analysis.Metric { return &collector{win: win, alerts: alerts} }
}

func (c *collector) OnFrame(ev *analysis.FrameEvent) {
	c.win.Observe(ev)
}

// OnSecond fires when the shard's decoder clock closes sec. The
// window materializes the second and the alert engine evaluates its
// rules against the freshly closed state.
func (c *collector) OnSecond(sec int64) {
	c.win.CloseSecond(sec)
	if c.alerts != nil {
		c.alerts.Evaluate(c.win, sec)
	}
}

func (c *collector) Finalize(res *analysis.Result) {}
