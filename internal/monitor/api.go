package monitor

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
)

// NewServer builds the daemon's HTTP handler over a manager. The
// versioned surface lives under /api/v1; the original unversioned
// /api/... paths remain as compatibility aliases that serve the same
// handlers plus a `Deprecation: true` header and a `Link:
// </api/v1/...>; rel="successor-version"` pointer. Routes:
//
//	GET    /healthz                         — liveness + session count
//	GET    /api/v1/sessions                 — list sessions
//	POST   /api/v1/sessions                 — create a session (Config body)
//	GET    /api/v1/sessions/{id}            — one session
//	DELETE /api/v1/sessions/{id}            — stop and remove
//	GET    /api/v1/sessions/{id}/metrics    — windowed metrics (?window=SECONDS)
//	GET    /api/v1/sessions/{id}/series     — per-second buckets (?seconds=N)
//	GET    /api/v1/sessions/{id}/alerts     — alert status + history
//	POST   /api/v1/sessions/{id}/ingest     — push frames (push sessions);
//	                                          bodies over MaxIngestBytes get 413
//
// All responses are JSON; errors use {"error": "..."} with
// 400/404/413/429. Per-record ingest failures add structured locator
// fields ("record", "field", "value") beside the error message.
func NewServer(mgr *Manager) http.Handler {
	mux := http.NewServeMux()
	// reg registers one logical route twice: canonical under /api/v1,
	// legacy alias under /api with the deprecation headers.
	reg := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /api/v1"+path, h)
		mux.HandleFunc(method+" /api"+path, deprecated(h))
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":       "ok",
			"sessions":     len(mgr.List()),
			"max_sessions": mgr.Max(),
		})
	})
	reg("GET", "/sessions", func(w http.ResponseWriter, r *http.Request) {
		sessions := mgr.List()
		views := make([]View, len(sessions))
		for i, s := range sessions {
			views[i] = s.View()
		}
		writeJSON(w, http.StatusOK, map[string]any{"sessions": views})
	})
	reg("POST", "/sessions", func(w http.ResponseWriter, r *http.Request) {
		var cfg Config
		if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding config: %w", err))
			return
		}
		s, err := mgr.Create(cfg)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, s.View())
	})
	reg("GET", "/sessions/{id}", withSession(mgr, func(w http.ResponseWriter, r *http.Request, s *Session) {
		writeJSON(w, http.StatusOK, s.View())
	}))
	reg("DELETE", "/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := mgr.Delete(r.PathValue("id")); err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"deleted": r.PathValue("id")})
	})
	reg("GET", "/sessions/{id}/metrics", withSession(mgr, func(w http.ResponseWriter, r *http.Request, s *Session) {
		window := 0
		if q := r.URL.Query().Get("window"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n <= 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("window must be a positive integer, got %q", q))
				return
			}
			window = n
		}
		writeJSON(w, http.StatusOK, s.Metrics(window))
	}))
	reg("GET", "/sessions/{id}/series", withSession(mgr, func(w http.ResponseWriter, r *http.Request, s *Session) {
		n := DefaultMetricsWindowSec
		if q := r.URL.Query().Get("seconds"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("seconds must be a positive integer, got %q", q))
				return
			}
			n = v
		}
		buckets := s.Series(n)
		if buckets == nil {
			buckets = []Bucket{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"seconds": buckets})
	}))
	reg("GET", "/sessions/{id}/alerts", withSession(mgr, func(w http.ResponseWriter, r *http.Request, s *Session) {
		eng := s.Alerts()
		status := eng.Status()
		if status == nil {
			status = []AlertStatus{}
		}
		history := eng.History()
		if history == nil {
			history = []AlertEvent{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": status, "history": history})
	}))
	reg("POST", "/sessions/{id}/ingest", withSession(mgr, func(w http.ResponseWriter, r *http.Request, s *Session) {
		// Cap the request body: an oversized (or unbounded) push must
		// fail with 413 before it can balloon the daemon's memory, not
		// be read to completion first.
		r.Body = http.MaxBytesReader(w, r.Body, MaxIngestBytes)
		var body struct {
			Records []ingestRecord `json:"records"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
					"error":       fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
					"limit_bytes": tooBig.Limit,
				})
				return
			}
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding records: %w", err))
			return
		}
		recs := make([]capture.Record, 0, len(body.Records))
		for i, ir := range body.Records {
			rec, err := ir.toRecord()
			if err != nil {
				// Field-level failures carry a structured locator so a
				// pusher can find the offending record without parsing
				// prose out of the error string.
				var fe *fieldError
				if errors.As(err, &fe) {
					writeJSON(w, http.StatusBadRequest, map[string]any{
						"error":  fmt.Sprintf("record %d: %v", i, err),
						"record": i,
						"field":  fe.Field,
						"value":  fe.Value,
					})
					return
				}
				writeErr(w, http.StatusBadRequest, fmt.Errorf("record %d: %w", i, err))
				return
			}
			recs = append(recs, rec)
		}
		accepted, dropped, rejected, err := s.Ingest(recs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"accepted": accepted, "dropped": dropped, "rejected": rejected,
		})
	}))
	return mux
}

// deprecated wraps a legacy unversioned route's handler with the
// sunset signals (RFC 8594 style): a Deprecation header and a Link to
// the same resource under /api/v1. The response body is identical —
// aliases never fork behavior.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</api/v1`+strings.TrimPrefix(r.URL.Path, "/api")+`>; rel="successor-version"`)
		h(w, r)
	}
}

// withSession resolves {id} and 404s unknown sessions.
func withSession(mgr *Manager, h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s, err := mgr.Get(r.PathValue("id"))
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		h(w, r, s)
	}
}

// ingestRecord is the wire form of one pushed frame.
type ingestRecord struct {
	// TimeUS is the capture timestamp in microseconds of trace time.
	TimeUS int64 `json:"time_us"`
	// Rate is in units of 100 kb/s (radiotap convention: 10 = 1 Mb/s,
	// 110 = 11 Mb/s).
	Rate uint16 `json:"rate"`
	// Channel is the 2.4 GHz channel number.
	Channel int `json:"channel"`
	// SignalDBm/NoiseDBm are optional radio metadata.
	SignalDBm int8 `json:"signal_dbm,omitempty"`
	NoiseDBm  int8 `json:"noise_dbm,omitempty"`
	// OrigLen is the on-air frame length; defaults to the decoded
	// frame length when omitted.
	OrigLen int `json:"orig_len,omitempty"`
	// FrameHex is the MAC frame, hex encoded.
	FrameHex string `json:"frame_hex"`
}

// MaxIngestBytes caps an ingest request body. At ~2x hex expansion it
// admits on the order of a million typical frames per push — far past
// any sane batch — while bounding what a misbehaving pusher can make
// the daemon buffer.
const MaxIngestBytes = 16 << 20

// fieldError locates a per-record validation failure for the
// structured ingest error response.
type fieldError struct {
	Field string
	Value string
	Err   error
}

func (e *fieldError) Error() string { return fmt.Sprintf("%s: %v", e.Field, e.Err) }
func (e *fieldError) Unwrap() error { return e.Err }

func (ir ingestRecord) toRecord() (capture.Record, error) {
	frame, err := hex.DecodeString(ir.FrameHex)
	if err != nil {
		return capture.Record{}, &fieldError{Field: "frame_hex", Value: truncate(ir.FrameHex, 64), Err: err}
	}
	orig := ir.OrigLen
	if orig == 0 {
		orig = len(frame)
	}
	return capture.Record{
		Time:      phy.Micros(ir.TimeUS),
		Rate:      phy.Rate(ir.Rate),
		Channel:   phy.Channel(ir.Channel),
		SignalDBm: ir.SignalDBm,
		NoiseDBm:  ir.NoiseDBm,
		OrigLen:   orig,
		Frame:     frame,
	}, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrMaxSessions):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
