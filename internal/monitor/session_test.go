package monitor

import (
	"context"
	"errors"
	"testing"
	"time"

	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
)

func TestPcapSessionReplayToDone(t *testing.T) {
	recs := busyQuietTrace(3, 3)
	path := writePcap(t, recs)
	s, err := newSession(context.Background(), "s1", Config{
		Source: SourceConfig{Type: SourcePcap, Path: path},
		Alerts: []Rule{{
			Name: "congested", Metric: "utilization_pct", Op: ">=",
			Raise: 20, Clear: 5, WindowSec: 2,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s)

	v := s.View()
	if v.State != StateDone {
		t.Fatalf("state %q (err %q), want done", v.State, v.Error)
	}
	if v.Accepted != int64(len(recs)) || v.Dropped != 0 || v.Rejected != 0 {
		t.Fatalf("accepted/dropped/rejected = %d/%d/%d, want %d/0/0",
			v.Accepted, v.Dropped, v.Rejected, len(recs))
	}
	if v.Frames != int64(len(recs)) || v.ParseErrors != 0 {
		t.Fatalf("analyzer saw %d frames (%d parse errors), want %d", v.Frames, v.ParseErrors, len(recs))
	}

	// The full-history window covers busy and quiet phases.
	m := s.Metrics(s.win.Capacity())
	if m.Frames != int64(len(recs)) {
		t.Fatalf("windowed frames = %d, want %d", m.Frames, len(recs))
	}
	// Busy seconds saturate well past the alert threshold, so the
	// trace must have raised and then cleared the alert.
	h := s.Alerts().History()
	if len(h) < 2 || h[0].State != StateRaised || h[len(h)-1].State != StateCleared {
		t.Fatalf("alert history %+v, want raise then clear", h)
	}
}

func TestPcapSessionPacedReplay(t *testing.T) {
	// A 100ms trace replayed at 10x finishes quickly but still paces:
	// two beacons 100ms apart arrive ≥10ms apart on the wall clock.
	path := writePcap(t, []capture.Record{
		beaconRec(0, phy.Channel1),
		beaconRec(100_000, phy.Channel1),
	})
	start := time.Now()
	s, err := newSession(context.Background(), "s1", Config{
		Source: SourceConfig{Type: SourcePcap, Path: path, Speed: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s)
	if elapsed := time.Since(start); elapsed < 9*time.Millisecond {
		t.Fatalf("10x replay of a 100ms trace took %v, want >=10ms (pacing)", elapsed)
	}
	if v := s.View(); v.State != StateDone || v.Accepted != 2 {
		t.Fatalf("paced replay: %+v", v)
	}
}

func TestScenarioSessionStop(t *testing.T) {
	s, err := newSession(context.Background(), "s1", Config{
		Source: SourceConfig{Type: SourceScenario, Scenario: "day", Seed: 1, Scale: 0.05},
		// A tiny queue forces the source to block so Stop interrupts
		// it mid-stream rather than after a complete run.
		QueueSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let some frames flow, then stop.
	deadline := time.Now().Add(10 * time.Second)
	for s.View().Frames == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no frames flowed")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if v := s.View(); v.State != StateStopped {
		t.Fatalf("state %q after Stop, want stopped", v.State)
	}
	// Stop is idempotent.
	s.Stop()
}

func TestScenarioSessionRunsToDone(t *testing.T) {
	s, err := newSession(context.Background(), "s1", Config{
		Source: SourceConfig{Type: SourceScenario, Scenario: "day", Seed: 1, Scale: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s)
	v := s.View()
	if v.State != StateDone || v.Frames == 0 {
		t.Fatalf("scenario run: state=%q frames=%d, want done with frames", v.State, v.Frames)
	}
	if m := s.Metrics(s.win.Capacity()); m.Seconds == 0 || m.UtilizationPct <= 0 {
		t.Fatalf("scenario metrics empty: %+v", m)
	}
}

func TestPushSessionIngest(t *testing.T) {
	s, err := newSession(context.Background(), "s1", Config{
		Source: SourceConfig{Type: SourcePush},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := busyQuietTrace(2, 1)
	bad := beaconRec(0, phy.Channel1)
	bad.OrigLen = 0 // fails validation
	accepted, dropped, rejected, err := s.Ingest(append(recs, bad))
	if err != nil {
		t.Fatal(err)
	}
	if accepted != len(recs) || dropped != 0 || rejected != 1 {
		t.Fatalf("ingest = %d/%d/%d, want %d/0/1", accepted, dropped, rejected, len(recs))
	}
	// The pump keeps the trailing reorder horizon buffered until the
	// stream ends, so live progress may lag slightly behind accepted.
	deadline := time.Now().Add(10 * time.Second)
	for s.View().Frames < int64(len(recs))-64 {
		if time.Now().After(deadline) {
			t.Fatalf("pump drained %d of %d", s.View().Frames, len(recs))
		}
		time.Sleep(time.Millisecond)
	}
	// Stop closes the queue, flushing the held horizon: every
	// accepted frame must reach the analyzer.
	s.Stop()
	v := s.View()
	if v.State != StateStopped {
		t.Fatalf("state %q, want stopped", v.State)
	}
	if v.Frames != int64(len(recs)) {
		t.Fatalf("analyzer saw %d of %d frames after Stop", v.Frames, len(recs))
	}
	if _, _, _, err := s.Ingest(recs); err == nil {
		t.Fatal("ingest after stop succeeded")
	}
}

func TestSessionConfigValidation(t *testing.T) {
	bad := []Config{
		{Source: SourceConfig{Type: "tape"}},
		{Source: SourceConfig{Type: SourceScenario, Scenario: "nope"}},
		{Source: SourceConfig{Type: SourcePcap, Path: ""}},
		{Source: SourceConfig{Type: SourcePcap, Path: "/nonexistent/x.pcap"}},
		{Source: SourceConfig{Type: SourcePush}, WindowSec: -1},
		{Source: SourceConfig{Type: SourcePush}, Alerts: []Rule{{Name: "x", Metric: "nope", Op: ">="}}},
	}
	for i, cfg := range bad {
		if _, err := newSession(context.Background(), "s1", cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPcapSessionBadFile(t *testing.T) {
	path := writePcap(t, nil) // valid but empty pcap is fine…
	s, err := newSession(context.Background(), "s1", Config{
		Source: SourceConfig{Type: SourcePcap, Path: path},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s)
	if v := s.View(); v.State != StateDone || v.Frames != 0 {
		t.Fatalf("empty pcap: %+v, want done/0 frames", v)
	}
}

func TestManagerLifecycle(t *testing.T) {
	m := NewManager(context.Background(), 2)
	s1, err := m.Create(Config{Source: SourceConfig{Type: SourcePush}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(Config{Source: SourceConfig{Type: SourcePush}}); err != nil {
		t.Fatal(err)
	}
	// At the cap: third create is rejected with ErrMaxSessions.
	if _, err := m.Create(Config{Source: SourceConfig{Type: SourcePush}}); !errors.Is(err, ErrMaxSessions) {
		t.Fatalf("over-cap create: %v, want ErrMaxSessions", err)
	}
	if got := len(m.List()); got != 2 {
		t.Fatalf("%d sessions listed, want 2", got)
	}
	if err := m.Delete(s1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(s1.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted session still found: %v", err)
	}
	// Freed capacity admits a new session.
	if _, err := m.Create(Config{Source: SourceConfig{Type: SourcePush}}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	for _, s := range m.List() {
		if v := s.View(); v.State == StateRunning {
			t.Fatalf("session %s still running after Close", s.ID)
		}
	}
	if _, err := m.Create(Config{Source: SourceConfig{Type: SourcePush}}); err == nil {
		t.Fatal("create after Close succeeded")
	}
}
