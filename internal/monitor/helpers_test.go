package monitor

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"wlan80211/internal/capture"
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
)

var (
	apAddr  = dot11.AddrFromUint64(0x01)
	staAddr = dot11.AddrFromUint64(0x02)
)

// rec wraps a frame into a capture record on ch.
func rec(t phy.Micros, f dot11.Frame, r phy.Rate, ch phy.Channel) capture.Record {
	return capture.Record{
		Time: t, Rate: r, Channel: ch,
		SignalDBm: -50, NoiseDBm: -95,
		OrigLen: f.WireLen(), Frame: f.AppendTo(nil),
	}
}

// dataAck appends a DATA(+ACK) exchange starting at t and returns the
// time just after the ACK.
func dataAck(recs []capture.Record, t phy.Micros, size int, r phy.Rate, seq uint16, retry bool) ([]capture.Record, phy.Micros) {
	d := dot11.NewData(apAddr, staAddr, apAddr, seq, make([]byte, size))
	d.FC.ToDS = true
	d.FC.Retry = retry
	recs = append(recs, rec(t, d, r, phy.Channel1))
	end := t + phy.Airtime(d.WireLen(), r)
	recs = append(recs, rec(end+phy.SIFS, dot11.NewACK(staAddr), phy.Rate1Mbps, phy.Channel1))
	return recs, end + phy.SIFS + phy.Airtime(14, phy.Rate1Mbps)
}

func beaconRec(t phy.Micros, ch phy.Channel) capture.Record {
	return rec(t, dot11.NewBeacon(apAddr, "net", uint8(ch), uint64(t), 1), phy.Rate1Mbps, ch)
}

// busyQuietTrace builds busySecs seconds of saturated DATA/ACK chains
// followed by quietSecs of beacon-only air — utilization high then
// near zero, the shape the alert tests need to raise and clear.
func busyQuietTrace(busySecs, quietSecs int) []capture.Record {
	var recs []capture.Record
	var seq uint16
	for sec := 0; sec < busySecs; sec++ {
		t := phy.Micros(sec) * phy.MicrosPerSecond
		limit := t + phy.MicrosPerSecond - 20_000
		for t < limit {
			recs, t = dataAck(recs, t, 1400, phy.Rate11Mbps, seq, seq%8 == 3)
			t += phy.DIFS
			seq++
		}
	}
	for sec := busySecs; sec < busySecs+quietSecs; sec++ {
		t := phy.Micros(sec) * phy.MicrosPerSecond
		for i := 0; i < 5; i++ {
			recs = append(recs, beaconRec(t+phy.Micros(i)*100_000, phy.Channel1))
		}
	}
	// A trailing beacon closes the final quiet second so windowed
	// metrics can observe it.
	recs = append(recs, beaconRec(phy.Micros(busySecs+quietSecs)*phy.MicrosPerSecond+1000, phy.Channel1))
	return recs
}

// writePcap materializes records as a radiotap pcap in t's temp dir.
func writePcap(t *testing.T, recs []capture.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("creating pcap: %v", err)
	}
	w, err := capture.NewWriter(f, 0)
	if err != nil {
		t.Fatalf("pcap writer: %v", err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("writing record: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flushing pcap: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("closing pcap: %v", err)
	}
	return path
}

// waitDone waits for a session pump to settle.
func waitDone(t *testing.T, s *Session) {
	t.Helper()
	select {
	case <-s.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("session %s did not finish", s.ID)
	}
}
