package monitor

import (
	"testing"

	"wlan80211/internal/analysis"
	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
)

// ev builds a synthetic annotated event charged to second sec with a
// given busy-time share and wire size.
func ev(sec int64, kind analysis.Kind, cbt phy.Micros, wire int, ch phy.Channel) *analysis.FrameEvent {
	return &analysis.FrameEvent{
		Rec:         capture.Record{Channel: ch, OrigLen: wire},
		Kind:        kind,
		Second:      sec,
		CBT:         cbt,
		GoodputBits: int64(wire) * 8,
	}
}

func TestWindowClosedSecondsOnly(t *testing.T) {
	w := NewWindow(10)
	w.Observe(ev(0, analysis.KindData, 1000, 100, phy.Channel1))
	// Second 0 is still open: nothing closed, nothing reported.
	if m := w.Metrics(5); m.Seconds != 0 || m.Frames != 0 {
		t.Fatalf("open second leaked into metrics: %+v", m)
	}
	w.CloseSecond(0)
	m := w.Metrics(5)
	if m.Seconds != 1 || m.Frames != 1 || m.FromSecond != 0 || m.ToSecond != 0 {
		t.Fatalf("after close: %+v, want 1 second / 1 frame", m)
	}
}

func TestWindowUtilizationAndRates(t *testing.T) {
	w := NewWindow(10)
	// Two seconds, each 40% busy: 400ms CBT per second on one channel.
	for sec := int64(0); sec < 2; sec++ {
		w.Observe(ev(sec, analysis.KindData, 400_000, 1000, phy.Channel1))
		w.CloseSecond(sec)
	}
	m := w.Metrics(2)
	if m.Seconds != 2 {
		t.Fatalf("seconds = %d, want 2", m.Seconds)
	}
	if m.UtilizationPct < 39.9 || m.UtilizationPct > 40.1 {
		t.Fatalf("utilization = %.2f%%, want 40%%", m.UtilizationPct)
	}
	// 1000 bytes per second = 8 kbit/s.
	if m.ThroughputMbps < 0.0079 || m.ThroughputMbps > 0.0081 {
		t.Fatalf("throughput = %f Mb/s, want 0.008", m.ThroughputMbps)
	}
	if m.Channels != 1 {
		t.Fatalf("channels = %d, want 1", m.Channels)
	}
	if m.Congestion != analysis.PaperClassifier().Classify(40).String() {
		t.Fatalf("congestion = %q", m.Congestion)
	}
}

func TestWindowMultiChannelNormalization(t *testing.T) {
	w := NewWindow(10)
	// One second, 400ms busy on each of two channels: per-channel
	// utilization is 40%, not 80%.
	w.Observe(ev(0, analysis.KindData, 400_000, 1000, phy.Channel1))
	w.Observe(ev(0, analysis.KindData, 400_000, 1000, phy.Channel6))
	w.CloseSecond(0)
	m := w.Metrics(1)
	if m.Channels != 2 {
		t.Fatalf("channels = %d, want 2", m.Channels)
	}
	if m.UtilizationPct < 39.9 || m.UtilizationPct > 40.1 {
		t.Fatalf("utilization = %.2f%%, want 40%% per channel", m.UtilizationPct)
	}
}

func TestWindowGapSecondsAreZero(t *testing.T) {
	w := NewWindow(10)
	w.Observe(ev(0, analysis.KindData, 500_000, 1000, phy.Channel1))
	w.CloseSecond(0)
	// The air goes idle for 4 seconds; the decoder clock still closes
	// them.
	w.CloseSecond(4)
	m := w.Metrics(5)
	if m.Seconds != 5 {
		t.Fatalf("seconds = %d, want 5 (gaps materialized)", m.Seconds)
	}
	if m.UtilizationPct < 9.9 || m.UtilizationPct > 10.1 {
		t.Fatalf("utilization = %.2f%%, want 10%% (50%% averaged over 5s)", m.UtilizationPct)
	}
}

func TestWindowRingWrap(t *testing.T) {
	w := NewWindow(4)
	for sec := int64(0); sec < 10; sec++ {
		w.Observe(ev(sec, analysis.KindData, phy.Micros(sec)*1000, 100, phy.Channel1))
		w.CloseSecond(sec)
	}
	// Requesting more than capacity clamps to the ring.
	m := w.Metrics(100)
	if m.WindowSec != 4 || m.Seconds != 4 {
		t.Fatalf("window=%d seconds=%d, want 4/4 after wrap", m.WindowSec, m.Seconds)
	}
	if m.FromSecond != 6 || m.ToSecond != 9 {
		t.Fatalf("covered [%d,%d], want [6,9]", m.FromSecond, m.ToSecond)
	}
	s := w.Series(100)
	if len(s) != 4 || s[0].Second != 6 || s[3].Second != 9 {
		t.Fatalf("series %v, want seconds 6..9", s)
	}
}

func TestWindowRetryRate(t *testing.T) {
	w := NewWindow(10)
	// Retry detection needs the parsed frame; drive it through a real
	// analyzer with the collector attached instead of synthesizing.
	win := w
	a, err := analysis.New(analysis.Options{
		Metrics: []string{"util"},
		Extra:   []analysis.Factory{newCollectorFactory(win, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var recs []capture.Record
	t0 := phy.Micros(0)
	for i := 0; i < 8; i++ {
		recs, t0 = dataAck(recs, t0, 200, phy.Rate11Mbps, uint16(i), i%4 == 0)
		t0 += phy.DIFS
	}
	recs = append(recs, beaconRec(2*phy.MicrosPerSecond, phy.Channel1))
	for _, r := range recs {
		a.Feed(r)
	}
	a.Result()
	m := win.Metrics(10)
	// 8 data frames, 2 retries: 25%.
	if m.RetryRatePct < 24.9 || m.RetryRatePct > 25.1 {
		t.Fatalf("retry rate = %.2f%%, want 25%%", m.RetryRatePct)
	}
}
