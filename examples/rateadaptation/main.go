// Rateadaptation: compares rate-adaptation schemes under congestion —
// the experiment behind the paper's Section 7 recommendation that
// SNR-based adaptation (which doesn't mistake collisions for channel
// errors) should replace loss-triggered ARF in congested cells.
//
// It runs the same saturated cell four times, identical except for the
// adaptation scheme, and reports delivered goodput, drop rate, and the
// 1 Mbps channel-time share.
package main

import (
	"fmt"
	"os"

	"wlan80211/internal/analysis"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
	"wlan80211/internal/report"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
)

func main() {
	schemes := []struct {
		name string
		f    rate.Factory
	}{
		{"arf", rate.NewARFFactory()},
		{"aarf", rate.NewAARFFactory()},
		{"snr", rate.NewSNRFactory()},
		{"fixed-11", rate.NewFixedFactory(phy.Rate11Mbps)},
	}

	t := report.NewTable("Rate adaptation under a saturated cell (20 stations, 30 s)",
		"scheme", "goodput_mbps", "acked", "dropped", "busytime_1mbps_s")
	for _, s := range schemes {
		goodput, acked, dropped, bt1 := run(s.f)
		t.AddRow(s.name, goodput, acked, dropped, bt1)
	}
	t.WriteTo(os.Stdout)
	fmt.Println("\nThe loss-triggered schemes (arf, aarf) hand channel time to 1 Mbps")
	fmt.Println("retransmissions under collision pressure; the SNR scheme holds 11 Mbps")
	fmt.Println("(Sec 7 of the paper). fixed-11 is the no-adaptation upper bound.")
}

func run(f rate.Factory) (goodput float64, acked, dropped int64, bt1 float64) {
	cfg := sim.DefaultConfig()
	cfg.Seed = 99
	net := sim.New(cfg)
	ap := net.AddAP("ap", sim.Position{X: 12, Y: 12}, phy.Channel1)
	sn := sniffer.New(sniffer.DefaultConfig("S", 1, sim.Position{X: 12, Y: 14}, phy.Channel1))
	net.AddTap(sn)
	for i := 0; i < 20; i++ {
		st := net.AddStation(fmt.Sprintf("u%d", i),
			sim.Position{X: 4 + float64(i%10)*1.8, Y: 6 + float64(i/10)*10}, ap, f)
		net.StartTraffic(st, sim.ProfileBulk, 6)
	}
	const seconds = 30
	net.RunFor(seconds * phy.MicrosPerSecond)

	r := analysis.Analyze(sn.Records())
	// Mean goodput and 1 Mbps busy time across all observed seconds.
	goodput = r.Goodput.MeanOver(0, 100)
	bt1 = r.BusyTimePerRate[0].MeanOver(0, 100)
	return goodput, net.Stats.DataAcked, net.Stats.DataDropped, bt1
}
