// Congestionmonitor: a streaming per-second congestion classifier —
// the "robust operation" use case from the paper's introduction. It
// plugs a custom Metric stage into the analysis pipeline: the shared
// decoder computes channel busy-time (Equations 2–8) once per frame,
// the stage classifies each finished second, and an alert fires
// whenever the channel's congestion class changes. Records flow in
// incrementally (here from a live simulation, in production from a
// monitor-mode interface via Analyzer.Run).
package main

import (
	"fmt"

	"wlan80211/internal/analysis"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
	"wlan80211/internal/workload"
)

// monitor is a custom analysis.Metric: an incremental per-second
// utilization classifier. The decoder hands it every frame's CBT
// charge; it only has to bucket and classify.
type monitor struct {
	classifier analysis.Classifier
	cbt        phy.Micros
	last       analysis.Class
}

// OnFrame accumulates the open second's busy time.
func (m *monitor) OnFrame(ev *analysis.FrameEvent) { m.cbt += ev.CBT }

// OnSecond classifies the finished second and reports transitions.
func (m *monitor) OnSecond(sec int64) {
	u := analysis.UtilizationPercent(m.cbt)
	m.cbt = 0
	class := m.classifier.Classify(u)
	marker := "  "
	if class != m.last {
		marker = "▶ " // class transition: this is the alert
	}
	fmt.Printf("%st=%3ds  util=%3d%%  %s\n", marker, sec, u, class)
	m.last = class
}

// Finalize has nothing to merge: the monitor's output is its alerts.
func (m *monitor) Finalize(r *analysis.Result) {}

func main() {
	fmt.Println("congestion monitor (channel 1) — ▶ marks class transitions")

	analysis.Register("congestion-alert", "live per-second congestion class transitions",
		func() analysis.Metric { return &monitor{classifier: analysis.PaperClassifier()} })
	a, err := analysis.New(analysis.Options{Metrics: []string{"congestion-alert"}})
	if err != nil {
		panic(err)
	}

	// Live source: a cell whose load ramps from light to saturated.
	sw := workload.Sweep{
		Stations:    16,
		StepSec:     3,
		TailSec:     10,
		Load:        4,
		RoomSize:    22,
		RateFactory: rate.NewMixedFactory(),
		Channel:     phy.Channel1,
		Seed:        42,
	}
	// Rebuild the sweep manually so the analyzer sees records as the
	// simulation produces them (streaming, not post-hoc).
	cfg := sim.DefaultConfig()
	cfg.Seed = sw.Seed
	net := sim.New(cfg)
	ap := net.AddAP("ap", sim.Position{X: 11, Y: 11}, sw.Channel)
	sn := sniffer.New(sniffer.DefaultConfig("mon", 1, sim.Position{X: 11, Y: 13}, sw.Channel))

	seen := 0
	net.AddTap(tapFunc(func(o sim.TxObservation) {
		sn.ObserveTransmission(o)
		for _, r := range sn.Records()[seen:] {
			a.Feed(r)
			seen++
		}
	}))

	for i := 0; i < sw.Stations; i++ {
		st := net.AddStation(fmt.Sprintf("u%d", i), sim.Position{X: 5 + float64(i), Y: 9}, ap, sw.RateFactory)
		at := phy.Micros(i*sw.StepSec) * phy.MicrosPerSecond
		net.Schedule(at, func() { net.StartTraffic(st, sim.ProfileBulk, sw.Load) })
	}
	net.RunFor(phy.Micros(sw.DurationSec()) * phy.MicrosPerSecond)
	a.Result() // close the final second (flushes the last alert line)
}

type tapFunc func(sim.TxObservation)

func (f tapFunc) ObserveTransmission(o sim.TxObservation) { f(o) }
