// Congestionmonitor: a streaming per-second congestion classifier —
// the "robust operation" use case from the paper's introduction. It
// consumes capture records incrementally (here from a live simulation,
// in production from a monitor-mode interface), computes channel
// busy-time with the paper's Equations 2–8 on the fly, and raises an
// alert whenever the channel's congestion class changes.
package main

import (
	"fmt"

	"wlan80211/internal/capture"
	"wlan80211/internal/core"
	"wlan80211/internal/dot11"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
	"wlan80211/internal/workload"
)

// monitor is an incremental per-second utilization classifier built on
// the core package's CBT primitives.
type monitor struct {
	classifier core.Classifier
	second     int64
	cbt        phy.Micros
	last       core.Class
	started    bool
}

// feed consumes one capture record; when a second boundary passes it
// classifies the finished second and reports transitions.
func (m *monitor) feed(r capture.Record) {
	sec := r.Second()
	for m.started && m.second < sec {
		m.finishSecond()
	}
	if !m.started {
		m.started = true
		m.second = sec
	}
	p, err := dot11.Parse(r.Frame)
	if err != nil {
		return
	}
	switch p.Frame.(type) {
	case *dot11.Data:
		m.cbt += core.CBTData(r.OrigLen, r.Rate)
	case *dot11.RTS:
		m.cbt += core.CBTRTS()
	case *dot11.CTS:
		m.cbt += core.CBTCTS()
	case *dot11.ACK:
		m.cbt += core.CBTACK()
	case *dot11.Beacon:
		m.cbt += core.CBTBeacon()
	default:
		m.cbt += core.CBTData(r.OrigLen, r.Rate)
	}
}

func (m *monitor) finishSecond() {
	u := core.UtilizationPercent(m.cbt)
	class := m.classifier.Classify(u)
	marker := "  "
	if class != m.last {
		marker = "▶ " // class transition: this is the alert
	}
	fmt.Printf("%st=%3ds  util=%3d%%  %s\n", marker, m.second, u, class)
	m.last = class
	m.second++
	m.cbt = 0
}

func main() {
	fmt.Println("congestion monitor (channel 1) — ▶ marks class transitions")

	// Live source: a cell whose load ramps from light to saturated.
	sw := workload.Sweep{
		Stations:    16,
		StepSec:     3,
		TailSec:     10,
		Load:        4,
		RoomSize:    22,
		RateFactory: rate.NewMixedFactory(),
		Channel:     phy.Channel1,
		Seed:        42,
	}
	// Rebuild the sweep manually so the monitor sees records as the
	// simulation produces them (streaming, not post-hoc).
	cfg := sim.DefaultConfig()
	cfg.Seed = sw.Seed
	net := sim.New(cfg)
	ap := net.AddAP("ap", sim.Position{X: 11, Y: 11}, sw.Channel)
	sn := sniffer.New(sniffer.DefaultConfig("mon", 1, sim.Position{X: 11, Y: 13}, sw.Channel))

	m := &monitor{classifier: core.PaperClassifier()}
	seen := 0
	net.AddTap(tapFunc(func(o sim.TxObservation) {
		sn.ObserveTransmission(o)
		for _, r := range sn.Records()[seen:] {
			m.feed(r)
			seen++
		}
	}))

	for i := 0; i < sw.Stations; i++ {
		st := net.AddStation(fmt.Sprintf("u%d", i), sim.Position{X: 5 + float64(i), Y: 9}, ap, sw.RateFactory)
		at := phy.Micros(i*sw.StepSec) * phy.MicrosPerSecond
		net.Schedule(at, func() { net.StartTraffic(st, sim.ProfileBulk, sw.Load) })
	}
	net.RunFor(phy.Micros(sw.DurationSec()) * phy.MicrosPerSecond)
}

type tapFunc func(sim.TxObservation)

func (f tapFunc) ObserveTransmission(o sim.TxObservation) { f(o) }
