// Snifferstudy: quantifies how sniffer count and placement change the
// unrecorded-frame percentage — the methodological question of the
// paper's Section 4.4, which recommends "a greater number of sniffers
// and better hardware" for future measurement campaigns.
//
// The same day-session-style network is captured by 1, 2, and 3
// sniffers (spread placements) plus a deliberately bad far-corner
// placement; for each we report the estimated unrecorded percentage
// (Equation 1, what a measurement team could compute) next to the
// ground-truth capture miss rate (which only the simulator knows).
package main

import (
	"fmt"
	"os"

	"wlan80211/internal/analysis"
	"wlan80211/internal/capture"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
	"wlan80211/internal/report"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
)

func main() {
	placements := []struct {
		name string
		pos  []sim.Position
	}{
		{"1 sniffer (center)", []sim.Position{{X: 30, Y: 18}}},
		{"2 sniffers", []sim.Position{{X: 18, Y: 18}, {X: 42, Y: 18}}},
		{"3 sniffers (paper's layout)", []sim.Position{{X: 12, Y: 30}, {X: 30, Y: 18}, {X: 48, Y: 8}}},
		{"1 sniffer (far corner)", []sim.Position{{X: 118, Y: 95}}},
	}

	t := report.NewTable("Unrecorded frames vs sniffer placement (channel 1)",
		"placement", "captured", "est_unrecorded_pct", "truth_miss_pct")
	for _, p := range placements {
		captured, est, truth := run(p.pos)
		t.AddRow(p.name, captured, est, truth)
	}
	t.WriteTo(os.Stdout)
	fmt.Println("\nEstimated % uses only DCF atomicity (Eq. 1) — it undercounts when")
	fmt.Println("both halves of an exchange are missed, exactly as the paper warns.")
}

func run(positions []sim.Position) (captured int64, estPct, truthPct float64) {
	cfg := sim.DefaultConfig()
	cfg.Seed = 5
	net := sim.New(cfg)
	// A wide hall: two APs on channel 1 far apart, users around each,
	// so single sniffers cannot hear everything.
	ap1 := net.AddAP("ap1", sim.Position{X: 15, Y: 18}, phy.Channel1)
	ap2 := net.AddAP("ap2", sim.Position{X: 45, Y: 18}, phy.Channel1)
	f := rate.NewMixedFactory()
	for i := 0; i < 10; i++ {
		st := net.AddStation(fmt.Sprintf("a%d", i), sim.Position{X: 8 + float64(i)*1.5, Y: 12}, ap1, f)
		net.StartTraffic(st, sim.ProfileWeb, 3)
	}
	for i := 0; i < 10; i++ {
		st := net.AddStation(fmt.Sprintf("b%d", i), sim.Position{X: 38 + float64(i)*1.5, Y: 24}, ap2, f)
		net.StartTraffic(st, sim.ProfileWeb, 3)
	}

	var sniffers []*sniffer.Sniffer
	for i, pos := range positions {
		sn := sniffer.New(sniffer.DefaultConfig(fmt.Sprintf("S%d", i), i+1, pos, phy.Channel1))
		net.AddTap(sn)
		sniffers = append(sniffers, sn)
	}
	net.RunFor(20 * phy.MicrosPerSecond)

	traces := make([][]capture.Record, len(sniffers))
	var seen, missed int64
	for i, sn := range sniffers {
		traces[i] = sn.Records()
		seen = sn.Seen // identical across sniffers on one channel
		missed += sn.Seen - sn.Captured
	}
	merged := capture.Merge(traces...)
	r := analysis.Analyze(merged)

	// Ground truth miss rate for the union: a frame is missed only if
	// every sniffer missed it; approximate with merged/seen.
	truth := 0.0
	if seen > 0 {
		truth = 100 * float64(seen-int64(len(merged))) / float64(seen)
		if truth < 0 {
			truth = 0
		}
	}
	return int64(len(merged)), r.Unrecorded.Percent(), truth
}
