// Quickstart: simulate a congested 802.11b cell for 30 seconds,
// analyze the sniffer trace with the paper's pipeline, and print the
// congestion classification — the minimal end-to-end use of the
// library.
package main

import (
	"fmt"
	"os"

	"wlan80211/internal/analysis"
	"wlan80211/internal/phy"
	"wlan80211/internal/rate"
	"wlan80211/internal/report"
	"wlan80211/internal/sim"
	"wlan80211/internal/sniffer"
)

func main() {
	// Build a single-AP network with 12 stations running mixed
	// vendor-style rate adaptation.
	net := sim.New(sim.DefaultConfig())
	ap := net.AddAP("ap", sim.Position{X: 10, Y: 10}, phy.Channel6)
	factory := rate.NewMixedFactory()
	for i := 0; i < 12; i++ {
		pos := sim.Position{X: 4 + float64(i), Y: 12}
		st := net.AddStation(fmt.Sprintf("laptop-%d", i), pos, ap, factory)
		net.StartTraffic(st, sim.ProfileWeb, 6)
	}

	// Attach a vicinity sniffer and run for 30 simulated seconds.
	sn := sniffer.New(sniffer.DefaultConfig("A", 1, sim.Position{X: 10, Y: 14}, phy.Channel6))
	net.AddTap(sn)
	net.RunFor(30 * phy.MicrosPerSecond)

	// Analyze the capture exactly as the paper does.
	result := analysis.Analyze(sn.Records())
	classifier := analysis.PaperClassifier()

	fmt.Printf("captured %d frames (%.1f%% of channel activity)\n\n",
		result.TotalFrames, 100*(1-sn.UnrecordedTruth()))
	fmt.Println("per-second congestion classification (channel 6):")
	for _, s := range result.PerChannel[phy.Channel6] {
		fmt.Printf("  t=%2ds  utilization=%3d%%  throughput=%.2f Mbps  %s\n",
			s.Second, s.Utilization, s.ThroughputMbps,
			classifier.Classify(s.Utilization))
	}
	fmt.Println()
	report.Summary(result).WriteTo(os.Stdout)
}
