package repro

import (
	"bytes"
	"reflect"
	"testing"

	"wlan80211/internal/analysis"
	"wlan80211/internal/capture"
	"wlan80211/internal/core"
	"wlan80211/internal/phy"
	"wlan80211/internal/workload"
)

// These integration tests lock in the paper's headline observations as
// executable assertions over the full pipeline (simulate → sniff →
// pcap round-trip → analyze). They assert the *shape* of each result —
// who wins, which direction curves move — not absolute values, per the
// reproduction contract in DESIGN.md.

// TestEndToEndPcapRoundTrip pushes a session trace through the on-disk
// pcap format and verifies the analysis is identical to the in-memory
// path (the wire format loses nothing the analysis needs, apart from
// snap-length truncation which both paths share).
func TestEndToEndPcapRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	b, err := workload.DaySession().Scale(0.15).Build()
	if err != nil {
		t.Fatal(err)
	}
	recs := b.Run()
	direct := core.Analyze(recs)

	var buf bytes.Buffer
	w, err := capture.NewWriter(&buf, 250)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	loaded, skipped, err := capture.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d records", skipped)
	}
	viaDisk := core.Analyze(loaded)

	if direct.TotalFrames != viaDisk.TotalFrames {
		t.Errorf("frame counts differ: %d vs %d", direct.TotalFrames, viaDisk.TotalFrames)
	}
	if direct.Unrecorded != viaDisk.Unrecorded {
		t.Errorf("unrecorded stats differ: %+v vs %+v", direct.Unrecorded, viaDisk.Unrecorded)
	}
	dm, _ := direct.UtilHist.Mode()
	lm, _ := viaDisk.UtilHist.Mode()
	if dm != lm {
		t.Errorf("modal utilization differs: %d vs %d", dm, lm)
	}
}

// TestStreamingEquivalenceOnFixtures is the redesign's acceptance
// gate at full fidelity: on the repro fixtures (the multi-channel day
// session and the sweep ladder), feeding records incrementally through
// the streaming pipeline — sequentially or sharded per channel across
// goroutines — produces a Result identical to the batch entry point.
func TestStreamingEquivalenceOnFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, tc := range []struct {
		name  string
		trace []capture.Record
	}{{"day", day()}, {"sweep", sweep()}} {
		t.Run(tc.name, func(t *testing.T) {
			batch := core.Analyze(tc.trace)

			a, err := analysis.New(analysis.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Feed in capture order (interleaved across channels), one
			// record at a time, as a live merge would deliver them.
			for _, r := range tc.trace {
				a.Feed(r)
			}
			if streamed := a.Result(); !reflect.DeepEqual(batch, streamed) {
				t.Error("incremental streaming result differs from batch")
			}

			parallel, err := analysis.AnalyzeWith(analysis.Options{Parallel: true}, tc.trace)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(batch, parallel) {
				t.Error("parallel sharded result differs from batch")
			}
		})
	}
}

// sweepResult is shared by the shape tests below (one ladder run).
func sweepResult(t *testing.T) *core.Result {
	t.Helper()
	if testing.Short() {
		t.Skip("slow")
	}
	return core.Analyze(sweep()) // bench_test.go's cached ladder trace
}

// TestShape_ThroughputRisesThenPeaks asserts Figure 6's shape: mean
// throughput over moderate utilization exceeds light utilization, and
// the knee falls inside the paper's analysis range.
func TestShape_ThroughputRisesThenPeaks(t *testing.T) {
	r := sweepResult(t)
	light := r.Throughput.MeanOver(10, 40)
	moderate := r.Throughput.MeanOver(60, 90)
	if moderate <= light {
		t.Errorf("throughput must rise with utilization: light=%.2f moderate=%.2f", light, moderate)
	}
	knee := r.FindKnee(30, 99, 5)
	if knee < 40 || knee > 99 {
		t.Errorf("knee = %d%%, outside plausible range", knee)
	}
	// Goodput never exceeds throughput in any populated band.
	for u := 0; u <= 100; u++ {
		tm, tn := r.Throughput.Mean(u)
		gm, gn := r.Goodput.Mean(u)
		if tn > 0 && gn > 0 && gm > tm+1e-9 {
			t.Errorf("goodput %v > throughput %v at %d%%", gm, tm, u)
		}
	}
}

// TestShape_OneMbpsBusyTimeGrows asserts Figure 8's core finding: the
// fraction of each second consumed by 1 Mbps frames grows from
// moderate to high congestion, and 1 Mbps occupies more time than
// 11 Mbps at high congestion despite carrying fewer bytes (Figure 9).
func TestShape_OneMbpsBusyTimeGrows(t *testing.T) {
	r := sweepResult(t)
	bt1Mid := r.BusyTimePerRate[0].MeanOver(40, 70)
	bt1High := r.BusyTimePerRate[0].MeanOver(80, 99)
	if bt1High <= bt1Mid {
		t.Errorf("1 Mbps busy time must grow with congestion: %.3f → %.3f", bt1Mid, bt1High)
	}
	bt11High := r.BusyTimePerRate[3].MeanOver(80, 99)
	if bt1High <= bt11High {
		t.Errorf("at high congestion 1 Mbps time (%.3f) must exceed 11 Mbps time (%.3f)", bt1High, bt11High)
	}
	by1 := r.BytesPerRate[0].MeanOver(70, 99)
	by11 := r.BytesPerRate[3].MeanOver(70, 99)
	if by11 <= by1 {
		t.Errorf("11 Mbps must move more bytes than 1 Mbps: %.0f vs %.0f", by11, by1)
	}
}

// TestShape_MiddleRatesScarce asserts the paper's first headline
// observation: 2 and 5.5 Mbps carry a minority of data transmissions
// at every congestion level.
func TestShape_MiddleRatesScarce(t *testing.T) {
	r := sweepResult(t)
	var per [4]float64
	for ri, rt := range phy.Rates {
		for s := core.SizeS; s <= core.SizeXL; s++ {
			ci, _ := core.Category{Size: s, Rate: rt}.Index()
			per[ri] += r.TxPerCategory[ci].MeanOver(30, 99)
		}
	}
	mid := per[1] + per[2]
	edge := per[0] + per[3]
	if mid >= edge {
		t.Errorf("middle rates (%.1f tx/s) must be scarce vs 1+11 Mbps (%.1f tx/s)", mid, edge)
	}
}

// TestShape_AcceptanceDelayOrdering asserts Figure 15's findings at
// high congestion: 1 Mbps frames wait longer than 11 Mbps frames, and
// specifically a small 1 Mbps frame waits longer than an extra-large
// 11 Mbps frame.
func TestShape_AcceptanceDelayOrdering(t *testing.T) {
	r := sweepResult(t)
	at := func(size core.SizeClass, rt phy.Rate) float64 {
		ci, _ := core.Category{Size: size, Rate: rt}.Index()
		return r.AcceptDelay[ci].MeanOver(70, 99)
	}
	s1, s11 := at(core.SizeS, phy.Rate1Mbps), at(core.SizeS, phy.Rate11Mbps)
	xl11 := at(core.SizeXL, phy.Rate11Mbps)
	if s1 <= s11 {
		t.Errorf("S-1 delay (%.4fs) must exceed S-11 (%.4fs)", s1, s11)
	}
	if s1 <= xl11 {
		t.Errorf("S-1 delay (%.4fs) must exceed XL-11 (%.4fs): the paper's size-independence claim", s1, xl11)
	}
}

// TestShape_RTSCTSRelationship asserts Figure 7's structure: CTS
// counts never exceed RTS counts in any populated band (a CTS needs a
// delivered RTS), and RTS activity exists across the congestion range.
func TestShape_RTSCTSRelationship(t *testing.T) {
	r := sweepResult(t)
	seen := false
	for u := 30; u <= 99; u++ {
		rm, rn := r.RTSPerSec.Mean(u)
		cm, cn := r.CTSPerSec.Mean(u)
		if rn == 0 || cn == 0 {
			continue
		}
		seen = true
		if cm > rm+1e-9 {
			t.Errorf("CTS/s (%.2f) exceeds RTS/s (%.2f) at %d%%", cm, rm, u)
		}
	}
	if !seen {
		t.Error("no RTS/CTS data in the sweep")
	}
}

// TestShape_SessionsMatchTable1 asserts the day/plenary contrast of
// Figure 5(c): the plenary's modal utilization exceeds the day's.
func TestShape_SessionsMatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dayMode, _ := core.Analyze(day()).UtilHist.Mode()
	plenMode, _ := core.Analyze(plenary()).UtilHist.Mode()
	if plenMode <= dayMode {
		t.Errorf("plenary mode (%d%%) must exceed day mode (%d%%)", plenMode, dayMode)
	}
}

// TestShape_UnrecordedEstimatorUnderestimates validates the estimator
// against ground truth: Equation 1 is a lower bound (it cannot see
// exchanges where both halves were missed), so the estimate must be
// positive under lossy capture yet below the true miss rate.
func TestShape_UnrecordedEstimatorUnderestimates(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	b, err := workload.DaySession().Scale(0.2).Build()
	if err != nil {
		t.Fatal(err)
	}
	recs := b.Run()
	var seen, captured int64
	for _, sn := range b.Sniffers {
		seen += sn.Seen
		captured += sn.Captured
	}
	if seen == 0 || captured == seen {
		t.Skip("no capture loss in this run; nothing to validate")
	}
	truth := 100 * float64(seen-captured) / float64(seen)
	est := core.Analyze(recs).Unrecorded.Percent()
	if est < 0 {
		t.Fatalf("estimate negative: %v", est)
	}
	if est > truth*1.5+1 {
		t.Errorf("estimate %.2f%% wildly exceeds truth %.2f%%", est, truth)
	}
}
