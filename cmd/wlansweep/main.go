// Command wlansweep runs a seeds × scales × scenarios experiment
// matrix on a worker pool, streaming every run straight into the
// analysis pipeline (no materialized traces), and reports per-group
// mean±stddev summary rows — the multi-run aggregate view the paper's
// own results are: averages over many sniffer-hours at different
// congestion levels.
//
// Usage:
//
//	wlansweep                                         # day+plenary, 4 seeds, scale 0.25
//	wlansweep -scenarios sweep,ladder -scales 0.2,0.4
//	wlansweep -scenarios grid -runs 4 -scales 1.0     # 2×2 multi-cell grid: co-channel
//	                                                  # interference, roaming mobiles,
//	                                                  # mixed b/g, 2 sniffers/channel
//	wlansweep -scenarios grid9 -reduce -runs 16       # 3×3 grid, reduce-as-you-go:
//	                                                  # only aggregate rows retained
//	wlansweep -seeds 62,63,64,65 -scales 0.5 -workers 4
//	wlansweep -runs 8 -json matrix.json               # 8 seeds per cell + JSON archive
//	wlansweep -list                                   # registered scenarios
//
// Crash-resumable campaigns journal every completed run and snapshot
// in-flight runs, so a killed sweep resumes bit-identically:
//
//	wlansweep -campaign DIR -checkpoint 5             # journal + snapshot every 5 sim-s
//	wlansweep -resume DIR                             # skip finished runs, replay-verify
//	                                                  # interrupted ones, same aggregates
//
// Distributed sweeps shard one campaign across worker processes: a
// coordinator leases spec ranges over HTTP (/api/v1) and folds the
// uploaded journals into a report byte-identical to a single-process
// run. Workers are crash-safe the same way campaigns are:
//
//	wlansweep -serve :8410 -dispatch DIR -scenarios grid -runs 8   # coordinator
//	wlansweep -worker http://HOST:8410 -workdir W1                 # as many as you like
//	wlansweep -serve :8410 -resume DIR                             # resume a coordinator
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wlan80211/internal/dispatch"
	"wlan80211/internal/experiment"
	"wlan80211/internal/phy"
	"wlan80211/internal/prof"
	"wlan80211/internal/snapshot"
)

// jsonReport is the -json document: the expanded matrix, one row per
// run, and the scenario+scale aggregates.
type jsonReport struct {
	Scenarios  []string                `json:"scenarios"`
	Seeds      []int64                 `json:"seeds"`
	Scales     []float64               `json:"scales"`
	Workers    int                     `json:"workers"`
	Runs       []jsonRun               `json:"runs"`
	Aggregates []experiment.Aggregated `json:"aggregates"`
}

// jsonRun is one matrix cell's outcome.
type jsonRun struct {
	Scenario string             `json:"scenario"`
	Seed     int64              `json:"seed"`
	Scale    float64            `json:"scale"`
	Params   []experiment.Param `json:"params,omitempty"`
	Summary  experiment.Summary `json:"summary"`
	Error    string             `json:"error,omitempty"`
}

func main() {
	var (
		scenarios = flag.String("scenarios", "day,plenary", "comma-separated scenario names (see -list)")
		seeds     = flag.String("seeds", "", "comma-separated seeds (default: 1..runs)")
		runs      = flag.Int("runs", 4, "seeds per cell when -seeds is empty (seed 1..N)")
		scales    = flag.String("scales", "0.25", "comma-separated scale factors (1.0 = full size)")
		workers   = flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
		metrics   = flag.String("metrics", "", "comma-separated analysis stages (default: all)")
		jsonOut   = flag.String("json", "", "also write the full report as JSON to this path (- = stdout)")
		reduce    = flag.Bool("reduce", false, "reduce as you go: retain only aggregate rows, not per-run results (for very large matrices; -json omits runs)")
		campaign  = flag.String("campaign", "", "run as a crash-resumable campaign in this directory (journal + snapshots)")
		resume    = flag.String("resume", "", "resume the campaign in this directory (matrix flags ignored; campaign.json is authoritative)")
		checkp    = flag.Float64("checkpoint", 0, "with -campaign: mid-run snapshot interval in sim-seconds (0 = journal only)")
		serve     = flag.String("serve", "", "run as a distributed-sweep coordinator listening on this address (host:port)")
		dispatchD = flag.String("dispatch", "", "with -serve: coordinator state directory")
		shardSize = flag.Int("shard-size", 1, "with -serve: specs per worker lease")
		leaseTTL  = flag.Float64("lease-ttl", 15, "with -serve: seconds a lease survives without a heartbeat before its shard is reassigned")
		workerURL = flag.String("worker", "", "run as a distributed-sweep worker against this coordinator URL")
		workdir   = flag.String("workdir", "wlansweep-worker", "with -worker: worker state directory (shard campaigns live here)")
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the matrix run to this file")
		memProf   = flag.String("memprofile", "", "write an allocs/heap profile to this file at exit")
	)
	flag.Parse()
	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlansweep:", err)
		os.Exit(2)
	}
	// fatal and every explicit os.Exit flush through profStop (defers
	// don't run across os.Exit); stop is idempotent, so the normal-exit
	// defer and an early-exit flush cannot double-write.
	profStop = stop
	defer stop()
	if *list {
		for _, n := range experiment.Names() {
			fmt.Println(n)
		}
		return
	}

	m := experiment.Matrix{Scenarios: splitList(*scenarios)}
	if m.Scales, err = parseFloats(*scales); err != nil {
		fatal(err)
	}
	if *seeds != "" {
		if m.Seeds, err = parseInts(*seeds); err != nil {
			fatal(err)
		}
	} else {
		for s := int64(1); s <= int64(*runs); s++ {
			m.Seeds = append(m.Seeds, s)
		}
	}

	// SIGINT/SIGTERM stops dispatching new runs; in-flight runs
	// complete and the partial matrix is still reported, so a long
	// sweep cut short keeps what it already paid for.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *serve != "" || *workerURL != "" {
		if *serve != "" && *workerURL != "" {
			fatal(errors.New("-serve and -worker are mutually exclusive"))
		}
		if *campaign != "" || *reduce {
			fatal(errors.New("-serve/-worker do not combine with -campaign or -reduce"))
		}
		if *workerURL != "" {
			if *resume != "" {
				fatal(errors.New("-worker does not take -resume (workers resume their own shard journals automatically)"))
			}
			runWorkerMode(ctx, *workerURL, *workdir, *workers)
			return
		}
		cfg := dispatch.Config{
			CheckpointMicros: int64(*checkp * float64(phy.MicrosPerSecond)),
			Metrics:          splitList(*metrics),
			ShardSize:        *shardSize,
			LeaseTTL:         time.Duration(*leaseTTL * float64(time.Second)),
			Logf:             logStderr,
		}
		switch {
		case *resume != "":
			cfg.Dir = *resume // manifest is authoritative; matrix flags ignored
		case *dispatchD != "":
			cfg.Dir = *dispatchD
			cfg.Matrix = m
		default:
			fatal(errors.New("-serve requires -dispatch DIR (or -resume DIR)"))
		}
		runServeMode(ctx, *serve, cfg, *jsonOut)
		return
	}

	specs, err := m.Expand()
	if err != nil {
		fatal(err)
	}

	if *campaign != "" || *resume != "" {
		if *campaign != "" && *resume != "" {
			fatal(errors.New("-campaign and -resume are mutually exclusive"))
		}
		if *reduce {
			fatal(errors.New("-reduce does not apply to campaigns (the journal already bounds memory)"))
		}
		runCampaignMode(ctx, *campaign, *resume, m, experiment.CampaignOptions{
			Workers:    *workers,
			Metrics:    splitList(*metrics),
			Checkpoint: phy.Micros(*checkp * float64(phy.MicrosPerSecond)),
		}, *jsonOut)
		return
	}

	eng := &experiment.Engine{Workers: *workers, Metrics: splitList(*metrics)}
	var results []experiment.RunResult
	var aggs []experiment.Aggregated
	failed, canceled := 0, 0
	if *reduce {
		// Reduce-as-you-go: per-run Results are dropped the moment
		// their summary folds into the aggregates, so the matrix size
		// no longer bounds memory.
		var errs []error
		aggs, errs = eng.RunReduceContext(ctx, specs)
		for i, err := range errs {
			switch {
			case errors.Is(err, context.Canceled):
				canceled++
			case err != nil:
				failed++
				s := specs[i]
				fmt.Fprintf(os.Stderr, "wlansweep: %s seed=%d scale=%g: %v\n", s.Name, s.Seed, s.Scale, err)
			}
		}
	} else {
		results = eng.RunContext(ctx, specs)
		aggs = experiment.Aggregate(results)
		for _, r := range results {
			switch {
			case errors.Is(r.Err, context.Canceled):
				canceled++
			case r.Err != nil:
				failed++
				fmt.Fprintf(os.Stderr, "wlansweep: %s seed=%d scale=%g: %v\n", r.Spec.Name, r.Spec.Seed, r.Spec.Scale, r.Err)
			}
		}
	}
	if canceled > 0 {
		fmt.Fprintf(os.Stderr, "wlansweep: interrupted: %d of %d runs canceled, reporting the %d completed\n",
			canceled, len(specs), len(specs)-canceled)
	}

	// With -json - the JSON document owns stdout; the table would
	// corrupt it for any consumer.
	if *jsonOut != "-" {
		title := fmt.Sprintf("Experiment matrix (%d runs)", len(specs))
		if canceled > 0 {
			title = fmt.Sprintf("Experiment matrix (%d of %d runs; interrupted)", len(specs)-canceled, len(specs))
		}
		experiment.AggregateTable(title, aggs).WriteTo(os.Stdout)
	}

	if *jsonOut != "" {
		doc := jsonReport{
			Scenarios:  m.Scenarios,
			Seeds:      m.Seeds,
			Scales:     m.Scales,
			Workers:    *workers,
			Aggregates: aggs,
		}
		for _, r := range results {
			jr := jsonRun{
				Scenario: r.Spec.Name,
				Seed:     r.Spec.Seed,
				Scale:    r.Spec.Scale,
				Summary:  r.Summary,
			}
			if r.Spec.Scenario != nil {
				jr.Params = r.Spec.Scenario.Params()
			}
			if r.Err != nil {
				jr.Error = r.Err.Error()
			}
			doc.Runs = append(doc.Runs, jr)
		}
		if *jsonOut == "-" {
			enc, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				fatal(err)
			}
			os.Stdout.Write(append(enc, '\n'))
		} else if err := experiment.WriteJSONAtomic(*jsonOut, doc); err != nil {
			// temp-file+rename: an interrupt mid-write can never leave a
			// torn report where a previous good one stood.
			fatal(err)
		}
	}
	if failed > 0 {
		profStop()
		os.Exit(1)
	}
	if canceled > 0 {
		profStop()
		os.Exit(130) // conventional interrupted-by-signal status
	}
}

// runCampaignMode runs or resumes a crash-resumable campaign and
// reports it. Exit statuses match the plain path: 130 when
// interrupted (resume later with -resume), 2 on hard errors.
func runCampaignMode(ctx context.Context, startDir, resumeDir string, m experiment.Matrix, opts experiment.CampaignOptions, jsonOut string) {
	dir := startDir
	var res *experiment.CampaignResult
	var err error
	if resumeDir != "" {
		dir = resumeDir
		res, err = experiment.ResumeCampaign(ctx, dir, opts)
	} else {
		res, err = experiment.RunCampaign(ctx, dir, m, opts)
	}
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fatal(err)
	}

	done := 0
	for _, d := range res.Done {
		if d {
			done++
		}
	}
	title := fmt.Sprintf("Campaign %s (%d runs", dir, len(res.Specs))
	if res.FromJournal > 0 {
		title += fmt.Sprintf(", %d from journal", res.FromJournal)
	}
	if res.Verified > 0 {
		title += fmt.Sprintf(", %d snapshot-verified", res.Verified)
	}
	title += ")"
	if interrupted {
		title = fmt.Sprintf("Campaign %s (interrupted: %d of %d runs done; -resume %s to continue)", dir, done, len(res.Specs), dir)
	}
	if jsonOut != "-" {
		experiment.AggregateTable(title, res.Aggregates).WriteTo(os.Stdout)
	}

	if jsonOut != "" {
		man, merr := experiment.ReadManifest(dir)
		if merr != nil {
			fatal(merr)
		}
		doc := res.Report(man)
		if jsonOut == "-" {
			enc, jerr := json.MarshalIndent(doc, "", "  ")
			if jerr != nil {
				fatal(jerr)
			}
			os.Stdout.Write(append(enc, '\n'))
		} else if werr := experiment.WriteJSONAtomic(jsonOut, doc); werr != nil {
			fatal(werr)
		}
	}
	if interrupted {
		profStop()
		os.Exit(130)
	}
}

// runServeMode runs the distributed-sweep coordinator: serve the
// /api/v1 lease protocol until every shard folds, then emit the
// report — a byte-copy of the coordinator's folded bytes, so it diffs
// clean against a single-process `-campaign -json` run. Exit statuses
// match the campaign path: 130 when interrupted (resume with -serve
// -resume DIR), 2 on hard errors.
func runServeMode(ctx context.Context, addr string, cfg dispatch.Config, jsonOut string) {
	co, err := dispatch.New(cfg)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: dispatch.NewServer(co), ReadHeaderTimeout: 10 * time.Second}
	logStderr("coordinator %s listening on http://%s", cfg.Dir, ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "wlansweep:", err)
		}
	}()
	interrupted := false
	select {
	case <-co.Done():
	case <-ctx.Done():
		interrupted = true
	}
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(sctx)
	if interrupted {
		logStderr("coordinator interrupted; continue with -serve %s -resume %s", addr, cfg.Dir)
		profStop()
		os.Exit(130)
	}
	data, _ := co.Report()
	switch jsonOut {
	case "":
	case "-":
		os.Stdout.Write(data)
	default:
		if err := snapshot.AtomicWriteFile(jsonOut, data); err != nil {
			fatal(err)
		}
	}
}

// runWorkerMode joins a distributed sweep until the coordinator says
// the campaign is done. Shard campaigns live under dir, so a worker
// killed and restarted with the same -workdir resumes its own
// journals.
func runWorkerMode(ctx context.Context, url, dir string, workers int) {
	host, _ := os.Hostname()
	w := &dispatch.Worker{
		Coordinator: strings.TrimRight(url, "/"),
		Dir:         dir,
		Name:        fmt.Sprintf("%s-%d", host, os.Getpid()),
		Workers:     workers,
		Logf:        logStderr,
	}
	err := w.Run(ctx)
	switch {
	case errors.Is(err, context.Canceled):
		profStop()
		os.Exit(130)
	case err != nil:
		fatal(err)
	}
}

func logStderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wlansweep: "+format+"\n", args...)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int64, error) {
	var out []int64
	for _, p := range splitList(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad scale %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// profStop flushes any active profiles; main replaces it once
// profiling starts. Idempotent, safe before every exit path.
var profStop = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wlansweep:", err)
	profStop()
	os.Exit(2)
}
