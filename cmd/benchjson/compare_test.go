package main

import (
	"bufio"
	"math"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func doc(results ...Result) *Output { return &Output{Results: results} }

func TestCompareFailsOnInjectedSlowdown(t *testing.T) {
	old := doc(
		Result{Name: "BenchmarkSimGrid", NsPerOp: 1000, AllocsPerOp: fp(100)},
		Result{Name: "BenchmarkSimDay", NsPerOp: 500, AllocsPerOp: fp(50)},
	)
	// A 20% ns/op slowdown on one benchmark must trip the 15% gate.
	slow := doc(
		Result{Name: "BenchmarkSimGrid", NsPerOp: 1200, AllocsPerOp: fp(100)},
		Result{Name: "BenchmarkSimDay", NsPerOp: 500, AllocsPerOp: fp(50)},
	)
	regs, compared, err := compare(old, slow, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 2 {
		t.Errorf("compared %d benchmarks, want 2", compared)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkSimGrid" || regs[0].Metric != "ns/op" {
		t.Fatalf("regressions = %v, want one ns/op regression on BenchmarkSimGrid", regs)
	}
	if regs[0].Ratio < 1.19 || regs[0].Ratio > 1.21 {
		t.Errorf("ratio = %v, want ~1.2", regs[0].Ratio)
	}
}

func TestComparePassesWithinTolerance(t *testing.T) {
	old := doc(Result{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: fp(10)})
	cur := doc(Result{Name: "BenchmarkX", NsPerOp: 1100, AllocsPerOp: fp(11)})
	regs, _, err := compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("+10%% flagged at 15%% tolerance: %v", regs)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	old := doc(Result{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: fp(100)})
	cur := doc(Result{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: fp(130)})
	regs, _, err := compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regressions = %v, want one allocs/op regression", regs)
	}
}

func TestCompareZeroAllocBaselineIsStrict(t *testing.T) {
	// The eventq benchmark is allocation-free; any new allocation is a
	// regression no matter the tolerance.
	old := doc(Result{Name: "BenchmarkEventQueue", NsPerOp: 14, AllocsPerOp: fp(0)})
	cur := doc(Result{Name: "BenchmarkEventQueue", NsPerOp: 14, AllocsPerOp: fp(1)})
	regs, _, err := compare(old, cur, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regressions = %v, want one allocs/op regression", regs)
	}
}

func TestCompareRejectsInvalidBaseline(t *testing.T) {
	// A zeroed baseline entry must fail the gate loudly — dividing by
	// it would either flag a phantom +Inf regression or, via NaN,
	// silently pass.
	cur := doc(Result{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: fp(10)})
	for _, bad := range []float64{0, math.NaN(), -5} {
		old := doc(Result{Name: "BenchmarkX", NsPerOp: bad, AllocsPerOp: fp(10)})
		if _, _, err := compare(old, cur, 0.15); err == nil {
			t.Fatalf("baseline ns/op=%v did not error", bad)
		}
	}
	// NaN allocs in the baseline: NaN > threshold is always false, so
	// without the explicit check any alloc regression would pass.
	old := doc(Result{Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: fp(math.NaN())})
	if _, _, err := compare(old, cur, 0.15); err == nil {
		t.Fatal("baseline NaN allocs/op did not error")
	}
	// And a broken current run must not sneak past either.
	old = doc(Result{Name: "BenchmarkX", NsPerOp: 1000})
	if _, _, err := compare(old, doc(Result{Name: "BenchmarkX", NsPerOp: math.NaN()}), 0.15); err == nil {
		t.Fatal("current NaN ns/op did not error")
	}
	// Valid baselines still compare cleanly.
	if _, compared, err := compare(old, cur, 0.15); err != nil || compared != 1 {
		t.Fatalf("valid baseline failed: compared=%d err=%v", compared, err)
	}
}

func TestCompareSkipsDisjointButRejectsEmptyIntersection(t *testing.T) {
	old := doc(
		Result{Name: "BenchmarkShared", NsPerOp: 100},
		Result{Name: "BenchmarkOldOnly", NsPerOp: 100},
	)
	cur := doc(
		Result{Name: "BenchmarkShared", NsPerOp: 300},
		Result{Name: "BenchmarkNewOnly", NsPerOp: 1},
	)
	regs, compared, err := compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 1 || len(regs) != 1 || regs[0].Name != "BenchmarkShared" {
		t.Fatalf("compared=%d regs=%v; want the single shared benchmark flagged", compared, regs)
	}

	if _, _, err := compare(old, doc(Result{Name: "BenchmarkNewOnly", NsPerOp: 1}), 0.15); err == nil {
		t.Fatal("empty intersection did not error; a renamed baseline would disable the gate")
	}
}

func TestCompareAgainstParsedBenchText(t *testing.T) {
	// End to end through the same parser CI uses: bench text vs an
	// archived baseline with a 20% slowdown injected.
	text := `goos: linux
pkg: wlan80211/internal/workload
BenchmarkSimGrid-8   3   12000000 ns/op   2222 allocs/op
`
	cur, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	old := doc(Result{Name: "BenchmarkSimGrid", NsPerOp: 10000000, AllocsPerOp: fp(2222)})
	regs, _, err := compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("regressions = %v, want one ns/op regression", regs)
	}
}

func TestDeltaTable(t *testing.T) {
	old := doc(
		Result{Name: "BenchmarkSimGrid", NsPerOp: 1000, AllocsPerOp: fp(100)},
		Result{Name: "BenchmarkSimDay", NsPerOp: 500},
		Result{Name: "BenchmarkGone", NsPerOp: 10},
	)
	cur := doc(
		Result{Name: "BenchmarkSimGrid", NsPerOp: 900, AllocsPerOp: fp(110)},
		Result{Name: "BenchmarkSimDay", NsPerOp: 500},
	)
	var buf strings.Builder
	if err := writeDeltaTable(&buf, old, cur); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header plus one row per benchmark in the intersection — the
	// baseline-only BenchmarkGone is omitted.
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "BenchmarkSimGrid") || strings.Contains(out, "BenchmarkGone") {
		t.Fatalf("wrong rows:\n%s", out)
	}
	// Improvements show as negative deltas, regressions positive.
	if !strings.Contains(out, "-10.0%") || !strings.Contains(out, "+10.0%") {
		t.Fatalf("missing signed deltas:\n%s", out)
	}
	// The allocs columns degrade to "-" when -benchmem was off. Rows
	// are in sorted name order, so SimDay precedes SimGrid.
	day := lines[1]
	if !strings.Contains(day, "BenchmarkSimDay") || !strings.Contains(day, "-") {
		t.Fatalf("missing placeholder for absent allocs: %q", day)
	}
}

func TestDeltaTableEmptyIntersection(t *testing.T) {
	old := doc(Result{Name: "BenchmarkA", NsPerOp: 1})
	cur := doc(Result{Name: "BenchmarkB", NsPerOp: 1})
	var buf strings.Builder
	if err := writeDeltaTable(&buf, old, cur); err == nil {
		t.Fatal("empty intersection did not error")
	}
}
