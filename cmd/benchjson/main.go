// Command benchjson converts `go test -bench` output into JSON, so CI
// can archive benchmark trajectories (BENCH_N.json) across PRs and
// diff ns/op and allocs/op mechanically.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//
// Standard fields (ns/op, B/op, allocs/op) are parsed into columns;
// any custom b.ReportMetric units land in the metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. B/op and allocs/op are
// pointers so a measured zero (an allocation-free benchmark) is
// distinguishable from -benchmem being off.
type Result struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Output is the archived document.
type Output struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Output, error) {
	doc := &Output{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		r, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		r.Pkg = pkg
		doc.Results = append(doc.Results, r)
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8  120  9612 ns/op  432 B/op  7 allocs/op  3.2 custom_unit
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			v := v
			r.BytesPerOp = &v
		case "allocs/op":
			v := v
			r.AllocsPerOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
