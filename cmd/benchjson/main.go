// Command benchjson converts `go test -bench` output into JSON, so CI
// can archive benchmark trajectories (BENCH_N.json) across PRs and
// diff ns/op and allocs/op mechanically.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//	benchjson -compare BENCH_5.json -tolerance 0.15 bench-smoke.json
//
// Standard fields (ns/op, B/op, allocs/op) are parsed into columns;
// any custom b.ReportMetric units land in the metrics map.
//
// With -compare, the input (a positional JSON file, or bench text on
// stdin) is gated against the baseline document: any benchmark whose
// ns/op or allocs/op grew more than -tolerance (default +15%) exits
// non-zero, so a perf regression fails CI instead of merging as a
// silently-archived artifact. Benchmarks appearing in only one
// document are skipped, but the intersection must be non-empty.
// Adding -verbose prints a per-benchmark delta table (old/new ns/op
// and allocs/op with signed percentages) even when the gate passes,
// so CI logs show the perf trajectory, not just its violations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. B/op and allocs/op are
// pointers so a measured zero (an allocation-free benchmark) is
// distinguishable from -benchmem being off.
type Result struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Output is the archived document.
type Output struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout; suppressed under -compare)")
	baseline := flag.String("compare", "", "baseline BENCH_*.json to gate against; exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional ns/op and allocs/op growth for -compare")
	verbose := flag.Bool("verbose", false, "with -compare, print the per-benchmark delta table even when the gate passes")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	var doc *Output
	var err error
	switch args := flag.Args(); len(args) {
	case 0:
		doc, err = parse(bufio.NewScanner(os.Stdin))
	case 1:
		doc, err = readDoc(args[0])
	default:
		err = fmt.Errorf("at most one input file, got %d", len(args))
	}
	if err != nil {
		fail(err)
	}

	if *out != "" || *baseline == "" {
		enc, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fail(err)
		}
		enc = append(enc, '\n')
		if *out == "" {
			os.Stdout.Write(enc)
		} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fail(err)
		}
	}

	if *baseline != "" {
		old, err := readDoc(*baseline)
		if err != nil {
			fail(err)
		}
		regs, compared, err := compare(old, doc, *tolerance)
		if err != nil {
			fail(err)
		}
		if *verbose {
			if err := writeDeltaTable(os.Stderr, old, doc); err != nil {
				fail(err)
			}
		}
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, r)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) compared against %s at +%.0f%% tolerance, %d regression(s)\n",
			compared, *baseline, *tolerance*100, len(regs))
		if len(regs) > 0 {
			os.Exit(1)
		}
	}
}

// readDoc loads an archived benchjson document.
func readDoc(path string) (*Output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &Output{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func parse(sc *bufio.Scanner) (*Output, error) {
	doc := &Output{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		r, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		r.Pkg = pkg
		doc.Results = append(doc.Results, r)
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8  120  9612 ns/op  432 B/op  7 allocs/op  3.2 custom_unit
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			v := v
			r.BytesPerOp = &v
		case "allocs/op":
			v := v
			r.AllocsPerOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
