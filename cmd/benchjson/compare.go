package main

import (
	"fmt"
	"math"
	"sort"
)

// Regression is one benchmark whose cost grew beyond the tolerance.
type Regression struct {
	Name   string
	Metric string // "ns/op" or "allocs/op"
	Old    float64
	New    float64
	Ratio  float64 // New/Old (+Inf when Old == 0)
}

func (r Regression) String() string {
	return fmt.Sprintf("REGRESSION %s %s: %.4g -> %.4g (%+.1f%%)",
		r.Name, r.Metric, r.Old, r.New, (r.Ratio-1)*100)
}

// compare diffs new against old benchmark results by name. A
// benchmark regresses when its ns/op or allocs/op exceeds the old
// value by more than tolerance (0.15 = +15%). Benchmarks present in
// only one document are ignored — CI steps produce subsets of the
// committed baselines — but an empty intersection is an error so a
// renamed baseline cannot turn the gate into a no-op. Comparisons are
// returned in stable name order alongside the number of benchmarks
// compared.
func compare(old, new *Output, tolerance float64) (regs []Regression, compared int, err error) {
	baseline := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		baseline[r.Name] = r
	}
	names := make([]string, 0, len(new.Results))
	seen := make(map[string]bool)
	for _, r := range new.Results {
		if _, ok := baseline[r.Name]; ok && !seen[r.Name] {
			names = append(names, r.Name)
			seen[r.Name] = true
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, 0, fmt.Errorf("no benchmarks in common between baseline and current run")
	}

	current := make(map[string]Result, len(new.Results))
	for _, r := range new.Results {
		if _, ok := current[r.Name]; !ok {
			current[r.Name] = r
		}
	}
	exceeds := func(oldV, newV float64) (float64, bool) {
		if oldV == 0 {
			// A benchmark that was allocation-free (or instant) and no
			// longer is regresses at any tolerance.
			return math.Inf(1), newV > 0
		}
		ratio := newV / oldV
		return ratio, ratio > 1+tolerance
	}
	for _, name := range names {
		o, n := baseline[name], current[name]
		compared++
		if ratio, bad := exceeds(o.NsPerOp, n.NsPerOp); bad {
			regs = append(regs, Regression{Name: name, Metric: "ns/op", Old: o.NsPerOp, New: n.NsPerOp, Ratio: ratio})
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			if ratio, bad := exceeds(*o.AllocsPerOp, *n.AllocsPerOp); bad {
				regs = append(regs, Regression{Name: name, Metric: "allocs/op", Old: *o.AllocsPerOp, New: *n.AllocsPerOp, Ratio: ratio})
			}
		}
	}
	return regs, compared, nil
}
