package main

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// Regression is one benchmark whose cost grew beyond the tolerance.
type Regression struct {
	Name   string
	Metric string // "ns/op" or "allocs/op"
	Old    float64
	New    float64
	Ratio  float64 // New/Old (+Inf when Old == 0)
}

func (r Regression) String() string {
	return fmt.Sprintf("REGRESSION %s %s: %.4g -> %.4g (%+.1f%%)",
		r.Name, r.Metric, r.Old, r.New, (r.Ratio-1)*100)
}

// compare diffs new against old benchmark results by name. A
// benchmark regresses when its ns/op or allocs/op exceeds the old
// value by more than tolerance (0.15 = +15%). Benchmarks present in
// only one document are ignored — CI steps produce subsets of the
// committed baselines — but an empty intersection is an error so a
// renamed baseline cannot turn the gate into a no-op. A baseline
// entry with 0 or NaN ns/op is an error too — no real benchmark is
// instant, so such an entry means a corrupted or hand-mangled
// baseline, and dividing by it would either NaN-poison the ratio
// (silently passing the gate) or flag a phantom +Inf regression.
// Comparisons are returned in stable name order alongside the number
// of benchmarks compared.
func compare(old, new *Output, tolerance float64) (regs []Regression, compared int, err error) {
	names, baseline, current, err := intersect(old, new)
	if err != nil {
		return nil, 0, err
	}
	exceeds := func(oldV, newV float64) (float64, bool) {
		if oldV == 0 {
			// A benchmark that was allocation-free and no longer is
			// regresses at any tolerance.
			return math.Inf(1), newV > 0
		}
		ratio := newV / oldV
		return ratio, ratio > 1+tolerance
	}
	for _, name := range names {
		o, n := baseline[name], current[name]
		if o.NsPerOp <= 0 || math.IsNaN(o.NsPerOp) {
			return nil, 0, fmt.Errorf("baseline %s reports invalid ns/op %v: baseline is corrupt, refusing to gate against it", name, o.NsPerOp)
		}
		if n.NsPerOp <= 0 || math.IsNaN(n.NsPerOp) {
			return nil, 0, fmt.Errorf("current run %s reports invalid ns/op %v: refusing to compare", name, n.NsPerOp)
		}
		if o.AllocsPerOp != nil && math.IsNaN(*o.AllocsPerOp) {
			return nil, 0, fmt.Errorf("baseline %s reports NaN allocs/op: baseline is corrupt, refusing to gate against it", name)
		}
		compared++
		if ratio, bad := exceeds(o.NsPerOp, n.NsPerOp); bad {
			regs = append(regs, Regression{Name: name, Metric: "ns/op", Old: o.NsPerOp, New: n.NsPerOp, Ratio: ratio})
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			if ratio, bad := exceeds(*o.AllocsPerOp, *n.AllocsPerOp); bad {
				regs = append(regs, Regression{Name: name, Metric: "allocs/op", Old: *o.AllocsPerOp, New: *n.AllocsPerOp, Ratio: ratio})
			}
		}
	}
	return regs, compared, nil
}

// intersect resolves the benchmarks shared by both documents, keeping
// the first occurrence of duplicated names and failing on an empty
// intersection (a renamed baseline must not disarm the gate).
func intersect(old, new *Output) (names []string, baseline, current map[string]Result, err error) {
	baseline = make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		if _, ok := baseline[r.Name]; !ok {
			baseline[r.Name] = r
		}
	}
	seen := make(map[string]bool)
	for _, r := range new.Results {
		if _, ok := baseline[r.Name]; ok && !seen[r.Name] {
			names = append(names, r.Name)
			seen[r.Name] = true
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no benchmarks in common between baseline and current run")
	}
	current = make(map[string]Result, len(new.Results))
	for _, r := range new.Results {
		if _, ok := current[r.Name]; !ok {
			current[r.Name] = r
		}
	}
	return names, baseline, current, nil
}

// writeDeltaTable renders every compared benchmark's old and new
// costs with signed percentage deltas — the -verbose view, so a
// passing gate still shows where the time went.
func writeDeltaTable(w io.Writer, old, new *Output) error {
	names, baseline, current, err := intersect(old, new)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tΔ\told allocs\tnew allocs\tΔ")
	pct := func(oldV, newV float64) string {
		if oldV == 0 {
			if newV == 0 {
				return "0.0%"
			}
			return "+inf"
		}
		return fmt.Sprintf("%+.1f%%", (newV/oldV-1)*100)
	}
	for _, name := range names {
		o, n := baseline[name], current[name]
		allocs := []string{"-", "-", "-"}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			allocs = []string{
				fmt.Sprintf("%.0f", *o.AllocsPerOp),
				fmt.Sprintf("%.0f", *n.AllocsPerOp),
				pct(*o.AllocsPerOp, *n.AllocsPerOp),
			}
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.4g\t%s\t%s\t%s\t%s\n",
			name, o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp),
			allocs[0], allocs[1], allocs[2])
	}
	return tw.Flush()
}
