// Command wlanalyze runs the paper's congestion analysis over a
// radiotap pcap trace (synthetic from wlansim, or any real monitor-
// mode 802.11b capture) and prints the summary, tables, and figures.
//
// By default inputs are read into memory, merged (timestamp sort plus
// cross-sniffer dedup), and analyzed — the behaviour the batch
// analyzer always had. With -stream, inputs flow straight from disk
// through the metric pipeline in O(seconds) memory; that skips the
// merge pass, so it expects time-ordered captures without duplicates
// (any pcap a single sniffer wrote qualifies).
//
// Usage:
//
//	wlanalyze trace.pcap
//	wlanalyze -figure 6 trace.pcap other.pcap
//	wlanalyze -csv -figure 8 trace.pcap > fig8.csv
//	wlanalyze -stream -metrics util,throughput -parallel trace.pcap
//	wlanalyze -list-metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wlan80211/internal/analysis"
	"wlan80211/internal/capture"
	"wlan80211/internal/report"
)

func main() {
	var (
		figure      = flag.Int("figure", 0, "print only this figure (4–15; 0 = everything)")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned text")
		reliability = flag.Bool("reliability", false, "also print the beacon-reliability metric")
		metrics     = flag.String("metrics", "", "comma-separated metric stages to run (default: all; see -list-metrics)")
		parallel    = flag.Bool("parallel", false, "shard analysis per channel across goroutines")
		stream      = flag.Bool("stream", false, "stream inputs in O(seconds) memory, skipping the merge sort/dedup pass (requires time-ordered captures)")
		listMetrics = flag.Bool("list-metrics", false, "list the registered metric stages and exit")
	)
	flag.Parse()
	if *listMetrics {
		for _, n := range analysis.Names() {
			fmt.Printf("%-12s %s\n", n, analysis.Describe(n))
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: wlanalyze [-figure N] [-csv] [-metrics a,b] [-parallel] [-stream] trace.pcap...")
		os.Exit(2)
	}
	if *stream && *reliability {
		fmt.Fprintln(os.Stderr, "wlanalyze: -reliability is a batch pass over the merged trace; drop -stream to use it")
		os.Exit(2)
	}

	opts := analysis.Options{Parallel: *parallel}
	if *metrics != "" {
		for _, n := range strings.Split(*metrics, ",") {
			if n = strings.TrimSpace(n); n != "" {
				opts.Metrics = append(opts.Metrics, n)
			}
		}
	}
	a, err := analysis.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlanalyze:", err)
		os.Exit(2)
	}

	var merged []capture.Record
	if *stream {
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wlanalyze:", err)
				os.Exit(1)
			}
			skipped, err := a.Run(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "wlanalyze: %s: %v\n", path, err)
				os.Exit(1)
			}
			if skipped > 0 {
				fmt.Fprintf(os.Stderr, "wlanalyze: %s: skipped %d undecodable records\n", path, skipped)
			}
		}
	} else {
		var traces [][]capture.Record
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wlanalyze:", err)
				os.Exit(1)
			}
			recs, skipped, err := capture.ReadAll(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "wlanalyze: %s: %v\n", path, err)
				os.Exit(1)
			}
			if skipped > 0 {
				fmt.Fprintf(os.Stderr, "wlanalyze: %s: skipped %d undecodable records\n", path, skipped)
			}
			traces = append(traces, recs)
		}
		merged = capture.Merge(traces...)
		a.FeedAll(merged)
	}
	r := a.Result()

	tables := selectTables(r, *figure)
	if *reliability {
		rel := analysis.MeasureBeaconReliability(merged, 10)
		tables = append(tables, report.Reliability(rel))
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "wlanalyze: no figure %d\n", *figure)
		os.Exit(2)
	}
	for i, t := range tables {
		if *csv {
			if err := t.CSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "wlanalyze:", err)
				os.Exit(1)
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		t.WriteTo(os.Stdout)
	}
}

func selectTables(r *analysis.Result, figure int) []*report.Table {
	switch figure {
	case 0:
		return report.AllFigures(r)
	case 4:
		return []*report.Table{report.Figure4a(r, 15), report.Figure4b(r), report.Figure4c(r, 15)}
	case 5:
		return []*report.Table{report.Figure5(r), report.Figure5c(r)}
	case 6:
		return []*report.Table{report.Figure6(r)}
	case 7:
		return []*report.Table{report.Figure7(r)}
	case 8:
		return []*report.Table{report.Figure8(r)}
	case 9:
		return []*report.Table{report.Figure9(r)}
	case 10:
		return []*report.Table{report.Figure10(r)}
	case 11:
		return []*report.Table{report.Figure11(r)}
	case 12:
		return []*report.Table{report.Figure12(r)}
	case 13:
		return []*report.Table{report.Figure13(r)}
	case 14:
		return []*report.Table{report.Figure14(r)}
	case 15:
		return []*report.Table{report.Figure15(r)}
	default:
		return nil
	}
}
