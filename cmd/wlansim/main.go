// Command wlansim simulates an IEEE 802.11b network scenario and
// writes the vicinity-sniffer trace as a radiotap pcap file, the same
// wire format the paper's tethereal-based framework produced.
//
// Usage:
//
//	wlansim -scenario day -scale 0.5 -o day.pcap
//	wlansim -scenario plenary -o plenary.pcap
//	wlansim -scenario sweep -o sweep.pcap
package main

import (
	"flag"
	"fmt"
	"os"

	"wlan80211/internal/capture"
	"wlan80211/internal/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "day", "scenario: day, plenary, or sweep")
		scale    = flag.Float64("scale", 1.0, "scenario scale factor (0..1]")
		seed     = flag.Int64("seed", 0, "override the scenario seed (0 keeps default)")
		out      = flag.String("o", "trace.pcap", "output pcap path")
		snap     = flag.Int("snaplen", 250, "snap length applied to MAC frames")
	)
	flag.Parse()

	recs, err := run(*scenario, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlansim:", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlansim:", err)
		os.Exit(1)
	}
	defer f.Close()
	w, err := capture.NewWriter(f, *snap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wlansim:", err)
		os.Exit(1)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			fmt.Fprintln(os.Stderr, "wlansim:", err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "wlansim:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d frames to %s\n", len(recs), *out)
}

func run(scenario string, scale float64, seed int64) ([]capture.Record, error) {
	switch scenario {
	case "day", "plenary":
		s := workload.DaySession()
		if scenario == "plenary" {
			s = workload.PlenarySession()
		}
		if seed != 0 {
			s.Seed = seed
		}
		b, err := s.Scale(scale).Build()
		if err != nil {
			return nil, err
		}
		return b.Run(), nil
	case "sweep":
		ladder := workload.DefaultLadder(scale)
		if seed != 0 {
			for i := range ladder {
				ladder[i].Seed += seed
			}
		}
		return workload.MultiSweep(ladder), nil
	default:
		return nil, fmt.Errorf("unknown scenario %q (want day, plenary, or sweep)", scenario)
	}
}
